// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design decisions called out in
// DESIGN.md. Heavy hardware-pipeline benchmarks execute a single iteration
// under the default -benchtime; expect several minutes for the full suite.
//
//	go test -bench=. -benchmem
//	go test -bench=Table2 -benchtime=1x
package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/cachequery"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/experiments"
	"repro/internal/fingerprint"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/permpol"
	"repro/internal/polca"
	"repro/internal/policy"
	"repro/internal/qstore"
	"repro/internal/remote"
	"repro/internal/synth"
)

// BenchmarkFig1Pipeline runs the toy end-to-end pipeline of Figure 1:
// CacheQuery -> Polca -> learner -> synthesized explanation on a simulated
// 2-way set.
func BenchmarkFig1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure1(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2 learns policies from software-simulated caches (§6). The
// sub-benchmark set is the feasible core of Table 2; run cmd/experiments
// with -full for the multi-hour instances.
func BenchmarkTable2(b *testing.B) {
	cases := []struct {
		name  string
		assoc int
	}{
		{"FIFO", 16}, {"LRU", 4}, {"PLRU", 8}, {"MRU", 8},
		{"LIP", 4}, {"SRRIP-HP", 4}, {"SRRIP-FP", 4}, {"New1", 4}, {"New2", 4},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("%s-%d", c.name, c.assoc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				row := experiments.RunTable2Row(context.Background(), c.name, c.assoc)
				if !row.Verified {
					b.Fatalf("row failed: %+v", row)
				}
			}
		})
	}
}

// BenchmarkTable4 learns policies through the full hardware pipeline (§7)
// on the simulated Skylake: the L1 PLRU and, in non-short mode, the L2
// New1. Each iteration is a complete provisioning + calibration + learning
// run; expect tens of seconds (L1) to minutes (L2) per iteration.
func BenchmarkTable4(b *testing.B) {
	jobs := []struct {
		name  string
		level hw.Level
		short bool // cheap enough for every run
	}{
		{"SkylakeL1-PLRU", hw.L1, true},
		{"SkylakeL2-New1", hw.L2, false},
	}
	for _, j := range jobs {
		b.Run(j.name, func(b *testing.B) {
			if !j.short && testing.Short() {
				b.Skip("hardware L2 learning is expensive; run without -short")
			}
			cfg := hw.Skylake()
			pol := policy.MustNew(cfg.Config(j.level).Policy, cfg.Config(j.level).Assoc)
			for i := 0; i < b.N; i++ {
				req := core.HardwareRequest{
					CPU:              hw.NewCPU(cfg, 77),
					NewCPU:           func() *hw.CPU { return hw.NewCPU(cfg, 77) },
					Target:           cachequery.Target{Level: j.level, Set: 0},
					Backend:          cachequery.DefaultBackendOptions(),
					Resets:           core.ResetCandidatesFor(pol),
					Learn:            learn.Options{Depth: 1, MaxStates: 4096},
					DeterminismEvery: 128,
				}
				res, err := core.LearnHardware(context.Background(), req)
				if err != nil {
					b.Fatal(err)
				}
				truth, err := core.GroundTruthAfterReset(pol, res.Reset)
				if err != nil {
					b.Fatal(err)
				}
				if eq, _ := res.Machine.Equivalent(truth); !eq {
					b.Fatal("learned machine differs from the installed policy")
				}
			}
		})
	}
}

// BenchmarkTable5 synthesizes explanations for the Table 5 policies at
// associativity 4, including the PLRU exhaustion (the paper's "—" row).
func BenchmarkTable5(b *testing.B) {
	for _, name := range experiments.Table5Policies() {
		b.Run(name, func(b *testing.B) {
			m, err := mealy.FromPolicy(policy.MustNew(name, 4), 0)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				_, err := synth.Synthesize(m, synth.Options{Seed: 1})
				if name == "PLRU" {
					if err == nil {
						b.Fatal("PLRU unexpectedly synthesized")
					}
				} else if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryCost measures the execution time of the MBL query `@ M _?`
// per cache level on the simulated Skylake — the §7.2 measurement.
func BenchmarkQueryCost(b *testing.B) {
	for _, lvl := range []hw.Level{hw.L1, hw.L2, hw.L3} {
		b.Run(lvl.String(), func(b *testing.B) {
			cpu := hw.NewCPU(hw.Skylake(), 22)
			f := cachequery.NewFrontend(cpu, cachequery.DefaultBackendOptions())
			f.SetResultCache(false)
			tgt := cachequery.Target{Level: lvl, Set: 0}
			if _, err := f.Backend(tgt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Query(context.Background(), tgt, "@ M _?"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLeaderScan runs a reduced Appendix B scan: classify a handful of
// Skylake L3 sets (two leaders of each kind plus followers) under both
// set-dueling steerings.
func BenchmarkLeaderScan(b *testing.B) {
	model := hw.Skylake()
	sample := []int{0, 1, 33, 62, 63, 5}
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLeaderScan(context.Background(), model, sample, 2)
		if err != nil {
			b.Fatal(err)
		}
		if res.Correct != len(sample) {
			b.Fatalf("misclassified %d/%d sets", len(sample)-res.Correct, len(sample))
		}
	}
}

// BenchmarkBaselines compares the prior-art approaches of §6/§10 against
// Polca-based learning on MRU-4 (a policy outside the permutation class):
// the Abel–Reineke permutation baseline on an in-scope policy, nanoBench
// fingerprinting, and full automata learning.
func BenchmarkBaselines(b *testing.B) {
	b.Run("permutation-LRU4", func(b *testing.B) {
		truth, _ := mealy.FromPolicy(policy.MustNew("LRU", 4), 0)
		for i := 0; i < b.N; i++ {
			if _, err := permpol.InferAndValidate(context.Background(), polca.NewSimProber(policy.MustNew("LRU", 4)), truth); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fingerprint-MRU4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := fingerprint.Identify(context.Background(), polca.NewSimProber(policy.MustNew("MRU", 4)),
				fingerprint.DefaultPool(), fingerprint.Options{Seed: 42})
			if err != nil || len(res.Matches) != 1 || res.Matches[0] != "MRU" {
				b.Fatalf("fingerprinting failed: %v %v", res, err)
			}
		}
	})
	b.Run("learning-MRU4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.LearnSimulated(context.Background(), "MRU", 4, learn.Options{Depth: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSuite compares the paper's Wp-method against the plain
// W-method on the same learning task.
func BenchmarkAblationSuite(b *testing.B) {
	truth, _ := mealy.FromPolicy(policy.MustNew("SRRIP-HP", 4), 0)
	for _, suite := range []struct {
		name string
		s    learn.Suite
	}{{"wp", learn.SuiteWp}, {"w", learn.SuiteW}} {
		b.Run(suite.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := learn.Learn(context.Background(), learn.MachineTeacher{M: truth}, learn.Options{Depth: 1, Suite: suite.s})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.TestWords), "testwords/op")
			}
		})
	}
}

// BenchmarkAblationMemo quantifies the probe memoization of §4.2 (the
// LevelDB layer): learning LRU-4 through reset-rooted probes with and
// without the flat memo table, against the trie engine on the same prober
// class (forking sessions, prefix resume).
func BenchmarkAblationMemo(b *testing.B) {
	run := func(b *testing.B, slow bool, lopt learn.Options, opts ...polca.Option) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var prober polca.Prober = polca.NewSimProber(policy.MustNew("LRU", 4))
			if slow {
				prober = polca.SlowProber{P: polca.NewSimProber(policy.MustNew("LRU", 4))}
			}
			oracle := polca.NewOracle(prober, opts...)
			if _, err := learn.Learn(context.Background(), oracle, lopt); err != nil {
				b.Fatal(err)
			}
			st := oracle.Stats()
			b.ReportMetric(float64(st.Probes), "probes/op")
			b.ReportMetric(float64(st.Accesses), "accesses/op")
		}
	}
	flat := learn.Options{Depth: 1, FlatMemo: true}
	b.Run("memo", func(b *testing.B) { run(b, true, flat, polca.WithoutTrie()) })
	b.Run("nomemo", func(b *testing.B) { run(b, true, flat, polca.WithoutMemo()) })
	b.Run("trie", func(b *testing.B) { run(b, false, learn.Options{Depth: 1}) })
}

// BenchmarkAblationTrie quantifies the prefix-tree query engine layer by
// layer on harder policies: "nomemo" re-executes every probe, "flat" is the
// §4.2 exact-match memo, "sessions" is the unmemoized incremental session
// path, and "trie" is the full engine — trie-memoized outputs, parked
// resumable sessions, and the prefix-sharing learner memo. Every leg
// verifies the learned machine against the extracted ground truth.
//
// Compare legs on probes/op and accesses/op. memohits/op units differ by
// leg — whole probes on the flat path, word symbols on the trie paths (see
// polca.Stats) — so it only tracks each leg against its own history.
func BenchmarkAblationTrie(b *testing.B) {
	cases := []struct {
		name  string
		assoc int
		heavy bool // too slow for unmemoized reset-rooted replay
	}{
		{"LRU", 4, false}, {"SRRIP-FP", 4, true}, {"New1", 4, true},
	}
	type leg struct {
		name string
		mk   func(name string, assoc int) polca.Prober
		opts []polca.Option
		lopt learn.Options
	}
	slowProber := func(name string, assoc int) polca.Prober {
		return polca.SlowProber{P: polca.NewSimProber(policy.MustNew(name, assoc))}
	}
	fastProber := func(name string, assoc int) polca.Prober {
		return polca.NewSimProber(policy.MustNew(name, assoc))
	}
	flat := learn.Options{Depth: 1, FlatMemo: true}
	legs := []leg{
		{"nomemo", slowProber, []polca.Option{polca.WithoutMemo()}, flat},
		{"flat", slowProber, []polca.Option{polca.WithoutTrie()}, flat},
		{"sessions", fastProber, []polca.Option{polca.WithoutTrie()}, flat},
		{"trie", fastProber, nil, learn.Options{Depth: 1}},
	}
	for _, c := range cases {
		truth, err := mealy.FromPolicy(policy.MustNew(c.name, c.assoc), 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range legs {
			b.Run(fmt.Sprintf("%s-%d/%s", c.name, c.assoc, l.name), func(b *testing.B) {
				if c.heavy && l.name == "nomemo" && testing.Short() {
					b.Skip("unmemoized reset-rooted replay on a 160-state policy; run without -short")
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					oracle := polca.NewOracle(l.mk(c.name, c.assoc), l.opts...)
					res, err := learn.Learn(context.Background(), oracle, l.lopt)
					if err != nil {
						b.Fatal(err)
					}
					if eq, ce := res.Machine.Equivalent(truth); !eq {
						b.Fatalf("learned machine differs from ground truth, ce=%v", ce)
					}
					st := oracle.Stats()
					b.ReportMetric(float64(st.Probes), "probes/op")
					b.ReportMetric(float64(st.Accesses), "accesses/op")
					b.ReportMetric(float64(st.MemoHits), "memohits/op")
				}
			})
		}
	}
}

// BenchmarkAblationKernel quantifies the compiled policy kernel on
// simulated probes: the same exhaustive output-query load (every policy
// word up to depth 5) is answered by a memo-less oracle over a forking
// simulator prober, once on the compiled kernel (dense transition tables,
// sessions as (int32 state, content) values, peek-based eviction probes —
// the default) and once through the interpreted Policy interface (virtual
// dispatch per access, deep policy clones per fork — the pre-kernel path,
// polca.NewInterpretedSimProber). The prober — and with it the one-time
// compilation — is built outside the timed loop, so the legs compare pure
// probe cost. Memoization is disabled so every probe really executes; the
// deterministic counters (probes/op, accesses/op) are identical across
// legs by construction — the kernel changes only ns/op and allocs/op,
// which is exactly what this benchmark tracks.
//
// The batched leg answers the same load through the structure-of-arrays
// engine (polca.WithBatchedQueries): one OutputQueryBatch over the whole
// word set, lanes advancing in positional lockstep over a contiguous state
// vector instead of one heap session per word. Same counters, same
// answers; ns/op is the SoA payoff over the per-session compiled leg.
func BenchmarkAblationKernel(b *testing.B) {
	cases := []struct {
		name  string
		assoc int
	}{
		{"LRU", 4}, {"SRRIP-HP", 4}, {"New1", 4},
	}
	legs := []struct {
		name    string
		batched bool
		mk      func(name string, assoc int) polca.Prober
	}{
		{"compiled", false, func(n string, a int) polca.Prober { return polca.NewSimProber(policy.MustNew(n, a)) }},
		{"batched", true, func(n string, a int) polca.Prober { return polca.NewSimProber(policy.MustNew(n, a)) }},
		{"interpreted", false, func(n string, a int) polca.Prober { return polca.NewInterpretedSimProber(policy.MustNew(n, a)) }},
	}
	for _, c := range cases {
		words := qstore.Enumerate(policy.NumInputs(c.assoc), 5)[1:]
		for _, l := range legs {
			b.Run(fmt.Sprintf("%s-%d/%s", c.name, c.assoc, l.name), func(b *testing.B) {
				prober := l.mk(c.name, c.assoc)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					opts := []polca.Option{polca.WithoutMemo()}
					if l.batched {
						opts = append(opts, polca.WithBatchedQueries())
					}
					oracle := polca.NewOracle(prober, opts...)
					if l.batched {
						if _, err := oracle.OutputQueryBatch(context.Background(), words); err != nil {
							b.Fatal(err)
						}
					} else {
						for _, w := range words {
							if _, err := oracle.OutputQuery(context.Background(), w); err != nil {
								b.Fatal(err)
							}
						}
					}
					st := oracle.Stats()
					b.ReportMetric(float64(st.Probes), "probes/op")
					b.ReportMetric(float64(st.Accesses), "accesses/op")
				}
			})
		}
	}
}

// BenchmarkAblationAlgo compares the two learning algorithms on identical
// Polca-backed learning tasks: the L*-style observation table (the paper's
// setting) versus the discrimination-tree learner, which stores only the
// experiments that separate states and decomposes counterexamples by
// Rivest–Schapire binary search. queries/op counts the learner's distinct
// membership (output) queries, symbols/op the input symbols across them;
// probes/op and accesses/op are the oracle-side costs behind those queries.
// Every leg verifies the learned machine against the extracted ground truth.
func BenchmarkAblationAlgo(b *testing.B) {
	cases := []struct {
		name  string
		assoc int
	}{
		// SRRIP-HP-4 is the one published policy where the tree learner
		// asks ~7% more queries than L*; tracking it here keeps that
		// honest regression under the benchjson gate.
		{"LRU", 4}, {"New1", 4}, {"SRRIP-FP", 4}, {"SRRIP-HP", 4},
	}
	algos := []struct {
		name string
		a    learn.Algo
	}{{"lstar", learn.AlgoLStar}, {"tree", learn.AlgoTree}}
	for _, c := range cases {
		truth, err := mealy.FromPolicy(policy.MustNew(c.name, c.assoc), 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, al := range algos {
			b.Run(fmt.Sprintf("%s-%d/%s", c.name, c.assoc, al.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					oracle := polca.NewOracle(polca.NewSimProber(policy.MustNew(c.name, c.assoc)))
					res, err := learn.Learn(context.Background(), oracle, learn.Options{Depth: 1, Algo: al.a})
					if err != nil {
						b.Fatal(err)
					}
					if eq, ce := res.Machine.Equivalent(truth); !eq {
						b.Fatalf("learned machine differs from ground truth, ce=%v", ce)
					}
					st := oracle.Stats()
					b.ReportMetric(float64(res.Stats.OutputQueries), "queries/op")
					b.ReportMetric(float64(res.Stats.QuerySymbols), "symbols/op")
					b.ReportMetric(float64(st.Probes), "probes/op")
					b.ReportMetric(float64(st.Accesses), "accesses/op")
				}
			})
		}
	}
}

// BenchmarkStoreParallel quantifies the lock striping of the shared query
// store (internal/qstore) under contention. The store legs hammer one
// store from 8 goroutines with a mixed read/write load over the LRU-4
// policy alphabet — stripes=1 is the single-mutex configuration the
// pre-qstore oracle was stuck with, striped is the default one-shard-per-
// input-symbol layout. The learn legs run the same comparison end to end:
// parallel batched learning of New1-4 at 8 workers against a single-lock
// oracle (polca.WithStoreStripes(1)) versus the striped default.
//
// Like BenchmarkAblationBatch, the wall-clock gap is a function of real
// cores: on a single-core machine the legs coincide (8 goroutines
// time-slice one CPU, so no lock is ever contended for long), and the
// striping gain materializes on multi-core runners. The deterministic
// counters (probes/op, B/op) are identical by construction — striping
// must never change the work, only the waiting.
func BenchmarkStoreParallel(b *testing.B) {
	words := qstore.Enumerate(5, 6)[1:]
	store := func(b *testing.B, stripes int) {
		b.ReportAllocs()
		st := qstore.New[int, int](qstore.Options{Degree: 5, Stripes: stripes, Sync: true})
		const workers = 8
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j, word := range words {
						if (j+w)%2 == 0 {
							st.Set(word, j)
						} else {
							st.Get(word)
						}
					}
				}(w)
			}
			wg.Wait()
		}
	}
	b.Run("store/stripes=1", func(b *testing.B) { store(b, 1) })
	b.Run("store/striped", func(b *testing.B) { store(b, 5) })

	// The fastpath legs quantify the store-side fast path of the batched
	// refactor under the same 8-goroutine contention: trie-only builds a
	// fresh store every iteration and pays the full node/arena build cost
	// for each round of misses; bloom keeps one store alive across
	// iterations (Reset reuses the arena blocks) with the per-shard bloom
	// filter short-circuiting absent-key Gets before the trie descent. The
	// pairing is deliberate — bloom exists to make the persistent,
	// epoch-reset store the cheap configuration, so the leg carries its
	// whole fast path: allocs/op must sit strictly below the trie-only leg.
	fastpath := func(b *testing.B, bloom bool) {
		b.ReportAllocs()
		mk := func() *qstore.Store[int, int] {
			return qstore.New[int, int](qstore.Options{Degree: 5, Stripes: 5, Sync: true, Bloom: bloom})
		}
		st := mk()
		const workers = 8
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if bloom {
				st.Reset()
			} else {
				st = mk()
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j, word := range words {
						if (j+w)%2 == 0 {
							st.Set(word, j)
						} else {
							st.Get(word)
						}
					}
				}(w)
			}
			wg.Wait()
		}
	}
	b.Run("store/fastpath/trie-only", func(b *testing.B) { fastpath(b, false) })
	b.Run("store/fastpath/bloom", func(b *testing.B) { fastpath(b, true) })

	learnLeg := func(b *testing.B, opts ...polca.Option) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			oracle := polca.NewOracle(polca.NewSimProber(policy.MustNew("New1", 4)),
				append([]polca.Option{polca.WithParallelism(8)}, opts...)...)
			res, err := learn.Learn(context.Background(), oracle, learn.Options{Depth: 1})
			if err != nil {
				b.Fatal(err)
			}
			if res.Machine.NumStates != 160 {
				b.Fatalf("learned %d states, want 160", res.Machine.NumStates)
			}
			b.ReportMetric(float64(oracle.Stats().Probes), "probes/op")
		}
	}
	b.Run("learn-New1-4/single-mutex", func(b *testing.B) { learnLeg(b, polca.WithStoreStripes(1)) })
	b.Run("learn-New1-4/striped", func(b *testing.B) { learnLeg(b) })
}

// BenchmarkSnapshotWarm quantifies warm-started learning: a cold run
// learns New1-4 from scratch while a warm run loads the oracle's
// query-store snapshot first and replays every recorded answer from it.
// probes/op is the criterion metric — the warm leg must sit >= 90% below
// the cold leg (with a deterministic simulator it is exactly zero).
func BenchmarkSnapshotWarm(b *testing.B) {
	const scope = "bench:New1-4"
	var snap bytes.Buffer
	seed := polca.NewOracle(polca.NewSimProber(policy.MustNew("New1", 4)))
	if _, err := learn.Learn(context.Background(), seed, learn.Options{Depth: 1}); err != nil {
		b.Fatal(err)
	}
	if err := seed.SaveSnapshot(&snap, scope); err != nil {
		b.Fatal(err)
	}
	data := snap.Bytes()
	leg := func(b *testing.B, warm bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			oracle := polca.NewOracle(polca.NewSimProber(policy.MustNew("New1", 4)))
			if warm {
				if err := oracle.LoadSnapshot(bytes.NewReader(data), scope); err != nil {
					b.Fatal(err)
				}
			}
			res, err := learn.Learn(context.Background(), oracle, learn.Options{Depth: 1})
			if err != nil {
				b.Fatal(err)
			}
			if res.Machine.NumStates != 160 {
				b.Fatalf("learned %d states, want 160", res.Machine.NumStates)
			}
			b.ReportMetric(float64(oracle.Stats().Probes), "probes/op")
			b.ReportMetric(float64(oracle.Stats().Accesses), "accesses/op")
		}
	}
	b.Run("cold", func(b *testing.B) { leg(b, false) })
	b.Run("warm", func(b *testing.B) { leg(b, true) })
}

// BenchmarkAblationPolca quantifies the data-independence abstraction:
// learning the policy through Polca versus learning the raw cache automaton
// over a concrete block alphabet, which multiplies the state space by the
// block arrangements (§3.2).
func BenchmarkAblationPolca(b *testing.B) {
	b.Run("polca-LRU4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.LearnSimulated(context.Background(), "LRU", 4, learn.Options{Depth: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Machine.NumStates), "states")
		}
	})
	b.Run("direct-LRU4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := learn.Learn(context.Background(), &cacheTeacher{name: "LRU", assoc: 4, numBlocks: 5}, learn.Options{Depth: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Machine.NumStates), "states")
		}
	})
}

// cacheTeacher exposes the raw cache LTS (inputs: concrete blocks, outputs:
// hit/miss) to the learner, bypassing Polca — the baseline the paper
// compares against conceptually (and the reason direct learning does not
// scale: the hypothesis must encode the data-storage logic too).
type cacheTeacher struct {
	name      string
	assoc     int
	numBlocks int
}

func (t *cacheTeacher) NumInputs() int { return t.numBlocks }

func (t *cacheTeacher) OutputQuery(ctx context.Context, word []int) ([]int, error) {
	prober := polca.NewSimProber(policy.MustNew(t.name, t.assoc))
	sess, err := prober.NewSession()
	if err != nil {
		return nil, err
	}
	out := make([]int, len(word))
	for i, in := range word {
		oc, err := sess.Access(fmt.Sprintf("B%d", in+1))
		if err != nil {
			return nil, err
		}
		if oc {
			out[i] = 1
		}
	}
	return out, nil
}

// BenchmarkAblationBatch quantifies the concurrent membership-query engine:
// learning New1-4 through a serial oracle versus the batched oracle fanning
// session probes over every available core. On a single-core machine the two
// coincide (the learner detects a batch hint of 1 and stays exactly serial).
func BenchmarkAblationBatch(b *testing.B) {
	for _, mode := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"batched", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				oracle := polca.NewOracle(polca.NewSimProber(policy.MustNew("New1", 4)),
					polca.WithParallelism(mode.par))
				res, err := learn.Learn(context.Background(), oracle, learn.Options{Depth: 1})
				if err != nil {
					b.Fatal(err)
				}
				if res.Machine.NumStates != 160 {
					b.Fatalf("learned %d states, want 160", res.Machine.NumStates)
				}
			}
		})
	}
}

// BenchmarkAblationDepth varies the conformance suite depth k (§3.4) while
// learning MRU-4.
func BenchmarkAblationDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("k=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := core.LearnSimulated(context.Background(), "MRU", 4, learn.Options{Depth: depth})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.LearnStats.TestWords), "testwords/op")
			}
		})
	}
}

// BenchmarkAblationSynthPrefilter compares CEGIS with seeded witness traces
// against pure counterexample-driven CEGIS (every surviving candidate costs
// a product-equivalence check) on the LRU synthesis.
func BenchmarkAblationSynthPrefilter(b *testing.B) {
	m, err := mealy.FromPolicy(policy.MustNew("LRU", 4), 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("seeded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := synth.Synthesize(m, synth.Options{Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pure-cegis", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := synth.Synthesize(m, synth.Options{Seed: 1, SeedWitnesses: -1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSynthParallel is the parallel-CEGIS ablation: the serial
// interpreted search (one Program execution per candidate per witness)
// against the batched SoA witness kernel at 1 and 8 workers, on the two
// heaviest explainable Table 5 syntheses. The synthesized program and the
// candidates/op counter are byte-identical across all legs — that is the
// determinism contract of the sharded search — so candidates/op rides the
// strict benchjson gate while ns/op records the kernel's wall-clock win
// (the ≥4x batched-vs-interpreted speedup holds on a single core: it comes
// from allocation-free lockstep lanes, not from OS parallelism).
func BenchmarkSynthParallel(b *testing.B) {
	for _, name := range []string{"New2", "SRRIP-FP"} {
		m, err := mealy.FromPolicy(policy.MustNew(name, 4), 0)
		if err != nil {
			b.Fatal(err)
		}
		legs := []struct {
			label string
			opt   synth.Options
		}{
			{"serial-interpreted", synth.Options{Seed: 1, Parallelism: 1, Interpreted: true}},
			{"batched-x1", synth.Options{Seed: 1, Parallelism: 1}},
			{"batched-x8", synth.Options{Seed: 1, Parallelism: 8}},
		}
		for _, leg := range legs {
			b.Run(fmt.Sprintf("%s-4/%s", name, leg.label), func(b *testing.B) {
				b.ReportAllocs()
				var res *synth.Result
				for i := 0; i < b.N; i++ {
					res, err = synth.Synthesize(m, leg.opt)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.Candidates), "candidates/op")
			})
		}
	}
}

// BenchmarkOracleFanout measures the distributed oracle fan-out: one probe
// batch dispatched through remote.Fleet's sub-batch splitter at 1, 4 and 16
// loopback workers. Each worker charges a fixed per-executed-probe latency
// (WorkerConfig.ProbeCost) serialized per worker — emulating the pinned
// measurement core of a hardware backend — so throughput scales with fleet
// width, not local core count; pure simulator probes would be too cheap to
// be worth shipping over HTTP at all. Every iteration probes fresh,
// never-seen words (a base-NumInputs counter encoding), so worker memos
// never convert the load into free hits.
//
// queries/op is deterministic. qps is the criterion metric — cmd/benchjson
// gates it inverted — and the 4-worker leg exceeding the 1-worker leg is
// the fan-out acceptance check this benchmark records.
func BenchmarkOracleFanout(b *testing.B) {
	const (
		probeCost = 200 * time.Microsecond
		nWords    = 256
		numInputs = 5 // LRU-4 alphabet: assoc + 1
	)
	var counter int
	freshWords := func() [][]blocks.Block {
		qs := make([][]blocks.Block, nWords)
		for i := range qs {
			counter++
			word := make([]blocks.Block, 0, 8)
			for v := counter; v > 0; v /= numInputs {
				word = append(word, blocks.Interned(v%numInputs))
			}
			qs[i] = word
		}
		return qs
	}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("%dworkers", workers), func(b *testing.B) {
			addrs := make([]string, workers)
			for i := range addrs {
				srv := httptest.NewServer(remote.NewWorker(remote.WorkerConfig{ProbeCost: probeCost}).Handler())
				defer srv.Close()
				addrs[i] = srv.URL
			}
			fleet, err := remote.NewFleet(addrs, "sim:LRU-4", remote.FleetOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer fleet.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				qs := freshWords()
				b.StartTimer()
				if _, err := fleet.ProbeBatch(context.Background(), qs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(nWords, "queries/op")
			b.ReportMetric(float64(b.N)*nWords/b.Elapsed().Seconds(), "qps")
		})
	}
}

// BenchmarkDaemonQueries measures polcad's serving path end to end: real
// HTTP requests against the daemon handler, fanned out from 1, 8 and 64
// concurrent clients, each driving its own seeded stream of query words at
// LRU-4 (the polcaload shape, so client streams overlap heavily). The cold
// legs build a fresh daemon per iteration — every answer costs simulator
// probes; the warm legs share one daemon whose engine has already answered
// the full word set, so every request is a store hit and the number is the
// HTTP+memo serving floor.
//
// queries/op is deterministic (clients x requests per client x words). qps
// is wall-clock throughput — higher is better, and cmd/benchjson gates it
// inverted (a qps drop is the regression).
func BenchmarkDaemonQueries(b *testing.B) {
	const perClient = 32
	words := func(client int) [][]int {
		rng := rand.New(rand.NewSource(int64(client) + 1))
		out := make([][]int, perClient)
		for i := range out {
			w := make([]int, 1+rng.Intn(6))
			for j := range w {
				w[j] = rng.Intn(5)
			}
			out[i] = w
		}
		return out
	}
	drive := func(b *testing.B, ts *httptest.Server, clients int) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for _, w := range words(c) {
					body, _ := json.Marshal(map[string]any{"policy": "LRU", "assoc": 4, "word": w})
					resp, err := ts.Client().Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
					if err != nil {
						b.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						b.Errorf("status %d", resp.StatusCode)
						return
					}
				}
			}(c)
		}
		wg.Wait()
	}
	for _, clients := range []int{1, 8, 64} {
		queries := float64(clients * perClient)
		b.Run(fmt.Sprintf("LRU-4/%dclients/cold", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				srv := daemon.New(daemon.Config{})
				ts := httptest.NewServer(srv.Handler())
				b.StartTimer()
				drive(b, ts, clients)
				b.StopTimer()
				ts.Close()
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				srv.Close(ctx)
				cancel()
				b.StartTimer()
			}
			b.ReportMetric(queries, "queries/op")
			b.ReportMetric(queries*float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
		b.Run(fmt.Sprintf("LRU-4/%dclients/warm", clients), func(b *testing.B) {
			srv := daemon.New(daemon.Config{})
			ts := httptest.NewServer(srv.Handler())
			defer func() {
				ts.Close()
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				srv.Close(ctx)
				cancel()
			}()
			drive(b, ts, clients) // fill the engine store
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				drive(b, ts, clients)
			}
			b.ReportMetric(queries, "queries/op")
			b.ReportMetric(queries*float64(b.N)/b.Elapsed().Seconds(), "qps")
		})
	}
}
