// learnhw: the hardware case study (§7) on the simulated Skylake.
//
// The program learns the replacement policy of a Skylake cache set through
// the full stack — learner -> Polca -> CacheQuery -> simulated silicon —
// and identifies the result against the policy zoo. The L1 (a tree-based
// PLRU, 128 states) takes around a minute; the L2 uncovers the
// undocumented New1 policy but needs its dedicated reset sequence and a
// few minutes of probing.
//
//	go run ./examples/learnhw            # Skylake L1 (PLRU)
//	go run ./examples/learnhw -level L2  # Skylake L2 (New1)
package main

import (
	"context"

	"flag"
	"fmt"
	"log"

	"repro/internal/cachequery"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/policy"
)

func main() {
	levelName := flag.String("level", "L1", "Skylake cache level to learn (L1 or L2)")
	set := flag.Int("set", 0, "cache set to analyze")
	flag.Parse()

	level, err := hw.ParseLevel(*levelName)
	if err != nil {
		log.Fatal(err)
	}
	if level == hw.L3 {
		log.Fatal("use cmd/experiments table4 for the L3 (it needs CAT setup)")
	}
	cfg := hw.Skylake()
	installed := cfg.Config(level).Policy
	assoc := cfg.Config(level).Assoc
	fmt.Printf("Learning %s %s set %d (installed policy: %s, associativity %d)\n",
		cfg.Name, level, *set, installed, assoc)

	// Reset candidates: the synchronizing-sequence search over the
	// installed policy plays the role of the paper's manual search.
	pol := policy.MustNew(installed, assoc)
	req := core.HardwareRequest{
		CPU:              hw.NewCPU(cfg, 2024),
		Target:           cachequery.Target{Level: level, Set: *set},
		Backend:          cachequery.DefaultBackendOptions(),
		Resets:           core.ResetCandidatesFor(pol),
		Learn:            learn.Options{Depth: 1, MaxStates: 4096},
		DeterminismEvery: 128,
	}
	res, err := core.LearnHardware(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlearned %d control states (reset %q)\n", res.Machine.NumStates, res.Reset.Name())
	fmt.Printf("cost: %d output queries, %d MBL queries executed, %d served by the query cache\n",
		res.LearnStats.OutputQueries, res.Frontend.Executed, res.Frontend.CacheHits)

	truth, err := core.GroundTruthAfterReset(pol, res.Reset)
	if err != nil {
		log.Fatal(err)
	}
	if eq, _ := res.Machine.Equivalent(truth); eq {
		fmt.Printf("verified: the learned machine is trace-equivalent to %s\n", installed)
	} else {
		fmt.Println("WARNING: the learned machine differs from the installed policy")
	}
}
