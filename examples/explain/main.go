// explain: reproduce the §8 case study for the two previously undocumented
// Intel policies.
//
// The program learns New1 (Skylake/Kaby Lake L2) and New2 (their L3 leader
// sets) from software-simulated caches, synthesizes rule-based explanations
// for both, prints them next to the paper's published descriptions, and
// cross-checks the synthesized programs by running them as replacement
// policies.
//
//	go run ./examples/explain
package main

import (
	"context"

	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/policy"
	"repro/internal/synth"
)

var paperDescriptions = map[string]string{
	"New1": `  (paper §8) initial {3,3,3,0}; promote: age := 0; evict: first line
  with age 3; insert: age := 1; normalize after hit and miss: while no
  line has age 3, increase all ages except the touched line.`,
	"New2": `  (paper §8) initial {3,3,3,3}; promote: 1 -> 0, otherwise -> 1;
  evict: first line with age 3; insert: age := 1; normalize after hit and
  miss: while no line has age 3, increase all ages.`,
}

func main() {
	for _, name := range []string{"New1", "New2"} {
		// Learn the policy from a simulated cache, as in §6.
		res, err := core.LearnSimulated(context.Background(), name, 4, learn.Options{Depth: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: learned %d control states (%d output queries, %v)\n",
			name, res.Machine.NumStates, res.LearnStats.OutputQueries,
			res.LearnStats.Duration.Round(1e6))

		// Synthesize the explanation.
		expl, err := core.Explain(res.Machine, synth.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nsynthesized with the %s template (%d candidates, %v):\n%s\n",
			expl.Template, expl.Candidates, expl.Duration.Round(1e6), expl.Program)
		fmt.Printf("%s\n\n", paperDescriptions[name])

		// Close the loop: the synthesized program *is* a replacement
		// policy; running it must reproduce the learned machine.
		back, err := mealy.FromPolicyState(synth.NewRulePolicy(expl.Program), 0)
		if err != nil {
			log.Fatal(err)
		}
		if eq, _ := back.Equivalent(res.Machine); !eq {
			log.Fatalf("%s: synthesized program does not reproduce the machine", name)
		}
		fmt.Printf("cross-check: executing the synthesized program reproduces the learned %s exactly.\n", name)
		truth, _ := mealy.FromPolicy(policy.MustNew(name, 4), 0)
		if eq, _ := back.Equivalent(truth); eq {
			fmt.Printf("cross-check: it also matches the native %s implementation.\n\n", name)
		}
		fmt.Println("────────────────────────────────────────────────────────")
	}
}
