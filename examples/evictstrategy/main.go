// evictstrategy: compute optimal eviction strategies from learned models.
//
// The paper's security discussion (§10) notes that detailed replacement
// policy models enable systematically computing optimal eviction
// strategies — minimal access sequences that force a chosen line out of a
// cache set, the building block of Prime+Probe-style attacks and of
// Rowhammer-quality eviction. This example learns several policies and
// derives, for every cache line, the shortest input sequence that evicts
// it, showing how strategies differ drastically across policies.
//
//	go run ./examples/evictstrategy
package main

import (
	"context"

	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/policy"
)

func main() {
	for _, name := range []string{"LRU", "PLRU", "New1", "New2"} {
		res, err := core.LearnSimulated(context.Background(), name, 4, learn.Options{Depth: 1})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Machine
		fmt.Printf("%s (assoc 4, %d states) — shortest eviction strategies from the reset state:\n",
			name, m.NumStates)
		for line := 0; line < 4; line++ {
			w := m.ShortestEvictionWord(m.Init, line)
			if w == nil {
				fmt.Printf("  line %d: not evictable\n", line)
				continue
			}
			var steps []string
			for _, in := range w {
				steps = append(steps, policy.InputString(4, in))
			}
			fmt.Printf("  line %d: %-2d inputs  %s\n", line, len(w), strings.Join(steps, " "))
		}
		fmt.Println()
	}
	fmt.Println("Longer strategies mean the line is better protected by the policy;")
	fmt.Println("an attacker must issue that many congruent accesses to displace it.")
}
