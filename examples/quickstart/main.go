// Quickstart: the Figure 1 pipeline in miniature.
//
// We build a software-simulated 2-way cache set running LRU, expose its
// replacement policy through Polca's membership/output oracle, learn the
// policy with the L*-style learner, check the result against Example 2.2,
// and synthesize a human-readable explanation.
//
//	go run ./examples/quickstart
package main

import (
	"context"

	"fmt"
	"log"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
	"repro/internal/synth"
)

func main() {
	// 1. A 2-way cache set with a hidden LRU policy (Figure 1's toy).
	pol := policy.MustNew("LRU", 2)
	set := cache.NewSet(pol.Clone())
	fmt.Println("The cache under learning answers block queries:")
	for _, q := range []string{"A B C A", "A B C B"} {
		set.Reset()
		var outs []string
		for _, b := range []blocks.Block{q[0:1], q[2:3], q[4:5], q[6:7]} {
			oc, _ := set.Access(b)
			outs = append(outs, oc.String())
		}
		fmt.Printf("  %s  ->  %v\n", q, outs)
	}

	// 2. Polca inverts the cache's transition rules and exposes the policy.
	oracle := polca.NewOracle(polca.NewSimProber(pol.Clone()))
	word := []int{2, 0, 2} // Evct, Ln(0), Evct
	outs, err := oracle.OutputQuery(context.Background(), word)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPolca translates policy inputs into block probes:")
	for i, in := range word {
		fmt.Printf("  %-6s -> %s\n", policy.InputString(2, in), policy.OutputString(outs[i]))
	}

	// 3. The learner reconstructs the policy as a Mealy machine.
	res, err := learn.Learn(context.Background(), oracle, learn.Options{Depth: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLearned a %d-state machine with %d output queries.\n",
		res.Machine.NumStates, res.Stats.OutputQueries)

	truth, err := mealy.FromPolicy(policy.MustNew("LRU", 2), 0)
	if err != nil {
		log.Fatal(err)
	}
	if eq, _ := res.Machine.Equivalent(truth); eq {
		fmt.Println("It is trace-equivalent to LRU — exactly Example 2.2 of the paper.")
	} else {
		log.Fatal("learned machine differs from LRU")
	}

	// 4. Synthesize a rule-based explanation (§5).
	expl, err := synth.Synthesize(res.Machine, synth.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSynthesized explanation (%s template):\n%s", expl.Template, expl.Program)

	// 5. The automaton itself, ready for Graphviz.
	fmt.Println("\nDOT rendering of the learned automaton:")
	fmt.Print(res.Machine.DOT("lru2"))
}
