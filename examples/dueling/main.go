// dueling: the Appendix B adaptive-cache analysis on the simulated Skylake.
//
// The program scans a sample of L3 sets with thrashing MemBlockLang queries
// under both set-dueling steerings, classifies each set as a fixed
// thrash-susceptible leader, a fixed thrash-resistant leader, or a
// follower, and checks the detected leaders against the paper's XOR
// formula ((set>>5 & 0x1f) ^ (set & 0x1f)) == 0 && (set & 2) == 0.
//
//	go run ./examples/dueling
package main

import (
	"context"

	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/hw"
)

func main() {
	model := hw.Skylake()
	sample := experiments.DefaultLeaderSample(model)
	fmt.Printf("Scanning %d L3 sets of %s (slice 0) with thrashing queries...\n\n",
		len(sample), model.Name)

	res, err := experiments.RunLeaderScan(context.Background(), model, sample, 5)
	if err != nil {
		log.Fatal(err)
	}
	experiments.LeaderScanTable(res).Render(os.Stdout)
	fmt.Printf("\ncorrect classifications: %d/%d\n", res.Correct, len(res.SampledSets))
	fmt.Printf("detected thrash-susceptible leaders satisfy the Skylake XOR formula: %v\n", res.FormulaHolds)
	fmt.Printf("PSEL after steering high/low: %d / %d (midpoint 512)\n", res.PSELHigh, res.PSELLow)
}
