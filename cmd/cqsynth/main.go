// Command cqsynth synthesizes a rule-based explanation (§5) for a known
// replacement policy: it extracts the policy's Mealy machine and searches
// the promote/evict/insert/normalize rule grammar for an exactly
// trace-equivalent program.
//
//	cqsynth -policy New2 -assoc 4
//	cqsynth -policy LRU -assoc 4 -template simple
//	cqsynth -in learned.json            # explain a saved model
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/mealy"
	"repro/internal/policy"
	"repro/internal/synth"
)

func main() {
	polName := flag.String("policy", "", "policy to explain (see -list)")
	inPath := flag.String("in", "", "explain a saved machine (JSON, see polca -json) instead of a named policy")
	assoc := flag.Int("assoc", 4, "associativity")
	template := flag.String("template", "auto", "template: auto, simple, extended")
	list := flag.Bool("list", false, "list known policies")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(policy.Names(), "\n"))
		return
	}
	var m *mealy.Machine
	switch {
	case *polName != "" && *inPath != "":
		fatal(fmt.Errorf("choose either -policy or -in"))
	case *inPath != "":
		fh, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		m, err = mealy.Load(fh)
		fh.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d control states, associativity %d\n", *inPath, m.NumStates, m.NumInputs-1)
	case *polName != "":
		pol, err := policy.New(*polName, *assoc)
		if err != nil {
			fatal(err)
		}
		m, err = mealy.FromPolicy(pol, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s (associativity %d): %d control states\n", pol.Name(), *assoc, m.NumStates)
	default:
		flag.Usage()
		os.Exit(2)
	}

	opt := synth.Options{Seed: 1}
	switch strings.ToLower(*template) {
	case "auto":
	case "simple":
		opt.Template = synth.TemplateSimple
	case "extended":
		opt.Template = synth.TemplateExtended
	default:
		fatal(fmt.Errorf("unknown template %q", *template))
	}
	res, err := synth.Synthesize(m, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("synthesized with the %s template after %d candidates in %v:\n\n%s",
		res.Template, res.Candidates, res.Duration.Round(1e6), res.Program)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cqsynth:", err)
	os.Exit(1)
}
