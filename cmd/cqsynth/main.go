// Command cqsynth synthesizes a rule-based explanation (§5) for a known
// replacement policy: it extracts the policy's Mealy machine and searches
// the promote/evict/insert/normalize rule grammar for an exactly
// trace-equivalent program.
//
// The search is the parallel CEGIS pipeline of internal/synth: candidates
// are sharded over -parallelism workers in enumeration order and filtered
// in batches on the SoA witness kernel, and the synthesized program is
// byte-identical at any worker count.
//
//	cqsynth -policy New2 -assoc 4
//	cqsynth -policy LRU -assoc 4 -template simple
//	cqsynth -policy SRRIP-FP -parallelism 8
//	cqsynth -in learned.json            # explain a saved model
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/mealy"
	"repro/internal/policy"
	"repro/internal/synth"
)

func main() {
	polName := flag.String("policy", "", "policy to explain (see -list)")
	inPath := flag.String("in", "", "explain a saved machine (JSON, see polca -json) instead of a named policy")
	assoc := flag.Int("assoc", 4, "associativity")
	template := flag.String("template", "auto", "template: auto, simple, extended")
	list := flag.Bool("list", false, "list known policies")
	parallelism := flag.Int("parallelism", 0, "search workers sharing the candidate space (0 = GOMAXPROCS); the synthesized program is identical at any setting")
	seed := flag.Int64("seed", 1, "seed for the random witness traces of the CEGIS prefilter")
	maxCandidates := flag.Int("max-candidates", 0, "abort after examining this many candidates across all workers (0 = exhaustive)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(policy.Names(), "\n"))
		return
	}
	var m *mealy.Machine
	switch {
	case *polName != "" && *inPath != "":
		fatal(fmt.Errorf("choose either -policy or -in"))
	case *inPath != "":
		fh, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		m, err = mealy.Load(fh)
		fh.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d control states, associativity %d\n", *inPath, m.NumStates, m.NumInputs-1)
	case *polName != "":
		pol, err := policy.New(*polName, *assoc)
		if err != nil {
			fatal(err)
		}
		m, err = mealy.FromPolicy(pol, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s (associativity %d): %d control states\n", pol.Name(), *assoc, m.NumStates)
	default:
		flag.Usage()
		os.Exit(2)
	}

	opt := synth.Options{Seed: *seed, Parallelism: *parallelism, MaxCandidates: *maxCandidates}
	switch strings.ToLower(*template) {
	case "auto":
	case "simple":
		opt.Template = synth.TemplateSimple
	case "extended":
		opt.Template = synth.TemplateExtended
	default:
		fatal(fmt.Errorf("unknown template %q", *template))
	}
	res, err := synth.Synthesize(m, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("synth: %d candidates, %d witnesses, %d pruned-by-batch\n",
		res.Candidates, res.Witnesses, res.Pruned)
	fmt.Printf("synthesized with the %s template in %v:\n\n%s",
		res.Template, res.Duration.Round(1e6), res.Program)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cqsynth:", err)
	os.Exit(1)
}
