// Command polcaload is the load-test harness for polcad: it drives many
// simulated concurrent clients against a running daemon's /v1/query
// endpoint and reports throughput and latency, exercising exactly the
// multi-tenant sharing the daemon exists for (shared engines, single-flight
// coalescing, quotas).
//
// Each client runs on its own goroutine with its own seeded random word
// stream (client i uses -seed + i), so runs are reproducible and clients
// overlap heavily — the same words recur across clients, which is the
// realistic "millions of users ask similar things" shape that makes the
// shared memo pay off. The process exits non-zero when the run achieved
// zero successful queries or any request failed, so CI smoke jobs can
// assert a healthy daemon with one invocation.
//
// With -workers, polcaload bypasses the daemon and load-tests a
// distributed oracle fleet directly: clients drive probe batches at the
// polcaworker /v1/probe endpoints through the same fan-out/merge client the
// learner uses, and the report gains a per-worker throughput breakdown — the
// quickest way to find a slow or failing fleet member before committing to a
// long distributed learn.
//
//	polcaload -addr http://localhost:8344 -clients 64 -duration 10s
//	polcaload -policy SRRIP-HP -assoc 4 -clients 1000 -words 4
//	polcaload -workers localhost:8435,localhost:8436 -duration 5s
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/blocks"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/remote"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8344", "base URL of the polcad daemon")
	policy := flag.String("policy", "LRU", "policy every query targets")
	assoc := flag.Int("assoc", 4, "associativity every query targets")
	clients := flag.Int("clients", 32, "concurrent simulated clients (one goroutine each)")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	seed := flag.Int64("seed", 1, "base random seed; client i draws words from seed+i")
	maxLen := flag.Int("max-len", 6, "maximum query word length (symbols are drawn uniformly)")
	words := flag.Int("words", 1, "query words per request (batched requests exercise the SoA engine)")
	tenant := flag.String("tenant", "polcaload", "X-Tenant header value (quota identity)")
	workers := flag.String("workers", "", "comma-separated polcaworker addresses (host:port,...): load-test the oracle fleet directly instead of a polcad daemon, with a per-worker throughput breakdown")
	flag.Parse()

	if *workers != "" {
		fleetLoad(*workers, *policy, *assoc, *clients, *duration, *seed, *maxLen, *words)
		return
	}

	client := &http.Client{Timeout: 30 * time.Second}
	url := *addr + "/v1/query"
	deadline := time.Now().Add(*duration)

	type result struct {
		requests, queries, errors int
		latencies                 []time.Duration
	}
	results := make([]result, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			res := &results[c]
			for time.Now().Before(deadline) {
				body, n := randomRequest(rng, *policy, *assoc, *maxLen, *words)
				t0 := time.Now()
				ok := post(client, url, *tenant, body)
				res.latencies = append(res.latencies, time.Since(t0))
				res.requests++
				if ok {
					res.queries += n
				} else {
					res.errors++
				}
			}
		}(c)
	}
	wg.Wait()

	var total result
	for _, r := range results {
		total.requests += r.requests
		total.queries += r.queries
		total.errors += r.errors
		total.latencies = append(total.latencies, r.latencies...)
	}
	qps := float64(total.queries) / duration.Seconds()
	fmt.Printf("polcaload: %d clients x %v against %s-%d\n", *clients, *duration, *policy, *assoc)
	fmt.Printf("requests: %d  queries: %d  errors: %d\n", total.requests, total.queries, total.errors)
	fmt.Printf("qps: %.1f\n", qps)
	if len(total.latencies) > 0 {
		sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(total.latencies)-1))
			return total.latencies[i].Round(time.Microsecond)
		}
		fmt.Printf("latency: p50 %v  p95 %v  p99 %v  max %v\n", pct(0.50), pct(0.95), pct(0.99), pct(1))
	}
	if total.queries == 0 {
		fmt.Fprintln(os.Stderr, "polcaload: FAIL: zero successful queries")
		os.Exit(1)
	}
	if total.errors > 0 {
		fmt.Fprintf(os.Stderr, "polcaload: FAIL: %d failed requests\n", total.errors)
		os.Exit(1)
	}
}

// randomRequest builds one /v1/query body with `words` random query words
// and returns it with the word count.
func randomRequest(rng *rand.Rand, policy string, assoc, maxLen, words int) ([]byte, int) {
	req := struct {
		Policy string  `json:"policy"`
		Assoc  int     `json:"assoc"`
		Words  [][]int `json:"words"`
	}{Policy: policy, Assoc: assoc}
	for w := 0; w < words; w++ {
		word := make([]int, 1+rng.Intn(maxLen))
		for i := range word {
			word[i] = rng.Intn(assoc + 1)
		}
		req.Words = append(req.Words, word)
	}
	body, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return body, words
}

// fleetLoad drives probe batches at the worker fleet directly through the
// same fan-out/merge client the learner uses, then reports aggregate and
// per-worker throughput. Exits non-zero on zero successful queries or any
// failed batch, like the daemon mode.
func fleetLoad(workerList, polName string, assoc, clients int, duration time.Duration, seed int64, maxLen, words int) {
	var addrs []string
	for _, a := range strings.Split(workerList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	pol, err := policy.New(polName, assoc)
	if err != nil {
		fmt.Fprintln(os.Stderr, "polcaload:", err)
		os.Exit(1)
	}
	scope := core.SimSnapshotScope(pol.Name(), assoc)
	fleet, err := remote.NewFleet(addrs, scope, remote.FleetOptions{
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "polcaload: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "polcaload:", err)
		os.Exit(1)
	}
	defer fleet.Close()
	ctx := context.Background()
	if err := fleet.Ping(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "polcaload:", err)
		os.Exit(1)
	}

	deadline := time.Now().Add(duration)
	type result struct {
		requests, queries, errors int
		latencies                 []time.Duration
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			res := &results[c]
			for time.Now().Before(deadline) {
				qs := make([][]blocks.Block, words)
				for w := range qs {
					word := make([]blocks.Block, 1+rng.Intn(maxLen))
					for i := range word {
						word[i] = blocks.Interned(rng.Intn(assoc + 1))
					}
					qs[w] = word
				}
				t0 := time.Now()
				_, err := fleet.ProbeBatch(ctx, qs)
				res.latencies = append(res.latencies, time.Since(t0))
				res.requests++
				if err == nil {
					res.queries += len(qs)
				} else {
					res.errors++
				}
			}
		}(c)
	}
	wg.Wait()

	var total result
	for _, r := range results {
		total.requests += r.requests
		total.queries += r.queries
		total.errors += r.errors
		total.latencies = append(total.latencies, r.latencies...)
	}
	st := fleet.Stats()
	fmt.Printf("polcaload: %d clients x %v against a %d-worker fleet (scope %s)\n", clients, duration, len(addrs), scope)
	fmt.Printf("batches: %d  queries: %d  errors: %d\n", total.requests, total.queries, total.errors)
	fmt.Printf("qps: %.1f\n", float64(total.queries)/duration.Seconds())
	if len(total.latencies) > 0 {
		sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(total.latencies)-1))
			return total.latencies[i].Round(time.Microsecond)
		}
		fmt.Printf("latency: p50 %v  p95 %v  p99 %v  max %v\n", pct(0.50), pct(0.95), pct(0.99), pct(1))
	}
	for _, w := range st.Workers {
		fmt.Printf("worker %s: %d probes (%.1f/s) over %d requests, %d failures\n",
			w.Addr, w.Probes, float64(w.Probes)/duration.Seconds(), w.Requests, w.Failures)
	}
	if st.Hedges > 0 || st.Retries > 0 || st.Quarantined > 0 {
		fmt.Printf("resilience: %d hedged re-dispatches, %d request retries, %d workers quarantined, %d readmitted\n",
			st.Hedges, st.Retries, st.Quarantined, st.Readmitted)
	}
	if total.queries == 0 {
		fmt.Fprintln(os.Stderr, "polcaload: FAIL: zero successful queries")
		os.Exit(1)
	}
	if total.errors > 0 {
		fmt.Fprintf(os.Stderr, "polcaload: FAIL: %d failed batches\n", total.errors)
		os.Exit(1)
	}
}

// post issues one query request, draining the body so connections are
// reused; any non-200 status or transport error counts as a failure.
func post(client *http.Client, url, tenant string, body []byte) bool {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}
