// Command polcaload is the load-test harness for polcad: it drives many
// simulated concurrent clients against a running daemon's /v1/query
// endpoint and reports throughput and latency, exercising exactly the
// multi-tenant sharing the daemon exists for (shared engines, single-flight
// coalescing, quotas).
//
// Each client runs on its own goroutine with its own seeded random word
// stream (client i uses -seed + i), so runs are reproducible and clients
// overlap heavily — the same words recur across clients, which is the
// realistic "millions of users ask similar things" shape that makes the
// shared memo pay off. The process exits non-zero when the run achieved
// zero successful queries or any request failed, so CI smoke jobs can
// assert a healthy daemon with one invocation.
//
//	polcaload -addr http://localhost:8344 -clients 64 -duration 10s
//	polcaload -policy SRRIP-HP -assoc 4 -clients 1000 -words 4
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8344", "base URL of the polcad daemon")
	policy := flag.String("policy", "LRU", "policy every query targets")
	assoc := flag.Int("assoc", 4, "associativity every query targets")
	clients := flag.Int("clients", 32, "concurrent simulated clients (one goroutine each)")
	duration := flag.Duration("duration", 10*time.Second, "how long to drive load")
	seed := flag.Int64("seed", 1, "base random seed; client i draws words from seed+i")
	maxLen := flag.Int("max-len", 6, "maximum query word length (symbols are drawn uniformly)")
	words := flag.Int("words", 1, "query words per request (batched requests exercise the SoA engine)")
	tenant := flag.String("tenant", "polcaload", "X-Tenant header value (quota identity)")
	flag.Parse()

	client := &http.Client{Timeout: 30 * time.Second}
	url := *addr + "/v1/query"
	deadline := time.Now().Add(*duration)

	type result struct {
		requests, queries, errors int
		latencies                 []time.Duration
	}
	results := make([]result, *clients)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			res := &results[c]
			for time.Now().Before(deadline) {
				body, n := randomRequest(rng, *policy, *assoc, *maxLen, *words)
				t0 := time.Now()
				ok := post(client, url, *tenant, body)
				res.latencies = append(res.latencies, time.Since(t0))
				res.requests++
				if ok {
					res.queries += n
				} else {
					res.errors++
				}
			}
		}(c)
	}
	wg.Wait()

	var total result
	for _, r := range results {
		total.requests += r.requests
		total.queries += r.queries
		total.errors += r.errors
		total.latencies = append(total.latencies, r.latencies...)
	}
	qps := float64(total.queries) / duration.Seconds()
	fmt.Printf("polcaload: %d clients x %v against %s-%d\n", *clients, *duration, *policy, *assoc)
	fmt.Printf("requests: %d  queries: %d  errors: %d\n", total.requests, total.queries, total.errors)
	fmt.Printf("qps: %.1f\n", qps)
	if len(total.latencies) > 0 {
		sort.Slice(total.latencies, func(i, j int) bool { return total.latencies[i] < total.latencies[j] })
		pct := func(p float64) time.Duration {
			i := int(p * float64(len(total.latencies)-1))
			return total.latencies[i].Round(time.Microsecond)
		}
		fmt.Printf("latency: p50 %v  p95 %v  p99 %v  max %v\n", pct(0.50), pct(0.95), pct(0.99), pct(1))
	}
	if total.queries == 0 {
		fmt.Fprintln(os.Stderr, "polcaload: FAIL: zero successful queries")
		os.Exit(1)
	}
	if total.errors > 0 {
		fmt.Fprintf(os.Stderr, "polcaload: FAIL: %d failed requests\n", total.errors)
		os.Exit(1)
	}
}

// randomRequest builds one /v1/query body with `words` random query words
// and returns it with the word count.
func randomRequest(rng *rand.Rand, policy string, assoc, maxLen, words int) ([]byte, int) {
	req := struct {
		Policy string  `json:"policy"`
		Assoc  int     `json:"assoc"`
		Words  [][]int `json:"words"`
	}{Policy: policy, Assoc: assoc}
	for w := 0; w < words; w++ {
		word := make([]int, 1+rng.Intn(maxLen))
		for i := range word {
			word[i] = rng.Intn(assoc + 1)
		}
		req.Words = append(req.Words, word)
	}
	body, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return body, words
}

// post issues one query request, draining the body so connections are
// reused; any non-200 status or transport error counts as a failure.
func post(client *http.Client, url, tenant string, body []byte) bool {
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}
