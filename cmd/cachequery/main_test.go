package main

import "testing"

func TestModelLookup(t *testing.T) {
	for _, name := range []string{"haswell", "Skylake", "kabylake", "kbl", "toy"} {
		if _, err := model(name); err != nil {
			t.Errorf("model(%q): %v", name, err)
		}
	}
	if _, err := model("pentium"); err == nil {
		t.Error("unknown model accepted")
	}
}
