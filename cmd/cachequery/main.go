// Command cachequery is the interactive/batch interface to the simulated
// CPUs, mirroring the paper's tool: pick a CPU model, a cache level and a
// set, then submit MemBlockLang queries and read back hit/miss traces.
//
// Interactive mode (default) provides a REPL:
//
//	$ cachequery -cpu skylake
//	l2_sets/63> @ X _?
//	A B C D X A?  => Miss
//	...
//	l2_sets/63> :set l1 0        (switch target)
//	l1_sets/0> :quit
//
// Batch mode executes queries from the command line:
//
//	$ cachequery -cpu haswell -level L2 -set 63 "@ X _?" "(A B)2 A?"
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/cachequery"
	"repro/internal/experiments"
	"repro/internal/hw"
)

func main() {
	cpuName := flag.String("cpu", "skylake", "CPU model: haswell, skylake, kabylake, toy")
	levelName := flag.String("level", "L2", "cache level: L1, L2, L3")
	slice := flag.Int("slice", 0, "cache slice")
	set := flag.Int("set", 0, "cache set")
	seed := flag.Int64("seed", 1, "simulator seed")
	catWays := flag.Int("cat", 0, "virtually reduce L3 associativity via CAT (0 = off)")
	timeout := flag.Duration("timeout", 0, "abort batch queries after this long (0 = no deadline)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg, err := model(*cpuName)
	if err != nil {
		fatal(err)
	}
	level, err := hw.ParseLevel(*levelName)
	if err != nil {
		fatal(err)
	}
	cpu := hw.NewCPU(cfg, *seed)
	if *catWays > 0 {
		if err := cpu.SetCATWays(*catWays); err != nil {
			fatal(err)
		}
	}
	front := cachequery.NewFrontend(cpu, cachequery.DefaultBackendOptions())
	tgt := cachequery.Target{Level: level, Slice: *slice, Set: *set}

	if flag.NArg() > 0 {
		for _, src := range flag.Args() {
			if err := runQuery(ctx, front, tgt, src); err != nil {
				fatal(err)
			}
		}
		return
	}
	repl(ctx, front, tgt)
}

func model(name string) (hw.CPUConfig, error) {
	switch strings.ToLower(name) {
	case "haswell":
		return hw.Haswell(), nil
	case "skylake":
		return hw.Skylake(), nil
	case "kabylake", "kaby-lake", "kbl":
		return hw.KabyLake(), nil
	case "toy":
		return experiments.ToyCPU(), nil
	}
	return hw.CPUConfig{}, fmt.Errorf("unknown CPU model %q", name)
}

func runQuery(ctx context.Context, front *cachequery.Frontend, tgt cachequery.Target, src string) error {
	results, err := front.Query(ctx, tgt, src)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-24s => %s\n", r.Query.String(), r.Pattern())
	}
	return nil
}

func repl(ctx context.Context, front *cachequery.Frontend, tgt cachequery.Target) {
	in := bufio.NewScanner(os.Stdin)
	for {
		fmt.Printf("%s> ", tgt)
		if !in.Scan() {
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == ":quit" || line == ":q":
			return
		case line == ":stats":
			s := front.Stats()
			fmt.Printf("expanded %d, executed %d, cache hits %d, backend time %v\n",
				s.Expanded, s.Executed, s.CacheHits, s.Duration)
		case strings.HasPrefix(line, ":set "):
			fields := strings.Fields(line)
			if len(fields) != 3 {
				fmt.Println("usage: :set <level> <set>  (e.g. :set l2 63)")
				continue
			}
			level, err := hw.ParseLevel(strings.ToUpper(fields[1]))
			if err != nil {
				fmt.Println(err)
				continue
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				fmt.Println(err)
				continue
			}
			tgt = cachequery.Target{Level: level, Slice: tgt.Slice, Set: n}
		case strings.HasPrefix(line, ":"):
			fmt.Println("commands: :set <level> <set>, :stats, :quit")
		default:
			if err := runQuery(ctx, front, tgt, line); err != nil {
				fmt.Println("error:", err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachequery:", err)
	os.Exit(1)
}
