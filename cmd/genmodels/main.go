// Command genmodels regenerates the published Mealy-machine artifacts in
// models/: one JSON file per policy/associativity pair of the paper's Table 2
// subset that this repository ships models for, the assoc-8 extension
// artifacts the compiled policy kernel made practical to extract and verify,
// and the synth.Family zoo — seeded random rule programs, permutation
// policies and DIP-style duels spanning associativities 4 through 16.
//
// Every artifact is produced in parallel on its own goroutine. By default
// each registry policy is learned through the concurrent membership-query
// engine (learner -> batched Polca oracle -> software-simulated cache, on
// the compiled policy kernel) and each zoo member through a registry-free
// oracle over its generated policy; the result is verified trace-equivalent
// against the machine extracted from the policy implementation before
// anything is written. The canonical extracted machine (whose state names
// are the policy's control states) is what lands on disk. -quick skips the
// learning cross-check and just extracts. The two assoc-8 giants (LRU-8 has
// 40,320 control states, SRRIP-HP-8 43,818) and the heavy zoo members
// (hundreds of states, or mid-sized machines at 13+ input alphabets) are
// extraction-verified only unless -verify-heavy opts into their
// multi-minute learning cross-check.
//
// -zoo closes the loop on the zoo's in-grammar members (the assoc-4 RuleZ
// programs): each one is learned from its black-box policy, a rule program
// is re-synthesized from the learned machine with the parallel CEGIS
// search, and the synthesized program is compiled and verified equivalent
// to the extracted truth — learning, synthesis and extraction must agree
// before the artifact is written. -only samples the artifact list by
// substring (the nightly zoo-verify job regenerates a slice this way and
// diffs it against the committed files).
//
//	go run repro/cmd/genmodels            # regenerate models/ in place
//	go run repro/cmd/genmodels -out /tmp  # write elsewhere
//	go run repro/cmd/genmodels -quick     # extraction only, no learning
//	go run repro/cmd/genmodels -zoo -only RuleZ0  # learn+synth a zoo slice
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
	"repro/internal/synth"
)

// artifact is one model file to produce: either a registry-published
// policy (spec != nil) or a generated zoo member (member != nil).
type artifact struct {
	name   string
	assoc  int
	heavy  bool
	spec   *mealy.PublishedModel
	member *synth.FamilyMember
}

func (a artifact) fresh() policy.Policy {
	if a.member != nil {
		return a.member.New()
	}
	return policy.MustNew(a.name, a.assoc)
}

func main() {
	out := flag.String("out", "models", "output directory for the JSON artifacts")
	quick := flag.Bool("quick", false, "skip the learning cross-check; extract the machines only")
	verifyHeavy := flag.Bool("verify-heavy", false, "learning cross-check for the assoc-8 giants too (minutes per artifact)")
	algoName := flag.String("algo", "lstar", "learning algorithm for the cross-check: lstar or tree")
	compiled := flag.Bool("compiled", true, "run the cross-check's simulated caches on the compiled policy kernel; false interprets policies")
	snapshotDir := flag.String("snapshot-dir", "", "per-policy oracle snapshot directory for the cross-check: existing snapshots warm-start the re-learn, fresh stores are saved back")
	workers := flag.String("workers", "", "comma-separated polcaworker addresses (host:port,...): fan the cross-check's probes out over a distributed worker fleet — bit-identical artifacts")
	timeout := flag.Duration("timeout", 0, "abort the regeneration after this long (0 = no deadline); Ctrl-C cancels cleanly either way")
	zoo := flag.Bool("zoo", false, "learn->synthesize->cross-verify the in-grammar zoo members (assoc-4 rule programs) before writing them")
	only := flag.String("only", "", "generate only the artifacts whose name-assoc contains this substring")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	algo, err := learn.ParseAlgo(*algoName)
	if err != nil {
		fatal(err)
	}
	sim := core.SimOptions{Interpreted: !*compiled}
	if *workers != "" {
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				sim.FleetWorkers = append(sim.FleetWorkers, a)
			}
		}
		sim.FleetLogf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "genmodels: "+format+"\n", args...)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			fatal(err)
		}
	}

	// The registry artifact list lives in internal/mealy next to the test
	// that verifies it (mealy.TestModelArtifacts) and the zoo list in
	// internal/synth next to TestZooArtifacts, so neither can drift from
	// its verifier.
	var arts []artifact
	for _, s := range mealy.PublishedModels() {
		s := s
		arts = append(arts, artifact{name: s.Name, assoc: s.Assoc, heavy: s.Heavy, spec: &s})
	}
	for _, m := range synth.Family(synth.FamilySeed) {
		m := m
		arts = append(arts, artifact{name: m.Name, assoc: m.Assoc, heavy: m.Heavy, member: &m})
	}
	if *only != "" {
		kept := arts[:0]
		for _, a := range arts {
			if strings.Contains(fmt.Sprintf("%s-%d", a.name, a.assoc), *only) {
				kept = append(kept, a)
			}
		}
		arts = kept
		if len(arts) == 0 {
			fatal(fmt.Errorf("-only %q matches no artifact", *only))
		}
	}

	errs := make([]error, len(arts))
	var wg sync.WaitGroup
	for i, a := range arts {
		wg.Add(1)
		go func(i int, a artifact) {
			defer wg.Done()
			verify := !*quick && (!a.heavy || *verifyHeavy)
			errs[i] = generate(ctx, *out, a, verify, *zoo, algo, *snapshotDir, sim)
		}(i, a)
	}
	wg.Wait()

	failed := false
	for i, err := range errs {
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "genmodels: %s-%d: %v\n", arts[i].name, arts[i].assoc, err)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("genmodels: wrote %d artifacts to %s\n", len(arts), *out)
}

// maxZooDepth caps the conformance-depth escalation of the zoo learning
// cross-check.
const maxZooDepth = 4

// generate extracts (and optionally learns, synthesizes and cross-checks)
// one artifact.
func generate(ctx context.Context, dir string, a artifact, verify, zoo bool, algo learn.Algo, snapshotDir string, sim core.SimOptions) error {
	truth, err := mealy.FromPolicy(a.fresh(), 0)
	if err != nil {
		return err
	}
	var learned *mealy.Machine
	if verify {
		if a.spec != nil {
			snap := core.SnapshotInDir(snapshotDir, a.name, a.assoc)
			res, err := core.LearnSimulatedSim(ctx, a.name, a.assoc, learn.Options{Algo: algo, Depth: 1}, snap, sim)
			if err != nil {
				return fmt.Errorf("learning: %w", err)
			}
			learned = res.Machine
			if eq, ce := learned.Equivalent(truth); !eq {
				return fmt.Errorf("learned machine differs from the extracted one, ce=%v", ce)
			}
		} else {
			// Zoo members are not in the policy registry: learn them
			// through a registry-free oracle over the generated policy.
			// Adversarial random machines can defeat the paper's depth-1
			// conformance suite (§3.4: learning is only as sound as the
			// test suite), so escalate the depth until the learned machine
			// matches extraction; the oracle memoizes across retries, so a
			// deeper relearn only pays for the new queries.
			oracle := polca.NewOracle(polca.NewSimProber(a.fresh()))
			for depth := 1; ; depth++ {
				res, err := learn.Learn(ctx, oracle, learn.Options{Algo: algo, Depth: depth})
				if err != nil {
					return fmt.Errorf("learning: %w", err)
				}
				learned = res.Machine
				eq, ce := learned.Equivalent(truth)
				if eq {
					break
				}
				if depth >= maxZooDepth {
					return fmt.Errorf("learned machine differs from the extracted one at conformance depth %d, ce=%v", depth, ce)
				}
			}
		}
	}
	if zoo && a.member != nil && a.member.Kind == "rule" && a.assoc == 4 {
		// In-grammar member: re-synthesize a rule program from the learned
		// machine (falling back to the extracted one under -quick) and
		// require the synthesized policy to compile back to the truth.
		src := learned
		if src == nil {
			src = truth
		}
		res, err := synth.Synthesize(src, synth.Options{Seed: 1})
		if err != nil {
			return fmt.Errorf("synthesis: %w", err)
		}
		compiled, err := mealy.FromPolicy(synth.NewRulePolicy(res.Program), 0)
		if err != nil {
			return fmt.Errorf("compiling synthesized program: %w", err)
		}
		if eq, ce := compiled.Equivalent(truth); !eq {
			return fmt.Errorf("synthesized program differs from the generating one, ce=%v", ce)
		}
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%d.json", a.name, a.assoc))
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := truth.Save(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genmodels:", err)
	os.Exit(1)
}
