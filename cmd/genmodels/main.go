// Command genmodels regenerates the published Mealy-machine artifacts in
// models/: one JSON file per policy/associativity pair of the paper's Table 2
// subset that this repository ships models for, plus the assoc-8 extension
// artifacts the compiled policy kernel made practical to extract and verify.
//
// Every artifact is produced in parallel on its own goroutine. By default
// each policy is learned through the concurrent membership-query engine
// (learner -> batched Polca oracle -> software-simulated cache, on the
// compiled policy kernel) and the result is verified trace-equivalent
// against the machine extracted from the policy implementation before
// anything is written; the canonical extracted machine (whose state names
// are the policy's control states) is what lands on disk. -quick skips the
// learning cross-check and just extracts. The two assoc-8 giants (LRU-8 has
// 40,320 control states, SRRIP-HP-8 43,818) are extraction-verified only
// unless -verify-heavy opts into their multi-minute learning cross-check.
//
//	go run repro/cmd/genmodels            # regenerate models/ in place
//	go run repro/cmd/genmodels -out /tmp  # write elsewhere
//	go run repro/cmd/genmodels -quick     # extraction only, no learning
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/policy"
)

func main() {
	out := flag.String("out", "models", "output directory for the JSON artifacts")
	quick := flag.Bool("quick", false, "skip the learning cross-check; extract the machines only")
	verifyHeavy := flag.Bool("verify-heavy", false, "learning cross-check for the assoc-8 giants too (minutes per artifact)")
	algoName := flag.String("algo", "lstar", "learning algorithm for the cross-check: lstar or tree")
	compiled := flag.Bool("compiled", true, "run the cross-check's simulated caches on the compiled policy kernel; false interprets policies")
	snapshotDir := flag.String("snapshot-dir", "", "per-policy oracle snapshot directory for the cross-check: existing snapshots warm-start the re-learn, fresh stores are saved back")
	workers := flag.String("workers", "", "comma-separated polcaworker addresses (host:port,...): fan the cross-check's probes out over a distributed worker fleet — bit-identical artifacts")
	timeout := flag.Duration("timeout", 0, "abort the regeneration after this long (0 = no deadline); Ctrl-C cancels cleanly either way")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	algo, err := learn.ParseAlgo(*algoName)
	if err != nil {
		fatal(err)
	}
	sim := core.SimOptions{Interpreted: !*compiled}
	if *workers != "" {
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				sim.FleetWorkers = append(sim.FleetWorkers, a)
			}
		}
		sim.FleetLogf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "genmodels: "+format+"\n", args...)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			fatal(err)
		}
	}

	// The artifact list lives in internal/mealy next to the test that
	// verifies it (mealy.TestModelArtifacts), so the two cannot drift.
	specs := mealy.PublishedModels()
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s mealy.PublishedModel) {
			defer wg.Done()
			verify := !*quick && (!s.Heavy || *verifyHeavy)
			errs[i] = generate(ctx, *out, s, verify, algo, *snapshotDir, sim)
		}(i, s)
	}
	wg.Wait()

	failed := false
	for i, err := range errs {
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "genmodels: %s-%d: %v\n", specs[i].Name, specs[i].Assoc, err)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("genmodels: wrote %d artifacts to %s\n", len(specs), *out)
}

// generate extracts (and optionally learns and cross-checks) one artifact.
func generate(ctx context.Context, dir string, s mealy.PublishedModel, verify bool, algo learn.Algo, snapshotDir string, sim core.SimOptions) error {
	truth, err := mealy.FromPolicy(policy.MustNew(s.Name, s.Assoc), 0)
	if err != nil {
		return err
	}
	if verify {
		snap := core.SnapshotInDir(snapshotDir, s.Name, s.Assoc)
		res, err := core.LearnSimulatedSim(ctx, s.Name, s.Assoc, learn.Options{Algo: algo, Depth: 1}, snap, sim)
		if err != nil {
			return fmt.Errorf("learning: %w", err)
		}
		if eq, ce := res.Machine.Equivalent(truth); !eq {
			return fmt.Errorf("learned machine differs from the extracted one, ce=%v", ce)
		}
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%d.json", s.Name, s.Assoc))
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := truth.Save(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genmodels:", err)
	os.Exit(1)
}
