// Command genmodels regenerates the published Mealy-machine artifacts in
// models/: one JSON file per policy/associativity pair of the paper's Table 2
// subset that this repository ships models for.
//
// Every artifact is produced in parallel on its own goroutine. By default
// each policy is learned through the concurrent membership-query engine
// (learner -> batched Polca oracle -> software-simulated cache) and the
// result is verified trace-equivalent against the machine extracted from the
// policy implementation before anything is written; the canonical extracted
// machine (whose state names are the policy's control states) is what lands
// on disk. -quick skips the learning cross-check and just extracts.
//
//	go run repro/cmd/genmodels            # regenerate models/ in place
//	go run repro/cmd/genmodels -out /tmp  # write elsewhere
//	go run repro/cmd/genmodels -quick     # extraction only, no learning
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/policy"
)

// spec is one published artifact.
type spec struct {
	name  string
	assoc int
}

// Published is the artifact list internal/mealy.TestModelArtifacts verifies.
func published() []spec {
	return []spec{
		{"FIFO", 4}, {"LRU", 4}, {"PLRU", 4}, {"PLRU", 8}, {"MRU", 4},
		{"LIP", 4}, {"SRRIP-HP", 4}, {"SRRIP-FP", 4}, {"New1", 4}, {"New2", 4},
	}
}

func main() {
	out := flag.String("out", "models", "output directory for the JSON artifacts")
	quick := flag.Bool("quick", false, "skip the learning cross-check; extract the machines only")
	algoName := flag.String("algo", "lstar", "learning algorithm for the cross-check: lstar or tree")
	snapshotDir := flag.String("snapshot-dir", "", "per-policy oracle snapshot directory for the cross-check: existing snapshots warm-start the re-learn, fresh stores are saved back")
	flag.Parse()

	algo, err := learn.ParseAlgo(*algoName)
	if err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			fatal(err)
		}
	}

	specs := published()
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s spec) {
			defer wg.Done()
			errs[i] = generate(*out, s, !*quick, algo, *snapshotDir)
		}(i, s)
	}
	wg.Wait()

	failed := false
	for i, err := range errs {
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "genmodels: %s-%d: %v\n", specs[i].name, specs[i].assoc, err)
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("genmodels: wrote %d artifacts to %s\n", len(specs), *out)
}

// generate extracts (and optionally learns and cross-checks) one artifact.
func generate(dir string, s spec, verify bool, algo learn.Algo, snapshotDir string) error {
	truth, err := mealy.FromPolicy(policy.MustNew(s.name, s.assoc), 0)
	if err != nil {
		return err
	}
	if verify {
		snap := core.SnapshotInDir(snapshotDir, s.name, s.assoc)
		res, err := core.LearnSimulatedSnapshot(s.name, s.assoc, learn.Options{Algo: algo, Depth: 1}, snap)
		if err != nil {
			return fmt.Errorf("learning: %w", err)
		}
		if eq, ce := res.Machine.Equivalent(truth); !eq {
			return fmt.Errorf("learned machine differs from the extracted one, ce=%v", ce)
		}
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%d.json", s.name, s.assoc))
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := truth.Save(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genmodels:", err)
	os.Exit(1)
}
