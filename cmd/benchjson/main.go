// Command benchjson seeds and extends the repository's performance
// trajectory: it runs the benchmark suite once (go test -run=NONE -bench
// -benchtime=1x, -short by default) and writes the parsed results to a
// dated BENCH_<date>.json file, so successive PRs leave comparable
// machine-readable baselines behind.
//
// With -compare it becomes the CI regression gate: the fresh run is compared
// against a committed baseline and the command exits nonzero when any named
// benchmark regresses past the tolerance. Deterministic counters (B/op,
// allocs/op, and every custom metric such as probes/op or accesses/op) are
// held to -tolerance; wall-clock ns/op — noisy at -benchtime=1x on shared
// runners — is held to the looser -time-tolerance. A benchmark present only
// in the baseline is reported but does not fail the gate (benchmarks get
// renamed); a benchmark present only in the current run passes but warns
// once — it is ungated until a regenerated baseline covers it. A deliberate
// perf-relevant change is acknowledged by regenerating the baseline in the
// same PR.
//
//	go run repro/cmd/benchjson                  # writes BENCH_<today>.json
//	go run repro/cmd/benchjson -bench Ablation  # only the ablation suites
//	go run repro/cmd/benchjson -compare BENCH_2026-07-30.json -tolerance 0.25
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other reported unit (probes/op, accesses/op, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the file schema.
type Baseline struct {
	Date      string `json:"date"`
	Go        string `json:"go"`
	Goos      string `json:"goos,omitempty"`
	Goarch    string `json:"goarch,omitempty"`
	CPU       string `json:"cpu,omitempty"`
	Pkg       string `json:"pkg,omitempty"`
	Bench     string `json:"bench"`
	Benchtime string `json:"benchtime"`
	Short     bool   `json:"short"`
	// Gomaxprocs records the run's GOMAXPROCS — the suffix testing appends
	// to benchmark names — so comparisons can strip it exactly instead of
	// guessing whether a trailing -<digits> is part of the name.
	Gomaxprocs int      `json:"gomaxprocs,omitempty"`
	Results    []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to -bench")
	benchtime := flag.String("benchtime", "1x", "value passed to -benchtime")
	short := flag.Bool("short", true, "run with -short (skips the heaviest ablation legs)")
	pkg := flag.String("pkg", "repro", "package pattern holding the benchmarks")
	out := flag.String("out", "", "output path (default BENCH_<date>.json; compare mode writes only when set explicitly)")
	comparePath := flag.String("compare", "", "baseline JSON to compare the run against; exit nonzero on regression")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression for deterministic counters (compare mode)")
	timeTolerance := flag.Float64("time-tolerance", 1.0, "allowed fractional regression for ns/op (compare mode; loose because -benchtime=1x timing is noisy)")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" && *comparePath == "" {
		path = "BENCH_" + date + ".json"
	}

	// Load the baseline up front: a typo'd path, truncated file, or corrupt
	// JSON should fail in milliseconds, not after the multi-minute benchmark
	// run.
	var base *Baseline
	if *comparePath != "" {
		var err error
		if base, err = loadBaseline(*comparePath); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}

	args := []string{"test", "-run=NONE", "-bench=" + *bench, "-benchtime=" + *benchtime}
	if *short {
		args = append(args, "-short")
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	os.Stdout.Write(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	b := parseRun(string(raw))
	b.Date = date
	b.Bench = *bench
	b.Benchtime = *benchtime
	b.Short = *short
	b.Pkg = *pkg
	b.Gomaxprocs = runtime.GOMAXPROCS(0)
	if v, err := exec.Command("go", "env", "GOVERSION").Output(); err == nil {
		b.Go = strings.TrimSpace(string(v))
	}
	if len(b.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}

	if path != "" {
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(b.Results), path)
	}

	if base != nil {
		rep := compareBaselines(base, &b, *tolerance, *timeTolerance)
		for _, m := range rep.Missing {
			fmt.Fprintf(os.Stderr, "benchjson: note: baseline benchmark %s not in this run\n", m)
		}
		for _, n := range rep.New {
			fmt.Fprintf(os.Stderr, "benchjson: WARNING: %s is not in the baseline and is not gated; regenerate the baseline to cover it\n", n)
		}
		fmt.Fprintf(os.Stderr, "benchjson: compared %d benchmarks against %s\n", rep.Compared, *comparePath)
		if len(rep.Regressions) > 0 {
			for _, r := range rep.Regressions {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchjson: no regressions past tolerance")
	}
}

// loadBaseline reads and validates a committed baseline. Every failure mode a
// damaged checkout can produce — missing file, truncated or otherwise invalid
// JSON, a JSON document of the wrong shape, a well-formed file holding no
// results, a result row with no name — gets a distinct, path-prefixed message,
// because the caller exits nonzero on any of them and the message is all the
// CI log will show.
func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%s: baseline file is empty", path)
	}
	base := &Baseline{}
	if err := json.Unmarshal(data, base); err != nil {
		var syn *json.SyntaxError
		if errors.As(err, &syn) && syn.Offset >= int64(len(data))-1 {
			return nil, fmt.Errorf("%s: baseline JSON is truncated (%v); regenerate it with benchjson", path, err)
		}
		return nil, fmt.Errorf("%s: baseline is not valid JSON: %v", path, err)
	}
	if len(base.Results) == 0 {
		return nil, fmt.Errorf("%s: baseline holds no results (wrong file, or a run that produced none?)", path)
	}
	for i, r := range base.Results {
		if r.Name == "" {
			return nil, fmt.Errorf("%s: baseline result %d has no name; regenerate it with benchjson", path, i)
		}
	}
	return base, nil
}

// parseRun extracts the platform header and benchmark lines of one `go test
// -bench` run.
func parseRun(raw string) Baseline {
	var b Baseline
	for _, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			b.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			b.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			b.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				b.Results = append(b.Results, r)
			}
		}
	}
	return b
}

// parseLine parses one testing output line:
//
//	BenchmarkName-8   1   123 ns/op   456 accesses/op   789 B/op   2 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: n}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}

// stripProc removes the exact "-<procs>" suffix testing appends to benchmark
// names when GOMAXPROCS is procs (testing omits the suffix entirely at
// GOMAXPROCS=1), leaving names that merely end in digits alone.
func stripProc(name string, procs int) string {
	if procs > 1 {
		if suf := "-" + strconv.Itoa(procs); strings.HasSuffix(name, suf) {
			return name[:len(name)-len(suf)]
		}
	}
	return name
}

// normalizeName strips a trailing -<digits> from a benchmark name. It is the
// legacy fallback for baselines recorded before Gomaxprocs was stored: it
// cannot tell a proc suffix from a name that happens to end in digits
// ("BenchmarkTable2/LRU-4" on one core carries no suffix at all), so legacy
// matching tries exact names first and normalized forms only as a fallback.
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compareReport is the outcome of one baseline comparison.
type compareReport struct {
	Compared    int      // benchmarks present in both runs
	Regressions []string // human-readable regression descriptions
	Missing     []string // baseline benchmarks absent from the current run
	New         []string // current-run benchmarks absent from the baseline
}

// compareBaselines checks every benchmark of the current run against the
// baseline. A value regresses when it exceeds baseline*(1+tol) — timeTol for
// ns/op, tol for the deterministic counters (B/op, allocs/op, and custom
// metrics). The "qps" unit is throughput, where higher is better and the
// value is as wall-clock-noisy as ns/op, so it is gated inverted at the time
// tolerance: a run regresses when qps falls below baseline/(1+timeTol). A
// deterministic counter the baseline has but the current run no longer
// reports is also a failure: a silently vanished probes/op is exactly the
// kind of broken stats plumbing the gate exists to catch. Zero-valued
// baseline entries are skipped: there is no meaningful ratio against zero.
func compareBaselines(base, cur *Baseline, tol, timeTol float64) compareReport {
	var rep compareReport
	// With Gomaxprocs recorded on both sides the proc suffix is stripped
	// exactly and names pair one to one. Legacy baselines (no Gomaxprocs)
	// fall back to heuristic matching: exact names first — so a trailing
	// "-4" that is part of the benchmark's own name still pairs correctly —
	// then the normalized forms for cross-core-count runs.
	precise := base.Gomaxprocs > 0 && cur.Gomaxprocs > 0
	baseKey := func(name string) string {
		if precise {
			return stripProc(name, base.Gomaxprocs)
		}
		return name
	}
	exact := make(map[string]int, len(base.Results))
	norm := make(map[string]int, len(base.Results))
	for i, r := range base.Results {
		exact[baseKey(r.Name)] = i
		if n := normalizeName(r.Name); !precise && n != r.Name {
			if _, dup := norm[n]; !dup {
				norm[n] = i
			}
		}
	}
	lookup := func(name string) (int, bool) {
		if precise {
			i, ok := exact[stripProc(name, cur.Gomaxprocs)]
			return i, ok
		}
		for _, k := range []string{name, normalizeName(name)} {
			if i, ok := exact[k]; ok {
				return i, true
			}
			if i, ok := norm[k]; ok {
				return i, true
			}
		}
		return 0, false
	}
	matched := make([]bool, len(base.Results))
	for _, r := range cur.Results {
		bi, ok := lookup(r.Name)
		if !ok {
			// New benchmark: ungated until it lands in a regenerated
			// baseline. Report it — a leg the baseline never covers would
			// otherwise pass silently forever.
			rep.New = append(rep.New, r.Name)
			continue
		}
		b := base.Results[bi]
		matched[bi] = true
		rep.Compared++
		name := normalizeName(r.Name)
		check := func(metric string, got, want, allowed float64) {
			if want <= 0 || got <= want*(1+allowed) {
				return
			}
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s %s: %.6g vs baseline %.6g (+%.1f%%, tolerance %.0f%%)",
					name, metric, got, want, 100*(got/want-1), 100*allowed))
		}
		checkRate := func(metric string, got, want, allowed float64) {
			if want <= 0 || got >= want/(1+allowed) {
				return
			}
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s %s: %.6g vs baseline %.6g (%.1f%%, tolerance -%.0f%%)",
					name, metric, got, want, 100*(got/want-1), 100*(1-1/(1+allowed))))
		}
		check("ns/op", r.NsPerOp, b.NsPerOp, timeTol)
		check("B/op", r.BytesPerOp, b.BytesPerOp, tol)
		check("allocs/op", r.AllocsPerOp, b.AllocsPerOp, tol)
		for unit, want := range b.Metrics {
			got, ok := r.Metrics[unit]
			if !ok && want > 0 {
				rep.Regressions = append(rep.Regressions,
					fmt.Sprintf("%s %s: metric vanished (baseline %.6g)", name, unit, want))
				continue
			}
			if unit == "qps" {
				checkRate(unit, got, want, timeTol)
				continue
			}
			check(unit, got, want, tol)
		}
	}
	for i, r := range base.Results {
		if !matched[i] {
			rep.Missing = append(rep.Missing, baseKey(r.Name))
		}
	}
	return rep
}
