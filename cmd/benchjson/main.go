// Command benchjson seeds and extends the repository's performance
// trajectory: it runs the benchmark suite once (go test -run=NONE -bench
// -benchtime=1x, -short by default) and writes the parsed results to a
// dated BENCH_<date>.json file, so successive PRs leave comparable
// machine-readable baselines behind.
//
//	go run repro/cmd/benchjson                  # writes BENCH_<today>.json
//	go run repro/cmd/benchjson -bench Ablation  # only the ablation suites
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other reported unit (probes/op, accesses/op, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the file schema.
type Baseline struct {
	Date      string   `json:"date"`
	Go        string   `json:"go"`
	Goos      string   `json:"goos,omitempty"`
	Goarch    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Pkg       string   `json:"pkg,omitempty"`
	Bench     string   `json:"bench"`
	Benchtime string   `json:"benchtime"`
	Short     bool     `json:"short"`
	Results   []Result `json:"results"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark regexp passed to -bench")
	benchtime := flag.String("benchtime", "1x", "value passed to -benchtime")
	short := flag.Bool("short", true, "run with -short (skips the heaviest ablation legs)")
	pkg := flag.String("pkg", "repro", "package pattern holding the benchmarks")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}

	args := []string{"test", "-run=NONE", "-bench=" + *bench, "-benchtime=" + *benchtime}
	if *short {
		args = append(args, "-short")
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	os.Stdout.Write(raw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	b := Baseline{
		Date:      date,
		Bench:     *bench,
		Benchtime: *benchtime,
		Short:     *short,
		Pkg:       *pkg,
	}
	if v, err := exec.Command("go", "env", "GOVERSION").Output(); err == nil {
		b.Go = strings.TrimSpace(string(v))
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			b.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			b.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			b.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				b.Results = append(b.Results, r)
			}
		}
	}
	if len(b.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results parsed")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(b.Results), path)
}

// parseLine parses one testing output line:
//
//	BenchmarkName-8   1   123 ns/op   456 accesses/op   789 B/op   2 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Result{}, false
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: n}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
