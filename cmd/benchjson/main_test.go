package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadBaselineRejectsDamagedFiles: -compare must fail fast with a clear,
// path-bearing message on every way a committed baseline can be damaged —
// most importantly a truncated JSON file, which is what an interrupted
// regeneration or a bad merge leaves behind.
func TestLoadBaselineRejectsDamagedFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	valid := `{"date":"2026-08-08","bench":".","benchtime":"1x","results":[{"name":"BenchmarkA-8","iterations":1,"ns_per_op":100}]}`

	if b, err := loadBaseline(write("good.json", valid)); err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	} else if len(b.Results) != 1 || b.Results[0].Name != "BenchmarkA-8" {
		t.Fatalf("valid baseline parsed wrongly: %+v", b)
	}

	cases := []struct {
		name    string
		path    string
		wantMsg string
	}{
		{"missing", filepath.Join(dir, "nope.json"), "no such file"},
		{"empty", write("empty.json", ""), "empty"},
		{"truncated", write("trunc.json", valid[:len(valid)/2]), "truncated"},
		{"garbage", write("garbage.json", "goos: linux\nBenchmarkA 1 100 ns/op\n"), "not valid JSON"},
		{"wrong-shape", write("shape.json", `["BenchmarkA-8"]`), "not valid JSON"},
		{"no-results", write("nores.json", `{"date":"2026-08-08","results":[]}`), "no results"},
		{"nameless", write("noname.json", `{"results":[{"iterations":1,"ns_per_op":100}]}`), "no name"},
	}
	for _, c := range cases {
		_, err := loadBaseline(c.path)
		if err == nil {
			t.Errorf("%s: damaged baseline accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantMsg) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantMsg)
		}
		if c.name != "missing" && !strings.Contains(err.Error(), c.path) {
			t.Errorf("%s: error %q does not name the file", c.name, err)
		}
	}
}

func TestParseRun(t *testing.T) {
	raw := `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkAblationAlgo/LRU-4/lstar-8     1   32312209 ns/op   4362 queries/op   16979544 B/op   241517 allocs/op
BenchmarkAblationAlgo/LRU-4/tree-8      1   26549108 ns/op   2672 queries/op   15828592 B/op   213317 allocs/op
PASS
ok   repro  26.689s
`
	b := parseRun(raw)
	if b.Goos != "linux" || b.Goarch != "amd64" || !strings.Contains(b.CPU, "Xeon") {
		t.Errorf("platform header parsed wrongly: %+v", b)
	}
	if len(b.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(b.Results))
	}
	r := b.Results[0]
	if r.Name != "BenchmarkAblationAlgo/LRU-4/lstar-8" || r.NsPerOp != 32312209 ||
		r.BytesPerOp != 16979544 || r.AllocsPerOp != 241517 || r.Metrics["queries/op"] != 4362 {
		t.Errorf("result parsed wrongly: %+v", r)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":          "BenchmarkX",
		"BenchmarkX-16":         "BenchmarkX",
		"BenchmarkX/LRU-4/go-8": "BenchmarkX/LRU-4/go",
		"BenchmarkX/LRU-4":      "BenchmarkX/LRU", // a trailing assoc is indistinguishable from a proc count, which is why matching tries exact names first
		"BenchmarkPlain":        "BenchmarkPlain",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestCompareMatchesAcrossCoreCounts: the committed baseline may be recorded
// on a single-core machine (no -GOMAXPROCS suffix, so "BenchmarkTable2/LRU-4"
// is the exact name) while CI prints "BenchmarkTable2/LRU-4-4". Every suffix
// combination must pair up — exactly when both sides record Gomaxprocs,
// heuristically for legacy baselines — and regressions in such benchmarks
// must fail.
func TestCompareMatchesAcrossCoreCounts(t *testing.T) {
	cases := []struct {
		baseName, curName   string
		baseProcs, curProcs int
	}{
		{"BenchmarkTable2/LRU-4", "BenchmarkTable2/LRU-4-4", 1, 4},   // 1-core baseline, 4-core run
		{"BenchmarkTable2/LRU-4-8", "BenchmarkTable2/LRU-4", 8, 1},   // 8-core baseline, 1-core run
		{"BenchmarkTable2/LRU-4-8", "BenchmarkTable2/LRU-4-2", 8, 2}, // different core counts
		{"BenchmarkTable2/LRU-4", "BenchmarkTable2/LRU-4", 1, 1},     // identical
		{"BenchmarkTable2/LRU-4", "BenchmarkTable2/LRU-4-4", 0, 0},   // legacy baseline: heuristic fallback
		{"BenchmarkTable2/LRU-4-8", "BenchmarkTable2/LRU-4", 0, 0},
	}
	for _, c := range cases {
		base := baselineOf(Result{Name: c.baseName, NsPerOp: 1000, Metrics: map[string]float64{"probes/op": 100}})
		base.Gomaxprocs = c.baseProcs
		cur := baselineOf(Result{Name: c.curName, NsPerOp: 1000, Metrics: map[string]float64{"probes/op": 100}})
		cur.Gomaxprocs = c.curProcs
		rep := compareBaselines(base, cur, 0.25, 1.0)
		if rep.Compared != 1 || len(rep.Missing) != 0 || len(rep.Regressions) != 0 {
			t.Errorf("%s vs %s: not matched cleanly: %+v", c.baseName, c.curName, rep)
		}
		cur = baselineOf(Result{Name: c.curName, NsPerOp: 1000, Metrics: map[string]float64{"probes/op": 200}})
		cur.Gomaxprocs = c.curProcs
		if rep = compareBaselines(base, cur, 0.25, 1.0); len(rep.Regressions) != 1 {
			t.Errorf("%s vs %s: probe regression not caught: %+v", c.baseName, c.curName, rep)
		}
	}
}

// TestCompareDoesNotCrossMatchDigitNames: with Gomaxprocs recorded, a new
// benchmark whose own name ends in digits ("LRU-16") must NOT pair with a
// different baseline entry ("LRU-4") via over-eager suffix stripping — it is
// a new benchmark and is skipped.
func TestCompareDoesNotCrossMatchDigitNames(t *testing.T) {
	base := baselineOf(Result{Name: "BenchmarkTable2/LRU-4", NsPerOp: 1000, Metrics: map[string]float64{"probes/op": 100}})
	base.Gomaxprocs = 1
	cur := baselineOf(Result{Name: "BenchmarkTable2/LRU-16", NsPerOp: 9999, Metrics: map[string]float64{"probes/op": 5000}})
	cur.Gomaxprocs = 1
	rep := compareBaselines(base, cur, 0.25, 1.0)
	if rep.Compared != 0 || len(rep.Regressions) != 0 {
		t.Errorf("LRU-16 cross-matched LRU-4: %+v", rep)
	}
	if len(rep.Missing) != 1 {
		t.Errorf("LRU-4 baseline should be reported missing: %+v", rep)
	}
}

// TestCompareFlagsVanishedMetric: a deterministic counter the current run no
// longer reports must fail the gate, not compare as zero.
func TestCompareFlagsVanishedMetric(t *testing.T) {
	base := baselineOf(Result{Name: "BenchmarkA-8", NsPerOp: 1000, Metrics: map[string]float64{"probes/op": 100}})
	cur := baselineOf(Result{Name: "BenchmarkA-8", NsPerOp: 1000})
	rep := compareBaselines(base, cur, 0.25, 1.0)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "vanished") {
		t.Errorf("vanished metric not flagged: %+v", rep)
	}
}

func baselineOf(results ...Result) *Baseline { return &Baseline{Results: results} }

// TestCompareReportsNewBenchmarks: a leg present in the current run but not
// in the baseline must be surfaced once in the New list (it is ungated
// until the baseline is regenerated — silence would read as coverage), and
// it must never fail the gate or count as compared. Matched legs must not
// leak into the list under either matching mode.
func TestCompareReportsNewBenchmarks(t *testing.T) {
	base := baselineOf(Result{Name: "BenchmarkOld-8", NsPerOp: 1000})
	base.Gomaxprocs = 8
	cur := baselineOf(
		Result{Name: "BenchmarkOld-4", NsPerOp: 1000},
		Result{Name: "BenchmarkShiny/new-leg-4", NsPerOp: 123456,
			Metrics: map[string]float64{"probes/op": 1e9}},
	)
	cur.Gomaxprocs = 4
	rep := compareBaselines(base, cur, 0.25, 1.0)
	if len(rep.New) != 1 || rep.New[0] != "BenchmarkShiny/new-leg-4" {
		t.Errorf("new list wrong: %+v", rep.New)
	}
	if rep.Compared != 1 || len(rep.Regressions) != 0 || len(rep.Missing) != 0 {
		t.Errorf("new benchmark disturbed the comparison: %+v", rep)
	}

	// Legacy baselines (no Gomaxprocs) use heuristic matching; an entry
	// matched through the normalized fallback is not new.
	base = baselineOf(Result{Name: "BenchmarkOld-8", NsPerOp: 1000})
	cur = baselineOf(Result{Name: "BenchmarkOld-4", NsPerOp: 1000})
	if rep = compareBaselines(base, cur, 0.25, 1.0); len(rep.New) != 0 || rep.Compared != 1 {
		t.Errorf("legacy-matched benchmark reported as new: %+v", rep)
	}
}

func TestCompareDetectsRegressions(t *testing.T) {
	base := baselineOf(
		Result{Name: "BenchmarkA-8", NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10,
			Metrics: map[string]float64{"probes/op": 50}},
		Result{Name: "BenchmarkB-8", NsPerOp: 2000},
	)

	// Identical run on a machine with a different core count: clean.
	cur := baselineOf(
		Result{Name: "BenchmarkA-16", NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10,
			Metrics: map[string]float64{"probes/op": 50}},
		Result{Name: "BenchmarkB-16", NsPerOp: 2000},
	)
	rep := compareBaselines(base, cur, 0.25, 1.0)
	if len(rep.Regressions) != 0 || rep.Compared != 2 || len(rep.Missing) != 0 {
		t.Errorf("clean run reported %+v", rep)
	}

	// A deterministic counter past tolerance fails; timing within its own
	// (looser) tolerance does not.
	cur = baselineOf(
		Result{Name: "BenchmarkA-8", NsPerOp: 1900, BytesPerOp: 100, AllocsPerOp: 10,
			Metrics: map[string]float64{"probes/op": 80}},
		Result{Name: "BenchmarkB-8", NsPerOp: 2000},
	)
	rep = compareBaselines(base, cur, 0.25, 1.0)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "probes/op") {
		t.Errorf("probe regression not caught: %+v", rep)
	}

	// An injected slowdown past the time tolerance fails.
	cur = baselineOf(
		Result{Name: "BenchmarkA-8", NsPerOp: 2100, BytesPerOp: 100, AllocsPerOp: 10,
			Metrics: map[string]float64{"probes/op": 50}},
		Result{Name: "BenchmarkB-8", NsPerOp: 2000},
	)
	rep = compareBaselines(base, cur, 0.25, 1.0)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "ns/op") {
		t.Errorf("time regression not caught: %+v", rep)
	}

	// A renamed/removed benchmark is reported but does not fail the gate; a
	// brand-new benchmark passes but is surfaced in the New list.
	cur = baselineOf(
		Result{Name: "BenchmarkA-8", NsPerOp: 1000, BytesPerOp: 100, AllocsPerOp: 10,
			Metrics: map[string]float64{"probes/op": 50}},
		Result{Name: "BenchmarkC-8", NsPerOp: 99999},
	)
	rep = compareBaselines(base, cur, 0.25, 1.0)
	if len(rep.Regressions) != 0 || rep.Compared != 1 {
		t.Errorf("rename handled wrongly: %+v", rep)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "BenchmarkB-8" {
		t.Errorf("missing list wrong: %+v", rep.Missing)
	}
	if len(rep.New) != 1 || rep.New[0] != "BenchmarkC-8" {
		t.Errorf("new list wrong: %+v", rep.New)
	}

	// Zero-valued baseline entries (no -benchmem, no metric) never divide.
	base = baselineOf(Result{Name: "BenchmarkD-8", NsPerOp: 1000})
	cur = baselineOf(Result{Name: "BenchmarkD-8", NsPerOp: 1000, BytesPerOp: 5000, AllocsPerOp: 77})
	if rep = compareBaselines(base, cur, 0.25, 1.0); len(rep.Regressions) != 0 {
		t.Errorf("zero baseline compared: %+v", rep)
	}
}

// TestCompareQpsHigherIsBetter: the "qps" throughput metric is gated
// inverted — a drop below baseline/(1+timeTol) regresses, an increase never
// does (the plain rule would flag every improvement).
func TestCompareQpsHigherIsBetter(t *testing.T) {
	base := baselineOf(Result{Name: "BenchmarkDaemonQueries/LRU-4/8clients/warm-8",
		NsPerOp: 1000, Metrics: map[string]float64{"qps": 1000, "queries/op": 256}})

	// A big qps improvement is not a regression.
	cur := baselineOf(Result{Name: "BenchmarkDaemonQueries/LRU-4/8clients/warm-8",
		NsPerOp: 1000, Metrics: map[string]float64{"qps": 4000, "queries/op": 256}})
	if rep := compareBaselines(base, cur, 0.25, 1.0); len(rep.Regressions) != 0 {
		t.Errorf("qps improvement flagged: %+v", rep.Regressions)
	}

	// Within the inverted time tolerance (1000/(1+1.0) = 500): clean.
	cur = baselineOf(Result{Name: "BenchmarkDaemonQueries/LRU-4/8clients/warm-8",
		NsPerOp: 1000, Metrics: map[string]float64{"qps": 600, "queries/op": 256}})
	if rep := compareBaselines(base, cur, 0.25, 1.0); len(rep.Regressions) != 0 {
		t.Errorf("tolerable qps dip flagged: %+v", rep.Regressions)
	}

	// Past it: regression, attributed to qps.
	cur = baselineOf(Result{Name: "BenchmarkDaemonQueries/LRU-4/8clients/warm-8",
		NsPerOp: 1000, Metrics: map[string]float64{"qps": 400, "queries/op": 256}})
	rep := compareBaselines(base, cur, 0.25, 1.0)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "qps") {
		t.Errorf("qps collapse not caught: %+v", rep.Regressions)
	}

	// A vanished qps metric still fails like any other vanished counter.
	cur = baselineOf(Result{Name: "BenchmarkDaemonQueries/LRU-4/8clients/warm-8",
		NsPerOp: 1000, Metrics: map[string]float64{"queries/op": 256}})
	rep = compareBaselines(base, cur, 0.25, 1.0)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "vanished") {
		t.Errorf("vanished qps not flagged: %+v", rep.Regressions)
	}
}
