// Command experiments regenerates the tables and figures of the CacheQuery
// paper's evaluation against the simulated CPUs.
//
// Usage:
//
//	experiments fig1
//	experiments table2 [-full]
//	experiments table3
//	experiments table4 [-full]
//	experiments table5 [-programs]
//	experiments costs [-assoc N] [-reps N]
//	experiments appendixb [-reps N]
//	experiments all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/cachequery"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/learn"
)

func main() {
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline); Ctrl-C cancels cleanly either way")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var err error
	switch cmd {
	case "fig1":
		err = runFig1(ctx)
	case "table2":
		err = runTable2(ctx, args)
	case "table3":
		experiments.Table3Table().Render(os.Stdout)
	case "table4":
		err = runTable4(ctx, args)
	case "table5":
		err = runTable5(args)
	case "costs":
		err = runCosts(ctx, args)
	case "appendixb":
		err = runAppendixB(ctx, args)
	case "baselines":
		err = runBaselines(ctx)
	case "all":
		err = runAll(ctx)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: experiments [-timeout d] <fig1|table2|table3|table4|table5|costs|appendixb|baselines|all> [flags]`)
}

func runFig1(ctx context.Context) error {
	report, err := experiments.RunFigure1(ctx)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func runTable2(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	full := fs.Bool("full", false, "include the large instances (hours of runtime)")
	concurrency := fs.Int("concurrency", 1, "learn up to this many rows concurrently (1 keeps per-row times comparable to the paper)")
	workers := fs.String("workers", "", "comma-separated polcaworker addresses (host:port,...): fan each row's probes out over a distributed worker fleet — bit-identical rows")
	algoName := fs.String("algo", "lstar", "learning algorithm: lstar (observation table) or tree (discrimination tree)")
	suiteName := fs.String("suite", "wp", "conformance suite: wp, w, or rw (seeded random walk)")
	seed := fs.Int64("seed", 1, "random-walk conformance seed (rw suite); fixed seeds make runs reproducible")
	walkSteps := fs.Int("walk-steps", 0, "total symbols per random-walk conformance round (rw suite; 0 = default)")
	snapshotDir := fs.String("snapshot-dir", "", "per-row oracle snapshot directory: existing snapshots warm-start rows, fresh stores are saved back")
	compiled := fs.Bool("compiled", true, "run simulated caches on the compiled policy kernel; false interprets policies (bit-identical rows, slower)")
	batch := fs.Bool("batch", false, "answer each row's query batches on the structure-of-arrays batched engine (requires -compiled; bit-identical rows)")
	fs.Parse(args)
	opt, err := learnOptions(*algoName, *suiteName, *seed, *walkSteps)
	if err != nil {
		return err
	}
	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			return err
		}
	}
	spec := experiments.Table2Default()
	if *full {
		spec = experiments.Table2Full()
	}
	sim := core.SimOptions{Interpreted: !*compiled, Batched: *batch}
	if *workers != "" {
		sim.FleetWorkers = splitAddrs(*workers)
		sim.FleetLogf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
		}
	}
	rows := experiments.RunTable2ConcurrentSim(ctx, spec, *concurrency, opt, *snapshotDir, sim)
	experiments.Table2Table(rows).Render(os.Stdout)
	return nil
}

// splitAddrs splits a comma-separated worker address list, dropping blanks.
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// learnOptions assembles learner options from the shared flag values.
func learnOptions(algoName, suiteName string, seed int64, walkSteps int) (learn.Options, error) {
	algo, err := learn.ParseAlgo(algoName)
	if err != nil {
		return learn.Options{}, err
	}
	suite, err := learn.ParseSuite(suiteName)
	if err != nil {
		return learn.Options{}, err
	}
	return learn.Options{Algo: algo, Suite: suite, Depth: 1,
		RandomWalkSeed: seed, RandomWalkSteps: walkSteps}, nil
}

func runTable4(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("table4", flag.ExitOnError)
	full := fs.Bool("full", false, "learn every CPU and level (slow)")
	replicas := fs.Int("replicas", 1, "CPU replicas for the concurrent query engine per job (0 = all cores; 1 keeps per-row times comparable to the paper)")
	algoName := fs.String("algo", "lstar", "learning algorithm: lstar (observation table) or tree (discrimination tree)")
	suiteName := fs.String("suite", "wp", "conformance suite: wp, w, or rw (seeded random walk)")
	seed := fs.Int64("seed", 1, "random-walk conformance seed (rw suite); fixed seeds make runs reproducible")
	walkSteps := fs.Int("walk-steps", 0, "total symbols per random-walk conformance round (rw suite; 0 = default)")
	compiled := fs.Bool("compiled", true, "run the simulated CPUs' policies on the compiled kernel; false interprets them (bit-identical rows, slower)")
	batch := fs.Bool("batch", false, "group each miss's eviction probes into one fan-out over the replica pool (effective with -replicas > 1; bit-identical rows)")
	fs.Parse(args)
	opt, err := learnOptions(*algoName, *suiteName, *seed, *walkSteps)
	if err != nil {
		return err
	}
	var rows []experiments.Table4Row
	for _, job := range experiments.Table4Jobs(!*full) {
		job.Replicas = *replicas
		job.Learn = opt
		job.Interpreted = !*compiled
		job.Batched = *batch
		fmt.Fprintf(os.Stderr, "learning %s %s %s ...\n", job.Model.Name, job.Level, job.Target)
		rows = append(rows, experiments.RunTable4Job(ctx, job, cachequery.DefaultBackendOptions()))
	}
	experiments.Table4Table(rows).Render(os.Stdout)
	return nil
}

func runTable5(args []string) error {
	fs := flag.NewFlagSet("table5", flag.ExitOnError)
	programs := fs.Bool("programs", false, "print the synthesized programs")
	fs.Parse(args)
	rows := experiments.RunTable5()
	experiments.Table5Table(rows).Render(os.Stdout)
	if *programs {
		for _, r := range rows {
			if r.Program != nil {
				fmt.Printf("\n%s (%s template):\n%s", r.Policy, r.Template, r.Program)
			}
		}
	}
	return nil
}

func runCosts(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("costs", flag.ExitOnError)
	reps := fs.Int("reps", 100, "repetitions of the per-level query measurement")
	fs.Parse(args)
	res, err := experiments.RunCosts(ctx, *reps)
	if err != nil {
		return err
	}
	experiments.CostsTable(res).Render(os.Stdout)
	return nil
}

func runBaselines(ctx context.Context) error {
	rows, err := experiments.RunBaselines(ctx, 4)
	if err != nil {
		return err
	}
	experiments.BaselinesTable(rows).Render(os.Stdout)
	return nil
}

func runAppendixB(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("appendixb", flag.ExitOnError)
	reps := fs.Int("reps", 5, "thrashing repetitions per set")
	fs.Parse(args)
	model := hw.Skylake()
	res, err := experiments.RunLeaderScan(ctx, model, experiments.DefaultLeaderSample(model), *reps)
	if err != nil {
		return err
	}
	experiments.LeaderScanTable(res).Render(os.Stdout)
	fmt.Printf("\ncorrectly classified: %d/%d sets; Skylake XOR formula holds: %v; PSEL high/low: %d/%d\n",
		res.Correct, len(res.SampledSets), res.FormulaHolds, res.PSELHigh, res.PSELLow)
	return nil
}

func runAll(ctx context.Context) error {
	if err := runFig1(ctx); err != nil {
		return err
	}
	fmt.Println()
	if err := runTable2(ctx, nil); err != nil {
		return err
	}
	fmt.Println()
	experiments.Table3Table().Render(os.Stdout)
	fmt.Println()
	if err := runTable4(ctx, nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runTable5(nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runCosts(ctx, nil); err != nil {
		return err
	}
	fmt.Println()
	if err := runAppendixB(ctx, nil); err != nil {
		return err
	}
	fmt.Println()
	return runBaselines(ctx)
}
