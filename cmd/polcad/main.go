// Command polcad is the learning-as-a-service daemon: the whole CacheQuery
// reproduction pipeline — membership/output queries, learning jobs with SSE
// progress, and the model-artifact zoo — behind one multi-tenant HTTP API.
//
// All clients of a (policy, associativity) pair share one engine (a single
// Polca oracle over one compiled policy table and one striped query store),
// duplicate in-flight queries are single-flighted across tenants, and
// per-tenant token buckets bound what any one client can spend. With
// -snapshot-dir, engines load warm snapshots on boot, checkpoint every
// -checkpoint-every output queries during jobs, and write final snapshots
// on SIGTERM/SIGINT drain — so a restarted daemon answers from disk and a
// killed-mid-job learn resumes from its checkpoint with a bit-identical
// model. See docs/API.md for the endpoint reference.
//
//	polcad                                   # serve on :8344, no persistence
//	polcad -snapshot-dir /var/lib/polcad     # warm-startable serving
//	polcad -quota-rate 100 -quota-burst 500  # per-tenant quotas
//
//	curl -s localhost:8344/v1/query -d '{"policy":"LRU","assoc":4,"word":[4,4,0,4]}'
//	curl -s localhost:8344/v1/jobs -d '{"policy":"LRU","assoc":4}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/faulty"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address (host:port)")
	modelsDir := flag.String("models", "models", "model-artifact directory served by /v1/models; completed jobs publish <policy>-<assoc>.learned.json here (empty = no filesystem models)")
	snapshotDir := flag.String("snapshot-dir", "", "per-engine qstore snapshot directory: load warm on boot, checkpoint during jobs, save on drain (empty = no persistence)")
	ckEvery := flag.Int("checkpoint-every", 256, "auto-snapshot each engine's query store every N output queries during jobs (requires -snapshot-dir)")
	quotaRate := flag.Float64("quota-rate", 0, "per-tenant token-bucket refill rate in tokens/second; queries cost 1 token per word, job submissions cost 10 (0 = quotas off)")
	quotaBurst := flag.Float64("quota-burst", 64, "per-tenant token-bucket capacity (with -quota-rate)")
	compiled := flag.Bool("compiled", true, "run engines on the compiled policy kernel (dense transition tables); false interprets policies — bit-identical answers, slower probes")
	batch := flag.Bool("batch", false, "answer query batches on the structure-of-arrays batched engine (requires -compiled) — bit-identical answers")
	parallelism := flag.Int("parallelism", 0, "per-engine goroutine cap for batched query fan-out (0 = GOMAXPROCS)")
	workers := flag.String("workers", "", "comma-separated polcaworker addresses (host:port,...): every engine fans its probes out over this distributed worker fleet — bit-identical answers")
	faults := flag.String("faults", "", `deterministic fault-injection plan for every engine's probes, e.g. "seed=42,err=0.05,flip=0.001" (soak testing)`)
	eventEvery := flag.Duration("event-interval", 250*time.Millisecond, "SSE job-progress event cadence")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM/SIGINT drain waits for in-flight jobs to unwind before snapshotting anyway")
	flag.Parse()

	sim := core.SimOptions{Interpreted: !*compiled, Batched: *batch, Workers: *parallelism}
	if *faults != "" {
		plan, err := faulty.ParsePlan(*faults)
		if err != nil {
			fatal(err)
		}
		sim.Faults = &plan
	}
	if *workers != "" {
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				sim.FleetWorkers = append(sim.FleetWorkers, a)
			}
		}
		sim.FleetLogf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "polcad: "+format+"\n", args...)
		}
	}
	if *snapshotDir != "" {
		if err := os.MkdirAll(*snapshotDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *modelsDir != "" {
		if err := os.MkdirAll(*modelsDir, 0o755); err != nil {
			fatal(err)
		}
	}

	srv := daemon.New(daemon.Config{
		ModelsDir:       *modelsDir,
		SnapshotDir:     *snapshotDir,
		CheckpointEvery: *ckEvery,
		QuotaRate:       *quotaRate,
		QuotaBurst:      *quotaBurst,
		Sim:             sim,
		EventInterval:   *eventEvery,
		Logf:            daemon.Stderr,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "polcad: serving on %s (models=%s snapshots=%s)\n", *addr, *modelsDir, orNone(*snapshotDir))

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Drain: cancel jobs and SSE streams at their next boundary, write
	// final engine snapshots, then let the HTTP server finish in-flight
	// responses. The order matters — srv.Close unblocks the SSE streams
	// that would otherwise hold Shutdown open.
	fmt.Fprintln(os.Stderr, "polcad: signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Close(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "polcad: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "polcad: shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "polcad: drained, bye")
}

func orNone(s string) string {
	if s == "" {
		return "(none)"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "polcad:", err)
	os.Exit(1)
}
