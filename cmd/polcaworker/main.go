// Command polcaworker serves the polca oracle's probe batches over HTTP:
// one member of the distributed oracle fan-out fleet. A worker wraps the
// same compiled simulator stack the local pipelines run — it answers
// reset-rooted probe batches for "sim:<policy>-<assoc>" scopes, memoizes
// every outcome per scope, and serves/accepts CRC'd snapshots of that memo
// so a fresh or recovered worker starts warm. Because probes are
// deterministic, any mix of workers produces the same answers, and a
// distributed learn (cmd/polca -workers) stays bit-identical to a
// single-box run.
//
//	polcaworker                             # serve on :8435
//	polcaworker -addr :9000 -interpreted    # interpreted engines
//	polcaworker -probe-cost 200us           # emulate hardware probe latency
//
//	curl -s localhost:8435/v1/status | jq .
//	curl -s localhost:8435/v1/probe -d '{"scope":"sim:LRU-4","queries":[["E","A"]]}'
//
// -probe-cost charges a fixed latency per executed (non-memoized) probe,
// emulating the measurement cost of a hardware-backed worker; it is what
// makes fan-out benchmarks honest on a single box, where pure simulator
// probes are too cheap to need distributing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/remote"
)

func main() {
	addr := flag.String("addr", ":8435", "listen address (host:port)")
	interpreted := flag.Bool("interpreted", false, "interpret policies through the Policy interface instead of the compiled kernel — bit-identical answers, slower probes")
	probeCost := flag.Duration("probe-cost", 0, "fixed latency charged per executed probe (emulates hardware measurement cost; memoized answers stay free)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long a SIGTERM/SIGINT drain waits for in-flight probe requests")
	flag.Parse()

	w := remote.NewWorker(remote.WorkerConfig{
		Interpreted: *interpreted,
		ProbeCost:   *probeCost,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "polcaworker: "+format+"\n", args...)
		},
	})
	httpSrv := &http.Server{Addr: *addr, Handler: w.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "polcaworker: serving on %s (interpreted=%v probe-cost=%v)\n", *addr, *interpreted, *probeCost)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "polcaworker: signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "polcaworker: shutdown: %v\n", err)
	}
	tot := w.Totals()
	fmt.Fprintf(os.Stderr, "polcaworker: drained, bye (%d probes, %d executed, %d memo hits)\n",
		tot.Probes, tot.Executed, tot.MemoHits)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "polcaworker:", err)
	os.Exit(1)
}
