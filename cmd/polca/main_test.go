package main

import "testing"

func TestParseResetExpandsFill(t *testing.T) {
	r := parseReset([]string{"D", "C", "B", "A", "@"}, 4, 0)
	want := []string{"D", "C", "B", "A", "A", "B", "C", "D"}
	if len(r.Sequence) != len(want) {
		t.Fatalf("sequence %v", r.Sequence)
	}
	for i := range want {
		if r.Sequence[i] != want[i] {
			t.Errorf("sequence[%d] = %s, want %s", i, r.Sequence[i], want[i])
		}
	}
	if r.FlushFirst {
		t.Error("explicit sequences must not flush first")
	}
}

func TestParseResetHonoursCAT(t *testing.T) {
	r := parseReset([]string{"@"}, 16, 4)
	if len(r.Sequence) != 4 {
		t.Errorf("CAT-reduced fill has %d blocks, want 4", len(r.Sequence))
	}
}
