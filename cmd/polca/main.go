// Command polca learns a cache replacement policy as a Mealy machine,
// either from a software-simulated cache (§6) or from a simulated silicon
// CPU through CacheQuery (§7), and optionally synthesizes a human-readable
// explanation (§5).
//
// Examples:
//
//	polca -policy MRU -assoc 6                 # learn from a simulator
//	polca -policy SRRIP-HP -assoc 4 -explain   # ... and explain it
//	polca -hw skylake -level L2 -set 0         # learn from simulated silicon
//	polca -hw skylake -level L3 -cat 4         # with CAT-reduced L3
//	polca -policy LRU -assoc 4 -dot lru.dot    # export the automaton
//
//	# Save the oracle's query store, then warm-start a re-learn from it
//	# (bit-identical machine, backend probed only for new words):
//	polca -policy New1 -assoc 4 -snapshot new1.qs
//	polca -policy New1 -assoc 4 -warm new1.qs
//
//	# Crash-resume: checkpoint the store during the run; after a crash or
//	# kill, the same command replays from the latest checkpoint:
//	polca -policy New1 -assoc 4 -resume new1.ck
//
//	# Fault injection: learn under a seeded fault plan (soak testing):
//	polca -policy New1 -assoc 4 -faults "seed=42,err=0.05,flip=0.001"
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/blocks"
	"repro/internal/cachequery"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faulty"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/policy"
	"repro/internal/synth"
)

func main() {
	polName := flag.String("policy", "", "policy to learn from a software-simulated cache")
	assoc := flag.Int("assoc", 4, "associativity (simulator mode)")
	hwName := flag.String("hw", "", "CPU model to learn from: haswell, skylake, kabylake, toy")
	levelName := flag.String("level", "L1", "cache level (hardware mode)")
	slice := flag.Int("slice", 0, "cache slice (hardware mode)")
	set := flag.Int("set", 0, "cache set (hardware mode)")
	cat := flag.Int("cat", 0, "CAT ways for the L3 (hardware mode)")
	seed := flag.Int64("seed", 1, "simulator seed (hardware mode) and random-walk conformance seed")
	replicas := flag.Int("replicas", 0, "CPU replicas for the concurrent query engine (hardware mode; 0 = all cores, 1 = serial)")
	algoName := flag.String("algo", "lstar", "learning algorithm: lstar (observation table) or tree (discrimination tree)")
	suiteName := flag.String("suite", "wp", "conformance suite: wp, w, or rw (seeded random walk)")
	walkSteps := flag.Int("walk-steps", 0, "total symbols per random-walk conformance round (rw suite; 0 = default)")
	depth := flag.Int("depth", 1, "conformance test suite depth k")
	maxStates := flag.Int("max-states", 100000, "abort when the hypothesis exceeds this many states")
	reset := flag.String("reset", "", `reset sequence, e.g. "F+R" or "D C B A @" (hardware mode)`)
	explain := flag.Bool("explain", false, "synthesize a rule-based explanation of the result")
	dotPath := flag.String("dot", "", "write the learned automaton in DOT format to this file")
	jsonPath := flag.String("json", "", "write the learned automaton as JSON to this file")
	warm := flag.String("warm", "", "warm start: load an oracle query-store snapshot from this file before learning")
	snapshot := flag.String("snapshot", "", "save the oracle query-store snapshot to this file after learning")
	compiled := flag.Bool("compiled", true, "run simulated caches on the compiled policy kernel (dense transition tables); false interprets policies through the Policy interface — bit-identical results, slower probes")
	batch := flag.Bool("batch", false, "answer query batches on the structure-of-arrays batched engine (simulator mode; requires -compiled) / group eviction probes over the replica pool (hardware mode) — bit-identical results")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no deadline); Ctrl-C cancels cleanly either way")
	faults := flag.String("faults", "", `deterministic fault-injection plan, e.g. "seed=42,err=0.05,flip=0.001,stall=0.01:5ms,die=1@500"`)
	workers := flag.String("workers", "", "comma-separated polcaworker addresses (host:port,...): learn through a distributed worker fleet — bit-identical machine, probes fan out remotely (simulator mode)")
	resume := flag.String("resume", "", "crash-resume file: checkpoint the oracle's query store here during the run and warm-start from it when present (missing or damaged file = cold start)")
	ckEvery := flag.Int("checkpoint-every", 0, "auto-snapshot the query store every N output queries (0 = off; defaults to 256 with -resume); requires -snapshot or -resume")
	flag.Parse()
	snap := core.SnapshotOptions{WarmPath: *warm, SavePath: *snapshot, CheckpointEvery: *ckEvery}
	if *resume != "" {
		if *warm != "" || *snapshot != "" {
			fatal(fmt.Errorf("-resume replaces -warm/-snapshot; use one or the other"))
		}
		snap.WarmPath = *resume
		snap.SavePath = *resume
		snap.ColdOnDamage = true
		if snap.CheckpointEvery == 0 {
			snap.CheckpointEvery = 256
		}
	}
	sim := core.SimOptions{Interpreted: !*compiled, Batched: *batch}
	if *faults != "" {
		plan, err := faulty.ParsePlan(*faults)
		if err != nil {
			fatal(err)
		}
		sim.Faults = &plan
	}
	if *workers != "" {
		if *hwName != "" {
			fatal(fmt.Errorf("-workers drives a simulator fleet; it cannot combine with -hw"))
		}
		for _, a := range strings.Split(*workers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				sim.FleetWorkers = append(sim.FleetWorkers, a)
			}
		}
		sim.FleetLogf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "polca: "+format+"\n", args...)
		}
	}

	// A canceled context unwinds the learner at the next query boundary,
	// leaving stores consistent — so a timed-out or interrupted run with
	// -resume keeps its latest checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	algo, err := learn.ParseAlgo(*algoName)
	if err != nil {
		fatal(err)
	}
	suite, err := learn.ParseSuite(*suiteName)
	if err != nil {
		fatal(err)
	}
	lopt := learn.Options{
		Algo:            algo,
		Depth:           *depth,
		Suite:           suite,
		MaxStates:       *maxStates,
		RandomWalkSteps: *walkSteps,
		RandomWalkSeed:  *seed,
	}

	var machine *mealy.Machine
	switch {
	case *polName != "" && *hwName != "":
		fatal(fmt.Errorf("choose either -policy (simulator) or -hw (hardware)"))
	case *polName != "":
		machine, err = learnSim(ctx, *polName, *assoc, lopt, snap, sim)
	case *hwName != "":
		machine, err = learnHW(ctx, *hwName, *levelName, *slice, *set, *cat, *seed, lopt, *replicas, *reset, snap, sim)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	fmt.Printf("learned a policy with %d control states\n", machine.NumStates)
	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(machine.DOT("policy")), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("automaton written to %s\n", *dotPath)
	}
	if *jsonPath != "" {
		fh, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		if err := machine.Save(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("automaton written to %s\n", *jsonPath)
	}
	if *explain {
		res, err := synth.Synthesize(machine, synth.Options{Seed: 1})
		if err != nil {
			fatal(fmt.Errorf("synthesis failed: %w", err))
		}
		fmt.Printf("\nexplanation (%s template, %d candidates, %v):\n%s",
			res.Template, res.Candidates, res.Duration.Round(1e6), res.Program)
	}
}

func learnSim(ctx context.Context, name string, assoc int, lopt learn.Options, snap core.SnapshotOptions, sim core.SimOptions) (*mealy.Machine, error) {
	res, err := core.LearnSimulatedSim(ctx, name, assoc, lopt, snap, sim)
	if err != nil {
		return nil, err
	}
	fmt.Printf("simulator: %s assoc %d (%s learner), %d output queries, %v\n",
		res.Policy, assoc, lopt.Algo, res.LearnStats.OutputQueries, res.LearnStats.Duration.Round(1e6))
	// The oracle-side cost line is what warm-start tooling (the nightly
	// snapshot job) parses: probes drop to ~0 on a warm re-learn.
	fmt.Printf("oracle: %d probes, %d accesses, %d memo hits\n",
		res.OracleStats.Probes, res.OracleStats.Accesses, res.OracleStats.MemoHits)
	if res.OracleStats.Retries > 0 || res.OracleStats.Disagreements > 0 || res.OracleStats.Reprobes > 0 {
		fmt.Printf("resilience: %d probe retries, %d vote disagreements, %d consistency re-probes\n",
			res.OracleStats.Retries, res.OracleStats.Disagreements, res.OracleStats.Reprobes)
	}
	if fs := res.Fleet; fs != nil {
		fmt.Printf("fleet: %d workers, %d snapshots shipped\n", len(fs.Workers), fs.Shipped)
		for _, w := range fs.Workers {
			fmt.Printf("fleet: %s: %d probes over %d requests (%d failures)\n",
				w.Addr, w.Probes, w.Requests, w.Failures)
		}
		if fs.Hedges > 0 || fs.Retries > 0 || fs.Quarantined > 0 {
			fmt.Printf("resilience: %d hedged re-dispatches, %d request retries, %d workers quarantined, %d readmitted\n",
				fs.Hedges, fs.Retries, fs.Quarantined, fs.Readmitted)
		}
	}
	// Verify against the installed ground truth, which we know in
	// simulator mode.
	pol := policy.MustNew(name, assoc)
	truth, err := mealy.FromPolicy(pol, 0)
	if err == nil {
		if eq, _ := res.Machine.Equivalent(truth); eq {
			fmt.Println("verified: trace-equivalent to the installed policy")
		} else {
			fmt.Println("WARNING: learned machine differs from the installed policy")
		}
	}
	return res.Machine, nil
}

func learnHW(ctx context.Context, cpuName, levelName string, slice, set, cat int, seed int64, lopt learn.Options, replicas int, reset string, snap core.SnapshotOptions, sim core.SimOptions) (*mealy.Machine, error) {
	var cfg hw.CPUConfig
	switch strings.ToLower(cpuName) {
	case "haswell":
		cfg = hw.Haswell()
	case "skylake":
		cfg = hw.Skylake()
	case "kabylake", "kbl":
		cfg = hw.KabyLake()
	case "toy":
		cfg = experiments.ToyCPU()
	default:
		return nil, fmt.Errorf("unknown CPU model %q", cpuName)
	}
	level, err := hw.ParseLevel(levelName)
	if err != nil {
		return nil, err
	}
	mkCPU := func() *hw.CPU { return hw.NewCPUSim(cfg, seed, sim.Interpreted) }
	req := core.HardwareRequest{
		CPU:              mkCPU(),
		NewCPU:           mkCPU,
		Replicas:         replicas,
		Target:           cachequery.Target{Level: level, Slice: slice, Set: set},
		Backend:          cachequery.DefaultBackendOptions(),
		CATWays:          cat,
		Learn:            lopt,
		DeterminismEvery: 128,
		Snapshot:         snap,
		Batched:          sim.Batched,
		Faults:           sim.Faults,
	}
	if reset != "" && reset != "F+R" {
		seq := strings.Fields(reset)
		for _, b := range seq {
			if !blocks.IsValid(b) && b != "@" {
				return nil, fmt.Errorf("invalid reset block %q", b)
			}
		}
		req.Resets = []cachequery.Reset{parseReset(seq, cfg.Config(level).Assoc, cat)}
	}
	res, err := core.LearnHardware(ctx, req)
	if err != nil {
		return nil, err
	}
	fmt.Printf("hardware: %s %s %s, reset %q, %d output queries, %d MBL queries executed\n",
		cfg.Name, level, req.Target, res.Reset.Name(), res.LearnStats.OutputQueries, res.Frontend.Executed)
	return res.Machine, nil
}

// parseReset expands a user reset specification; '@' stands for the
// associativity-many fill.
func parseReset(fields []string, assoc, cat int) cachequery.Reset {
	if cat > 0 {
		assoc = cat
	}
	var seq []blocks.Block
	for _, f := range fields {
		if f == "@" {
			seq = append(seq, blocks.Ordered(assoc)...)
		} else {
			seq = append(seq, f)
		}
	}
	return cachequery.Reset{FlushFirst: false, Sequence: seq}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "polca:", err)
	os.Exit(1)
}
