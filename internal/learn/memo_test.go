package learn

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
	"repro/internal/qstore"
)

// TestTrieLearnerMatchesFlatMemo: the trie memo answers prefix queries for
// free but must learn the exact same machine as the flat exact-match memo,
// with no more teacher queries.
func TestTrieLearnerMatchesFlatMemo(t *testing.T) {
	cases := []struct {
		name  string
		assoc int
	}{
		{"LRU", 4}, {"PLRU", 4}, {"New1", 2},
	}
	if !testing.Short() {
		cases = append(cases, struct {
			name  string
			assoc int
		}{"SRRIP-FP", 4})
	}
	for _, c := range cases {
		truth, err := mealy.FromPolicy(policy.MustNew(c.name, c.assoc), 0)
		if err != nil {
			t.Fatal(err)
		}
		trie, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1})
		if err != nil {
			t.Fatal(err)
		}
		flat, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, FlatMemo: true})
		if err != nil {
			t.Fatal(err)
		}
		tm, fm := trie.Machine, flat.Machine
		if tm.NumStates != fm.NumStates || !reflect.DeepEqual(tm.Next, fm.Next) ||
			!reflect.DeepEqual(tm.Out, fm.Out) {
			t.Errorf("%s-%d: trie learner diverged from the flat-memo reference", c.name, c.assoc)
		}
		if trie.Stats.OutputQueries > flat.Stats.OutputQueries {
			t.Errorf("%s-%d: trie learner asked %d queries, flat memo %d — prefix sharing lost queries",
				c.name, c.assoc, trie.Stats.OutputQueries, flat.Stats.OutputQueries)
		}
		if trie.Stats.TestWords != flat.Stats.TestWords {
			t.Errorf("%s-%d: conformance trajectories diverged (%d vs %d test words)",
				c.name, c.assoc, trie.Stats.TestWords, flat.Stats.TestWords)
		}
	}
}

// TestTriePrefixSharingSavesQueries: a query that is a proper prefix of an
// answered word must be a memo hit, not a teacher query.
func TestTriePrefixSharingSavesQueries(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("MRU", 4), 0)
	counter := newCountingTeacher(truth)
	l := &learner{engine: newEngine(context.Background(), counter, Options{Depth: 1})}
	long := []int{4, 0, 1, 4, 2}
	if _, err := l.query(long); err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(long); cut++ {
		out, err := l.query(long[:cut])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, truth.Run(long[:cut])) {
			t.Fatalf("prefix answer wrong for %v", long[:cut])
		}
	}
	if got := counter.distinctWords(); got != 1 {
		t.Errorf("teacher consulted for %d words, want 1 (prefixes must hit the trie)", got)
	}
}

// TestConcurrentTrieInsertionUnderPoolTeacher drives a trie-backed Polca
// oracle (concurrent session parking and output recording) through a
// PoolTeacher from many goroutines over overlapping, prefix-sharing word
// sets. It exists to run under -race: the shared tries must be data-race
// free, and every answer must match the extracted ground truth.
func TestConcurrentTrieInsertionUnderPoolTeacher(t *testing.T) {
	truth, err := mealy.FromPolicy(policy.MustNew("SRRIP-HP", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	oracle := polca.NewOracle(polca.NewSimProber(policy.MustNew("SRRIP-HP", 4)),
		polca.WithParallelism(8), polca.WithSessionCap(16))
	pool := NewPoolTeacher(oracle, 8)

	words := qstore.Enumerate(truth.NumInputs, 3)[1:] // heavy prefix overlap
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				got, err := pool.OutputQueryBatch(context.Background(), words)
				if err != nil {
					errCh <- err
					return
				}
				for i, w := range words {
					if !reflect.DeepEqual(got[i], truth.Run(w)) {
						t.Errorf("goroutine %d: wrong batch answer for %v", g, w)
						return
					}
				}
			} else {
				for _, w := range words {
					got, err := oracle.OutputQuery(context.Background(), w)
					if err != nil {
						errCh <- err
						return
					}
					if !reflect.DeepEqual(got, truth.Run(w)) {
						t.Errorf("goroutine %d: wrong answer for %v", g, w)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if st := oracle.Stats(); st.MemoHits == 0 {
		t.Error("concurrent run never hit the shared trie")
	}
}
