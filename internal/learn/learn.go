// Package learn implements active automata learning for Mealy machines in
// the student–teacher paradigm of Angluin [6], as extended to Mealy machines
// by Niese [29]. It plays the role LearnLib plays in the paper: the student
// asks output queries through a Teacher (Polca in the full pipeline) and
// approximates equivalence queries by W-method conformance testing of a
// configurable depth k, yielding the relative completeness guarantee of
// Corollary 3.4: a returned hypothesis H is either trace-equivalent to the
// policy under learning, or the policy has more than |H| + k states.
//
// Two learning algorithms share that infrastructure: the L*-style
// observation-table learner (AlgoLStar, the paper's setting) and a
// discrimination-tree learner (AlgoTree, observation-pack/TTT style) that
// asks asymptotically fewer output queries by storing only the
// distinguishing experiments that actually separate states.
package learn

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/intern"
	"repro/internal/mealy"
	"repro/internal/qstore"
)

// Teacher answers output queries for the system under learning. Polca's
// Oracle implements it; software-simulated machines can implement it
// directly via MachineTeacher.
//
// Every query carries a context: a multi-hour hardware campaign must be
// cancellable mid-learn, and deadlines propagate from the CLIs down to the
// individual backend probe. Teachers must return promptly once ctx is done;
// the learner checks the context between queries too, so even a teacher that
// ignores ctx unwinds at the next query boundary.
type Teacher interface {
	// NumInputs returns the input alphabet size; inputs are 0..NumInputs-1.
	NumInputs() int
	// OutputQuery returns the output word produced by the input word.
	OutputQuery(ctx context.Context, word []int) ([]int, error)
}

// ErrStateBudget is returned when the hypothesis grows beyond
// Options.MaxStates, the in-process analog of the paper's 36 h timeout.
var ErrStateBudget = errors.New("learn: hypothesis exceeds the state budget")

// Suite selects the conformance-testing method used to approximate
// equivalence queries.
type Suite int

// Conformance suites.
const (
	// SuiteWp is the Wp-method [23] the paper uses: full characterizing
	// sets on the state cover, per-state identification sets on the
	// remaining transition cover. Same (|H|+k)-completeness as the
	// W-method with a smaller suite.
	SuiteWp Suite = iota
	// SuiteW is the classic W-method: the full characterizing set on the
	// whole transition cover.
	SuiteW
	// SuiteRandomWalk samples random test words instead of a complete
	// suite (no completeness guarantee, much deeper traces per query).
	// Options.RandomWalkSteps bounds the total symbols drawn per round and
	// Options.RandomWalkSeed makes runs reproducible end to end.
	SuiteRandomWalk
)

// String returns the flag spelling of the suite.
func (s Suite) String() string {
	switch s {
	case SuiteWp:
		return "wp"
	case SuiteW:
		return "w"
	case SuiteRandomWalk:
		return "rw"
	}
	return fmt.Sprintf("Suite(%d)", int(s))
}

// ParseSuite parses a flag spelling ("wp", "w", or "rw") into a Suite — the
// shared mapping behind every CLI's -suite flag.
func ParseSuite(s string) (Suite, error) {
	switch strings.ToLower(s) {
	case "", "wp":
		return SuiteWp, nil
	case "w":
		return SuiteW, nil
	case "rw", "randomwalk", "random-walk":
		return SuiteRandomWalk, nil
	}
	return 0, fmt.Errorf("learn: unknown conformance suite %q (want wp, w, or rw)", s)
}

// Algo selects the learning algorithm.
type Algo int

// Learning algorithms.
const (
	// AlgoLStar is the L*-style observation-table learner (Angluin/Niese),
	// with a reduced table and Maler–Pnueli counterexample handling — the
	// algorithm the paper runs through LearnLib.
	AlgoLStar Algo = iota
	// AlgoTree is the discrimination-tree learner (observation-pack/TTT
	// style): states are leaves of a tree of distinguishing suffixes,
	// transitions are computed by sifting, and counterexamples are
	// decomposed by Rivest–Schapire binary search. It asks asymptotically
	// fewer output queries than the observation table because a state only
	// pays for the experiments on its own root-to-leaf path.
	AlgoTree
)

// String returns the flag spelling of the algorithm.
func (a Algo) String() string {
	switch a {
	case AlgoLStar:
		return "lstar"
	case AlgoTree:
		return "tree"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// ParseAlgo parses a flag spelling ("lstar" or "tree") into an Algo.
func ParseAlgo(s string) (Algo, error) {
	switch strings.ToLower(s) {
	case "", "lstar", "l*":
		return AlgoLStar, nil
	case "tree", "dt", "ttt":
		return AlgoTree, nil
	}
	return 0, fmt.Errorf("learn: unknown algorithm %q (want lstar or tree)", s)
}

// Options configures the learning loop.
type Options struct {
	// Algo selects the learning algorithm (default: the L*-style
	// observation table).
	Algo Algo
	// Depth is the conformance-testing depth k (§3.4); the test suite is
	// (|H|+k)-complete. The paper uses k = 1 throughout.
	Depth int
	// Suite selects the conformance method (default: Wp-method).
	Suite Suite
	// MaxStates aborts learning when the hypothesis exceeds this many
	// states; 0 means unlimited.
	MaxStates int
	// RandomWalk switches the equivalence oracle to random-walk testing
	// with RandomWalkSteps total symbols (an alternative the paper
	// mentions but does not default to). It is the legacy spelling of
	// Suite == SuiteRandomWalk and overrides Suite when set.
	RandomWalk      bool
	RandomWalkSteps int
	RandomWalkSeed  int64
	// MaxQueries aborts learning after this many distinct output queries;
	// 0 means unlimited.
	MaxQueries int
	// BatchSize bounds how many conformance-test words are prefetched per
	// BatchTeacher dispatch. 0 derives the chunk from the teacher's
	// BatchHint (4x the hint, capped at MaxBatchSize; a hint of 1 keeps
	// the loop exactly serial); negative disables batching. Larger chunks
	// expose more parallelism to the teacher but waste more queries when a
	// counterexample sits early in the suite. When MaxQueries is set,
	// conformance words are always asked lazily so the speculative
	// prefetch cannot exhaust a budget the serial trajectory would not.
	BatchSize int
	// FlatMemo replaces the prefix-tree output-query memo with the
	// exact-match flat map the learner used before the trie engine: a word
	// is answered from the memo only when it was asked verbatim, so a word
	// that is a proper prefix of an answered one still costs a teacher
	// query. Answers — and hence the learned machine — are identical either
	// way; only the query trajectory changes. The ablation benchmarks use
	// it to quantify the prefix sharing.
	FlatMemo bool
}

// MaxBatchSize caps the derived conformance-suite prefetch chunk.
const MaxBatchSize = 64

// Stats aggregates learner-side cost counters. The JSON names are the
// polcad daemon's wire format (docs/API.md).
type Stats struct {
	OutputQueries  int           `json:"output_queries"`  // distinct output queries sent to the teacher
	QuerySymbols   int           `json:"query_symbols"`   // total symbols across those queries
	Rounds         int           `json:"rounds"`          // hypothesis refinement rounds
	TestWords      int           `json:"test_words"`      // conformance test words executed
	Counterexample int           `json:"counterexamples"` // counterexamples processed
	Duration       time.Duration `json:"duration_ns"`     // wall-clock learning time
}

// Result is a successful learning outcome.
type Result struct {
	Machine *mealy.Machine
	Stats   Stats
}

// Learn runs the learning loop selected by Options.Algo against the teacher
// until the conformance suite of depth Options.Depth finds no
// counterexample, and returns the final hypothesis. Cancelling ctx aborts the
// run at the next query boundary with ctx.Err(); the teacher's stores stay
// consistent (only fully-answered queries are memoized), so the same teacher
// can be learned again — or resumed from a snapshot — after a cancel.
func Learn(ctx context.Context, t Teacher, opt Options) (*Result, error) {
	if opt.Depth < 0 {
		return nil, fmt.Errorf("learn: negative depth %d", opt.Depth)
	}
	if t.NumInputs() < 1 {
		return nil, fmt.Errorf("learn: teacher has an empty input alphabet")
	}

	var (
		m     *mealy.Machine
		err   error
		stats *Stats
	)
	start := time.Now()
	switch opt.Algo {
	case AlgoLStar:
		l := &learner{
			engine: newEngine(ctx, t, opt),
			sufs:   newMarkStore(t.NumInputs()),
			ids:    intern.New(),
		}
		m, err = l.run()
		stats = &l.stats
	case AlgoTree:
		l := &treeLearner{
			engine: newEngine(ctx, t, opt),
			ids:    intern.New(),
		}
		m, err = l.run()
		stats = &l.stats
	default:
		return nil, fmt.Errorf("learn: unknown algorithm %v", opt.Algo)
	}
	stats.Duration = time.Since(start)
	if err != nil {
		return nil, err
	}
	return &Result{Machine: m, Stats: *stats}, nil
}

// engine is the query infrastructure shared by every learning algorithm: the
// teacher handle, the (trie or flat) output-query memo, batch prefetching,
// the scratch dedup set, the conformance-suite construction, and the cost
// counters. The algorithms (observation table, discrimination tree) embed it
// and differ only in how they organize observations into a hypothesis.
type engine struct {
	ctx     context.Context
	teacher Teacher
	opt     Options
	numIn   int
	batch   int // prefetch chunk size; <= 1 keeps the loop exactly serial

	memo  *qstore.Store[int, memoVal]  // prefix-tree output-query memo (default)
	flat  map[string][]int             // exact-match memo (Options.FlatMemo)
	seen  *qstore.Store[int, struct{}] // scratch dedup set (batch prefetch)
	suite *qstore.Store[int, struct{}] // suite-streaming dedup set (interleaves with seen)

	stats Stats
}

// newEngine builds the shared query infrastructure for one learning run.
func newEngine(ctx context.Context, t Teacher, opt Options) engine {
	if ctx == nil {
		ctx = context.Background()
	}
	e := engine{
		ctx:     ctx,
		teacher: t,
		opt:     opt,
		numIn:   t.NumInputs(),
		batch:   resolveBatch(t, opt),
		seen:    newMarkStore(t.NumInputs()),
		suite:   newMarkStore(t.NumInputs()),
	}
	if opt.FlatMemo {
		e.flat = make(map[string][]int)
	} else {
		e.memo = newMemoStore(e.numIn)
	}
	return e
}

// learner holds the observation-table state of the L* algorithm. The table
// is kept reduced: every short prefix in P has a distinct row, so the
// hypothesis is well-defined without a separate consistency phase, and
// counterexamples are processed by adding all their suffixes to S
// (Maler–Pnueli).
type learner struct {
	engine

	prefixes [][]int // P, prefix-closed, pairwise distinct rows
	suffixes [][]int // S, suffix set (non-empty words)
	sufs     *qstore.Store[int, struct{}]
	fetchedS int // suffixes whose table columns have been batch-prefetched

	ids *intern.Interner // row/cell signature interning
}

// resolveBatch computes the effective prefetch chunk for a teacher: explicit
// Options.BatchSize wins, otherwise the teacher's BatchHint scaled for
// pipelining. Teachers without batch support always learn serially.
func resolveBatch(t Teacher, opt Options) int {
	if _, ok := t.(BatchTeacher); !ok {
		return 1
	}
	switch {
	case opt.BatchSize < 0:
		return 1
	case opt.BatchSize > 0:
		return opt.BatchSize
	}
	hint := 0
	if bh, ok := t.(BatchHinter); ok {
		hint = bh.BatchHint()
	}
	if hint <= 1 {
		return 1
	}
	chunk := 4 * hint
	if chunk > MaxBatchSize {
		chunk = MaxBatchSize
	}
	return chunk
}

// liveBatch re-resolves the prefetch chunk from the teacher's current
// BatchHint. A fleet-backed oracle's hint tracks its live worker fleet —
// quarantines shrink it, probation re-admissions grow it back — so the
// conformance loop re-reads it at every suite run instead of freezing the
// width observed at construction. Explicit Options.BatchSize and teachers
// that resolved to the serial path keep the constructor's value: chunking
// never changes answers or the learning trajectory, only how many queries
// travel per teacher call.
func (l *engine) liveBatch() int {
	if l.opt.BatchSize != 0 || l.batch <= 1 {
		return l.batch
	}
	return resolveBatch(l.teacher, l.opt)
}

func wordKey(w []int) string {
	var sb strings.Builder
	for i, a := range w {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(a))
	}
	return sb.String()
}

// memoized returns the memo's answer for w, if any. The trie memo also
// answers words that are proper prefixes of an already-answered word —
// outputs are prefix-closed, so no teacher query is needed.
func (l *engine) memoized(w []int) ([]int, bool) {
	if l.memo != nil {
		return l.trieOutputs(w, nil)
	}
	out, ok := l.flat[wordKey(w)]
	return out, ok
}

// remember stores a fresh answer, taking ownership of out.
func (l *engine) remember(w, out []int) {
	if l.memo != nil {
		l.trieRecord(w, out)
		return
	}
	l.flat[wordKey(w)] = out
}

// query returns the teacher's output word for w, memoized. Cancellation is
// checked only before a real teacher round trip — memo hits stay lock-free
// and cost nothing extra, and a cancelled learn still unwinds at the next
// fresh query.
func (l *engine) query(w []int) ([]int, error) {
	if out, ok := l.memoized(w); ok {
		return out, nil
	}
	if err := l.ctx.Err(); err != nil {
		return nil, err
	}
	if l.opt.MaxQueries > 0 && l.stats.OutputQueries >= l.opt.MaxQueries {
		return nil, fmt.Errorf("learn: query budget of %d exhausted", l.opt.MaxQueries)
	}
	out, err := l.teacher.OutputQuery(l.ctx, w)
	if err != nil {
		return nil, err
	}
	if len(out) != len(w) {
		return nil, fmt.Errorf("learn: teacher returned %d outputs for %d inputs", len(out), len(w))
	}
	l.stats.OutputQueries++
	l.stats.QuerySymbols += len(w)
	l.remember(w, out)
	return out, nil
}

// prefetch memoizes the answers for every word not yet in the query cache,
// dispatching all of them in one BatchTeacher call when the teacher supports
// it. Afterwards query/cell on any prefetched word is a pure cache lookup, so
// callers keep their serial, deterministic control flow while the teacher
// answers the whole batch at once (typically on parallel goroutines).
func (l *engine) prefetch(words [][]int) error {
	bt, ok := l.teacher.(BatchTeacher)
	if !ok || l.batch <= 1 {
		return nil // the serial path asks lazily, paying no speculative queries
	}
	var pending [][]int
	l.seen.ResetMarks()
	for _, w := range words {
		if len(w) == 0 {
			continue
		}
		if _, ok := l.memoized(w); ok {
			continue
		}
		if !l.seen.InsertMark(w) {
			continue
		}
		pending = append(pending, w)
	}
	if len(pending) == 0 {
		return nil
	}
	if err := l.ctx.Err(); err != nil {
		return err
	}
	if l.opt.MaxQueries > 0 {
		left := l.opt.MaxQueries - l.stats.OutputQueries
		if left <= 0 {
			return fmt.Errorf("learn: query budget of %d exhausted", l.opt.MaxQueries)
		}
		if len(pending) > left {
			pending = pending[:left]
		}
	}
	outs, err := bt.OutputQueryBatch(l.ctx, pending)
	if err != nil {
		return err
	}
	if len(outs) != len(pending) {
		return fmt.Errorf("learn: teacher answered %d of %d batched queries", len(outs), len(pending))
	}
	for i, w := range pending {
		if len(outs[i]) != len(w) {
			return fmt.Errorf("learn: teacher returned %d outputs for %d inputs", len(outs[i]), len(w))
		}
		l.stats.OutputQueries++
		l.stats.QuerySymbols += len(w)
		l.remember(w, outs[i])
	}
	return nil
}

// cell returns the output word of suffix s observed after prefix u. On a
// memo hit the trie answers u·s without concatenating the word.
func (l *engine) cell(u, s []int) ([]int, error) {
	if l.memo != nil {
		if out, ok := l.trieOutputs(u, s); ok {
			return out[len(u):], nil
		}
	}
	full := make([]int, 0, len(u)+len(s))
	full = append(full, u...)
	full = append(full, s...)
	out, err := l.query(full)
	if err != nil {
		return nil, err
	}
	return out[len(u):], nil
}

// rowID computes the interned row signature of prefix u over the current
// suffixes: every cell's output word folds to a dense id, and the row is
// the fold of its cell ids — no string keys are built.
func (l *learner) rowID(u []int) (int32, error) {
	acc := intern.Empty
	for _, s := range l.suffixes {
		c, err := l.cell(u, s)
		if err != nil {
			return 0, err
		}
		acc = l.ids.Pair(acc, l.ids.Word(c))
	}
	return acc, nil
}

func (l *learner) addSuffix(s []int) {
	if len(s) == 0 || !l.sufs.InsertMark(s) {
		return
	}
	l.suffixes = append(l.suffixes, append([]int(nil), s...))
}

func (l *learner) run() (*mealy.Machine, error) {
	l.prefixes = [][]int{{}}
	for a := 0; a < l.numIn; a++ {
		l.addSuffix([]int{a})
	}

	for {
		l.stats.Rounds++
		hyp, err := l.closeAndBuild()
		if err != nil {
			return nil, err
		}
		ce, err := l.findCounterexample(hyp)
		if err != nil {
			return nil, err
		}
		if ce == nil {
			return hyp, nil
		}
		l.stats.Counterexample++
		// Maler–Pnueli: every suffix of the (trimmed) counterexample
		// becomes a distinguishing suffix.
		for i := 0; i < len(ce); i++ {
			l.addSuffix(ce[i:])
		}
	}
}

// rowWords enumerates the output queries needed to fill the table rows of
// the given prefixes over the given suffix columns: u·s and u·a·s for every
// input a and suffix s. Prefetching them lets a BatchTeacher fill whole
// table rows in one parallel dispatch instead of |S|·(1+|Σ|) serial round
// trips per prefix.
func (l *learner) rowWords(prefixes, suffixes [][]int) [][]int {
	var words [][]int
	for _, u := range prefixes {
		for _, s := range suffixes {
			words = append(words, qstore.Concat(u, s))
		}
		for a := 0; a < l.numIn; a++ {
			ua := qstore.Concat(u, []int{a})
			for _, s := range suffixes {
				words = append(words, qstore.Concat(ua, s))
			}
		}
	}
	return words
}

// closeAndBuild restores table closedness and constructs the hypothesis.
func (l *learner) closeAndBuild() (*mealy.Machine, error) {
	// Batch prefetch: entering a round, fill the columns of any suffixes
	// added by the last counterexample across the whole table; within the
	// round, fetch only the full rows of prefixes promoted by the closing
	// check. Everything else is already memoized, so the passes below are
	// pure cache walks. Without batching the loop asks lazily, exactly as
	// the serial learner always has.
	batching := l.batch > 1
	var fetch [][]int
	if batching {
		fetch = l.rowWords(l.prefixes, l.suffixes[l.fetchedS:])
		l.fetchedS = len(l.suffixes)
	}
	for {
		if err := l.prefetch(fetch); err != nil {
			return nil, err
		}
		fetch = nil
		rows := make(map[int32]int, len(l.prefixes))
		for i, u := range l.prefixes {
			k, err := l.rowID(u)
			if err != nil {
				return nil, err
			}
			if _, dup := rows[k]; dup {
				// Two short prefixes became equal; keep the table reduced
				// by dropping the later one. This cannot happen with a
				// deterministic teacher because rows only split, but guard
				// against it to fail loudly rather than mis-build.
				return nil, fmt.Errorf("learn: duplicate rows in reduced table (prefixes %v and %v)", l.prefixes[rows[k]], u)
			}
			rows[k] = i
		}

		closed := true
		for i := 0; closed && i < len(l.prefixes); i++ {
			for a := 0; a < l.numIn; a++ {
				ext := append(append([]int(nil), l.prefixes[i]...), a)
				k, err := l.rowID(ext)
				if err != nil {
					return nil, err
				}
				if _, ok := rows[k]; !ok {
					if l.opt.MaxStates > 0 && len(l.prefixes) >= l.opt.MaxStates {
						return nil, fmt.Errorf("%w: more than %d states", ErrStateBudget, l.opt.MaxStates)
					}
					l.prefixes = append(l.prefixes, ext)
					if batching {
						fetch = l.rowWords([][]int{ext}, l.suffixes)
					}
					closed = false
					break
				}
			}
		}
		if !closed {
			continue
		}

		// Build the hypothesis from the closed, reduced table.
		m := mealy.New(len(l.prefixes), l.numIn)
		m.Init = 0
		for i, u := range l.prefixes {
			for a := 0; a < l.numIn; a++ {
				ext := append(append([]int(nil), u...), a)
				k, err := l.rowID(ext)
				if err != nil {
					return nil, err
				}
				j, ok := rows[k]
				if !ok {
					return nil, fmt.Errorf("learn: table not closed after closing pass")
				}
				m.Next[i][a] = j
				c, err := l.cell(u, []int{a})
				if err != nil {
					return nil, err
				}
				m.Out[i][a] = c[0]
			}
		}
		return m, nil
	}
}

// findCounterexample approximates the equivalence query. It returns nil when
// the conformance suite agrees with the hypothesis everywhere, and otherwise
// a shortest failing prefix of some failing test word.
func (l *engine) findCounterexample(hyp *mealy.Machine) ([]int, error) {
	if l.opt.RandomWalk || l.opt.Suite == SuiteRandomWalk {
		return l.randomWalkCE(hyp)
	}
	if l.opt.Suite == SuiteW {
		return l.wMethodCE(hyp)
	}
	return l.wpMethodCE(hyp)
}

// checkWord compares teacher and hypothesis on one word, returning the
// failing prefix or nil.
func (l *engine) checkWord(hyp *mealy.Machine, w []int) ([]int, error) {
	got, err := l.query(w)
	if err != nil {
		return nil, err
	}
	// Step the hypothesis in place instead of materializing hyp.Run(w):
	// conformance testing examines hundreds of thousands of words, most of
	// them memo hits, and this loop is their only per-word cost.
	state := hyp.Init
	for i, a := range w {
		var out int
		state, out = hyp.Step(state, a)
		if got[i] != out {
			return w[:i+1], nil
		}
	}
	return nil, nil
}
