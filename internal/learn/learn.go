// Package learn implements active automata learning for Mealy machines in
// the student–teacher paradigm of Angluin [6], as extended to Mealy machines
// by Niese [29]. It plays the role LearnLib plays in the paper: the student
// asks output queries through a Teacher (Polca in the full pipeline) and
// approximates equivalence queries by W-method conformance testing of a
// configurable depth k, yielding the relative completeness guarantee of
// Corollary 3.4: a returned hypothesis H is either trace-equivalent to the
// policy under learning, or the policy has more than |H| + k states.
package learn

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/mealy"
)

// Teacher answers output queries for the system under learning. Polca's
// Oracle implements it; software-simulated machines can implement it
// directly via MachineTeacher.
type Teacher interface {
	// NumInputs returns the input alphabet size; inputs are 0..NumInputs-1.
	NumInputs() int
	// OutputQuery returns the output word produced by the input word.
	OutputQuery(word []int) ([]int, error)
}

// ErrStateBudget is returned when the hypothesis grows beyond
// Options.MaxStates, the in-process analog of the paper's 36 h timeout.
var ErrStateBudget = errors.New("learn: hypothesis exceeds the state budget")

// Suite selects the conformance-testing method used to approximate
// equivalence queries.
type Suite int

// Conformance suites.
const (
	// SuiteWp is the Wp-method [23] the paper uses: full characterizing
	// sets on the state cover, per-state identification sets on the
	// remaining transition cover. Same (|H|+k)-completeness as the
	// W-method with a smaller suite.
	SuiteWp Suite = iota
	// SuiteW is the classic W-method: the full characterizing set on the
	// whole transition cover.
	SuiteW
)

// Options configures the learning loop.
type Options struct {
	// Depth is the conformance-testing depth k (§3.4); the test suite is
	// (|H|+k)-complete. The paper uses k = 1 throughout.
	Depth int
	// Suite selects the conformance method (default: Wp-method).
	Suite Suite
	// MaxStates aborts learning when the hypothesis exceeds this many
	// states; 0 means unlimited.
	MaxStates int
	// RandomWalk switches the equivalence oracle to random-walk testing
	// with RandomWalkSteps total symbols (an alternative the paper
	// mentions but does not default to). It overrides Suite.
	RandomWalk      bool
	RandomWalkSteps int
	RandomWalkSeed  int64
	// MaxQueries aborts learning after this many distinct output queries;
	// 0 means unlimited.
	MaxQueries int
}

// Stats aggregates learner-side cost counters.
type Stats struct {
	OutputQueries  int           // distinct output queries sent to the teacher
	QuerySymbols   int           // total symbols across those queries
	Rounds         int           // hypothesis refinement rounds
	TestWords      int           // conformance test words executed
	Counterexample int           // counterexamples processed
	Duration       time.Duration // wall-clock learning time
}

// Result is a successful learning outcome.
type Result struct {
	Machine *mealy.Machine
	Stats   Stats
}

// Learn runs the L* learning loop against the teacher until the conformance
// suite of depth Options.Depth finds no counterexample, and returns the
// final hypothesis.
func Learn(t Teacher, opt Options) (*Result, error) {
	if opt.Depth < 0 {
		return nil, fmt.Errorf("learn: negative depth %d", opt.Depth)
	}
	l := &learner{
		teacher: t,
		opt:     opt,
		numIn:   t.NumInputs(),
		queries: make(map[string][]int),
	}
	if l.numIn < 1 {
		return nil, fmt.Errorf("learn: teacher has an empty input alphabet")
	}
	start := time.Now()
	m, err := l.run()
	l.stats.Duration = time.Since(start)
	if err != nil {
		return nil, err
	}
	return &Result{Machine: m, Stats: l.stats}, nil
}

// learner holds the observation-table state. The table is kept reduced:
// every short prefix in P has a distinct row, so the hypothesis is
// well-defined without a separate consistency phase, and counterexamples are
// processed by adding all their suffixes to S (Maler–Pnueli).
type learner struct {
	teacher Teacher
	opt     Options
	numIn   int

	prefixes [][]int // P, prefix-closed, pairwise distinct rows
	suffixes [][]int // S, suffix set (non-empty words)
	sufSeen  map[string]bool

	queries map[string][]int // output-query memo
	stats   Stats
}

func wordKey(w []int) string {
	var sb strings.Builder
	for i, a := range w {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(a))
	}
	return sb.String()
}

// query returns the teacher's output word for w, memoized.
func (l *learner) query(w []int) ([]int, error) {
	key := wordKey(w)
	if out, ok := l.queries[key]; ok {
		return out, nil
	}
	if l.opt.MaxQueries > 0 && l.stats.OutputQueries >= l.opt.MaxQueries {
		return nil, fmt.Errorf("learn: query budget of %d exhausted", l.opt.MaxQueries)
	}
	out, err := l.teacher.OutputQuery(w)
	if err != nil {
		return nil, err
	}
	if len(out) != len(w) {
		return nil, fmt.Errorf("learn: teacher returned %d outputs for %d inputs", len(out), len(w))
	}
	l.stats.OutputQueries++
	l.stats.QuerySymbols += len(w)
	l.queries[key] = out
	return out, nil
}

// cell returns the output word of suffix s observed after prefix u.
func (l *learner) cell(u, s []int) ([]int, error) {
	full := make([]int, 0, len(u)+len(s))
	full = append(full, u...)
	full = append(full, s...)
	out, err := l.query(full)
	if err != nil {
		return nil, err
	}
	return out[len(u):], nil
}

// rowKey computes the row signature of prefix u over the current suffixes.
func (l *learner) rowKey(u []int) (string, error) {
	var sb strings.Builder
	for _, s := range l.suffixes {
		c, err := l.cell(u, s)
		if err != nil {
			return "", err
		}
		sb.WriteString(wordKey(c))
		sb.WriteByte(';')
	}
	return sb.String(), nil
}

func (l *learner) addSuffix(s []int) {
	key := wordKey(s)
	if len(s) == 0 || l.sufSeen[key] {
		return
	}
	l.sufSeen[key] = true
	l.suffixes = append(l.suffixes, append([]int(nil), s...))
}

func (l *learner) run() (*mealy.Machine, error) {
	l.prefixes = [][]int{{}}
	l.sufSeen = make(map[string]bool)
	for a := 0; a < l.numIn; a++ {
		l.addSuffix([]int{a})
	}

	for {
		l.stats.Rounds++
		hyp, err := l.closeAndBuild()
		if err != nil {
			return nil, err
		}
		ce, err := l.findCounterexample(hyp)
		if err != nil {
			return nil, err
		}
		if ce == nil {
			return hyp, nil
		}
		l.stats.Counterexample++
		// Maler–Pnueli: every suffix of the (trimmed) counterexample
		// becomes a distinguishing suffix.
		for i := 0; i < len(ce); i++ {
			l.addSuffix(ce[i:])
		}
	}
}

// closeAndBuild restores table closedness and constructs the hypothesis.
func (l *learner) closeAndBuild() (*mealy.Machine, error) {
	for {
		rows := make(map[string]int, len(l.prefixes))
		for i, u := range l.prefixes {
			k, err := l.rowKey(u)
			if err != nil {
				return nil, err
			}
			if _, dup := rows[k]; dup {
				// Two short prefixes became equal; keep the table reduced
				// by dropping the later one. This cannot happen with a
				// deterministic teacher because rows only split, but guard
				// against it to fail loudly rather than mis-build.
				return nil, fmt.Errorf("learn: duplicate rows in reduced table (prefixes %v and %v)", l.prefixes[rows[k]], u)
			}
			rows[k] = i
		}

		closed := true
		for i := 0; closed && i < len(l.prefixes); i++ {
			for a := 0; a < l.numIn; a++ {
				ext := append(append([]int(nil), l.prefixes[i]...), a)
				k, err := l.rowKey(ext)
				if err != nil {
					return nil, err
				}
				if _, ok := rows[k]; !ok {
					if l.opt.MaxStates > 0 && len(l.prefixes) >= l.opt.MaxStates {
						return nil, fmt.Errorf("%w: more than %d states", ErrStateBudget, l.opt.MaxStates)
					}
					l.prefixes = append(l.prefixes, ext)
					closed = false
					break
				}
			}
		}
		if !closed {
			continue
		}

		// Build the hypothesis from the closed, reduced table.
		m := mealy.New(len(l.prefixes), l.numIn)
		m.Init = 0
		for i, u := range l.prefixes {
			for a := 0; a < l.numIn; a++ {
				ext := append(append([]int(nil), u...), a)
				k, err := l.rowKey(ext)
				if err != nil {
					return nil, err
				}
				j, ok := rows[k]
				if !ok {
					return nil, fmt.Errorf("learn: table not closed after closing pass")
				}
				m.Next[i][a] = j
				c, err := l.cell(u, []int{a})
				if err != nil {
					return nil, err
				}
				m.Out[i][a] = c[0]
			}
		}
		return m, nil
	}
}

// findCounterexample approximates the equivalence query. It returns nil when
// the conformance suite agrees with the hypothesis everywhere, and otherwise
// a shortest failing prefix of some failing test word.
func (l *learner) findCounterexample(hyp *mealy.Machine) ([]int, error) {
	if l.opt.RandomWalk {
		return l.randomWalkCE(hyp)
	}
	if l.opt.Suite == SuiteW {
		return l.wMethodCE(hyp)
	}
	return l.wpMethodCE(hyp)
}

// checkWord compares teacher and hypothesis on one word, returning the
// failing prefix or nil.
func (l *learner) checkWord(hyp *mealy.Machine, w []int) ([]int, error) {
	got, err := l.query(w)
	if err != nil {
		return nil, err
	}
	want := hyp.Run(w)
	for i := range w {
		if got[i] != want[i] {
			return w[:i+1], nil
		}
	}
	return nil, nil
}
