package learn

// wordTrie is the interned-word prefix tree backing the learner's
// output-query memo and its word-set dedup. Edges are input symbols
// (0..numIn-1); every node is one word. The trie plays three roles:
//
//   - Output memo: each node records the output of the last symbol of its
//     word, so the answer to any query whose word is a prefix of an
//     already-answered word is read off the path — the flat map memo it
//     replaces only hit on identical words, and every lookup allocated a
//     string key.
//   - Exact-match store: PoolTeacher keeps full answer slices at terminal
//     nodes only (get/put), preserving its answered-word accounting.
//   - Word set: epoch-stamped marks turn the trie into a reusable dedup set
//     for suffix bookkeeping, conformance-suite streaming, and batch
//     prefetch, with no per-word key materialization.
//
// The trie is not safe for concurrent use; PoolTeacher guards its own.
type wordTrie struct {
	numIn int
	nodes []trieNode
	epoch uint32
}

type trieNode struct {
	child []int32 // per input symbol; nil until the first child is added
	full  []int   // memoized output word of the word ending here (lazily set)
	out   int     // output of the last symbol of the word ending here
	known bool    // out has been recorded
	mark  uint32  // set-membership epoch stamp (0 = never marked)
}

func newWordTrie(numIn int) *wordTrie {
	return &wordTrie{numIn: numIn, nodes: []trieNode{{}}, epoch: 1}
}

// inRange reports whether every symbol of w is a valid trie edge.
func (t *wordTrie) inRange(w []int) bool {
	for _, a := range w {
		if a < 0 || a >= t.numIn {
			return false
		}
	}
	return true
}

// childOf returns the child of n along symbol a, or -1.
func (t *wordTrie) childOf(n int32, a int) int32 {
	c := t.nodes[n].child
	if c == nil {
		return -1
	}
	return c[a]
}

// extend returns the child of n along a, creating it if absent.
func (t *wordTrie) extend(n int32, a int) int32 {
	if t.nodes[n].child == nil {
		ch := make([]int32, t.numIn)
		for i := range ch {
			ch[i] = -1
		}
		t.nodes[n].child = ch
	}
	if c := t.nodes[n].child[a]; c != -1 {
		return c
	}
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, trieNode{})
	t.nodes[n].child[a] = id
	return id
}

// node returns the node of word w, or -1 if the path does not exist.
func (t *wordTrie) node(w []int) int32 {
	n := int32(0)
	for _, a := range w {
		if n = t.childOf(n, a); n < 0 {
			return -1
		}
	}
	return n
}

// ensure returns the node of word w, creating the path as needed.
func (t *wordTrie) ensure(w []int) int32 {
	n := int32(0)
	for _, a := range w {
		n = t.extend(n, a)
	}
	return n
}

// outputs returns the memoized output word of u·s if every symbol's output
// is recorded — including when u·s is a proper prefix of a longer answered
// word. The full slice is materialized at most once per node and reused, so
// repeated hits allocate nothing.
func (t *wordTrie) outputs(u, s []int) ([]int, bool) {
	n := int32(0)
	for _, a := range u {
		if n = t.childOf(n, a); n < 0 || !t.nodes[n].known {
			return nil, false
		}
	}
	for _, a := range s {
		if n = t.childOf(n, a); n < 0 || !t.nodes[n].known {
			return nil, false
		}
	}
	if f := t.nodes[n].full; f != nil {
		return f, true
	}
	out := make([]int, len(u)+len(s))
	m := int32(0)
	for i := 0; i < len(out); i++ {
		a := 0
		if i < len(u) {
			a = u[i]
		} else {
			a = s[i-len(u)]
		}
		m = t.nodes[m].child[a]
		out[i] = t.nodes[m].out
	}
	t.nodes[n].full = out
	return out, true
}

// record stores the per-symbol outputs of w and the full answer slice at
// its terminal node. The caller hands over ownership of out.
func (t *wordTrie) record(w, out []int) {
	n := int32(0)
	for i, a := range w {
		n = t.extend(n, a)
		t.nodes[n].out = out[i]
		t.nodes[n].known = true
	}
	t.nodes[n].full = out
}

// get returns the exact-match answer stored at w's terminal node, if any.
// Unlike outputs it never answers from a prefix of a longer word.
func (t *wordTrie) get(w []int) ([]int, bool) {
	n := t.node(w)
	if n < 0 || t.nodes[n].full == nil {
		return nil, false
	}
	return t.nodes[n].full, true
}

// fullAt reads the exact-match answer at a node returned by ensure.
func (t *wordTrie) fullAt(n int32) []int { return t.nodes[n].full }

// putAt stores an exact-match answer at a node returned by ensure and
// reports whether the node was previously empty.
func (t *wordTrie) putAt(n int32, out []int) bool {
	fresh := t.nodes[n].full == nil
	t.nodes[n].full = out
	return fresh
}

// resetMarks starts a new epoch, emptying the mark set in O(1).
func (t *wordTrie) resetMarks() { t.epoch++ }

// insertMark adds w to the current epoch's set, reporting true if it was
// not yet a member.
func (t *wordTrie) insertMark(w []int) bool {
	n := t.ensure(w)
	if t.nodes[n].mark == t.epoch {
		return false
	}
	t.nodes[n].mark = t.epoch
	return true
}
