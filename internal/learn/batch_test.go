package learn

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
	"repro/internal/qstore"
)

// countingTeacher is a concurrency-safe Teacher that records how often every
// distinct word is asked.
type countingTeacher struct {
	m *mealy.Machine

	mu    sync.Mutex
	asked map[string]int
}

func newCountingTeacher(m *mealy.Machine) *countingTeacher {
	return &countingTeacher{m: m, asked: make(map[string]int)}
}

func (t *countingTeacher) NumInputs() int { return t.m.NumInputs }

func (t *countingTeacher) OutputQuery(_ context.Context, word []int) ([]int, error) {
	t.mu.Lock()
	t.asked[wordKey(word)]++
	t.mu.Unlock()
	return t.m.Run(word), nil
}

// maxAskCount returns the highest per-word ask count.
func (t *countingTeacher) maxAskCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	max := 0
	for _, n := range t.asked {
		if n > max {
			max = n
		}
	}
	return max
}

func (t *countingTeacher) distinctWords() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.asked)
}

// TestPoolTeacherBatchMatchesSerial: a batch answer must equal the serial
// answers word by word, including duplicated words within one batch.
func TestPoolTeacherBatchMatchesSerial(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("MRU", 4), 0)
	pool := NewPoolTeacher(newCountingTeacher(truth), 4)
	words := [][]int{
		{0}, {1, 2, 3}, {4, 4, 4, 4}, {0}, {1, 2, 3}, {2, 0, 4, 1, 3},
	}
	got, err := pool.OutputQueryBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		want := truth.Run(w)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("word %v: batch answered %v, want %v", w, got[i], want)
		}
	}
}

// TestBatchedLearningIsDeterministic: learning through the worker pool must
// produce the exact same machine as the serial reference — not just a
// trace-equivalent one — because the batched learner examines answers in the
// same order the serial learner asks them.
func TestBatchedLearningIsDeterministic(t *testing.T) {
	for _, c := range []struct {
		name  string
		assoc int
	}{
		{"PLRU", 4}, {"MRU", 4}, {"SRRIP-HP", 2}, {"New1", 2},
	} {
		truth, err := mealy.FromPolicy(policy.MustNew(c.name, c.assoc), 0)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1})
		if err != nil {
			t.Fatal(err)
		}
		batched, err := Learn(context.Background(), NewPoolTeacher(MachineTeacher{M: truth}, 8), Options{Depth: 1, BatchSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		bm, sm := batched.Machine, serial.Machine
		if bm.NumStates != sm.NumStates || bm.Init != sm.Init ||
			!reflect.DeepEqual(bm.Next, sm.Next) || !reflect.DeepEqual(bm.Out, sm.Out) {
			t.Errorf("%s-%d: batched learning diverged from the serial reference", c.name, c.assoc)
		}
		if eq, ce := bm.Equivalent(truth); !eq {
			t.Errorf("%s-%d: batched machine differs from truth, ce=%v", c.name, c.assoc, ce)
		}
		if batched.Stats.TestWords != serial.Stats.TestWords {
			t.Errorf("%s-%d: batched run examined %d test words, serial %d — trajectories diverged",
				c.name, c.assoc, batched.Stats.TestWords, serial.Stats.TestWords)
		}
	}
}

// TestBatchedPolcaLearningIsDeterministic runs the §6 pipeline both ways:
// serial oracle versus batched oracle fanning session probes over parallel
// goroutines. The learned machines must be trace-equivalent.
func TestBatchedPolcaLearningIsDeterministic(t *testing.T) {
	serialOracle := polca.NewOracle(polca.NewSimProber(policy.MustNew("MRU", 4)), polca.WithParallelism(1))
	serial, err := Learn(context.Background(), serialOracle, Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	parOracle := polca.NewOracle(polca.NewSimProber(policy.MustNew("MRU", 4)), polca.WithParallelism(8))
	batched, err := Learn(context.Background(), parOracle, Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := batched.Machine.Equivalent(serial.Machine); !eq {
		t.Fatalf("batched Polca learning diverged from serial, ce=%v", ce)
	}
	if batched.Machine.NumStates != 14 {
		t.Errorf("learned %d states, want 14 (MRU-4)", batched.Machine.NumStates)
	}
}

// TestSharedQueryCacheNeverReasks: the pool's mutex-guarded cache must
// answer every repeated word without consulting the wrapped teacher again —
// within a batch, across batches, across serial lookups, and across whole
// learning runs sharing the adapter.
func TestSharedQueryCacheNeverReasks(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("PLRU", 4), 0)
	counter := newCountingTeacher(truth)
	pool := NewPoolTeacher(counter, 4)

	if _, err := Learn(context.Background(), pool, Options{Depth: 1, BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	if max := counter.maxAskCount(); max > 1 {
		t.Errorf("a word was asked %d times during learning", max)
	}
	asked := counter.distinctWords()
	if asked == 0 {
		t.Fatal("teacher never consulted")
	}
	if cached := pool.CachedWords(); cached != asked {
		t.Errorf("cache holds %d words, teacher answered %d", cached, asked)
	}

	// A second learning run over the same adapter is answered entirely from
	// the shared cache.
	if _, err := Learn(context.Background(), pool, Options{Depth: 1, BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	if counter.distinctWords() != asked {
		t.Error("relearning consulted the teacher for new words")
	}
	if max := counter.maxAskCount(); max > 1 {
		t.Errorf("relearning re-asked a seen word (%d times)", max)
	}
}

// TestConcurrentBatchTeacherQueries drives one PoolTeacher from many
// goroutines mixing batched and single queries over overlapping word sets.
// Run with -race: it exists to prove the shared cache and worker pool are
// data-race free.
func TestConcurrentBatchTeacherQueries(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("MRU", 4), 0)
	counter := newCountingTeacher(truth)
	pool := NewPoolTeacher(counter, 4)

	words := qstore.Enumerate(truth.NumInputs, 3)[1:] // skip ε
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				got, err := pool.OutputQueryBatch(context.Background(), words)
				if err != nil {
					errCh <- err
					return
				}
				for i, w := range words {
					if !reflect.DeepEqual(got[i], truth.Run(w)) {
						t.Errorf("goroutine %d: wrong batch answer for %v", g, w)
						return
					}
				}
			} else {
				for _, w := range words {
					got, err := pool.OutputQuery(context.Background(), w)
					if err != nil {
						errCh <- err
						return
					}
					if !reflect.DeepEqual(got, truth.Run(w)) {
						t.Errorf("goroutine %d: wrong answer for %v", g, w)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Concurrent first asks may race past the cache check (at worst one ask
	// per goroutine), but never more — every pass after the first write is
	// answered from the cache.
	if max := counter.maxAskCount(); max > 8 {
		t.Errorf("a word reached the teacher %d times under concurrency", max)
	}
}

// TestConcurrentOracleBatchQueries exercises the batched Polca oracle under
// the race detector: parallel session probing with a shared memo table.
func TestConcurrentOracleBatchQueries(t *testing.T) {
	oracle := polca.NewOracle(polca.NewSimProber(policy.MustNew("LRU", 4)),
		polca.WithParallelism(8), polca.WithDeterminismChecks(16))
	truthOracle := polca.NewOracle(polca.NewSimProber(policy.MustNew("LRU", 4)))

	words := qstore.Enumerate(oracle.NumInputs(), 3)[1:]
	got, err := oracle.OutputQueryBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		want, err := truthOracle.OutputQuery(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("word %v: batch answered %v, serial oracle %v", w, got[i], want)
		}
	}
}

// An out-of-alphabet word has no trie path; PoolTeacher must hand it to the
// wrapped teacher (which rejects it) instead of panicking on a trie edge.
func TestPoolTeacherOutOfAlphabetWord(t *testing.T) {
	oracle := polca.NewOracle(polca.NewSimProber(policy.MustNew("LRU", 4)))
	pt := NewPoolTeacher(oracle, 2)
	// Populate the root's child slice first so the panic path would be live.
	valid := []int{0, 1, 4}
	want, err := oracle.OutputQuery(context.Background(), valid)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := pt.OutputQuery(context.Background(), valid); err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("valid word: got %v, %v; want %v", got, err, want)
	}
	if _, err := pt.OutputQuery(context.Background(), []int{99}); err == nil {
		t.Fatal("expected error for out-of-alphabet word")
	}
	if _, err := pt.OutputQueryBatch(context.Background(), [][]int{valid, {99}}); err == nil {
		t.Fatal("expected batch error for out-of-alphabet word")
	}
	// The valid word must still be answerable after the failed batch.
	if got, err := pt.OutputQuery(context.Background(), valid); err != nil || !reflect.DeepEqual(got, want) {
		t.Fatalf("valid word after failed batch: got %v, %v; want %v", got, err, want)
	}
}
