package learn

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mealy"
	"repro/internal/policy"
)

// gateTeacher answers through an inner teacher until trigger queries have
// been served, then signals armed and blocks every further query on ctx —
// so a test can cancel a learn at a deterministic point in its middle and
// the learner is guaranteed to be in flight when the cancel lands. Safe for
// concurrent use (PoolTeacher workers).
type gateTeacher struct {
	inner   Teacher
	trigger int64
	served  atomic.Int64
	armed   chan struct{}
	once    atomic.Bool
}

func newGateTeacher(inner Teacher, trigger int64) *gateTeacher {
	return &gateTeacher{inner: inner, trigger: trigger, armed: make(chan struct{})}
}

func (g *gateTeacher) NumInputs() int { return g.inner.NumInputs() }

func (g *gateTeacher) OutputQuery(ctx context.Context, word []int) ([]int, error) {
	if g.served.Add(1) > atomic.LoadInt64(&g.trigger) {
		if g.once.CompareAndSwap(false, true) {
			close(g.armed)
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return g.inner.OutputQuery(ctx, word)
}

// TestCancelMidLearn: canceling the context from a concurrent goroutine
// while a learn is in flight must unwind the whole stack — both algorithms,
// with and without a worker pool — returning context.Canceled, leaking no
// pool workers, and leaving the teacher usable for a subsequent learn.
func TestCancelMidLearn(t *testing.T) {
	truth, err := mealy.FromPolicy(policy.MustNew("New1", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	algos := []struct {
		name string
		a    Algo
	}{{"lstar", AlgoLStar}, {"tree", AlgoTree}}
	teachers := []struct {
		name string
		mk   func(inner Teacher) Teacher
	}{
		{"serial", func(inner Teacher) Teacher { return inner }},
		{"pool", func(inner Teacher) Teacher { return NewPoolTeacher(inner, 4) }},
	}
	for _, al := range algos {
		for _, tc := range teachers {
			t.Run(al.name+"/"+tc.name, func(t *testing.T) {
				before := runtime.NumGoroutine()
				gate := newGateTeacher(MachineTeacher{M: truth}, 40)
				teacher := tc.mk(gate)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()

				go func() {
					<-gate.armed
					cancel()
				}()
				done := make(chan error, 1)
				go func() {
					_, err := Learn(ctx, teacher, Options{Depth: 1, Algo: al.a})
					done <- err
				}()
				select {
				case err := <-done:
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("canceled learn returned %v, want context.Canceled", err)
					}
				case <-time.After(30 * time.Second):
					t.Fatal("canceled learn never unwound")
				}

				// No leaked pool workers: the goroutine count must settle
				// back to (roughly) the pre-learn level.
				deadline := time.Now().Add(5 * time.Second)
				for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
					time.Sleep(10 * time.Millisecond)
				}
				if n := runtime.NumGoroutine(); n > before+2 {
					t.Errorf("goroutines leaked: %d before, %d after cancel", before, n)
				}

				// The teacher (and any cache inside it) must remain usable:
				// a fresh learn against the same teacher value, with the
				// gate disarmed, must converge to the exact machine.
				atomic.StoreInt64(&gate.trigger, 1<<62)
				res, err := Learn(context.Background(), teacher, Options{Depth: 1, Algo: al.a})
				if err != nil {
					t.Fatalf("learn after cancel: %v", err)
				}
				if eq, _ := res.Machine.Equivalent(truth); !eq {
					t.Error("post-cancel learn converged to a different machine")
				}
			})
		}
	}
}

// TestDeadlineExpiryMidLearn: a deadline that expires while queries are in
// flight surfaces as context.DeadlineExceeded through the same unwind path.
func TestDeadlineExpiryMidLearn(t *testing.T) {
	truth, err := mealy.FromPolicy(policy.MustNew("LRU", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	gate := newGateTeacher(MachineTeacher{M: truth}, 20)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = Learn(ctx, NewPoolTeacher(gate, 4), Options{Depth: 1, Algo: AlgoTree})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired learn returned %v, want context.DeadlineExceeded", err)
	}
}

// TestCancelBeforeLearn: an already-canceled context fails fast without
// consulting the teacher at all.
func TestCancelBeforeLearn(t *testing.T) {
	truth, err := mealy.FromPolicy(policy.MustNew("LRU", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var served atomic.Int64
	counting := teacherFunc{n: truth.NumInputs, f: func(c context.Context, w []int) ([]int, error) {
		served.Add(1)
		return MachineTeacher{M: truth}.OutputQuery(c, w)
	}}
	if _, err := Learn(ctx, counting, Options{Depth: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled learn returned %v", err)
	}
	if n := served.Load(); n != 0 {
		t.Errorf("pre-canceled learn still asked %d queries", n)
	}
}

// teacherFunc adapts a function to Teacher.
type teacherFunc struct {
	n int
	f func(context.Context, []int) ([]int, error)
}

func (t teacherFunc) NumInputs() int { return t.n }
func (t teacherFunc) OutputQuery(ctx context.Context, w []int) ([]int, error) {
	return t.f(ctx, w)
}
