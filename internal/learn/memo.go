package learn

// The learner's output-query memo over the shared query store
// (internal/qstore). Edges are input symbols; every node is one word. The
// memo plays three roles:
//
//   - Output memo: each node records the output of the last symbol of its
//     word, so the answer to any query whose word is a prefix of an
//     already-answered word is read off the path — the flat map memo it
//     replaces only hit on identical words, and every lookup allocated a
//     string key.
//   - Exact-match store: PoolTeacher keeps full answer slices at terminal
//     nodes only, preserving its answered-word accounting (batch.go).
//   - Word set: the store's epoch marks turn it into a reusable dedup set
//     for suffix bookkeeping, conformance-suite streaming, and batch
//     prefetch, with no per-word key materialization.
//
// The learner runs on one goroutine, so its stores are unsynchronized
// single-shard instances; PoolTeacher's shared cache is the lock-striped
// variant (see batch.go).

import "repro/internal/qstore"

// memoVal is the per-node payload of the learner's output memo.
type memoVal struct {
	out  int   // output of the last symbol of the word ending here
	full []int // full output word, materialized lazily at queried nodes
}

// newMemoStore builds an unsynchronized single-shard store for the serial
// learner (memo and dedup sets alike pay no locking).
func newMemoStore(numIn int) *qstore.Store[int, memoVal] {
	return qstore.New[int, memoVal](qstore.Options{Degree: numIn})
}

// newMarkStore builds an unsynchronized dedup-set store.
func newMarkStore(numIn int) *qstore.Store[int, struct{}] {
	return qstore.New[int, struct{}](qstore.Options{Degree: numIn})
}

// trieOutputs returns the memoized output word of u·s if every symbol's
// output is recorded — including when u·s is a proper prefix of a longer
// answered word. The full slice is materialized at most once per node and
// reused, so repeated hits allocate nothing.
func (l *engine) trieOutputs(u, s []int) ([]int, bool) {
	total := len(u) + len(s)
	if total == 0 {
		return []int{}, true
	}
	head := u
	if len(head) == 0 {
		head = s
	}
	sh := l.memo.Acquire(head)
	defer sh.Release()
	n := int32(0)
	for _, a := range u {
		if n = sh.Child(n, a); n < 0 || !sh.Has(n) {
			return nil, false
		}
	}
	for _, a := range s {
		if n = sh.Child(n, a); n < 0 || !sh.Has(n) {
			return nil, false
		}
	}
	if f := sh.Val(n).full; f != nil {
		return f, true
	}
	out := make([]int, total)
	m := int32(0)
	for i := 0; i < total; i++ {
		a := 0
		if i < len(u) {
			a = u[i]
		} else {
			a = s[i-len(u)]
		}
		m = sh.Child(m, a)
		out[i] = sh.Val(m).out
	}
	sh.Val(n).full = out
	return out, true
}

// trieRecord stores the per-symbol outputs of w and the full answer slice
// at its terminal node. The caller hands over ownership of out.
func (l *engine) trieRecord(w, out []int) {
	if len(w) == 0 {
		return
	}
	sh := l.memo.Acquire(w)
	defer sh.Release()
	n := int32(0)
	for i, a := range w {
		n = sh.Extend(n, a)
		v := sh.Val(n)
		v.out = out[i]
		sh.SetHas(n)
	}
	sh.Val(n).full = out
}
