package learn

import (
	"context"
	"math/rand"

	"repro/internal/intern"
	"repro/internal/mealy"
	"repro/internal/qstore"
)

// This file implements the equivalence-query approximations of §3.3: the
// W-method [23] conformance suite of depth k, and the random-walk
// alternative the paper mentions for deeper counterexample exploration.
//
// The W-method suite for a hypothesis H and depth k is
//
//	T · Σ^{≤k} · W
//
// where T is a transition cover of H (a shortest access word for every state
// followed by every input), and W a characterizing set of H. The suite is
// (|H|+k)-complete: any machine with at most |H|+k states that agrees with H
// on all test words is trace-equivalent to H (Theorem 3.3).

// checkSuite compares teacher and hypothesis on every test word the
// generator emits, in order, returning the first counterexample exactly as a
// fully serial loop would — but prefetching each upcoming chunk of words
// through the BatchTeacher first, so the teacher answers Options.BatchSize
// independent queries at a time. The counterexample (and hence the whole
// learning trajectory) is independent of the chunking: words are examined
// strictly in emission order. Streaming matters for the discrimination-tree
// learner, which runs the suite once per refinement round: suite words after
// a counterexample are never even constructed.
//
// gen must call emit for every test word and stop as soon as emit returns
// false.
func (l *engine) checkSuite(hyp *mealy.Machine, gen func(emit func([]int) bool)) ([]int, error) {
	chunk := l.liveBatch()
	// Under a query budget, speculative prefetch past a counterexample
	// could spend queries the serial trajectory never asks and abort a run
	// serial learning would complete — so fall back to lazy asking. (Table
	// prefetches are unaffected: every table word is required either way.)
	if chunk < 1 || l.opt.MaxQueries > 0 {
		chunk = 1
	}
	var (
		buf [][]int
		ce  []int
		err error
	)
	flush := func() bool {
		if err = l.prefetch(buf); err != nil {
			return false
		}
		for _, test := range buf {
			l.stats.TestWords++
			if ce, err = l.checkWord(hyp, test); err != nil || ce != nil {
				return false
			}
		}
		buf = buf[:0]
		return true
	}
	gen(func(test []int) bool {
		buf = append(buf, test)
		if len(buf) >= chunk {
			return flush()
		}
		return true
	})
	if err == nil && ce == nil && len(buf) > 0 {
		flush()
	}
	return ce, err
}

// checkWords is checkSuite over a materialized word list.
func (l *engine) checkWords(hyp *mealy.Machine, words [][]int) ([]int, error) {
	return l.checkSuite(hyp, func(emit func([]int) bool) {
		for _, w := range words {
			if !emit(w) {
				return
			}
		}
	})
}

// wMethodCE runs the W-method suite against the teacher and returns a
// trimmed counterexample, or nil if the suite passes.
func (l *engine) wMethodCE(hyp *mealy.Machine) ([]int, error) {
	access := hyp.AccessSequences()
	w := hyp.CharacterizingSet()

	// Transition cover: every access sequence, bare and extended by every
	// input symbol.
	var cover [][]int
	for _, u := range access {
		cover = append(cover, u)
		for a := 0; a < l.numIn; a++ {
			cover = append(cover, append(append([]int(nil), u...), a))
		}
	}

	middles := qstore.Enumerate(l.numIn, l.opt.Depth)

	// The suite streams through a mark store for prefix-shared dedup
	// instead of materializing a map of word keys. The dedup store is
	// separate from the prefetch scratch store: generation interleaves
	// with prefetching.
	l.suite.ResetMarks()
	return l.checkSuite(hyp, func(emit func([]int) bool) {
		for _, u := range cover {
			for _, m := range middles {
				for _, suf := range w {
					test := qstore.Concat(u, m, suf)
					if len(test) == 0 || !l.suite.InsertMark(test) {
						continue
					}
					if !emit(test) {
						return
					}
				}
			}
		}
	})
}

// wpMethodCE runs the Wp-method suite against the teacher. Phase 1 applies
// the full characterizing set W after the state cover; phase 2 applies only
// the identification set of the reached state after the remaining
// transition-cover words. The suite is (|H|+k)-complete like the W-method
// but substantially smaller, which is why the paper uses it.
func (l *engine) wpMethodCE(hyp *mealy.Machine) ([]int, error) {
	// The Wp-method's phase 2 identifies the reached state by a subset of W
	// unique to it — which requires the hypothesis to be reduced. Mid-learning
	// hypotheses (the discrimination tree's especially) can briefly contain
	// hypothesis-equivalent states; their identification sets would be empty
	// and phase 2 would silently skip those transitions. Fall back to the
	// plain W-method for such degenerate rounds — soundness over suite size.
	if hyp.Minimize().NumStates < hyp.NumStates {
		return l.wMethodCE(hyp)
	}
	access := hyp.AccessSequences()
	w := hyp.CharacterizingSet()
	ident := identificationSets(hyp, w)
	middles := qstore.Enumerate(l.numIn, l.opt.Depth)

	l.suite.ResetMarks()
	return l.checkSuite(hyp, func(emit func([]int) bool) {
		add := func(test []int) bool {
			if len(test) == 0 || !l.suite.InsertMark(test) {
				return true
			}
			return emit(test)
		}
		// Phase 1: state cover x middles x W.
		for _, u := range access {
			for _, m := range middles {
				for _, suf := range w {
					if !add(qstore.Concat(u, m, suf)) {
						return
					}
				}
			}
		}
		// Phase 2: transition cover x middles x identification set of the
		// state the hypothesis predicts.
		for _, u := range access {
			for a := 0; a < l.numIn; a++ {
				ua := qstore.Concat(u, []int{a})
				for _, m := range middles {
					r := qstore.Concat(ua, m)
					s := hyp.StateAfter(r)
					for _, suf := range ident[s] {
						if !add(qstore.Concat(r, suf)) {
							return
						}
					}
				}
			}
		}
	})
}

// identificationSets computes, per state, a minimal-ish subset of W whose
// output signature is unique to that state (greedy cover).
func identificationSets(hyp *mealy.Machine, w [][]int) [][][]int {
	// Intern every (state, word) output once up front; the cover loop below
	// compares pairs of states per word and would otherwise re-intern the
	// same output vectors O(n) times each.
	ids := intern.New()
	sigTab := make([][]int32, hyp.NumStates)
	for s := 0; s < hyp.NumStates; s++ {
		sigTab[s] = make([]int32, len(w))
		for i, word := range w {
			sigTab[s][i] = ids.Word(hyp.RunFrom(s, word))
		}
	}
	out := make([][][]int, hyp.NumStates)
	for s := 0; s < hyp.NumStates; s++ {
		alive := make(map[int]bool, hyp.NumStates-1)
		for t := 0; t < hyp.NumStates; t++ {
			if t != s {
				alive[t] = true
			}
		}
		var set [][]int
		for i, word := range w {
			if len(alive) == 0 {
				break
			}
			split := false
			mine := sigTab[s][i]
			for t := range alive {
				if sigTab[t][i] != mine {
					delete(alive, t)
					split = true
				}
			}
			if split {
				set = append(set, word)
			}
		}
		// States that remain equal under all of W are trace-equivalent in
		// a non-minimal hypothesis; reduced hypotheses never leave alive
		// non-empty (wpMethodCE falls back to the W-method otherwise).
		if len(set) == 0 {
			// A single-state hypothesis has nothing to separate, but its
			// transition cover still needs outputs exercised in phase 2 —
			// the discrimination-tree learner's first hypothesis depends on
			// it to surface the first counterexample.
			set = w
		}
		out[s] = set
	}
	return out
}

// randomWalkCE samples random words until the step budget is exhausted.
// Unlike the W-method it gives no completeness guarantee, but explores much
// deeper traces per query.
func (l *engine) randomWalkCE(hyp *mealy.Machine) ([]int, error) {
	steps := l.opt.RandomWalkSteps
	if steps <= 0 {
		steps = 10000
	}
	rng := rand.New(rand.NewSource(l.opt.RandomWalkSeed + int64(l.stats.Rounds)))
	// Draw the whole round's words up front — the RNG sequence (and hence
	// the counterexample found) is identical to the serial walk — then check
	// them through the batched suite runner.
	var words [][]int
	spent := 0
	for spent < steps {
		n := 2 + rng.Intn(3*hyp.NumStates+4)
		if n > steps-spent {
			n = steps - spent
		}
		if n == 0 {
			break
		}
		word := make([]int, n)
		for i := range word {
			word[i] = rng.Intn(l.numIn)
		}
		spent += n
		words = append(words, word)
	}
	return l.checkWords(hyp, words)
}

// MachineTeacher adapts an explicit Mealy machine into a Teacher, used to
// test the learner in isolation and to re-learn already-learned models.
type MachineTeacher struct{ M *mealy.Machine }

// NumInputs implements Teacher.
func (t MachineTeacher) NumInputs() int { return t.M.NumInputs }

// OutputQuery implements Teacher. The simulated machine answers instantly,
// so only the context's terminal state matters.
func (t MachineTeacher) OutputQuery(ctx context.Context, word []int) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t.M.Run(word), nil
}
