package learn

import (
	"math/rand"

	"repro/internal/intern"
	"repro/internal/mealy"
)

// This file implements the equivalence-query approximations of §3.3: the
// W-method [23] conformance suite of depth k, and the random-walk
// alternative the paper mentions for deeper counterexample exploration.
//
// The W-method suite for a hypothesis H and depth k is
//
//	T · Σ^{≤k} · W
//
// where T is a transition cover of H (a shortest access word for every state
// followed by every input), and W a characterizing set of H. The suite is
// (|H|+k)-complete: any machine with at most |H|+k states that agrees with H
// on all test words is trace-equivalent to H (Theorem 3.3).

// checkSuite compares teacher and hypothesis on every test word, in order,
// returning the first counterexample exactly as the serial loop would — but
// prefetching the upcoming chunk of words through the BatchTeacher first, so
// the teacher answers Options.BatchSize independent queries at a time. The
// counterexample (and hence the whole learning trajectory) is independent of
// the chunking: words are examined strictly in suite order.
func (l *learner) checkSuite(hyp *mealy.Machine, words [][]int) ([]int, error) {
	chunk := l.batch
	// Under a query budget, speculative prefetch past a counterexample
	// could spend queries the serial trajectory never asks and abort a run
	// serial learning would complete — so fall back to lazy asking. (Table
	// prefetches are unaffected: every table word is required either way.)
	if chunk < 1 || l.opt.MaxQueries > 0 {
		chunk = 1
	}
	for start := 0; start < len(words); start += chunk {
		end := start + chunk
		if end > len(words) {
			end = len(words)
		}
		if err := l.prefetch(words[start:end]); err != nil {
			return nil, err
		}
		for _, test := range words[start:end] {
			l.stats.TestWords++
			ce, err := l.checkWord(hyp, test)
			if err != nil {
				return nil, err
			}
			if ce != nil {
				return ce, nil
			}
		}
	}
	return nil, nil
}

// wMethodCE runs the W-method suite against the teacher and returns a
// trimmed counterexample, or nil if the suite passes.
func (l *learner) wMethodCE(hyp *mealy.Machine) ([]int, error) {
	access := hyp.AccessSequences()
	w := hyp.CharacterizingSet()

	// Transition cover: every access sequence, bare and extended by every
	// input symbol.
	var cover [][]int
	for _, u := range access {
		cover = append(cover, u)
		for a := 0; a < l.numIn; a++ {
			cover = append(cover, append(append([]int(nil), u...), a))
		}
	}

	middles := enumerateWords(l.numIn, l.opt.Depth)

	// The suite streams through the learner's mark trie for prefix-shared
	// dedup instead of materializing a map of word keys.
	var suite [][]int
	l.seen.resetMarks()
	for _, u := range cover {
		for _, m := range middles {
			for _, suf := range w {
				test := concatWords(u, m, suf)
				if len(test) == 0 || !l.seen.insertMark(test) {
					continue
				}
				suite = append(suite, test)
			}
		}
	}
	return l.checkSuite(hyp, suite)
}

// wpMethodCE runs the Wp-method suite against the teacher. Phase 1 applies
// the full characterizing set W after the state cover; phase 2 applies only
// the identification set of the reached state after the remaining
// transition-cover words. The suite is (|H|+k)-complete like the W-method
// but substantially smaller, which is why the paper uses it.
func (l *learner) wpMethodCE(hyp *mealy.Machine) ([]int, error) {
	access := hyp.AccessSequences()
	w := hyp.CharacterizingSet()
	ident := identificationSets(hyp, w)
	middles := enumerateWords(l.numIn, l.opt.Depth)

	var suite [][]int
	l.seen.resetMarks()
	add := func(test []int) {
		if len(test) == 0 || !l.seen.insertMark(test) {
			return
		}
		suite = append(suite, test)
	}

	// Phase 1: state cover x middles x W.
	for _, u := range access {
		for _, m := range middles {
			for _, suf := range w {
				add(concatWords(u, m, suf))
			}
		}
	}
	// Phase 2: transition cover x middles x identification set of the
	// state the hypothesis predicts.
	for _, u := range access {
		for a := 0; a < l.numIn; a++ {
			ua := concatWords(u, []int{a})
			for _, m := range middles {
				r := concatWords(ua, m)
				s := hyp.StateAfter(r)
				for _, suf := range ident[s] {
					add(concatWords(r, suf))
				}
			}
		}
	}
	return l.checkSuite(hyp, suite)
}

// identificationSets computes, per state, a minimal-ish subset of W whose
// output signature is unique to that state (greedy cover).
func identificationSets(hyp *mealy.Machine, w [][]int) [][][]int {
	ids := intern.New()
	sig := func(s int, word []int) int32 { return ids.Word(hyp.RunFrom(s, word)) }
	out := make([][][]int, hyp.NumStates)
	for s := 0; s < hyp.NumStates; s++ {
		alive := make(map[int]bool, hyp.NumStates-1)
		for t := 0; t < hyp.NumStates; t++ {
			if t != s {
				alive[t] = true
			}
		}
		var set [][]int
		for _, word := range w {
			if len(alive) == 0 {
				break
			}
			split := false
			mine := sig(s, word)
			for t := range alive {
				if sig(t, word) != mine {
					delete(alive, t)
					split = true
				}
			}
			if split {
				set = append(set, word)
			}
		}
		// States that remain equal under all of W are trace-equivalent in
		// a non-minimal hypothesis; the learner's hypotheses are reduced,
		// so alive is empty here.
		out[s] = set
	}
	return out
}

func concatWords(parts ...[]int) []int {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]int, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// enumerateWords returns all words over inputs 0..numIn-1 of length 0..k,
// in deterministic order.
func enumerateWords(numIn, k int) [][]int {
	words := [][]int{{}}
	level := [][]int{{}}
	for d := 0; d < k; d++ {
		var next [][]int
		for _, w := range level {
			for a := 0; a < numIn; a++ {
				next = append(next, append(append([]int(nil), w...), a))
			}
		}
		words = append(words, next...)
		level = next
	}
	return words
}

// randomWalkCE samples random words until the step budget is exhausted.
// Unlike the W-method it gives no completeness guarantee, but explores much
// deeper traces per query.
func (l *learner) randomWalkCE(hyp *mealy.Machine) ([]int, error) {
	steps := l.opt.RandomWalkSteps
	if steps <= 0 {
		steps = 10000
	}
	rng := rand.New(rand.NewSource(l.opt.RandomWalkSeed + int64(l.stats.Rounds)))
	// Draw the whole round's words up front — the RNG sequence (and hence
	// the counterexample found) is identical to the serial walk — then check
	// them through the batched suite runner.
	var words [][]int
	spent := 0
	for spent < steps {
		n := 2 + rng.Intn(3*hyp.NumStates+4)
		if n > steps-spent {
			n = steps - spent
		}
		if n == 0 {
			break
		}
		word := make([]int, n)
		for i := range word {
			word[i] = rng.Intn(l.numIn)
		}
		spent += n
		words = append(words, word)
	}
	return l.checkSuite(hyp, words)
}

// MachineTeacher adapts an explicit Mealy machine into a Teacher, used to
// test the learner in isolation and to re-learn already-learned models.
type MachineTeacher struct{ M *mealy.Machine }

// NumInputs implements Teacher.
func (t MachineTeacher) NumInputs() int { return t.M.NumInputs }

// OutputQuery implements Teacher.
func (t MachineTeacher) OutputQuery(word []int) ([]int, error) { return t.M.Run(word), nil }
