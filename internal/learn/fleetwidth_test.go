package learn

import (
	"context"
	"sync"
	"testing"

	"repro/internal/mealy"
	"repro/internal/policy"
)

// widthTeacher is a batch teacher whose BatchHint changes at runtime, the
// shape of polca's fleet-backed oracle: the hint tracks how many fleet
// slots are live, so it shrinks under quarantine and grows back on
// re-admission. It records the widest batch it was ever asked.
type widthTeacher struct {
	*countingTeacher

	mu       sync.Mutex
	hint     int
	maxBatch int
	asks     int
	onAsk    func(n int)
}

func (t *widthTeacher) OutputQuery(ctx context.Context, word []int) ([]int, error) {
	t.mu.Lock()
	t.asks++
	n := t.asks
	cb := t.onAsk
	t.mu.Unlock()
	if cb != nil {
		cb(n)
	}
	return t.countingTeacher.OutputQuery(ctx, word)
}

func (t *widthTeacher) BatchHint() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hint
}

func (t *widthTeacher) setHint(h int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hint = h
}

func (t *widthTeacher) OutputQueryBatch(ctx context.Context, words [][]int) ([][]int, error) {
	t.mu.Lock()
	if len(words) > t.maxBatch {
		t.maxBatch = len(words)
	}
	t.mu.Unlock()
	out := make([][]int, len(words))
	for i, w := range words {
		ans, err := t.OutputQuery(ctx, w)
		if err != nil {
			return nil, err
		}
		out[i] = ans
	}
	return out, nil
}

// TestChunkTracksLiveBatchHint: the conformance loop's prefetch chunk is
// re-derived from the teacher's live BatchHint instead of frozen at
// construction — when the advertised width grows (a quarantined fleet
// worker was re-admitted), subsequent suite runs form wider chunks.
func TestChunkTracksLiveBatchHint(t *testing.T) {
	truth, err := mealy.FromPolicy(policy.MustNew("LRU", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	wt := &widthTeacher{countingTeacher: newCountingTeacher(truth), hint: 2}

	l := &learner{engine: newEngine(context.Background(), wt, Options{Depth: 1})}
	if got, want := l.batch, 4*2; got != want {
		t.Fatalf("constructor-resolved chunk %d, want %d", got, want)
	}
	if got, want := l.liveBatch(), 4*2; got != want {
		t.Fatalf("live chunk %d at hint 2, want %d", got, want)
	}

	wt.setHint(8)
	if got, want := l.liveBatch(), 4*8; got != want {
		t.Errorf("live chunk %d after hint grew to 8, want %d", got, want)
	}
	wt.setHint(32)
	if got, want := l.liveBatch(), MaxBatchSize; got != want {
		t.Errorf("live chunk %d at hint 32, want the %d cap", got, want)
	}
	wt.setHint(2)
	if got, want := l.liveBatch(), 4*2; got != want {
		t.Errorf("live chunk %d after the fleet shrank back, want %d", got, want)
	}

	// An explicit BatchSize pins the chunk regardless of hint churn.
	pinned := &learner{engine: newEngine(context.Background(), wt, Options{Depth: 1, BatchSize: 7})}
	wt.setHint(16)
	if got := pinned.liveBatch(); got != 7 {
		t.Errorf("explicit BatchSize: live chunk %d, want 7", got)
	}
}

// takeMaxBatch returns the widest batch seen so far and resets the gauge.
func (t *widthTeacher) takeMaxBatch() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.maxBatch
	t.maxBatch = 0
	return m
}

// TestSuiteChunksGrowWithHint: conformance flushes through the same engine
// widen after the teacher's hint grows mid-run — the chunk is re-derived
// per suite run, not frozen at construction.
func TestSuiteChunksGrowWithHint(t *testing.T) {
	truth, err := mealy.FromPolicy(policy.MustNew("PLRU", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	wt := &widthTeacher{countingTeacher: newCountingTeacher(truth), hint: 2}
	l := &learner{engine: newEngine(context.Background(), wt, Options{Depth: 1})}

	// Distinct valid words per round, so prefetch dedup never shrinks a
	// chunk below the flush width.
	mkWords := func(round, n int) [][]int {
		words := make([][]int, n)
		for i := 0; i < n; i++ {
			v := round*1000 + i
			var w []int
			for v > 0 {
				w = append(w, v%truth.NumInputs)
				v /= truth.NumInputs
			}
			words[i] = w
		}
		return words
	}

	// The hypothesis IS the truth machine: no counterexample cuts a
	// suite run short, so every full chunk travels.
	if ce, err := l.checkWords(truth, mkWords(1, 60)); err != nil || ce != nil {
		t.Fatalf("suite against the truth machine: ce=%v err=%v", ce, err)
	}
	narrowMax := wt.takeMaxBatch()
	if narrowMax != 4*2 {
		t.Errorf("widest flush %d at hint 2, want %d", narrowMax, 4*2)
	}

	wt.setHint(8)
	if ce, err := l.checkWords(truth, mkWords(2, 60)); err != nil || ce != nil {
		t.Fatalf("suite after hint growth: ce=%v err=%v", ce, err)
	}
	grownMax := wt.takeMaxBatch()
	if grownMax != 4*8 {
		t.Errorf("widest flush %d after the hint grew to 8, want %d", grownMax, 4*8)
	}
	if grownMax <= narrowMax {
		t.Errorf("chunks did not widen with the fleet: %d then %d", narrowMax, grownMax)
	}
}
