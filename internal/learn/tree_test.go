package learn

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
	"repro/internal/qstore"
)

// matrixCase is one published-artifact policy (cmd/genmodels's matrix).
// mustWin marks the policies where the tree learner is required to ask
// strictly fewer output queries than L* (the acceptance bar); on the rest it
// may pay a small overhead — L*'s Maler–Pnueli column splat is occasionally
// very effective (SRRIP-HP-4) — but never more than slack x the L* count.
type matrixCase struct {
	name    string
	assoc   int
	heavy   bool // skipped in -short runs
	mustWin bool
}

func modelMatrix(short bool) []matrixCase {
	all := []matrixCase{
		{"FIFO", 4, false, true}, {"LRU", 4, false, true},
		{"PLRU", 4, false, true}, {"PLRU", 8, false, true},
		{"MRU", 4, false, true}, {"LIP", 4, false, true},
		{"SRRIP-HP", 4, false, false}, {"SRRIP-FP", 4, true, true},
		{"New1", 4, true, true}, {"New2", 4, true, true},
	}
	var out []matrixCase
	for _, c := range all {
		if short && c.heavy {
			continue
		}
		out = append(out, c)
	}
	return out
}

// TestTreeLearnsModelMatrix: the discrimination-tree learner must learn every
// published policy trace-equivalent to the ground truth and to the L* result,
// minimal, and with strictly fewer output queries than the observation table
// — the algorithm's whole reason to exist.
func TestTreeLearnsModelMatrix(t *testing.T) {
	for _, c := range modelMatrix(testing.Short()) {
		c := c
		t.Run(policyKey(c.name, c.assoc), func(t *testing.T) {
			truth, err := mealy.FromPolicy(policy.MustNew(c.name, c.assoc), 0)
			if err != nil {
				t.Fatal(err)
			}
			tree, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, Algo: AlgoTree})
			if err != nil {
				t.Fatal(err)
			}
			if eq, ce := tree.Machine.Equivalent(truth); !eq {
				t.Fatalf("tree machine differs from truth, ce=%v", ce)
			}
			if min := truth.Minimize(); tree.Machine.NumStates != min.NumStates {
				t.Errorf("tree learned %d states, minimal is %d", tree.Machine.NumStates, min.NumStates)
			}
			lstar, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, Algo: AlgoLStar})
			if err != nil {
				t.Fatal(err)
			}
			if eq, ce := tree.Machine.Equivalent(lstar.Machine); !eq {
				t.Fatalf("tree and L* machines differ, ce=%v", ce)
			}
			if c.mustWin && tree.Stats.OutputQueries >= lstar.Stats.OutputQueries {
				t.Errorf("tree asked %d output queries, L* %d — no query win",
					tree.Stats.OutputQueries, lstar.Stats.OutputQueries)
			}
			const slack = 1.2
			if float64(tree.Stats.OutputQueries) > slack*float64(lstar.Stats.OutputQueries) {
				t.Errorf("tree asked %d output queries, more than %.1fx the L* count %d",
					tree.Stats.OutputQueries, slack, lstar.Stats.OutputQueries)
			}
		})
	}
}

func policyKey(name string, assoc int) string {
	return fmt.Sprintf("%s-%d", name, assoc)
}

// TestTreeMatchesLStarUnderBatchedTeachers: the cross-algorithm property
// under both teacher regimes. For each policy the four runs — {tree, L*} x
// {serial, batched} — must agree: batched learning must reproduce the serial
// machine of its own algorithm *exactly* (the batch engine only prefetches),
// and the two algorithms' machines must be trace-equivalent.
func TestTreeMatchesLStarUnderBatchedTeachers(t *testing.T) {
	for _, c := range []struct {
		name  string
		assoc int
	}{{"PLRU", 4}, {"MRU", 4}, {"SRRIP-HP", 2}, {"New1", 2}} {
		truth, err := mealy.FromPolicy(policy.MustNew(c.name, c.assoc), 0)
		if err != nil {
			t.Fatal(err)
		}
		machines := make(map[Algo][]*mealy.Machine)
		for _, algo := range []Algo{AlgoLStar, AlgoTree} {
			serial, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, Algo: algo})
			if err != nil {
				t.Fatal(err)
			}
			batched, err := Learn(context.Background(), NewPoolTeacher(MachineTeacher{M: truth}, 8),
				Options{Depth: 1, Algo: algo, BatchSize: 16})
			if err != nil {
				t.Fatal(err)
			}
			bm, sm := batched.Machine, serial.Machine
			if bm.NumStates != sm.NumStates || bm.Init != sm.Init ||
				!reflect.DeepEqual(bm.Next, sm.Next) || !reflect.DeepEqual(bm.Out, sm.Out) {
				t.Errorf("%s-%d/%v: batched learning diverged from the serial reference", c.name, c.assoc, algo)
			}
			machines[algo] = []*mealy.Machine{sm, bm}
		}
		for _, tm := range machines[AlgoTree] {
			if eq, ce := tm.Equivalent(machines[AlgoLStar][0]); !eq {
				t.Errorf("%s-%d: tree and L* machines differ, ce=%v", c.name, c.assoc, ce)
			}
			if eq, ce := tm.Equivalent(truth); !eq {
				t.Errorf("%s-%d: tree machine differs from truth, ce=%v", c.name, c.assoc, ce)
			}
		}
	}
}

// TestTreeViaPolcaOracle drives the §6 pipeline with the tree learner:
// learner -> Polca -> simulated cache, serial and on the batched replica
// engine, checked against the ground-truth automaton and the paper's state
// counts.
func TestTreeViaPolcaOracle(t *testing.T) {
	cases := []struct {
		name  string
		assoc int
	}{
		{"FIFO", 8},
		{"LRU", 4},
		{"PLRU", 4},
		{"MRU", 4},
		{"SRRIP-HP", 2},
		{"New1", 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			truth, _ := mealy.FromPolicy(policy.MustNew(c.name, c.assoc), 0)
			serialOracle := polca.NewOracle(polca.NewSimProber(policy.MustNew(c.name, c.assoc)),
				polca.WithParallelism(1))
			serial, err := Learn(context.Background(), serialOracle, Options{Depth: 1, Algo: AlgoTree})
			if err != nil {
				t.Fatal(err)
			}
			if want := truth.Minimize().NumStates; serial.Machine.NumStates != want {
				t.Errorf("learned %d states, want %d", serial.Machine.NumStates, want)
			}
			if eq, ce := serial.Machine.Equivalent(truth); !eq {
				t.Fatalf("serial tree machine differs from truth, ce=%v", ce)
			}
			parOracle := polca.NewOracle(polca.NewSimProber(policy.MustNew(c.name, c.assoc)),
				polca.WithParallelism(8))
			batched, err := Learn(context.Background(), parOracle, Options{Depth: 1, Algo: AlgoTree})
			if err != nil {
				t.Fatal(err)
			}
			if eq, ce := batched.Machine.Equivalent(serial.Machine); !eq {
				t.Errorf("batched tree learning diverged from serial, ce=%v", ce)
			}
		})
	}
}

// TestTreeLearnerConcurrencyRace drives two tree learners on the replica
// engine concurrently — each over its own batched oracle fanning session
// probes across parallel goroutines, plus a third goroutine hammering one of
// the shared oracles directly. It exists to run under -race: the tree
// learner's batched prefetch path must be data-race free end to end.
func TestTreeLearnerConcurrencyRace(t *testing.T) {
	oracle := polca.NewOracle(polca.NewSimProber(policy.MustNew("MRU", 4)),
		polca.WithParallelism(8), polca.WithSessionCap(32))
	truth, _ := mealy.FromPolicy(policy.MustNew("MRU", 4), 0)

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Learn(context.Background(), oracle, Options{Depth: 1, Algo: AlgoTree})
			if err != nil {
				errCh <- err
				return
			}
			if eq, _ := res.Machine.Equivalent(truth); !eq {
				t.Error("concurrent tree learning produced a wrong machine")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		words := qstore.Enumerate(truth.NumInputs, 2)[1:]
		got, err := oracle.OutputQueryBatch(context.Background(), words)
		if err != nil {
			errCh <- err
			return
		}
		for i, w := range words {
			if !reflect.DeepEqual(got[i], truth.Run(w)) {
				t.Errorf("concurrent batch answer wrong for %v", w)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestTreeRandomWalkReproducible: SuiteRandomWalk with a fixed seed must
// reproduce the exact same machine and trajectory, and a different seed must
// still converge to a trace-equivalent machine.
func TestTreeRandomWalkReproducible(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("MRU", 4), 0)
	opt := Options{Algo: AlgoTree, Suite: SuiteRandomWalk, RandomWalkSteps: 200000, RandomWalkSeed: 7}
	a, err := Learn(context.Background(), MachineTeacher{M: truth}, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Learn(context.Background(), MachineTeacher{M: truth}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Machine, b.Machine) || a.Stats.OutputQueries != b.Stats.OutputQueries {
		t.Error("same seed did not reproduce the same learning run")
	}
	if eq, ce := a.Machine.Equivalent(truth); !eq {
		t.Errorf("random-walk tree learning failed, ce=%v", ce)
	}
	opt.RandomWalkSeed = 99
	c, err := Learn(context.Background(), MachineTeacher{M: truth}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := c.Machine.Equivalent(truth); !eq {
		t.Errorf("reseeded random-walk learning failed, ce=%v", ce)
	}
}

// TestTreeBudgets: the tree learner must honor the same state and query
// budgets as the table learner.
func TestTreeBudgets(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("LRU", 4), 0)
	if _, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, Algo: AlgoTree, MaxStates: 5}); !errors.Is(err, ErrStateBudget) {
		t.Errorf("err = %v, want ErrStateBudget", err)
	}
	if _, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, Algo: AlgoTree, MaxQueries: 10}); err == nil {
		t.Error("query budget not enforced")
	}
}

// TestTreeTrivialSingleStatePolicy: the degenerate one-state machine must be
// learned without ever needing a split.
func TestTreeTrivialSingleStatePolicy(t *testing.T) {
	truth, err := mealy.FromPolicy(policy.MustNew("FIFO", 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, Algo: AlgoTree})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.NumStates != 1 {
		t.Errorf("learned %d states, want 1", res.Machine.NumStates)
	}
	if eq, _ := res.Machine.Equivalent(truth); !eq {
		t.Error("trivial machine learned wrongly")
	}
}

// TestTreeNondeterministicTeacherFails mirrors the L* behavior: a randomly
// evicting cache must abort tree learning through one of the defended paths
// (determinism audit, state budget, or a split whose discriminator does not
// separate).
func TestTreeNondeterministicTeacherFails(t *testing.T) {
	oracle := polca.NewOracle(polca.NewSimProber(policy.NewRandom(4, 3)),
		polca.WithDeterminismChecks(8))
	if _, err := Learn(context.Background(), oracle, Options{Depth: 1, Algo: AlgoTree, MaxStates: 3000}); err == nil {
		t.Fatal("learning a nondeterministic cache succeeded")
	}
}

// TestParseAlgo covers the flag spellings used by the CLIs.
func TestParseAlgo(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Algo
	}{
		{"lstar", AlgoLStar}, {"L*", AlgoLStar}, {"", AlgoLStar},
		{"tree", AlgoTree}, {"TTT", AlgoTree}, {"dt", AlgoTree},
	} {
		got, err := ParseAlgo(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseAlgo(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseAlgo("bogus"); err == nil {
		t.Error("ParseAlgo accepted garbage")
	}
	if AlgoLStar.String() != "lstar" || AlgoTree.String() != "tree" {
		t.Error("Algo.String does not round-trip the flag spellings")
	}
}
