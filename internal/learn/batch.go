package learn

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/qstore"
)

// BatchTeacher is an optional Teacher extension for teachers that can answer
// several independent output queries at once — on parallel goroutines, over
// replicated hardware interfaces, or by any other means. The learner detects
// it and dispatches its observation-table rows and conformance-suite words in
// batches instead of one query at a time.
//
// Answers[i] must be the output word of words[i]; the batch carries no
// ordering constraint between words, which is what makes CacheQuery-style
// learning embarrassingly parallel: every membership query starts from the
// cache's reset state.
type BatchTeacher interface {
	Teacher
	// OutputQueryBatch answers len(words) independent output queries.
	OutputQueryBatch(ctx context.Context, words [][]int) ([][]int, error)
}

// BatchHinter is an optional BatchTeacher refinement advertising how many
// queries the teacher can usefully answer concurrently. The learner scales
// its prefetch chunks to the hint — in particular, a hint of 1 (no real
// parallelism available) keeps the learning loop exactly serial, paying no
// speculative queries. The hint is about useful batch width, not goroutine
// count: a teacher answering batches in lockstep on one core — the
// structure-of-arrays batched oracle (polca.WithBatchedQueries) — reports a
// constant width so chunks form even where goroutine fan-out would not pay.
type BatchHinter interface {
	BatchHint() int
}

// QueryAll answers every word through t, using one OutputQueryBatch call when
// t implements BatchTeacher and a serial loop otherwise. It is the helper
// non-learner clients (cmd/genmodels, experiments) use to stay batch-aware
// without duplicating the dispatch logic.
func QueryAll(ctx context.Context, t Teacher, words [][]int) ([][]int, error) {
	if bt, ok := t.(BatchTeacher); ok && len(words) > 1 {
		return bt.OutputQueryBatch(ctx, words)
	}
	out := make([][]int, len(words))
	for i, w := range words {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o, err := t.OutputQuery(ctx, w)
		if err != nil {
			return nil, err
		}
		out[i] = o
	}
	return out, nil
}

// PoolTeacher wraps a plain Teacher with a fixed worker pool and a
// lock-striped query cache, turning it into a BatchTeacher. The cache is
// shared across all learning rounds (and across concurrent callers): a word
// that has been answered once is never asked again. It is a synchronized
// qstore instance sharded by first input symbol, so concurrent callers
// touching different subtrees never contend on one lock.
//
// When Workers > 1 the wrapped teacher must be safe for concurrent
// OutputQuery calls — polca.Oracle over a forking (software-simulated) prober
// and cachequery.ParallelProber-backed oracles are; a bare hardware prober is
// not, so wrap the replicated prober, not the raw one.
type PoolTeacher struct {
	inner   Teacher
	workers int

	// cache is exact-match by design: CachedWords must keep counting words
	// the wrapped teacher actually answered (prefix sharing happens
	// upstream, in the learner's own memo). Answers live at terminal nodes.
	cache  *qstore.Store[int, []int]
	stored atomic.Int64
}

// NewPoolTeacher builds a worker-pool adapter over t. workers <= 0 selects
// runtime.GOMAXPROCS(0).
func NewPoolTeacher(t Teacher, workers int) *PoolTeacher {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &PoolTeacher{inner: t, workers: workers,
		cache: qstore.New[int, []int](qstore.Options{
			Degree:  t.NumInputs(),
			Stripes: t.NumInputs(),
			Sync:    true,
		})}
}

// NumInputs implements Teacher.
func (p *PoolTeacher) NumInputs() int { return p.inner.NumInputs() }

// Workers returns the pool width.
func (p *PoolTeacher) Workers() int { return p.workers }

// BatchHint implements BatchHinter: the pool width, or the inner teacher's
// own hint when it is the larger of the two.
func (p *PoolTeacher) BatchHint() int {
	h := p.workers
	if bh, ok := p.inner.(BatchHinter); ok && bh.BatchHint() > h {
		h = bh.BatchHint()
	}
	return h
}

// CachedWords returns the number of distinct words answered so far.
func (p *PoolTeacher) CachedWords() int { return int(p.stored.Load()) }

// store records an answer.
func (p *PoolTeacher) store(w, out []int) {
	if p.cache.Set(w, out) {
		p.stored.Add(1)
	}
}

// OutputQuery implements Teacher, consulting the shared cache first.
func (p *PoolTeacher) OutputQuery(ctx context.Context, word []int) ([]int, error) {
	if !p.cache.InRange(word) {
		// An out-of-alphabet word has no trie path; let the wrapped
		// teacher answer (or reject) it directly, uncached.
		return p.inner.OutputQuery(ctx, word)
	}
	if out, ok := p.cache.Get(word); ok {
		return out, nil
	}
	out, err := p.inner.OutputQuery(ctx, word)
	if err != nil {
		return nil, err
	}
	p.store(word, out)
	return out, nil
}

// OutputQueryBatch implements BatchTeacher: cached words are answered
// immediately, the remaining distinct words are fanned out across the worker
// pool, and every fresh answer lands in the shared cache.
func (p *PoolTeacher) OutputQueryBatch(ctx context.Context, words [][]int) ([][]int, error) {
	out := make([][]int, len(words))
	// refs packs each word's (shard, node) pair: shard-local node ids are
	// stable, so a ref resolves the same cache slot before and after the
	// dispatch without re-walking the word.
	refs := make([]int64, len(words))

	// Resolve cache hits and dedupe the misses by cache node, keeping
	// first-occurrence order so the dispatch (and any teacher-side error)
	// is deterministic for a deterministic inner teacher.
	var pending []int // indices into words of the first occurrence of each miss
	firstAt := make(map[int64]int)
	for i, w := range words {
		if !p.cache.InRange(w) {
			// No trie path for an out-of-alphabet word: dispatch it to the
			// wrapped teacher uncached (it answers or rejects it itself).
			refs[i] = -1
			pending = append(pending, i)
			continue
		}
		sh := p.cache.Acquire(w)
		n := sh.Ensure(w)
		known := sh.Has(n)
		sh.Release()
		refs[i] = int64(sh.Index())<<32 | int64(n)
		if _, seen := firstAt[refs[i]]; seen {
			continue
		}
		firstAt[refs[i]] = i
		if !known {
			pending = append(pending, i)
		}
	}

	if len(pending) > 0 {
		errs := make([]error, len(pending))
		fresh := make([][]int, len(pending))
		workers := p.workers
		if workers > len(pending) {
			workers = len(pending)
		}
		if bi, ok := p.inner.(BatchTeacher); ok {
			// The inner teacher manages its own concurrency; hand it the
			// whole miss set in one call.
			ws := make([][]int, len(pending))
			for j, i := range pending {
				ws[j] = words[i]
			}
			ans, err := bi.OutputQueryBatch(ctx, ws)
			if err != nil {
				return nil, err
			}
			copy(fresh, ans)
		} else if workers <= 1 {
			for j, i := range pending {
				fresh[j], errs[j] = p.inner.OutputQuery(ctx, words[i])
			}
		} else {
			var wg sync.WaitGroup
			next := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := range next {
						// On cancel, drain the remaining indices without
						// querying so the feeder never blocks and every
						// worker exits through the channel close.
						if err := ctx.Err(); err != nil {
							errs[j] = err
							continue
						}
						fresh[j], errs[j] = p.inner.OutputQuery(ctx, words[pending[j]])
					}
				}()
			}
			for j := range pending {
				next <- j
			}
			close(next)
			wg.Wait()
		}
		for j, i := range pending {
			if errs[j] != nil {
				return nil, errs[j]
			}
			if len(fresh[j]) != len(words[i]) {
				return nil, fmt.Errorf("learn: teacher returned %d outputs for %d inputs", len(fresh[j]), len(words[i]))
			}
			if refs[i] < 0 {
				out[i] = fresh[j]
				continue
			}
			sh := p.cache.Acquire(words[i])
			if sh.Put(int32(refs[i]&0x7fffffff), fresh[j]) {
				p.stored.Add(1)
			}
			sh.Release()
		}
	}

	for i := range words {
		if refs[i] < 0 {
			continue // out-of-alphabet word, answered above
		}
		sh := p.cache.Acquire(words[i])
		n := int32(refs[i] & 0x7fffffff)
		var ans []int
		if sh.Has(n) {
			ans = *sh.Val(n)
		}
		sh.Release()
		if ans == nil {
			return nil, fmt.Errorf("learn: batch answer for %v missing", words[i])
		}
		out[i] = ans
	}
	return out, nil
}

var _ BatchTeacher = (*PoolTeacher)(nil)
