package learn

// The discrimination-tree learner (AlgoTree). Where the observation table
// asks every (prefix, suffix) cell — |P|·(1+|Σ|)·|S| output queries, with S
// growing by *all* suffixes of every counterexample (Maler–Pnueli) — the
// discrimination tree stores only the experiments that actually separate
// states, and a state pays only for the experiments on its own root-to-leaf
// path. Counterexamples contribute a single new experiment, located by
// Rivest–Schapire binary search over the counterexample word. The net effect
// is asymptotically (and on the cache policies of this repository,
// measurably) fewer membership queries for the same learned machine.
//
// Tree layout. Leaves are hypothesis states, identified by an access word;
// inner nodes carry a non-empty distinguishing suffix v and edges keyed by
// the *interned* output word a state produces on v (for DFAs the tree is
// binary — accept/reject; Mealy outputs make it n-ary, so edges intern the
// suffix-output word to a dense int32 id instead of branching on a bit).
// Sifting a word u walks from the root, querying u·v at every inner node and
// following the edge labeled with the observed suffix output; the leaf
// reached is u's state. Both the sift queries and the Rivest–Schapire
// queries go through the shared engine, so the word-trie memo answers any
// query that is a prefix of an already-answered word and repeated sifts of
// the same word are free.

import (
	"fmt"

	"repro/internal/intern"
	"repro/internal/mealy"
	"repro/internal/qstore"
)

// treeLearner holds the discrimination-tree state.
type treeLearner struct {
	engine

	ids *intern.Interner // suffix-output words -> dense edge labels

	nodes  []dtNode // node 0 is the root
	access [][]int  // access word per hypothesis state
	leafOf []int32  // leaf node per hypothesis state
}

// dtNode is one discrimination-tree node. A leaf (state >= 0) stands for the
// hypothesis state whose access word sifts to it; an inner node (state == -1)
// carries the distinguishing suffix and its outcome edges.
type dtNode struct {
	state    int             // leaf: dense state id; inner: -1
	suffix   []int           // inner: non-empty distinguishing suffix
	children map[int32]int32 // inner: child node per interned suffix-output word
}

// newState registers a fresh hypothesis state with the given access word and
// returns its leaf node id, enforcing the state budget.
func (l *treeLearner) newState(w []int) (int32, error) {
	if l.opt.MaxStates > 0 && len(l.access) >= l.opt.MaxStates {
		return -1, fmt.Errorf("%w: more than %d states", ErrStateBudget, l.opt.MaxStates)
	}
	leaf := int32(len(l.nodes))
	l.nodes = append(l.nodes, dtNode{state: len(l.access)})
	l.access = append(l.access, append([]int(nil), w...))
	l.leafOf = append(l.leafOf, leaf)
	return leaf, nil
}

// sift walks w down the tree and returns its state, creating a fresh leaf —
// and hence a fresh hypothesis state — when an inner node has no edge for
// the observed suffix output (the closedness analog of the table learner).
func (l *treeLearner) sift(w []int) (int, error) {
	n := int32(0)
	for l.nodes[n].state < 0 {
		out, err := l.cell(w, l.nodes[n].suffix)
		if err != nil {
			return -1, err
		}
		id := l.ids.Word(out)
		child, ok := l.nodes[n].children[id]
		if !ok {
			leaf, err := l.newState(w)
			if err != nil {
				return -1, err
			}
			l.nodes[n].children[id] = leaf
			return l.nodes[leaf].state, nil
		}
		n = child
	}
	return l.nodes[n].state, nil
}

// build constructs the hypothesis by sifting every transition word u·a.
// States discovered mid-pass (sift landing on a missing edge) are appended
// and processed in the same pass, so the returned machine is closed. Every
// access word sifts to its own leaf — the edges on its path record the
// teacher's actual outputs for that very word — so state q is reachable via
// access[q] and the hypothesis transitions δ(q, a) = sift(access[q]·a) are
// well defined.
func (l *treeLearner) build() (*mealy.Machine, error) {
	var next, out [][]int
	for q := 0; q < len(l.access); q++ {
		u := l.access[q]
		if l.batch > 1 {
			// Warm the memo for the whole row in one batched dispatch: the
			// transition words themselves plus their first sift experiment
			// (the root suffix — every sift starts there). Deeper sift
			// queries are data-dependent and stay lazy.
			var words [][]int
			for a := 0; a < l.numIn; a++ {
				ua := qstore.Concat(u, []int{a})
				if root := &l.nodes[0]; root.state < 0 {
					words = append(words, qstore.Concat(ua, root.suffix))
				} else {
					words = append(words, ua)
				}
			}
			if err := l.prefetch(words); err != nil {
				return nil, err
			}
		}
		nrow := make([]int, l.numIn)
		orow := make([]int, l.numIn)
		for a := 0; a < l.numIn; a++ {
			ua := qstore.Concat(u, []int{a})
			tgt, err := l.sift(ua)
			if err != nil {
				return nil, err
			}
			nrow[a] = tgt
			// Read the transition output after sifting: the sift queries
			// extend u·a, so the trie memo answers it without a teacher
			// round trip.
			c, err := l.cell(u, []int{a})
			if err != nil {
				return nil, err
			}
			orow[a] = c[0]
		}
		next = append(next, nrow)
		out = append(out, orow)
	}
	m := mealy.New(len(l.access), l.numIn)
	m.Init = 0
	for q := range next {
		copy(m.Next[q], next[q])
		copy(m.Out[q], out[q])
	}
	return m, nil
}

// refine processes one counterexample by Rivest–Schapire decomposition: a
// binary search over the counterexample w finds an index i such that
// replacing the prefix w[:i] by the access word of the hypothesis state it
// reaches still disagrees with the teacher, while replacing w[:i+1] agrees.
// Writing q = δ_H(w[:i]), a = w[i] and v = w[i+1:], that boundary proves the
// suffix v distinguishes the word access[q]·a from access[δ_H(q, a)] — so
// the leaf of δ_H(q, a) is split on the new experiment v. Each
// counterexample costs O(log |w|) output queries and adds exactly one
// experiment, against Maler–Pnueli's |w| new table columns.
func (l *treeLearner) refine(hyp *mealy.Machine, w []int) error {
	// agree reports whether the teacher's outputs on access(δ_H(w[:i]))·w[i:]
	// match the hypothesis on the w[i:] suffix.
	agree := func(i int) (bool, error) {
		q := hyp.StateAfter(w[:i])
		u := l.access[q]
		got, err := l.query(qstore.Concat(u, w[i:]))
		if err != nil {
			return false, err
		}
		tail := got[len(u):]
		want := hyp.RunFrom(q, w[i:])
		for j := range want {
			if tail[j] != want[j] {
				return false, nil
			}
		}
		return true, nil
	}

	// Invariant: disagree at lo, agree at hi. lo = 0 disagrees because w is
	// a counterexample (access of the initial state is ε); hi = len(w)
	// agrees vacuously (empty suffix). The boundary always sits at
	// i <= len(w)-2: at i = len(w)-1 the only compared symbol is the
	// transition output λ(q, a), which build defined from the very same
	// memoized cell — so the discriminator v = w[i+1:] is never empty.
	lo, hi := 0, len(w)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		ok, err := agree(mid)
		if err != nil {
			return err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	i := lo
	if i+1 >= len(w) {
		return fmt.Errorf("learn: counterexample %v decomposed to an empty discriminator", w)
	}
	q := hyp.StateAfter(w[:i])
	a := w[i]
	v := w[i+1:]
	return l.split(hyp.Next[q][a], qstore.Concat(l.access[q], []int{a}), v)
}

// split replaces the leaf of state with an inner node on discriminator v,
// separating the state's old access word from the new word w (which becomes
// a fresh state). Transitions that used to sift onto the old leaf are
// re-sifted through the new inner node on the next build pass — re-sifting
// is almost entirely memo hits, only the new experiment v costs queries.
func (l *treeLearner) split(state int, w, v []int) error {
	oldOut, err := l.cell(l.access[state], v)
	if err != nil {
		return err
	}
	newOut, err := l.cell(w, v)
	if err != nil {
		return err
	}
	oldID, newID := l.ids.Word(oldOut), l.ids.Word(newOut)
	if oldID == newID {
		return fmt.Errorf("learn: discriminator %v does not split %v from %v (nondeterministic teacher?)", v, l.access[state], w)
	}
	n := l.leafOf[state]
	oldLeaf := int32(len(l.nodes))
	l.nodes = append(l.nodes, dtNode{state: state})
	l.leafOf[state] = oldLeaf
	newLeaf, err := l.newState(w)
	if err != nil {
		return err
	}
	l.nodes[n] = dtNode{
		state:    -1,
		suffix:   append([]int(nil), v...),
		children: map[int32]int32{oldID: oldLeaf, newID: newLeaf},
	}
	return nil
}

// run is the discrimination-tree main loop: build a closed hypothesis, find
// a counterexample, refine, repeat. The tree starts as a single leaf — the
// empty access word — so the first hypothesis has one state and the first
// counterexample plants the first real experiment.
//
// Each conformance counterexample is exploited to exhaustion: after a split
// the same word often still disagrees with the rebuilt hypothesis and funds
// the next split. Re-checking it is answered from the memo, so the expensive
// suite — its words are mostly fresh — is amortized over several splits
// instead of exactly one. The re-check examines only the word itself, so
// batched and serial runs stay on bit-identical trajectories (a mined memo
// walk would not: speculative prefetch leaves words in a batched memo that a
// serial run never asks).
func (l *treeLearner) run() (*mealy.Machine, error) {
	l.nodes = []dtNode{{state: 0}}
	l.access = [][]int{{}}
	l.leafOf = []int32{0}
	for {
		l.stats.Rounds++
		hyp, err := l.build()
		if err != nil {
			return nil, err
		}
		ce, err := l.findCounterexample(hyp)
		if err != nil {
			return nil, err
		}
		if ce == nil {
			return hyp, nil
		}
		for ce != nil {
			l.stats.Counterexample++
			if err := l.refine(hyp, ce); err != nil {
				return nil, err
			}
			if hyp, err = l.build(); err != nil {
				return nil, err
			}
			if ce, err = l.checkWord(hyp, ce); err != nil {
				return nil, err
			}
		}
	}
}
