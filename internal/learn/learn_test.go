package learn

import (
	"context"
	"errors"
	"testing"

	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
	"repro/internal/qstore"
)

// learnAndCheck learns from a machine teacher and verifies exact trace
// equivalence plus minimality of the result.
func learnAndCheck(t *testing.T, truth *mealy.Machine, opt Options) *Result {
	t.Helper()
	res, err := Learn(context.Background(), MachineTeacher{M: truth}, opt)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if eq, ce := res.Machine.Equivalent(truth); !eq {
		t.Fatalf("learned machine differs from truth, ce=%v", ce)
	}
	min := truth.Minimize()
	if res.Machine.NumStates != min.NumStates {
		t.Errorf("learned %d states, minimal is %d", res.Machine.NumStates, min.NumStates)
	}
	return res
}

func TestLearnFromMachines(t *testing.T) {
	cases := []struct {
		name  string
		assoc int
	}{
		{"FIFO", 4}, {"FIFO", 8},
		{"LRU", 2}, {"LRU", 4},
		{"PLRU", 4},
		{"MRU", 4}, {"MRU", 6},
		{"LIP", 4},
		{"SRRIP-HP", 2},
		{"SRRIP-FP", 2},
		{"New1", 2},
		{"New2", 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			truth, err := mealy.FromPolicy(policy.MustNew(c.name, c.assoc), 0)
			if err != nil {
				t.Fatal(err)
			}
			res := learnAndCheck(t, truth, Options{Depth: 1})
			if res.Stats.OutputQueries == 0 || res.Stats.Rounds == 0 {
				t.Errorf("implausible stats %+v", res.Stats)
			}
		})
	}
}

// TestLearnViaPolca is the §6 pipeline in miniature: learner -> Polca ->
// simulated cache, checked against the ground-truth automaton.
func TestLearnViaPolca(t *testing.T) {
	cases := []struct {
		name   string
		assoc  int
		states int
	}{
		{"FIFO", 8, 8},
		{"LRU", 4, 24},
		{"PLRU", 4, 8},
		{"MRU", 4, 14},
		{"LIP", 4, 24},
		{"SRRIP-HP", 2, 12},
		{"SRRIP-FP", 2, 16},
		{"New1", 4, 160},
		{"New2", 4, 175},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			oracle := polca.NewOracle(polca.NewSimProber(policy.MustNew(c.name, c.assoc)))
			res, err := Learn(context.Background(), oracle, Options{Depth: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Machine.NumStates != c.states {
				t.Errorf("learned %d states, paper reports %d", res.Machine.NumStates, c.states)
			}
			truth, _ := mealy.FromPolicy(policy.MustNew(c.name, c.assoc), 0)
			if eq, ce := res.Machine.Equivalent(truth); !eq {
				t.Errorf("learned machine wrong, ce=%v", ce)
			}
		})
	}
}

func TestWpAndWSuitesLearnTheSameMachine(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("MRU", 4), 0)
	wp, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, Suite: SuiteWp})
	if err != nil {
		t.Fatal(err)
	}
	w, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, Suite: SuiteW})
	if err != nil {
		t.Fatal(err)
	}
	if eq, _ := wp.Machine.Equivalent(w.Machine); !eq {
		t.Fatal("Wp and W learned different machines")
	}
	if eq, _ := wp.Machine.Equivalent(truth); !eq {
		t.Fatal("Wp-learned machine differs from truth")
	}
	// The Wp suite must be meaningfully smaller — that is its point.
	if wp.Stats.TestWords >= w.Stats.TestWords {
		t.Errorf("Wp suite (%d words) not smaller than W suite (%d words)",
			wp.Stats.TestWords, w.Stats.TestWords)
	}
}

func TestIdentificationSetsSeparateStates(t *testing.T) {
	hyp, _ := mealy.FromPolicy(policy.MustNew("PLRU", 4), 0)
	w := hyp.CharacterizingSet()
	ident := identificationSets(hyp, w)
	for s := 0; s < hyp.NumStates; s++ {
		if len(ident[s]) == 0 && hyp.NumStates > 1 {
			t.Fatalf("state %d has an empty identification set", s)
		}
		for t2 := 0; t2 < hyp.NumStates; t2++ {
			if t2 == s {
				continue
			}
			distinguished := false
			for _, word := range ident[s] {
				a, b := hyp.RunFrom(s, word), hyp.RunFrom(t2, word)
				for i := range a {
					if a[i] != b[i] {
						distinguished = true
					}
				}
			}
			if !distinguished {
				t.Fatalf("identification set of state %d does not separate it from %d", s, t2)
			}
		}
	}
}

func TestLearnWithRandomWalkOracle(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("MRU", 4), 0)
	res, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{RandomWalk: true, RandomWalkSteps: 200000, RandomWalkSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := res.Machine.Equivalent(truth); !eq {
		t.Errorf("random-walk learning failed, ce=%v", ce)
	}
}

func TestStateBudgetAborts(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("LRU", 4), 0)
	_, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, MaxStates: 5})
	if !errors.Is(err, ErrStateBudget) {
		t.Errorf("err = %v, want ErrStateBudget", err)
	}
}

func TestQueryBudgetAborts(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("LRU", 4), 0)
	if _, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1, MaxQueries: 10}); err == nil {
		t.Error("query budget not enforced")
	}
}

func TestNondeterministicTeacherPropagates(t *testing.T) {
	// A randomly evicting cache must abort learning: either Polca's
	// determinism audit fires, or the hypothesis exceeds any sane state
	// budget (the paper's symptom of a wrong reset sequence, §7.1).
	oracle := polca.NewOracle(polca.NewSimProber(policy.NewRandom(4, 3)),
		polca.WithDeterminismChecks(8))
	_, err := Learn(context.Background(), oracle, Options{Depth: 1, MaxStates: 3000})
	if err == nil {
		t.Fatal("learning a nondeterministic cache succeeded")
	}
	if !errors.Is(err, polca.ErrNondeterministic) && !errors.Is(err, ErrStateBudget) {
		t.Errorf("err = %v, want ErrNondeterministic or ErrStateBudget", err)
	}
}

func TestDepthZeroStillLearnsSimplePolicies(t *testing.T) {
	// With k=0 the suite is only (|H|)-complete, but FIFO is easily
	// distinguished and still converges to the right machine.
	truth, _ := mealy.FromPolicy(policy.MustNew("FIFO", 4), 0)
	res, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 0})
	if err != nil {
		t.Fatal(err)
	}
	if eq, _ := res.Machine.Equivalent(truth); !eq {
		t.Error("depth-0 learning failed on FIFO")
	}
}

func TestLearnRejectsBadOptions(t *testing.T) {
	truth, _ := mealy.FromPolicy(policy.MustNew("FIFO", 2), 0)
	if _, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: -1}); err == nil {
		t.Error("negative depth accepted")
	}
}

func TestEnumerateWords(t *testing.T) {
	words := qstore.Enumerate(2, 2)
	// ε, 0, 1, 00, 01, 10, 11
	if len(words) != 7 {
		t.Fatalf("qstore.Enumerate(2,2) returned %d words", len(words))
	}
	if len(words[0]) != 0 {
		t.Error("first word not ε")
	}
}

func TestLearnTrivialSingleStatePolicy(t *testing.T) {
	// A direct-mapped set (associativity 1) has a single control state:
	// every Evct frees line 0. The learner must handle the degenerate
	// table gracefully.
	truth, err := mealy.FromPolicy(policy.MustNew("FIFO", 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Learn(context.Background(), MachineTeacher{M: truth}, Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.NumStates != 1 {
		t.Errorf("learned %d states, want 1", res.Machine.NumStates)
	}
	if eq, _ := res.Machine.Equivalent(truth); !eq {
		t.Error("trivial machine learned wrongly")
	}
}
