package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mealy"
	"repro/internal/policy"
	"repro/internal/synth"
)

// Table5Policies are the nine policies the paper synthesizes explanations
// for, at associativity 4 (Table 5).
func Table5Policies() []string {
	return []string{"FIFO", "LRU", "PLRU", "LIP", "MRU", "SRRIP-HP", "SRRIP-FP", "New1", "New2"}
}

// Table5Row is one synthesis outcome.
type Table5Row struct {
	Policy     string
	States     int
	Template   string
	Time       time.Duration
	Candidates int
	Program    *synth.Program // nil when synthesis failed
	Err        string
}

// RunTable5Row synthesizes an explanation for one policy at associativity 4.
func RunTable5Row(name string) Table5Row {
	row := Table5Row{Policy: name}
	pol, err := policy.New(name, 4)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	m, err := mealy.FromPolicy(pol, 0)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.States = m.NumStates
	res, err := synth.Synthesize(m, synth.Options{Seed: 1})
	if err != nil {
		if errors.Is(err, synth.ErrNoProgram) {
			row.Template = "—"
			row.Err = "not explainable by the template (as in the paper)"
			if res != nil {
				row.Candidates = res.Candidates
				row.Time = res.Duration
			}
		} else {
			row.Err = err.Error()
		}
		return row
	}
	row.Template = res.Template.String()
	row.Time = res.Duration
	row.Candidates = res.Candidates
	row.Program = res.Program
	return row
}

// RunTable5 synthesizes the full table.
func RunTable5() []Table5Row {
	rows := make([]Table5Row, 0, len(Table5Policies()))
	for _, name := range Table5Policies() {
		rows = append(rows, RunTable5Row(name))
	}
	return rows
}

// Table5Table renders rows in the layout of Table 5.
func Table5Table(rows []Table5Row) *Table {
	t := &Table{
		Title:  "Table 5: synthesizing explanations for policies (associativity 4)",
		Header: []string{"Policy", "States", "Template", "Execution Time", "Candidates"},
	}
	for _, r := range rows {
		tpl := r.Template
		if r.Program == nil {
			tpl = "—"
		}
		t.Append(r.Policy, fmt.Sprint(r.States), tpl, fmtDuration(r.Time), fmt.Sprint(r.Candidates))
	}
	return t
}
