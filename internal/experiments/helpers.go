package experiments

import (
	"repro/internal/polca"
	"repro/internal/synth"
)

// polcaOracle builds the standard oracle used by the figure and table
// harness: determinism re-checks every 128 queries, memoization on.
func polcaOracle(p polca.Prober) *polca.Oracle {
	return polca.NewOracle(p, polca.WithDeterminismChecks(128))
}

// synthOptions is the fixed synthesis configuration of the harness.
func synthOptions() synth.Options { return synth.Options{Seed: 1} }
