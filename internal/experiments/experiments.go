// Package experiments regenerates every table and figure of the paper's
// evaluation (§6 learning from simulators, §7 learning from hardware, §8
// synthesis, §7.2 costs, Appendix B adaptive-set analysis) against the
// simulated CPUs. cmd/experiments and the root benchmark harness are thin
// clients.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table renders rows of tab-separated cells with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Append adds a row.
func (t *Table) Append(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with padded columns.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len([]rune(c)) > widths[i] {
				widths[i] = len([]rune(c))
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	pad := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = c + strings.Repeat(" ", widths[i]-len([]rune(c)))
			} else {
				parts[i] = c
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintln(w, pad(t.Header))
	fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*(len(widths)-1)))
	for _, row := range t.Rows {
		fmt.Fprintln(w, pad(row))
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// fmtDuration renders a duration in the paper's "h m s" style.
func fmtDuration(d time.Duration) string {
	d = d.Round(10 * time.Millisecond)
	h := d / time.Hour
	m := (d % time.Hour) / time.Minute
	s := d % time.Minute
	switch {
	case h > 0:
		return fmt.Sprintf("%dh %dm %.0fs", h, m, s.Seconds())
	case m > 0:
		return fmt.Sprintf("%dm %.2fs", m, s.Seconds())
	default:
		return fmt.Sprintf("%.3fs", s.Seconds())
	}
}
