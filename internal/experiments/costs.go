package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cachequery"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/polca"
)

// CostsResult captures the §7.2 cost measurements: the overhead of learning
// through the hardware interface (with a warm query cache, isolating the
// pipeline cost from the measurement cost), and the per-level execution
// time of a single MBL query.
type CostsResult struct {
	Policy       string
	Assoc        int
	SimTime      time.Duration // learning from the software-simulated cache
	ColdTime     time.Duration // learning through CacheQuery, cold cache
	WarmTime     time.Duration // relearning with every query cached
	WarmOverhead float64       // WarmTime / SimTime — the paper's 1500x analog
	MBLQueries   int           // queries issued while learning from hardware
	PerQueryCost map[string]time.Duration
	PerQueryReps int
}

// RunCosts reproduces the two measurements of §7.2 on the Skylake model:
// (1) learning PLRU-8 (the Skylake L1 policy) from a simulator vs. through
// a fully warmed CacheQuery interface, and (2) the average execution time
// of the query `@ M _?` per cache level.
func RunCosts(ctx context.Context, queryReps int) (*CostsResult, error) {
	const assoc = 8 // the Skylake L1: PLRU with 8 ways, as in the paper
	res := &CostsResult{Policy: "PLRU", Assoc: assoc, PerQueryReps: queryReps,
		PerQueryCost: make(map[string]time.Duration)}

	// (1a) Software-simulated cache.
	start := time.Now()
	if _, err := core.LearnSimulated(ctx, "PLRU", assoc, learn.Options{Depth: 1}); err != nil {
		return nil, err
	}
	res.SimTime = time.Since(start)

	// (1b) Through CacheQuery on the Skylake L1 (PLRU). A first run fills
	// the query cache; a second run answers every MBL query from it,
	// isolating the pipeline overhead as the paper's LevelDB experiment
	// does.
	cpu := hw.NewCPU(hw.Skylake(), 21)
	f := cachequery.NewFrontend(cpu, cachequery.DefaultBackendOptions())
	tgt := cachequery.Target{Level: hw.L1, Set: 0}
	learnOnce := func() (time.Duration, int, error) {
		prober, err := cachequery.NewProber(f, tgt, cachequery.FlushRefill(assoc))
		if err != nil {
			return 0, 0, err
		}
		oracle := polca.NewOracle(prober)
		t0 := time.Now()
		if _, err := learn.Learn(ctx, oracle, learn.Options{Depth: 1}); err != nil {
			return 0, 0, err
		}
		return time.Since(t0), f.Stats().Executed, nil
	}
	cold, queries, err := learnOnce()
	if err != nil {
		return nil, err
	}
	res.ColdTime = cold
	res.MBLQueries = queries
	warm, _, err := learnOnce()
	if err != nil {
		return nil, err
	}
	res.WarmTime = warm
	if res.SimTime > 0 {
		res.WarmOverhead = float64(res.WarmTime) / float64(res.SimTime)
	}

	// (2) Per-level cost of the single query `@ M _?`, averaged over
	// queryReps executions with the result cache disabled.
	for _, lvl := range []hw.Level{hw.L1, hw.L2, hw.L3} {
		cpu := hw.NewCPU(hw.Skylake(), 22)
		f := cachequery.NewFrontend(cpu, cachequery.DefaultBackendOptions())
		f.SetResultCache(false)
		tgt := cachequery.Target{Level: lvl, Set: 0}
		// Provision outside the timed region, like the paper's persistent
		// kernel module.
		if _, err := f.Backend(tgt); err != nil {
			return nil, err
		}
		t0 := time.Now()
		for i := 0; i < queryReps; i++ {
			if _, err := f.Query(ctx, tgt, "@ M _?"); err != nil {
				return nil, err
			}
		}
		res.PerQueryCost[lvl.String()] = time.Since(t0) / time.Duration(queryReps)
	}
	return res, nil
}

// CostsTable renders the measurements.
func CostsTable(r *CostsResult) *Table {
	t := &Table{
		Title:  "§7.2: cost of learning from hardware",
		Header: []string{"Measurement", "Value"},
	}
	t.Append(fmt.Sprintf("Learn %s-%d from software simulator", r.Policy, r.Assoc), fmtDuration(r.SimTime))
	t.Append("Learn via CacheQuery (cold query cache)", fmtDuration(r.ColdTime))
	t.Append("Learn via CacheQuery (warm query cache)", fmtDuration(r.WarmTime))
	t.Append("Interface overhead (warm / simulator)", fmt.Sprintf("%.0fx", r.WarmOverhead))
	t.Append("MBL queries issued", fmt.Sprint(r.MBLQueries))
	for _, lvl := range []string{"L1", "L2", "L3"} {
		t.Append(fmt.Sprintf("Query `@ M _?` on %s (avg of %d)", lvl, r.PerQueryReps),
			fmtDuration(r.PerQueryCost[lvl]))
	}
	return t
}
