package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/mealy"
	"repro/internal/permpol"
	"repro/internal/polca"
	"repro/internal/policy"
)

// BaselineRow compares, for one policy, the three inference approaches the
// paper discusses: the permutation-policy baseline of Abel and Reineke [1],
// nanoBench-style fingerprinting [3,4], and the paper's automata learning
// (whose per-policy results live in Table 2).
type BaselineRow struct {
	Policy      string
	States      int
	PermOK      bool // the [1]-style baseline infers the policy
	PermTime    time.Duration
	FingerMatch string // fingerprinting verdict against the zoo pool
	FingerTime  time.Duration
}

// RunBaselines evaluates both baselines over the policy zoo at the given
// associativity. The paper's §6 claims are the expected shape: the
// permutation baseline covers exactly FIFO, LRU and PLRU, while
// fingerprinting identifies anything already in its pool but offers no
// guarantees outside it.
func RunBaselines(ctx context.Context, assoc int) ([]BaselineRow, error) {
	names := []string{"FIFO", "LRU", "PLRU", "MRU", "LIP", "SRRIP-HP", "SRRIP-FP", "New1", "New2"}
	var rows []BaselineRow
	for _, name := range names {
		pol, err := policy.New(name, assoc)
		if err != nil {
			continue // associativity constraint
		}
		truth, err := mealy.FromPolicy(pol, 0)
		if err != nil {
			return nil, err
		}
		row := BaselineRow{Policy: pol.Name(), States: truth.NumStates}

		start := time.Now()
		_, err = permpol.InferAndValidate(ctx, polca.NewSimProber(pol.Clone()), truth)
		row.PermTime = time.Since(start)
		switch {
		case err == nil:
			row.PermOK = true
		case errors.Is(err, permpol.ErrNotPermutation):
			row.PermOK = false
		default:
			return nil, err
		}

		start = time.Now()
		fp, err := fingerprint.Identify(ctx, polca.NewSimProber(pol.Clone()), fingerprint.DefaultPool(), fingerprint.Options{Seed: 42})
		row.FingerTime = time.Since(start)
		if err != nil {
			return nil, err
		}
		row.FingerMatch = strings.Join(fp.Matches, ",")
		rows = append(rows, row)
	}
	return rows, nil
}

// BaselinesTable renders the comparison.
func BaselinesTable(rows []BaselineRow) *Table {
	t := &Table{
		Title:  "§6 baselines: permutation inference [1] and fingerprinting [3,4] vs. the policy zoo",
		Header: []string{"Policy", "States", "Permutation [1]", "Time", "Fingerprint [3,4]", "Time"},
	}
	for _, r := range rows {
		perm := "out of scope"
		if r.PermOK {
			perm = "inferred"
		}
		t.Append(r.Policy, fmt.Sprint(r.States), perm, fmtDuration(r.PermTime), r.FingerMatch, fmtDuration(r.FingerTime))
	}
	return t
}
