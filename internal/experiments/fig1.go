package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cachequery"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/policy"
)

// ToyCPU is the 2-way toy processor of Figure 1: a single-level view onto a
// small L1 whose sets hold two lines under an LRU-like policy.
func ToyCPU() hw.CPUConfig {
	return hw.CPUConfig{
		Name:       "toy (Figure 1)",
		Arch:       "Toy",
		L1:         hw.LevelConfig{Assoc: 2, Slices: 1, SetsPerSlice: 16, Policy: "LRU", HitLatency: 4, LatencySigma: 0.5},
		L2:         hw.LevelConfig{Assoc: 4, Slices: 1, SetsPerSlice: 64, Policy: "LRU", HitLatency: 12, LatencySigma: 1},
		L3:         hw.LevelConfig{Assoc: 8, Slices: 2, SetsPerSlice: 256, Policy: "LRU", HitLatency: 40, LatencySigma: 3},
		MemLatency: 190, MemSigma: 15,
	}
}

// RunFigure1 reproduces the end-to-end toy pipeline of Figure 1 and returns
// a textual report showing all three abstraction layers: raw CacheQuery
// latencies (1c), Polca's block-level translation (1b), and the learned
// 2-state automaton (1a).
func RunFigure1(ctx context.Context) (string, error) {
	var sb strings.Builder
	cpu := hw.NewCPU(ToyCPU(), 7)
	f := cachequery.NewFrontend(cpu, cachequery.DefaultBackendOptions())
	tgt := cachequery.Target{Level: hw.L1, Set: 3}

	// Layer 1c: CacheQuery turns latencies into hits and misses.
	sb.WriteString("── CacheQuery (Figure 1c): blocks -> addresses -> latencies -> hits/misses ──\n")
	for _, src := range []string{"A B C A?", "A B C B?"} {
		results, err := f.Query(ctx, tgt, src)
		if err != nil {
			return "", err
		}
		for _, r := range results {
			fmt.Fprintf(&sb, "  %-12s => %s\n", r.Query, r.Pattern())
		}
	}
	be, _ := f.Backend(tgt)
	fmt.Fprintf(&sb, "  (hit/miss threshold calibrated at %.1f cycles)\n\n", be.Threshold())

	// Layer 1b: Polca translates policy inputs into block sequences.
	sb.WriteString("── Polca (Figure 1b): policy inputs -> block sequences ──\n")
	prober, err := cachequery.NewProber(f, tgt, cachequery.FlushRefill(2))
	if err != nil {
		return "", err
	}
	oracle := polcaOracle(prober)
	word := []int{2, 0, 2} // Evct Ln(0) Evct
	outs, err := oracle.OutputQuery(ctx, word)
	if err != nil {
		return "", err
	}
	for i, in := range word {
		fmt.Fprintf(&sb, "  %-6s => %s\n", policy.InputString(2, in), policy.OutputString(outs[i]))
	}
	sb.WriteString("\n")

	// Layer 1a: the learner assembles the automaton.
	sb.WriteString("── LearnLib-style learner (Figure 1a): the learned policy ──\n")
	res, err := learn.Learn(ctx, oracle, learn.Options{Depth: 1})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&sb, "  learned %d control states from %d output queries\n",
		res.Machine.NumStates, res.Stats.OutputQueries)
	truth, err := mealy.FromPolicy(policy.MustNew("LRU", 2), 0)
	if err != nil {
		return "", err
	}
	if eq, _ := res.Machine.Equivalent(truth); eq {
		sb.WriteString("  the automaton is trace-equivalent to LRU (Example 2.2)\n\n")
	} else {
		sb.WriteString("  WARNING: the automaton differs from LRU\n\n")
	}
	sb.WriteString(res.Machine.DOT("figure1"))

	// Bonus: the §5 explanation of the learned toy policy.
	if expl, err := core.Explain(res.Machine, synthOptions()); err == nil {
		sb.WriteString("\n── Synthesized explanation (§5) ──\n")
		sb.WriteString(expl.Program.String())
	}
	return sb.String(), nil
}
