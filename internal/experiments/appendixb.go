package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/cachequery"
	"repro/internal/hw"
	"repro/internal/mbl"
)

// LeaderScanResult is the outcome of the Appendix B adaptive-set analysis:
// per-set thrashing scans under both set-dueling steerings, classifying
// every sampled set as a fixed thrash-susceptible leader, a fixed
// thrash-resistant leader, or a follower.
type LeaderScanResult struct {
	Model       string
	Slice       int
	SampledSets []int
	// Classified maps set index to the detected kind; Installed holds the
	// simulator's ground truth for comparison.
	Classified map[int]hw.LeaderKind
	Installed  map[int]hw.LeaderKind
	// Correct counts sets whose detected kind matches the installed rule.
	Correct int
	// FormulaHolds reports whether every detected thrash-susceptible set
	// satisfies the paper's Skylake XOR formula.
	FormulaHolds bool
	// PSELLow/PSELHigh record the dueling counter after each steering.
	PSELLow, PSELHigh int
}

// thrashQuery builds the thrashing probe of Appendix B: a working set of
// assoc+4 blocks cycled through the set, with the steady-state passes
// profiled. On a thrash-susceptible (LRU-like) policy the steady state
// misses on every access; a thrash-resistant policy retains most of the
// working set.
func thrashQuery(assoc int) mbl.Query {
	ws := blocks.Ordered(assoc + 4)
	var q mbl.Query
	for pass := 0; pass < 3; pass++ { // warm-up passes
		for _, b := range ws {
			q = append(q, mbl.Op{Block: b})
		}
	}
	for pass := 0; pass < 2; pass++ { // profiled steady-state passes
		for _, b := range ws {
			q = append(q, mbl.Op{Block: b, Tag: mbl.TagProfile})
		}
	}
	return q
}

// thrashSusceptible classifies a steady-state miss fraction.
func thrashSusceptible(missFraction float64) bool { return missFraction > 0.9 }

// steerPSEL drives the set-dueling counter by thrashing one leader set of
// the given kind (misses in thrash-susceptible leaders push PSEL up, in
// resistant leaders down).
func steerPSEL(ctx context.Context, f *cachequery.Frontend, kind hw.LeaderKind, rounds int) error {
	cpu := f.CPU()
	cfg := cpu.Config()
	var tgt cachequery.Target
	found := false
	for set := 0; set < cfg.L3.SetsPerSlice && !found; set++ {
		if cfg.LeaderRule(0, set) == kind {
			tgt = cachequery.Target{Level: hw.L3, Slice: 0, Set: set}
			found = true
		}
	}
	if !found {
		return fmt.Errorf("experiments: no leader set of kind %v", kind)
	}
	be, err := f.Backend(tgt)
	if err != nil {
		return err
	}
	q := thrashQuery(be.Assoc())
	for i := 0; i < rounds; i++ {
		if _, err := be.Run(ctx, q, 1, true); err != nil {
			return err
		}
	}
	return nil
}

// classifySet measures the steady-state thrash miss fraction of one set.
func classifySet(ctx context.Context, f *cachequery.Frontend, tgt cachequery.Target, reps int) (float64, error) {
	be, err := f.Backend(tgt)
	if err != nil {
		return 0, err
	}
	q := thrashQuery(be.Assoc())
	misses, total := 0, 0
	for i := 0; i < reps; i++ {
		ocs, err := be.Run(ctx, q, 1, true)
		if err != nil {
			return 0, err
		}
		for _, oc := range ocs {
			total++
			if oc == cache.Miss {
				misses++
			}
		}
	}
	return float64(misses) / float64(total), nil
}

// RunLeaderScan performs the two-pass scan over sampled L3 sets of slice 0.
func RunLeaderScan(ctx context.Context, model hw.CPUConfig, sampleSets []int, reps int) (*LeaderScanResult, error) {
	cpu := hw.NewCPU(model, 31)
	opt := cachequery.DefaultBackendOptions()
	opt.MaxBlocks = model.L3.Assoc + 6
	f := cachequery.NewFrontend(cpu, opt)
	f.SetResultCache(false) // adaptive behaviour must be observed live

	res := &LeaderScanResult{
		Model:       model.Name,
		SampledSets: append([]int(nil), sampleSets...),
		Classified:  make(map[int]hw.LeaderKind),
		Installed:   make(map[int]hw.LeaderKind),
	}

	// Pass 1: PSEL high — followers behave thrash-resistant, so only the
	// fixed thrash-susceptible leaders keep missing.
	susceptibleHigh := make(map[int]bool)
	for _, set := range sampleSets {
		if err := steerPSEL(ctx, f, hw.LeaderThrashable, 40); err != nil {
			return nil, err
		}
		frac, err := classifySet(ctx, f, cachequery.Target{Level: hw.L3, Slice: 0, Set: set}, reps)
		if err != nil {
			return nil, err
		}
		susceptibleHigh[set] = thrashSusceptible(frac)
	}
	res.PSELHigh = cpu.PSEL()

	// Pass 2: PSEL low — followers behave thrash-susceptible too.
	susceptibleLow := make(map[int]bool)
	for _, set := range sampleSets {
		if err := steerPSEL(ctx, f, hw.LeaderResistant, 40); err != nil {
			return nil, err
		}
		frac, err := classifySet(ctx, f, cachequery.Target{Level: hw.L3, Slice: 0, Set: set}, reps)
		if err != nil {
			return nil, err
		}
		susceptibleLow[set] = thrashSusceptible(frac)
	}
	res.PSELLow = cpu.PSEL()

	res.FormulaHolds = true
	for _, set := range sampleSets {
		var kind hw.LeaderKind
		switch {
		case susceptibleHigh[set]:
			kind = hw.LeaderThrashable
		case susceptibleLow[set]:
			kind = hw.Follower
		default:
			kind = hw.LeaderResistant
		}
		res.Classified[set] = kind
		res.Installed[set] = cpu.LeaderKindOf(0, set)
		if kind == res.Installed[set] {
			res.Correct++
		}
		if kind == hw.LeaderThrashable {
			x := ((set & 0x3e0) >> 5) ^ (set & 0x1f)
			if !(x == 0 && set&0x2 == 0) {
				res.FormulaHolds = false
			}
		}
	}
	return res, nil
}

// DefaultLeaderSample returns a sample of slice-0 set indices containing
// both leader groups plus surrounding followers.
func DefaultLeaderSample(model hw.CPUConfig) []int {
	rule := model.LeaderRule
	seen := map[int]bool{}
	var sample []int
	add := func(s int) {
		if s >= 0 && s < model.L3.SetsPerSlice && !seen[s] {
			seen[s] = true
			sample = append(sample, s)
		}
	}
	// Every leader of either kind in the first 256 sets, plus neighbours.
	for set := 0; set < 256; set++ {
		if rule(0, set) != hw.Follower {
			add(set)
			add(set + 1)
			add(set - 1)
		}
	}
	// A few plain followers spread across the slice.
	for _, s := range []int{5, 77, 200, 300, 500} {
		add(s % model.L3.SetsPerSlice)
	}
	sort.Ints(sample)
	return sample
}

// LeaderScanTable renders the classification.
func LeaderScanTable(r *LeaderScanResult) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Appendix B: leader set scan on %s (slice %d)", r.Model, r.Slice),
		Header: []string{"Set", "Detected", "Installed"},
	}
	kindName := map[hw.LeaderKind]string{
		hw.Follower:         "follower",
		hw.LeaderThrashable: "leader (thrash-susceptible)",
		hw.LeaderResistant:  "leader (thrash-resistant)",
	}
	for _, set := range r.SampledSets {
		t.Append(fmt.Sprint(set), kindName[r.Classified[set]], kindName[r.Installed[set]])
	}
	return t
}
