package experiments

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/cachequery"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/policy"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"A", "BB"}}
	tbl.Append("xxx", "y")
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"T\n", "A", "BB", "xxx", "y"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFmtDuration(t *testing.T) {
	cases := map[string]string{
		"90ms":   "0.090s",
		"2m3s":   "2m 3.00s",
		"1h2m3s": "1h 2m 3s",
	}
	for in, want := range cases {
		d, err := time.ParseDuration(in)
		if err != nil {
			t.Fatal(err)
		}
		if got := fmtDuration(d); got != want {
			t.Errorf("fmtDuration(%s) = %q, want %q", in, got, want)
		}
	}
}

func TestTable2RowLearnsAndVerifies(t *testing.T) {
	row := RunTable2Row(context.Background(), "LRU", 4)
	if !row.Verified || row.States != 24 || row.Err != "" {
		t.Errorf("row = %+v", row)
	}
	bad := RunTable2Row(context.Background(), "NOPE", 4)
	if bad.Err == "" {
		t.Error("unknown policy accepted")
	}
}

func TestTable2RowSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	cold := RunTable2RowSnap(context.Background(), "LRU", 4, learn.Options{Depth: 1}, dir)
	if !cold.Verified || cold.Err != "" {
		t.Fatalf("cold row = %+v", cold)
	}
	if _, err := os.Stat(core.SnapshotPathInDir(dir, "LRU", 4)); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	warm := RunTable2RowSnap(context.Background(), "LRU", 4, learn.Options{Depth: 1}, dir)
	if !warm.Verified || warm.Err != "" {
		t.Fatalf("warm row = %+v", warm)
	}
	if warm.Queries != cold.Queries || warm.States != cold.States {
		t.Errorf("warm trajectory diverged: cold %+v, warm %+v", cold, warm)
	}
}

func TestTable2SpecsCoverPaperPolicies(t *testing.T) {
	want := map[string]bool{"FIFO": false, "LRU": false, "PLRU": false, "MRU": false,
		"LIP": false, "SRRIP-HP": false, "SRRIP-FP": false}
	for _, s := range Table2Full() {
		delete(want, s.Policy)
	}
	for missing := range want {
		t.Errorf("Table2Full misses %s", missing)
	}
}

func TestTable3MatchesModels(t *testing.T) {
	var sb strings.Builder
	Table3Table().Render(&sb)
	out := sb.String()
	for _, want := range []string{"Haswell", "Skylake", "Kaby Lake", "New1", "PLRU", "2048", "1024"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestTable4JobsQuickAndFull(t *testing.T) {
	quick := Table4Jobs(true)
	full := Table4Jobs(false)
	if len(quick) >= len(full) {
		t.Errorf("quick %d jobs, full %d", len(quick), len(full))
	}
	// The quick list must include the Haswell L3 failure case and the
	// Skylake levels.
	var haswellL3, skylakeL2 bool
	for _, j := range quick {
		if j.Model.Arch == "Haswell" && j.Level == hw.L3 && j.Expected == "" {
			haswellL3 = true
		}
		if j.Model.Arch == "Skylake" && j.Level == hw.L2 && j.Expected == "New1" {
			skylakeL2 = true
		}
	}
	if !haswellL3 || !skylakeL2 {
		t.Errorf("quick job list incomplete: haswellL3=%v skylakeL2=%v", haswellL3, skylakeL2)
	}
}

func TestIdentifyPolicy(t *testing.T) {
	// A PLRU machine rooted at its F+R state must be identified as PLRU
	// and nothing else.
	rst := cachequery.FlushRefill(4)
	truth, err := core.GroundTruthAfterReset(policy.MustNew("PLRU", 4), rst)
	if err != nil {
		t.Fatal(err)
	}
	if got := identifyPolicy(truth, rst, 4); got != "PLRU" {
		t.Errorf("identified %q, want PLRU", got)
	}
	// A machine nothing matches.
	bogus := mealy.New(1, 5)
	for a := 0; a < 5; a++ {
		bogus.Out[0][a] = 0 // even Ln inputs "evict", matching no policy
	}
	if got := identifyPolicy(bogus, rst, 4); got != "Unknown" {
		t.Errorf("identified bogus machine as %q", got)
	}
}

func TestContentPermutation(t *testing.T) {
	perm, ok := contentPermutation(
		[]blocks.Block{"B", "A", "C"},
		[]blocks.Block{"A", "B", "C"})
	if !ok || perm[0] != 1 || perm[1] != 0 || perm[2] != 2 {
		t.Errorf("perm = %v ok=%v", perm, ok)
	}
	if _, ok := contentPermutation([]blocks.Block{"X"}, []blocks.Block{"A"}); ok {
		t.Error("mismatched contents accepted")
	}
}

func TestTable5RowFIFOAndPLRU(t *testing.T) {
	fifo := RunTable5Row("FIFO")
	if fifo.Program == nil || fifo.Template != "Simple" || fifo.States != 4 {
		t.Errorf("FIFO row = %+v", fifo)
	}
	plru := RunTable5Row("PLRU")
	if plru.Program != nil || plru.Err == "" {
		t.Errorf("PLRU row = %+v", plru)
	}
}

func TestRunFigure1Report(t *testing.T) {
	report, err := RunFigure1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CacheQuery", "Polca", "learned 2 control states",
		"trace-equivalent to LRU", "digraph", "Synthesized explanation"} {
		if !strings.Contains(report, want) {
			t.Errorf("figure 1 report missing %q", want)
		}
	}
}

func TestThrashQueryShape(t *testing.T) {
	q := thrashQuery(4)
	if q.ProfiledCount() != 2*(4+4) {
		t.Errorf("profiled %d accesses", q.ProfiledCount())
	}
	if len(q.Blocks()) != 8 {
		t.Errorf("working set of %d blocks", len(q.Blocks()))
	}
}

func TestDefaultLeaderSampleContainsBothLeaderKinds(t *testing.T) {
	model := hw.Skylake()
	sample := DefaultLeaderSample(model)
	var thrash, resist int
	for _, s := range sample {
		switch model.LeaderRule(0, s) {
		case hw.LeaderThrashable:
			thrash++
		case hw.LeaderResistant:
			resist++
		}
	}
	if thrash == 0 || resist == 0 {
		t.Errorf("sample has %d thrashable and %d resistant leaders", thrash, resist)
	}
}

func TestBaselinesShape(t *testing.T) {
	rows, err := RunBaselines(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	inScope := map[string]bool{"FIFO": true, "LRU": true, "PLRU": true}
	for _, r := range rows {
		if r.PermOK != inScope[r.Policy] {
			t.Errorf("%s: permutation baseline in-scope=%v, want %v", r.Policy, r.PermOK, inScope[r.Policy])
		}
		if r.FingerMatch != r.Policy {
			t.Errorf("%s: fingerprinted as %q", r.Policy, r.FingerMatch)
		}
	}
	var sb strings.Builder
	BaselinesTable(rows).Render(&sb)
	if !strings.Contains(sb.String(), "out of scope") {
		t.Error("baselines table missing out-of-scope rows")
	}
}

func TestLeaderScanSmall(t *testing.T) {
	model := hw.Skylake()
	res, err := RunLeaderScan(context.Background(), model, []int{0, 1, 62}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != 3 {
		t.Errorf("classified %d/3 correctly: %+v", res.Correct, res.Classified)
	}
	if !res.FormulaHolds {
		t.Error("XOR formula violated")
	}
	var sb strings.Builder
	LeaderScanTable(res).Render(&sb)
	if !strings.Contains(sb.String(), "thrash-susceptible") {
		t.Error("scan table missing classification")
	}
}
