package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/cachequery"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/policy"
)

// Table3Table renders the processor specifications (Table 3).
func Table3Table() *Table {
	t := &Table{
		Title:  "Table 3: processors' specifications",
		Header: []string{"CPU", "Cache level", "Assoc.", "Slices", "Sets per slice", "Policy (installed)"},
	}
	for _, m := range hw.Models() {
		for _, lvl := range []hw.Level{hw.L1, hw.L2, hw.L3} {
			cfg := m.Config(lvl)
			pol := cfg.Policy
			if lvl == hw.L3 && m.L3Adaptive {
				pol = fmt.Sprintf("adaptive (%s leaders / %s)", m.ThrashablePolicy, m.ResistantPolicy)
			}
			t.Append(m.Name, lvl.String(), fmt.Sprint(cfg.Assoc), fmt.Sprint(cfg.Slices),
				fmt.Sprint(cfg.SetsPerSlice), pol)
		}
	}
	return t
}

// Table4Job describes one hardware learning target.
type Table4Job struct {
	Model    hw.CPUConfig
	Level    hw.Level
	Target   cachequery.Target
	CATWays  int
	SetsNote string
	// Expected is the installed ground-truth policy, used to compute reset
	// candidates and to verify the learned machine. An empty value marks a
	// row the paper could not learn.
	Expected string
	// Seed fixes the CPU instance.
	Seed int64
	// Replicas sizes the concurrent membership-query engine's CPU-replica
	// pool: 0 uses every available core, 1 forces the serial pipeline.
	Replicas int
	// Learn configures the learner — algorithm (learn.AlgoTree for the
	// discrimination tree), conformance suite, random-walk seed/steps.
	// RunTable4Job fills in the paper's depth (k = 1) and the state budget
	// when left zero.
	Learn learn.Options
	// Interpreted drives the simulated CPUs' replacement policies through
	// the interpreted Policy interface instead of the compiled kernel
	// (cmd/experiments' -compiled=false). Observable behaviour — and hence
	// the learned machine — is bit-identical.
	Interpreted bool
	// Batched enables the batched membership-query engine on the hardware
	// pipeline (core.HardwareRequest.Batched): eviction probes of one miss
	// group into a single fan-out over the CPU-replica pool. Effective only
	// with Replicas > 1.
	Batched bool
}

// Table4Row is one row of Table 4.
type Table4Row struct {
	CPU    string
	Level  string
	Assoc  int
	Sets   string
	States int
	Policy string
	Reset  string
	Time   time.Duration
	Err    string
}

// Table4Jobs enumerates the learning targets. quick restricts the list to
// one CPU (Skylake) plus the Haswell L3 failure case; the full list covers
// every CPU and level of Table 4.
func Table4Jobs(quick bool) []Table4Job {
	var jobs []Table4Job
	for _, m := range hw.Models() {
		sky := m.Arch == "Skylake"
		if quick && !sky && m.Arch != "Haswell" {
			continue
		}
		if !quick || sky {
			jobs = append(jobs,
				Table4Job{Model: m, Level: hw.L1, Target: cachequery.Target{Level: hw.L1, Set: 0},
					SetsNote: "0 - 63", Expected: m.L1.Policy, Seed: 11},
				Table4Job{Model: m, Level: hw.L2, Target: cachequery.Target{Level: hw.L2, Set: 0},
					SetsNote: fmt.Sprintf("0 - %d", m.L2.SetsPerSlice-1), Expected: m.L2.Policy, Seed: 12},
			)
		}
		switch {
		case m.SupportsCAT && (!quick || sky):
			// The thrash-susceptible leader sets (set 0 satisfies the
			// Appendix B formula) with associativity reduced to 4.
			jobs = append(jobs, Table4Job{
				Model: m, Level: hw.L3,
				Target:   cachequery.Target{Level: hw.L3, Slice: 0, Set: 0},
				CATWays:  4,
				SetsNote: "0 33 132 165 ... (leader sets)",
				Expected: m.ThrashablePolicy,
				Seed:     13,
			})
		case !m.SupportsCAT:
			// Haswell: no CAT, and the resistant leader group behaves
			// nondeterministically — the paper reports "-".
			jobs = append(jobs, Table4Job{
				Model: m, Level: hw.L3,
				Target:   cachequery.Target{Level: hw.L3, Slice: 0, Set: 768},
				SetsNote: "768 - 831 (slice 0)",
				Expected: "", // expected to fail
				Seed:     14,
			})
		}
	}
	return jobs
}

// table4LearnOptions applies the Table 4 defaults to a job's learner options.
func table4LearnOptions(opt learn.Options) learn.Options {
	if opt.Depth == 0 {
		opt.Depth = 1
	}
	if opt.MaxStates == 0 {
		opt.MaxStates = 4096
	}
	return opt
}

// RunTable4Job learns one target and identifies the resulting policy.
func RunTable4Job(ctx context.Context, job Table4Job, opt cachequery.BackendOptions) Table4Row {
	row := Table4Row{CPU: job.Model.Name, Level: job.Level.String(), Sets: job.SetsNote}
	mkCPU := func() *hw.CPU { return hw.NewCPUSim(job.Model, job.Seed, job.Interpreted) }
	cpu := mkCPU()
	assoc := job.Model.Config(job.Level).Assoc
	if job.CATWays > 0 {
		assoc = job.CATWays
	}
	row.Assoc = assoc

	req := core.HardwareRequest{
		CPU:              cpu,
		NewCPU:           mkCPU,
		Replicas:         job.Replicas,
		Target:           job.Target,
		Backend:          opt,
		CATWays:          job.CATWays,
		Learn:            table4LearnOptions(job.Learn),
		DeterminismEvery: 128,
		Batched:          job.Batched,
	}
	if job.Expected != "" {
		pol, err := policy.New(job.Expected, assoc)
		if err != nil {
			row.Err = err.Error()
			return row
		}
		req.Resets = core.ResetCandidatesFor(pol)
	} else {
		// Unknown policy: try the generic resets; learning is expected to
		// fail with nondeterminism on the Haswell L3.
		req.Learn.MaxStates = 512
		req.Resets = []cachequery.Reset{cachequery.FlushRefill(assoc)}
	}

	start := time.Now()
	res, err := core.LearnHardware(ctx, req)
	row.Time = time.Since(start)
	if err != nil {
		row.Err = err.Error()
		row.Policy = "-"
		row.Reset = "-"
		return row
	}
	row.States = res.Machine.NumStates
	row.Reset = res.Reset.Name()
	row.Policy = identifyPolicy(res.Machine, res.Reset, assoc)
	return row
}

// identifyPolicy names a learned machine by comparing it against the policy
// zoo, accounting for the line relabeling induced by the reset's block
// arrangement.
func identifyPolicy(m *mealy.Machine, rst cachequery.Reset, assoc int) string {
	for _, name := range policy.Names() {
		pol, err := policy.New(name, assoc)
		if err != nil {
			continue
		}
		vr, err := cache.VerifyReset(pol, rst.Sequence, rst.FlushFirst, 200000)
		if err != nil {
			continue // the reset does not even converge for this policy
		}
		truth, err := core.GroundTruthAfterReset(pol, cachequery.Reset{
			FlushFirst: rst.FlushFirst, Sequence: rst.Sequence, Content: vr.Content,
		})
		if err != nil {
			continue
		}
		perm, ok := contentPermutation(vr.Content, rst.Content)
		if !ok {
			continue
		}
		if eq, _ := m.Equivalent(truth.RelabelLines(perm)); eq {
			return pol.Name()
		}
	}
	return "Unknown"
}

// contentPermutation maps line indices of `from` onto the lines of `to`
// holding the same blocks.
func contentPermutation(from, to []blocks.Block) ([]int, bool) {
	if len(from) != len(to) {
		return nil, false
	}
	pos := make(map[blocks.Block]int, len(to))
	for i, b := range to {
		pos[b] = i
	}
	perm := make([]int, len(from))
	for i, b := range from {
		j, ok := pos[b]
		if !ok {
			return nil, false
		}
		perm[i] = j
	}
	return perm, true
}

// Table4Table renders rows in the layout of Table 4.
func Table4Table(rows []Table4Row) *Table {
	t := &Table{
		Title:  "Table 4: learning policies from (simulated) hardware caches",
		Header: []string{"CPU", "Level", "Assoc.", "Sets", "States", "Policy", "Reset Seq.", "Time"},
	}
	for _, r := range rows {
		states := fmt.Sprint(r.States)
		if r.Err != "" {
			states = "-"
		}
		t.Append(r.CPU, r.Level, fmt.Sprint(r.Assoc), r.Sets, states, r.Policy, r.Reset, fmtDuration(r.Time))
	}
	return t
}
