package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/policy"
)

// Table2Spec selects which policy/associativity pairs to learn from
// software-simulated caches.
type Table2Spec struct {
	Policy string
	Assocs []int
}

// Table2Default is the subset of Table 2 that completes in minutes on a
// laptop-class machine. Paper state counts for reference: FIFO n, LRU/LIP
// n!, PLRU 2^(n-1), MRU 2^n-2, SRRIP-HP 12/178/2762, SRRIP-FP 16/256/4096.
func Table2Default() []Table2Spec {
	return []Table2Spec{
		{"FIFO", []int{2, 4, 8, 16}},
		{"LRU", []int{2, 4}},
		{"PLRU", []int{2, 4, 8}},
		{"MRU", []int{2, 4, 6, 8}},
		{"LIP", []int{2, 4}},
		{"SRRIP-HP", []int{2, 4}},
		{"SRRIP-FP", []int{2, 4}},
		{"New1", []int{2, 4}},
		{"New2", []int{2, 4}},
	}
}

// Table2Full extends the default spec with the large instances of Table 2.
// The biggest (PLRU 16, MRU 12, SRRIP-FP 6) took the paper's setup hours to
// days; expect the same order of magnitude here.
func Table2Full() []Table2Spec {
	return []Table2Spec{
		{"FIFO", []int{2, 4, 8, 16}},
		{"LRU", []int{2, 4, 6}},
		{"PLRU", []int{2, 4, 8, 16}},
		{"MRU", []int{2, 4, 6, 8, 10, 12}},
		{"LIP", []int{2, 4, 6}},
		{"SRRIP-HP", []int{2, 4, 6}},
		{"SRRIP-FP", []int{2, 4, 6}},
		{"New1", []int{2, 4, 6}},
		{"New2", []int{2, 4, 6}},
	}
}

// Table2Row is one learned configuration.
type Table2Row struct {
	Policy   string
	Assoc    int
	States   int
	Time     time.Duration
	Queries  int
	Verified bool
	Err      string
}

// RunTable2Row learns one policy from a software-simulated cache with the
// paper's settings (L*, Wp-method, k = 1) and verifies the result against
// the extracted ground truth.
func RunTable2Row(ctx context.Context, name string, assoc int) Table2Row {
	return RunTable2RowOpt(ctx, name, assoc, learn.Options{Depth: 1})
}

// RunTable2RowOpt is RunTable2Row with explicit learner options — the
// algorithm (-algo), conformance suite and random-walk seed flow through
// from cmd/experiments here.
func RunTable2RowOpt(ctx context.Context, name string, assoc int, opt learn.Options) Table2Row {
	return RunTable2RowSnap(ctx, name, assoc, opt, "")
}

// RunTable2RowSnap is RunTable2RowOpt with oracle query-store persistence:
// when snapshotDir is non-empty, an existing per-row snapshot warm-starts
// the oracle (the row replays recorded answers and simulates only new
// words) and the store is saved back after the run (core.SnapshotInDir
// naming). Learned machines and learner trajectories are identical cold
// or warm.
func RunTable2RowSnap(ctx context.Context, name string, assoc int, opt learn.Options, snapshotDir string) Table2Row {
	return RunTable2RowSim(ctx, name, assoc, opt, snapshotDir, core.SimOptions{})
}

// RunTable2RowSim is RunTable2RowSnap with an explicit simulator
// configuration: cmd/experiments' -compiled=false flows through here to run
// the row on the interpreted Policy interface instead of the compiled
// kernel (same machines and trajectories, different wall-clock).
func RunTable2RowSim(ctx context.Context, name string, assoc int, opt learn.Options, snapshotDir string, sim core.SimOptions) Table2Row {
	if opt.Depth == 0 {
		opt.Depth = 1
	}
	snap := core.SnapshotInDir(snapshotDir, name, assoc)
	row := Table2Row{Policy: name, Assoc: assoc}
	start := time.Now()
	res, err := core.LearnSimulatedSim(ctx, name, assoc, opt, snap, sim)
	row.Time = time.Since(start)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.States = res.Machine.NumStates
	row.Queries = res.LearnStats.OutputQueries
	pol, err := policy.New(name, assoc)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	truth, err := mealy.FromPolicy(pol, 0)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	eq, _ := res.Machine.Equivalent(truth)
	row.Verified = eq
	if !eq {
		row.Err = "learned machine differs from ground truth"
	}
	return row
}

// RunTable2 learns every configuration of the spec, one after the other —
// the faithful setting for per-row timing comparisons against the paper.
func RunTable2(ctx context.Context, specs []Table2Spec) []Table2Row {
	return RunTable2Concurrent(ctx, specs, 1)
}

// RunTable2Concurrent learns the spec's configurations on up to `workers`
// parallel goroutines with the paper's learner settings.
func RunTable2Concurrent(ctx context.Context, specs []Table2Spec, workers int) []Table2Row {
	return RunTable2ConcurrentOpt(ctx, specs, workers, learn.Options{Depth: 1})
}

// RunTable2ConcurrentOpt learns the spec's configurations on up to `workers`
// parallel goroutines (rows are independent learning runs, each against its
// own simulated cache) with explicit learner options. Row order matches
// RunTable2; per-row times include scheduling contention, so use workers = 1
// when timing against the paper.
func RunTable2ConcurrentOpt(ctx context.Context, specs []Table2Spec, workers int, opt learn.Options) []Table2Row {
	return RunTable2ConcurrentSnap(ctx, specs, workers, opt, "")
}

// RunTable2ConcurrentSnap is RunTable2ConcurrentOpt with per-row oracle
// snapshot persistence in snapshotDir (empty disables; see
// RunTable2RowSnap). Rows are independent systems, so each gets its own
// snapshot file.
func RunTable2ConcurrentSnap(ctx context.Context, specs []Table2Spec, workers int, opt learn.Options, snapshotDir string) []Table2Row {
	return RunTable2ConcurrentSim(ctx, specs, workers, opt, snapshotDir, core.SimOptions{})
}

// RunTable2ConcurrentSim is RunTable2ConcurrentSnap with an explicit
// simulator configuration threaded to every row.
func RunTable2ConcurrentSim(ctx context.Context, specs []Table2Spec, workers int, opt learn.Options, snapshotDir string, sim core.SimOptions) []Table2Row {
	type job struct {
		policy string
		assoc  int
	}
	var jobs []job
	for _, spec := range specs {
		for _, assoc := range spec.Assocs {
			if _, err := policy.New(spec.Policy, assoc); err != nil {
				// Associativity constraints (e.g. PLRU at non-powers of
				// two) are skipped silently, like the paper's dashes.
				continue
			}
			jobs = append(jobs, job{spec.Policy, assoc})
		}
	}
	rows := make([]Table2Row, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			rows[i] = RunTable2RowSim(ctx, j.policy, j.assoc, opt, snapshotDir, sim)
		}
		return rows
	}
	next := make(chan int)
	var wg sync.WaitGroup
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rows[i] = RunTable2RowSim(ctx, jobs[i].policy, jobs[i].assoc, opt, snapshotDir, sim)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return rows
}

// Table2Table renders rows in the layout of Table 2.
func Table2Table(rows []Table2Row) *Table {
	t := &Table{
		Title:  "Table 2: learning policies from software-simulated caches",
		Header: []string{"Policy", "Assoc.", "# States", "Time", "Queries", "Verified"},
	}
	for _, r := range rows {
		verified := "yes"
		if !r.Verified {
			verified = "NO: " + r.Err
		}
		t.Append(r.Policy, fmt.Sprint(r.Assoc), fmt.Sprint(r.States),
			fmtDuration(r.Time), fmt.Sprint(r.Queries), verified)
	}
	return t
}
