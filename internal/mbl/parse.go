package mbl

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/blocks"
)

// This file contains the MBL lexer and recursive-descent parser.
//
// Grammar (whitespace separates tokens; juxtaposition concatenates):
//
//	expr    := term+
//	term    := atom postfix*
//	postfix := '?' | '!' | NUMBER | '[' expr ']'
//	atom    := BLOCK | '@' | '_' | '(' expr ')' | '[' expr ']' |
//	           '{' expr (',' expr)* '}'
//
// A postfix NUMBER is the power macro, a postfix bracket group the extension
// macro (s1)[s2] ≡ s1 ◦ [s2], and a leading bracket group a plain choice.

type tokenKind int

const (
	tokBlock tokenKind = iota
	tokAt
	tokWildcard
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokLBrace
	tokRBrace
	tokComma
	tokQuestion
	tokBang
	tokNumber
	tokEOF
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '@':
			toks = append(toks, token{tokAt, "@", i})
			i++
		case c == '_':
			toks = append(toks, token{tokWildcard, "_", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '[':
			toks = append(toks, token{tokLBracket, "[", i})
			i++
		case c == ']':
			toks = append(toks, token{tokRBracket, "]", i})
			i++
		case c == '{':
			toks = append(toks, token{tokLBrace, "{", i})
			i++
		case c == '}':
			toks = append(toks, token{tokRBrace, "}", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '?':
			toks = append(toks, token{tokQuestion, "?", i})
			i++
		case c == '!':
			toks = append(toks, token{tokBang, "!", i})
			i++
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case c >= 'A' && c <= 'Z':
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokBlock, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("mbl: unexpected character %q at position %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("mbl: expected %s, found %s at position %d", what, t, t.pos)
	}
	return t, nil
}

// Parse parses an MBL expression.
func Parse(src string) (Expr, error) {
	if strings.TrimSpace(src) == "" {
		return nil, fmt.Errorf("mbl: empty expression")
	}
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("mbl: trailing input %s at position %d", t, t.pos)
	}
	return e, nil
}

// parseExpr parses a juxtaposition of terms up to a closing delimiter.
func (p *parser) parseExpr() (Expr, error) {
	var parts []Expr
	for {
		switch p.peek().kind {
		case tokEOF, tokRParen, tokRBracket, tokRBrace, tokComma:
			switch len(parts) {
			case 0:
				return nil, fmt.Errorf("mbl: empty expression at position %d", p.peek().pos)
			case 1:
				return parts[0], nil
			default:
				return concatExpr{parts: parts}, nil
			}
		}
		term, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		parts = append(parts, term)
	}
}

func (p *parser) parseTerm() (Expr, error) {
	e, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek().kind {
		case tokQuestion:
			p.next()
			e = tagExpr{inner: e, tag: TagProfile}
		case tokBang:
			p.next()
			e = tagExpr{inner: e, tag: TagFlush}
		case tokNumber:
			t := p.next()
			k := 0
			for _, c := range t.text {
				k = k*10 + int(c-'0')
			}
			if k < 1 || k > 4096 {
				return nil, fmt.Errorf("mbl: power %d out of range at position %d", k, t.pos)
			}
			e = powerExpr{inner: e, k: k}
		case tokLBracket:
			// Extension macro: s[t] ≡ s ◦ [t].
			p.next()
			inner, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket, "']'"); err != nil {
				return nil, err
			}
			e = concatExpr{parts: []Expr{e, choiceExpr{inner: inner}}}
		default:
			return e, nil
		}
	}
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokBlock:
		if !blocks.IsValid(t.text) {
			return nil, fmt.Errorf("mbl: invalid block name %q at position %d", t.text, t.pos)
		}
		return blockExpr{block: t.text}, nil
	case tokAt:
		return fillExpr{}, nil
	case tokWildcard:
		return wildcardExpr{}, nil
	case tokLParen:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBracket:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		return choiceExpr{inner: e}, nil
	case tokLBrace:
		var alts []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			alts = append(alts, e)
			sep := p.next()
			if sep.kind == tokRBrace {
				return setExpr{alts: alts}, nil
			}
			if sep.kind != tokComma {
				return nil, fmt.Errorf("mbl: expected ',' or '}', found %s at position %d", sep, sep.pos)
			}
		}
	default:
		return nil, fmt.Errorf("mbl: unexpected %s at position %d", t, t.pos)
	}
}
