package mbl

import (
	"strings"
	"testing"
	"testing/quick"
)

// expandStrings is a test helper rendering the expansion of src.
func expandStrings(t *testing.T, src string, assoc int) []string {
	t.Helper()
	qs, err := Expand(src, assoc)
	if err != nil {
		t.Fatalf("Expand(%q, %d): %v", src, assoc, err)
	}
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.String()
	}
	return out
}

func assertExpansion(t *testing.T, src string, assoc int, want ...string) {
	t.Helper()
	got := expandStrings(t, src, assoc)
	if len(got) != len(want) {
		t.Fatalf("Expand(%q) = %v, want %v", src, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Expand(%q)[%d] = %q, want %q", src, i, got[i], want[i])
		}
	}
}

func TestFillMacro(t *testing.T) {
	assertExpansion(t, "@", 8, "A B C D E F G H")
	assertExpansion(t, "@", 2, "A B")
}

func TestWildcardMacro(t *testing.T) {
	assertExpansion(t, "_", 4, "A", "B", "C", "D")
}

func TestPaperExample41(t *testing.T) {
	// "@ X _?" for associativity 4 is the findEvicted query.
	assertExpansion(t, "@ X _?", 4,
		"A B C D X A?",
		"A B C D X B?",
		"A B C D X C?",
		"A B C D X D?")
}

func TestExtensionMacro(t *testing.T) {
	// (A B C D)[E F] from §4.1.
	assertExpansion(t, "(A B C D)[E F]", 4,
		"A B C D E",
		"A B C D F")
}

func TestPowerMacro(t *testing.T) {
	// (A B C)3 from §4.1.
	assertExpansion(t, "(A B C)3", 4, "A B C A B C A B C")
}

func TestTagDistributes(t *testing.T) {
	// (A B)? expands to A? B? (§4.1).
	assertExpansion(t, "(A B)?", 4, "A? B?")
	assertExpansion(t, "(A B)!", 4, "A! B!")
}

func TestSetUnion(t *testing.T) {
	assertExpansion(t, "{A B, C}", 4, "A B", "C")
	assertExpansion(t, "{A, B} X", 4, "A X", "B X")
}

func TestConcatDistributesOverSets(t *testing.T) {
	// The ◦ macro concatenates each query of q1 with each of q2.
	assertExpansion(t, "{A, B} {C, D}", 4, "A C", "A D", "B C", "B D")
}

func TestStandaloneChoice(t *testing.T) {
	assertExpansion(t, "[A B C D]?", 4, "A?", "B?", "C?", "D?")
	// _ is the same as [@].
	assertExpansion(t, "[@]", 4, "A", "B", "C", "D")
}

func TestThrashingQuery(t *testing.T) {
	// A working set larger than the associativity, as used by the leader
	// set detection scans (Appendix B): @ M a M? on associativity 2.
	assertExpansion(t, "@ M A M?", 2, "A B M A M?")
}

func TestNumberedBlocks(t *testing.T) {
	assertExpansion(t, "A1 B2 A1?", 4, "A1 B2 A1?")
}

func TestInvalidSyntax(t *testing.T) {
	for _, bad := range []string{
		"", "   ", "(", ")", "(A", "A)", "{A", "{A,}", "[]", "a b",
		"A??", "(A?)?", "@0", "A 0", "}", "A,B", "(A)99999",
	} {
		if _, err := Expand(bad, 4); err == nil {
			t.Errorf("Expand(%q) succeeded, want error", bad)
		}
	}
}

func TestExpansionBlowupGuard(t *testing.T) {
	// 17 nested wildcards would expand to 4^17 queries.
	src := strings.TrimSpace(strings.Repeat("_ ", 17))
	if _, err := Expand(src, 4); err == nil {
		t.Error("combinatorial expansion not rejected")
	}
}

func TestQueryHelpers(t *testing.T) {
	qs, err := Expand("A B A C?", 4)
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	if got := q.ProfiledCount(); got != 1 {
		t.Errorf("ProfiledCount = %d", got)
	}
	bs := q.Blocks()
	if len(bs) != 3 || bs[0] != "A" || bs[1] != "B" || bs[2] != "C" {
		t.Errorf("Blocks = %v", bs)
	}
}

// TestParseStringRoundTrip: rendering a parsed expression and re-parsing it
// preserves the expansion.
func TestParseStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"@ X _?", "(A B C)3", "{A B, C D}", "(A B C D)[E F]", "[A B]!",
		"@ @", "D C B A @", "(@)2 M? _",
	} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", e.String(), err)
		}
		a, err1 := e.Expand(4)
		b, err2 := again.Expand(4)
		if err1 != nil || err2 != nil {
			t.Fatalf("expand: %v / %v", err1, err2)
		}
		if len(a) != len(b) {
			t.Fatalf("%q: round trip changed expansion size", src)
		}
		for i := range a {
			if a[i].String() != b[i].String() {
				t.Errorf("%q: query %d changed: %q vs %q", src, i, a[i], b[i])
			}
		}
	}
}

// TestExpansionDeterministic: expansion is a pure function of (src, assoc).
func TestExpansionDeterministic(t *testing.T) {
	f := func(seed uint8) bool {
		srcs := []string{"@ X _?", "_ _", "{A, B C}2", "(A B)[C D]?"}
		src := srcs[int(seed)%len(srcs)]
		a := expandStrings(t, src, 4)
		b := expandStrings(t, src, 4)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
