// Package mbl implements MemBlockLang (MBL), the domain-specific language
// CacheQuery uses to specify cache queries (§4.1 and Appendix A of the
// paper).
//
// A query is a sequence of memory operations: a block name, optionally
// decorated with the tag '?' (profile the access) or '!' (invalidate the
// block, e.g. via clflush). An MBL expression denotes a *set* of queries and
// is built from:
//
//	A..Z, A1..   block literals
//	@            expansion macro: associativity-many blocks in order
//	_            wildcard macro: associativity-many single-block queries
//	s1 s2        concatenation (the paper's s1 ◦ s2), by juxtaposition
//	{s1, .., sk} union of expansions
//	[s]          choice: one single-block query per block occurring in s;
//	             postfix use (s1)[s2] is the paper's extension macro
//	(s)k         power: k-fold repetition
//	(s)? (s)!    tag every block of every query in s
//
// Example (associativity 4): "@ X _?" expands to the four queries
// A B C D X A?, ..., A B C D X D? — the findEvicted probe of Algorithm 1.
package mbl

import (
	"fmt"
	"strings"

	"repro/internal/blocks"
)

// Tag decorates a memory operation.
type Tag byte

// Tags.
const (
	TagNone    Tag = 0
	TagProfile Tag = '?'
	TagFlush   Tag = '!'
)

// Op is one memory operation of a query.
type Op struct {
	Block blocks.Block
	Tag   Tag
}

// String renders the operation in MBL syntax.
func (o Op) String() string {
	if o.Tag == TagNone {
		return o.Block
	}
	return o.Block + string(o.Tag)
}

// Query is a sequence of memory operations.
type Query []Op

// String renders the query in MBL syntax.
func (q Query) String() string {
	parts := make([]string, len(q))
	for i, o := range q {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// Blocks returns the distinct blocks of q in first-occurrence order.
func (q Query) Blocks() []blocks.Block {
	var out []blocks.Block
	seen := make(map[blocks.Block]bool)
	for _, o := range q {
		if !seen[o.Block] {
			seen[o.Block] = true
			out = append(out, o.Block)
		}
	}
	return out
}

// ProfiledCount returns the number of '?'-tagged operations.
func (q Query) ProfiledCount() int {
	n := 0
	for _, o := range q {
		if o.Tag == TagProfile {
			n++
		}
	}
	return n
}

// MaxQueries bounds the expansion of a single MBL expression, guarding
// against accidental combinatorial blowups of nested choice macros.
const MaxQueries = 1 << 16

// Expand parses src and expands it into its set of queries for the given
// associativity.
func Expand(src string, assoc int) ([]Query, error) {
	expr, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return expr.Expand(assoc)
}

// Expr is a parsed MBL expression.
type Expr interface {
	// Expand computes the query-set semantics for an associativity.
	Expand(assoc int) ([]Query, error)
	// String renders the expression in MBL syntax.
	String() string
}

// blockExpr is a single block literal with an optional tag.
type blockExpr struct {
	block blocks.Block
	tag   Tag
}

func (e blockExpr) Expand(int) ([]Query, error) {
	return []Query{{Op{Block: e.block, Tag: e.tag}}}, nil
}

func (e blockExpr) String() string { return Op{Block: e.block, Tag: e.tag}.String() }

// fillExpr is the '@' macro.
type fillExpr struct{}

func (fillExpr) Expand(assoc int) ([]Query, error) {
	q := make(Query, assoc)
	for i := range q {
		q[i] = Op{Block: blocks.Name(i)}
	}
	return []Query{q}, nil
}

func (fillExpr) String() string { return "@" }

// wildcardExpr is the '_' macro.
type wildcardExpr struct{}

func (wildcardExpr) Expand(assoc int) ([]Query, error) {
	qs := make([]Query, assoc)
	for i := range qs {
		qs[i] = Query{Op{Block: blocks.Name(i)}}
	}
	return qs, nil
}

func (wildcardExpr) String() string { return "_" }

// concatExpr is juxtaposition: the ◦ macro.
type concatExpr struct{ parts []Expr }

func (e concatExpr) Expand(assoc int) ([]Query, error) {
	result := []Query{{}}
	for _, p := range e.parts {
		qs, err := p.Expand(assoc)
		if err != nil {
			return nil, err
		}
		if len(result)*len(qs) > MaxQueries {
			return nil, fmt.Errorf("mbl: expansion exceeds %d queries", MaxQueries)
		}
		next := make([]Query, 0, len(result)*len(qs))
		for _, a := range result {
			for _, b := range qs {
				q := make(Query, 0, len(a)+len(b))
				q = append(q, a...)
				q = append(q, b...)
				next = append(next, q)
			}
		}
		result = next
	}
	return result, nil
}

func (e concatExpr) String() string {
	parts := make([]string, len(e.parts))
	for i, p := range e.parts {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}

// setExpr is the {s1, ..., sk} union.
type setExpr struct{ alts []Expr }

func (e setExpr) Expand(assoc int) ([]Query, error) {
	var out []Query
	for _, a := range e.alts {
		qs, err := a.Expand(assoc)
		if err != nil {
			return nil, err
		}
		out = append(out, qs...)
		if len(out) > MaxQueries {
			return nil, fmt.Errorf("mbl: expansion exceeds %d queries", MaxQueries)
		}
	}
	return out, nil
}

func (e setExpr) String() string {
	parts := make([]string, len(e.alts))
	for i, a := range e.alts {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// choiceExpr is [s]: one single-block query per block occurring in the
// expansion of s, in first-occurrence order. The paper's extension macro
// s1[s2] is parsed as s1 ◦ [s2].
type choiceExpr struct{ inner Expr }

func (e choiceExpr) Expand(assoc int) ([]Query, error) {
	qs, err := e.inner.Expand(assoc)
	if err != nil {
		return nil, err
	}
	var out []Query
	seen := make(map[blocks.Block]bool)
	for _, q := range qs {
		for _, b := range q.Blocks() {
			if !seen[b] {
				seen[b] = true
				out = append(out, Query{Op{Block: b}})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mbl: empty choice []")
	}
	return out, nil
}

func (e choiceExpr) String() string { return "[" + e.inner.String() + "]" }

// powerExpr is (s)^k.
type powerExpr struct {
	inner Expr
	k     int
}

func (e powerExpr) Expand(assoc int) ([]Query, error) {
	parts := make([]Expr, e.k)
	for i := range parts {
		parts[i] = e.inner
	}
	return concatExpr{parts: parts}.Expand(assoc)
}

func (e powerExpr) String() string { return fmt.Sprintf("(%s)%d", e.inner.String(), e.k) }

// tagExpr applies a tag to every block of every query of s.
type tagExpr struct {
	inner Expr
	tag   Tag
}

func (e tagExpr) Expand(assoc int) ([]Query, error) {
	qs, err := e.inner.Expand(assoc)
	if err != nil {
		return nil, err
	}
	out := make([]Query, len(qs))
	for i, q := range qs {
		nq := make(Query, len(q))
		for j, o := range q {
			if o.Tag != TagNone {
				return nil, fmt.Errorf("mbl: tag %c applied to already-tagged block %s", e.tag, o)
			}
			nq[j] = Op{Block: o.Block, Tag: e.tag}
		}
		out[i] = nq
	}
	return out, nil
}

func (e tagExpr) String() string { return "(" + e.inner.String() + ")" + string(e.tag) }
