package daemon

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/learn"
	"repro/internal/polca"
)

// jobState is the lifecycle of a learning job. Jobs move
// pending -> running -> {done, failed, canceled}; canceled covers both an
// explicit DELETE and a daemon drain (the engine store keeps every answer
// the job already obtained, so a resubmitted job resumes from there).
type jobState string

const (
	jobPending  jobState = "pending"
	jobRunning  jobState = "running"
	jobDone     jobState = "done"
	jobFailed   jobState = "failed"
	jobCanceled jobState = "canceled"
)

// job is one learning run over a shared engine.
type job struct {
	id     string
	eng    *engine
	opt    learn.Options
	cancel context.CancelFunc
	done   chan struct{}

	mu         sync.Mutex
	state      jobState
	errMsg     string
	model      []byte // learned machine JSON (mealy (*Machine).Save bytes)
	states     int    // learned machine control-state count
	artifact   string // models-dir file the model was published to
	learnStats learn.Stats
	created    time.Time
	finished   time.Time
}

// jobStatus is the GET /v1/jobs/{id} document (and the SSE event payload).
// Oracle counters are the engine's cumulative stats — the engine is shared,
// so they can only grow while the job runs; a warm engine starts non-zero.
type jobStatus struct {
	ID         string       `json:"id"`
	Policy     string       `json:"policy"`
	Assoc      int          `json:"assoc"`
	Algo       string       `json:"algo"`
	Suite      string       `json:"suite"`
	Depth      int          `json:"depth"`
	State      jobState     `json:"state"`
	Error      string       `json:"error,omitempty"`
	Created    time.Time    `json:"created"`
	Finished   *time.Time   `json:"finished,omitempty"`
	Oracle     polca.Stats  `json:"oracle"`
	OutNodes   int          `json:"store_out_nodes"`
	ProbeNodes int          `json:"store_probe_nodes"`
	Learn      *learn.Stats `json:"learn,omitempty"`
	States     int          `json:"model_states,omitempty"`
	ModelURL   string       `json:"model_url,omitempty"`
	Artifact   string       `json:"artifact,omitempty"`
}

// snapshot assembles the live status document for a job.
func (j *job) snapshot() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	outN, probeN := j.eng.oracle.StoreFootprint()
	st := jobStatus{
		ID:         j.id,
		Policy:     j.eng.policy,
		Assoc:      j.eng.assoc,
		Algo:       j.opt.Algo.String(),
		Suite:      j.opt.Suite.String(),
		Depth:      j.opt.Depth,
		State:      j.state,
		Error:      j.errMsg,
		Created:    j.created,
		Oracle:     j.eng.oracle.Stats(),
		OutNodes:   outN,
		ProbeNodes: probeN,
		Artifact:   j.artifact,
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state == jobDone {
		ls := j.learnStats
		st.Learn = &ls
		st.States = j.states
		st.ModelURL = "/v1/jobs/" + j.id + "/model"
	}
	return st
}

// modelBytes returns the learned machine JSON once the job is done.
func (j *job) modelBytes() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != jobDone {
		return nil, false
	}
	return j.model, true
}

// startJob registers and launches a learning job on the shared engine for
// (policyName, assoc). The job runs on its own goroutine under the server's
// base context, so a drain cancels it at the next query boundary.
func (s *Server) startJob(policyName string, assoc int, opt learn.Options) (*job, error) {
	eng, err := s.engineFor(policyName, assoc)
	if err != nil {
		return nil, err
	}
	if opt.Depth == 0 {
		opt.Depth = 1
	}
	if opt.MaxStates == 0 {
		opt.MaxStates = 100000
	}
	ctx, cancel := context.WithCancel(s.baseCtx)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, errDraining
	}
	s.jobSeq++
	j := &job{
		id:      fmt.Sprintf("j%04d", s.jobSeq),
		eng:     eng,
		opt:     opt,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   jobPending,
		created: time.Now(),
	}
	s.jobs[j.id] = j
	s.jobWG.Add(1)
	s.mu.Unlock()

	go s.runJob(ctx, j)
	return j, nil
}

var errDraining = errors.New("daemon: draining, not accepting work")

// runJob executes one learning job to completion (or cancellation) and
// persists its results: the learned-machine JSON into the models dir and a
// final engine snapshot, so both the artifact and the query store survive a
// restart. Runs on its own goroutine; jobWG tracks it for drain.
func (s *Server) runJob(ctx context.Context, j *job) {
	defer s.jobWG.Done()
	defer j.cancel()
	j.mu.Lock()
	j.state = jobRunning
	j.mu.Unlock()
	s.cfg.Logf("daemon: job %s: learning %s-%d (%s/%s)", j.id, j.eng.policy, j.eng.assoc, j.opt.Algo, j.opt.Suite)

	res, err := learn.Learn(ctx, j.eng.oracle, j.opt)

	// Whatever happened, persist the engine store: a canceled job's
	// answered queries are the checkpoint the resubmitted job resumes
	// from.
	if j.eng.snapPath != "" {
		if serr := s.saveEngineSnapshot(j.eng); serr != nil {
			s.cfg.Logf("daemon: job %s: final snapshot: %v", j.id, serr)
		}
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case err == nil:
		var buf bytes.Buffer
		if serr := res.Machine.Save(&buf); serr != nil {
			j.state = jobFailed
			j.errMsg = serr.Error()
			break
		}
		j.state = jobDone
		j.model = buf.Bytes()
		j.states = res.Machine.NumStates
		j.learnStats = res.Stats
		if s.cfg.ModelsDir != "" {
			name := fmt.Sprintf("%s-%d.learned.json", j.eng.policy, j.eng.assoc)
			if werr := writeFileAtomic(filepath.Join(s.cfg.ModelsDir, name), j.model); werr != nil {
				s.cfg.Logf("daemon: job %s: artifact: %v", j.id, werr)
			} else {
				j.artifact = name
			}
		}
		s.cfg.Logf("daemon: job %s: done, %d states, %d output queries",
			j.id, res.Machine.NumStates, res.Stats.OutputQueries)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.state = jobCanceled
		j.errMsg = err.Error()
		s.cfg.Logf("daemon: job %s: canceled (%v)", j.id, err)
	default:
		j.state = jobFailed
		j.errMsg = err.Error()
		s.cfg.Logf("daemon: job %s: failed: %v", j.id, err)
	}
	close(j.done)
}

// saveEngineSnapshot serializes concurrent final saves of one engine (two
// jobs on the same engine can finish together; the oracle's checkpointer
// has its own serialization, this path needs one too).
func (s *Server) saveEngineSnapshot(eng *engine) error {
	eng.snapMu.Lock()
	defer eng.snapMu.Unlock()
	return saveSnapshotFor(eng)
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// jobList returns every job's status, ordered by id.
func (s *Server) jobList() []jobStatus {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	out := make([]jobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// writeFileAtomic writes data through a temp file and a rename, mirroring
// the snapshot layer's crash discipline for model artifacts.
func writeFileAtomic(path string, data []byte) error {
	fh, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := fh.Name()
	if _, err := fh.Write(data); err != nil {
		fh.Close()
		os.Remove(tmp)
		return err
	}
	if err := fh.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// CreateTemp opens 0600; published artifacts should be world-readable
	// like the committed models they sit next to.
	if err := os.Chmod(tmp, 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
