package daemon

import (
	"math"
	"sync"
	"time"
)

// quotaTable holds one token bucket per tenant. Tenants are identified by
// the X-Tenant request header (or "default" when absent); buckets are
// created on first sight with a full burst. A zero rate disables quotas
// entirely — every charge succeeds and no headers are emitted.
type quotaTable struct {
	rate  float64 // tokens per second; 0 = quotas off
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(rate, burst float64) *quotaTable {
	return &quotaTable{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// enabled reports whether quotas are enforced at all.
func (q *quotaTable) enabled() bool { return q.rate > 0 }

// charge tries to deduct cost tokens from the tenant's bucket at time now.
// It returns whether the charge succeeded, the tokens remaining afterwards,
// and — on refusal — how long the tenant must wait before the bucket holds
// cost tokens again (the Retry-After hint). A cost above the burst can
// never succeed; retry reports the time to fill the whole bucket so the
// client sees a finite, honest bound.
func (q *quotaTable) charge(tenant string, cost float64, now time.Time) (ok bool, remaining float64, retry time.Duration) {
	if !q.enabled() {
		return true, math.Inf(1), 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, found := q.buckets[tenant]
	if !found {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	// Refill since the last touch, capped at the burst.
	b.tokens = math.Min(q.burst, b.tokens+now.Sub(b.last).Seconds()*q.rate)
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return true, b.tokens, 0
	}
	missing := math.Min(cost, q.burst) - b.tokens
	retry = time.Duration(missing / q.rate * float64(time.Second))
	if retry < time.Second {
		retry = time.Second
	}
	return false, b.tokens, retry
}
