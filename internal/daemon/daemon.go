// Package daemon implements polcad, the learning-as-a-service HTTP daemon:
// the whole CacheQuery reproduction pipeline — membership/output queries,
// learning jobs with live progress, and the model-artifact zoo — served
// from one long-running multi-tenant process.
//
// The daemon is multi-tenant by construction. All clients of a
// (policy, associativity) pair share one engine: a single Polca oracle over
// one compiled policy.Table, backed by the lock-striped qstore, so every
// answer any client ever obtained is memoized for all of them. Duplicate
// in-flight query requests are single-flighted across tenants (the second
// request waits for the first instead of re-executing), per-tenant
// token-bucket quotas bound what any one client can burn, and graceful
// drain on SIGTERM cancels running jobs at a query boundary and writes a
// final snapshot of every engine, so a restarted daemon resumes warm.
//
// Persistence rides the snapshot layer of internal/qstore: engines load
// warm snapshots on boot, checkpoint periodically during learning jobs, and
// save on drain — all through the same scope-checked, CRC-verified,
// atomic-rename path as cmd/polca's -resume flag, so daemon snapshots and
// CLI snapshots are interchangeable.
//
// See docs/API.md for the full endpoint reference and cmd/polcad for the
// binary.
package daemon

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/polca"
	"repro/internal/policy"
	"repro/internal/remote"
)

// Config tunes a Server. The zero value serves queries and jobs from
// memory with no persistence and no quotas.
type Config struct {
	// ModelsDir is browsed by GET /v1/models and receives the
	// "<policy>-<assoc>.learned.json" artifact of every completed learning
	// job. Empty disables the models endpoints' filesystem side.
	ModelsDir string
	// SnapshotDir, when set, persists one qstore snapshot per engine:
	// loaded (scope-checked) on engine creation, checkpointed every
	// CheckpointEvery output queries during jobs, and saved on drain.
	SnapshotDir string
	// CheckpointEvery is the auto-checkpoint cadence in output queries
	// (default 256; requires SnapshotDir).
	CheckpointEvery int
	// QuotaRate is the per-tenant token refill rate in tokens per second;
	// 0 disables quotas. Queries cost one token per word, job submissions
	// cost JobCost.
	QuotaRate float64
	// QuotaBurst is the per-tenant bucket capacity (default 64 when
	// QuotaRate is set).
	QuotaBurst float64
	// Sim configures the simulator stack under every engine: compiled vs
	// interpreted kernel, batched engine, worker caps, fault injection.
	Sim core.SimOptions
	// EventInterval is the SSE progress cadence (default 250ms).
	EventInterval time.Duration
	// Logf receives one line per notable daemon event (boot, engine
	// creation, job transitions, drain). Nil discards them.
	Logf func(format string, args ...any)
}

// JobCost is the quota charge of one job submission, in tokens. Learning
// runs thousands of backend probes, so a job is priced far above a query.
const JobCost = 10

// Server is the daemon state shared by every request: the engine registry,
// the job table, the per-tenant quota buckets and the query single-flight
// group. Create with New, serve via Handler, stop with Close.
type Server struct {
	cfg   Config
	start time.Time

	// baseCtx is canceled first thing in Close: jobs and SSE streams
	// derive from it, so drain unwinds them at the next query boundary.
	baseCtx  context.Context
	baseStop context.CancelFunc

	mu      sync.Mutex
	engines map[engineKey]*engine
	jobs    map[string]*job
	jobSeq  int
	closed  bool

	jobWG  sync.WaitGroup
	quotas *quotaTable
	flight *flightGroup
}

type engineKey struct {
	policy string
	assoc  int
}

// engine is the shared per-(policy, assoc) serving unit: one oracle over
// one compiled table and one striped query store, used by every query
// request and learning job for that pair.
type engine struct {
	policy   string // canonical name
	assoc    int
	oracle   *polca.Oracle
	fleet    *remote.Fleet // nil = local probes; owned by the engine, closed on drain
	scope    string
	snapPath string // "" = no persistence
	warm     bool   // a snapshot was loaded at creation
	created  time.Time
	snapMu   sync.Mutex // serializes explicit (non-checkpointer) snapshot saves
}

// saveSnapshotFor writes eng's store to its snapshot path through the
// shared atomic-rename path. Callers hold eng.snapMu via
// Server.saveEngineSnapshot.
func saveSnapshotFor(eng *engine) error {
	return core.SaveOracleSnapshot(eng.oracle, eng.snapPath, eng.scope)
}

// New builds a Server from cfg, applying defaults. No goroutines start
// until the first job; engines are created lazily on first use.
func New(cfg Config) *Server {
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 256
	}
	if cfg.QuotaRate > 0 && cfg.QuotaBurst <= 0 {
		cfg.QuotaBurst = 64
	}
	if cfg.EventInterval <= 0 {
		cfg.EventInterval = 250 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, stop := context.WithCancel(context.Background())
	return &Server{
		cfg:      cfg,
		start:    time.Now(),
		baseCtx:  ctx,
		baseStop: stop,
		engines:  make(map[engineKey]*engine),
		jobs:     make(map[string]*job),
		quotas:   newQuotaTable(cfg.QuotaRate, cfg.QuotaBurst),
		flight:   newFlightGroup(),
	}
}

// engineFor returns the shared engine for a policy/associativity pair,
// creating (and warm-starting) it under the registry lock on first use.
// The policy name is canonicalized, so "lru" and "LRU" share one engine.
func (s *Server) engineFor(policyName string, assoc int) (*engine, error) {
	pol, err := policy.New(policyName, assoc)
	if err != nil {
		return nil, err
	}
	key := engineKey{pol.Name(), assoc}
	s.mu.Lock()
	defer s.mu.Unlock()
	if eng, ok := s.engines[key]; ok {
		return eng, nil
	}
	oracle, fleet, canonical, scope, err := core.NewSimOracleFleet(policyName, assoc, s.cfg.Sim)
	if err != nil {
		return nil, err
	}
	if fleet != nil {
		// Warm-up mirrors LearnSimulatedSim: reachability is fatal (a
		// misconfigured fleet should fail the first request loudly),
		// snapshot leveling is best-effort.
		if err := fleet.Ping(s.baseCtx); err != nil {
			fleet.Close()
			return nil, fmt.Errorf("daemon: fleet warm-up: %w", err)
		}
		if shipped := fleet.SyncSnapshots(s.baseCtx); shipped > 0 {
			s.cfg.Logf("daemon: engine %s-%d fleet warm-up shipped %d snapshots", canonical, assoc, shipped)
		}
	}
	eng := &engine{
		policy:  canonical,
		assoc:   assoc,
		oracle:  oracle,
		fleet:   fleet,
		scope:   scope,
		created: time.Now(),
	}
	if s.cfg.SnapshotDir != "" {
		eng.snapPath = core.SnapshotPathInDir(s.cfg.SnapshotDir, canonical, assoc)
		warm, err := core.LoadOracleSnapshot(oracle, eng.snapPath, scope, true)
		if err != nil {
			return nil, err
		}
		eng.warm = warm
		oracle.SetCheckpointer(s.cfg.CheckpointEvery, func() {
			if err := core.SaveOracleSnapshot(oracle, eng.snapPath, scope); err != nil {
				s.cfg.Logf("daemon: checkpoint %s: %v", eng.snapPath, err)
			}
		})
	}
	s.engines[key] = eng
	s.cfg.Logf("daemon: engine %s-%d up (warm=%v)", canonical, assoc, eng.warm)
	return eng, nil
}

// snapshotEngines writes a final snapshot for every persistent engine.
// Used by Close so a drained daemon restarts warm even when no checkpoint
// window elapsed.
func (s *Server) snapshotEngines() {
	s.mu.Lock()
	engines := make([]*engine, 0, len(s.engines))
	for _, eng := range s.engines {
		engines = append(engines, eng)
	}
	s.mu.Unlock()
	for _, eng := range engines {
		if eng.snapPath == "" {
			continue
		}
		if err := s.saveEngineSnapshot(eng); err != nil {
			s.cfg.Logf("daemon: drain snapshot %s: %v", eng.snapPath, err)
		} else {
			s.cfg.Logf("daemon: drain snapshot %s written", eng.snapPath)
		}
	}
}

// Close drains the server: new requests are refused with 503, running jobs
// are canceled at their next query boundary (their progress survives in the
// engine stores), job goroutines are awaited up to ctx's deadline, and
// every persistent engine writes a final snapshot. Close is idempotent; it
// returns ctx.Err() when the drain deadline expired before the jobs
// finished unwinding (snapshots are still written from whatever state the
// stores reached).
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.cfg.Logf("daemon: draining")
	s.baseStop()
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	s.snapshotEngines()
	s.closeFleets()
	s.cfg.Logf("daemon: drained")
	return err
}

// closeFleets releases every fleet-backed engine's worker connections.
func (s *Server) closeFleets() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, eng := range s.engines {
		if eng.fleet != nil {
			eng.fleet.Close()
		}
	}
}

// draining reports whether Close has started.
func (s *Server) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Uptime is the time since New.
func (s *Server) Uptime() time.Duration { return time.Since(s.start) }

// engineStatus is one engine's row in the status document.
type engineStatus struct {
	Policy     string      `json:"policy"`
	Assoc      int         `json:"assoc"`
	Warm       bool        `json:"warm"`
	Snapshot   string      `json:"snapshot,omitempty"`
	Stats      polca.Stats `json:"stats"`
	OutNodes   int         `json:"store_out_nodes"`
	ProbeNodes int         `json:"store_probe_nodes"`
}

// statusDoc is the GET /v1/status document.
type statusDoc struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	Draining      bool           `json:"draining"`
	Engines       []engineStatus `json:"engines"`
	Jobs          jobCounts      `json:"jobs"`
}

type jobCounts struct {
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

// status assembles the live status document.
func (s *Server) status() statusDoc {
	s.mu.Lock()
	engines := make([]*engine, 0, len(s.engines))
	for _, eng := range s.engines {
		engines = append(engines, eng)
	}
	var counts jobCounts
	for _, j := range s.jobs {
		switch j.snapshot().State {
		case jobRunning, jobPending:
			counts.Running++
		case jobDone:
			counts.Done++
		case jobFailed:
			counts.Failed++
		case jobCanceled:
			counts.Canceled++
		}
	}
	closed := s.closed
	s.mu.Unlock()

	doc := statusDoc{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      closed,
		Jobs:          counts,
		Engines:       make([]engineStatus, 0, len(engines)),
	}
	for _, eng := range engines {
		outN, probeN := eng.oracle.StoreFootprint()
		doc.Engines = append(doc.Engines, engineStatus{
			Policy:     eng.policy,
			Assoc:      eng.assoc,
			Warm:       eng.warm,
			Snapshot:   eng.snapPath,
			Stats:      eng.oracle.Stats(),
			OutNodes:   outN,
			ProbeNodes: probeN,
		})
	}
	sort.Slice(doc.Engines, func(i, j int) bool {
		a, b := doc.Engines[i], doc.Engines[j]
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		return a.Assoc < b.Assoc
	})
	return doc
}

// Stderr is the default Logf target used by cmd/polcad.
func Stderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}
