package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/learn"
	"repro/internal/policy"
)

// Handler builds the daemon's HTTP surface. Routes and schemas are
// documented in docs/API.md; keep the two in sync (the docs CI job checks
// the transcripts against a live daemon).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/model", s.handleJobModel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/models", s.handleModelList)
	mux.HandleFunc("GET /v1/models/{name}", s.handleModelGet)
	return mux
}

// errorDoc is the uniform error body: a stable machine-readable code plus a
// human-readable message. The HTTP status carries the class.
type errorDoc struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorDoc{Error: fmt.Sprintf(format, args...), Code: code})
}

// refuseDraining answers 503 once Close has started. Every endpoint calls
// it first, so a draining daemon turns work away instead of racing the
// engine snapshots.
func (s *Server) refuseDraining(w http.ResponseWriter) bool {
	if !s.draining() {
		return false
	}
	writeErr(w, http.StatusServiceUnavailable, "draining", "daemon is draining")
	return true
}

// tenant extracts the client identity the quota buckets are keyed by.
func tenant(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// chargeQuota deducts cost tokens from the requesting tenant and stamps
// the quota headers; on exhaustion it answers 429 (with Retry-After) and
// reports false.
func (s *Server) chargeQuota(w http.ResponseWriter, r *http.Request, cost float64) bool {
	if !s.quotas.enabled() {
		return true
	}
	ok, remaining, retry := s.quotas.charge(tenant(r), cost, time.Now())
	w.Header().Set("X-Quota-Limit", strconv.FormatFloat(s.cfg.QuotaBurst, 'f', -1, 64))
	w.Header().Set("X-Quota-Remaining", strconv.FormatFloat(math.Floor(remaining), 'f', -1, 64))
	if ok {
		return true
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
	writeErr(w, http.StatusTooManyRequests, "quota_exhausted",
		"tenant %q is out of quota (cost %g, remaining %g); retry after %v", tenant(r), cost, math.Floor(remaining), retry)
	return false
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.status())
}

// queryRequest is the POST /v1/query body. Words are policy input symbols:
// 0..assoc-1 encode Ln(i) (a hit on cache line i), assoc encodes Evct (a
// miss needing a free line). Outputs mirror the words: -1 is ⊥ (Ln inputs),
// otherwise the index of the line the policy evicts.
type queryRequest struct {
	Policy string  `json:"policy"`
	Assoc  int     `json:"assoc"`
	Word   []int   `json:"word,omitempty"`
	Words  [][]int `json:"words,omitempty"`
}

type queryResponse struct {
	Policy  string  `json:"policy"`
	Assoc   int     `json:"assoc"`
	Outputs [][]int `json:"outputs"`
	// Coalesced reports that this answer was shared with an identical
	// in-flight request (cross-tenant single-flighting).
	Coalesced bool `json:"coalesced,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	words := req.Words
	if req.Word != nil {
		if words != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "pass word or words, not both")
			return
		}
		words = [][]int{req.Word}
	}
	if len(words) == 0 {
		writeErr(w, http.StatusBadRequest, "bad_request", "no query words")
		return
	}
	if req.Assoc <= 0 {
		writeErr(w, http.StatusBadRequest, "bad_request", "assoc must be positive")
		return
	}
	numIn := policy.NumInputs(req.Assoc)
	for wi, word := range words {
		if len(word) == 0 {
			writeErr(w, http.StatusBadRequest, "bad_request", "words[%d] is empty", wi)
			return
		}
		for si, sym := range word {
			if sym < 0 || sym >= numIn {
				writeErr(w, http.StatusBadRequest, "bad_request",
					"words[%d][%d] = %d out of range: inputs are 0..%d-1 for Ln(i) and %d for Evct",
					wi, si, sym, req.Assoc, req.Assoc)
				return
			}
		}
	}
	if !s.chargeQuota(w, r, float64(len(words))) {
		return
	}
	eng, err := s.engineFor(req.Policy, req.Assoc)
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_policy", "%v", err)
		return
	}
	// Identical concurrent requests single-flight on (policy, assoc,
	// words); the execution runs under the daemon's base context so a
	// departing client cannot cancel an answer other tenants wait on.
	outs, shared, err := s.flight.do(flightKey(eng, words), func() ([][]int, error) {
		return eng.oracle.OutputQueryBatch(s.baseCtx, words)
	})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "query_failed", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{Policy: eng.policy, Assoc: eng.assoc, Outputs: outs, Coalesced: shared})
}

// flightKey canonically encodes one query request for the single-flight
// group.
func flightKey(eng *engine, words [][]int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s-%d", eng.policy, eng.assoc)
	for _, w := range words {
		b.WriteByte('|')
		for _, sym := range w {
			fmt.Fprintf(&b, "%d,", sym)
		}
	}
	return b.String()
}

// jobRequest is the POST /v1/jobs body. Defaults mirror cmd/polca: L*
// learner, Wp-suite, depth 1, 100k state budget.
type jobRequest struct {
	Policy    string `json:"policy"`
	Assoc     int    `json:"assoc"`
	Algo      string `json:"algo,omitempty"`
	Suite     string `json:"suite,omitempty"`
	Depth     int    `json:"depth,omitempty"`
	MaxStates int    `json:"max_states,omitempty"`
	WalkSteps int    `json:"walk_steps,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.refuseDraining(w) {
		return
	}
	var req jobRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	if req.Assoc <= 0 {
		writeErr(w, http.StatusBadRequest, "bad_request", "assoc must be positive")
		return
	}
	opt := learn.Options{
		Depth:           req.Depth,
		MaxStates:       req.MaxStates,
		RandomWalkSteps: req.WalkSteps,
		RandomWalkSeed:  req.Seed,
	}
	var err error
	if req.Algo != "" {
		if opt.Algo, err = learn.ParseAlgo(req.Algo); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
	}
	if req.Suite != "" {
		if opt.Suite, err = learn.ParseSuite(req.Suite); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "%v", err)
			return
		}
	}
	if !s.chargeQuota(w, r, JobCost) {
		return
	}
	j, err := s.startJob(req.Policy, req.Assoc, opt)
	if err != nil {
		if errors.Is(err, errDraining) {
			writeErr(w, http.StatusServiceUnavailable, "draining", "daemon is draining")
			return
		}
		writeErr(w, http.StatusNotFound, "unknown_policy", "%v", err)
		return
	}
	st := j.snapshot()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobList()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id"))
		return
	}
	j.cancel()
	<-j.done
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (s *Server) handleJobModel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id"))
		return
	}
	data, ok := j.modelBytes()
	if !ok {
		writeErr(w, http.StatusNotFound, "model_not_ready", "job %s is %s, model available once done", j.id, j.snapshot().State)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleJobEvents streams jobStatus documents as server-sent events: a
// "progress" event every EventInterval while the job runs (live oracle
// counters included), then one terminal "done"/"failed"/"canceled" event,
// then the stream closes. A draining daemon ends streams after the job's
// cancellation lands, so SIGTERM never hangs on an open SSE connection.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_job", "no job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "no_stream", "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func(event string, st jobStatus) {
		data, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}
	terminal := func() bool {
		st := j.snapshot()
		switch st.State {
		case jobDone, jobFailed, jobCanceled:
			emit(string(st.State), st)
			return true
		}
		return false
	}
	if terminal() {
		return
	}
	emit("progress", j.snapshot())
	tick := time.NewTicker(s.cfg.EventInterval)
	defer tick.Stop()
	for {
		select {
		case <-j.done:
			terminal()
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
			if terminal() {
				return
			}
			emit("progress", j.snapshot())
		}
	}
}

// modelEntry is one row of GET /v1/models.
type modelEntry struct {
	Name     string    `json:"name"`
	Bytes    int64     `json:"bytes"`
	Modified time.Time `json:"modified"`
}

func (s *Server) handleModelList(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ModelsDir == "" {
		writeJSON(w, http.StatusOK, map[string]any{"models": []modelEntry{}})
		return
	}
	entries, err := os.ReadDir(s.cfg.ModelsDir)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "models_dir", "%v", err)
		return
	}
	models := make([]modelEntry, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		models = append(models, modelEntry{Name: e.Name(), Bytes: info.Size(), Modified: info.ModTime().UTC()})
	}
	sort.Slice(models, func(i, j int) bool { return models[i].Name < models[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"models": models})
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.cfg.ModelsDir == "" || !validModelName(name) {
		writeErr(w, http.StatusNotFound, "unknown_model", "no model %q", name)
		return
	}
	data, err := os.ReadFile(filepath.Join(s.cfg.ModelsDir, name))
	if err != nil {
		writeErr(w, http.StatusNotFound, "unknown_model", "no model %q", name)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// validModelName admits exactly the artifact names the daemon and
// cmd/genmodels produce — defense against path traversal through the
// {name} wildcard.
func validModelName(name string) bool {
	if !strings.HasSuffix(name, ".json") || strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// decodeBody strictly decodes a JSON request body: unknown fields are
// rejected so schema typos fail loudly instead of silently defaulting.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}
