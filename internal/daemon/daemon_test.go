package daemon

// Lifecycle tests for the polcad server: these drive the real HTTP surface
// (httptest over Handler) and assert the daemon's multi-tenant claims by
// observable counters — probe counts for single-flighting, 429s for quotas,
// snapshot files and byte-identical models for drain/resume.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faulty"
	"repro/internal/learn"
)

// testServer wires a Server to an httptest listener and tears both down.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return srv, ts
}

// postJSON posts body to url and decodes the JSON response into out,
// returning the raw response for header/status checks.
func postJSON(t *testing.T, client *http.Client, url, tenant string, body string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s response %q: %v", url, data, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s response %q: %v", url, data, err)
		}
	}
	return resp
}

// waitJob polls a job until it reaches a terminal state.
func waitJob(t *testing.T, base, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		var st jobStatus
		getJSON(t, base+"/v1/jobs/"+id, &st)
		switch st.State {
		case jobDone, jobFailed, jobCanceled:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobStatus{}
}

// referenceModel learns policyName-assoc through the same library seams the
// daemon uses (core.NewSimOracle + learn.Learn) and returns the serialized
// machine — the byte-identical target for daemon-served models.
func referenceModel(t *testing.T, policyName string, assoc int, opt learn.Options) []byte {
	t.Helper()
	oracle, _, _, err := core.NewSimOracle(policyName, assoc, core.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := learn.Learn(context.Background(), oracle, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Machine.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestQueryEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{})
	var resp queryResponse
	hr := postJSON(t, ts.Client(), ts.URL+"/v1/query", "",
		`{"policy":"lru","assoc":4,"word":[4,4,4,4,0,4]}`, &resp)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", hr.StatusCode)
	}
	if resp.Policy != "LRU" {
		t.Errorf("policy not canonicalized: %q", resp.Policy)
	}
	want := []int{0, 1, 2, 3, -1, 1}
	if len(resp.Outputs) != 1 || fmt.Sprint(resp.Outputs[0]) != fmt.Sprint(want) {
		t.Errorf("outputs = %v, want [%v]", resp.Outputs, want)
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"both word and words", `{"policy":"LRU","assoc":4,"word":[0],"words":[[0]]}`, 400, "bad_request"},
		{"no words", `{"policy":"LRU","assoc":4}`, 400, "bad_request"},
		{"empty word", `{"policy":"LRU","assoc":4,"words":[[]]}`, 400, "bad_request"},
		{"zero assoc", `{"policy":"LRU","word":[0]}`, 400, "bad_request"},
		{"symbol out of range", `{"policy":"LRU","assoc":4,"word":[5]}`, 400, "bad_request"},
		{"unknown field", `{"policy":"LRU","assoc":4,"word":[0],"bogus":1}`, 400, "bad_request"},
		{"unknown policy", `{"policy":"NOPE","assoc":4,"word":[0]}`, 404, "unknown_policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ed errorDoc
			hr := postJSON(t, ts.Client(), ts.URL+"/v1/query", "", tc.body, &ed)
			if hr.StatusCode != tc.status || ed.Code != tc.code {
				t.Errorf("got %d/%q, want %d/%q (%s)", hr.StatusCode, ed.Code, tc.status, tc.code, ed.Error)
			}
		})
	}
}

// TestQuerySingleFlight proves cross-tenant coalescing with backend probe
// counters: N concurrent identical queries against a stalled backend must
// cost exactly as many probes as one isolated query, and at least one
// response must be marked coalesced.
func TestQuerySingleFlight(t *testing.T) {
	const word = `{"policy":"LRU","assoc":4,"word":[4,4,4,4,0,4]}`
	// Every probe stalls 5ms so the concurrent duplicates below are
	// reliably in flight together. (The fault wrapper also hides the
	// whole-word prober interface, changing the probe granularity — which
	// is why the isolated baseline must run on the same config.)
	stalled := core.SimOptions{Faults: &faulty.Plan{Seed: 1, StallRate: 1, StallFor: 5 * time.Millisecond}}

	// Isolated run: one query on a fresh server establishes the probe cost.
	soloSrv, soloTS := testServer(t, Config{Sim: stalled})
	postJSON(t, soloTS.Client(), soloTS.URL+"/v1/query", "", word, nil)
	soloProbes := soloSrv.status().Engines[0].Stats.Probes
	if soloProbes == 0 {
		t.Fatal("isolated query issued no probes")
	}

	// Shared run: the duplicates must wait on the leader instead of
	// re-probing.
	srv, ts := testServer(t, Config{Sim: stalled})
	const clients = 8
	var wg sync.WaitGroup
	coalesced := make([]bool, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var resp queryResponse
			postJSON(t, ts.Client(), ts.URL+"/v1/query", fmt.Sprintf("tenant-%d", c), word, &resp)
			coalesced[c] = resp.Coalesced
		}(c)
	}
	wg.Wait()

	probes := srv.status().Engines[0].Stats.Probes
	if probes != soloProbes {
		t.Errorf("%d concurrent identical queries cost %d probes, want %d (single-flight failed)",
			clients, probes, soloProbes)
	}
	var anyShared bool
	for _, c := range coalesced {
		anyShared = anyShared || c
	}
	if !anyShared {
		t.Error("no response was marked coalesced")
	}
}

func TestQuotaExhaustion(t *testing.T) {
	// Effectively non-refilling bucket with room for 2 one-word queries.
	_, ts := testServer(t, Config{QuotaRate: 1e-9, QuotaBurst: 2})
	const body = `{"policy":"LRU","assoc":2,"word":[0]}`

	for i := 0; i < 2; i++ {
		hr := postJSON(t, ts.Client(), ts.URL+"/v1/query", "alice", body, nil)
		if hr.StatusCode != http.StatusOK {
			t.Fatalf("query %d: status %d", i, hr.StatusCode)
		}
		if hr.Header.Get("X-Quota-Limit") != "2" {
			t.Errorf("X-Quota-Limit = %q, want 2", hr.Header.Get("X-Quota-Limit"))
		}
	}
	var ed errorDoc
	hr := postJSON(t, ts.Client(), ts.URL+"/v1/query", "alice", body, &ed)
	if hr.StatusCode != http.StatusTooManyRequests || ed.Code != "quota_exhausted" {
		t.Fatalf("exhausted tenant got %d/%q, want 429/quota_exhausted", hr.StatusCode, ed.Code)
	}
	if hr.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Quotas are per tenant: a different identity still has budget.
	if hr := postJSON(t, ts.Client(), ts.URL+"/v1/query", "bob", body, nil); hr.StatusCode != http.StatusOK {
		t.Errorf("fresh tenant got %d, want 200", hr.StatusCode)
	}
	// Jobs cost JobCost tokens, far above alice's remaining budget.
	hr = postJSON(t, ts.Client(), ts.URL+"/v1/jobs", "alice", `{"policy":"LRU","assoc":2}`, &ed)
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Errorf("job submit on exhausted tenant got %d, want 429", hr.StatusCode)
	}
}

// TestJobModelParity runs a learning job through the HTTP API and requires
// the served model to be byte-identical to one learned directly through the
// library pipeline (the same bytes cmd/polca -save-model writes).
func TestJobModelParity(t *testing.T) {
	models := t.TempDir()
	_, ts := testServer(t, Config{ModelsDir: models})

	var st jobStatus
	hr := postJSON(t, ts.Client(), ts.URL+"/v1/jobs", "", `{"policy":"LRU","assoc":4}`, &st)
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", hr.StatusCode)
	}
	if loc := hr.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location = %q", loc)
	}
	st = waitJob(t, ts.URL, st.ID)
	if st.State != jobDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Learn == nil || st.Learn.OutputQueries == 0 {
		t.Error("done job has no learner stats")
	}
	if st.States == 0 || st.ModelURL == "" {
		t.Errorf("done job missing model info: states=%d url=%q", st.States, st.ModelURL)
	}

	resp, err := http.Get(ts.URL + st.ModelURL)
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := referenceModel(t, "LRU", 4, learn.Options{Depth: 1, MaxStates: 100000})
	if !bytes.Equal(served, want) {
		t.Errorf("daemon model differs from library pipeline model (%d vs %d bytes)", len(served), len(want))
	}

	// The artifact in the models dir is the same bytes, world-readable, and
	// browsable through /v1/models.
	if st.Artifact != "LRU-4.learned.json" {
		t.Fatalf("artifact = %q", st.Artifact)
	}
	onDisk, err := os.ReadFile(filepath.Join(models, st.Artifact))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, want) {
		t.Error("artifact file differs from model")
	}
	if info, err := os.Stat(filepath.Join(models, st.Artifact)); err == nil && info.Mode().Perm() != 0o644 {
		t.Errorf("artifact mode = %v, want 0644", info.Mode().Perm())
	}
	var list struct {
		Models []modelEntry `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/models", &list)
	if len(list.Models) != 1 || list.Models[0].Name != st.Artifact {
		t.Errorf("model list = %+v", list.Models)
	}
	var viaAPI json.RawMessage
	getJSON(t, ts.URL+"/v1/models/"+st.Artifact, &viaAPI)
	if !bytes.Equal(bytes.TrimSpace(viaAPI), bytes.TrimSpace(want)) {
		t.Error("GET /v1/models/{name} differs from model")
	}
}

// TestDrainResume kills a daemon mid-job and requires (a) the drain to
// cancel the job and leave a loadable checkpoint, and (b) a restarted
// daemon to resume warm from it, finish the job with strictly fewer probes
// than a cold run, and serve the byte-identical model.
func TestDrainResume(t *testing.T) {
	snaps := t.TempDir()
	stall := &faulty.Plan{Seed: 1, StallRate: 1, StallFor: 500 * time.Microsecond}

	// Cold reference run: total probe cost of the whole job, and the model.
	coldSrv, coldTS := testServer(t, Config{})
	var coldJob jobStatus
	postJSON(t, coldTS.Client(), coldTS.URL+"/v1/jobs", "", `{"policy":"LRU","assoc":4}`, &coldJob)
	coldJob = waitJob(t, coldTS.URL, coldJob.ID)
	if coldJob.State != jobDone {
		t.Fatalf("cold job ended %s: %s", coldJob.State, coldJob.Error)
	}
	coldProbes := coldSrv.status().Engines[0].Stats.Probes

	// First daemon: slow probes so the job is reliably mid-flight, then
	// drain. The canceled job's store must land in the snapshot.
	srv1 := New(Config{SnapshotDir: snaps, CheckpointEvery: 64,
		Sim: core.SimOptions{Faults: stall}})
	ts1 := httptest.NewServer(srv1.Handler())
	var st jobStatus
	hr := postJSON(t, ts1.Client(), ts1.URL+"/v1/jobs", "", `{"policy":"LRU","assoc":4}`, &st)
	if hr.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", hr.StatusCode)
	}
	for i := 0; srv1.status().Engines[0].Stats.Probes < 50; i++ {
		if i > 1000 {
			t.Fatal("job never started probing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv1.Close(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()
	// Close returned, so the job goroutine has unwound; read its final
	// state from the server directly (the listener is gone).
	j, ok := srv1.jobByID(st.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	final := j.snapshot()
	if final.State != jobCanceled {
		t.Fatalf("drained job state = %s, want canceled", final.State)
	}
	snapPath := core.SnapshotPathInDir(snaps, "LRU", 4)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("drain left no snapshot: %v", err)
	}

	// Second daemon on the same snapshot dir: warm engine, resumed job,
	// same model, strictly fewer probes than the cold run.
	srv2, ts2 := testServer(t, Config{SnapshotDir: snaps, CheckpointEvery: 64})
	var st2 jobStatus
	postJSON(t, ts2.Client(), ts2.URL+"/v1/jobs", "", `{"policy":"LRU","assoc":4}`, &st2)
	status := srv2.status()
	if len(status.Engines) != 1 || !status.Engines[0].Warm {
		t.Errorf("resumed engine not warm: %+v", status.Engines)
	}
	st2 = waitJob(t, ts2.URL, st2.ID)
	if st2.State != jobDone {
		t.Fatalf("resumed job ended %s: %s", st2.State, st2.Error)
	}
	resumeProbes := srv2.status().Engines[0].Stats.Probes
	if resumeProbes >= coldProbes {
		t.Errorf("resumed job probes = %d, want < cold %d", resumeProbes, coldProbes)
	}
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + st2.ID + "/model")
	if err != nil {
		t.Fatal(err)
	}
	resumed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	coldResp, err := http.Get(coldTS.URL + "/v1/jobs/" + coldJob.ID + "/model")
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := io.ReadAll(coldResp.Body)
	coldResp.Body.Close()
	if !bytes.Equal(resumed, cold) {
		t.Errorf("resumed model differs from cold model (%d vs %d bytes)", len(resumed), len(cold))
	}
}

// TestDrainingRefusal checks that a draining daemon turns work away with
// 503/draining instead of racing the final snapshots.
func TestDrainingRefusal(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	var ed errorDoc
	hr := postJSON(t, ts.Client(), ts.URL+"/v1/query", "", `{"policy":"LRU","assoc":2,"word":[0]}`, &ed)
	if hr.StatusCode != http.StatusServiceUnavailable || ed.Code != "draining" {
		t.Errorf("query on draining daemon got %d/%q, want 503/draining", hr.StatusCode, ed.Code)
	}
	var status statusDoc
	getJSON(t, ts.URL+"/v1/status", &status)
	if !status.Draining {
		t.Error("status does not report draining")
	}
}

// TestJobEvents consumes the SSE stream of a running job and requires at
// least one progress event with live oracle counters followed by a
// terminal done event, after which the stream closes.
func TestJobEvents(t *testing.T) {
	_, ts := testServer(t, Config{
		EventInterval: 5 * time.Millisecond,
		Sim:           core.SimOptions{Faults: &faulty.Plan{Seed: 1, StallRate: 1, StallFor: 200 * time.Microsecond}},
	})
	var st jobStatus
	postJSON(t, ts.Client(), ts.URL+"/v1/jobs", "", `{"policy":"LRU","assoc":2}`, &st)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []string
	var lastData jobStatus
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			events = append(events, name)
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if err := json.Unmarshal([]byte(data), &lastData); err != nil {
				t.Fatalf("bad event payload %q: %v", data, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("events = %v, want trailing done", events)
	}
	var progress int
	for _, e := range events {
		if e == "progress" {
			progress++
		}
	}
	if progress == 0 {
		t.Errorf("no progress events before done: %v", events)
	}
	if lastData.State != jobDone || lastData.ModelURL == "" {
		t.Errorf("terminal payload incomplete: %+v", lastData)
	}
	// A stream opened after completion yields exactly the terminal event.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replay, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if c := strings.Count(string(replay), "event: "); c != 1 || !strings.Contains(string(replay), "event: done") {
		t.Errorf("post-completion stream = %q, want single done event", replay)
	}
}

// TestJobCancel checks DELETE /v1/jobs/{id} cancels a running job.
func TestJobCancel(t *testing.T) {
	_, ts := testServer(t, Config{
		Sim: core.SimOptions{Faults: &faulty.Plan{Seed: 1, StallRate: 1, StallFor: time.Millisecond}},
	})
	var st jobStatus
	postJSON(t, ts.Client(), ts.URL+"/v1/jobs", "", `{"policy":"LRU","assoc":4}`, &st)
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var out jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.State != jobCanceled && out.State != jobDone {
		t.Fatalf("canceled job state = %s", out.State)
	}
}

func TestValidModelName(t *testing.T) {
	good := []string{"LRU-4.learned.json", "PLRU-8.json", "srrip_hp-4.learned.json"}
	bad := []string{"", "x", "../../etc/passwd", "a/b.json", `a\b.json`, "a..json.json/", "model.json5", "mo del.json"}
	for _, n := range good {
		if !validModelName(n) {
			t.Errorf("validModelName(%q) = false, want true", n)
		}
	}
	for _, n := range bad {
		if validModelName(n) {
			t.Errorf("validModelName(%q) = true, want false", n)
		}
	}
}
