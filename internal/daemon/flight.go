package daemon

import "sync"

// flightGroup single-flights identical in-flight query requests across
// tenants: when request B arrives for the exact (policy, assoc, words) key
// request A is already executing, B waits for A's answer instead of
// re-entering the oracle. The oracle's memo makes the duplicate cheap once
// A completes; the flight group removes the window where both are live and
// would probe the backend twice. Completed calls are evicted immediately —
// long-term deduplication is the store's job, not the flight group's.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	outs [][]int
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do executes fn under key, or waits for the identical in-flight call.
// shared reports whether the result came from another request's execution.
func (g *flightGroup) do(key string, fn func() ([][]int, error)) (outs [][]int, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.outs, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.outs, c.err = fn()
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.outs, false, c.err
}
