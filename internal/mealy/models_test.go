package mealy

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/policy"
)

// TestModelArtifacts verifies the published model files in models/ stay
// trace-equivalent to the policy implementations they were extracted from.
func TestModelArtifacts(t *testing.T) {
	specs := []struct {
		name  string
		assoc int
	}{
		{"FIFO", 4}, {"LRU", 4}, {"PLRU", 4}, {"PLRU", 8}, {"MRU", 4},
		{"LIP", 4}, {"SRRIP-HP", 4}, {"SRRIP-FP", 4}, {"New1", 4}, {"New2", 4},
	}
	for _, s := range specs {
		path := filepath.Join("..", "..", "models", fmt.Sprintf("%s-%d.json", s.name, s.assoc))
		fh, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with mealy.FromPolicy + Save)", path, err)
		}
		m, err := Load(fh)
		fh.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		truth, err := FromPolicy(policy.MustNew(s.name, s.assoc), 0)
		if err != nil {
			t.Fatal(err)
		}
		if eq, ce := m.Equivalent(truth); !eq {
			t.Errorf("%s: stale artifact, ce=%v", path, ce)
		}
	}
}
