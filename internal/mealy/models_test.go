package mealy

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/policy"
)

// TestModelArtifacts verifies the published model files in models/ stay
// trace-equivalent to the policy implementations they were extracted from.
// The artifact list is PublishedModels, shared with cmd/genmodels. The
// assoc-8 giants are skipped under -short to keep the race-enabled CI leg
// fast; the nightly full run covers them.
func TestModelArtifacts(t *testing.T) {
	for _, s := range PublishedModels() {
		if s.Heavy && testing.Short() {
			continue
		}
		path := filepath.Join("..", "..", "models", fmt.Sprintf("%s-%d.json", s.Name, s.Assoc))
		fh, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with mealy.FromPolicy + Save)", path, err)
		}
		m, err := Load(fh)
		fh.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		truth, err := FromPolicy(policy.MustNew(s.Name, s.Assoc), 0)
		if err != nil {
			t.Fatal(err)
		}
		if eq, ce := m.Equivalent(truth); !eq {
			t.Errorf("%s: stale artifact, ce=%v", path, ce)
		}
	}
}
