// Package mealy provides explicit deterministic Mealy machines: the common
// representation of replacement policies (Definition 2.1), learned
// hypotheses, and synthesized programs in the CacheQuery pipeline.
//
// The package supports extraction of the explicit machine from any
// policy.Policy by exhaustive state-space exploration, trace-equivalence
// checking with counterexample generation, minimization by partition
// refinement, characterizing sets for W-method conformance testing, and DOT
// export for inspection.
package mealy

import (
	"fmt"
	"strings"

	"repro/internal/intern"
	"repro/internal/policy"
)

// Machine is a deterministic Mealy machine with inputs 0..NumInputs-1.
// Outputs are arbitrary ints; the policy convention is policy.Bottom (-1)
// for ⊥ and a line index otherwise.
type Machine struct {
	NumStates int
	NumInputs int
	Init      int
	Next      [][]int // Next[s][a] = successor state
	Out       [][]int // Out[s][a] = output
	// StateNames optionally carries a human-readable name per state (the
	// policy StateKey for extracted machines). It may be nil.
	StateNames []string
}

// New allocates a machine with the given dimensions and all transitions
// looping on state 0 with output policy.Bottom.
func New(numStates, numInputs int) *Machine {
	m := &Machine{
		NumStates: numStates,
		NumInputs: numInputs,
		Next:      make([][]int, numStates),
		Out:       make([][]int, numStates),
	}
	for s := 0; s < numStates; s++ {
		m.Next[s] = make([]int, numInputs)
		m.Out[s] = make([]int, numInputs)
		for a := 0; a < numInputs; a++ {
			m.Out[s][a] = policy.Bottom
		}
	}
	return m
}

// Step returns the successor state and output for one input.
func (m *Machine) Step(state, in int) (next, out int) {
	return m.Next[state][in], m.Out[state][in]
}

// Run executes the machine on word from the initial state and returns the
// produced output word.
func (m *Machine) Run(word []int) []int {
	return m.RunFrom(m.Init, word)
}

// RunFrom executes the machine on word from the given state.
func (m *Machine) RunFrom(state int, word []int) []int {
	out := make([]int, len(word))
	for i, a := range word {
		state, out[i] = m.Step(state, a)
	}
	return out
}

// StateAfter returns the state reached from Init on word.
func (m *Machine) StateAfter(word []int) int {
	s := m.Init
	for _, a := range word {
		s = m.Next[s][a]
	}
	return s
}

// FromPolicy extracts the explicit Mealy machine of a policy. It fails if
// more than maxStates states are reachable (maxStates <= 0 means unbounded).
// The returned machine is reachable by construction; for the policies in
// this repository it is also minimal, but callers that need a guarantee
// should call Minimize.
//
// The exploration is shared with the compiled policy kernel: the policy is
// compiled to a policy.Table (breadth-first over Clone/Apply with StateKey
// identity — the numbering this function always used) and the machine is a
// direct conversion of the table. A policy that already is a *policy.Table
// is converted without any re-exploration.
func FromPolicy(p policy.Policy, maxStates int) (*Machine, error) {
	root := p.Clone()
	root.Reset()
	return FromPolicyState(root, maxStates)
}

// FromPolicyState is FromPolicy with the machine rooted at p's *current*
// control state instead of cs0 — used to build ground-truth machines for
// hardware experiments, where the reset sequence generally parks the policy
// in a reachable state other than the canonical initial one.
func FromPolicyState(p policy.Policy, maxStates int) (*Machine, error) {
	if t, ok := p.(*policy.Table); ok {
		if maxStates > 0 && t.NumStates() > maxStates {
			// The table may contain states unreachable from the current
			// root; only fail once the rooted conversion really exceeds
			// the budget.
			if m := FromTable(t); m.NumStates <= maxStates {
				return m, nil
			}
			return nil, fmt.Errorf("mealy: policy %s has more than %d reachable states", t.Name(), maxStates)
		}
		return FromTable(t), nil
	}
	t, err := policy.CompileState(p, maxStates)
	if err != nil {
		// Re-prefix the compile error so the message reads as one package's
		// ("mealy: policy X has more than N reachable states", exactly the
		// pre-kernel wording), not a double-prefixed chain.
		return nil, fmt.Errorf("mealy: policy %s", strings.TrimPrefix(err.Error(), "policy: "))
	}
	return FromTable(t), nil
}

// FromTable converts an already-compiled policy table into an explicit
// machine rooted at the table's current state, re-exploring nothing: the
// conversion is a breadth-first renumbering walk over the integer arrays.
// When the table is rooted at its own initial state the walk is the
// identity, so extracted machines (and the published model artifacts) are
// byte-identical to the pre-kernel interface exploration.
func FromTable(t *policy.Table) *Machine {
	numIn := t.NumInputs()
	remap := make([]int, t.NumStates())
	for i := range remap {
		remap[i] = -1
	}
	order := []int32{t.State()}
	remap[t.State()] = 0
	for head := 0; head < len(order); head++ {
		s := order[head]
		for a := 0; a < numIn; a++ {
			succ, _ := t.Step(s, a)
			if remap[succ] == -1 {
				remap[succ] = len(order)
				order = append(order, succ)
			}
		}
	}

	m := &Machine{
		NumStates:  len(order),
		NumInputs:  numIn,
		Init:       0,
		Next:       make([][]int, len(order)),
		Out:        make([][]int, len(order)),
		StateNames: make([]string, len(order)),
	}
	for newID, oldID := range order {
		nrow := make([]int, numIn)
		orow := make([]int, numIn)
		for a := 0; a < numIn; a++ {
			succ, out := t.Step(oldID, a)
			nrow[a] = remap[succ]
			orow[a] = int(out)
		}
		m.Next[newID] = nrow
		m.Out[newID] = orow
		m.StateNames[newID] = t.KeyOf(oldID)
	}
	return m
}

// Equivalent checks trace equivalence of m and o (which must share the input
// alphabet) by a product breadth-first search. If the machines differ it
// returns false and a shortest input word on which their outputs differ.
func (m *Machine) Equivalent(o *Machine) (bool, []int) {
	if m.NumInputs != o.NumInputs {
		panic("mealy: Equivalent requires identical input alphabets")
	}
	type pair struct{ a, b int }
	type entry struct {
		parent int // index into the BFS order, -1 for the root
		in     int
	}
	start := pair{m.Init, o.Init}
	seen := map[pair]int{start: 0}
	order := []pair{start}
	meta := []entry{{parent: -1}}

	for head := 0; head < len(order); head++ {
		cur := order[head]
		for a := 0; a < m.NumInputs; a++ {
			na, oa := m.Step(cur.a, a)
			nb, ob := o.Step(cur.b, a)
			if oa != ob {
				// Reconstruct the word leading here, then append a.
				var rev []int
				rev = append(rev, a)
				for i := head; meta[i].parent != -1; i = meta[i].parent {
					rev = append(rev, meta[i].in)
				}
				word := make([]int, len(rev))
				for i := range rev {
					word[i] = rev[len(rev)-1-i]
				}
				return false, word
			}
			nxt := pair{na, nb}
			if _, ok := seen[nxt]; !ok {
				seen[nxt] = len(order)
				order = append(order, nxt)
				meta = append(meta, entry{parent: head, in: a})
			}
		}
	}
	return true, nil
}

// reachable returns the machine restricted to states reachable from Init.
func (m *Machine) reachable() *Machine {
	remap := make([]int, m.NumStates)
	for i := range remap {
		remap[i] = -1
	}
	order := []int{m.Init}
	remap[m.Init] = 0
	for head := 0; head < len(order); head++ {
		s := order[head]
		for a := 0; a < m.NumInputs; a++ {
			t := m.Next[s][a]
			if remap[t] == -1 {
				remap[t] = len(order)
				order = append(order, t)
			}
		}
	}
	if len(order) == m.NumStates {
		return m
	}
	r := New(len(order), m.NumInputs)
	r.Init = 0
	if m.StateNames != nil {
		r.StateNames = make([]string, len(order))
	}
	for newID, oldID := range order {
		for a := 0; a < m.NumInputs; a++ {
			r.Next[newID][a] = remap[m.Next[oldID][a]]
			r.Out[newID][a] = m.Out[oldID][a]
		}
		if r.StateNames != nil {
			r.StateNames[newID] = m.StateNames[oldID]
		}
	}
	return r
}

// Minimize returns the minimal machine trace-equivalent to m, computed by
// partition refinement over the reachable states. Signatures are interned
// integer-pair chains — the per-round key is the fold of a state's class
// with its successors' classes — so no round formats a single string.
func (m *Machine) Minimize() *Machine {
	r := m.reachable()

	// Initial partition: states with identical output rows.
	class := make([]int, r.NumStates)
	it := intern.New()
	dense := make(map[int32]int)
	for s := 0; s < r.NumStates; s++ {
		sig := it.Word(r.Out[s])
		id, ok := dense[sig]
		if !ok {
			id = len(dense)
			dense[sig] = id
		}
		class[s] = id
	}
	numClasses := len(dense)

	for {
		it := intern.New()
		refined := make(map[int32]int)
		next := make([]int, r.NumStates)
		for s := 0; s < r.NumStates; s++ {
			sig := it.Append(intern.Empty, class[s])
			for a := 0; a < r.NumInputs; a++ {
				sig = it.Append(sig, class[r.Next[s][a]])
			}
			id, ok := refined[sig]
			if !ok {
				id = len(refined)
				refined[sig] = id
			}
			next[s] = id
		}
		if len(refined) == numClasses {
			break
		}
		class = next
		numClasses = len(refined)
	}

	// Build the quotient. Class ids are renumbered so Init maps to 0.
	quot := New(numClasses, r.NumInputs)
	renumber := make([]int, numClasses)
	for i := range renumber {
		renumber[i] = -1
	}
	fresh := 0
	assign := func(c int) int {
		if renumber[c] == -1 {
			renumber[c] = fresh
			fresh++
		}
		return renumber[c]
	}
	assign(class[r.Init])
	for s := 0; s < r.NumStates; s++ {
		c := assign(class[s])
		for a := 0; a < r.NumInputs; a++ {
			quot.Next[c][a] = assign(class[r.Next[s][a]])
			quot.Out[c][a] = r.Out[s][a]
		}
	}
	quot.Init = 0
	return quot
}

// AccessSequences returns, for every state, a shortest input word that
// reaches it from the initial state (the state cover used by conformance
// testing).
func (m *Machine) AccessSequences() [][]int {
	seq := make([][]int, m.NumStates)
	seen := make([]bool, m.NumStates)
	seq[m.Init] = []int{}
	seen[m.Init] = true
	queue := []int{m.Init}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for a := 0; a < m.NumInputs; a++ {
			t := m.Next[s][a]
			if !seen[t] {
				seen[t] = true
				w := make([]int, len(seq[s])+1)
				copy(w, seq[s])
				w[len(w)-1] = a
				seq[t] = w
				queue = append(queue, t)
			}
		}
	}
	return seq
}

// DistinguishingWord returns a shortest input word on which states s and t
// produce different outputs, or nil if they are trace-equivalent.
func (m *Machine) DistinguishingWord(s, t int) []int {
	type pair struct{ a, b int }
	type entry struct {
		parent int
		in     int
	}
	start := pair{s, t}
	seen := map[pair]int{start: 0}
	order := []pair{start}
	meta := []entry{{parent: -1}}
	for head := 0; head < len(order); head++ {
		cur := order[head]
		for a := 0; a < m.NumInputs; a++ {
			na, oa := m.Step(cur.a, a)
			nb, ob := m.Step(cur.b, a)
			if oa != ob {
				var rev []int
				rev = append(rev, a)
				for i := head; meta[i].parent != -1; i = meta[i].parent {
					rev = append(rev, meta[i].in)
				}
				word := make([]int, len(rev))
				for i := range rev {
					word[i] = rev[len(rev)-1-i]
				}
				return word
			}
			nxt := pair{na, nb}
			if _, ok := seen[nxt]; !ok {
				seen[nxt] = len(order)
				order = append(order, nxt)
				meta = append(meta, entry{parent: head, in: a})
			}
		}
	}
	return nil
}

// CharacterizingSet returns a set W of input words such that any two
// inequivalent states of m produce different output vectors on W. The
// machine is minimized internally, so W is also valid for the original
// machine.
func (m *Machine) CharacterizingSet() [][]int {
	mm := m.Minimize()
	if mm.NumStates <= 1 {
		// A single word suffices (any input); W must be non-empty for the
		// W-method to exercise outputs.
		return [][]int{{0}}
	}
	var w [][]int
	// Integer-pair signatures over the current W — the output vector of
	// each state folds to one interned id, no string building. Signatures
	// are extended incrementally: appending a word to W folds one more
	// output id onto every state's running signature instead of replaying
	// the whole set, so growing W to size k costs O(k·n), not O(k²·n).
	it := intern.New()
	sigOf := make([]int32, mm.NumStates)
	for i := range sigOf {
		sigOf[i] = intern.Empty
	}
	for {
		classes := make(map[int32][]int)
		for s := 0; s < mm.NumStates; s++ {
			classes[sigOf[s]] = append(classes[sigOf[s]], s)
		}
		if len(classes) == mm.NumStates {
			return w
		}
		// Split the non-singleton class holding the smallest state index
		// (deterministic order).
		split := false
		for s := 0; s < mm.NumStates && !split; s++ {
			states := classes[sigOf[s]]
			if len(states) < 2 {
				continue
			}
			d := mm.DistinguishingWord(states[0], states[1])
			if d == nil {
				panic("mealy: minimized machine has equivalent states")
			}
			w = append(w, d)
			for t := 0; t < mm.NumStates; t++ {
				sigOf[t] = it.Pair(sigOf[t], it.Word(mm.RunFrom(t, d)))
			}
			split = true
		}
		if !split {
			return w
		}
	}
}

// RelabelLines conjugates a policy machine by a cache-line permutation:
// input Ln(i) becomes Ln(perm[i]), Evct is unchanged, and every non-⊥
// output o becomes perm[o]. Two learning runs that label the same physical
// lines differently (because their resets arrange blocks differently)
// produce machines related by exactly such a relabeling.
func (m *Machine) RelabelLines(perm []int) *Machine {
	n := m.NumInputs - 1
	if len(perm) != n {
		panic("mealy: permutation length does not match associativity")
	}
	r := New(m.NumStates, m.NumInputs)
	r.Init = m.Init
	for s := 0; s < m.NumStates; s++ {
		for a := 0; a < m.NumInputs; a++ {
			na := a
			if a < n {
				na = perm[a]
			}
			out := m.Out[s][a]
			if out >= 0 {
				out = perm[out]
			}
			r.Next[s][na] = m.Next[s][a]
			r.Out[s][na] = out
		}
	}
	return r
}

// ShortestEvictionWord returns a shortest input word, starting from `from`,
// whose final input is Evct and whose final output is the target line — an
// "eviction strategy" in the sense of the paper's security discussion
// (§10): detailed policy models let an attacker compute minimal access
// sequences that force a victim line out of the cache. It returns nil if no
// such word exists.
func (m *Machine) ShortestEvictionWord(from, line int) []int {
	evct := m.NumInputs - 1
	type entry struct {
		parent int
		in     int
	}
	seen := make([]bool, m.NumStates)
	seen[from] = true
	order := []int{from}
	meta := []entry{{parent: -1}}
	reconstruct := func(head, last int) []int {
		var rev []int
		rev = append(rev, last)
		for i := head; meta[i].parent != -1; i = meta[i].parent {
			rev = append(rev, meta[i].in)
		}
		word := make([]int, len(rev))
		for i := range rev {
			word[i] = rev[len(rev)-1-i]
		}
		return word
	}
	for head := 0; head < len(order); head++ {
		s := order[head]
		if m.Out[s][evct] == line {
			return reconstruct(head, evct)
		}
		for a := 0; a < m.NumInputs; a++ {
			t := m.Next[s][a]
			if !seen[t] {
				seen[t] = true
				order = append(order, t)
				meta = append(meta, entry{parent: head, in: a})
			}
		}
	}
	return nil
}

// DOT renders the machine in Graphviz DOT format using the policy
// input/output conventions for edge labels. assoc is the associativity used
// to render the Evct input; pass NumInputs-1.
func (m *Machine) DOT(name string) string {
	assoc := m.NumInputs - 1
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=LR;\n  node [shape=circle];\n", name)
	fmt.Fprintf(&sb, "  __start [shape=point];\n  __start -> s%d;\n", m.Init)
	for s := 0; s < m.NumStates; s++ {
		label := fmt.Sprintf("s%d", s)
		if m.StateNames != nil && m.StateNames[s] != "" {
			label = m.StateNames[s]
		}
		fmt.Fprintf(&sb, "  s%d [label=%q];\n", s, label)
		for a := 0; a < m.NumInputs; a++ {
			fmt.Fprintf(&sb, "  s%d -> s%d [label=%q];\n",
				s, m.Next[s][a],
				fmt.Sprintf("%s/%s", policy.InputString(assoc, a), policy.OutputString(m.Out[s][a])))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
