package mealy

// PublishedModel identifies one committed model artifact in models/:
// the policy name and associativity behind <Name>-<Assoc>.json.
type PublishedModel struct {
	Name  string
	Assoc int
	// Heavy marks the assoc-8 state-space giants (LRU-8: 40,320 control
	// states, SRRIP-HP-8: 43,818): extraction-verified by default —
	// TestModelArtifacts skips them under -short, and cmd/genmodels runs
	// their multi-minute learning cross-check only with -verify-heavy.
	Heavy bool
}

// PublishedModels is the single source of truth for the artifact list,
// consumed by cmd/genmodels (which writes the files) and by
// TestModelArtifacts (which verifies them) so the two can never drift.
func PublishedModels() []PublishedModel {
	return []PublishedModel{
		{"FIFO", 4, false}, {"LRU", 4, false}, {"PLRU", 4, false}, {"PLRU", 8, false}, {"MRU", 4, false},
		{"LIP", 4, false}, {"SRRIP-HP", 4, false}, {"SRRIP-FP", 4, false}, {"New1", 4, false}, {"New2", 4, false},
		{"LRU", 8, true}, {"SRRIP-HP", 8, true},
	}
}
