package mealy

import (
	"encoding/json"
	"fmt"
	"io"
)

// machineJSON is the serialized form of a Machine: the repository's analog
// of the learned-model artifacts the paper publishes alongside its tools.
type machineJSON struct {
	NumStates  int      `json:"states"`
	NumInputs  int      `json:"inputs"`
	Init       int      `json:"init"`
	Next       [][]int  `json:"next"`
	Out        [][]int  `json:"out"`
	StateNames []string `json:"stateNames,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (m *Machine) MarshalJSON() ([]byte, error) {
	return json.Marshal(machineJSON{
		NumStates:  m.NumStates,
		NumInputs:  m.NumInputs,
		Init:       m.Init,
		Next:       m.Next,
		Out:        m.Out,
		StateNames: m.StateNames,
	})
}

// UnmarshalJSON implements json.Unmarshaler, validating the transition
// structure.
func (m *Machine) UnmarshalJSON(data []byte) error {
	var raw machineJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.NumStates < 1 || raw.NumInputs < 1 {
		return fmt.Errorf("mealy: machine must have at least one state and one input")
	}
	if raw.Init < 0 || raw.Init >= raw.NumStates {
		return fmt.Errorf("mealy: initial state %d out of range", raw.Init)
	}
	if len(raw.Next) != raw.NumStates || len(raw.Out) != raw.NumStates {
		return fmt.Errorf("mealy: transition tables have %d/%d rows, want %d", len(raw.Next), len(raw.Out), raw.NumStates)
	}
	for s := 0; s < raw.NumStates; s++ {
		if len(raw.Next[s]) != raw.NumInputs || len(raw.Out[s]) != raw.NumInputs {
			return fmt.Errorf("mealy: state %d has malformed rows", s)
		}
		for a := 0; a < raw.NumInputs; a++ {
			if t := raw.Next[s][a]; t < 0 || t >= raw.NumStates {
				return fmt.Errorf("mealy: transition %d --%d--> %d out of range", s, a, t)
			}
		}
	}
	if raw.StateNames != nil && len(raw.StateNames) != raw.NumStates {
		return fmt.Errorf("mealy: %d state names for %d states", len(raw.StateNames), raw.NumStates)
	}
	m.NumStates = raw.NumStates
	m.NumInputs = raw.NumInputs
	m.Init = raw.Init
	m.Next = raw.Next
	m.Out = raw.Out
	m.StateNames = raw.StateNames
	return nil
}

// Save writes the machine as indented JSON.
func (m *Machine) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(m)
}

// Load reads a machine from JSON.
func Load(r io.Reader) (*Machine, error) {
	var m Machine
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}
