package mealy

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/policy"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, name := range []string{"LRU", "PLRU", "New1"} {
		orig, _ := FromPolicy(policy.MustNew(name, 4), 0)
		var buf bytes.Buffer
		if err := orig.Save(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.NumStates != orig.NumStates || back.NumInputs != orig.NumInputs {
			t.Fatalf("%s: dimensions changed", name)
		}
		if eq, ce := back.Equivalent(orig); !eq {
			t.Fatalf("%s: round trip changed the machine, ce=%v", name, ce)
		}
		if back.StateNames == nil || back.StateNames[0] != orig.StateNames[0] {
			t.Errorf("%s: state names lost", name)
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		`{`,
		`{"states":0,"inputs":3,"init":0,"next":[],"out":[]}`,
		`{"states":1,"inputs":2,"init":5,"next":[[0,0]],"out":[[0,0]]}`,
		`{"states":1,"inputs":2,"init":0,"next":[[0]],"out":[[0,0]]}`,
		`{"states":1,"inputs":2,"init":0,"next":[[0,7]],"out":[[0,0]]}`,
		`{"states":2,"inputs":1,"init":0,"next":[[0],[1]],"out":[[0],[0]],"stateNames":["a"]}`,
	}
	for _, src := range cases {
		if _, err := Load(strings.NewReader(src)); err == nil {
			t.Errorf("malformed machine accepted: %s", src)
		}
	}
}
