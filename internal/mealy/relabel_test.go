package mealy

import (
	"testing"

	"repro/internal/policy"
)

func TestRelabelLinesRoundTrip(t *testing.T) {
	m, _ := FromPolicy(policy.MustNew("SRRIP-HP", 4), 0)
	perm := []int{2, 0, 3, 1}
	inv := make([]int, 4)
	for i, p := range perm {
		inv[p] = i
	}
	relabeled := m.RelabelLines(perm)
	if eq, _ := relabeled.Equivalent(m); eq {
		t.Fatal("a non-trivial relabeling kept the machine equivalent")
	}
	back := relabeled.RelabelLines(inv)
	if eq, ce := back.Equivalent(m); !eq {
		t.Fatalf("relabel round trip changed the machine, ce=%v", ce)
	}
}

func TestRelabelIdentity(t *testing.T) {
	m, _ := FromPolicy(policy.MustNew("LRU", 4), 0)
	id := []int{0, 1, 2, 3}
	if eq, _ := m.RelabelLines(id).Equivalent(m); !eq {
		t.Fatal("identity relabeling changed the machine")
	}
}

func TestRelabelRejectsBadPermutation(t *testing.T) {
	m, _ := FromPolicy(policy.MustNew("LRU", 2), 0)
	defer func() {
		if recover() == nil {
			t.Error("short permutation accepted")
		}
	}()
	m.RelabelLines([]int{0})
}

func TestShortestEvictionWord(t *testing.T) {
	// On LRU-4 from the initial fill state, line 0 is evicted by a bare
	// Evct, while evicting line 3 (the most recently used one) requires
	// first refreshing the other lines.
	m, _ := FromPolicy(policy.MustNew("LRU", 4), 0)
	w := m.ShortestEvictionWord(m.Init, 0)
	if len(w) != 1 || w[0] != 4 {
		t.Errorf("eviction word for line 0 = %v, want [Evct]", w)
	}
	w3 := m.ShortestEvictionWord(m.Init, 3)
	if w3 == nil {
		t.Fatal("no eviction word for line 3")
	}
	if len(w3) < 4 {
		t.Errorf("evicting the MRU line took only %d inputs: %v", len(w3), w3)
	}
	// Execute the strategy and confirm the final output.
	out := m.Run(w3)
	if out[len(out)-1] != 3 {
		t.Errorf("strategy %v evicts line %d, want 3", w3, out[len(out)-1])
	}
	// Every line of every policy must be evictable from the initial state.
	for _, name := range []string{"FIFO", "PLRU", "MRU", "SRRIP-HP", "New1", "New2"} {
		pm, _ := FromPolicy(policy.MustNew(name, 4), 0)
		for line := 0; line < 4; line++ {
			w := pm.ShortestEvictionWord(pm.Init, line)
			if w == nil {
				t.Errorf("%s: line %d not evictable", name, line)
				continue
			}
			out := pm.Run(w)
			if out[len(out)-1] != line {
				t.Errorf("%s: strategy for line %d evicts %d", name, line, out[len(out)-1])
			}
		}
	}
}
