package mealy

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/policy"
)

// tableTwoCounts pins the state counts of Table 2 (and §7/§8 for New1/New2):
// they are intrinsic properties of the policies, so the extraction must
// reproduce them exactly.
var tableTwoCounts = []struct {
	name   string
	assoc  int
	states int
}{
	{"FIFO", 2, 2}, {"FIFO", 8, 8}, {"FIFO", 16, 16},
	{"LRU", 2, 2}, {"LRU", 4, 24}, {"LRU", 6, 720},
	{"PLRU", 2, 2}, {"PLRU", 4, 8}, {"PLRU", 8, 128},
	{"MRU", 2, 2}, {"MRU", 4, 14}, {"MRU", 6, 62}, {"MRU", 8, 254},
	{"LIP", 2, 2}, {"LIP", 4, 24}, {"LIP", 6, 720},
	{"SRRIP-HP", 2, 12}, {"SRRIP-HP", 4, 178},
	{"SRRIP-FP", 2, 16}, {"SRRIP-FP", 4, 256},
	{"New1", 4, 160},
	{"New2", 4, 175},
}

func TestFromPolicyReproducesPaperStateCounts(t *testing.T) {
	for _, c := range tableTwoCounts {
		m, err := FromPolicy(policy.MustNew(c.name, c.assoc), 0)
		if err != nil {
			t.Fatalf("%s/%d: %v", c.name, c.assoc, err)
		}
		if m.NumStates != c.states {
			t.Errorf("%s assoc %d: %d reachable states, paper reports %d", c.name, c.assoc, m.NumStates, c.states)
		}
		if min := m.Minimize(); min.NumStates != c.states {
			t.Errorf("%s assoc %d: minimized to %d states, want %d", c.name, c.assoc, min.NumStates, c.states)
		}
	}
}

func TestFromPolicyRespectsBudget(t *testing.T) {
	if _, err := FromPolicy(policy.MustNew("LRU", 6), 100); err == nil {
		t.Error("FromPolicy with tight budget succeeded")
	}
}

func TestFromPolicyMatchesDirectExecution(t *testing.T) {
	for _, name := range []string{"FIFO", "LRU", "PLRU", "MRU", "LIP", "SRRIP-HP", "SRRIP-FP", "New1", "New2"} {
		p := policy.MustNew(name, 4)
		m, err := FromPolicy(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		f := func(raw []uint8) bool {
			q := p.Clone()
			q.Reset()
			word := make([]int, len(raw))
			for i, r := range raw {
				word[i] = int(r) % m.NumInputs
			}
			got := m.Run(word)
			for i, in := range word {
				if got[i] != policy.Apply(q, in) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: machine disagrees with policy: %v", name, err)
		}
	}
}

func TestLRUAssocTwoMatchesExample22(t *testing.T) {
	// Example 2.2: two states; in cs_i, Evct outputs i and loops on the
	// "refreshing" access.
	m, err := FromPolicy(policy.MustNew("LRU", 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates != 2 {
		t.Fatalf("LRU-2 has %d states, want 2", m.NumStates)
	}
	evct := 2
	s0 := m.Init
	v0 := m.Out[s0][evct]
	s1 := m.Next[s0][evct]
	if s1 == s0 {
		t.Fatal("Evct must change the LRU-2 state")
	}
	if v1 := m.Out[s1][evct]; v1 == v0 {
		t.Errorf("both states evict line %d", v0)
	}
	// Accessing the line that is next to be evicted flips the state;
	// accessing the other line keeps it.
	if m.Next[s0][v0] != s1 {
		t.Error("touching the pending victim must flip the state")
	}
	if m.Next[s0][1-v0] != s0 {
		t.Error("touching the protected line must keep the state")
	}
}

func TestEquivalentSelfAndDistinct(t *testing.T) {
	lru, _ := FromPolicy(policy.MustNew("LRU", 4), 0)
	fifo, _ := FromPolicy(policy.MustNew("FIFO", 4), 0)
	if eq, _ := lru.Equivalent(lru); !eq {
		t.Error("LRU not equivalent to itself")
	}
	eq, ce := lru.Equivalent(fifo)
	if eq {
		t.Fatal("LRU reported equivalent to FIFO")
	}
	if ce == nil {
		t.Fatal("no counterexample returned")
	}
	a, b := lru.Run(ce), fifo.Run(ce)
	if a[len(a)-1] == b[len(b)-1] {
		t.Errorf("counterexample %v does not distinguish: %v vs %v", ce, a, b)
	}
	// The counterexample is shortest: the prefix must agree.
	for i := 0; i < len(ce)-1; i++ {
		if a[i] != b[i] {
			t.Errorf("counterexample not minimal: differs at %d < %d", i, len(ce)-1)
		}
	}
}

func TestEquivalenceIsUpToTraceNotStructure(t *testing.T) {
	// A padded machine with duplicated states must stay equivalent to the
	// original and minimize back to it.
	orig, _ := FromPolicy(policy.MustNew("PLRU", 4), 0)
	padded := New(orig.NumStates*2, orig.NumInputs)
	padded.Init = orig.Init
	for s := 0; s < orig.NumStates; s++ {
		for a := 0; a < orig.NumInputs; a++ {
			// Duplicate every state; odd copies point into even ones and
			// vice versa, preserving the trace semantics.
			padded.Next[s][a] = orig.Next[s][a] + orig.NumStates
			padded.Out[s][a] = orig.Out[s][a]
			padded.Next[s+orig.NumStates][a] = orig.Next[s][a]
			padded.Out[s+orig.NumStates][a] = orig.Out[s][a]
		}
	}
	if eq, ce := orig.Equivalent(padded); !eq {
		t.Fatalf("padded machine not equivalent, ce=%v", ce)
	}
	min := padded.Minimize()
	if min.NumStates != orig.NumStates {
		t.Errorf("Minimize: %d states, want %d", min.NumStates, orig.NumStates)
	}
	if eq, _ := min.Equivalent(orig); !eq {
		t.Error("minimized machine lost equivalence")
	}
}

func TestAccessSequencesReachTheirStates(t *testing.T) {
	m, _ := FromPolicy(policy.MustNew("MRU", 4), 0)
	seqs := m.AccessSequences()
	if len(seqs) != m.NumStates {
		t.Fatalf("%d access sequences for %d states", len(seqs), m.NumStates)
	}
	for s, w := range seqs {
		if w == nil {
			t.Fatalf("state %d unreachable", s)
		}
		if got := m.StateAfter(w); got != s {
			t.Errorf("access sequence of state %d leads to %d", s, got)
		}
	}
}

func TestCharacterizingSetSeparatesAllStates(t *testing.T) {
	for _, name := range []string{"FIFO", "LRU", "PLRU", "MRU", "SRRIP-HP", "New1", "New2"} {
		m, _ := FromPolicy(policy.MustNew(name, 4), 0)
		w := m.CharacterizingSet()
		if len(w) == 0 {
			t.Fatalf("%s: empty characterizing set", name)
		}
		sigs := make(map[string]int)
		for s := 0; s < m.NumStates; s++ {
			var sb strings.Builder
			for _, word := range w {
				for _, o := range m.RunFrom(s, word) {
					sb.WriteByte(byte('0' + 2 + o)) // -1 -> '1', 0 -> '2', ...
				}
				sb.WriteByte('|')
			}
			if prev, dup := sigs[sb.String()]; dup {
				t.Fatalf("%s: states %d and %d share the W-signature", name, prev, s)
			}
			sigs[sb.String()] = s
		}
	}
}

func TestDistinguishingWordNilForEquivalentStates(t *testing.T) {
	m, _ := FromPolicy(policy.MustNew("LRU", 2), 0)
	if w := m.DistinguishingWord(0, 0); w != nil {
		t.Errorf("self-distinguishing word %v", w)
	}
	if w := m.DistinguishingWord(0, 1); w == nil {
		t.Error("no distinguishing word for distinct LRU-2 states")
	}
}

func TestDOT(t *testing.T) {
	m, _ := FromPolicy(policy.MustNew("LRU", 2), 0)
	dot := m.DOT("lru2")
	for _, want := range []string{"digraph", "Evct", "Ln(0)", "⊥", "__start"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestRunFromRandomStates(t *testing.T) {
	m, _ := FromPolicy(policy.MustNew("SRRIP-FP", 4), 0)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		s := rng.Intn(m.NumStates)
		word := make([]int, 1+rng.Intn(20))
		for j := range word {
			word[j] = rng.Intn(m.NumInputs)
		}
		out := m.RunFrom(s, word)
		if len(out) != len(word) {
			t.Fatalf("RunFrom output length %d for word length %d", len(out), len(word))
		}
		// Outputs for Ln inputs are ⊥, for Evct a valid line.
		for j, a := range word {
			if a < m.NumInputs-1 && out[j] != policy.Bottom {
				t.Fatalf("Ln input produced output %d", out[j])
			}
			if a == m.NumInputs-1 && (out[j] < 0 || out[j] >= m.NumInputs-1) {
				t.Fatalf("Evct produced output %d", out[j])
			}
		}
	}
}

// TestFromTableMatchesInterfaceExtraction pins the artifact-stability
// guarantee of the compiled kernel: extracting from a pre-compiled
// policy.Table yields a machine deep-equal (numbering, outputs, state names)
// to extracting from the interpreted policy, and rooting the table at a
// non-initial state matches the interface rooting too.
func TestFromTableMatchesInterfaceExtraction(t *testing.T) {
	for _, name := range []string{"LRU", "SRRIP-HP", "New1"} {
		pol := policy.MustNew(name, 4)
		want, err := FromPolicy(pol, 0)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := policy.Compile(policy.MustNew(name, 4))
		if err != nil {
			t.Fatal(err)
		}
		got, err := FromPolicy(tab, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: table extraction differs from interface extraction", name)
		}

		// Root both at the state after the same warm-up word.
		word := []int{4, 0, 4, 2, 4}
		ip := policy.MustNew(name, 4)
		for _, a := range word {
			policy.Apply(ip, a)
		}
		wantR, err := FromPolicyState(ip, 0)
		if err != nil {
			t.Fatal(err)
		}
		tv := tab.Clone()
		for _, a := range word {
			policy.Apply(tv, a)
		}
		gotR, err := FromPolicyState(tv, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotR, wantR) {
			t.Fatalf("%s: rooted table extraction differs from interface extraction", name)
		}
	}
}

// TestFromPolicyRejectsNondeterministic: the shared compile exploration
// refuses policies whose behaviour is not a function of their StateKey
// (before the kernel, extraction silently produced a bogus machine here).
func TestFromPolicyRejectsNondeterministic(t *testing.T) {
	if m, err := FromPolicy(policy.NewRandom(4, 3), 0); err == nil {
		t.Fatalf("FromPolicy(Random) produced a %d-state machine, want an error", m.NumStates)
	}
}
