package polca

import (
	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/policy"
)

// SimProber adapts a software-simulated cache set (internal/cache) to the
// Prober interface used for the §6 case study: every probe replays the query
// from the set's idealized reset state. It also implements ForkingProber, so
// the oracle can use incremental sessions; the plain quadratic Probe path is
// kept for the ablation benchmarks.
type SimProber struct {
	set *cache.Set
}

// NewSimProber wraps a fresh cache set governed by pol.
func NewSimProber(pol policy.Policy) *SimProber {
	return &SimProber{set: cache.NewSet(pol)}
}

// Assoc implements Prober.
func (p *SimProber) Assoc() int { return p.set.Assoc() }

// InitialContent implements Prober: the reset fills lines 0..n-1 with the
// first n blocks.
func (p *SimProber) InitialContent() []blocks.Block {
	return blocks.Ordered(p.set.Assoc())
}

// Probe implements Prober.
func (p *SimProber) Probe(q []blocks.Block) (cache.Outcome, error) {
	p.set.Reset()
	var last cache.Outcome
	for _, b := range q {
		last, _ = p.set.Access(b)
	}
	return last, nil
}

// ProbeTrace implements TraceProber: the full hit/miss trace of one
// reset-rooted run.
func (p *SimProber) ProbeTrace(q []blocks.Block) ([]cache.Outcome, error) {
	p.set.Reset()
	return p.set.AccessAll(q), nil
}

// NewSession implements ForkingProber.
func (p *SimProber) NewSession() (Session, error) {
	s := p.set.Clone()
	s.Reset()
	return &simSession{set: s}, nil
}

type simSession struct{ set *cache.Set }

func (s *simSession) Access(b blocks.Block) (cache.Outcome, error) {
	oc, _ := s.set.Access(b)
	return oc, nil
}

func (s *simSession) Fork() (Session, error) {
	return &simSession{set: s.set.Clone()}, nil
}

// SlowProber wraps a ForkingProber and hides its session support, forcing
// the oracle onto the faithful reset-rooted probe path. Used by the
// ablation benchmarks that quantify the cost of the quadratic prefix replay.
type SlowProber struct{ P Prober }

// Assoc implements Prober.
func (p SlowProber) Assoc() int { return p.P.Assoc() }

// InitialContent implements Prober.
func (p SlowProber) InitialContent() []blocks.Block { return p.P.InitialContent() }

// Probe implements Prober.
func (p SlowProber) Probe(q []blocks.Block) (cache.Outcome, error) { return p.P.Probe(q) }
