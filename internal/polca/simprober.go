package polca

import (
	"context"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/policy"
)

// SimProber adapts a software-simulated cache set (internal/cache) to the
// Prober interface used for the §6 case study: every probe replays the query
// from the set's idealized reset state. It also implements ForkingProber, so
// the oracle can use incremental sessions; the plain quadratic Probe path is
// kept for the ablation benchmarks.
//
// By default the policy is compiled into a dense transition table
// (policy.Compile) and the prober runs on the compiled kernel: sessions are
// copyable (int32 state, content) values, so forking one — the oracle forks
// at every miss for the eviction probes, and parks forks at store nodes for
// prefix resume — copies one int and one small slice instead of deep-cloning
// a policy object. Policies the kernel cannot compile (state spaces over the
// bound, or contract violations like policy.Random) silently keep the
// interpreted path; trajectories and learned machines are bit-identical
// either way. NewInterpretedSimProber forces the interpreted path for the
// kernel ablation benchmarks.
type SimProber struct {
	set *cache.Set    // interpreted path (nil when the compiled kernel is active)
	tab *policy.Table // compiled kernel
	cc0 []blocks.Block
	n   int

	scratch kernelSession // reusable probe state for the Probe/ProbeTrace paths
}

// NewSimProber wraps a fresh cache set governed by pol, compiled onto the
// policy kernel when pol is compilable.
func NewSimProber(pol policy.Policy) *SimProber {
	if t, ok := policy.CompileOrSelf(pol).(*policy.Table); ok {
		p := &SimProber{tab: t, cc0: blocks.Ordered(t.Assoc()), n: t.Assoc()}
		p.scratch = kernelSession{tab: t, content: make([]blocks.Block, t.Assoc())}
		return p
	}
	return NewInterpretedSimProber(pol)
}

// NewInterpretedSimProber wraps a fresh cache set driven through the
// interpreted Policy interface, bypassing the compiled kernel — the
// pre-kernel simulator path the ablation benchmarks compare against.
func NewInterpretedSimProber(pol policy.Policy) *SimProber {
	return &SimProber{set: cache.NewSet(pol), cc0: blocks.Ordered(pol.Assoc()), n: pol.Assoc()}
}

// Compiled reports whether the prober runs on the compiled policy kernel.
func (p *SimProber) Compiled() bool { return p.tab != nil }

// KernelTable returns the compiled transition table driving this prober's
// sessions, or nil on the interpreted path. The batched SoA query engine
// (WithBatchedQueries) requires it: lanes advance by direct table stepping.
func (p *SimProber) KernelTable() *policy.Table { return p.tab }

// Assoc implements Prober.
func (p *SimProber) Assoc() int { return p.n }

// InitialContent implements Prober: the reset fills lines 0..n-1 with the
// first n blocks.
func (p *SimProber) InitialContent() []blocks.Block {
	return blocks.Ordered(p.n)
}

// Probe implements Prober.
func (p *SimProber) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	if err := ctx.Err(); err != nil {
		return Missed(), err
	}
	if p.tab != nil {
		p.scratch.reset(p.tab, p.cc0)
		var last cache.Outcome
		for _, b := range q {
			last, _ = p.scratch.Access(b)
		}
		return last, nil
	}
	p.set.Reset()
	var last cache.Outcome
	for _, b := range q {
		last, _ = p.set.Access(b)
	}
	return last, nil
}

// ProbeTrace implements TraceProber: the full hit/miss trace of one
// reset-rooted run.
func (p *SimProber) ProbeTrace(ctx context.Context, q []blocks.Block) ([]cache.Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.tab != nil {
		p.scratch.reset(p.tab, p.cc0)
		out := make([]cache.Outcome, len(q))
		for i, b := range q {
			out[i], _ = p.scratch.Access(b)
		}
		return out, nil
	}
	p.set.Reset()
	return p.set.AccessAll(q), nil
}

// NewSession implements ForkingProber. Kernel sessions are independent
// values over the shared immutable table, so this is safe for the oracle's
// concurrent batched queries on both paths.
func (p *SimProber) NewSession() (Session, error) {
	if p.tab != nil {
		s := &kernelSession{tab: p.tab, state: p.tab.InitState(), content: append([]blocks.Block(nil), p.cc0...)}
		return s, nil
	}
	s := p.set.Clone()
	s.Reset()
	return &simSession{set: s}, nil
}

// kernelSession is a compiled-kernel probing session: the full cache state
// is one table state id plus the content tuple, making sessions copyable
// values — Fork copies n strings and an int32, and the parked-session LRU
// in the oracle's query store holds exactly these pairs instead of cloned
// policy objects.
type kernelSession struct {
	tab     *policy.Table
	state   int32
	content []blocks.Block
}

// reset rewinds the session to the prober's reset state, reusing the
// content storage.
func (s *kernelSession) reset(tab *policy.Table, cc0 []blocks.Block) {
	s.tab = tab
	s.state = tab.InitState()
	copy(s.content, cc0)
}

// Access implements Session: a content scan plus one table lookup. Sessions
// are reset-rooted, so the set is always full and the semantics is exactly
// Definition 2.3.
func (s *kernelSession) Access(b blocks.Block) (cache.Outcome, error) {
	if b == "" {
		panic("cache: access to empty block name")
	}
	for i, c := range s.content {
		if c == b {
			s.state, _ = s.tab.Step(s.state, i)
			return cache.Hit, nil
		}
	}
	next, v := s.tab.Step(s.state, len(s.content))
	s.state = next
	s.content[v] = b
	return cache.Miss, nil
}

// Fork implements Session: the session is a value, so forking is one small
// copy with no policy clone.
func (s *kernelSession) Fork() (Session, error) {
	return &kernelSession{tab: s.tab, state: s.state, content: append([]blocks.Block(nil), s.content...)}, nil
}

// Peek implements PeekSession: the outcome the next access of b would
// produce is pure content membership (an access hits iff the block is
// resident), so the oracle's eviction probes cost a scan instead of a
// forked session.
func (s *kernelSession) Peek(b blocks.Block) (cache.Outcome, error) {
	if b == "" {
		panic("cache: access to empty block name")
	}
	for _, c := range s.content {
		if c == b {
			return cache.Hit, nil
		}
	}
	return cache.Miss, nil
}

type simSession struct{ set *cache.Set }

func (s *simSession) Access(b blocks.Block) (cache.Outcome, error) {
	oc, _ := s.set.Access(b)
	return oc, nil
}

func (s *simSession) Fork() (Session, error) {
	return &simSession{set: s.set.Clone()}, nil
}

// SlowProber wraps a ForkingProber and hides its session support, forcing
// the oracle onto the faithful reset-rooted probe path. Used by the
// ablation benchmarks that quantify the cost of the quadratic prefix replay.
type SlowProber struct{ P Prober }

// Assoc implements Prober.
func (p SlowProber) Assoc() int { return p.P.Assoc() }

// InitialContent implements Prober.
func (p SlowProber) InitialContent() []blocks.Block { return p.P.InitialContent() }

// Probe implements Prober.
func (p SlowProber) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	return p.P.Probe(ctx, q)
}
