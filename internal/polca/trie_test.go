package polca

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/mealy"
	"repro/internal/policy"
)

// tenPolicies mirrors the published models/ artifact list.
var tenPolicies = []struct {
	name  string
	assoc int
}{
	{"FIFO", 4}, {"LRU", 4}, {"PLRU", 4}, {"PLRU", 8}, {"MRU", 4},
	{"LIP", 4}, {"SRRIP-HP", 4}, {"SRRIP-FP", 4}, {"New1", 4}, {"New2", 4},
}

// freshOnly hides every optional capability of a prober and routes Probe
// through ProbeFresh semantics: a SimProber re-executes the whole word from
// reset on every call, so each answer is ground truth by construction.
type freshOnly struct{ p *SimProber }

func (f freshOnly) Assoc() int                     { return f.p.Assoc() }
func (f freshOnly) InitialContent() []blocks.Block { return f.p.InitialContent() }
func (f freshOnly) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	return f.p.Probe(ctx, q)
}
func (f freshOnly) ProbeFresh(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	return f.p.Probe(ctx, q)
}

var _ FreshProber = freshOnly{}

// TestTrieOracleMatchesFreshGroundTruth: for every published policy, the
// trie-backed oracle — on both the session path (forking prober) and the
// reset-rooted probe path (slow prober) — answers exactly like an
// unmemoized oracle whose every probe is a fresh execution, and like the
// machine extracted from the policy itself.
func TestTrieOracleMatchesFreshGroundTruth(t *testing.T) {
	for _, c := range tenPolicies {
		c := c
		t.Run(c.name, func(t *testing.T) {
			truth, err := mealy.FromPolicy(policy.MustNew(c.name, c.assoc), 0)
			if err != nil {
				t.Fatal(err)
			}
			fast := NewOracle(NewSimProber(policy.MustNew(c.name, c.assoc)))
			slow := NewOracle(SlowProber{P: NewSimProber(policy.MustNew(c.name, c.assoc))})
			fresh := NewOracle(freshOnly{p: NewSimProber(policy.MustNew(c.name, c.assoc))}, WithoutMemo())

			rng := rand.New(rand.NewSource(int64(31 + c.assoc)))
			numIn := truth.NumInputs
			trials := 50
			if testing.Short() {
				trials = 20
			}
			for i := 0; i < trials; i++ {
				word := make([]int, 1+rng.Intn(14))
				for j := range word {
					word[j] = rng.Intn(numIn)
				}
				want, err := fresh.OutputQuery(context.Background(), word)
				if err != nil {
					t.Fatal(err)
				}
				mw := truth.Run(word)
				a, err1 := fast.OutputQuery(context.Background(), word)
				b, err2 := slow.OutputQuery(context.Background(), word)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: oracle errors %v / %v", c.name, err1, err2)
				}
				for j := range word {
					if a[j] != want[j] || b[j] != want[j] || mw[j] != want[j] {
						t.Fatalf("%s: word %v: session %v, probes %v, machine %v, fresh %v",
							c.name, word, a, b, mw, want)
					}
				}
			}
			if st := fast.Stats(); st.MemoHits == 0 {
				t.Error("trie oracle never answered from the prefix tree")
			}
		})
	}
}

// TestSessionCapEviction: a pathologically small parked-session budget must
// change only the cost, never the answers.
func TestSessionCapEviction(t *testing.T) {
	capped := NewOracle(NewSimProber(policy.MustNew("New1", 4)), WithSessionCap(1))
	reference := NewOracle(NewSimProber(policy.MustNew("New1", 4)), WithoutTrie())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 80; i++ {
		word := make([]int, 1+rng.Intn(10))
		for j := range word {
			word[j] = rng.Intn(5)
		}
		a, err1 := capped.OutputQuery(context.Background(), word)
		b, err2 := reference.OutputQuery(context.Background(), word)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors %v / %v", err1, err2)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("cap-1 oracle diverged on %v: %v vs %v", word, a, b)
			}
		}
	}
}

// TestTrieResumeSkipsPrefixReplay: extending an answered word by one symbol
// must cost O(1) prober accesses on the session path — the trie resumes the
// parked session instead of replaying the prefix.
func TestTrieResumeSkipsPrefixReplay(t *testing.T) {
	oracle := NewOracle(NewSimProber(policy.MustNew("LRU", 4)))
	word := []int{4, 0, 4, 1, 2, 3, 0, 1}
	if _, err := oracle.OutputQuery(context.Background(), word); err != nil {
		t.Fatal(err)
	}
	before := oracle.Stats()
	ext := append(append([]int(nil), word...), 0)
	if _, err := oracle.OutputQuery(context.Background(), ext); err != nil {
		t.Fatal(err)
	}
	after := oracle.Stats()
	delta := after.Accesses - before.Accesses
	// One new Ln symbol: exactly one access when resumed from the parked
	// session; a full replay would have cost len(word)+1.
	if delta > 2 {
		t.Errorf("extension cost %d accesses, want O(1) (prefix replay not skipped)", delta)
	}
	if after.MemoHits <= before.MemoHits {
		t.Error("extension did not consume the recorded prefix")
	}
}

// TestWithoutTrieMatchesLegacyTrajectory: with the trie disabled, repeating
// a query costs exactly one probe flush on the session path — the pre-trie
// accounting the ablation benchmarks rely on.
func TestWithoutTrieMatchesLegacyTrajectory(t *testing.T) {
	oracle := NewOracle(NewSimProber(policy.MustNew("LRU", 4)), WithoutTrie())
	word := []int{4, 0, 4}
	if _, err := oracle.OutputQuery(context.Background(), word); err != nil {
		t.Fatal(err)
	}
	first := oracle.Stats()
	if _, err := oracle.OutputQuery(context.Background(), word); err != nil {
		t.Fatal(err)
	}
	second := oracle.Stats()
	if second.Probes != 2*first.Probes || second.Accesses != 2*first.Accesses {
		t.Errorf("legacy session path should re-execute fully: %+v then %+v", first, second)
	}
	if second.MemoHits != 0 {
		t.Errorf("legacy session path has no memo, saw %d hits", second.MemoHits)
	}
}

// TestStripedOracleMatchesSingleStripe: collapsing the stores to one lock
// (the pre-striping single-mutex oracle) must change only contention,
// never answers or the ability to share prefixes.
func TestStripedOracleMatchesSingleStripe(t *testing.T) {
	striped := NewOracle(NewSimProber(policy.MustNew("SRRIP-HP", 4)))
	single := NewOracle(NewSimProber(policy.MustNew("SRRIP-HP", 4)), WithStoreStripes(1))
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 60; i++ {
		word := make([]int, 1+rng.Intn(12))
		for j := range word {
			word[j] = rng.Intn(5)
		}
		a, err1 := striped.OutputQuery(context.Background(), word)
		b, err2 := single.OutputQuery(context.Background(), word)
		if err1 != nil || err2 != nil {
			t.Fatalf("errors %v / %v", err1, err2)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("stripe count changed answers on %v: %v vs %v", word, a, b)
			}
		}
	}
	sa, sb := striped.Stats(), single.Stats()
	if sa.Probes != sb.Probes || sa.Accesses != sb.Accesses || sa.MemoHits != sb.MemoHits {
		t.Errorf("stripe count changed the cost trajectory: %+v vs %+v", sa, sb)
	}
}
