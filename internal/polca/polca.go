// Package polca implements Polca (Algorithm 1 of the paper): a membership
// and output oracle for a cache's replacement policy, given only black-box
// access to the cache's trace semantics.
//
// Polca translates policy-level inputs — Ln(i) "access line i" and Evct
// "free a line" — into sequences of memory blocks, by keeping track of the
// blocks currently stored in the cache. A hit on line i becomes an access to
// the block stored there; an eviction request becomes an access to a block
// that is not cached; and the identity of the evicted line is recovered by
// re-probing the cache with each previously cached block (findEvicted).
// This inversion of the cache's transition rules (Figure 2) exposes the
// policy's data-independence symmetry to the learner and is what makes
// automata learning scale to hardware caches.
package polca

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/policy"
	"repro/internal/qstore"
)

// ErrNondeterministic is returned when the cache under observation behaves
// inconsistently with any deterministic replacement policy — for example
// when an access that must hit misses, or when the eviction probes identify
// zero or several evicted lines. On real hardware this is the symptom of an
// incorrect reset sequence or of an adaptive/randomized policy (§7).
var ErrNondeterministic = errors.New("polca: cache behaves nondeterministically")

// Prober is the abstract interface to a cache's trace semantics JCK.
// Every Probe conceptually starts from the cache's fixed initial state:
// implementations reset the cache (replaying the reset sequence on
// hardware), access all blocks of q in order, and report whether the last
// access hit.
type Prober interface {
	// Assoc returns the associativity of the probed cache set.
	Assoc() int
	// InitialContent returns cc0: the blocks resident after a reset,
	// indexed by cache line.
	InitialContent() []blocks.Block
	// Probe runs q from the initial state and returns the last outcome.
	// Implementations backed by slow or remote systems must honor ctx
	// cancellation; simulators may only check its terminal state.
	Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error)
}

// TraceProber is an optional Prober extension returning the full hit/miss
// trace of a probe rather than only the final outcome. CacheQuery supports
// it by tagging every access for profiling; the fingerprinting baseline
// (internal/fingerprint) depends on it.
type TraceProber interface {
	Prober
	ProbeTrace(ctx context.Context, q []blocks.Block) ([]cache.Outcome, error)
}

// Session is an incremental probing session rooted at the cache's initial
// state, used by the fast oracle path on software-simulated caches.
type Session interface {
	// Access feeds one block and returns its outcome.
	Access(b blocks.Block) (cache.Outcome, error)
	// Fork returns an independent session in the same cache state.
	Fork() (Session, error)
}

// ForkingProber is an optional Prober extension for caches that support
// cheap state snapshots (software simulators). Polca exploits it to avoid
// the quadratic prefix replay of the plain Probe interface; the observable
// behaviour is identical for deterministic caches.
//
// NewSession must be safe for concurrent use: batched output queries open
// one session per query word on parallel goroutines.
type ForkingProber interface {
	Prober
	NewSession() (Session, error)
}

// PeekSession is an optional Session extension for sessions that can report
// the outcome the next access of a block would produce without advancing
// any state. For a deterministic cache this is content membership (an
// access hits iff the block is resident), so the oracle's findEvicted
// probes — n per Evct symbol — cost a scan instead of a forked session.
// Compiled-kernel simulator sessions implement it; the access counters are
// maintained identically on both paths.
type PeekSession interface {
	Session
	Peek(b blocks.Block) (cache.Outcome, error)
}

// evictionProbe returns the outcome an access of b would produce on sess
// without advancing sess: Peek when the session supports it, a discarded
// fork otherwise. The two are observably identical on deterministic caches.
func evictionProbe(sess Session, b blocks.Block) (cache.Outcome, error) {
	if ps, ok := sess.(PeekSession); ok {
		return ps.Peek(b)
	}
	fork, err := sess.Fork()
	if err != nil {
		return Missed(), err
	}
	return fork.Access(b)
}

// ConcurrentProber marks a Prober whose Probe method is safe for concurrent
// use (e.g. cachequery.ParallelProber, which multiplexes probes over a pool
// of independent CPU replicas). The oracle answers batched output queries on
// parallel goroutines only for forking or concurrent probers; anything else
// — notably a bare hardware interface pinned to one core — is served
// serially, preserving correctness by default.
type ConcurrentProber interface {
	Prober
	// ConcurrentProbes reports whether Probe may be called concurrently.
	ConcurrentProbes() bool
}

// FreshProber is an optional Prober extension that executes a probe
// unconditionally, bypassing any result cache the probing stack keeps below
// the oracle (cachequery's ResultStore, the LevelDB role). The determinism
// audit requires it on cached stacks: re-running a query through Probe would
// simply replay the cached first answer and the audit could never fire.
// Probers that re-execute the system on every Probe (software simulators)
// do not need it.
type FreshProber interface {
	Prober
	// ProbeFresh runs q against the system under observation even when a
	// cached result exists.
	ProbeFresh(ctx context.Context, q []blocks.Block) (cache.Outcome, error)
}

// Stats aggregates the cost counters of an oracle. The JSON names are the
// polcad daemon's wire format (docs/API.md) — change them only with the
// API docs.
type Stats struct {
	OutputQueries int `json:"output_queries"` // policy-level output queries answered
	Symbols       int `json:"symbols"`        // policy input symbols processed
	Probes        int `json:"probes"`         // reset-rooted cache probes issued (after memoization)
	MemoHits      int `json:"memo_hits"`      // memo answers: whole probes on the flat path, word symbols on the trie paths
	Accesses      int `json:"accesses"`       // total block accesses issued to the cache
	Retries       int `json:"retries"`        // transient probe failures absorbed by the retry policy
	Disagreements int `json:"disagreements"`  // probe re-executions (votes) that returned conflicting outcomes
	Reprobes      int `json:"reprobes"`       // consistency-check failures re-probed before declaring nondeterminism
}

// Oracle answers membership and output queries for the replacement policy of
// the cache behind a Prober. It is the paper's Polca plus the probe
// memoization that the real tool delegates to LevelDB (§4.2) — upgraded to a
// prefix-tree query engine over the shared query store (internal/qstore):
// outputs are memoized per policy symbol, so any query is answered from its
// longest recorded prefix, and forking (simulator) probers park live
// sessions at store nodes so a query that extends a known prefix executes
// only its suffix instead of replaying the whole word from reset.
// WithoutTrie restores the flat exact-match memo for the ablation
// benchmarks.
//
// The oracle is safe for concurrent use and implements learn.BatchTeacher:
// independent query words of a batch are answered on parallel goroutines
// whenever the prober supports it (ForkingProber sessions, or a
// ConcurrentProber such as a replicated hardware interface). The stores are
// lock-striped — one shard per leading input symbol by default — so batched
// workers recording answers in different subtrees never contend on a single
// oracle mutex (WithStoreStripes(1) restores that behaviour for the
// contention benchmarks); the cost counters are atomics, touched lock-free
// on the hot path.
type Oracle struct {
	prober  Prober
	cc0     []blocks.Block
	cc0IDs  []int32 // dense universe indices of cc0
	recheck int     // re-run every recheck-th query to detect nondeterminism
	workers int     // parallel batch width (defaults to GOMAXPROCS)
	useMemo bool
	useTrie bool
	batched bool // SoA batched query engine (see batch.go)
	sessCap int
	stripes int // lock stripes per store (0 = one per input symbol)

	retry RetryPolicy // transient-failure retry policy (see retry.go)
	votes int         // probe executions per result; >1 majority-votes against flips

	outputQueries atomic.Int64
	symbols       atomic.Int64
	probesN       atomic.Int64
	memoHits      atomic.Int64
	accessesN     atomic.Int64
	retriesN      atomic.Int64
	disagreeN     atomic.Int64
	reprobesN     atomic.Int64

	// Checkpointing (SetCheckpointer): ckFn is fired at most once per
	// ckEvery answered output queries, serialized by ckMu; overlapping
	// triggers from concurrent batch workers are skipped, not queued.
	ckEvery int64
	ckFn    func()
	ckMu    sync.Mutex
	ckLast  atomic.Int64

	mu       sync.Mutex                // guards the flat memo only (WithoutTrie)
	memo     map[string]cache.Outcome  // flat memo (WithoutTrie)
	inflight map[string]*inflightProbe // flat-memo single-flight

	out    *qstore.Store[int, outVal]     // policy-level output memo + parked sessions
	pt     *qstore.Store[int32, probeVal] // block-level probe memo + single-flight
	lru    []lruList                      // per-shard parked-session LRU (see store.go)
	lruCap int                            // parked-session budget per shard
}

// inflightProbe is a single-flight slot: the first goroutine to miss the
// memo on a key executes the probe, every concurrent requester of the same
// key waits on done instead of duplicating the (expensive) execution.
type inflightProbe struct {
	done chan struct{}
	oc   cache.Outcome
	err  error
}

// Option configures an Oracle.
type Option func(*Oracle)

// WithoutMemo disables all memoization — the flat probe memo and the prefix
// trees alike (for the ablation benchmarks).
func WithoutMemo() Option {
	return func(o *Oracle) { o.useMemo = false; o.memo = nil }
}

// WithoutTrie disables the prefix-tree engine, restoring the flat
// exact-match probe memo and the unmemoized session path: trajectories
// (probe, access, and memo-hit counts) are exactly those of the pre-trie
// oracle, which is what the ablation benchmarks compare against. Learned
// machines are identical either way.
func WithoutTrie() Option {
	return func(o *Oracle) { o.useTrie = false }
}

// DefaultSessionCap bounds how many forked sessions the trie keeps parked
// at interior nodes before evicting the least recently used one.
const DefaultSessionCap = 1024

// WithSessionCap overrides the parked-session bound; n <= 0 restores
// DefaultSessionCap. The budget is divided evenly across the output
// store's shards (at least one parked session per shard).
func WithSessionCap(n int) Option {
	return func(o *Oracle) {
		if n <= 0 {
			n = DefaultSessionCap
		}
		o.sessCap = n
	}
}

// WithStoreStripes overrides the lock-stripe count of the oracle's query
// stores. The default (n <= 0) stripes by the input alphabet: one shard
// per leading symbol, so batched workers rarely contend. n == 1 collapses
// each store to a single lock — the pre-striping single-mutex oracle the
// contention benchmarks compare against.
func WithStoreStripes(n int) Option {
	return func(o *Oracle) { o.stripes = n }
}

// WithDeterminismChecks re-executes every n-th output query and compares the
// answers, converting silent cross-query nondeterminism (the symptom of an
// incorrect reset sequence or an adaptive policy, §7.1) into
// ErrNondeterministic instead of an ever-growing hypothesis.
func WithDeterminismChecks(n int) Option {
	return func(o *Oracle) { o.recheck = n }
}

// WithParallelism caps the number of goroutines a batched output query may
// fan out over. n <= 0 restores the default, runtime.GOMAXPROCS(0); n == 1
// forces serial batch answering.
func WithParallelism(n int) Option {
	return func(o *Oracle) { o.workers = n }
}

// WithProbeRetries overrides the oracle's transient-failure retry policy
// (the default is DefaultRetryPolicy). A zero policy disables retries:
// every probe error propagates immediately, as in the pre-resilience
// oracle.
func WithProbeRetries(rp RetryPolicy) Option {
	return func(o *Oracle) { o.retry = rp }
}

// WithProbeVotes executes every real (non-memoized) probe n times and
// majority-votes the outcome, defending against rare wrong-answer flips
// from noisy hardware at n-times the probe cost. Conflicting executions
// are counted in Stats.Disagreements. n <= 1 keeps single execution.
func WithProbeVotes(n int) Option {
	return func(o *Oracle) {
		if n < 1 {
			n = 1
		}
		o.votes = n
	}
}

// SetCheckpointer arranges for fn to run at most once per every answered
// output queries — the hook the crash-resume pipeline uses to auto-snapshot
// the oracle's stores during long learns. fn runs on the querying
// goroutine, serialized against itself; a trigger that finds a checkpoint
// already in progress is skipped, not queued, so a slow snapshot never
// stalls more than one worker. every <= 0 disables checkpointing.
func (o *Oracle) SetCheckpointer(every int, fn func()) {
	o.ckEvery = int64(every)
	o.ckFn = fn
}

// maybeCheckpoint fires the checkpoint hook when the answered-query count
// crossed into a new ckEvery-sized window since the last checkpoint.
func (o *Oracle) maybeCheckpoint() {
	if o.ckFn == nil || o.ckEvery <= 0 {
		return
	}
	seq := o.outputQueries.Load()
	last := o.ckLast.Load()
	if seq/o.ckEvery <= last/o.ckEvery {
		return
	}
	if !o.ckMu.TryLock() {
		return // a checkpoint is already being written; skip this trigger
	}
	defer o.ckMu.Unlock()
	if seq/o.ckEvery <= o.ckLast.Load()/o.ckEvery {
		return
	}
	o.ckFn()
	o.ckLast.Store(seq)
}

// NewOracle builds a Polca oracle over the given cache interface.
func NewOracle(p Prober, opts ...Option) *Oracle {
	o := &Oracle{
		prober:   p,
		cc0:      append([]blocks.Block(nil), p.InitialContent()...),
		memo:     make(map[string]cache.Outcome),
		inflight: make(map[string]*inflightProbe),
		useMemo:  true,
		useTrie:  true,
		sessCap:  DefaultSessionCap,
		retry:    DefaultRetryPolicy,
		votes:    1,
	}
	for _, opt := range opts {
		opt(o)
	}
	if len(o.cc0) != p.Assoc() {
		panic(fmt.Sprintf("polca: initial content has %d lines, associativity is %d", len(o.cc0), p.Assoc()))
	}
	o.cc0IDs = make([]int32, len(o.cc0))
	for i, b := range o.cc0 {
		id, err := blocks.Index(b)
		if err != nil {
			panic(fmt.Sprintf("polca: initial content has invalid line %d: %v; the reset must fill the set", i, err))
		}
		o.cc0IDs[i] = int32(id)
	}
	if o.trieOn() {
		numIn := policy.NumInputs(p.Assoc())
		stripes := o.stripes
		if stripes <= 0 {
			stripes = numIn
		}
		o.out = qstore.New[int, outVal](qstore.Options{Degree: numIn, Stripes: stripes, Sync: true})
		o.pt = qstore.New[int32, probeVal](qstore.Options{Stripes: stripes, Sync: true})
		o.lru = make([]lruList, o.out.Stripes())
		for i := range o.lru {
			o.lru[i] = lruList{head: -1, tail: -1}
		}
		o.lruCap = o.sessCap / o.out.Stripes()
		if o.lruCap < 1 {
			o.lruCap = 1
		}
	}
	return o
}

// trieOn reports whether the prefix-tree engine serves this oracle's
// queries.
func (o *Oracle) trieOn() bool { return o.useMemo && o.useTrie }

// NumInputs implements learn.Teacher: the policy alphabet Ln(0..n-1), Evct.
func (o *Oracle) NumInputs() int { return policy.NumInputs(o.prober.Assoc()) }

// Stats returns a snapshot of the accumulated cost counters. The counters
// themselves are atomics — the probe hot loop never takes a lock for them —
// so the snapshot is read lock-free too.
func (o *Oracle) Stats() Stats {
	return Stats{
		OutputQueries: int(o.outputQueries.Load()),
		Symbols:       int(o.symbols.Load()),
		Probes:        int(o.probesN.Load()),
		MemoHits:      int(o.memoHits.Load()),
		Accesses:      int(o.accessesN.Load()),
		Retries:       int(o.retriesN.Load()),
		Disagreements: int(o.disagreeN.Load()),
		Reprobes:      int(o.reprobesN.Load()),
	}
}

// StoreFootprint reports the trie-node counts of the oracle's two query
// stores — the policy-level output memo and the block-level probe memo —
// as a live capacity/coverage signal. The polcad daemon surfaces it on the
// status endpoint so operators can watch shared engines fill up. Both
// counts are zero when the trie engine is disabled (WithoutMemo or
// WithoutTrie); reading them takes each shard lock briefly, so the hot
// query path is unaffected.
func (o *Oracle) StoreFootprint() (outNodes, probeNodes int) {
	if !o.trieOn() {
		return 0, 0
	}
	return o.out.NodeCount(), o.pt.NodeCount()
}

// BatchHint implements learn.BatchHinter (duck-typed to avoid an import
// cycle with package learn's tests): the learner scales its prefetch chunks
// to the oracle's usable parallelism, so a serial prober keeps the exact
// serial query trajectory. A batched oracle over a compiled simulator
// instead advertises a fixed lockstep width: planning whole chunks against
// the store pays off independently of goroutine parallelism. A fleet-backed
// prober scales the hint to the live fleet width (slots per worker times
// healthy workers), re-read on every call so chunks widen again when a
// quarantined worker is re-admitted.
func (o *Oracle) BatchHint() int {
	if w := o.fleetWidth(); w > 0 {
		h := w * fleetDepth
		if h < batchedHint {
			h = batchedHint
		}
		return h
	}
	if o.batched {
		if sp, ok := o.prober.(*SimProber); ok && sp.tab != nil {
			return batchedHint
		}
	}
	return o.parallelism()
}

// parallelism reports how many goroutines a batch may use against the
// underlying prober: 1 unless the prober explicitly supports concurrency.
// A fleet-backed prober gets one goroutine per live fleet slot — the work
// is I/O bound, so local CPU count is the wrong ceiling.
func (o *Oracle) parallelism() int {
	concurrent := false
	if _, ok := o.prober.(ForkingProber); ok {
		concurrent = true
	} else if cp, ok := o.prober.(ConcurrentProber); ok && cp.ConcurrentProbes() {
		concurrent = true
	}
	if !concurrent {
		return 1
	}
	if o.workers > 0 {
		return o.workers
	}
	if w := o.fleetWidth(); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// probe issues one reset-rooted probe, via the probe memo when enabled.
// fresh=true is the determinism audit: it bypasses the memo entirely AND
// forces a real execution on cached probing stacks (FreshProber) — a cached
// replay of the first answer would make the audit vacuous.
//
// ids, when non-nil, carries q as dense block indices and routes the memo
// through the probe trie: the key is a trie path, not an allocated string.
//
// Memoized probes are single-flighted: when parallel batch goroutines miss
// the memo on the same key (words sharing an input prefix probe identical
// block sequences), only one executes; the rest wait for its result.
func (o *Oracle) probe(ctx context.Context, q []blocks.Block, ids []int32, fresh bool) (cache.Outcome, error) {
	if fresh || !o.useMemo {
		oc, err := o.executeProbe(ctx, q, fresh)
		if err != nil {
			return Missed(), err
		}
		o.probesN.Add(1)
		o.accessesN.Add(int64(len(q)))
		return oc, nil
	}
	if o.trieOn() && ids != nil {
		return o.probeTriePath(ctx, q, ids)
	}

	key := strings.Join(q, " ")
	o.mu.Lock()
	if oc, ok := o.memo[key]; ok {
		o.memoHits.Add(1)
		o.mu.Unlock()
		return oc, nil
	}
	if fl, ok := o.inflight[key]; ok {
		o.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return Missed(), fl.err
		}
		o.memoHits.Add(1)
		return fl.oc, nil
	}
	fl := &inflightProbe{done: make(chan struct{})}
	o.inflight[key] = fl
	o.mu.Unlock()

	fl.oc, fl.err = o.executeProbe(ctx, q, false)
	o.mu.Lock()
	delete(o.inflight, key)
	if fl.err == nil {
		o.probesN.Add(1)
		o.accessesN.Add(int64(len(q)))
		o.memo[key] = fl.oc
	}
	o.mu.Unlock()
	close(fl.done)
	if fl.err != nil {
		return Missed(), fl.err
	}
	return fl.oc, nil
}

// probeTriePath is probe's memoized path over the block-id probe store.
// The probe's shard stays locked only around the memo bookkeeping; the
// execution itself is single-flighted so concurrent requesters of the same
// key wait instead of duplicating the (expensive) probe.
func (o *Oracle) probeTriePath(ctx context.Context, q []blocks.Block, ids []int32) (cache.Outcome, error) {
	sh := o.pt.Acquire(ids)
	n := sh.Ensure(ids)
	if sh.Has(n) {
		oc := sh.Val(n).oc
		o.memoHits.Add(1)
		sh.Release()
		return oc, nil
	}
	if fl := sh.Val(n).fl; fl != nil {
		sh.Release()
		<-fl.done
		if fl.err != nil {
			return Missed(), fl.err
		}
		o.memoHits.Add(1)
		return fl.oc, nil
	}
	fl := &inflightProbe{done: make(chan struct{})}
	sh.Val(n).fl = fl
	sh.Release()

	fl.oc, fl.err = o.executeProbe(ctx, q, false)
	sh = o.pt.Acquire(ids)
	sh.Val(n).fl = nil
	if fl.err == nil {
		o.probesN.Add(1)
		o.accessesN.Add(int64(len(q)))
		sh.Put(n, probeVal{oc: fl.oc})
	}
	sh.Release()
	close(fl.done)
	if fl.err != nil {
		return Missed(), fl.err
	}
	return fl.oc, nil
}

// reprobe forcibly re-executes a probe whose memoized or just-measured
// outcome failed a consistency check (a cached access that missed, a fresh
// access that hit, an eviction group without exactly one victim). On noisy
// backends such a violation is overwhelmingly a measurement fault that
// slipped past retry and voting, not true nondeterminism — so the outcome
// is re-measured (re-voted) once and the memo corrected before the caller
// decides whether to declare ErrNondeterministic. Every such re-measurement
// is counted in Stats.Reprobes.
func (o *Oracle) reprobe(ctx context.Context, q []blocks.Block, ids []int32) (cache.Outcome, error) {
	oc, err := o.executeProbe(ctx, q, false)
	if err != nil {
		return Missed(), err
	}
	o.reprobesN.Add(1)
	o.probesN.Add(1)
	o.accessesN.Add(int64(len(q)))
	if o.useMemo {
		if o.trieOn() && ids != nil {
			sh := o.pt.Acquire(ids)
			n := sh.Ensure(ids)
			sh.Put(n, probeVal{oc: oc})
			sh.Release()
		} else {
			key := strings.Join(q, " ")
			o.mu.Lock()
			o.memo[key] = oc
			o.mu.Unlock()
		}
	}
	return oc, nil
}

// executeProbe runs one probe on the prober, absorbing transient failures
// through the retry policy and — when WithProbeVotes is set — re-executing
// the probe and majority-voting the outcome to defend against wrong-answer
// flips. Vote disagreements are counted; a probe whose executions split
// evenly is decided by the majority count (strictly more than half of the
// votes cast), which exists because vote counts are chosen odd by callers.
func (o *Oracle) executeProbe(ctx context.Context, q []blocks.Block, fresh bool) (cache.Outcome, error) {
	if o.votes <= 1 {
		return o.retryProbe(ctx, q, fresh)
	}
	hits := 0
	for v := 0; v < o.votes; v++ {
		oc, err := o.retryProbe(ctx, q, fresh)
		if err != nil {
			return Missed(), err
		}
		if oc == cache.Hit {
			hits++
		}
	}
	if hits != 0 && hits != o.votes {
		o.disagreeN.Add(1)
	}
	if hits*2 > o.votes {
		return cache.Hit, nil
	}
	return cache.Miss, nil
}

// retryProbe is one voted execution: the raw probe wrapped in the
// exponential-backoff retry loop of retry.go.
func (o *Oracle) retryProbe(ctx context.Context, q []blocks.Block, fresh bool) (cache.Outcome, error) {
	return o.retry.Do(ctx, &o.retriesN, func() (cache.Outcome, error) {
		return o.rawProbe(ctx, q, fresh)
	})
}

// rawProbe runs one probe on the prober, through ProbeFresh when the audit
// demands an uncached execution and the prober supports it.
func (o *Oracle) rawProbe(ctx context.Context, q []blocks.Block, fresh bool) (cache.Outcome, error) {
	if fresh {
		if fp, ok := o.prober.(FreshProber); ok {
			return fp.ProbeFresh(ctx, q)
		}
	}
	return o.prober.Probe(ctx, q)
}

// Missed is a zero Outcome helper used on error paths.
func Missed() cache.Outcome { return cache.Miss }

// OutputQuery runs the policy-input word (encoded as in package policy:
// 0..n-1 are Ln(i), n is Evct) against the cache and returns the policy
// output word: policy.Bottom for every Ln input and the evicted line for
// every Evct input. This is the oracle the learner consumes; Membership
// (Algorithm 1 verbatim) is a comparison on top of it.
func (o *Oracle) OutputQuery(ctx context.Context, word []int) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seq := int(o.outputQueries.Add(1))
	o.symbols.Add(int64(len(word)))
	out, err := o.outputQueryOnce(ctx, word, false)
	if err != nil {
		return nil, err
	}
	if o.recheck > 0 && seq%o.recheck == 0 && len(word) > 0 {
		// Determinism audit: memoization must be bypassed, otherwise the
		// first answer would simply be replayed.
		again, err := o.outputQueryOnce(ctx, word, true)
		if err != nil {
			return nil, err
		}
		for i := range out {
			if out[i] != again[i] {
				return nil, fmt.Errorf("%w: repeated query diverged at position %d (%d vs %d)",
					ErrNondeterministic, i, out[i], again[i])
			}
		}
	}
	o.maybeCheckpoint()
	return out, nil
}

// OutputQueryBatch implements learn.BatchTeacher: it answers len(words)
// independent output queries, fanning them out across a worker pool when the
// prober supports concurrent probing (forking simulator sessions or a
// replicated hardware interface) and falling back to a serial loop
// otherwise. Answers, memo contents and counters are identical to asking the
// words one by one; only the wall-clock cost changes.
func (o *Oracle) OutputQueryBatch(ctx context.Context, words [][]int) ([][]int, error) {
	if out, done, err := o.tryBatchedKernel(ctx, words); done {
		return out, err
	}
	workers := o.parallelism()
	if workers > len(words) {
		workers = len(words)
	}
	out := make([][]int, len(words))
	if workers <= 1 {
		for i, w := range words {
			ans, err := o.OutputQuery(ctx, w)
			if err != nil {
				return nil, err
			}
			out[i] = ans
		}
		return out, nil
	}
	errs := make([]error, len(words))
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// OutputQuery checks ctx up front, so a batch cancelled by
				// its first failure drains its remaining indices without
				// prober work and every worker exits through the channel
				// close — one exhausted retry ladder fails the batch, the
				// other words do not each pay their own.
				out[i], errs[i] = o.OutputQuery(bctx, words[i])
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	for i := range words {
		next <- i
	}
	close(next)
	wg.Wait()
	// Report the first real failure in submission order; the cancellations
	// it inflicted on the rest of the batch are collateral, surfaced only
	// when nothing better exists (the caller itself was cancelled).
	var cancelled error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
		if cancelled == nil {
			cancelled = err
		}
	}
	if cancelled != nil {
		return nil, cancelled
	}
	return out, nil
}

func (o *Oracle) outputQueryOnce(ctx context.Context, word []int, fresh bool) ([]int, error) {
	if fp, ok := o.prober.(ForkingProber); ok {
		if !fresh && o.trieOn() {
			return o.sessionQueryTrie(fp, word)
		}
		return o.outputQuerySessions(fp, word)
	}
	if !fresh && o.trieOn() {
		return o.probesQueryTrie(ctx, word)
	}
	return o.outputQueryProbes(ctx, word, fresh)
}

// outputQueryProbes is the faithful Algorithm 1 loop over reset-rooted
// probes, used against hardware-style probers.
func (o *Oracle) outputQueryProbes(ctx context.Context, word []int, fresh bool) ([]int, error) {
	n := o.prober.Assoc()
	cc := append([]blocks.Block(nil), o.cc0...)
	ic := make([]blocks.Block, 0, len(word))
	out := make([]int, len(word))

	for i, ip := range word {
		b, err := mapInput(ip, cc, n)
		if err != nil {
			return nil, err
		}
		ic = append(ic, b)
		oc, err := o.probe(ctx, ic, nil, fresh)
		if err != nil {
			return nil, err
		}
		op, err := o.mapOutputProbes(ctx, ip, oc, ic, cc, fresh)
		if err != nil {
			return nil, err
		}
		if op != policy.Bottom {
			cc[op] = b
		}
		out[i] = op
	}
	return out, nil
}

// mapOutputProbes maps a cache outcome back to a policy output, issuing the
// findEvicted probes on a miss.
func (o *Oracle) mapOutputProbes(ctx context.Context, ip int, oc cache.Outcome, ic []blocks.Block, cc []blocks.Block, fresh bool) (int, error) {
	n := o.prober.Assoc()
	if ip < n { // Ln(i): the block is cached, the access must hit
		if oc != cache.Hit {
			// Suspected measurement fault: re-measure once before
			// declaring nondeterminism. The audit path (fresh) stays
			// strict — it exists to catch exactly this.
			if !fresh {
				roc, rerr := o.reprobe(ctx, ic, nil)
				if rerr != nil {
					return 0, rerr
				}
				if roc == cache.Hit {
					return policy.Bottom, nil
				}
			}
			return 0, fmt.Errorf("%w: access to cached block %s missed", ErrNondeterministic, ic[len(ic)-1])
		}
		return policy.Bottom, nil
	}
	// Evct: the access must miss, and exactly one resident block must have
	// been displaced.
	if oc != cache.Miss {
		if fresh {
			return 0, fmt.Errorf("%w: access to fresh block %s hit", ErrNondeterministic, ic[len(ic)-1])
		}
		roc, rerr := o.reprobe(ctx, ic, nil)
		if rerr != nil {
			return 0, rerr
		}
		if roc != cache.Miss {
			return 0, fmt.Errorf("%w: access to fresh block %s hit", ErrNondeterministic, ic[len(ic)-1])
		}
	}
	if bpr, ok := o.prober.(ProbeBatcher); ok && o.batched && !fresh && !o.useMemo {
		// Unmemoized eviction probes are independent; a batched oracle over
		// a replica pool issues them in one grouped call. The memoized and
		// audit paths keep the serial loop (their bookkeeping is per probe).
		return o.findEvictedBatched(ctx, bpr, ic, cc)
	}
	scan := func(refresh bool) (int, error) {
		evicted := -1
		for i := 0; i < n; i++ {
			probe := append(append([]blocks.Block(nil), ic...), cc[i])
			var poc cache.Outcome
			var err error
			if refresh {
				poc, err = o.reprobe(ctx, probe, nil)
			} else {
				poc, err = o.probe(ctx, probe, nil, fresh)
			}
			if err != nil {
				return 0, err
			}
			if poc == cache.Miss {
				if evicted != -1 {
					return 0, fmt.Errorf("%w: blocks %s and %s both evicted by one miss", ErrNondeterministic, cc[evicted], cc[i])
				}
				evicted = i
			}
		}
		if evicted == -1 {
			return 0, fmt.Errorf("%w: no resident block evicted by a miss", ErrNondeterministic)
		}
		return evicted, nil
	}
	evicted, err := scan(false)
	if err != nil && errors.Is(err, ErrNondeterministic) && !fresh {
		// An inconsistent eviction group means at least one probe in it is
		// wrong — re-measure the whole group, correcting the memo, and only
		// then give up.
		evicted, err = scan(true)
	}
	return evicted, err
}

// outputQuerySessions is the session-based fast path: one incremental walk
// down the trace, forking at each miss for the eviction probes.
func (o *Oracle) outputQuerySessions(fp ForkingProber, word []int) ([]int, error) {
	n := fp.Assoc()
	cc := append([]blocks.Block(nil), o.cc0...)
	out := make([]int, len(word))

	sess, err := fp.NewSession()
	if err != nil {
		return nil, err
	}
	// Counters are accumulated locally and flushed once per query so the
	// hot loop touches no shared cache line per access.
	accesses := 0
	defer func() {
		o.probesN.Add(1)
		o.accessesN.Add(int64(accesses))
	}()
	for i, ip := range word {
		b, err := mapInput(ip, cc, n)
		if err != nil {
			return nil, err
		}
		oc, err := sess.Access(b)
		if err != nil {
			return nil, err
		}
		accesses++
		if ip < n {
			if oc != cache.Hit {
				return nil, fmt.Errorf("%w: access to cached block %s missed", ErrNondeterministic, b)
			}
			out[i] = policy.Bottom
			continue
		}
		if oc != cache.Miss {
			return nil, fmt.Errorf("%w: access to fresh block %s hit", ErrNondeterministic, b)
		}
		evicted := -1
		for j := 0; j < n; j++ {
			poc, err := evictionProbe(sess, cc[j])
			if err != nil {
				return nil, err
			}
			accesses++
			if poc == cache.Miss {
				if evicted != -1 {
					return nil, fmt.Errorf("%w: blocks %s and %s both evicted by one miss", ErrNondeterministic, cc[evicted], cc[j])
				}
				evicted = j
			}
		}
		if evicted == -1 {
			return nil, fmt.Errorf("%w: no resident block evicted by a miss", ErrNondeterministic)
		}
		cc[evicted] = b
		out[i] = evicted
	}
	return out, nil
}

// walkKnownPrefix walks word through the output store under the word's
// shard lock, filling out[] and evolving cc for every symbol whose output
// is recorded. It returns the number of known symbols k, the store node
// reached, the block fed at each known position, and the deepest parked
// session on the path (with its depth). The caller answers symbols 0..k-1
// with zero prober work.
func (o *Oracle) walkKnownPrefix(sh *outShard, word, out []int, cc []int32, feed []int32) (k int, node int32, fed []int32, resume int32, resumeDepth int, err error) {
	n := o.prober.Assoc()
	node = 0
	resume = -1
	for k < len(word) {
		ip := word[k]
		if ip < 0 || ip > n {
			return 0, 0, feed, -1, 0, fmt.Errorf("polca: input %d out of range for associativity %d", ip, n)
		}
		c := sh.Child(node, ip)
		if c < 0 || !sh.Has(c) {
			break
		}
		b := mapInputID(ip, cc)
		op := int(sh.Val(c).out)
		out[k] = op
		if op != policy.Bottom {
			cc[op] = b
		}
		feed = append(feed, b)
		node = c
		k++
		if sh.Val(c).sess != nil {
			resume, resumeDepth = c, k
		}
	}
	return k, node, feed, resume, resumeDepth, nil
}

// recordOutputs stores the outputs of word in the output store and parks
// the collected session forks at their nodes, under the word's shard lock.
func (o *Oracle) recordOutputs(word, out []int, parks []parkedFork) {
	sh := o.out.Acquire(word)
	node := int32(0)
	depth := 0
	pi := 0
	for pi < len(parks) && parks[pi].depth == 0 {
		o.park(sh, node, parks[pi].sess)
		pi++
	}
	for _, ip := range word {
		node = sh.Extend(node, ip)
		depth++
		v := sh.Val(node)
		v.out = int16(out[depth-1])
		sh.SetHas(node)
		for pi < len(parks) && parks[pi].depth == depth {
			o.park(sh, node, parks[pi].sess)
			pi++
		}
	}
	sh.Release()
}

// parkedFork is a session fork waiting to be pinned at the node of the
// word prefix of the given depth.
type parkedFork struct {
	depth int
	sess  Session
}

// sessionQueryTrie answers one output query through the output store
// backed by resumable sessions: the longest recorded prefix is answered
// without touching the prober, execution resumes from the deepest parked
// session on the path, and only genuinely new symbols reach the cache.
// Session forks are parked along the executed suffix so future extensions
// of this word resume in O(1). Only the word's shard is locked, and only
// around the prefix walk and the final recording — concurrent queries in
// other subtrees proceed untouched.
func (o *Oracle) sessionQueryTrie(fp ForkingProber, word []int) ([]int, error) {
	n := fp.Assoc()
	out := make([]int, len(word))
	cc := append([]int32(nil), o.cc0IDs...)
	feed := make([]int32, 0, len(word))

	sh := o.out.Acquire(word)
	k, _, feed, resume, resumeDepth, err := o.walkKnownPrefix(sh, word, out, cc, feed)
	if err != nil {
		sh.Release()
		return nil, err
	}
	if k == len(word) {
		if resume >= 0 {
			o.touch(sh, resume)
		}
		sh.Release()
		o.memoHits.Add(int64(k))
		return out, nil
	}
	var sess Session
	if resume >= 0 {
		o.touch(sh, resume)
		sess, err = sh.Val(resume).sess.Fork()
	}
	sh.Release()
	if resume < 0 {
		resumeDepth = 0
		sess, err = fp.NewSession()
	}
	if err != nil {
		return nil, err
	}
	o.memoHits.Add(int64(k))

	accesses := 0
	defer func() {
		o.probesN.Add(1)
		o.accessesN.Add(int64(accesses))
	}()

	// Fast-forward the session through the tail of the known prefix; the
	// outputs are recorded, so this is pure feeding, no eviction probes.
	for i := resumeDepth; i < k; i++ {
		if _, err := sess.Access(blocks.Interned(int(feed[i]))); err != nil {
			return nil, err
		}
		accesses++
	}

	var parks []parkedFork
	if resumeDepth < k {
		// Park a fork at the divergence frontier: sibling queries of this
		// word share exactly this prefix.
		if f, err := sess.Fork(); err == nil {
			parks = append(parks, parkedFork{depth: k, sess: f})
		}
	}

	for i := k; i < len(word); i++ {
		ip := word[i]
		if ip < 0 || ip > n {
			return nil, fmt.Errorf("polca: input %d out of range for associativity %d", ip, n)
		}
		b := mapInputID(ip, cc)
		oc, err := sess.Access(blocks.Interned(int(b)))
		if err != nil {
			return nil, err
		}
		accesses++
		if ip < n {
			if oc != cache.Hit {
				return nil, fmt.Errorf("%w: access to cached block %s missed", ErrNondeterministic, blocks.Interned(int(b)))
			}
			out[i] = policy.Bottom
		} else {
			if oc != cache.Miss {
				return nil, fmt.Errorf("%w: access to fresh block %s hit", ErrNondeterministic, blocks.Interned(int(b)))
			}
			evicted := -1
			for j := 0; j < n; j++ {
				poc, err := evictionProbe(sess, blocks.Interned(int(cc[j])))
				if err != nil {
					return nil, err
				}
				accesses++
				if poc == cache.Miss {
					if evicted != -1 {
						return nil, fmt.Errorf("%w: blocks %s and %s both evicted by one miss",
							ErrNondeterministic, blocks.Interned(int(cc[evicted])), blocks.Interned(int(cc[j])))
					}
					evicted = j
				}
			}
			if evicted == -1 {
				return nil, fmt.Errorf("%w: no resident block evicted by a miss", ErrNondeterministic)
			}
			cc[evicted] = b
			out[i] = evicted
		}
		if f, err := sess.Fork(); err == nil {
			parks = append(parks, parkedFork{depth: i + 1, sess: f})
		}
	}
	o.recordOutputs(word, out, parks)
	return out, nil
}

// probesQueryTrie is the trie-memoized variant of the reset-rooted probe
// path, for probers without session support: the recorded prefix skips its
// probes entirely, and the remaining symbols go through the block-id probe
// trie (exact-match memo + single-flight) instead of string-keyed maps.
func (o *Oracle) probesQueryTrie(ctx context.Context, word []int) ([]int, error) {
	n := o.prober.Assoc()
	out := make([]int, len(word))
	cc := append([]int32(nil), o.cc0IDs...)
	feed := make([]int32, 0, len(word))

	sh := o.out.Acquire(word)
	k, _, feed, _, _, err := o.walkKnownPrefix(sh, word, out, cc, feed)
	sh.Release()
	if err != nil {
		return nil, err
	}
	o.memoHits.Add(int64(k))
	if k == len(word) {
		return out, nil
	}

	ic := feed // reuse the prefix's block ids as the probe id sequence
	icN := make([]blocks.Block, len(ic), len(word))
	for i, b := range ic {
		icN[i] = blocks.Interned(int(b))
	}
	for i := k; i < len(word); i++ {
		ip := word[i]
		if ip < 0 || ip > n {
			return nil, fmt.Errorf("polca: input %d out of range for associativity %d", ip, n)
		}
		b := mapInputID(ip, cc)
		ic = append(ic, b)
		icN = append(icN, blocks.Interned(int(b)))
		oc, err := o.probe(ctx, icN, ic, false)
		if err != nil {
			return nil, err
		}
		op, err := o.mapOutputTrie(ctx, ip, oc, ic, icN, cc)
		if err != nil {
			return nil, err
		}
		if op != policy.Bottom {
			cc[op] = b
		}
		out[i] = op
	}
	o.recordOutputs(word, out, nil)
	return out, nil
}

// mapOutputTrie maps a cache outcome back to a policy output on the trie
// probe path, issuing the findEvicted probes by block id. On a batched
// oracle over a ProbeBatcher (a remote fleet, a replica pool) the
// eviction-probe group ships as one grouped call with identical memo and
// counter bookkeeping — see findEvictedTrieBatched.
func (o *Oracle) mapOutputTrie(ctx context.Context, ip int, oc cache.Outcome, ic []int32, icN []blocks.Block, cc []int32) (int, error) {
	n := o.prober.Assoc()
	if ip < n { // Ln(i): the block is cached, the access must hit
		if oc != cache.Hit {
			// Suspected measurement fault: re-measure (and correct the
			// memo) once before declaring nondeterminism.
			roc, rerr := o.reprobe(ctx, icN, ic)
			if rerr != nil {
				return 0, rerr
			}
			if roc != cache.Hit {
				return 0, fmt.Errorf("%w: access to cached block %s missed", ErrNondeterministic, icN[len(icN)-1])
			}
		}
		return policy.Bottom, nil
	}
	if oc != cache.Miss {
		roc, rerr := o.reprobe(ctx, icN, ic)
		if rerr != nil {
			return 0, rerr
		}
		if roc != cache.Miss {
			return 0, fmt.Errorf("%w: access to fresh block %s hit", ErrNondeterministic, icN[len(icN)-1])
		}
	}
	if bpr, ok := o.prober.(ProbeBatcher); ok && o.batched {
		return o.findEvictedTrieBatched(ctx, bpr, ic, icN, cc)
	}
	scan := func(refresh bool) (int, error) {
		evicted := -1
		for i := 0; i < n; i++ {
			pids := append(append([]int32(nil), ic...), cc[i])
			pN := append(append([]blocks.Block(nil), icN...), blocks.Interned(int(cc[i])))
			var poc cache.Outcome
			var err error
			if refresh {
				poc, err = o.reprobe(ctx, pN, pids)
			} else {
				poc, err = o.probe(ctx, pN, pids, false)
			}
			if err != nil {
				return 0, err
			}
			if poc == cache.Miss {
				if evicted != -1 {
					return 0, fmt.Errorf("%w: blocks %s and %s both evicted by one miss",
						ErrNondeterministic, blocks.Interned(int(cc[evicted])), blocks.Interned(int(cc[i])))
				}
				evicted = i
			}
		}
		if evicted == -1 {
			return 0, fmt.Errorf("%w: no resident block evicted by a miss", ErrNondeterministic)
		}
		return evicted, nil
	}
	evicted, err := scan(false)
	if err != nil && errors.Is(err, ErrNondeterministic) {
		// An inconsistent eviction group means at least one probe in it is
		// wrong — re-measure the whole group before giving up.
		evicted, err = scan(true)
	}
	return evicted, err
}

// mapInputID is mapInput over dense block ids; the input must already be
// range-checked.
func mapInputID(ip int, cc []int32) int32 {
	if ip < len(cc) {
		return cc[ip]
	}
	return freshID(cc)
}

// freshID returns the smallest universe index not present in cc — the id
// analog of blocks.Fresh, with no map and no string handling.
func freshID(cc []int32) int32 {
	for id := int32(0); ; id++ {
		taken := false
		for _, c := range cc {
			if c == id {
				taken = true
				break
			}
		}
		if !taken {
			return id
		}
	}
}

// mapInput maps a policy input to a memory block given the tracked content
// (the paper's mapInput).
func mapInput(ip int, cc []blocks.Block, n int) (blocks.Block, error) {
	if ip < 0 || ip > n {
		return "", fmt.Errorf("polca: input %d out of range for associativity %d", ip, n)
	}
	if ip < n {
		return cc[ip], nil
	}
	return blocks.Fresh(cc), nil
}

// Pair is one input/output pair of a policy trace.
type Pair struct {
	In  int // 0..n-1 for Ln(i), n for Evct
	Out int // policy.Bottom or a line index
}

// Membership decides whether the trace belongs to the policy's trace
// semantics JPK — Algorithm 1 verbatim. A nondeterminism error is
// propagated; a mere output mismatch yields false.
func (o *Oracle) Membership(ctx context.Context, t []Pair) (bool, error) {
	word := make([]int, len(t))
	for i, p := range t {
		word[i] = p.In
	}
	got, err := o.OutputQuery(ctx, word)
	if err != nil {
		return false, err
	}
	for i, p := range t {
		if got[i] != p.Out {
			return false, nil
		}
	}
	return true, nil
}
