package polca

// FleetWidther marks a Prober backed by a dynamically sized worker fleet
// (internal/remote's Fleet): FleetWidth reports how many fleet slots are
// live right now, shrinking when workers are quarantined and growing back
// when probation re-admits them. The oracle scales its BatchHint — and its
// batch fan-out — to the live width, so the learner's prefetch chunks keep
// every healthy worker busy instead of sizing to a constant or to local
// CPU count (a remote fleet is I/O bound; GOMAXPROCS says nothing about
// it).
type FleetWidther interface {
	FleetWidth() int
}

// fleetDepth is the sub-batch depth BatchHint provisions per live fleet
// slot: deep enough that a worker amortizes its HTTP round trip over
// several probes, shallow enough that a chunk drains before the fleet's
// health picture goes stale.
const fleetDepth = 8

// fleetWidth resolves the prober's live fleet width, or 0 when the prober
// is not fleet-backed.
func (o *Oracle) fleetWidth() int {
	if fw, ok := o.prober.(FleetWidther); ok {
		if w := fw.FleetWidth(); w > 0 {
			return w
		}
	}
	return 0
}
