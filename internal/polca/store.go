package polca

// The oracle's two memo layers over the shared query store
// (internal/qstore), replacing the bespoke outTrie/probeTrie pair and the
// single oracle mutex that guarded them.
//
// The output store is keyed by *policy inputs*: every node is one
// policy-input prefix, recording the policy output of its last symbol.
// Any output query is answered symbol by symbol from its longest recorded
// prefix — the whole prefix costs zero prober work — and, for forking
// (simulator) probers, a node can additionally pin a live Session parked
// in exactly the cache state the prefix reaches. A query that diverges at
// depth k forks the deepest parked ancestor and executes only the suffix,
// replacing the quadratic reset-rooted prefix replay with amortized O(1)
// prober work per new symbol.
//
// The probe store is keyed by *block ids*: it is the reset-rooted
// (hardware-style) probe memo plus single-flight, with the store's dense
// edge interning keeping child arrays sized by the blocks actually seen.
//
// Both stores are lock-striped by first symbol: batched workers answering
// words in different subtrees never contend. Session parking is a
// decoration on the output store's values — the store knows nothing about
// sessions, snapshots skip them, and the LRU bookkeeping below is the
// oracle's, kept per shard and guarded by that shard's lock.

import (
	"repro/internal/cache"
	"repro/internal/qstore"
)

// outVal is the per-node payload of the policy-output store.
type outVal struct {
	out        int16   // policy output of the prefix's last symbol
	sess       Session // parked session in the prefix's cache state, or nil
	prev, next int32   // per-shard LRU links, meaningful while sess != nil
}

// probeVal is the per-node payload of the block-id probe store.
type probeVal struct {
	fl *inflightProbe // single-flight slot while a probe is executing
	oc cache.Outcome  // memoized final outcome
}

// outShard is the locked view of one output-store shard.
type outShard = qstore.Shard[int, outVal]

// lruList is one shard's parked-session LRU bookkeeping. It is guarded by
// the shard's own lock: every caller below holds the shard.
type lruList struct {
	head, tail int32 // most/least recently used parked node, -1 if none
	parked     int
}

// lruOf returns the LRU list of the shard (callers hold the shard).
func (o *Oracle) lruOf(sh *outShard) *lruList { return &o.lru[sh.Index()] }

// unlink removes n from its shard's LRU list (n must be parked).
func (o *Oracle) unlink(sh *outShard, n int32) {
	l := o.lruOf(sh)
	v := sh.Val(n)
	p, x := v.prev, v.next
	if p != -1 {
		sh.Val(p).next = x
	} else {
		l.head = x
	}
	if x != -1 {
		sh.Val(x).prev = p
	} else {
		l.tail = p
	}
	v.prev, v.next = -1, -1
}

// pushFront makes n the most recently used parked node of its shard.
func (o *Oracle) pushFront(sh *outShard, n int32) {
	l := o.lruOf(sh)
	v := sh.Val(n)
	v.prev = -1
	v.next = l.head
	if l.head != -1 {
		sh.Val(l.head).prev = n
	}
	l.head = n
	if l.tail == -1 {
		l.tail = n
	}
}

// touch refreshes n's LRU recency (no-op when n holds no session).
func (o *Oracle) touch(sh *outShard, n int32) {
	if sh.Val(n).sess == nil || o.lruOf(sh).head == n {
		return
	}
	o.unlink(sh, n)
	o.pushFront(sh, n)
}

// park pins s at node n, replacing any session already parked there, and
// evicts the shard's least recently used sessions while over its budget
// (the global session cap divided evenly across shards).
func (o *Oracle) park(sh *outShard, n int32, s Session) {
	l := o.lruOf(sh)
	if sh.Val(n).sess != nil {
		o.unlink(sh, n)
		l.parked--
	}
	sh.Val(n).sess = s
	o.pushFront(sh, n)
	l.parked++
	for l.parked > o.lruCap && l.tail != -1 {
		vic := l.tail
		o.unlink(sh, vic)
		sh.Val(vic).sess = nil
		l.parked--
	}
}
