package polca

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/learn"
	"repro/internal/policy"
	"repro/internal/qstore"
)

// chunk splits words into batches of size sz, preserving order.
func chunk(words [][]int, sz int) [][][]int {
	var out [][][]int
	for len(words) > 0 {
		n := sz
		if n > len(words) {
			n = len(words)
		}
		out = append(out, words[:n])
		words = words[n:]
	}
	return out
}

// TestBatchedOracleMatchesSerial drives two oracles over the same compiled
// prober — one batched, one per-session — through identical chunked query
// streams and asserts bit-identical answers AND bit-identical cost
// counters after every chunk. The stream deliberately mixes extension
// words (suffix resume), in-batch prefix/extension dependencies, duplicate
// words (in-batch memo), and a small session cap (LRU evictions dropping
// placeholder parks), all under periodic determinism audits.
func TestBatchedOracleMatchesSerial(t *testing.T) {
	for _, c := range tenPolicies {
		t.Run(c.name, func(t *testing.T) {
			for _, cap := range []int{0, 6} {
				serial := NewOracle(NewSimProber(policy.MustNew(c.name, c.assoc)),
					WithSessionCap(cap), WithDeterminismChecks(3))
				batched := NewOracle(NewSimProber(policy.MustNew(c.name, c.assoc)),
					WithSessionCap(cap), WithDeterminismChecks(3), WithBatchedQueries())
				if !batched.Batched() {
					t.Fatal("WithBatchedQueries did not enable the batched engine")
				}
				words := qstore.Enumerate(policy.NumInputs(c.assoc), 4)[1:]
				// Duplicate a few words into the stream so batches carry
				// fully-known and in-batch-duplicate entries.
				stream := append(append([][]int{}, words...), words[3], words[len(words)/2], words[3])
				for ci, ch := range chunk(stream, 7) {
					want := make([][]int, len(ch))
					for i, w := range ch {
						ans, err := serial.OutputQuery(context.Background(), w)
						if err != nil {
							t.Fatalf("serial chunk %d word %v: %v", ci, w, err)
						}
						want[i] = ans
					}
					got, err := batched.OutputQueryBatch(context.Background(), ch)
					if err != nil {
						t.Fatalf("batched chunk %d: %v", ci, err)
					}
					for i := range ch {
						for j := range want[i] {
							if got[i][j] != want[i][j] {
								t.Fatalf("cap %d chunk %d word %v: batched %v, serial %v", cap, ci, ch[i], got[i], want[i])
							}
						}
					}
					if bs, ss := batched.Stats(), serial.Stats(); bs != ss {
						t.Fatalf("cap %d: stats diverged after chunk %d: batched %+v, serial %+v", cap, ci, bs, ss)
					}
				}
				// The recorded stores must agree too: replaying the whole
				// stream once more must be answered fully from memo on both,
				// with identical answers and identical counter deltas.
				got, err := batched.OutputQueryBatch(context.Background(), words)
				if err != nil {
					t.Fatalf("batched replay: %v", err)
				}
				for i, w := range words {
					want, err := serial.OutputQuery(context.Background(), w)
					if err != nil {
						t.Fatalf("serial replay %v: %v", w, err)
					}
					for j := range want {
						if got[i][j] != want[j] {
							t.Fatalf("replay %v: batched %v, serial %v", w, got[i], want)
						}
					}
				}
				if bs, ss := batched.Stats(), serial.Stats(); bs != ss {
					t.Fatalf("cap %d: stats diverged after replay: batched %+v, serial %+v", cap, bs, ss)
				}
			}
		})
	}
}

// TestBatchedNoMemoMatchesSerial pins the memo-less lockstep path (the
// ablation-benchmark configuration): same answers, same counters as the
// per-session WithoutMemo oracle.
func TestBatchedNoMemoMatchesSerial(t *testing.T) {
	for _, c := range []struct {
		name  string
		assoc int
	}{{"LRU", 4}, {"SRRIP-HP", 4}, {"New1", 4}, {"PLRU", 8}} {
		t.Run(c.name, func(t *testing.T) {
			serial := NewOracle(NewSimProber(policy.MustNew(c.name, c.assoc)), WithoutMemo())
			batched := NewOracle(NewSimProber(policy.MustNew(c.name, c.assoc)), WithoutMemo(), WithBatchedQueries())
			words := qstore.Enumerate(policy.NumInputs(c.assoc), 4)[1:]
			got, err := batched.OutputQueryBatch(context.Background(), words)
			if err != nil {
				t.Fatal(err)
			}
			for i, w := range words {
				want, err := serial.OutputQuery(context.Background(), w)
				if err != nil {
					t.Fatalf("serial %v: %v", w, err)
				}
				for j := range want {
					if got[i][j] != want[j] {
						t.Fatalf("word %v: batched %v, serial %v", w, got[i], want)
					}
				}
			}
			if bs, ss := batched.Stats(), serial.Stats(); bs != ss {
				t.Fatalf("stats diverged: batched %+v, serial %+v", bs, ss)
			}
		})
	}
}

// TestBatchedInterpretedFallsBack: an interpreted prober has no kernel
// table, so the batched option must quietly keep the per-session path.
func TestBatchedInterpretedFallsBack(t *testing.T) {
	o := NewOracle(NewInterpretedSimProber(policy.MustNew("LRU", 4)), WithBatchedQueries())
	if o.BatchHint() != 1 && o.BatchHint() == batchedHint {
		t.Fatal("interpreted prober advertises the lockstep batch hint")
	}
	words := qstore.Enumerate(policy.NumInputs(4), 3)[1:]
	ref := NewOracle(NewInterpretedSimProber(policy.MustNew("LRU", 4)))
	got, err := o.OutputQueryBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		want, err := ref.OutputQuery(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("word %v: %v vs %v", w, got[i], want)
			}
		}
	}
}

// TestBatchedLearnEquivalence runs the full learner end to end on a serial
// and a batched oracle with a pinned prefetch width: the learned machines
// must be identical and the oracle counters bit-identical — the whole
// learning trajectory, not just individual queries, is preserved.
func TestBatchedLearnEquivalence(t *testing.T) {
	for _, name := range []string{"LRU", "SRRIP-HP", "New1"} {
		t.Run(name, func(t *testing.T) {
			opt := learn.Options{Depth: 1, BatchSize: 32}
			serial := NewOracle(NewSimProber(policy.MustNew(name, 4)), WithParallelism(1))
			batched := NewOracle(NewSimProber(policy.MustNew(name, 4)), WithBatchedQueries())
			rs, err := learn.Learn(context.Background(), serial, opt)
			if err != nil {
				t.Fatalf("serial learn: %v", err)
			}
			rb, err := learn.Learn(context.Background(), batched, opt)
			if err != nil {
				t.Fatalf("batched learn: %v", err)
			}
			js, err := json.Marshal(rs.Machine)
			if err != nil {
				t.Fatal(err)
			}
			jb, err := json.Marshal(rb.Machine)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(js, jb) {
				t.Fatal("batched and serial learners produced different machine JSON")
			}
			if bs, ss := batched.Stats(), serial.Stats(); bs != ss {
				t.Fatalf("oracle stats diverged: batched %+v, serial %+v", bs, ss)
			}
		})
	}
}
