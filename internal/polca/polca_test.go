package polca

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/mealy"
	"repro/internal/policy"
)

var learnedPolicies = []string{"FIFO", "LRU", "PLRU", "MRU", "LIP", "SRRIP-HP", "SRRIP-FP", "New1", "New2"}

// TestTheorem31: Polca's output queries coincide with the policy's own
// semantics — for every input word, the outputs recovered from hit/miss
// probing equal direct execution of the (hidden) policy. This is the
// computational content of Theorem 3.1.
func TestTheorem31(t *testing.T) {
	for _, name := range learnedPolicies {
		name := name
		t.Run(name, func(t *testing.T) {
			pol := policy.MustNew(name, 4)
			truth, err := mealy.FromPolicy(pol, 0)
			if err != nil {
				t.Fatal(err)
			}
			oracle := NewOracle(NewSimProber(policy.MustNew(name, 4)))
			f := func(raw []uint8) bool {
				word := make([]int, len(raw))
				for i, r := range raw {
					word[i] = int(r) % truth.NumInputs
				}
				got, err := oracle.OutputQuery(word)
				if err != nil {
					t.Fatalf("oracle error: %v", err)
				}
				want := truth.Run(word)
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSlowAndFastPathsAgree: the faithful reset-rooted probe path and the
// session-based fast path produce identical answers.
func TestSlowAndFastPathsAgree(t *testing.T) {
	for _, name := range []string{"LRU", "PLRU", "New1"} {
		fast := NewOracle(NewSimProber(policy.MustNew(name, 4)))
		slow := NewOracle(SlowProber{P: NewSimProber(policy.MustNew(name, 4))})
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 60; i++ {
			word := make([]int, 1+rng.Intn(12))
			for j := range word {
				word[j] = rng.Intn(5)
			}
			a, err1 := fast.OutputQuery(word)
			b, err2 := slow.OutputQuery(word)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: errors %v / %v", name, err1, err2)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s: paths disagree on %v: %v vs %v", name, word, a, b)
				}
			}
		}
	}
}

func TestMembershipAlgorithmOne(t *testing.T) {
	// For LRU-2 the first Evct frees line 0 (Example 2.2).
	oracle := NewOracle(NewSimProber(policy.MustNew("LRU", 2)))
	ok, err := oracle.Membership([]Pair{
		{In: 2, Out: 0},             // Evct -> line 0
		{In: 2, Out: 1},             // Evct -> line 1
		{In: 0, Out: policy.Bottom}, // Ln(0) -> ⊥
		{In: 2, Out: 1},             // line 0 was just refreshed
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("valid trace rejected")
	}
	ok, err = oracle.Membership([]Pair{{In: 2, Out: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("invalid trace accepted")
	}
}

func TestMemoization(t *testing.T) {
	prober := SlowProber{P: NewSimProber(policy.MustNew("LRU", 4))}
	oracle := NewOracle(prober)
	word := []int{4, 0, 4, 1, 4}
	if _, err := oracle.OutputQuery(word); err != nil {
		t.Fatal(err)
	}
	first := oracle.Stats()
	if _, err := oracle.OutputQuery(word); err != nil {
		t.Fatal(err)
	}
	second := oracle.Stats()
	if second.Probes != first.Probes {
		t.Errorf("repeated query issued %d new probes", second.Probes-first.Probes)
	}
	if second.MemoHits <= first.MemoHits {
		t.Error("repeated query did not hit the memo table")
	}

	bare := NewOracle(SlowProber{P: NewSimProber(policy.MustNew("LRU", 4))}, WithoutMemo())
	if _, err := bare.OutputQuery(word); err != nil {
		t.Fatal(err)
	}
	if _, err := bare.OutputQuery(word); err != nil {
		t.Fatal(err)
	}
	if bare.Stats().MemoHits != 0 {
		t.Error("WithoutMemo still memoizes")
	}
}

func TestNondeterminismDetection(t *testing.T) {
	// A randomly evicting policy must be flagged, not silently mislearned
	// (this is how the Haswell L3 failure of Table 4 manifests). Two
	// detection channels exist: the determinism audit on the session fast
	// path, and the inherent cross-probe checks of the reset-rooted path.
	t.Run("audit", func(t *testing.T) {
		oracle := NewOracle(NewSimProber(policy.NewRandom(4, 99)), WithDeterminismChecks(1))
		if !detectsNondeterminism(t, oracle) {
			t.Error("determinism audit never fired")
		}
	})
	t.Run("probes", func(t *testing.T) {
		oracle := NewOracle(SlowProber{P: NewSimProber(policy.NewRandom(4, 17))}, WithoutMemo())
		if !detectsNondeterminism(t, oracle) {
			t.Error("reset-rooted probing never detected the inconsistency")
		}
	})
}

func detectsNondeterminism(t *testing.T, oracle *Oracle) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		word := make([]int, 6)
		for j := range word {
			word[j] = rng.Intn(5)
		}
		if _, err := oracle.OutputQuery(word); err != nil {
			if !errors.Is(err, ErrNondeterministic) {
				t.Fatalf("unexpected error type: %v", err)
			}
			return true
		}
	}
	return false
}

func TestOracleStatsAccounting(t *testing.T) {
	oracle := NewOracle(NewSimProber(policy.MustNew("PLRU", 4)))
	if _, err := oracle.OutputQuery([]int{4, 4, 0}); err != nil {
		t.Fatal(err)
	}
	st := oracle.Stats()
	if st.OutputQueries != 1 || st.Symbols != 3 {
		t.Errorf("stats %+v", st)
	}
	if st.Accesses == 0 {
		t.Error("no accesses recorded")
	}
}

func TestOracleRejectsBadInput(t *testing.T) {
	oracle := NewOracle(NewSimProber(policy.MustNew("LRU", 4)))
	if _, err := oracle.OutputQuery([]int{7}); err == nil {
		t.Error("out-of-range input accepted")
	}
}

func TestSimProberProbe(t *testing.T) {
	p := NewSimProber(policy.MustNew("LRU", 2))
	oc, err := p.Probe([]string{"A", "B", "C", "A"})
	if err != nil || oc != cache.Miss {
		t.Errorf("A B C A? = %v, want Miss", oc)
	}
	oc, _ = p.Probe([]string{"A", "B", "C", "B"})
	if oc != cache.Hit {
		t.Errorf("A B C B? = %v, want Hit", oc)
	}
}
