package polca

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/mealy"
	"repro/internal/policy"
)

var learnedPolicies = []string{"FIFO", "LRU", "PLRU", "MRU", "LIP", "SRRIP-HP", "SRRIP-FP", "New1", "New2"}

// TestTheorem31: Polca's output queries coincide with the policy's own
// semantics — for every input word, the outputs recovered from hit/miss
// probing equal direct execution of the (hidden) policy. This is the
// computational content of Theorem 3.1.
func TestTheorem31(t *testing.T) {
	for _, name := range learnedPolicies {
		name := name
		t.Run(name, func(t *testing.T) {
			pol := policy.MustNew(name, 4)
			truth, err := mealy.FromPolicy(pol, 0)
			if err != nil {
				t.Fatal(err)
			}
			oracle := NewOracle(NewSimProber(policy.MustNew(name, 4)))
			f := func(raw []uint8) bool {
				word := make([]int, len(raw))
				for i, r := range raw {
					word[i] = int(r) % truth.NumInputs
				}
				got, err := oracle.OutputQuery(context.Background(), word)
				if err != nil {
					t.Fatalf("oracle error: %v", err)
				}
				want := truth.Run(word)
				for i := range want {
					if got[i] != want[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSlowAndFastPathsAgree: the faithful reset-rooted probe path and the
// session-based fast path produce identical answers.
func TestSlowAndFastPathsAgree(t *testing.T) {
	for _, name := range []string{"LRU", "PLRU", "New1"} {
		fast := NewOracle(NewSimProber(policy.MustNew(name, 4)))
		slow := NewOracle(SlowProber{P: NewSimProber(policy.MustNew(name, 4))})
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 60; i++ {
			word := make([]int, 1+rng.Intn(12))
			for j := range word {
				word[j] = rng.Intn(5)
			}
			a, err1 := fast.OutputQuery(context.Background(), word)
			b, err2 := slow.OutputQuery(context.Background(), word)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s: errors %v / %v", name, err1, err2)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s: paths disagree on %v: %v vs %v", name, word, a, b)
				}
			}
		}
	}
}

func TestMembershipAlgorithmOne(t *testing.T) {
	// For LRU-2 the first Evct frees line 0 (Example 2.2).
	oracle := NewOracle(NewSimProber(policy.MustNew("LRU", 2)))
	ok, err := oracle.Membership(context.Background(), []Pair{
		{In: 2, Out: 0},             // Evct -> line 0
		{In: 2, Out: 1},             // Evct -> line 1
		{In: 0, Out: policy.Bottom}, // Ln(0) -> ⊥
		{In: 2, Out: 1},             // line 0 was just refreshed
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("valid trace rejected")
	}
	ok, err = oracle.Membership(context.Background(), []Pair{{In: 2, Out: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("invalid trace accepted")
	}
}

func TestMemoization(t *testing.T) {
	prober := SlowProber{P: NewSimProber(policy.MustNew("LRU", 4))}
	oracle := NewOracle(prober)
	word := []int{4, 0, 4, 1, 4}
	if _, err := oracle.OutputQuery(context.Background(), word); err != nil {
		t.Fatal(err)
	}
	first := oracle.Stats()
	if _, err := oracle.OutputQuery(context.Background(), word); err != nil {
		t.Fatal(err)
	}
	second := oracle.Stats()
	if second.Probes != first.Probes {
		t.Errorf("repeated query issued %d new probes", second.Probes-first.Probes)
	}
	if second.MemoHits <= first.MemoHits {
		t.Error("repeated query did not hit the memo table")
	}

	bare := NewOracle(SlowProber{P: NewSimProber(policy.MustNew("LRU", 4))}, WithoutMemo())
	if _, err := bare.OutputQuery(context.Background(), word); err != nil {
		t.Fatal(err)
	}
	if _, err := bare.OutputQuery(context.Background(), word); err != nil {
		t.Fatal(err)
	}
	if bare.Stats().MemoHits != 0 {
		t.Error("WithoutMemo still memoizes")
	}
}

func TestNondeterminismDetection(t *testing.T) {
	// A randomly evicting policy must be flagged, not silently mislearned
	// (this is how the Haswell L3 failure of Table 4 manifests). Two
	// detection channels exist: the determinism audit on the session fast
	// path, and the inherent cross-probe checks of the reset-rooted path.
	t.Run("audit", func(t *testing.T) {
		oracle := NewOracle(NewSimProber(policy.NewRandom(4, 99)), WithDeterminismChecks(1))
		if !detectsNondeterminism(t, oracle) {
			t.Error("determinism audit never fired")
		}
	})
	t.Run("probes", func(t *testing.T) {
		oracle := NewOracle(SlowProber{P: NewSimProber(policy.NewRandom(4, 17))}, WithoutMemo())
		if !detectsNondeterminism(t, oracle) {
			t.Error("reset-rooted probing never detected the inconsistency")
		}
	})
}

// replayingProber models a probing stack with a result cache below the
// oracle (cachequery's ResultStore): Probe memoizes its own answers and
// replays them forever; ProbeFresh re-executes against the real system.
type replayingProber struct {
	inner      Prober
	memo       map[string]cache.Outcome
	freshCalls int
}

func newReplayingProber(inner Prober) *replayingProber {
	return &replayingProber{inner: inner, memo: make(map[string]cache.Outcome)}
}

func (p *replayingProber) Assoc() int                     { return p.inner.Assoc() }
func (p *replayingProber) InitialContent() []blocks.Block { return p.inner.InitialContent() }

func (p *replayingProber) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	key := ""
	for _, b := range q {
		key += string(b) + " "
	}
	if oc, ok := p.memo[key]; ok {
		return oc, nil
	}
	oc, err := p.inner.Probe(ctx, q)
	if err == nil {
		p.memo[key] = oc
	}
	return oc, err
}

func (p *replayingProber) ProbeFresh(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	p.freshCalls++
	return p.inner.Probe(ctx, q)
}

// TestDeterminismAuditUsesFreshProbes: on a caching stack the audit must
// re-execute through ProbeFresh — asking Probe again would replay the cached
// first answer and the audit could never fire.
func TestDeterminismAuditUsesFreshProbes(t *testing.T) {
	rp := newReplayingProber(SlowProber{P: NewSimProber(policy.MustNew("LRU", 4))})
	oracle := NewOracle(rp, WithDeterminismChecks(1))
	if _, err := oracle.OutputQuery(context.Background(), []int{4, 0}); err != nil {
		t.Fatal(err)
	}
	if rp.freshCalls == 0 {
		t.Fatal("determinism audit never issued a fresh probe")
	}
	// End to end: a nondeterministic cache hidden behind the replay cache
	// must still be flagged.
	nd := newReplayingProber(SlowProber{P: NewSimProber(policy.NewRandom(4, 99))})
	if !detectsNondeterminism(t, NewOracle(nd, WithDeterminismChecks(1))) {
		t.Error("audit failed to see through the result cache")
	}
}

func detectsNondeterminism(t *testing.T, oracle *Oracle) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		word := make([]int, 6)
		for j := range word {
			word[j] = rng.Intn(5)
		}
		if _, err := oracle.OutputQuery(context.Background(), word); err != nil {
			if !errors.Is(err, ErrNondeterministic) {
				t.Fatalf("unexpected error type: %v", err)
			}
			return true
		}
	}
	return false
}

// countingConcurrentProber is a concurrency-safe prober that counts probe
// executions per key, for asserting single-flight deduplication.
type countingConcurrentProber struct {
	inner  Prober
	mu     sync.Mutex
	counts map[string]int
}

func (p *countingConcurrentProber) Assoc() int                     { return p.inner.Assoc() }
func (p *countingConcurrentProber) InitialContent() []blocks.Block { return p.inner.InitialContent() }
func (p *countingConcurrentProber) ConcurrentProbes() bool         { return true }

func (p *countingConcurrentProber) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	key := ""
	for _, b := range q {
		key += string(b) + " "
	}
	p.counts[key]++
	return p.inner.Probe(ctx, q)
}

// TestProbeSingleFlight: concurrent batch goroutines that miss the memo on
// the same probe key must not duplicate the execution — the batch below
// repeats one word eight times, yet every underlying probe runs exactly once.
func TestProbeSingleFlight(t *testing.T) {
	cp := &countingConcurrentProber{
		inner:  SlowProber{P: NewSimProber(policy.MustNew("LRU", 4))},
		counts: make(map[string]int),
	}
	oracle := NewOracle(cp, WithParallelism(8))
	word := []int{4, 0, 4, 1}
	words := make([][]int, 8)
	for i := range words {
		words[i] = word
	}
	outs, err := oracle.OutputQueryBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(outs); i++ {
		for j := range outs[0] {
			if outs[i][j] != outs[0][j] {
				t.Fatalf("batch answers diverge: %v vs %v", outs[i], outs[0])
			}
		}
	}
	for key, n := range cp.counts {
		if n != 1 {
			t.Errorf("probe %q executed %d times, want 1 (single-flight)", key, n)
		}
	}
}

func TestOracleStatsAccounting(t *testing.T) {
	oracle := NewOracle(NewSimProber(policy.MustNew("PLRU", 4)))
	if _, err := oracle.OutputQuery(context.Background(), []int{4, 4, 0}); err != nil {
		t.Fatal(err)
	}
	st := oracle.Stats()
	if st.OutputQueries != 1 || st.Symbols != 3 {
		t.Errorf("stats %+v", st)
	}
	if st.Accesses == 0 {
		t.Error("no accesses recorded")
	}
}

func TestOracleRejectsBadInput(t *testing.T) {
	oracle := NewOracle(NewSimProber(policy.MustNew("LRU", 4)))
	if _, err := oracle.OutputQuery(context.Background(), []int{7}); err == nil {
		t.Error("out-of-range input accepted")
	}
}

func TestSimProberProbe(t *testing.T) {
	p := NewSimProber(policy.MustNew("LRU", 2))
	oc, err := p.Probe(context.Background(), []string{"A", "B", "C", "A"})
	if err != nil || oc != cache.Miss {
		t.Errorf("A B C A? = %v, want Miss", oc)
	}
	oc, _ = p.Probe(context.Background(), []string{"A", "B", "C", "B"})
	if oc != cache.Hit {
		t.Errorf("A B C B? = %v, want Hit", oc)
	}
}
