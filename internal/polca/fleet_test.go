package polca

import (
	"context"
	"sync"
	"testing"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/policy"
)

// fakeFleet wraps a simulator behind the fleet-shaped prober surface —
// Probe/ProbeBatch only, concurrency-safe, with an adjustable reported
// fleet width — and records how eviction probes arrive: grouped through
// ProbeBatch or one by one.
type fakeFleet struct {
	mu       sync.Mutex
	inner    *SimProber
	width    int
	batches  int
	maxBatch int
	singles  int
}

func (f *fakeFleet) Assoc() int                     { return f.inner.Assoc() }
func (f *fakeFleet) InitialContent() []blocks.Block { return f.inner.InitialContent() }
func (f *fakeFleet) ConcurrentProbes() bool         { return true }
func (f *fakeFleet) FleetWidth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.width
}

func (f *fakeFleet) setWidth(w int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.width = w
}

func (f *fakeFleet) run(q []blocks.Block) (cache.Outcome, error) {
	s, err := f.inner.NewSession()
	if err != nil {
		return Missed(), err
	}
	oc := cache.Miss
	for _, b := range q {
		if oc, err = s.Access(b); err != nil {
			return Missed(), err
		}
	}
	return oc, nil
}

func (f *fakeFleet) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	f.mu.Lock()
	f.singles++
	f.mu.Unlock()
	return f.run(q)
}

func (f *fakeFleet) ProbeBatch(ctx context.Context, qs [][]blocks.Block) ([]cache.Outcome, error) {
	f.mu.Lock()
	f.batches++
	if len(qs) > f.maxBatch {
		f.maxBatch = len(qs)
	}
	f.mu.Unlock()
	out := make([]cache.Outcome, len(qs))
	for i, q := range qs {
		oc, err := f.run(q)
		if err != nil {
			return nil, err
		}
		out[i] = oc
	}
	return out, nil
}

var (
	_ ProbeBatcher     = (*fakeFleet)(nil)
	_ ConcurrentProber = (*fakeFleet)(nil)
	_ FleetWidther     = (*fakeFleet)(nil)
)

// TestBatchHintTracksFleetWidth: a fleet-backed oracle's BatchHint scales
// with the live fleet width — re-read on every call, so it grows when
// workers join and shrinks back when they are quarantined — instead of
// freezing at a constant.
func TestBatchHintTracksFleetWidth(t *testing.T) {
	f := &fakeFleet{inner: NewSimProber(policy.MustNew("LRU", 4)), width: 2}
	o := NewOracle(f, WithBatchedQueries())

	h2 := o.BatchHint()
	f.setWidth(8)
	h8 := o.BatchHint()
	f.setWidth(16)
	h16 := o.BatchHint()
	f.setWidth(2)
	hBack := o.BatchHint()

	if h2 < batchedHint {
		t.Errorf("width-2 hint %d below the batched floor %d", h2, batchedHint)
	}
	if h8 != 8*fleetDepth || h16 != 16*fleetDepth {
		t.Errorf("hints (%d, %d) do not scale with fleet width (want %d, %d)",
			h8, h16, 8*fleetDepth, 16*fleetDepth)
	}
	if !(h2 < h8 && h8 < h16) {
		t.Errorf("hint not monotone in width: %d, %d, %d", h2, h8, h16)
	}
	if hBack != h2 {
		t.Errorf("hint %d after width shrank back, want %d", hBack, h2)
	}

	// A width-0 fleet (everything quarantined mid-flight) falls back to
	// the non-fleet resolution rather than advertising zero parallelism.
	f.setWidth(0)
	if h := o.BatchHint(); h < 1 {
		t.Errorf("width-0 hint %d, want >= 1", h)
	}
}

// TestFleetTrieBatchedEvictionMatchesSerial: on the memoized trie path, a
// batched oracle over a fleet-shaped prober groups each Evct's
// associativity-many eviction probes into one ProbeBatch call, and its
// answers, memo sizes and counters are identical to the serial loop's.
func TestFleetTrieBatchedEvictionMatchesSerial(t *testing.T) {
	mk := func() *fakeFleet {
		return &fakeFleet{inner: NewSimProber(policy.MustNew("PLRU", 4)), width: 4}
	}
	grouped := mk()
	serial := mk()
	og := NewOracle(grouped, WithBatchedQueries())
	os := NewOracle(serial)

	words := [][]int{
		{4, 4, 0, 4},
		{4, 0, 4, 1, 4, 4},
		{4, 4, 4, 4, 2, 0},
		{4, 4, 0, 4}, // repeat: must be pure memo on both oracles
	}
	for _, w := range words {
		got, err := og.OutputQuery(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.OutputQuery(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("word %v: grouped answered %v, serial %v", w, got, want)
			}
		}
	}

	sg, ss := og.Stats(), os.Stats()
	if sg != ss {
		t.Errorf("grouped stats %+v != serial stats %+v", sg, ss)
	}
	if grouped.batches == 0 {
		t.Fatal("no eviction group ever travelled through ProbeBatch")
	}
	if grouped.maxBatch != 4 {
		t.Errorf("largest grouped call carried %d probes, want assoc=4", grouped.maxBatch)
	}
	if serial.batches != 0 {
		t.Errorf("serial oracle issued %d batched calls, want 0", serial.batches)
	}
}
