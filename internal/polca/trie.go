package polca

import (
	"repro/internal/cache"
)

// This file implements the two prefix trees of the trie query engine.
//
// outTrie is keyed by *policy inputs*: every node is one policy-input
// prefix, recording the policy output of its last symbol. Any output query
// is answered symbol by symbol from its longest recorded prefix — the whole
// prefix costs zero prober work — and, for forking (simulator) probers, a
// node can additionally pin a live Session parked in exactly the cache
// state the prefix reaches. A query that diverges at depth k forks the
// deepest parked ancestor and executes only the suffix, replacing the
// quadratic reset-rooted prefix replay with amortized O(1) prober work per
// new symbol. Parked sessions are LRU-bounded.
//
// probeTrie is keyed by *block ids*: it replaces the strings.Join-keyed
// probe memo and single-flight maps for reset-rooted (hardware-style)
// probing, so a probe key is a trie path instead of a heap-allocated
// string.
//
// Neither trie locks; the oracle's mutex guards both.

// outNode is one policy-input prefix.
type outNode struct {
	child []int32 // per policy input; nil until the first child
	sess  Session // parked session in the prefix's cache state, or nil
	prev  int32   // LRU links, meaningful while sess != nil
	next  int32
	out   int16 // policy output of the prefix's last symbol
	known bool
}

type outTrie struct {
	numIn  int
	nodes  []outNode
	head   int32 // most recently used parked node, -1 if none
	tail   int32 // least recently used parked node, -1 if none
	parked int
	cap    int
}

func newOutTrie(numIn, sessionCap int) *outTrie {
	return &outTrie{
		numIn: numIn,
		nodes: []outNode{{prev: -1, next: -1}},
		head:  -1,
		tail:  -1,
		cap:   sessionCap,
	}
}

// childOf returns the child of n along input a, or -1.
func (t *outTrie) childOf(n int32, a int) int32 {
	c := t.nodes[n].child
	if c == nil {
		return -1
	}
	return c[a]
}

// extend returns the child of n along a, creating it if absent.
func (t *outTrie) extend(n int32, a int) int32 {
	if t.nodes[n].child == nil {
		ch := make([]int32, t.numIn)
		for i := range ch {
			ch[i] = -1
		}
		t.nodes[n].child = ch
	}
	if c := t.nodes[n].child[a]; c != -1 {
		return c
	}
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, outNode{prev: -1, next: -1})
	t.nodes[n].child[a] = id
	return id
}

// unlink removes n from the LRU list (n must be parked).
func (t *outTrie) unlink(n int32) {
	p, x := t.nodes[n].prev, t.nodes[n].next
	if p != -1 {
		t.nodes[p].next = x
	} else {
		t.head = x
	}
	if x != -1 {
		t.nodes[x].prev = p
	} else {
		t.tail = p
	}
	t.nodes[n].prev, t.nodes[n].next = -1, -1
}

// pushFront makes n the most recently used parked node.
func (t *outTrie) pushFront(n int32) {
	t.nodes[n].prev = -1
	t.nodes[n].next = t.head
	if t.head != -1 {
		t.nodes[t.head].prev = n
	}
	t.head = n
	if t.tail == -1 {
		t.tail = n
	}
}

// touch refreshes n's LRU recency (no-op when n holds no session).
func (t *outTrie) touch(n int32) {
	if t.nodes[n].sess == nil || t.head == n {
		return
	}
	t.unlink(n)
	t.pushFront(n)
}

// park pins s at node n, replacing any session already parked there, and
// evicts the least recently used session while over capacity.
func (t *outTrie) park(n int32, s Session) {
	if t.nodes[n].sess != nil {
		t.unlink(n)
		t.parked--
	}
	t.nodes[n].sess = s
	t.pushFront(n)
	t.parked++
	for t.parked > t.cap && t.tail != -1 {
		vic := t.tail
		t.unlink(vic)
		t.nodes[vic].sess = nil
		t.parked--
	}
}

// probeNode is one block-sequence prefix of the reset-rooted probe memo.
type probeNode struct {
	child []int32 // indexed by block id, grown on demand
	fl    *inflightProbe
	oc    cache.Outcome
	known bool
}

type probeTrie struct {
	nodes []probeNode
	// dense remaps raw block ids to compact edge ids in first-use order:
	// the id space is huge (blocks.MaxIndex) but a probe run only ever
	// touches the reset content plus a handful of fresh blocks, and child
	// slices must be sized by the blocks actually seen, not by the raw id.
	dense map[int32]int32
}

func newProbeTrie() *probeTrie {
	return &probeTrie{nodes: []probeNode{{}}, dense: make(map[int32]int32)}
}

// edge returns the compact edge id of raw block id b.
func (t *probeTrie) edge(b int32) int32 {
	if e, ok := t.dense[b]; ok {
		return e
	}
	e := int32(len(t.dense))
	t.dense[b] = e
	return e
}

// extend returns the child of n along block id b, creating it if absent.
func (t *probeTrie) extend(n, b int32) int32 {
	e := t.edge(b)
	ch := t.nodes[n].child
	if int(e) >= len(ch) {
		grown := make([]int32, e+1)
		copy(grown, ch)
		for i := len(ch); i < len(grown); i++ {
			grown[i] = -1
		}
		t.nodes[n].child = grown
		ch = grown
	}
	if c := ch[e]; c != -1 {
		return c
	}
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, probeNode{})
	t.nodes[n].child[e] = id
	return id
}

// path walks/extends the whole block sequence and returns its terminal node.
func (t *probeTrie) path(q []int32) int32 {
	n := int32(0)
	for _, b := range q {
		n = t.extend(n, b)
	}
	return n
}
