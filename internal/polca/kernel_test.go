package polca

import (
	"context"
	"testing"

	"repro/internal/policy"
	"repro/internal/qstore"
)

// TestKernelOracleMatchesInterpreted replays every policy word up to depth 4
// through two oracles over the same policy — one on the compiled kernel, one
// forced onto the interpreted prober — and asserts identical outputs and
// bit-identical deterministic cost counters. The kernel must change how fast
// probes run, never what the oracle observes or counts.
func TestKernelOracleMatchesInterpreted(t *testing.T) {
	for _, c := range tenPolicies {
		t.Run(c.name, func(t *testing.T) {
			compiled := NewOracle(NewSimProber(policy.MustNew(c.name, c.assoc)))
			interp := NewOracle(NewInterpretedSimProber(policy.MustNew(c.name, c.assoc)))
			if !compiled.prober.(*SimProber).Compiled() {
				t.Fatalf("%s: default prober is not on the compiled kernel", c.name)
			}
			if interp.prober.(*SimProber).Compiled() {
				t.Fatal("interpreted prober ended up compiled")
			}
			words := qstore.Enumerate(policy.NumInputs(c.assoc), 4)[1:]
			for _, w := range words {
				co, err := compiled.OutputQuery(context.Background(), w)
				if err != nil {
					t.Fatalf("compiled %v: %v", w, err)
				}
				io, err := interp.OutputQuery(context.Background(), w)
				if err != nil {
					t.Fatalf("interpreted %v: %v", w, err)
				}
				for i := range co {
					if co[i] != io[i] {
						t.Fatalf("word %v: compiled output %v, interpreted %v", w, co, io)
					}
				}
			}
			if cs, is := compiled.Stats(), interp.Stats(); cs != is {
				t.Fatalf("stats diverged: compiled %+v, interpreted %+v", cs, is)
			}
		})
	}
}

// TestKernelSessionPeek pins the peek/fork equivalence the eviction probes
// rely on: after any access sequence, Peek(b) equals the outcome a forked
// session would observe accessing b, and peeking never advances the session.
func TestKernelSessionPeek(t *testing.T) {
	p := NewSimProber(policy.MustNew("SRRIP-HP", 4))
	sess, err := p.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	ks, ok := sess.(PeekSession)
	if !ok {
		t.Fatal("kernel session does not implement PeekSession")
	}
	seq := []string{"A", "E", "B", "F", "G", "C", "A", "H"}
	for _, b := range seq {
		for _, probe := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
			fork, err := sess.Fork()
			if err != nil {
				t.Fatal(err)
			}
			want, err := fork.Access(probe)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ks.Peek(probe)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("after %v: Peek(%s) = %v, fork access = %v", seq, probe, got, want)
			}
		}
		if _, err := sess.Access(b); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKernelProberFallsBack: a policy over the compile bound (or violating
// the StateKey contract) silently keeps the interpreted path.
func TestKernelProberFallsBack(t *testing.T) {
	if NewSimProber(policy.NewRandom(4, 5)).Compiled() {
		t.Fatal("Random compiled onto the kernel")
	}
}
