package polca

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/policy"
)

// randomWords draws a reproducible query workload over the policy alphabet.
func randomWords(numIn, count int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	words := make([][]int, count)
	for i := range words {
		w := make([]int, 1+rng.Intn(12))
		for j := range w {
			w[j] = rng.Intn(numIn)
		}
		words[i] = w
	}
	return words
}

// TestSnapshotWarmOracleSkipsBackend: a warm oracle must answer every
// previously-asked word from the loaded store — zero probes, zero accesses
// — with answers identical to the cold oracle's.
func TestSnapshotWarmOracleSkipsBackend(t *testing.T) {
	for _, c := range []struct {
		name  string
		assoc int
	}{{"LRU", 4}, {"New1", 4}} {
		t.Run(c.name, func(t *testing.T) {
			scope := "test:" + c.name
			cold := NewOracle(NewSimProber(policy.MustNew(c.name, c.assoc)))
			words := randomWords(cold.NumInputs(), 120, int64(11+c.assoc))
			want := make([][]int, len(words))
			for i, w := range words {
				out, err := cold.OutputQuery(context.Background(), w)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = out
			}
			var buf bytes.Buffer
			if err := cold.SaveSnapshot(&buf, scope); err != nil {
				t.Fatal(err)
			}

			warm := NewOracle(NewSimProber(policy.MustNew(c.name, c.assoc)))
			if err := warm.LoadSnapshot(bytes.NewReader(buf.Bytes()), scope); err != nil {
				t.Fatal(err)
			}
			for i, w := range words {
				out, err := warm.OutputQuery(context.Background(), w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(out, want[i]) {
					t.Fatalf("warm oracle diverged on %v: %v vs %v", w, out, want[i])
				}
			}
			if st := warm.Stats(); st.Probes != 0 || st.Accesses != 0 {
				t.Errorf("warm oracle touched the backend: %+v", st)
			}

			// A word extending a recorded prefix costs one session: the
			// known prefix is fast-forwarded by pure feeding (no eviction
			// probes) and only the new symbol does real oracle work.
			ext := append(append([]int(nil), words[0]...), 0)
			if _, err := warm.OutputQuery(context.Background(), ext); err != nil {
				t.Fatal(err)
			}
			if st := warm.Stats(); st.Probes != 1 || st.Accesses > len(ext)+c.assoc {
				t.Errorf("extension of a snapshotted word cost %d probes / %d accesses", st.Probes, st.Accesses)
			}
		})
	}
}

func TestSnapshotScopeMismatchRejected(t *testing.T) {
	cold := NewOracle(NewSimProber(policy.MustNew("LRU", 4)))
	if _, err := cold.OutputQuery(context.Background(), []int{4, 0, 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cold.SaveSnapshot(&buf, "sim:LRU-4"); err != nil {
		t.Fatal(err)
	}
	warm := NewOracle(NewSimProber(policy.MustNew("MRU", 4)))
	err := warm.LoadSnapshot(bytes.NewReader(buf.Bytes()), "sim:MRU-4")
	if err == nil || !strings.Contains(err.Error(), "recorded for") {
		t.Fatalf("scope mismatch not rejected: %v", err)
	}
	if st := warm.Stats(); st.MemoHits != 0 {
		t.Error("rejected snapshot left state behind")
	}
}

func TestSnapshotRejectsCorruptPayload(t *testing.T) {
	cold := NewOracle(NewSimProber(policy.MustNew("LRU", 4)))
	for _, w := range randomWords(cold.NumInputs(), 30, 3) {
		if _, err := cold.OutputQuery(context.Background(), w); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := cold.SaveSnapshot(&buf, "s"); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x20
	warm := NewOracle(NewSimProber(policy.MustNew("LRU", 4)))
	if err := warm.LoadSnapshot(bytes.NewReader(corrupt), "s"); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	truncated := data[:len(data)-7]
	if err := warm.LoadSnapshot(bytes.NewReader(truncated), "s"); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}

// Loading over an oracle that has already answered queries would zero
// parked-session decorations the LRU lists still reference; it must be
// refused.
func TestSnapshotLoadAfterQueriesRejected(t *testing.T) {
	cold := NewOracle(NewSimProber(policy.MustNew("LRU", 4)))
	if _, err := cold.OutputQuery(context.Background(), []int{4, 0}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cold.SaveSnapshot(&buf, "s"); err != nil {
		t.Fatal(err)
	}
	live := NewOracle(NewSimProber(policy.MustNew("LRU", 4)))
	if _, err := live.OutputQuery(context.Background(), []int{4, 0}); err != nil {
		t.Fatal(err)
	}
	if err := live.LoadSnapshot(bytes.NewReader(buf.Bytes()), "s"); err == nil {
		t.Fatal("load into a live oracle accepted")
	}
}

func TestSnapshotRequiresTrieEngine(t *testing.T) {
	flat := NewOracle(NewSimProber(policy.MustNew("LRU", 4)), WithoutTrie())
	var buf bytes.Buffer
	if err := flat.SaveSnapshot(&buf, "s"); err == nil {
		t.Fatal("flat-memo oracle produced a snapshot")
	}
	if err := flat.LoadSnapshot(bytes.NewReader(nil), "s"); err == nil {
		t.Fatal("flat-memo oracle loaded a snapshot")
	}
}
