package polca

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/cache"
)

// Transient faults and the probe retry policy. Real hardware backends fail
// in ways that have nothing to do with the policy under learning — a
// measurement interrupted by the OS, a flaky core, a remote worker timing
// out. Such failures are marked transient (Transienter) and absorbed by
// bounded exponential backoff around the probe execution instead of
// aborting a multi-hour learn; everything else (nondeterminism, protocol
// violations, cancellation) propagates immediately.

// Transienter marks an error as transient: retrying the same operation may
// succeed. internal/faulty's injected errors and cachequery's replica
// failures implement it.
type Transienter interface {
	Transient() bool
}

// IsTransient reports whether any error in err's chain declares itself
// transient. Context cancellation and deadline errors are never transient —
// retrying a cancelled probe would fight the caller's cancel.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t Transienter
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy bounds the transient-failure retry loop around one probe
// execution: up to MaxAttempts total executions, sleeping
// BaseDelay·2^attempt (capped at MaxDelay) with up to 50% deterministic
// jitter between them. The zero policy retries nothing.
type RetryPolicy struct {
	MaxAttempts int           // total executions, including the first; <= 1 disables retries
	BaseDelay   time.Duration // first backoff sleep
	MaxDelay    time.Duration // backoff cap
	Seed        int64         // jitter seed, so soak runs are reproducible
}

// DefaultRetryPolicy absorbs short transient glitches without materially
// delaying a healthy run: 6 attempts, 1ms/2ms/4ms/8ms/16ms backoff. The
// budget is sized for soak-length runs: a learn takes on the order of 10⁴
// probe executions, so at a sustained 5% transient-error rate the chance
// that any probe exhausts all six attempts stays around 10⁻⁴ per run
// (0.05⁶·10⁴), where four attempts would fail roughly one run in twenty.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 250 * time.Millisecond, Seed: 1}

// enabled reports whether the policy retries at all.
func (rp RetryPolicy) enabled() bool { return rp.MaxAttempts > 1 }

// backoff returns the sleep before retry attempt (0-based: the sleep after
// the attempt-th failed execution), with deterministic jitter.
func (rp RetryPolicy) backoff(attempt int) time.Duration {
	d := rp.BaseDelay
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 0; i < attempt && d < rp.MaxDelay; i++ {
		d *= 2
	}
	if rp.MaxDelay > 0 && d > rp.MaxDelay {
		d = rp.MaxDelay
	}
	// Jitter up to +50%, seeded per (policy seed, attempt) so identical
	// runs sleep identically — reproducibility extends to the fault path.
	rng := rand.New(rand.NewSource(rp.Seed + int64(attempt)))
	return d + time.Duration(rng.Int63n(int64(d)/2+1))
}

// Do runs fn, retrying transient failures under the policy. Every absorbed
// failure increments retries (the oracle's Stats.Retries source). Backoff
// sleeps respect ctx: a cancel during a sleep returns ctx.Err() at once.
func (rp RetryPolicy) Do(ctx context.Context, retries *atomic.Int64, fn func() (cache.Outcome, error)) (cache.Outcome, error) {
	oc, err := fn()
	if err == nil || !rp.enabled() || !IsTransient(err) {
		return oc, err
	}
	for attempt := 0; attempt < rp.MaxAttempts-1; attempt++ {
		if retries != nil {
			retries.Add(1)
		}
		t := time.NewTimer(rp.backoff(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return Missed(), ctx.Err()
		case <-t.C:
		}
		oc, err = fn()
		if err == nil || !IsTransient(err) {
			return oc, err
		}
	}
	return Missed(), err
}
