package polca

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/policy"
)

// gatedProber answers through an inner prober until trigger probes have run,
// then signals armed and parks every further probe on ctx. It advertises
// concurrent probes (so batched oracles fan it out and park many workers at
// once) while serializing the actual inner executions behind a mutex — the
// gate must park concurrently, the simulator must not run concurrently.
type gatedProber struct {
	inner   Prober
	mu      sync.Mutex
	trigger int64
	served  atomic.Int64
	armed   chan struct{}
	once    atomic.Bool
}

func (g *gatedProber) Assoc() int                     { return g.inner.Assoc() }
func (g *gatedProber) InitialContent() []blocks.Block { return g.inner.InitialContent() }
func (g *gatedProber) ConcurrentProbes() bool         { return true }

func (g *gatedProber) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	if g.served.Add(1) > atomic.LoadInt64(&g.trigger) {
		if g.once.CompareAndSwap(false, true) {
			close(g.armed)
		}
		<-ctx.Done()
		return cache.Miss, ctx.Err()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inner.Probe(ctx, q)
}

// TestOracleCancelMidLearnStoresUsable: canceling a learn that is deep in
// oracle probing must unwind with context.Canceled, leave no goroutines
// behind, and leave the oracle's memo stores and parked sessions in a state
// a subsequent learn on the same oracle can build on all the way to the
// exact machine.
func TestOracleCancelMidLearnStoresUsable(t *testing.T) {
	truth, err := mealy.FromPolicy(policy.MustNew("New1", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, al := range []struct {
		name string
		a    learn.Algo
	}{{"lstar", learn.AlgoLStar}, {"tree", learn.AlgoTree}} {
		t.Run(al.name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			gate := &gatedProber{
				inner:   SlowProber{P: NewSimProber(policy.MustNew("New1", 4))},
				trigger: 60,
				armed:   make(chan struct{}),
			}
			oracle := NewOracle(gate, WithParallelism(4))
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				<-gate.armed
				cancel()
			}()
			_, err := learn.Learn(ctx, oracle, learn.Options{Depth: 1, Algo: al.a})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled learn returned %v, want context.Canceled", err)
			}

			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
				time.Sleep(10 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before+2 {
				t.Errorf("goroutines leaked: %d before, %d after cancel", before, n)
			}

			// Same oracle, gate disarmed: the partially-filled stores must
			// be consistent enough to finish the learn correctly — a store
			// corrupted by the unwind would mislearn, not just slow down.
			atomic.StoreInt64(&gate.trigger, 1<<62)
			res, err := learn.Learn(context.Background(), oracle, learn.Options{Depth: 1, Algo: al.a})
			if err != nil {
				t.Fatalf("learn after cancel: %v", err)
			}
			if eq, _ := res.Machine.Equivalent(truth); !eq {
				t.Error("post-cancel oracle mislearned the machine")
			}
		})
	}
}

// TestOracleBatchCancel: cancellation inside OutputQueryBatch unwinds every
// in-flight worker and returns the context error, not a partial answer.
func TestOracleBatchCancel(t *testing.T) {
	gate := &gatedProber{
		inner:   SlowProber{P: NewSimProber(policy.MustNew("LRU", 4))},
		trigger: 5,
		armed:   make(chan struct{}),
	}
	oracle := NewOracle(gate, WithParallelism(4))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-gate.armed
		cancel()
	}()
	words := make([][]int, 32)
	for i := range words {
		words[i] = []int{4, i % 5, 4, (i + 1) % 5, i % 4}
	}
	if _, err := oracle.OutputQueryBatch(ctx, words); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch returned %v, want context.Canceled", err)
	}
}
