package polca

// Batched output queries over the compiled policy kernel. The per-session
// trie path (sessionQueryTrie) answers one word at a time: walk the store,
// fork a parked session, feed the suffix block by block through interface
// calls and string scans. BatchProber replaces that with a three-phase
// engine over one structure-of-arrays block (policy.Batch):
//
//  1. Plan (serial, word order): walk every word's known prefix under its
//     shard lock — exactly walkKnownPrefix, extended with a batch-local
//     overlay so a word sees the prefixes earlier words of the same batch
//     will record. Pending words get a lane; their suffix paths are
//     created up front and placeholder sessions are parked through the
//     regular LRU, reserving each node with the recency the per-session
//     path would give it.
//  2. Execute (one pass per lane over the SoA block): a lane's cache state
//     is one int32 table state plus one int32 content row. The policy
//     input encoding coincides with the kernel's table inputs, and a
//     reset-rooted session's content mirrors the oracle's tracked content
//     cc exactly (Definition 2.3: Ln(i) hits at line i, Evct misses into
//     the table's victim), so replaying a suffix is pure table stepping —
//     no block strings, no membership scans, no session allocations. Park
//     snapshots are row copies within the block.
//  3. Record (serial, word order): write outputs along each word's path
//     and replace every placeholder that survived the LRU with a kernel
//     session materialized from its park row. Placeholders the LRU evicted
//     are dropped, exactly as the serial path would have dropped the fork.
//
// Counters are bit-identical to the per-session path by construction:
// memo hits = known-prefix symbols (overlay included, which is what the
// serial memo would have recorded by then), one probe per pending word,
// and accesses = fast-forward length + suffix length + associativity per
// Evct (the eviction probes a session would have issued). The equivalence
// is asserted by TestBatchedOracleMatchesSerial down to the final store
// state.
//
// A batch must not interleave with concurrent serial queries on the same
// oracle: between plan and record, store nodes hold placeholder sessions
// that only this batch can resolve (the learner's prefetch loop, the only
// batching caller, is sequential). Foreign words — symbols out of range —
// drop the whole batch to the serial loop so error semantics, including
// partially recorded batches, stay exactly serial.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/policy"
)

// WithBatchedQueries turns on the batched SoA query engine for compiled
// simulator probers: OutputQueryBatch plans whole chunks against the store
// and replays pending suffixes in lockstep over a policy.Batch block
// instead of one session per word. Answers, recorded store contents and
// cost counters are bit-identical to the per-session path; probers without
// a compiled kernel (or oracles in a flat-memo ablation mode) keep the
// per-session path. It also raises the oracle's BatchHint so the learner
// forms chunks worth planning even over a single-threaded prober.
func WithBatchedQueries() Option {
	return func(o *Oracle) { o.batched = true }
}

// Batched reports whether the batched SoA query engine is enabled.
func (o *Oracle) Batched() bool { return o.batched }

// batchedHint is the BatchHint of a batched oracle: lockstep planning pays
// off with deep chunks even when the prober itself is single-threaded, so
// the hint no longer tracks goroutine parallelism.
const batchedHint = 16

// ProbeBatcher is an optional Prober extension executing several
// independent reset-rooted probes in one call — cachequery's replica pool
// implements it by fanning the probes over its frontends. A batched oracle
// groups the associativity-many findEvicted probes of an unmemoized Evct
// through it. Counters are maintained per probe exactly as on the serial
// path; only error paths differ (a failing batch aborts after issuing all
// probes where the serial loop stops at the first).
type ProbeBatcher interface {
	Prober
	ProbeBatch(ctx context.Context, qs [][]blocks.Block) ([]cache.Outcome, error)
}

// errBatchPlaceholder surfaces if a placeholder session escapes its batch
// — the symptom of serial queries interleaved with an in-flight batch.
var errBatchPlaceholder = errors.New("polca: batch placeholder session used outside its batch")

// batchPark is the placeholder Session parked during the plan phase: it
// holds a node's LRU slot with the recency the per-session path would give
// the real fork, and names the lane and depth whose park row materializes
// it at record time.
type batchPark struct {
	lane  int
	depth int
}

// Access implements Session (never legitimately called).
func (p *batchPark) Access(blocks.Block) (cache.Outcome, error) {
	return Missed(), errBatchPlaceholder
}

// Fork implements Session (never legitimately called).
func (p *batchPark) Fork() (Session, error) { return nil, errBatchPlaceholder }

// plannedPark is one placeholder parked at a store node, with the SoA row
// its snapshot lands in.
type plannedPark struct {
	depth int
	node  int32
	row   int
	ph    *batchPark
}

// outPatch fills out[pos] from a producer lane once it has executed: the
// position was known at plan time only through the batch-local overlay.
type outPatch struct {
	pos     int
	srcLane int
	srcPos  int
}

// batchPlan is one word's plan.
type batchPlan struct {
	word []int
	out  []int
	seq  int // query sequence number (determinism audit schedule)

	lane        int // SoA lane, -1 when the word is fully known
	k           int // known-prefix length at plan time
	resumeDepth int
	resumeSess  *kernelSession // plan-time fork of a real parked session
	srcLane     int            // producer lane when resuming a placeholder, -1 otherwise
	srcDepth    int

	parks   []plannedPark
	patches []outPatch
}

// ovKey identifies a store node across shards for the batch-local overlay.
type ovKey struct {
	shard int
	node  int32
}

// ovVal names the lane and position that will produce the node's output.
type ovVal struct {
	lane int
	pos  int
}

// BatchProber is the batched execution engine the oracle builds over a
// compiled SimProber for one OutputQueryBatch call. See the file comment
// for the three phases.
type BatchProber struct {
	o       *Oracle
	tab     *policy.Table
	n       int // associativity
	plans   []batchPlan
	byLane  []*batchPlan
	overlay map[ovKey]ovVal
	bt      *policy.Batch
}

func newBatchProber(o *Oracle, sp *SimProber) *BatchProber {
	return &BatchProber{o: o, tab: sp.tab, n: sp.n, overlay: make(map[ovKey]ovVal)}
}

// tryBatchedKernel dispatches an OutputQueryBatch to the SoA engine when
// the oracle and prober support it, reporting done=false for the serial
// fallback. Sequence numbers, symbol counters and determinism audits are
// issued in word order exactly as the serial loop would.
func (o *Oracle) tryBatchedKernel(ctx context.Context, words [][]int) (out [][]int, done bool, err error) {
	if !o.batched || len(words) == 0 {
		return nil, false, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, true, err
	}
	sp, ok := o.prober.(*SimProber)
	if !ok || sp.tab == nil {
		return nil, false, nil
	}
	if o.useMemo && !o.useTrie {
		return nil, false, nil // flat-memo ablation keeps its exact serial trajectory
	}
	n := o.prober.Assoc()
	for _, w := range words {
		for _, ip := range w {
			if ip < 0 || ip > n {
				// Out-of-range symbols take the serial loop so error
				// semantics — including which earlier words get recorded —
				// stay identical.
				return nil, false, nil
			}
		}
	}
	seqs := make([]int, len(words))
	for i, w := range words {
		seqs[i] = int(o.outputQueries.Add(1))
		o.symbols.Add(int64(len(w)))
	}
	if o.trieOn() {
		bp := newBatchProber(o, sp)
		out, err = bp.run(words, seqs)
	} else {
		out, err = o.batchedQueryNoMemo(sp, words)
	}
	if err != nil {
		return nil, true, err
	}
	if o.recheck > 0 {
		for i, w := range words {
			if seqs[i]%o.recheck != 0 || len(w) == 0 {
				continue
			}
			again, aerr := o.outputQueryOnce(ctx, w, true)
			if aerr != nil {
				return nil, true, aerr
			}
			for j := range out[i] {
				if out[i][j] != again[j] {
					return nil, true, fmt.Errorf("%w: repeated query diverged at position %d (%d vs %d)",
						ErrNondeterministic, j, out[i][j], again[j])
				}
			}
		}
	}
	return out, true, nil
}

// run answers one batch through the trie-backed engine.
func (bp *BatchProber) run(words [][]int, seqs []int) ([][]int, error) {
	if err := bp.plan(words, seqs); err != nil {
		return nil, err
	}
	bp.execute()
	bp.record()
	out := make([][]int, len(bp.plans))
	for i := range bp.plans {
		out[i] = bp.plans[i].out
	}
	return out, nil
}

// plan walks every word in order, splitting it into a known prefix and a
// pending suffix, and parks placeholders along the suffix path. It is the
// serial prefix walk with the overlay added; all store and LRU mutations
// happen in exactly the order the per-session path would perform them.
func (bp *BatchProber) plan(words [][]int, seqs []int) error {
	o := bp.o
	bp.plans = make([]batchPlan, len(words))
	parkRows := 0
	for i, word := range words {
		p := &bp.plans[i]
		p.word = word
		p.out = make([]int, len(word))
		p.seq = seqs[i]
		p.lane = -1
		p.srcLane = -1

		sh := o.out.Acquire(word)
		node := int32(0)
		k := 0
		resumeNode := int32(-1)
		resumeDepth := 0
		for k < len(word) {
			ip := word[k]
			c := sh.Child(node, ip)
			if c < 0 {
				break
			}
			if sh.Has(c) {
				p.out[k] = int(sh.Val(c).out)
			} else if ov, ok := bp.overlay[ovKey{shard: sh.Index(), node: c}]; ok {
				p.patches = append(p.patches, outPatch{pos: k, srcLane: ov.lane, srcPos: ov.pos})
			} else {
				break
			}
			node = c
			k++
			if sh.Val(c).sess != nil {
				resumeNode, resumeDepth = c, k
			}
		}
		p.k = k
		if k == len(word) {
			if resumeNode >= 0 {
				o.touch(sh, resumeNode)
			}
			sh.Release()
			o.memoHits.Add(int64(k))
			continue
		}
		if resumeNode >= 0 {
			o.touch(sh, resumeNode)
			switch s := sh.Val(resumeNode).sess.(type) {
			case *batchPark:
				p.srcLane, p.srcDepth = s.lane, s.depth
			case *kernelSession:
				f, _ := s.Fork()
				p.resumeSess = f.(*kernelSession)
			default:
				// A foreign session type under a compiled prober cannot
				// happen in this oracle; fail loudly rather than diverge.
				sh.Release()
				return fmt.Errorf("polca: non-kernel session parked under a compiled prober at depth %d", resumeDepth)
			}
			p.resumeDepth = resumeDepth
		}
		o.memoHits.Add(int64(k))
		p.lane = len(bp.byLane)
		bp.byLane = append(bp.byLane, p)
		if p.resumeDepth < k {
			ph := &batchPark{lane: p.lane, depth: k}
			o.park(sh, node, ph)
			p.parks = append(p.parks, plannedPark{depth: k, node: node, ph: ph})
		}
		for d := k; d < len(word); d++ {
			node = sh.Extend(node, word[d])
			bp.overlay[ovKey{shard: sh.Index(), node: node}] = ovVal{lane: p.lane, pos: d}
			ph := &batchPark{lane: p.lane, depth: d + 1}
			o.park(sh, node, ph)
			p.parks = append(p.parks, plannedPark{depth: d + 1, node: node, ph: ph})
		}
		parkRows += len(p.parks)
		sh.Release()
	}
	// Assign SoA rows: one lane per pending word, then one row per park.
	row := len(bp.byLane)
	for i := range bp.plans {
		p := &bp.plans[i]
		for j := range p.parks {
			p.parks[j].row = row
			row++
		}
	}
	bp.bt = policy.NewBatch(bp.tab, len(bp.byLane)+parkRows, bp.o.cc0IDs)
	return nil
}

// execute replays every pending lane over the SoA block, in word order so
// producer lanes complete before the lanes that copy their park rows.
func (bp *BatchProber) execute() {
	o, bt, tab, n := bp.o, bp.bt, bp.tab, bp.n
	for i := range bp.plans {
		p := &bp.plans[i]
		// Overlay-known positions resolve now: their producers ran already.
		for _, pt := range p.patches {
			p.out[pt.pos] = bp.byLane[pt.srcLane].out[pt.srcPos]
		}
		if p.lane < 0 {
			continue
		}
		switch {
		case p.resumeSess != nil:
			row := make([]int32, n)
			for j, b := range p.resumeSess.content {
				id, _ := blocks.Index(b)
				row[j] = int32(id)
			}
			bt.LoadLane(p.lane, p.resumeSess.state, row)
		case p.srcLane >= 0:
			bt.CopyLane(p.lane, bp.rowOf(p.srcLane, p.srcDepth))
		default:
			// Fresh from reset: NewBatch seeded the lane already.
		}
		st := bt.State(p.lane)
		row := bt.Row(p.lane)
		accesses := 0
		// Fast-forward the known tail: outputs are recorded, so this is
		// pure stepping — the serial path's "pure feeding, no probes".
		for d := p.resumeDepth; d < p.k; d++ {
			st, _ = tab.Step(st, p.word[d])
			if op := p.out[d]; op != policy.Bottom {
				row[op] = freshID(row)
			}
			accesses++
		}
		pk := 0
		if pk < len(p.parks) && p.parks[pk].depth == p.k {
			bt.SetState(p.lane, st)
			bt.CopyLane(p.parks[pk].row, p.lane)
			pk++
		}
		for d := p.k; d < len(p.word); d++ {
			ip := p.word[d]
			if ip < n {
				// Ln(ip): the fed block is the content of line ip, so it
				// hits there by the content/cc invariant — table input ip.
				st, _ = tab.Step(st, ip)
				p.out[d] = policy.Bottom
				accesses++
			} else {
				// Evct: a fresh block misses; the table's output is the
				// victim the findEvicted probes would identify, and those
				// associativity-many probes are accounted as the session
				// path would issue them.
				var v int32
				st, v = tab.Step(st, n)
				p.out[d] = int(v)
				row[v] = freshID(row)
				accesses += 1 + n
			}
			if pk < len(p.parks) && p.parks[pk].depth == d+1 {
				bt.SetState(p.lane, st)
				bt.CopyLane(p.parks[pk].row, p.lane)
				pk++
			}
		}
		bt.SetState(p.lane, st)
		o.probesN.Add(1)
		o.accessesN.Add(int64(accesses))
	}
}

// rowOf returns the park row of (lane, depth).
func (bp *BatchProber) rowOf(lane, depth int) int {
	for _, pk := range bp.byLane[lane].parks {
		if pk.depth == depth {
			return pk.row
		}
	}
	panic(fmt.Sprintf("polca: no park row for lane %d depth %d", lane, depth))
}

// record writes every pending word's outputs into the store and swaps
// surviving placeholders for kernel sessions materialized from their park
// rows — recordOutputs with parking replaced by resolution.
func (bp *BatchProber) record() {
	o := bp.o
	for i := range bp.plans {
		p := &bp.plans[i]
		if p.lane < 0 {
			continue
		}
		sh := o.out.Acquire(p.word)
		node := int32(0)
		pk := 0
		for d, ip := range p.word {
			node = sh.Extend(node, ip)
			v := sh.Val(node)
			v.out = int16(p.out[d])
			sh.SetHas(node)
			for pk < len(p.parks) && p.parks[pk].depth == d+1 {
				park := p.parks[pk]
				if sh.Val(park.node).sess == park.ph {
					sh.Val(park.node).sess = bp.materialize(park.row)
				}
				pk++
			}
		}
		sh.Release()
	}
}

// materialize builds the kernel session a park row snapshot stands for.
func (bp *BatchProber) materialize(row int) Session {
	ids := bp.bt.Row(row)
	content := make([]blocks.Block, len(ids))
	for i, id := range ids {
		content[i] = blocks.Interned(int(id))
	}
	return &kernelSession{tab: bp.tab, state: bp.bt.State(row), content: content}
}

// batchedQueryNoMemo is the memo-less SoA path (the WithoutMemo ablation):
// every word runs from reset, so all lanes advance position by position and
// runs of lanes sharing a symbol step through the table in one StepBatchOut
// pass over the contiguous state vector. Counters match the memo-less
// session path: one probe per word, len + assoc·#Evct accesses.
func (o *Oracle) batchedQueryNoMemo(sp *SimProber, words [][]int) ([][]int, error) {
	n := sp.n
	tab := sp.tab
	L := len(words)
	bt := policy.NewBatch(tab, L, o.cc0IDs)
	out := make([][]int, L)
	maxLen := 0
	for i, w := range words {
		out[i] = make([]int, len(w))
		if len(w) > maxLen {
			maxLen = len(w)
		}
	}
	vout := make([]int32, L)
	var accesses int64
	for pos := 0; pos < maxLen; pos++ {
		for lo := 0; lo < L; {
			if len(words[lo]) <= pos {
				lo++
				continue
			}
			sym := words[lo][pos]
			hi := lo + 1
			for hi < L && len(words[hi]) > pos && words[hi][pos] == sym {
				hi++
			}
			bt.StepRun(lo, hi, sym, vout)
			if sym == n {
				for l := lo; l < hi; l++ {
					row := bt.Row(l)
					v := vout[l]
					row[v] = freshID(row)
					out[l][pos] = int(v)
				}
				accesses += int64(hi-lo) * int64(1+n)
			} else {
				for l := lo; l < hi; l++ {
					out[l][pos] = policy.Bottom
				}
				accesses += int64(hi - lo)
			}
			lo = hi
		}
	}
	o.probesN.Add(int64(L))
	o.accessesN.Add(accesses)
	return out, nil
}

// findEvictedBatched is mapOutputProbes' eviction-probe loop grouped into
// one ProbeBatch call: the associativity-many probes are independent and
// reset-rooted, so a replica pool executes them concurrently. Counters per
// probe match the serial loop.
func (o *Oracle) findEvictedBatched(ctx context.Context, bpr ProbeBatcher, ic []blocks.Block, cc []blocks.Block) (int, error) {
	n := o.prober.Assoc()
	qs := make([][]blocks.Block, n)
	for i := 0; i < n; i++ {
		qs[i] = append(append(make([]blocks.Block, 0, len(ic)+1), ic...), cc[i])
	}
	ocs, err := bpr.ProbeBatch(ctx, qs)
	if err != nil {
		return 0, err
	}
	evicted := -1
	for i, poc := range ocs {
		o.probesN.Add(1)
		o.accessesN.Add(int64(len(qs[i])))
		if poc == cache.Miss {
			if evicted != -1 {
				return 0, fmt.Errorf("%w: blocks %s and %s both evicted by one miss", ErrNondeterministic, cc[evicted], cc[i])
			}
			evicted = i
		}
	}
	if evicted == -1 {
		return 0, fmt.Errorf("%w: no resident block evicted by a miss", ErrNondeterministic)
	}
	return evicted, nil
}

// findEvictedTrieBatched is mapOutputTrie's eviction-probe loop grouped
// into one ProbeBatch call on the memoized trie path — the shape a remote
// fleet needs: the associativity-many probes of one Evct either answer
// from the probe trie or ship together as a single round trip instead of
// associativity sequential ones. Each probe first walks the exact serial
// memo protocol (hit, join an in-flight execution, or claim the
// single-flight slot); only the claimed residue is batched. Bookkeeping is
// per probe identical to the serial loop — memoHits for hits and joins,
// probesN/accessesN on execution, memo entries recorded under the same
// trie nodes — so stores, counters and answers match a serial run
// bit-for-bit. Only error delivery differs, exactly as in
// findEvictedBatched: a failing batch fails all claimed probes after
// issuing them, where the serial loop stops at the first.
func (o *Oracle) findEvictedTrieBatched(ctx context.Context, bpr ProbeBatcher, ic []int32, icN []blocks.Block, cc []int32) (int, error) {
	n := o.prober.Assoc()
	ocs := make([]cache.Outcome, n)
	qs := make([][]blocks.Block, n)
	pids := make([][]int32, n)
	type flight struct {
		i    int
		node int32
		fl   *inflightProbe
	}
	var claims, waits []flight
	for i := 0; i < n; i++ {
		pids[i] = append(append(make([]int32, 0, len(ic)+1), ic...), cc[i])
		qs[i] = append(append(make([]blocks.Block, 0, len(icN)+1), icN...), blocks.Interned(int(cc[i])))
		sh := o.pt.Acquire(pids[i])
		node := sh.Ensure(pids[i])
		switch {
		case sh.Has(node):
			ocs[i] = sh.Val(node).oc
			o.memoHits.Add(1)
			sh.Release()
		case sh.Val(node).fl != nil:
			fl := sh.Val(node).fl
			sh.Release()
			waits = append(waits, flight{i, node, fl})
		default:
			fl := &inflightProbe{done: make(chan struct{})}
			sh.Val(node).fl = fl
			sh.Release()
			claims = append(claims, flight{i, node, fl})
		}
	}
	var groupErr error
	if len(claims) > 0 {
		sub := make([][]blocks.Block, len(claims))
		for j, c := range claims {
			sub[j] = qs[c.i]
		}
		res, err := bpr.ProbeBatch(ctx, sub)
		groupErr = err
		for j, c := range claims {
			if err == nil {
				c.fl.oc = res[j]
				ocs[c.i] = res[j]
			} else {
				c.fl.err = err
			}
			sh := o.pt.Acquire(pids[c.i])
			sh.Val(c.node).fl = nil
			if err == nil {
				o.probesN.Add(1)
				o.accessesN.Add(int64(len(qs[c.i])))
				sh.Put(c.node, probeVal{oc: c.fl.oc})
			}
			sh.Release()
			close(c.fl.done)
		}
	}
	for _, w := range waits {
		<-w.fl.done
		if w.fl.err != nil {
			if groupErr == nil {
				groupErr = w.fl.err
			}
			continue
		}
		o.memoHits.Add(1)
		ocs[w.i] = w.fl.oc
	}
	if groupErr != nil {
		return 0, groupErr
	}
	check := func() (int, error) {
		evicted := -1
		for i := 0; i < n; i++ {
			if ocs[i] == cache.Miss {
				if evicted != -1 {
					return 0, fmt.Errorf("%w: blocks %s and %s both evicted by one miss",
						ErrNondeterministic, blocks.Interned(int(cc[evicted])), blocks.Interned(int(cc[i])))
				}
				evicted = i
			}
		}
		if evicted == -1 {
			return 0, fmt.Errorf("%w: no resident block evicted by a miss", ErrNondeterministic)
		}
		return evicted, nil
	}
	evicted, err := check()
	if err != nil {
		// An inconsistent eviction group means at least one probe in it is
		// wrong — re-measure the whole group serially (correcting the memo,
		// exactly as the serial scan's refresh pass) before giving up.
		for i := 0; i < n; i++ {
			poc, rerr := o.reprobe(ctx, qs[i], pids[i])
			if rerr != nil {
				return 0, rerr
			}
			ocs[i] = poc
		}
		evicted, err = check()
	}
	return evicted, err
}
