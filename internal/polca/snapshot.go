package polca

// On-disk snapshots of the oracle's policy-output store, for warm-started
// learning: a snapshot saved after one run answers every previously-asked
// policy query of a later run straight from the store, so the backend is
// probed only for genuinely new words. Parked sessions are a decoration
// the snapshot skips — a warm oracle re-opens sessions lazily, and only
// for words that actually extend past the recorded prefixes.
//
// A snapshot is only meaningful against the same system under the same
// reset: replaying outputs recorded for a different policy or reset would
// silently mix two trace semantics. Callers therefore tag snapshots with
// a scope string (e.g. "sim:LRU-4", "hw:skylake/L2:0:0/reset=...") and
// LoadSnapshot refuses a scope mismatch; the store layer additionally
// checksums the payload and rejects truncated, corrupt, or
// version-mismatched files (see internal/qstore).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/qstore"
)

// snapshotMagic brands oracle snapshots ahead of the store payload.
const snapshotMagic = "POLCAQS"

// snapshotVersion is the oracle-level header version.
const snapshotVersion = 1

// errNoTrie is returned when snapshotting a flat-memo or unmemoized oracle.
var errNoTrie = errors.New("polca: snapshots require the prefix-tree query engine (WithoutMemo/WithoutTrie oracles have no output store)")

// ErrSnapshotScope is returned by LoadSnapshot when the snapshot was
// recorded for a different scope (policy, reset, or hardware target) than
// the oracle loading it. Unlike corruption this is not a damaged file —
// warm-start callers must not silently degrade to a cold run over it
// without surfacing the mismatch, since it usually means a mislabeled
// snapshot path.
var ErrSnapshotScope = errors.New("polca: snapshot scope mismatch")

// corruptf wraps a snapshot-header decoding failure as qstore.ErrCorrupt,
// so callers can errors.Is-match damaged files uniformly across the oracle
// header and the store payload.
func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, qstore.ErrCorrupt)...)
}

// outCodec encodes output-store values for snapshots: the policy output
// alone. Sessions and LRU links are transient decorations.
type outCodec struct{}

// AppendValue implements qstore.Codec.
func (outCodec) AppendValue(dst []byte, v outVal) []byte {
	return binary.AppendVarint(dst, int64(v.out))
}

// DecodeValue implements qstore.Codec.
func (outCodec) DecodeValue(src []byte) (outVal, int, error) {
	x, n := binary.Varint(src)
	if n <= 0 {
		return outVal{}, 0, fmt.Errorf("truncated output value")
	}
	return outVal{out: int16(x)}, n, nil
}

// SaveSnapshot writes the oracle's recorded policy outputs to w, tagged
// with the caller's scope string.
func (o *Oracle) SaveSnapshot(w io.Writer, scope string) error {
	if !o.trieOn() {
		return errNoTrie
	}
	var hdr []byte
	hdr = append(hdr, snapshotMagic...)
	hdr = binary.AppendUvarint(hdr, snapshotVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(scope)))
	hdr = append(hdr, scope...)
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("polca: writing snapshot header: %w", err)
	}
	return o.out.Save(w, outCodec{})
}

// LoadSnapshot merges a snapshot into the oracle's policy-output store.
// It fails on a scope mismatch, an unsupported header, or any corruption
// the store layer detects — in every failure case the store is untouched.
// Loading is only allowed before the oracle has answered any query:
// applying snapshot entries over nodes that already hold live parked
// sessions would wipe the decorations while the LRU bookkeeping still
// references them. Several snapshots of the same scope may be loaded in
// sequence, as long as all of them land before the first query.
func (o *Oracle) LoadSnapshot(r io.Reader, scope string) error {
	if !o.trieOn() {
		return errNoTrie
	}
	if o.outputQueries.Load() != 0 {
		return errors.New("polca: LoadSnapshot must run before the oracle answers queries (loading over parked sessions would corrupt them)")
	}
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return corruptf("polca: reading snapshot header: %v", err)
	}
	if string(magic) != snapshotMagic {
		return corruptf("polca: not an oracle snapshot (bad magic %q)", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return corruptf("polca: reading snapshot header: %v", err)
	}
	if version != snapshotVersion {
		return corruptf("polca: unsupported oracle snapshot version %d (want %d)", version, snapshotVersion)
	}
	scopeLen, err := binary.ReadUvarint(br)
	if err != nil {
		return corruptf("polca: reading snapshot header: %v", err)
	}
	const maxScope = 1 << 16
	if scopeLen > maxScope {
		return corruptf("polca: implausible snapshot scope length %d", scopeLen)
	}
	got := make([]byte, scopeLen)
	if _, err := io.ReadFull(br, got); err != nil {
		return corruptf("polca: reading snapshot header: %v", err)
	}
	if string(got) != scope {
		return fmt.Errorf("%w: snapshot recorded for %q, this oracle is %q", ErrSnapshotScope, got, scope)
	}
	if err := o.out.Load(br, outCodec{}); err != nil {
		var se *qstore.SnapshotError
		if errors.As(err, &se) {
			return fmt.Errorf("polca: %w", err)
		}
		return err
	}
	return nil
}
