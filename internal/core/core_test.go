package core

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cachequery"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/policy"
	"repro/internal/synth"
)

func testCPU() hw.CPUConfig {
	return hw.CPUConfig{
		Name:       "core-test",
		Arch:       "Test",
		L1:         hw.LevelConfig{Assoc: 4, Slices: 1, SetsPerSlice: 16, Policy: "PLRU", HitLatency: 4, LatencySigma: 0.5},
		L2:         hw.LevelConfig{Assoc: 4, Slices: 1, SetsPerSlice: 64, Policy: "New1", HitLatency: 12, LatencySigma: 1},
		L3:         hw.LevelConfig{Assoc: 8, Slices: 2, SetsPerSlice: 256, Policy: "New2", HitLatency: 40, LatencySigma: 3},
		MemLatency: 190, MemSigma: 15,
	}
}

func TestLearnSimulated(t *testing.T) {
	res, err := LearnSimulated(context.Background(), "MRU", 4, learn.Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.NumStates != 14 || res.Policy != "MRU" {
		t.Errorf("result %+v", res)
	}
	if res.OracleStats.Probes == 0 || res.LearnStats.OutputQueries == 0 {
		t.Error("stats not collected")
	}
	if _, err := LearnSimulated(context.Background(), "nope", 4, learn.Options{}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestLearnHardwareWithDefaultReset(t *testing.T) {
	res, err := LearnHardware(context.Background(), HardwareRequest{
		CPU:              hw.NewCPU(testCPU(), 9),
		Target:           cachequery.Target{Level: hw.L1, Set: 5},
		Backend:          cachequery.BackendOptions{MaxBlocks: 12, Reps: 3, EvictRounds: 1, CalibrationSamples: 21},
		Learn:            learn.Options{Depth: 1},
		DeterminismEvery: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.NumStates != 8 {
		t.Errorf("learned %d states, want 8 (PLRU-4)", res.Machine.NumStates)
	}
	if res.Reset.Name() != "F+R" {
		t.Errorf("reset %q, want default F+R", res.Reset.Name())
	}
	truth, err := GroundTruthAfterReset(policy.MustNew("PLRU", 4), res.Reset)
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := res.Machine.Equivalent(truth); !eq {
		t.Errorf("learned machine differs, ce=%v", ce)
	}
}

func TestLearnHardwareTriesResetCandidates(t *testing.T) {
	// The first candidate (F+R) is invalid for New1; LearnHardware must
	// fall through to the synchronizing sequence and succeed. New1 is
	// installed at the L1 here so the probes need no cross-level
	// filtering, keeping the test fast; the filtered L2 path is covered
	// by internal/cachequery's TestLearnNew1FromTinyHardwareL2.
	cfg := testCPU()
	cfg.L1.Policy = "New1"
	pol := policy.MustNew("New1", 4)
	candidates := append([]cachequery.Reset{cachequery.FlushRefill(4)}, ResetCandidatesFor(pol)...)
	res, err := LearnHardware(context.Background(), HardwareRequest{
		CPU:              hw.NewCPU(cfg, 9),
		NewCPU:           func() *hw.CPU { return hw.NewCPU(cfg, 9) },
		Target:           cachequery.Target{Level: hw.L1, Set: 7},
		Backend:          cachequery.BackendOptions{MaxBlocks: 12, Reps: 3, EvictRounds: 1, CalibrationSamples: 21},
		Resets:           candidates,
		Learn:            learn.Options{Depth: 1, MaxStates: 1000},
		DeterminismEvery: 2, // catch the invalid reset quickly
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reset.Name() == "F+R" {
		t.Error("learning claimed success with the invalid F+R reset")
	}
	truth, err := GroundTruthAfterReset(pol, res.Reset)
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := res.Machine.Equivalent(truth); !eq {
		t.Errorf("learned machine differs from New1, ce=%v", ce)
	}
}

// TestLearnHardwareParallelMatchesSerial runs the same request through the
// serial pipeline and through the concurrent membership-query engine (a
// 4-replica CPU pool) and requires trace-equivalent machines.
func TestLearnHardwareParallelMatchesSerial(t *testing.T) {
	request := func(replicas int) HardwareRequest {
		return HardwareRequest{
			CPU:              hw.NewCPU(testCPU(), 9),
			NewCPU:           func() *hw.CPU { return hw.NewCPU(testCPU(), 9) },
			Replicas:         replicas,
			Target:           cachequery.Target{Level: hw.L1, Set: 5},
			Backend:          cachequery.BackendOptions{MaxBlocks: 12, Reps: 3, EvictRounds: 1, CalibrationSamples: 21},
			Learn:            learn.Options{Depth: 1},
			DeterminismEvery: 64,
		}
	}
	serial, err := LearnHardware(context.Background(), request(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := LearnHardware(context.Background(), request(4))
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := parallel.Machine.Equivalent(serial.Machine); !eq {
		t.Fatalf("parallel learning diverged from serial, ce=%v", ce)
	}
	if parallel.Machine.NumStates != 8 {
		t.Errorf("learned %d states, want 8 (PLRU-4)", parallel.Machine.NumStates)
	}
	if parallel.Frontend.Executed == 0 {
		t.Error("replica frontend stats not aggregated")
	}
}

// TestLearnHardwareTreeLearner drives the full hardware pipeline with the
// discrimination-tree learner, serial and on the replica engine: both must
// match the L* result and the post-reset ground truth, and the tree must ask
// fewer output queries.
func TestLearnHardwareTreeLearner(t *testing.T) {
	request := func(algo learn.Algo, replicas int) HardwareRequest {
		return HardwareRequest{
			CPU:              hw.NewCPU(testCPU(), 9),
			NewCPU:           func() *hw.CPU { return hw.NewCPU(testCPU(), 9) },
			Replicas:         replicas,
			Target:           cachequery.Target{Level: hw.L1, Set: 5},
			Backend:          cachequery.BackendOptions{MaxBlocks: 12, Reps: 3, EvictRounds: 1, CalibrationSamples: 21},
			Learn:            learn.Options{Algo: algo, Depth: 1},
			DeterminismEvery: 64,
		}
	}
	tree, err := LearnHardware(context.Background(), request(learn.AlgoTree, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tree.Machine.NumStates != 8 {
		t.Errorf("tree learned %d states, want 8 (PLRU-4)", tree.Machine.NumStates)
	}
	truth, err := GroundTruthAfterReset(policy.MustNew("PLRU", 4), tree.Reset)
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := tree.Machine.Equivalent(truth); !eq {
		t.Fatalf("tree machine differs from ground truth, ce=%v", ce)
	}
	lstar, err := LearnHardware(context.Background(), request(learn.AlgoLStar, 1))
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := tree.Machine.Equivalent(lstar.Machine); !eq {
		t.Fatalf("tree and L* machines differ, ce=%v", ce)
	}
	if tree.LearnStats.OutputQueries >= lstar.LearnStats.OutputQueries {
		t.Errorf("tree asked %d output queries, L* %d — no query win on the hardware pipeline",
			tree.LearnStats.OutputQueries, lstar.LearnStats.OutputQueries)
	}
	parallel, err := LearnHardware(context.Background(), request(learn.AlgoTree, 4))
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := parallel.Machine.Equivalent(tree.Machine); !eq {
		t.Fatalf("parallel tree learning diverged from serial, ce=%v", ce)
	}
}

func TestLearnHardwareAllResetsFail(t *testing.T) {
	// An undersized state budget makes every candidate fail.
	_, err := LearnHardware(context.Background(), HardwareRequest{
		CPU:     hw.NewCPU(testCPU(), 9),
		Target:  cachequery.Target{Level: hw.L1, Set: 1},
		Backend: cachequery.BackendOptions{MaxBlocks: 12, Reps: 3, EvictRounds: 1, CalibrationSamples: 21},
		Learn:   learn.Options{Depth: 1, MaxStates: 2},
	})
	if err == nil || !strings.Contains(err.Error(), "every reset candidate failed") {
		t.Errorf("err = %v", err)
	}
}

func TestLearnHardwareRejectsCATWithoutSupport(t *testing.T) {
	_, err := LearnHardware(context.Background(), HardwareRequest{
		CPU:     hw.NewCPU(testCPU(), 9),
		Target:  cachequery.Target{Level: hw.L3, Set: 0},
		Backend: cachequery.BackendOptions{MaxBlocks: 12, Reps: 3, EvictRounds: 1, CalibrationSamples: 21},
		CATWays: 4,
	})
	if err == nil {
		t.Error("CAT accepted on a CPU without support")
	}
}

func TestResetCandidatesFor(t *testing.T) {
	// New1 has a findable synchronizing sequence plus the F+R fallback.
	cands := ResetCandidatesFor(policy.MustNew("New1", 4))
	if len(cands) != 2 {
		t.Fatalf("%d candidates", len(cands))
	}
	if len(cands[0].Content) != 4 {
		t.Error("first candidate has no verified content")
	}
	// FIFO has no synchronizing sequence: only F+R remains.
	cands = ResetCandidatesFor(policy.MustNew("FIFO", 4))
	if len(cands) != 1 || cands[0].Name() != "F+R" {
		t.Errorf("FIFO candidates = %v", cands)
	}
}

func TestGroundTruthAfterResetWithoutFlush(t *testing.T) {
	// A non-flush reset must converge from placeholder dirty content.
	pol := policy.MustNew("PLRU", 4)
	rr := ResetCandidatesFor(pol)[0]
	noFlush := cachequery.Reset{
		FlushFirst: false,
		Sequence:   append(append([]string{}, rr.Sequence...), rr.Sequence...),
		Content:    rr.Content,
	}
	if _, err := GroundTruthAfterReset(pol, noFlush); err != nil {
		t.Fatal(err)
	}
}

func TestExplainDelegates(t *testing.T) {
	m, _ := mealy.FromPolicy(policy.MustNew("FIFO", 4), 0)
	res, err := Explain(m, synth.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program == nil {
		t.Error("no program returned")
	}
}

// TestWarmStartSimulated: a warm-started re-learn of a published policy
// must replay recorded answers from disk — bit-identical machine, the
// exact same learner trajectory, and >= 90% fewer backend probes (in the
// deterministic simulator setting, exactly zero).
func TestWarmStartSimulated(t *testing.T) {
	for _, c := range []struct {
		name  string
		assoc int
	}{{"LRU", 4}, {"SRRIP-HP", 4}} {
		t.Run(c.name, func(t *testing.T) {
			snap := filepath.Join(t.TempDir(), "oracle.qs")
			cold, err := LearnSimulatedSnapshot(context.Background(), c.name, c.assoc, learn.Options{Depth: 1}, SnapshotOptions{SavePath: snap})
			if err != nil {
				t.Fatal(err)
			}
			warm, err := LearnSimulatedSnapshot(context.Background(), c.name, c.assoc, learn.Options{Depth: 1}, SnapshotOptions{WarmPath: snap})
			if err != nil {
				t.Fatal(err)
			}
			cm, wm := cold.Machine, warm.Machine
			if cm.NumStates != wm.NumStates || cm.Init != wm.Init ||
				!reflect.DeepEqual(cm.Next, wm.Next) || !reflect.DeepEqual(cm.Out, wm.Out) {
				t.Error("warm-started machine differs from the cold one")
			}
			cs, ws := cold.LearnStats, warm.LearnStats
			if cs.OutputQueries != ws.OutputQueries || cs.TestWords != ws.TestWords || cs.Rounds != ws.Rounds {
				t.Errorf("warm trajectory diverged: cold %+v, warm %+v", cs, ws)
			}
			if 10*warm.OracleStats.Probes > cold.OracleStats.Probes {
				t.Errorf("warm start saved too little: %d probes cold, %d warm",
					cold.OracleStats.Probes, warm.OracleStats.Probes)
			}
		})
	}
}

// TestWarmStartScopeGuard: a snapshot recorded for one policy must be
// refused when warm-starting another.
func TestWarmStartScopeGuard(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "oracle.qs")
	if _, err := LearnSimulatedSnapshot(context.Background(), "LRU", 4, learn.Options{Depth: 1}, SnapshotOptions{SavePath: snap}); err != nil {
		t.Fatal(err)
	}
	_, err := LearnSimulatedSnapshot(context.Background(), "MRU", 4, learn.Options{Depth: 1}, SnapshotOptions{WarmPath: snap})
	if err == nil || !strings.Contains(err.Error(), "recorded for") {
		t.Fatalf("cross-policy warm start not rejected: %v", err)
	}
}

// TestWarmStartHardware drives snapshot persistence through the full
// hardware pipeline on the toy-sized test CPU: the warm run must learn
// the identical machine while executing almost no fresh MBL queries.
func TestWarmStartHardware(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "hw.qs")
	req := func(s SnapshotOptions) HardwareRequest {
		return HardwareRequest{
			CPU:      hw.NewCPU(testCPU(), 7),
			Target:   cachequery.Target{Level: hw.L1, Set: 0},
			Backend:  cachequery.BackendOptions{MaxBlocks: 12, Reps: 3, EvictRounds: 1, CalibrationSamples: 21},
			Learn:    learn.Options{Depth: 1, MaxStates: 64},
			Snapshot: s,
		}
	}
	cold, err := LearnHardware(context.Background(), req(SnapshotOptions{SavePath: snap}))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := LearnHardware(context.Background(), req(SnapshotOptions{WarmPath: snap}))
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := warm.Machine.Equivalent(cold.Machine); !eq {
		t.Fatalf("warm hardware machine differs, ce=%v", ce)
	}
	if 10*warm.OracleStats.Probes > cold.OracleStats.Probes {
		t.Errorf("warm hardware run probed too much: %d cold, %d warm",
			cold.OracleStats.Probes, warm.OracleStats.Probes)
	}
}

// TestLearnSimulatedKernelBitIdentical is the end-to-end compiled↔interpreted
// guarantee the kernel rides on: learning the same policy with the compiled
// kernel (default) and with SimOptions.Interpreted produces byte-identical
// model JSON, identical learner statistics, and bit-identical deterministic
// oracle counters (queries, symbols, probes, accesses, memo hits).
func TestLearnSimulatedKernelBitIdentical(t *testing.T) {
	for _, c := range []struct {
		name  string
		assoc int
		algo  learn.Algo
	}{
		{"New1", 4, learn.AlgoLStar},
		{"SRRIP-HP", 4, learn.AlgoTree},
	} {
		opt := learn.Options{Depth: 1, Algo: c.algo}
		compiled, err := LearnSimulatedSim(context.Background(), c.name, c.assoc, opt, SnapshotOptions{}, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		interp, err := LearnSimulatedSim(context.Background(), c.name, c.assoc, opt, SnapshotOptions{}, SimOptions{Interpreted: true})
		if err != nil {
			t.Fatal(err)
		}
		var cj, ij bytes.Buffer
		if err := compiled.Machine.Save(&cj); err != nil {
			t.Fatal(err)
		}
		if err := interp.Machine.Save(&ij); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cj.Bytes(), ij.Bytes()) {
			t.Errorf("%s-%d/%s: compiled and interpreted model JSON differ", c.name, c.assoc, c.algo)
		}
		cs, is := compiled.LearnStats, interp.LearnStats
		cs.Duration, is.Duration = 0, 0
		if !reflect.DeepEqual(cs, is) {
			t.Errorf("%s-%d/%s: learner stats diverged: %+v vs %+v", c.name, c.assoc, c.algo, cs, is)
		}
		if compiled.OracleStats != interp.OracleStats {
			t.Errorf("%s-%d/%s: oracle counters diverged: %+v vs %+v",
				c.name, c.assoc, c.algo, compiled.OracleStats, interp.OracleStats)
		}
	}
}
