// Package core wires the CacheQuery reproduction into end-to-end pipelines:
// learning replacement policies from software-simulated caches (§6),
// learning them from the simulated silicon CPUs through CacheQuery (§7),
// and synthesizing rule-based explanations of the results (§5, §8). The
// command-line tools, the examples and the benchmark harness are thin
// clients of this package.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/cachequery"
	"repro/internal/faulty"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
	"repro/internal/qstore"
	"repro/internal/remote"
	"repro/internal/synth"
)

// SimResult is the outcome of learning from a software-simulated cache.
type SimResult struct {
	Policy      string
	Assoc       int
	Machine     *mealy.Machine
	LearnStats  learn.Stats
	OracleStats polca.Stats
	// Fleet carries the distributed-run resilience counters (hedges,
	// retries, quarantines, per-worker traffic); nil for local runs.
	Fleet *remote.FleetStats
}

// SnapshotOptions controls oracle query-store persistence around a
// learning run. Snapshots make learning warm-startable: a saved store
// answers every previously-asked policy query from disk, so a re-learn
// touches the backend only for genuinely new words.
type SnapshotOptions struct {
	// WarmPath, when set, loads this snapshot into the oracle before
	// learning. The snapshot must have been recorded for the same system
	// (policy/associativity, or CPU/target/reset) — the scope check
	// refuses anything else.
	WarmPath string
	// SavePath, when set, writes the oracle's query store here after a
	// successful learning run.
	SavePath string
	// CheckpointEvery, when positive, auto-snapshots the oracle's query
	// store to SavePath every CheckpointEvery output queries during the
	// run, so a crashed or killed learn can resume warm from the latest
	// checkpoint (pass the same path as WarmPath on the next run). Each
	// checkpoint is written through a temp file and an atomic rename; a
	// crash mid-checkpoint never destroys the previous one. Requires
	// SavePath.
	CheckpointEvery int
	// ColdOnDamage degrades a warm start to a cold run — instead of
	// failing it — when WarmPath is missing (fs.ErrNotExist) or its
	// content is damaged (qstore.ErrCorrupt: truncation, checksum or
	// format errors). A scope mismatch (polca.ErrSnapshotScope) still
	// fails: a snapshot recorded for a different system is a caller bug,
	// not damage.
	ColdOnDamage bool
}

// SimSnapshotScope is the scope string tagging simulator snapshots: the
// learned system is fully identified by policy name and associativity.
func SimSnapshotScope(policyName string, assoc int) string {
	return fmt.Sprintf("sim:%s-%d", policyName, assoc)
}

// SnapshotPathInDir is the canonical per-system snapshot file inside a
// snapshot directory: <dir>/<policy>-<assoc>.qs.
func SnapshotPathInDir(dir, policyName string, assoc int) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%d.qs", policyName, assoc))
}

// SnapshotInDir builds the SnapshotOptions shared by the snapshot-dir
// flows (cmd/experiments table2, cmd/genmodels): the system's store is
// always saved into dir, and warm-starts from it when a snapshot already
// exists there. An empty dir disables persistence.
func SnapshotInDir(dir, policyName string, assoc int) SnapshotOptions {
	if dir == "" {
		return SnapshotOptions{}
	}
	path := SnapshotPathInDir(dir, policyName, assoc)
	snap := SnapshotOptions{SavePath: path}
	if _, err := os.Stat(path); err == nil {
		snap.WarmPath = path
	}
	return snap
}

// LoadOracleSnapshot warm-starts an oracle from a snapshot file. With
// coldOnDamage, a missing or corrupt snapshot degrades to a cold start
// (returning warm=false, err=nil) rather than failing the run; the oracle's
// store is untouched in that case, because snapshot loading verifies
// checksums and parses every entry before applying anything. The learning
// pipelines below and the polcad daemon (internal/daemon) share this exact
// load path, so a snapshot written by one is always loadable by the other.
func LoadOracleSnapshot(oracle *polca.Oracle, path, scope string, coldOnDamage bool) (warm bool, err error) {
	fh, err := os.Open(path)
	if err != nil {
		if coldOnDamage && errors.Is(err, qstore.ErrMissing) {
			return false, nil
		}
		return false, fmt.Errorf("core: warm start: %w", err)
	}
	defer fh.Close()
	if err := oracle.LoadSnapshot(fh, scope); err != nil {
		if coldOnDamage && errors.Is(err, qstore.ErrCorrupt) {
			fmt.Fprintf(os.Stderr, "core: warm start from %s: %v; starting cold\n", path, err)
			return false, nil
		}
		return false, fmt.Errorf("core: warm start from %s: %w", path, err)
	}
	return true, nil
}

// SaveOracleSnapshot persists an oracle's query store to a snapshot file.
// The write goes through a temp file and an atomic rename, so a crash or a
// full disk mid-write never destroys an existing good snapshot — which
// the snapshot-dir auto-warm flows would otherwise keep failing on.
func SaveOracleSnapshot(oracle *polca.Oracle, path, scope string) error {
	fh, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: saving snapshot: %w", err)
	}
	tmp := fh.Name()
	fail := func(err error) error {
		fh.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: saving snapshot to %s: %w", path, err)
	}
	if err := oracle.SaveSnapshot(fh, scope); err != nil {
		return fail(err)
	}
	if err := fh.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: saving snapshot to %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: saving snapshot to %s: %w", path, err)
	}
	return nil
}

// armCheckpoints wires periodic auto-snapshots into an oracle: every
// CheckpointEvery output queries the store is saved to SavePath through the
// same atomic-rename path as the final save. Checkpointing is best-effort —
// a failed write is reported and the run continues; the next window tries
// again.
func armCheckpoints(oracle *polca.Oracle, snap SnapshotOptions, scope string) {
	if snap.CheckpointEvery <= 0 || snap.SavePath == "" {
		return
	}
	oracle.SetCheckpointer(snap.CheckpointEvery, func() {
		if err := SaveOracleSnapshot(oracle, snap.SavePath, scope); err != nil {
			fmt.Fprintf(os.Stderr, "core: checkpoint: %v\n", err)
		}
	})
}

// SimOptions configures the simulated-cache learning stack below the
// learner: the policy representation the prober runs on.
type SimOptions struct {
	// Interpreted disables the compiled policy kernel and drives the
	// simulator through the interpreted Policy interface — the pre-kernel
	// path the -compiled=false toggles and the kernel ablation benchmarks
	// select. Learned machines, learner trajectories and every
	// deterministic oracle counter are bit-identical either way; only the
	// wall-clock cost of simulated probes changes.
	Interpreted bool
	// Batched enables the structure-of-arrays batched query engine
	// (polca.WithBatchedQueries): output-query batches execute over one
	// contiguous state vector and content matrix instead of per-session
	// goroutines. Requires the compiled kernel; with Interpreted set the
	// oracle quietly keeps the per-session path. Answers and every
	// deterministic counter are bit-identical to the per-session path.
	Batched bool
	// Workers caps the per-session path's goroutine fan-out
	// (polca.WithParallelism); 0 keeps the oracle's GOMAXPROCS default.
	// Pinning Workers to 1 makes per-session runs reproduce the exact
	// serial trajectory the batched engine is tested against.
	Workers int
	// Faults, when set, interposes a deterministic fault injector
	// (internal/faulty) between the oracle and the simulator: probes
	// suffer the plan's seeded mix of transient errors, stalls and
	// answer flips, exercised against the oracle's retry policy. The
	// wrapper hides the forking-session fast path, so a faulty run takes
	// the reset-rooted probe path the resilience machinery defends. When
	// the plan flips answers, probe voting is enabled automatically so
	// the learned machine still converges to the ground truth.
	Faults *faulty.Plan
	// Retry, when set, overrides the oracle's transient-failure retry
	// policy (polca.DefaultRetryPolicy otherwise). Soak tests use it to
	// shrink the backoff sleeps; the retry semantics are identical.
	Retry *polca.RetryPolicy
	// FleetWorkers lists remote polcaworker addresses (host:port or URL).
	// When non-empty, the oracle probes a distributed worker fleet
	// (internal/remote) instead of an in-process simulator: probe batches
	// fan out over the workers through the health-scored pool, answers
	// merge back in submission order, and the oracle batches eviction
	// probes so each Evct costs one round trip. Learned machines and
	// learner trajectories are bit-identical to a single-box run. The
	// fleet serves simulator scopes only — it composes with Interpreted
	// (workers run interpreted engines) but not with Faults (fleet runs
	// exercise real transport failures, not injected ones).
	FleetWorkers []string
	// FleetSlots is the per-worker concurrency of the fleet pool
	// (remote.FleetOptions.Slots); 0 keeps the default.
	FleetSlots int
	// FleetHedge is the straggler hedge delay (remote.FleetOptions.
	// HedgeAfter); 0 keeps the default, negative disables hedging.
	FleetHedge time.Duration
	// FleetLogf, when set, receives fleet resilience events (quarantine,
	// re-admission, snapshot shipping).
	FleetLogf func(format string, args ...any)
}

// SimProber builds the simulator prober for a policy according to the
// options: compiled kernel by default (with the interpreted fallback for
// uncompilable policies), forced-interpreted on demand.
func (o SimOptions) SimProber(pol policy.Policy) *polca.SimProber {
	if o.Interpreted {
		return polca.NewInterpretedSimProber(pol)
	}
	return polca.NewSimProber(pol)
}

// LearnSimulated learns a named policy of the given associativity from a
// software-simulated cache (the §6 case study). The Polca oracle implements
// learn.BatchTeacher over forking simulator sessions, so the learner's
// observation-table rows (or discrimination-tree experiments, with
// opt.Algo = learn.AlgoTree) and conformance words are answered on parallel
// goroutines automatically. The returned machine is checked against nothing:
// callers that know the ground truth can extract it with mealy.FromPolicy
// and compare.
func LearnSimulated(ctx context.Context, policyName string, assoc int, opt learn.Options) (*SimResult, error) {
	return LearnSimulatedSnapshot(ctx, policyName, assoc, opt, SnapshotOptions{})
}

// LearnSimulatedSnapshot is LearnSimulated with oracle query-store
// persistence: an existing snapshot warm-starts the oracle (the learner
// replays recorded answers from disk and probes the simulator only for
// new words), and the store can be saved after the run for the next one.
// The learned machine — and the learner's whole query trajectory — is
// bit-identical cold or warm; only the backend probe count changes.
func LearnSimulatedSnapshot(ctx context.Context, policyName string, assoc int, opt learn.Options, snap SnapshotOptions) (*SimResult, error) {
	return LearnSimulatedSim(ctx, policyName, assoc, opt, snap, SimOptions{})
}

// NewSimOracle builds the simulated-cache Polca oracle for a named policy
// exactly as the learning pipelines do: compiled kernel by default, batched
// engine / worker cap / fault injection / retry policy per SimOptions. It
// returns the oracle, the policy's canonical name, and the snapshot scope
// tagging its query store. The polcad daemon (internal/daemon) builds its
// shared per-(policy, assoc) engines through this seam, so a daemon-served
// learn is the same pipeline — and produces the same bytes — as cmd/polca.
// With FleetWorkers configured the oracle's prober is a remote fleet; use
// NewSimOracleFleet for the fleet handle (warm-up, stats, shutdown).
func NewSimOracle(policyName string, assoc int, sim SimOptions) (oracle *polca.Oracle, canonical, scope string, err error) {
	oracle, _, canonical, scope, err = NewSimOracleFleet(policyName, assoc, sim)
	return oracle, canonical, scope, err
}

// NewSimOracleFleet is NewSimOracle exposing the fleet handle: nil for
// local runs, otherwise the remote.Fleet serving as the oracle's prober —
// the caller owns its lifecycle (Ping/SyncSnapshots before learning, Close
// after; LearnSimulatedSim does all three).
func NewSimOracleFleet(policyName string, assoc int, sim SimOptions) (oracle *polca.Oracle, fleet *remote.Fleet, canonical, scope string, err error) {
	pol, err := policy.New(policyName, assoc)
	if err != nil {
		return nil, nil, "", "", err
	}
	canonical, scope = pol.Name(), SimSnapshotScope(pol.Name(), assoc)
	var opts []polca.Option
	if sim.Batched {
		opts = append(opts, polca.WithBatchedQueries())
	}
	if sim.Workers > 0 {
		opts = append(opts, polca.WithParallelism(sim.Workers))
	}
	if sim.Retry != nil {
		opts = append(opts, polca.WithProbeRetries(*sim.Retry))
	}
	var prober polca.Prober
	if len(sim.FleetWorkers) > 0 {
		if sim.Faults != nil {
			return nil, nil, "", "", fmt.Errorf("core: fault injection and a worker fleet are mutually exclusive (fleet runs exercise real transport failures)")
		}
		fleet, err = remote.NewFleet(sim.FleetWorkers, scope, remote.FleetOptions{
			Slots:      sim.FleetSlots,
			HedgeAfter: sim.FleetHedge,
			Retry:      sim.Retry,
			Logf:       sim.FleetLogf,
		})
		if err != nil {
			return nil, nil, "", "", err
		}
		prober = fleet
		// Group each Evct's eviction probes into one round trip; grouping
		// never changes answers, so trajectories stay bit-identical.
		if !sim.Batched {
			opts = append(opts, polca.WithBatchedQueries())
		}
	} else {
		prober = sim.SimProber(pol)
		if sim.Faults != nil {
			prober = faulty.WrapProber(prober, faulty.NewInjector(*sim.Faults))
			if sim.Faults.FlipRate > 0 {
				opts = append(opts, polca.WithProbeVotes(3))
			}
		}
	}
	return polca.NewOracle(prober, opts...), fleet, canonical, scope, nil
}

// LearnSimulatedSim is LearnSimulatedSnapshot with an explicit simulator
// configuration — the seam the -compiled toggles of cmd/polca,
// cmd/experiments and cmd/genmodels thread through.
func LearnSimulatedSim(ctx context.Context, policyName string, assoc int, opt learn.Options, snap SnapshotOptions, sim SimOptions) (*SimResult, error) {
	oracle, fleet, canonical, scope, err := NewSimOracleFleet(policyName, assoc, sim)
	if err != nil {
		return nil, err
	}
	if fleet != nil {
		defer fleet.Close()
		if ctx == nil {
			ctx = context.Background()
		}
		if err := fleet.Ping(ctx); err != nil {
			return nil, fmt.Errorf("core: fleet warm-up: %w", err)
		}
		// Warm-up: level every worker's probe memo to the best snapshot in
		// the fleet (best-effort), so a replaced or freshly-booted worker
		// skips re-probing prefixes its peers already measured.
		fleet.SyncSnapshots(ctx)
	}
	if snap.WarmPath != "" {
		if _, err := LoadOracleSnapshot(oracle, snap.WarmPath, scope, snap.ColdOnDamage); err != nil {
			return nil, err
		}
	}
	armCheckpoints(oracle, snap, scope)
	res, err := learn.Learn(ctx, oracle, opt)
	if err != nil {
		return nil, err
	}
	if snap.SavePath != "" {
		if err := SaveOracleSnapshot(oracle, snap.SavePath, scope); err != nil {
			return nil, err
		}
	}
	sr := &SimResult{
		Policy:      canonical,
		Assoc:       assoc,
		Machine:     res.Machine,
		LearnStats:  res.Stats,
		OracleStats: oracle.Stats(),
	}
	if fleet != nil {
		st := fleet.Stats()
		sr.Fleet = &st
	}
	return sr, nil
}

// HardwareRequest configures one §7 learning run against a simulated CPU.
type HardwareRequest struct {
	CPU     *hw.CPU
	Target  cachequery.Target
	Backend cachequery.BackendOptions
	// NewCPU, when set, builds additional CPU replicas from the same
	// configuration and enables the concurrent membership-query engine:
	// batched output queries are answered by a pool of replicated
	// (CPU, frontend, backend) stacks sharing one query-result store. A
	// physical deployment would hand out one factory per reserved core.
	NewCPU func() *hw.CPU
	// Replicas is the parallel pool size used when NewCPU is set; 0
	// selects runtime.GOMAXPROCS(0), 1 keeps the serial pipeline.
	Replicas int
	// CATWays, when non-zero, virtually reduces the L3 associativity
	// before provisioning (requires CAT support).
	CATWays int
	// Resets are the candidate reset sequences to try in order; an empty
	// list defaults to Flush+Refill.
	Resets []cachequery.Reset
	// Learn configures the learner — algorithm (learn.AlgoLStar or
	// learn.AlgoTree), conformance suite, budgets; Depth defaults to the
	// paper's k=1.
	Learn learn.Options
	// DeterminismEvery re-checks every n-th Polca query (0 disables).
	DeterminismEvery int
	// Batched enables the batched membership-query engine on the hardware
	// pipeline: the oracle groups the associativity-many eviction probes of
	// each miss into one ProbeBatch fanned over the replica pool. Only
	// effective with a replica pool (NewCPU set, Replicas > 1) — a single
	// frontend executes probes one at a time regardless.
	Batched bool
	// Snapshot controls oracle query-store persistence. Snapshots are
	// scoped to (CPU model, target, reset): a warm path recorded under a
	// different reset fails that candidate and the next reset is tried.
	Snapshot SnapshotOptions
	// Faults, when set, injects the plan's seeded fault mix into every
	// replica's probes (and kills the plan's die=replica@count victim, if
	// any), exercised against the full resilience stack: oracle retry
	// with backoff, probe voting when the plan flips answers, and pool
	// quarantine of repeatedly-failing replicas.
	Faults *faulty.Plan
	// Retry, when set, overrides the oracle's transient-failure retry
	// policy (polca.DefaultRetryPolicy otherwise).
	Retry *polca.RetryPolicy
}

// HardwareResult is the outcome of a §7 learning run.
type HardwareResult struct {
	Machine     *mealy.Machine
	Reset       cachequery.Reset
	LearnStats  learn.Stats
	OracleStats polca.Stats
	Frontend    cachequery.FrontendStats
}

// LearnHardware drives the full hardware pipeline: CAT setup, backend
// provisioning and calibration, reset-sequence selection, and the learning
// loop through Polca and CacheQuery. Candidate resets are tried in order;
// a wrong reset manifests as nondeterminism (or a state-budget overflow)
// and the next candidate is tried, mirroring the paper's §7.1 procedure.
//
// With a NewCPU factory and more than one replica, the learning loop runs
// on the concurrent membership-query engine: the learner batches its
// observation-table and conformance queries, Polca fans them out over
// parallel goroutines, and each goroutine probes a pooled CPU replica.
func LearnHardware(ctx context.Context, req HardwareRequest) (*HardwareResult, error) {
	if req.CATWays > 0 {
		if err := req.CPU.SetCATWays(req.CATWays); err != nil {
			return nil, err
		}
	}
	f := cachequery.NewFrontend(req.CPU, req.Backend)
	be, err := f.Backend(req.Target)
	if err != nil {
		return nil, err
	}
	resets := req.Resets
	if len(resets) == 0 {
		resets = []cachequery.Reset{cachequery.FlushRefill(be.Assoc())}
	}
	if req.Learn.Depth == 0 {
		req.Learn.Depth = 1
	}

	// Build the CPU-replica pool once; the provisioned backends are reused
	// by every reset candidate.
	replicas := req.Replicas
	if replicas == 0 {
		replicas = runtime.GOMAXPROCS(0)
	}
	var fronts []*cachequery.Frontend
	if req.NewCPU != nil && replicas > 1 {
		mkCPU := func() *hw.CPU {
			cpu := req.NewCPU()
			if req.CATWays > 0 {
				// Support was already validated on the primary CPU.
				if err := cpu.SetCATWays(req.CATWays); err != nil {
					panic(fmt.Sprintf("core: CAT rejected on a replica: %v", err))
				}
			}
			return cpu
		}
		fronts, err = cachequery.NewReplicaFrontends(mkCPU, req.Backend, req.Target, replicas)
		if err != nil {
			return nil, err
		}
	}

	// A fault plan shares one injector across every reset candidate and
	// replica, so plan-wide budgets (crash=N) span the whole run.
	var inj *faulty.Injector
	if req.Faults != nil {
		inj = faulty.NewInjector(*req.Faults)
	}

	var lastErr error
	for _, rst := range resets {
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if len(rst.Content) == 0 {
			content, err := cachequery.DiscoverInitialContent(ctx, f, req.Target, rst)
			if err != nil {
				lastErr = err
				continue
			}
			rst.Content = content
		}
		var prober polca.Prober
		frontendStats := func() cachequery.FrontendStats { return f.Stats() }
		if fronts != nil {
			var poolOpts []cachequery.PoolOption
			if inj != nil {
				die := faulty.ReplicaWrapper(*req.Faults)
				poolOpts = append(poolOpts, cachequery.WithReplicaWrapper(func(i int, p polca.Prober) polca.Prober {
					if die != nil {
						p = die(i, p)
					}
					return faulty.WrapProber(p, inj)
				}))
			}
			pp, err := cachequery.NewParallelProber(fronts, req.Target, rst, poolOpts...)
			if err != nil {
				lastErr = err
				continue
			}
			prober = pp
			frontendStats = func() cachequery.FrontendStats {
				s := pp.FrontendStats()
				s.Add(f.Stats()) // reset-content discovery runs on the primary
				return s
			}
		} else {
			pr, err := cachequery.NewProber(f, req.Target, rst)
			if err != nil {
				lastErr = err
				continue
			}
			prober = pr
			if inj != nil {
				prober = faulty.WrapProber(prober, inj)
			}
		}
		var opts []polca.Option
		if req.DeterminismEvery > 0 {
			opts = append(opts, polca.WithDeterminismChecks(req.DeterminismEvery))
		}
		if req.Replicas > 0 {
			opts = append(opts, polca.WithParallelism(req.Replicas))
		}
		if req.Batched {
			opts = append(opts, polca.WithBatchedQueries())
		}
		if req.Faults != nil && req.Faults.FlipRate > 0 {
			opts = append(opts, polca.WithProbeVotes(3))
		}
		if req.Retry != nil {
			opts = append(opts, polca.WithProbeRetries(*req.Retry))
		}
		oracle := polca.NewOracle(prober, opts...)
		scope := hardwareSnapshotScope(req, rst)
		if req.Snapshot.WarmPath != "" {
			if _, err := LoadOracleSnapshot(oracle, req.Snapshot.WarmPath, scope, req.Snapshot.ColdOnDamage); err != nil {
				lastErr = err
				continue
			}
		}
		armCheckpoints(oracle, req.Snapshot, scope)
		res, err := learn.Learn(ctx, oracle, req.Learn)
		if err != nil {
			// A canceled or expired context dooms every remaining reset
			// candidate too: unwind now instead of burning them.
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return nil, fmt.Errorf("reset %q: %w", rst.Name(), err)
			}
			lastErr = fmt.Errorf("reset %q: %w", rst.Name(), err)
			continue
		}
		if req.Snapshot.SavePath != "" {
			if err := SaveOracleSnapshot(oracle, req.Snapshot.SavePath, scope); err != nil {
				return nil, err
			}
		}
		return &HardwareResult{
			Machine:     res.Machine,
			Reset:       rst,
			LearnStats:  res.Stats,
			OracleStats: oracle.Stats(),
			Frontend:    frontendStats(),
		}, nil
	}
	return nil, fmt.Errorf("core: every reset candidate failed, last error: %w", lastErr)
}

// hardwareSnapshotScope tags hardware snapshots with everything the
// recorded trace semantics depends on: CPU model, CAT configuration,
// target set, and the reset that roots every probe.
func hardwareSnapshotScope(req HardwareRequest, rst cachequery.Reset) string {
	return fmt.Sprintf("hw:%s/cat=%d/%s/reset=%s", req.CPU.Config().Name, req.CATWays, req.Target, rst.Name())
}

// ResetCandidatesFor computes reset candidates for a known policy using the
// synchronizing-sequence search, plus the generic Flush+Refill. This is the
// white-box convenience the experiment harness uses; fully black-box runs
// pass hand-picked candidates instead, as the paper's authors did.
func ResetCandidatesFor(pol policy.Policy) []cachequery.Reset {
	var out []cachequery.Reset
	if rr, err := cache.FindResetSequence(pol, 0); err == nil {
		out = append(out, cachequery.Reset{
			FlushFirst: rr.FlushFirst,
			Sequence:   rr.Sequence,
			Content:    rr.Content,
		})
	}
	out = append(out, cachequery.FlushRefill(pol.Assoc()))
	return out
}

// GroundTruthAfterReset extracts the Mealy machine of a known policy rooted
// at the state its reset sequence reaches, for verifying hardware learning
// results.
func GroundTruthAfterReset(pol policy.Policy, rst cachequery.Reset) (*mealy.Machine, error) {
	set := cache.NewEmptySet(pol.Clone())
	if !rst.FlushFirst {
		// Model unknown pre-reset content with placeholder blocks outside
		// the probe universe; a verified reset converges from any state.
		for i := 0; i < pol.Assoc(); i++ {
			set.Access(blocks.Block(fmt.Sprintf("Z%d", 90+i)))
		}
	}
	for _, b := range rst.Sequence {
		set.Access(b)
	}
	return mealy.FromPolicyState(set.Policy(), 0)
}

// Explain synthesizes a rule-based explanation for a learned machine.
func Explain(m *mealy.Machine, opt synth.Options) (*synth.Result, error) {
	return synth.Synthesize(m, opt)
}
