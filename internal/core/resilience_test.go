package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cachequery"
	"repro/internal/faulty"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
)

// fastRetry is the default retry policy with the backoff sleeps shrunk to
// microseconds: soak runs absorb tens of thousands of injected transient
// faults, and realistic millisecond backoffs would dominate the test's
// wall-clock without changing any trajectory.
func fastRetry() *polca.RetryPolicy {
	rp := polca.DefaultRetryPolicy
	rp.BaseDelay = 20 * time.Microsecond
	rp.MaxDelay = 200 * time.Microsecond
	return &rp
}

// machineJSON renders a machine in its canonical serialized form, the same
// bytes cmd/genmodels writes — "byte-identical model" means equal here.
func machineJSON(t *testing.T, m *mealy.Machine) []byte {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFaultSoakSimulated: a learn under a seeded mix of transient errors,
// stalls and answer flips must converge to the byte-identical machine of a
// fault-free run — retries absorb the errors, voting outvotes the flips —
// and the resilience counters must show the machinery actually engaged.
func TestFaultSoakSimulated(t *testing.T) {
	t.Parallel()
	for _, name := range []string{"New1", "New2"} {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			opt := learn.Options{Depth: 1, Algo: learn.AlgoTree}
			clean, err := LearnSimulatedSim(context.Background(), name, 4, opt, SnapshotOptions{}, SimOptions{})
			if err != nil {
				t.Fatal(err)
			}
			plan := faulty.Plan{Seed: 42, ErrRate: 0.05, FlipRate: 0.002, DieReplica: -1}
			soak, err := LearnSimulatedSim(context.Background(), name, 4, opt, SnapshotOptions{},
				SimOptions{Faults: &plan, Retry: fastRetry()})
			if err != nil {
				t.Fatalf("faulty learn failed outright: %v", err)
			}
			if !bytes.Equal(machineJSON(t, clean.Machine), machineJSON(t, soak.Machine)) {
				t.Error("faulty learn converged to a different machine")
			}
			if soak.OracleStats.Retries == 0 {
				t.Error("5% error rate produced zero probe retries; injection or retry accounting is dead")
			}
			truth, err := mealy.FromPolicy(policy.MustNew(name, 4), 0)
			if err != nil {
				t.Fatal(err)
			}
			if eq, _ := soak.Machine.Equivalent(truth); !eq {
				t.Error("faulty learn diverged from ground truth")
			}
		})
	}
}

// TestFaultSoakReproducible: two runs of the same fault plan take the exact
// same trajectory — equal retry and disagreement counters, not just equal
// machines. This is the property that makes a failing soak debuggable.
func TestFaultSoakReproducible(t *testing.T) {
	t.Parallel()
	opt := learn.Options{Depth: 1, Algo: learn.AlgoTree}
	run := func() *SimResult {
		t.Helper()
		plan := faulty.Plan{Seed: 7, ErrRate: 0.05, FlipRate: 0.002, DieReplica: -1}
		res, err := LearnSimulatedSim(context.Background(), "New1", 4, opt, SnapshotOptions{},
			SimOptions{Faults: &plan, Workers: 1, Retry: fastRetry()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.OracleStats.Retries != b.OracleStats.Retries ||
		a.OracleStats.Disagreements != b.OracleStats.Disagreements ||
		a.OracleStats.Probes != b.OracleStats.Probes {
		t.Errorf("same plan, different trajectories: %+v vs %+v", a.OracleStats, b.OracleStats)
	}
	if !bytes.Equal(machineJSON(t, a.Machine), machineJSON(t, b.Machine)) {
		t.Error("same plan, different machines")
	}
}

// TestFaultSoakHardwareReplicaDeath: the full hardware pipeline under ≥5%
// transient errors plus one replica death mid-run must still learn the
// byte-identical machine of a fault-free run — the pool quarantines the dead
// replica and shrinks, the oracle retries the rest.
func TestFaultSoakHardwareReplicaDeath(t *testing.T) {
	t.Parallel()
	request := func(plan *faulty.Plan) HardwareRequest {
		return HardwareRequest{
			CPU:      hw.NewCPU(testCPU(), 9),
			NewCPU:   func() *hw.CPU { return hw.NewCPU(testCPU(), 9) },
			Replicas: 3,
			Target:   cachequery.Target{Level: hw.L1, Set: 5},
			Backend:  cachequery.BackendOptions{MaxBlocks: 12, Reps: 3, EvictRounds: 1, CalibrationSamples: 21},
			Learn:    learn.Options{Depth: 1, Algo: learn.AlgoTree},
			Faults:   plan,
			Retry:    fastRetry(),
		}
	}
	clean, err := LearnHardware(context.Background(), request(nil))
	if err != nil {
		t.Fatal(err)
	}
	plan := &faulty.Plan{Seed: 11, ErrRate: 0.05, DieReplica: 1, DieAfter: 40}
	soak, err := LearnHardware(context.Background(), request(plan))
	if err != nil {
		t.Fatalf("soak run failed outright: %v", err)
	}
	if !bytes.Equal(machineJSON(t, clean.Machine), machineJSON(t, soak.Machine)) {
		t.Error("soak run converged to a different machine")
	}
	if soak.OracleStats.Retries == 0 {
		t.Error("no retries recorded under a 5% error rate plus replica death")
	}
}

// TestCrashResumeConvergesIdentically: a learn killed mid-run by an injected
// crash leaves a checkpoint behind; resuming from it must converge to the
// byte-identical machine of an uninterrupted run, and must replay recorded
// answers instead of re-probing — strictly fewer backend probes than cold.
func TestCrashResumeConvergesIdentically(t *testing.T) {
	t.Parallel()
	opt := learn.Options{Depth: 1, Algo: learn.AlgoTree}
	clean, err := LearnSimulated(context.Background(), "New1", 4, opt)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "new1.qs")
	crash := &faulty.Plan{Seed: 1, CrashAfter: 600, DieReplica: -1}
	_, err = LearnSimulatedSim(context.Background(), "New1", 4, opt,
		SnapshotOptions{SavePath: ckpt, CheckpointEvery: 16},
		SimOptions{Faults: crash, Workers: 1})
	if !errors.Is(err, faulty.ErrCrash) {
		t.Fatalf("crash plan returned %v, want ErrCrash", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint survived the crash: %v", err)
	}

	resumed, err := LearnSimulatedSnapshot(context.Background(), "New1", 4, opt,
		SnapshotOptions{WarmPath: ckpt, SavePath: ckpt, CheckpointEvery: 16, ColdOnDamage: true})
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !bytes.Equal(machineJSON(t, clean.Machine), machineJSON(t, resumed.Machine)) {
		t.Error("resumed learn converged to a different machine")
	}
	if resumed.OracleStats.Probes >= clean.OracleStats.Probes {
		t.Errorf("resume probed %d times, cold run %d — the checkpoint was not replayed",
			resumed.OracleStats.Probes, clean.OracleStats.Probes)
	}
}

// TestCheckpointsWrittenDuringLearn: with a small checkpoint window the
// snapshot file must exist before the run finishes — checked by crashing
// immediately after a window boundary and finding a loadable snapshot.
func TestCheckpointsWrittenDuringLearn(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "mru.qs")
	crash := &faulty.Plan{Seed: 1, CrashAfter: 200, DieReplica: -1}
	_, err := LearnSimulatedSim(context.Background(), "MRU", 4, learn.Options{Depth: 1},
		SnapshotOptions{SavePath: ckpt, CheckpointEvery: 8},
		SimOptions{Faults: crash, Workers: 1})
	if !errors.Is(err, faulty.ErrCrash) {
		t.Fatalf("crash plan returned %v", err)
	}
	// The checkpoint must be complete and warm-startable, not torn.
	res, err := LearnSimulatedSnapshot(context.Background(), "MRU", 4, learn.Options{Depth: 1},
		SnapshotOptions{WarmPath: ckpt})
	if err != nil {
		t.Fatalf("checkpoint unusable: %v", err)
	}
	truth, _ := mealy.FromPolicy(policy.MustNew("MRU", 4), 0)
	if eq, _ := res.Machine.Equivalent(truth); !eq {
		t.Error("learn resumed from checkpoint mislearned")
	}
}

// TestColdOnDamageDegrades: a missing or damaged warm-start snapshot
// degrades to a cold run when ColdOnDamage is set, and still fails loudly
// when it is not.
func TestColdOnDamageDegrades(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	opt := learn.Options{Depth: 1}
	truth, _ := mealy.FromPolicy(policy.MustNew("MRU", 4), 0)

	check := func(name, warm string) {
		t.Helper()
		res, err := LearnSimulatedSnapshot(context.Background(), "MRU", 4, opt,
			SnapshotOptions{WarmPath: warm, ColdOnDamage: true})
		if err != nil {
			t.Fatalf("%s: degrade failed: %v", name, err)
		}
		if eq, _ := res.Machine.Equivalent(truth); !eq {
			t.Errorf("%s: cold fallback mislearned", name)
		}
		if _, err := LearnSimulatedSnapshot(context.Background(), "MRU", 4, opt,
			SnapshotOptions{WarmPath: warm}); err == nil {
			t.Errorf("%s: damage accepted without ColdOnDamage", name)
		}
	}

	check("missing", filepath.Join(dir, "never-written.qs"))

	// A truncated snapshot: record a good one, cut it in half.
	good := filepath.Join(dir, "good.qs")
	if _, err := LearnSimulatedSnapshot(context.Background(), "MRU", 4, opt,
		SnapshotOptions{SavePath: good}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.qs")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	check("truncated", trunc)

	garbage := filepath.Join(dir, "garbage.qs")
	if err := os.WriteFile(garbage, []byte("not a snapshot at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	check("garbage", garbage)

	// A scope mismatch is a caller bug, not damage: it must fail even with
	// ColdOnDamage set.
	if _, err := LearnSimulatedSnapshot(context.Background(), "LRU", 4, opt,
		SnapshotOptions{WarmPath: good, ColdOnDamage: true}); err == nil {
		t.Error("snapshot for MRU accepted as warm start for LRU")
	}
}
