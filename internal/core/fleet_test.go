package core

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faulty"
	"repro/internal/learn"
	"repro/internal/polca"
	"repro/internal/remote"
)

// sameTrajectory compares learner stats up to wall-clock time: every
// deterministic field must match; Duration is measurement, not trajectory.
func sameTrajectory(a, b learn.Stats) bool {
	a.Duration, b.Duration = 0, 0
	return a == b
}

// startFleet boots n loopback polcaworker-equivalent servers and returns
// their addresses.
func startFleet(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(remote.NewWorker(remote.WorkerConfig{}).Handler())
		t.Cleanup(srv.Close)
		addrs[i] = srv.URL
	}
	return addrs
}

// TestFleetLearnMatchesSingleBox is the tentpole acceptance check: learning
// a policy through four loopback workers produces byte-identical machine
// JSON and an identical learner trajectory to the single-box run. The
// prefetch width is pinned so both legs see the same chunked query stream;
// answers are deterministic, so the merge layer's submission-order
// reassembly makes everything downstream identical.
func TestFleetLearnMatchesSingleBox(t *testing.T) {
	addrs := startFleet(t, 4)
	policies := []string{"New1", "LRU"}
	if testing.Short() {
		policies = policies[1:] // New1's ~74k queries are the long pole
	}
	for _, name := range policies {
		t.Run(name, func(t *testing.T) {
			opt := learn.Options{Depth: 1, BatchSize: 32}
			local, err := LearnSimulatedSim(context.Background(), name, 4, opt, SnapshotOptions{}, SimOptions{Workers: 1})
			if err != nil {
				t.Fatalf("single-box: %v", err)
			}
			dist, err := LearnSimulatedSim(context.Background(), name, 4, opt, SnapshotOptions{},
				SimOptions{FleetWorkers: addrs})
			if err != nil {
				t.Fatalf("distributed: %v", err)
			}
			jl, err := json.Marshal(local.Machine)
			if err != nil {
				t.Fatal(err)
			}
			jd, err := json.Marshal(dist.Machine)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jl, jd) {
				t.Error("distributed run produced different machine JSON")
			}
			if !sameTrajectory(local.LearnStats, dist.LearnStats) {
				t.Errorf("learner trajectory diverged: single-box %+v, distributed %+v",
					local.LearnStats, dist.LearnStats)
			}
			if dist.Fleet == nil {
				t.Fatal("distributed result carries no fleet stats")
			}
			busy := 0
			for _, w := range dist.Fleet.Workers {
				if w.Probes > 0 {
					busy++
				}
			}
			if busy < 2 {
				t.Errorf("only %d of %d workers served probes; the batch never fanned out", busy, len(dist.Fleet.Workers))
			}
		})
	}
}

// TestFleetLearnSurvivesWorkerDeath kills one of four workers mid-learn:
// the fleet quarantines it, re-executes its in-flight sub-batches on the
// survivors, and the learned machine is still byte-identical to a
// single-box run.
func TestFleetLearnSurvivesWorkerDeath(t *testing.T) {
	addrs := startFleet(t, 3)

	// The fourth worker dies (hard 502s) after answering 10 probe
	// requests.
	var served atomic.Int64
	victim := remote.NewWorker(remote.WorkerConfig{})
	inner := victim.Handler()
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if served.Add(1) > 10 {
			http.Error(w, "worker killed mid-learn", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(dying.Close)
	addrs = append(addrs, dying.URL)

	name := "New1"
	if testing.Short() {
		name = "LRU" // same death window, ~20x fewer queries
	}
	opt := learn.Options{Depth: 1, BatchSize: 32}
	local, err := LearnSimulatedSim(context.Background(), name, 4, opt, SnapshotOptions{}, SimOptions{Workers: 1})
	if err != nil {
		t.Fatalf("single-box: %v", err)
	}
	retry := &polca.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 16 * time.Millisecond, Seed: 1}
	dist, err := LearnSimulatedSim(context.Background(), name, 4, opt, SnapshotOptions{},
		SimOptions{FleetWorkers: addrs, Retry: retry})
	if err != nil {
		t.Fatalf("distributed with dying worker: %v", err)
	}

	jl, _ := json.Marshal(local.Machine)
	jd, _ := json.Marshal(dist.Machine)
	if !bytes.Equal(jl, jd) {
		t.Error("losing a worker changed the machine JSON")
	}
	if !sameTrajectory(local.LearnStats, dist.LearnStats) {
		t.Errorf("losing a worker changed the learner trajectory: %+v vs %+v", local.LearnStats, dist.LearnStats)
	}
	if served.Load() <= 10 {
		t.Skip("learn finished before the victim's death window")
	}
	if dist.Fleet.Quarantined == 0 {
		t.Error("dead worker was never quarantined")
	}
}

// TestFleetWarmupShipsSnapshots: when one worker already holds a probe
// memo for the scope, LearnSimulatedSim's warm-up levels the fleet before
// learning — the cold workers receive the snapshot instead of re-probing
// everything from scratch.
func TestFleetWarmupShipsSnapshots(t *testing.T) {
	addrs := startFleet(t, 2)

	// Warm worker 0 by learning through it alone.
	if _, err := LearnSimulatedSim(context.Background(), "LRU", 4, learn.Options{Depth: 1}, SnapshotOptions{},
		SimOptions{FleetWorkers: addrs[:1]}); err != nil {
		t.Fatal(err)
	}
	res, err := LearnSimulatedSim(context.Background(), "LRU", 4, learn.Options{Depth: 1}, SnapshotOptions{},
		SimOptions{FleetWorkers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.Shipped == 0 {
		t.Error("warm-up shipped no snapshot to the cold worker")
	}
}

// TestFleetRejectsFaultInjection: the fleet serves real transport
// failures; combining it with the deterministic fault injector is a
// configuration error, not a silent downgrade.
func TestFleetRejectsFaultInjection(t *testing.T) {
	_, _, _, _, err := NewSimOracleFleet("LRU", 4, SimOptions{
		FleetWorkers: []string{"localhost:1"},
		Faults:       &faulty.Plan{Seed: 1, ErrRate: 0.05, DieReplica: -1},
	})
	if err == nil {
		t.Fatal("fleet + fault injection accepted, want an error")
	}
}
