package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/cachequery"
	"repro/internal/hw"
	"repro/internal/learn"
)

// TestLearnSimulatedBatchedMatchesSerial is the end-to-end equivalence
// check for the batched SoA query engine at the pipeline level: the full
// table2-style learning run — L* rounds plus the conformance sweep — on
// SimOptions{Batched} must produce byte-identical machine JSON and
// bit-identical oracle counters to the per-session path. The serial leg
// pins Workers to 1 and both legs pin the learner's prefetch width, so the
// two oracles see the exact same chunked query stream.
func TestLearnSimulatedBatchedMatchesSerial(t *testing.T) {
	for _, name := range []string{"MRU", "SRRIP-HP", "New1"} {
		t.Run(name, func(t *testing.T) {
			opt := learn.Options{Depth: 1, BatchSize: 32}
			serial, err := LearnSimulatedSim(context.Background(), name, 4, opt, SnapshotOptions{}, SimOptions{Workers: 1})
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			batched, err := LearnSimulatedSim(context.Background(), name, 4, opt, SnapshotOptions{}, SimOptions{Batched: true})
			if err != nil {
				t.Fatalf("batched: %v", err)
			}
			js, err := json.Marshal(serial.Machine)
			if err != nil {
				t.Fatal(err)
			}
			jb, err := json.Marshal(batched.Machine)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(js, jb) {
				t.Error("batched run produced different machine JSON")
			}
			if batched.OracleStats != serial.OracleStats {
				t.Errorf("oracle stats diverged: batched %+v, serial %+v",
					batched.OracleStats, serial.OracleStats)
			}
		})
	}
}

// TestLearnSimulatedBatchedInterpretedFallsBack: Batched combined with
// Interpreted has no kernel table to run on; the oracle must quietly keep
// the per-session path and still learn the right machine.
func TestLearnSimulatedBatchedInterpretedFallsBack(t *testing.T) {
	res, err := LearnSimulatedSim(context.Background(), "MRU", 4, learn.Options{Depth: 1}, SnapshotOptions{},
		SimOptions{Interpreted: true, Batched: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.NumStates != 14 {
		t.Errorf("learned %d states, want 14 (MRU-4)", res.Machine.NumStates)
	}
}

// TestLearnHardwareBatched runs the hardware pipeline with batched eviction
// probes over a replica pool and requires the same machine as the serial
// pipeline.
func TestLearnHardwareBatched(t *testing.T) {
	request := func(replicas int, batched bool) HardwareRequest {
		return HardwareRequest{
			CPU:              hw.NewCPU(testCPU(), 9),
			NewCPU:           func() *hw.CPU { return hw.NewCPU(testCPU(), 9) },
			Replicas:         replicas,
			Batched:          batched,
			Target:           cachequery.Target{Level: hw.L1, Set: 5},
			Backend:          cachequery.BackendOptions{MaxBlocks: 12, Reps: 3, EvictRounds: 1, CalibrationSamples: 21},
			Learn:            learn.Options{Depth: 1},
			DeterminismEvery: 64,
		}
	}
	serial, err := LearnHardware(context.Background(), request(1, false))
	if err != nil {
		t.Fatal(err)
	}
	batched, err := LearnHardware(context.Background(), request(4, true))
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := batched.Machine.Equivalent(serial.Machine); !eq {
		t.Fatalf("batched hardware learning diverged from serial, ce=%v", ce)
	}
	if batched.Machine.NumStates != 8 {
		t.Errorf("learned %d states, want 8 (PLRU-4)", batched.Machine.NumStates)
	}
}
