package intern

import (
	"math/rand"
	"testing"
)

func TestWordInjective(t *testing.T) {
	it := New()
	words := [][]int{
		{}, {0}, {1}, {0, 0}, {0, 1}, {1, 0}, {-1, 0}, {0, -1},
		{5, 5, 5}, {5, 5}, {1 << 30}, {1 << 30, 0},
	}
	seen := make(map[int32]int)
	for i, w := range words {
		id := it.Word(w)
		if j, dup := seen[id]; dup {
			t.Fatalf("words %v and %v interned to the same id %d", words[j], w, id)
		}
		seen[id] = i
	}
	// Re-interning yields the same ids.
	for i, w := range words {
		if id := it.Word(w); seen[id] != i {
			t.Fatalf("re-interning %v changed its id", w)
		}
	}
}

func TestAppendMatchesWord(t *testing.T) {
	it := New()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		w := make([]int, rng.Intn(8))
		for i := range w {
			w[i] = rng.Intn(5) - 1
		}
		acc := Empty
		for _, v := range w {
			acc = it.Append(acc, v)
		}
		if acc != it.Word(w) {
			t.Fatalf("fold of %v diverged from Word", w)
		}
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	it := New()
	if _, ok := it.LookupWord32([]int32{1, 2, 3}); ok {
		t.Fatal("lookup of an unseen word succeeded")
	}
	if it.Len() != 0 {
		t.Fatalf("lookup interned %d ids", it.Len())
	}
	id := it.Word32([]int32{1, 2, 3})
	got, ok := it.LookupWord32([]int32{1, 2, 3})
	if !ok || got != id {
		t.Fatalf("lookup after intern = (%d, %v), want (%d, true)", got, ok, id)
	}
	// A prefix chain exists as a side effect of interning the longer word,
	// but folds to its own distinct id.
	if pid, ok := it.LookupWord32([]int32{1, 2}); ok && pid == id {
		t.Fatal("prefix folded to the full word's id")
	}
	if _, ok := it.LookupWord32([]int32{9, 9}); ok {
		t.Fatal("lookup of an unseen word succeeded after interning")
	}
}
