// Package intern provides dense integer interning of values, pairs, and
// integer words. It is the shared signature machinery of the prefix-tree
// query engine: the learner interns observation-table rows, the Mealy
// minimizer interns partition-refinement signatures, and the CacheQuery
// result store interns query keys — all without building a single string.
//
// Ids are issued from one counter, so a value id never collides with a pair
// id and pair chaining is injective: two integer sequences fold to the same
// id if and only if they are equal. Interners are not safe for concurrent
// use; callers that share one guard it themselves.
package intern

// Empty is the id of the empty word, the seed of every fold.
const Empty int32 = 0

type pairKey struct{ a, b int32 }

// Interner maps arbitrary int values and (id, id) pairs to dense int32 ids.
type Interner struct {
	vals  map[int]int32
	pairs map[pairKey]int32
	next  int32
}

// New returns an empty interner. Id 0 is reserved for the empty word.
func New() *Interner {
	return &Interner{
		vals:  make(map[int]int32),
		pairs: make(map[pairKey]int32),
		next:  1,
	}
}

// Len returns the number of ids issued (excluding Empty).
func (it *Interner) Len() int { return int(it.next) - 1 }

// Value interns a leaf value.
func (it *Interner) Value(v int) int32 {
	if id, ok := it.vals[v]; ok {
		return id
	}
	id := it.next
	it.next++
	it.vals[v] = id
	return id
}

// Pair interns an ordered pair of ids.
func (it *Interner) Pair(a, b int32) int32 {
	k := pairKey{a, b}
	if id, ok := it.pairs[k]; ok {
		return id
	}
	id := it.next
	it.next++
	it.pairs[k] = id
	return id
}

// Append folds one more value onto a word id: Append(Word(w), v) == Word(w·v).
func (it *Interner) Append(acc int32, v int) int32 {
	return it.Pair(acc, it.Value(v))
}

// Word interns an integer word by pair chaining from Empty.
func (it *Interner) Word(w []int) int32 {
	acc := Empty
	for _, v := range w {
		acc = it.Append(acc, v)
	}
	return acc
}

// Word32 is Word for an []int32 sequence.
func (it *Interner) Word32(w []int32) int32 {
	acc := Empty
	for _, v := range w {
		acc = it.Append(acc, int(v))
	}
	return acc
}

// LookupValue returns the id of v without interning it.
func (it *Interner) LookupValue(v int) (int32, bool) {
	id, ok := it.vals[v]
	return id, ok
}

// LookupPair returns the id of (a, b) without interning it.
func (it *Interner) LookupPair(a, b int32) (int32, bool) {
	id, ok := it.pairs[pairKey{a, b}]
	return id, ok
}

// LookupWord32 returns the id of w without interning anything, reporting
// false as soon as any link of the chain is missing. It is the read-side of
// a reader/writer-locked store: lookups mutate nothing.
func (it *Interner) LookupWord32(w []int32) (int32, bool) {
	acc := Empty
	for _, v := range w {
		vid, ok := it.vals[int(v)]
		if !ok {
			return 0, false
		}
		acc, ok = it.pairs[pairKey{acc, vid}]
		if !ok {
			return 0, false
		}
	}
	return acc, true
}
