package permpol

import (
	"context"
	"errors"
	"testing"

	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
)

func proberFor(name string, assoc int) *polca.SimProber {
	return polca.NewSimProber(policy.MustNew(name, assoc))
}

func truthFor(t *testing.T, name string, assoc int) *mealy.Machine {
	t.Helper()
	m, err := mealy.FromPolicy(policy.MustNew(name, assoc), 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestBaselineScopeMatchesPaper: the permutation baseline handles exactly
// the policies §6 credits to it — FIFO, LRU, PLRU — and rejects the rest.
func TestBaselineScopeMatchesPaper(t *testing.T) {
	inScope := []string{"FIFO", "LRU", "PLRU"}
	for _, name := range inScope {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := InferAndValidate(context.Background(), proberFor(name, 4), truthFor(t, name, 4))
			if err != nil {
				t.Fatalf("baseline failed on %s: %v", name, err)
			}
			if m.N != 4 || len(m.HitPerm) != 4 {
				t.Errorf("malformed model %+v", m)
			}
		})
	}
	outOfScope := []string{"MRU", "LIP", "SRRIP-HP", "SRRIP-FP", "New1", "New2"}
	for _, name := range outOfScope {
		name := name
		t.Run(name, func(t *testing.T) {
			_, err := InferAndValidate(context.Background(), proberFor(name, 4), truthFor(t, name, 4))
			if !errors.Is(err, ErrNotPermutation) {
				t.Fatalf("baseline unexpectedly handled %s: %v", name, err)
			}
		})
	}
}

func TestInferredLRUPermutations(t *testing.T) {
	m, err := Infer(context.Background(), proberFor("LRU", 4))
	if err != nil {
		t.Fatal(err)
	}
	// A hit on the victim position 3 must rotate it to position 0 and
	// shift the others down; a hit on position 0 is the identity.
	if got := m.HitPerm[3]; got[3] != 0 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("HitPerm[3] = %v", got)
	}
	for q, np := range m.HitPerm[0] {
		if np != q {
			t.Errorf("HitPerm[0] not identity: %v", m.HitPerm[0])
		}
	}
	// A miss inserts at position 0: the incoming block (victim slot) maps
	// to 0 and everyone else shifts by one.
	if m.MissPerm[3] != 0 || m.MissPerm[0] != 1 {
		t.Errorf("MissPerm = %v", m.MissPerm)
	}
}

func TestInferredFIFOHitsAreIdentity(t *testing.T) {
	m, err := Infer(context.Background(), proberFor("FIFO", 4))
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		for q, np := range m.HitPerm[p] {
			if np != q {
				t.Fatalf("FIFO HitPerm[%d] = %v, want identity", p, m.HitPerm[p])
			}
		}
	}
}

func TestModelPolicyIsDeterministicAndResets(t *testing.T) {
	m, err := Infer(context.Background(), proberFor("PLRU", 4))
	if err != nil {
		t.Fatal(err)
	}
	p := m.Policy()
	before := p.StateKey()
	p.OnMiss()
	p.OnHit(2)
	p.Reset()
	if p.StateKey() != before {
		t.Error("Reset did not restore the initial state")
	}
	c := p.Clone()
	c.OnMiss()
	if p.StateKey() != before {
		t.Error("clone mutation leaked")
	}
}

func TestBaselineScalesToAssocEight(t *testing.T) {
	// [1] learned PLRU-8 from hardware; our baseline handles the
	// simulated equivalent.
	if _, err := InferAndValidate(context.Background(), proberFor("PLRU", 8), truthFor(t, "PLRU", 8)); err != nil {
		t.Fatalf("PLRU-8: %v", err)
	}
	if _, err := InferAndValidate(context.Background(), proberFor("LRU", 6), truthFor(t, "LRU", 6)); err != nil {
		t.Fatalf("LRU-6: %v", err)
	}
}
