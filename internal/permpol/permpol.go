// Package permpol implements a measurement-based inference of
// permutation-based replacement policies in the spirit of Abel and Reineke
// [1] — the prior-art baseline the paper compares against in §6.
//
// A permutation policy maintains a total order of the cached blocks by
// "position"; position n-1 is the next victim. A miss evicts position n-1
// and re-inserts at position 0 (with the survivors shifting towards the
// victim end), followed by a fixed miss permutation; a hit at position p
// applies a per-position permutation Π_p. FIFO (all Π_p the identity),
// LRU (Π_p rotates p to the front) and tree-PLRU are permutation-based;
// MRU, LIP-style insertion policies, the RRIP family and the undocumented
// New1/New2 are not — which is exactly the scope limitation of the baseline
// that motivates the paper's automata-learning approach ("prior approaches
// for permutation-based policies can learn only FIFO, LRU, and PLRU from
// our experimental setup", §6).
//
// Inference measures eviction ranks: the position of a block is read off
// by counting how many fresh misses it survives. Policies outside the
// class either produce non-permutation measurements (detected during
// inference) or fail the final equivalence validation.
package permpol

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/blocks"
	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
)

// ErrNotPermutation is returned when the measurements are inconsistent with
// any permutation-based policy.
var ErrNotPermutation = errors.New("permpol: policy is not permutation-based")

// Model is an inferred permutation policy.
type Model struct {
	N int
	// HitPerm[p][q] is the new position of the block previously at
	// position q after a hit on position p.
	HitPerm [][]int
	// MissPerm[q] is the new position of the block previously at position
	// q after a miss (q = n-1 is the victim slot, re-populated by the
	// incoming block).
	MissPerm []int
	// InitPos[line] is the position of cache line `line` after the reset
	// fill.
	InitPos []int
}

// ranks measures, for every block resident after setup, how many fresh
// misses it survives: rank 1 is evicted first. A block surviving n misses
// has no rank, which disqualifies the permutation model.
func ranks(ctx context.Context, pr polca.Prober, setup []blocks.Block) (map[blocks.Block]int, error) {
	n := pr.Assoc()
	// Distinct resident blocks after setup, by probing.
	var resident []blocks.Block
	seen := map[blocks.Block]bool{}
	for _, b := range setup {
		if seen[b] {
			continue
		}
		seen[b] = true
		oc, err := pr.Probe(ctx, append(append([]blocks.Block{}, setup...), b))
		if err != nil {
			return nil, err
		}
		if oc {
			resident = append(resident, b)
		}
	}
	if len(resident) != n {
		return nil, fmt.Errorf("%w: %d resident blocks after setup, want %d", ErrNotPermutation, len(resident), n)
	}
	// Fresh filler blocks disjoint from the setup.
	taken := append([]blocks.Block{}, setup...)
	fresh := make([]blocks.Block, n)
	for i := range fresh {
		fresh[i] = blocks.Fresh(taken)
		taken = append(taken, fresh[i])
	}
	out := make(map[blocks.Block]int, n)
	for k := 1; k <= n; k++ {
		prefix := append(append([]blocks.Block{}, setup...), fresh[:k]...)
		for _, b := range resident {
			if _, done := out[b]; done {
				continue
			}
			oc, err := pr.Probe(ctx, append(append([]blocks.Block{}, prefix...), b))
			if err != nil {
				return nil, err
			}
			if !bool(oc) { // evicted within k misses
				out[b] = k
			}
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("%w: some blocks survive %d consecutive misses", ErrNotPermutation, n)
	}
	// Ranks must be a permutation of 1..n.
	seenRank := make([]bool, n+1)
	for _, r := range out {
		if seenRank[r] {
			return nil, fmt.Errorf("%w: two blocks share eviction rank %d", ErrNotPermutation, r)
		}
		seenRank[r] = true
	}
	return out, nil
}

// positions converts ranks to positions: rank 1 (evicted first) is position
// n-1.
func positions(r map[blocks.Block]int, n int) map[blocks.Block]int {
	out := make(map[blocks.Block]int, len(r))
	for b, k := range r {
		out[b] = n - k
	}
	return out
}

// Infer measures the permutation model of the policy behind pr. The
// prober's reset must fill the set with pr.InitialContent() in line order
// (the Flush+Refill contract).
func Infer(ctx context.Context, pr polca.Prober) (*Model, error) {
	n := pr.Assoc()
	fill := pr.InitialContent()
	base, err := ranks(ctx, pr, fill)
	if err != nil {
		return nil, err
	}
	basePos := positions(base, n)

	m := &Model{N: n, HitPerm: make([][]int, n), MissPerm: make([]int, n), InitPos: make([]int, n)}
	for line, b := range fill {
		m.InitPos[line] = basePos[b]
	}
	// Blocks indexed by their base position.
	atPos := make([]blocks.Block, n)
	for b, p := range basePos {
		atPos[p] = b
	}

	// Hit permutations: touch the block at position p, re-measure.
	for p := 0; p < n; p++ {
		setup := append(append([]blocks.Block{}, fill...), atPos[p])
		after, err := ranks(ctx, pr, setup)
		if err != nil {
			return nil, err
		}
		pos := positions(after, n)
		perm := make([]int, n)
		for q := 0; q < n; q++ {
			np, ok := pos[atPos[q]]
			if !ok {
				return nil, fmt.Errorf("%w: hit on position %d evicted a block", ErrNotPermutation, p)
			}
			perm[q] = np
		}
		m.HitPerm[p] = perm
	}

	// Miss permutation: insert a fresh block, re-measure; the victim slot
	// (old position n-1) is taken over by the incoming block.
	x := blocks.Fresh(fill)
	setup := append(append([]blocks.Block{}, fill...), x)
	after, err := ranks(ctx, pr, setup)
	if err != nil {
		return nil, err
	}
	pos := positions(after, n)
	for q := 0; q < n-1; q++ {
		np, ok := pos[atPos[q]]
		if !ok {
			return nil, fmt.Errorf("%w: miss evicted the block at position %d, not the victim", ErrNotPermutation, q)
		}
		m.MissPerm[q] = np
	}
	xp, ok := pos[x]
	if !ok {
		return nil, fmt.Errorf("%w: freshly inserted block immediately evicted", ErrNotPermutation)
	}
	m.MissPerm[n-1] = xp
	return m, nil
}

// Policy returns an executable policy implementing the model, suitable for
// equivalence checks against learned machines and for installation in the
// cache simulator.
func (m *Model) Policy() policy.Policy {
	p := &permPolicy{model: m, lineAt: make([]int, m.N)}
	p.Reset()
	return p
}

// permPolicy executes a permutation model; the control state is the mapping
// position -> cache line.
type permPolicy struct {
	model  *Model
	lineAt []int // lineAt[pos] = cache line holding that position
}

// Name implements policy.Policy.
func (p *permPolicy) Name() string { return "Permutation" }

// Assoc implements policy.Policy.
func (p *permPolicy) Assoc() int { return p.model.N }

func (p *permPolicy) apply(perm []int) {
	next := make([]int, p.model.N)
	for q, line := range p.lineAt {
		next[perm[q]] = line
	}
	copy(p.lineAt, next)
}

// OnHit implements policy.Policy.
func (p *permPolicy) OnHit(line int) {
	for pos, l := range p.lineAt {
		if l == line {
			p.apply(p.model.HitPerm[pos])
			return
		}
	}
	panic("permpol: hit on unknown line")
}

// OnMiss implements policy.Policy.
func (p *permPolicy) OnMiss() int {
	victim := p.lineAt[p.model.N-1]
	// The victim's line is re-populated by the incoming block and moves
	// per the miss permutation.
	p.apply(p.model.MissPerm)
	return victim
}

// Reset implements policy.Policy.
func (p *permPolicy) Reset() {
	for line, pos := range p.model.InitPos {
		p.lineAt[pos] = line
	}
}

// StateKey implements policy.Policy.
func (p *permPolicy) StateKey() string { return fmt.Sprint(p.lineAt) }

// Clone implements policy.Policy.
func (p *permPolicy) Clone() policy.Policy {
	c := &permPolicy{model: p.model, lineAt: make([]int, p.model.N)}
	copy(c.lineAt, p.lineAt)
	return c
}

// InferAndValidate infers a model and verifies it is exactly
// trace-equivalent to the policy behind the prober, using the supplied
// ground-truth machine. It returns ErrNotPermutation when inference
// succeeds numerically but the model mispredicts (a policy outside the
// class that happens to yield permutation-shaped measurements).
func InferAndValidate(ctx context.Context, pr polca.Prober, truth *mealy.Machine) (*Model, error) {
	m, err := Infer(ctx, pr)
	if err != nil {
		return nil, err
	}
	cand, err := mealy.FromPolicyState(m.Policy(), 0)
	if err != nil {
		return nil, err
	}
	if eq, ce := truth.Equivalent(cand); !eq {
		return nil, fmt.Errorf("%w: model mispredicts on %v", ErrNotPermutation, ce)
	}
	return m, nil
}
