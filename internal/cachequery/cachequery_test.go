package cachequery

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/learn"
	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
)

// tinyCPU is a scaled-down processor used to exercise the full backend
// machinery (filtering, calibration, slicing) quickly.
func tinyCPU() hw.CPUConfig {
	return hw.CPUConfig{
		Name: "tiny",
		Arch: "Test",
		L1:   hw.LevelConfig{Assoc: 4, Slices: 1, SetsPerSlice: 16, Policy: "PLRU", HitLatency: 4, LatencySigma: 0.5},
		L2:   hw.LevelConfig{Assoc: 4, Slices: 1, SetsPerSlice: 64, Policy: "New1", HitLatency: 12, LatencySigma: 1},
		// The L3 must offer enough capacity per L2 set-index class that
		// L2-congruent pools do not thrash it (slices*assoc*aliasing >=
		// pool size), or inclusive back-invalidation corrupts L2 probes.
		L3:         hw.LevelConfig{Assoc: 8, Slices: 2, SetsPerSlice: 256, Policy: "New2", HitLatency: 40, LatencySigma: 3},
		MemLatency: 190, MemSigma: 15,
	}
}

func testOptions() BackendOptions {
	return BackendOptions{MaxBlocks: 16, Reps: 3, EvictRounds: 1, CalibrationSamples: 21}
}

func TestBackendValidation(t *testing.T) {
	cpu := hw.NewCPU(tinyCPU(), 5)
	if _, err := NewBackend(cpu, Target{Level: hw.L1, Set: 99}, testOptions()); err == nil {
		t.Error("out-of-range set accepted")
	}
	if _, err := NewBackend(cpu, Target{Level: hw.L3, Slice: 7, Set: 0}, testOptions()); err == nil {
		t.Error("out-of-range slice accepted")
	}
	bad := testOptions()
	bad.Reps = 0
	if _, err := NewBackend(cpu, Target{Level: hw.L1, Set: 0}, bad); err == nil {
		t.Error("zero rep count accepted")
	}
	// Even rep counts are fine: the frontend escalates a tied vote to
	// 2·Reps+1 repetitions, so ties resolve rather than being rejected
	// up front.
	even := testOptions()
	even.Reps = 2
	if _, err := NewBackend(cpu, Target{Level: hw.L1, Set: 0}, even); err != nil {
		t.Errorf("even rep count rejected: %v", err)
	}
}

func TestBackendPoolIsCongruent(t *testing.T) {
	cpu := hw.NewCPU(tinyCPU(), 5)
	for _, tgt := range []Target{
		{Level: hw.L1, Set: 3},
		{Level: hw.L2, Set: 17},
		{Level: hw.L3, Slice: 1, Set: 42},
	} {
		be, err := NewBackend(cpu, tgt, testOptions())
		if err != nil {
			t.Fatalf("%s: %v", tgt, err)
		}
		for i := 0; i < 16; i++ {
			va, err := be.AddressOf(blocks.Name(i))
			if err != nil {
				t.Fatalf("%s: %v", tgt, err)
			}
			slice, set := cpu.SetIndex(tgt.Level, cpu.TranslateToPhys(va))
			if slice != tgt.Slice || set != tgt.Set {
				t.Errorf("%s: block %d maps to slice %d set %d", tgt, i, slice, set)
			}
		}
		if _, err := be.AddressOf("Z9"); err == nil {
			t.Errorf("%s: unprovisioned block accepted", tgt)
		}
	}
}

func TestCalibratedThresholdsSeparateLevels(t *testing.T) {
	cpu := hw.NewCPU(tinyCPU(), 5)
	cases := []struct {
		tgt    Target
		lo, hi float64 // threshold must separate these latencies
	}{
		{Target{Level: hw.L1, Set: 0}, 4, 12},
		{Target{Level: hw.L2, Set: 0}, 12, 40},
		{Target{Level: hw.L3, Slice: 0, Set: 0}, 40, 190},
	}
	for _, c := range cases {
		be, err := NewBackend(cpu, c.tgt, testOptions())
		if err != nil {
			t.Fatalf("%s: %v", c.tgt, err)
		}
		th := be.Threshold()
		if th <= c.lo+1 || th >= c.hi-1 {
			t.Errorf("%s: threshold %.1f outside (%v, %v)", c.tgt, th, c.lo, c.hi)
		}
	}
}

// TestFilteringEvictsHigherLevels: after an access plus filtering, the block
// must reside at the target level but not above it.
func TestFilteringEvictsHigherLevels(t *testing.T) {
	cpu := hw.NewCPU(tinyCPU(), 5)
	for _, tgt := range []Target{
		{Level: hw.L2, Set: 9},
		{Level: hw.L3, Slice: 0, Set: 21},
	} {
		be, err := NewBackend(cpu, tgt, testOptions())
		if err != nil {
			t.Fatalf("%s: %v", tgt, err)
		}
		va, _ := be.AddressOf("A")
		be.load(va)
		be.filter()
		if got := cpu.ResidentLevel(va); got != int(tgt.Level) {
			t.Errorf("%s: block resident at %d after filtering, want %d", tgt, got, int(tgt.Level))
		}
	}
}

func TestFrontendFigureOneToyQueries(t *testing.T) {
	// Figure 1c on a real set: fill, evict with X, probe. On the tiny L1
	// (PLRU-4), X evicts A (the tree points at line 0 after the fill), so
	// A misses and B C D hit.
	f := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	tgt := Target{Level: hw.L1, Set: 2}
	results, err := f.Query(context.Background(), tgt, "@ X _?")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	want := []cache.Outcome{cache.Miss, cache.Hit, cache.Hit, cache.Hit}
	for i, r := range results {
		if len(r.Outcomes) != 1 {
			t.Fatalf("query %d: %d outcomes", i, len(r.Outcomes))
		}
		if r.Outcomes[0] != want[i] {
			t.Errorf("query %q: %s, want %s", r.Query, r.Outcomes[0], want[i])
		}
	}
}

func TestFlushTagInvalidates(t *testing.T) {
	f := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	tgt := Target{Level: hw.L1, Set: 0}
	results, err := f.Query(context.Background(), tgt, "@ A! A?")
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Outcomes[0] != cache.Miss {
		t.Error("flushed block still hit")
	}
}

func TestResultCache(t *testing.T) {
	f := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	tgt := Target{Level: hw.L1, Set: 1}
	if _, err := f.Query(context.Background(), tgt, "@ A?"); err != nil {
		t.Fatal(err)
	}
	before := f.Stats()
	res, err := f.Query(context.Background(), tgt, "@ A?")
	if err != nil {
		t.Fatal(err)
	}
	after := f.Stats()
	if after.Executed != before.Executed {
		t.Error("cached query re-executed")
	}
	if after.CacheHits <= before.CacheHits {
		t.Error("cache hit not recorded")
	}
	if res[0].Outcomes[0] != cache.Hit {
		t.Error("cached result wrong")
	}

	f.SetResultCache(false)
	b2 := f.Stats()
	if _, err := f.Query(context.Background(), tgt, "@ A?"); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Executed == b2.Executed {
		t.Error("disabled cache still served the query")
	}
}

func TestBatchMode(t *testing.T) {
	f := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	lines, err := f.Batch(context.Background(), hw.L1, []int{0}, []int{0, 1}, []string{"@ A?"})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("%d batch lines", len(lines))
	}
}

func TestTargetsEnumeration(t *testing.T) {
	f := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	cfg := tinyCPU().L3
	all := f.Targets(hw.L3, -1)
	if len(all) != cfg.Slices*cfg.SetsPerSlice {
		t.Errorf("%d L3 targets", len(all))
	}
	one := f.Targets(hw.L3, 1)
	if len(one) != cfg.SetsPerSlice || one[0].Slice != 1 {
		t.Errorf("slice filter broken: %d targets", len(one))
	}
}

func TestProberMatchesModelCache(t *testing.T) {
	// The hardware prober must agree with the pure model cache on random
	// probe sequences — the foundation of every hardware learning result.
	f := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	tgt := Target{Level: hw.L1, Set: 7}
	pr, err := NewProber(f, tgt, FlushRefill(4))
	if err != nil {
		t.Fatal(err)
	}
	model := polca.NewSimProber(policy.MustNew("PLRU", 4))
	seqs := [][]blocks.Block{
		{"A"}, {"E"}, {"A", "B", "E", "A"}, {"E", "F", "G", "A"},
		{"A", "E", "A", "E", "B"}, {"E", "A", "F", "B", "G", "C"},
	}
	for _, q := range seqs {
		hwOut, err := pr.Probe(context.Background(), q)
		if err != nil {
			t.Fatalf("probe %v: %v", q, err)
		}
		simOut, _ := model.Probe(context.Background(), q)
		if hwOut != simOut {
			t.Errorf("probe %v: hardware %v, model %v", q, hwOut, simOut)
		}
	}
}

func TestDiscoverInitialContent(t *testing.T) {
	f := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	tgt := Target{Level: hw.L1, Set: 4}
	got, err := DiscoverInitialContent(context.Background(), f, tgt, FlushRefill(4))
	if err != nil {
		t.Fatal(err)
	}
	want := blocks.Ordered(4)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("content[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

// TestLearnPLRUFromTinyHardware runs the full §7 pipeline on the tiny CPU:
// LearnLib-style learner -> Polca -> CacheQuery -> simulated silicon, and
// checks exact equivalence with the installed ground truth.
func TestLearnPLRUFromTinyHardware(t *testing.T) {
	f := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	tgt := Target{Level: hw.L1, Set: 11}
	pr, err := NewProber(f, tgt, FlushRefill(4))
	if err != nil {
		t.Fatal(err)
	}
	oracle := polca.NewOracle(pr, polca.WithDeterminismChecks(64))
	res, err := learn.Learn(context.Background(), oracle, learn.Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Machine.NumStates != 8 {
		t.Errorf("learned %d states, want 8 (PLRU-4)", res.Machine.NumStates)
	}
	truth, _ := mealy.FromPolicy(policy.MustNew("PLRU", 4), 0)
	if eq, ce := res.Machine.Equivalent(truth); !eq {
		t.Errorf("learned machine differs from PLRU-4, ce=%v", ce)
	}
}

// TestLearnNew1FromTinyHardwareL2 learns the Skylake L2 policy (New1)
// through the filtering machinery, using the dedicated reset sequence the
// policy requires. It runs on the concurrent membership-query engine: one
// CPU replica per core, pooled behind a ParallelProber, with the learner
// batching its queries through the shared result store.
func TestLearnNew1FromTinyHardwareL2(t *testing.T) {
	if testing.Short() {
		t.Skip("L2 learning through filtering is expensive; run without -short")
	}
	rr, err := cache.FindResetSequence(policy.MustNew("New1", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	tgt := Target{Level: hw.L2, Set: 33}
	fronts, err := NewReplicaFrontends(func() *hw.CPU { return hw.NewCPU(tinyCPU(), 5) },
		testOptions(), tgt, runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewParallelProber(fronts, tgt, Reset{FlushFirst: rr.FlushFirst, Sequence: rr.Sequence, Content: rr.Content})
	if err != nil {
		t.Fatal(err)
	}
	oracle := polca.NewOracle(pr, polca.WithDeterminismChecks(256))
	res, err := learn.Learn(context.Background(), oracle, learn.Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: New1 parked in the state the reset sequence reaches
	// (not the canonical fill state).
	set := cache.NewEmptySet(policy.MustNew("New1", 4))
	for _, b := range rr.Sequence {
		set.Access(b)
	}
	truth, _ := mealy.FromPolicyState(set.Policy(), 0)
	if eq, ce := res.Machine.Equivalent(truth); !eq {
		t.Errorf("learned machine differs from New1 (%d states), ce=%v", res.Machine.NumStates, ce)
	}
	if res.Machine.NumStates != truth.NumStates {
		t.Errorf("learned %d states, ground truth has %d", res.Machine.NumStates, truth.NumStates)
	}
}

// TestProbeFreshBypassesResultCache: the determinism audit's probes must
// reach the cache even when the result store already holds the answer —
// otherwise the audit would replay the first answer and never fire.
func TestProbeFreshBypassesResultCache(t *testing.T) {
	f := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	tgt := Target{Level: hw.L1, Set: 9}
	pr, err := NewProber(f, tgt, FlushRefill(4))
	if err != nil {
		t.Fatal(err)
	}
	q := []blocks.Block{"E", "A"}
	first, err := pr.Probe(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	executed := f.Stats().Executed
	if _, err := pr.Probe(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if f.Stats().Executed != executed {
		t.Fatal("repeated Probe was not served from the result store")
	}
	fresh, err := pr.ProbeFresh(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if f.Stats().Executed != executed+1 {
		t.Error("ProbeFresh did not re-execute the query")
	}
	if fresh != first {
		t.Errorf("fresh probe answered %v, first answered %v (deterministic CPU)", fresh, first)
	}
}

// TestParallelProberMatchesSerial: a replica pool must answer probes exactly
// like a single prober over the same configuration, and concurrent probes
// (driven through the batched Polca oracle) must stay consistent — run with
// -race to check the shared result store.
func TestParallelProberMatchesSerial(t *testing.T) {
	tgt := Target{Level: hw.L1, Set: 7}
	fronts, err := NewReplicaFrontends(func() *hw.CPU { return hw.NewCPU(tinyCPU(), 5) },
		testOptions(), tgt, 3)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewParallelProber(fronts, tgt, FlushRefill(4))
	if err != nil {
		t.Fatal(err)
	}
	if pp.Replicas() != 3 || !pp.ConcurrentProbes() {
		t.Fatalf("pool of %d replicas, concurrent=%v", pp.Replicas(), pp.ConcurrentProbes())
	}
	serialF := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	serial, err := NewProber(serialF, tgt, FlushRefill(4))
	if err != nil {
		t.Fatal(err)
	}
	seqs := [][]blocks.Block{
		{"A"}, {"E"}, {"A", "B", "E", "A"}, {"E", "F", "G", "A"},
		{"A", "E", "A", "E", "B"}, {"E", "A", "F", "B", "G", "C"},
	}
	for _, q := range seqs {
		got, err := pp.Probe(context.Background(), q)
		if err != nil {
			t.Fatalf("probe %v: %v", q, err)
		}
		want, err := serial.Probe(context.Background(), q)
		if err != nil {
			t.Fatalf("serial probe %v: %v", q, err)
		}
		if got != want {
			t.Errorf("probe %v: pool %v, serial %v", q, got, want)
		}
	}

	// Shared result store: re-probing anywhere in the pool is answered from
	// cache, never re-executed.
	before := pp.FrontendStats()
	for _, q := range seqs {
		if _, err := pp.Probe(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	after := pp.FrontendStats()
	if after.Executed != before.Executed {
		t.Errorf("repeated probes re-executed %d queries", after.Executed-before.Executed)
	}
	if after.CacheHits <= before.CacheHits {
		t.Error("repeated probes did not hit the shared result store")
	}
}

// TestParallelHardwareLearningMatchesSerial learns the tiny L1 PLRU both
// ways — single prober versus a replica pool driven by batched queries on
// parallel goroutines — and requires the exact same machine.
func TestParallelHardwareLearningMatchesSerial(t *testing.T) {
	tgt := Target{Level: hw.L1, Set: 11}
	serialF := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	serialPr, err := NewProber(serialF, tgt, FlushRefill(4))
	if err != nil {
		t.Fatal(err)
	}
	serialRes, err := learn.Learn(context.Background(), polca.NewOracle(serialPr), learn.Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}

	fronts, err := NewReplicaFrontends(func() *hw.CPU { return hw.NewCPU(tinyCPU(), 5) },
		testOptions(), tgt, 4)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewParallelProber(fronts, tgt, FlushRefill(4))
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := learn.Learn(context.Background(), polca.NewOracle(pp, polca.WithParallelism(4)), learn.Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eq, ce := parRes.Machine.Equivalent(serialRes.Machine); !eq {
		t.Fatalf("parallel learning diverged from serial, ce=%v", ce)
	}
	truth, _ := mealy.FromPolicy(policy.MustNew("PLRU", 4), 0)
	if eq, ce := parRes.Machine.Equivalent(truth); !eq {
		t.Errorf("parallel-learned machine differs from PLRU-4, ce=%v", ce)
	}
}

// TestWrongResetIsDetected: using Flush+Refill on the New1 L2 (where it is
// not a valid reset) must be flagged as nondeterminism rather than silently
// producing a wrong model — the paper's bootstrapping observation (§7.1).
func TestWrongResetIsDetected(t *testing.T) {
	f := NewFrontend(hw.NewCPU(tinyCPU(), 5), testOptions())
	f.SetResultCache(false) // caching would mask the inconsistency
	tgt := Target{Level: hw.L2, Set: 8}
	pr, err := NewProber(f, tgt, FlushRefill(4))
	if err != nil {
		t.Fatal(err)
	}
	oracle := polca.NewOracle(pr, polca.WithDeterminismChecks(4))
	_, err = learn.Learn(context.Background(), oracle, learn.Options{Depth: 1, MaxStates: 2000})
	if err == nil {
		t.Fatal("learning with an invalid reset sequence succeeded")
	}
}

// TestProvisionRealModels exercises backend provisioning on the full-size
// CPU models, including a sliced Haswell L3 leader set.
func TestProvisionRealModels(t *testing.T) {
	cases := []struct {
		cfg hw.CPUConfig
		tgt Target
	}{
		{hw.Skylake(), Target{Level: hw.L2, Set: 1023}},
		{hw.Haswell(), Target{Level: hw.L3, Slice: 0, Set: 512}},
		{hw.KabyLake(), Target{Level: hw.L3, Slice: 7, Set: 33}},
	}
	for _, c := range cases {
		be, err := NewBackend(hw.NewCPU(c.cfg, 8), c.tgt, DefaultBackendOptions())
		if err != nil {
			t.Fatalf("%s %s: %v", c.cfg.Name, c.tgt, err)
		}
		if th := be.Threshold(); th <= c.cfg.Config(c.tgt.Level).HitLatency {
			t.Errorf("%s %s: threshold %.1f below the hit latency", c.cfg.Name, c.tgt, th)
		}
	}
}

// A block name with a huge round number has a huge dense universe id; the
// binding table must not be grown to the id (an unbounded allocation) — the
// block binds through the overflow map, or fails with the pool-exhaustion
// error, exactly like any other block.
func TestAddressOfLargeBlockID(t *testing.T) {
	cpu := hw.NewCPU(tinyCPU(), 5)
	be, err := NewBackend(cpu, Target{Level: hw.L1, Set: 0}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.AddressOf("A"); err != nil {
		t.Fatal(err)
	}
	// "A9999" has id 259974, past the dense binding table's cap.
	va, err := be.AddressOf("A9999")
	if err != nil {
		t.Fatalf("large-id block failed to bind: %v", err)
	}
	if va2, err := be.AddressOf("A9999"); err != nil || va2 != va {
		t.Fatalf("rebinding large-id block: got %v, %v; want %v", va2, err, va)
	}
	// A name beyond the universe bound is rejected, not bound (and never
	// grows the binding table towards its id).
	if _, err := be.AddressOf("A99999999"); err == nil {
		t.Fatal("expected error for block name beyond blocks.MaxIndex")
	}
	// Exhaust the pool; the next fresh block (large id or not) must error.
	for i := 1; ; i++ {
		if _, err := be.AddressOf(blocks.Name(i)); err != nil {
			break
		}
		if i > 1<<20 {
			t.Fatal("pool never exhausted")
		}
	}
	if _, err := be.AddressOf("B9999"); err == nil {
		t.Fatal("expected pool-exhaustion error for fresh large-id block")
	}
}
