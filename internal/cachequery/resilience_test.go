package cachequery

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/mbl"
	"repro/internal/polca"
)

func TestBackendRunRejectsNonPositiveReps(t *testing.T) {
	cpu := hw.NewCPU(tinyCPU(), 7)
	be, err := NewBackend(cpu, Target{Level: hw.L1, Set: 3}, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	qs, err := mbl.Expand("@ A?", be.Assoc())
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	for _, reps := range []int{0, -1, -100} {
		if _, err := be.Run(context.Background(), q, reps, true); err == nil {
			t.Errorf("reps=%d accepted", reps)
		} else if !strings.Contains(err.Error(), "repetition count") {
			t.Errorf("reps=%d: unhelpful error %q", reps, err)
		}
	}
}

func TestInconclusiveErrorShape(t *testing.T) {
	e := &InconclusiveError{Index: 2, Hits: 3, Reps: 6, Margin: 0}
	if !errors.Is(e, ErrInconclusive) {
		t.Error("InconclusiveError does not unwrap to ErrInconclusive")
	}
	msg := e.Error()
	for _, want := range []string{"2", "3", "6"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q omits %s", msg, want)
		}
	}
}

// TestBackendRunSurfacesVoteTies: with an even repetition count on a noisy
// CPU, a near-threshold access eventually splits its votes exactly in half;
// Run must return a typed InconclusiveError naming the tied access rather
// than silently picking a winner. The CPU seed is fixed, so the tie is a
// deterministic replay, not a flake.
func TestBackendRunSurfacesVoteTies(t *testing.T) {
	cpu := hw.NewCPU(noisyCPU(), 123)
	opt := testOptions()
	opt.CalibrationSamples = 81
	be, err := NewBackend(cpu, Target{Level: hw.L1, Set: 6}, opt)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := mbl.Expand("@ B? X? C?", be.Assoc())
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	for i := 0; i < 400; i++ {
		_, err := be.Run(context.Background(), q, 2, true)
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrInconclusive) {
			t.Fatalf("run %d: unexpected error type: %v", i, err)
		}
		var tie *InconclusiveError
		if !errors.As(err, &tie) {
			t.Fatalf("tie not typed: %v", err)
		}
		if tie.Reps != 2 || tie.Hits*2 != tie.Reps || tie.Margin != 0 {
			t.Fatalf("tie fields inconsistent: %+v", tie)
		}
		return
	}
	t.Fatal("400 even-reps runs on a noisy CPU never tied; the tie path is untested")
}

// TestFrontendEscalatesVoteTies: the frontend absorbs backend vote ties by
// re-running with an escalated odd repetition count; the escalations are
// visible in FrontendStats.Inconclusive. Escalation fires only on exact
// ties — both repetitions misclassifying the same way is a wrong majority,
// not a tie — so with a deliberately even, deliberately tiny repetition
// count the answers are only near-correct; the bound below is a fixed-seed
// regression value, not a soundness claim.
func TestFrontendEscalatesVoteTies(t *testing.T) {
	cpu := hw.NewCPU(noisyCPU(), 123)
	opt := testOptions()
	opt.Reps = 2 // even on purpose: ties are possible until escalation
	opt.CalibrationSamples = 81
	f := NewFrontend(cpu, opt)
	f.SetResultCache(false)
	tgt := Target{Level: hw.L1, Set: 6}
	want := []cache.Outcome{cache.Hit, cache.Miss, cache.Hit}
	wrong := 0
	for i := 0; i < 200; i++ {
		res, err := f.Query(context.Background(), tgt, "@ B? X? C?")
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		for j, oc := range res[0].Outcomes {
			if oc != want[j] {
				wrong++
			}
		}
	}
	if wrong > 3 {
		t.Errorf("%d misclassifications of 600; 2-rep voting with escalation should stay near-correct", wrong)
	}
	if f.Stats().Inconclusive == 0 {
		t.Error("no vote tie escalations recorded; the escalation path never ran")
	}
}

// transientErr is a minimal retryable fault for quarantine tests.
type transientErr struct{}

func (transientErr) Error() string   { return "transient test fault" }
func (transientErr) Transient() bool { return true }

// flakyProber wraps a replica's prober and fails its first budget probes
// with a transient error (failEvery=0), or fails every probe forever
// (budget<0), or fails non-transiently (hard).
type flakyProber struct {
	inner polca.Prober
	fail  func() error // nil result = execute normally
}

func (fp *flakyProber) Assoc() int                     { return fp.inner.Assoc() }
func (fp *flakyProber) InitialContent() []blocks.Block { return fp.inner.InitialContent() }
func (fp *flakyProber) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	if err := fp.fail(); err != nil {
		return cache.Miss, err
	}
	return fp.inner.Probe(ctx, q)
}

func poolForTest(t *testing.T, n int, opts ...PoolOption) *ParallelProber {
	t.Helper()
	fronts, err := NewReplicaFrontends(func() *hw.CPU { return hw.NewCPU(tinyCPU(), 9) },
		testOptions(), Target{Level: hw.L1, Set: 3}, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fronts {
		f.SetResultCache(false) // every probe must reach a replica
	}
	be, err := fronts[0].Backend(Target{Level: hw.L1, Set: 3})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := NewParallelProber(fronts, Target{Level: hw.L1, Set: 3},
		FlushRefill(be.Assoc()), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return pp
}

// TestPoolQuarantinesDeadReplica: a replica that fails transiently on every
// probe is quarantined after threshold consecutive failures, the probe that
// noticed re-executes elsewhere transparently, and the shrunken pool keeps
// answering correctly. The probation cooldown is pushed out of the test's
// window so the quarantine counters stay exact.
func TestPoolQuarantinesDeadReplica(t *testing.T) {
	pp := poolForTest(t, 3, WithProbationCooldown(time.Hour), WithReplicaWrapper(func(i int, p polca.Prober) polca.Prober {
		if i != 1 {
			return p
		}
		return &flakyProber{inner: p, fail: func() error { return transientErr{} }}
	}))
	if pp.Replicas() != 3 || pp.Live() != 3 {
		t.Fatalf("pool built wrongly: %d replicas, %d live", pp.Replicas(), pp.Live())
	}

	// Ground truth from a clean serial prober over an identical CPU.
	ref := poolForTest(t, 1)
	q := []blocks.Block{"A", "B", "C", "D", "A"}
	want, err := ref.Probe(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	// Enough probes to cycle the dying replica to its threshold. Each
	// transient failure below the threshold propagates (the oracle would
	// retry); the failure that crosses it re-probes transparently.
	failures := 0
	for i := 0; i < 50; i++ {
		oc, err := pp.Probe(context.Background(), q)
		if err != nil {
			if !polca.IsTransient(err) {
				t.Fatalf("probe %d: non-transient %v", i, err)
			}
			failures++
			continue
		}
		if oc != want {
			t.Fatalf("probe %d answered %v, want %v", i, oc, want)
		}
	}
	if pp.Quarantined() != 1 || pp.Live() != 2 {
		t.Errorf("dying replica not quarantined: %d quarantined, %d live", pp.Quarantined(), pp.Live())
	}
	// After quarantine the pool must be clean: no replica left to fail.
	for i := 0; i < 10; i++ {
		if _, err := pp.Probe(context.Background(), q); err != nil {
			t.Fatalf("post-quarantine probe failed: %v", err)
		}
	}
}

// TestPoolAllReplicasQuarantined: with probation disabled, quarantine is
// permanent, and when the last live replica is quarantined the pool fails
// probes with a terminal error instead of deadlocking on an empty pool.
// (With probation on, a fully-quarantined pool instead fails transiently
// and keeps re-trying re-admitted slots — see the probation tests.)
func TestPoolAllReplicasQuarantined(t *testing.T) {
	pp := poolForTest(t, 2, WithProbationCooldown(0), WithReplicaWrapper(func(i int, p polca.Prober) polca.Prober {
		return &flakyProber{inner: p, fail: func() error { return transientErr{} }}
	}))
	q := []blocks.Block{"A", "B"}
	var lastErr error
	for i := 0; i < 20 && pp.Live() > 0; i++ {
		_, lastErr = pp.Probe(context.Background(), q)
	}
	if pp.Live() != 0 || pp.Quarantined() != 2 {
		t.Fatalf("pool not fully quarantined: %d live, %d quarantined", pp.Live(), pp.Quarantined())
	}
	_, lastErr = pp.Probe(context.Background(), q)
	if lastErr == nil || !strings.Contains(lastErr.Error(), "quarantined") {
		t.Errorf("dead pool answered: %v", lastErr)
	}
}

// TestPoolNonTransientPropagates: a non-transient error indicts the run,
// not the replica — it propagates immediately and quarantines nothing.
func TestPoolNonTransientPropagates(t *testing.T) {
	hard := errors.New("protocol violation")
	pp := poolForTest(t, 2, WithReplicaWrapper(func(i int, p polca.Prober) polca.Prober {
		if i != 0 {
			return p
		}
		return &flakyProber{inner: p, fail: func() error { return hard }}
	}))
	q := []blocks.Block{"A", "B"}
	sawHard := false
	for i := 0; i < 20; i++ {
		if _, err := pp.Probe(context.Background(), q); errors.Is(err, hard) {
			sawHard = true
		}
	}
	if !sawHard {
		t.Error("hard failure never propagated")
	}
	if pp.Quarantined() != 0 {
		t.Errorf("non-transient failure quarantined %d replicas", pp.Quarantined())
	}
}

// TestPoolProbationReadmitsRecoveredReplica: quarantine is probation, not a
// death sentence. A replica that dies (every probe fails transiently) is
// quarantined; while it is still dead, each probation re-admission costs
// exactly one invisible probe — re-quarantined on its first strike, never
// surfacing an error while other replicas are live. Once the replica
// recovers, the next probation pass re-admits it for good and it serves
// traffic again.
func TestPoolProbationReadmitsRecoveredReplica(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var served atomic.Int32
	readmissions := make(chan int, 64)
	pp := poolForTest(t, 2,
		WithProbationCooldown(5*time.Millisecond),
		WithReadmitHook(func(id int) {
			select {
			case readmissions <- id:
			default:
			}
		}),
		WithReplicaWrapper(func(i int, p polca.Prober) polca.Prober {
			if i != 1 {
				return p
			}
			return &flakyProber{inner: p, fail: func() error {
				if failing.Load() {
					return transientErr{}
				}
				served.Add(1)
				return nil
			}}
		}))
	t.Cleanup(pp.Close)
	q := []blocks.Block{"A", "B", "C", "A"}

	// Drive the dying replica to its first quarantine. Below-threshold
	// transient failures propagate (the oracle would retry), so tolerate
	// them here.
	for i := 0; pp.Quarantined() == 0; i++ {
		if i > 200 {
			t.Fatal("dying replica never quarantined")
		}
		if _, err := pp.Probe(context.Background(), q); err != nil && !polca.IsTransient(err) {
			t.Fatalf("probe %d: non-transient %v", i, err)
		}
	}

	// While the replica stays dead, probation re-admissions must be
	// invisible: the one-strike probation probe re-quarantines without
	// surfacing an error (the live replica re-executes it).
	deadline := time.Now().Add(2 * time.Second)
	for pp.Readmitted() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("probation never re-admitted the dead replica: %d readmissions", pp.Readmitted())
		}
		if _, err := pp.Probe(context.Background(), q); err != nil {
			t.Fatalf("probation strike leaked to the caller: %v", err)
		}
	}
	if pp.Quarantined() < 2 {
		t.Fatalf("still-dead replica not re-quarantined: %d quarantines, %d readmissions",
			pp.Quarantined(), pp.Readmitted())
	}

	// The replica recovers (a restarted worker, a healed partition): the
	// next probation pass re-admits it and it serves traffic again.
	failing.Store(false)
	for served.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("recovered replica never served traffic: %d live, %d readmissions",
				pp.Live(), pp.Readmitted())
		}
		if _, err := pp.Probe(context.Background(), q); err != nil {
			t.Fatalf("probe after recovery failed: %v", err)
		}
	}
	if pp.Live() != 2 {
		t.Errorf("recovered replica not live: %d live", pp.Live())
	}
	if got := <-readmissions; got != 1 {
		t.Errorf("readmit hook saw replica %d, want 1", got)
	}
}

// TestPoolCloseStopsProbation: Close cancels pending probation timers, so a
// quarantined slot stays out and the pool drains to the terminal error once
// the last live slot goes.
func TestPoolCloseStopsProbation(t *testing.T) {
	pp := poolForTest(t, 2,
		WithProbationCooldown(time.Minute),
		WithReplicaWrapper(func(i int, p polca.Prober) polca.Prober {
			return &flakyProber{inner: p, fail: func() error { return transientErr{} }}
		}))
	q := []blocks.Block{"A", "B"}
	for i := 0; i < 20 && pp.Live() > 0; i++ {
		pp.Probe(context.Background(), q) //nolint:errcheck // driving to quarantine
	}
	if pp.Live() != 0 {
		t.Fatalf("pool not fully quarantined: %d live", pp.Live())
	}
	pp.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := pp.Probe(ctx, q); err == nil {
		t.Error("closed, fully-quarantined pool answered a probe")
	}
	if pp.Readmitted() != 0 {
		t.Errorf("%d readmissions after Close", pp.Readmitted())
	}
}

// TestPoolDarkWithProbationFailsTransiently: when every slot is quarantined
// while probation is still pending, probes must fail within a bounded wait
// with a transient error — never park forever on the empty pool (the
// regression: a learner driving a fully-dead remote fleet hung instead of
// aborting). Once the replicas heal, probation re-admits them and the pool
// serves again: dark is a state, not a death sentence.
func TestPoolDarkWithProbationFailsTransiently(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	pp := poolForTest(t, 2,
		WithProbationCooldown(10*time.Millisecond),
		WithReplicaWrapper(func(i int, p polca.Prober) polca.Prober {
			return &flakyProber{inner: p, fail: func() error {
				if failing.Load() {
					return transientErr{}
				}
				return nil
			}}
		}))
	t.Cleanup(pp.Close)
	q := []blocks.Block{"A", "B"}

	// Drive the whole pool dark. Below-threshold failures propagate
	// transiently on the way down; nothing may surface non-transiently.
	for i := 0; pp.Live() > 0; i++ {
		if i > 500 {
			t.Fatalf("pool never went dark: %d live", pp.Live())
		}
		if _, err := pp.Probe(context.Background(), q); err != nil && !polca.IsTransient(err) {
			t.Fatalf("probe %d: non-transient %v", i, err)
		}
	}

	// Dark pool: every probe fails — transiently, and within bounded time.
	for i := 0; i < 10; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := pp.Probe(context.Background(), q)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("probe %d: dark pool answered", i)
			}
			if !polca.IsTransient(err) {
				t.Fatalf("probe %d: dark pool failed non-transiently: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("probe %d parked on the dark pool", i)
		}
	}

	// Recovery: the replicas heal, the next probation pass re-admits them,
	// and probes succeed again.
	failing.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := pp.Probe(context.Background(), q); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healed pool never recovered from dark")
		}
	}
}
