package cachequery

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/mbl"
	"repro/internal/polca"
)

// Reset describes how a probe drives the target set into its fixed initial
// state (§7.1): an optional pool flush followed by a block access sequence.
type Reset struct {
	// FlushFirst flushes every pool block before the sequence (the
	// "Flush" of Flush+Refill).
	FlushFirst bool
	// Sequence is the block access sequence, e.g. A B C D for '@' or
	// D C B A A B C D for the Skylake L2.
	Sequence []blocks.Block
	// Content is the assumed post-reset cache content by line. Polca's
	// line labels are defined relative to this arrangement; any fixed
	// bijection yields an isomorphic (relabeled) learned policy.
	Content []blocks.Block
}

// FlushRefill is the default reset: flush, then access the first
// associativity-many blocks in order.
func FlushRefill(assoc int) Reset {
	return Reset{FlushFirst: true, Sequence: blocks.Ordered(assoc), Content: blocks.Ordered(assoc)}
}

// Name renders the reset in the notation of Table 4.
func (r Reset) Name() string {
	res := cache.ResetResult{Sequence: r.Sequence, FlushFirst: r.FlushFirst, Content: r.Content}
	return res.Name()
}

// Prober adapts a CacheQuery target set to Polca's cache interface: every
// probe replays the reset and then the block sequence, profiling the last
// access. It deliberately implements only the plain polca.Prober interface
// — hardware offers no state snapshots, so the oracle uses the faithful
// reset-rooted probing path, and the frontend's result cache (LevelDB in
// the real tool) is what keeps the cost manageable.
type Prober struct {
	f   *Frontend
	tgt Target
	rst Reset
}

// NewProber builds a Polca prober for one target set and reset.
func NewProber(f *Frontend, tgt Target, rst Reset) (*Prober, error) {
	be, err := f.Backend(tgt)
	if err != nil {
		return nil, err
	}
	if len(rst.Content) != be.Assoc() {
		return nil, fmt.Errorf("cachequery: reset content has %d lines, target associativity is %d",
			len(rst.Content), be.Assoc())
	}
	return &Prober{f: f, tgt: tgt, rst: rst}, nil
}

// Assoc implements polca.Prober.
func (p *Prober) Assoc() int {
	be, _ := p.f.Backend(p.tgt)
	return be.Assoc()
}

// InitialContent implements polca.Prober.
func (p *Prober) InitialContent() []blocks.Block {
	return append([]blocks.Block(nil), p.rst.Content...)
}

// probeOps renders reset ++ q with the final access profiled.
func (p *Prober) probeOps(q []blocks.Block) mbl.Query {
	ops := make(mbl.Query, 0, len(p.rst.Sequence)+len(q))
	for _, b := range p.rst.Sequence {
		ops = append(ops, mbl.Op{Block: b})
	}
	for i, b := range q {
		op := mbl.Op{Block: b}
		if i == len(q)-1 {
			op.Tag = mbl.TagProfile
		}
		ops = append(ops, op)
	}
	return ops
}

// Probe implements polca.Prober: reset ++ q with the final access profiled.
func (p *Prober) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	if len(q) == 0 {
		return cache.Miss, fmt.Errorf("cachequery: empty probe")
	}
	ocs, err := p.f.RunQuery(ctx, p.tgt, p.probeOps(q), p.rst.FlushFirst)
	if err != nil {
		return cache.Miss, err
	}
	return ocs[0], nil
}

// ProbeFresh implements polca.FreshProber: the probe is re-executed on the
// cache even when the result store already holds its answer, which is what
// lets the oracle's determinism audit observe real (mis)behaviour.
func (p *Prober) ProbeFresh(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	if len(q) == 0 {
		return cache.Miss, fmt.Errorf("cachequery: empty probe")
	}
	ocs, err := p.f.RunQueryFresh(ctx, p.tgt, p.probeOps(q), p.rst.FlushFirst)
	if err != nil {
		return cache.Miss, err
	}
	return ocs[0], nil
}

// ProbeTrace implements polca.TraceProber: reset ++ q with every access of
// q profiled, returning the full hit/miss trace.
func (p *Prober) ProbeTrace(ctx context.Context, q []blocks.Block) ([]cache.Outcome, error) {
	if len(q) == 0 {
		return nil, fmt.Errorf("cachequery: empty probe")
	}
	ops := make(mbl.Query, 0, len(p.rst.Sequence)+len(q))
	for _, b := range p.rst.Sequence {
		ops = append(ops, mbl.Op{Block: b})
	}
	for _, b := range q {
		ops = append(ops, mbl.Op{Block: b, Tag: mbl.TagProfile})
	}
	return p.f.RunQuery(ctx, p.tgt, ops, p.rst.FlushFirst)
}

// DiscoverInitialContent probes which blocks of the reset sequence are
// resident after a reset, for use when the post-reset arrangement is not
// known from a model: the resident blocks are assigned to lines in
// universe order, fixing an arbitrary but consistent labeling.
func DiscoverInitialContent(ctx context.Context, f *Frontend, tgt Target, rst Reset) ([]blocks.Block, error) {
	be, err := f.Backend(tgt)
	if err != nil {
		return nil, err
	}
	probe := &Prober{f: f, tgt: tgt, rst: Reset{
		FlushFirst: rst.FlushFirst,
		Sequence:   rst.Sequence,
		Content:    make([]blocks.Block, be.Assoc()), // placeholder
	}}
	var resident []blocks.Block
	seen := make(map[blocks.Block]bool)
	for _, b := range rst.Sequence {
		if seen[b] {
			continue
		}
		seen[b] = true
		oc, err := probe.Probe(ctx, []blocks.Block{b})
		if err != nil {
			return nil, err
		}
		if oc == cache.Hit {
			resident = append(resident, b)
		}
	}
	sort.Slice(resident, func(i, j int) bool {
		a, _ := blocks.Index(resident[i])
		b, _ := blocks.Index(resident[j])
		return a < b
	})
	if len(resident) != be.Assoc() {
		return nil, fmt.Errorf("cachequery: reset leaves %d resident blocks, expected %d — not a valid reset",
			len(resident), be.Assoc())
	}
	return resident, nil
}

var (
	_ polca.Prober      = (*Prober)(nil)
	_ polca.FreshProber = (*Prober)(nil)
	_ polca.TraceProber = (*Prober)(nil)
)
