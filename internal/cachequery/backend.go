// Package cachequery implements CacheQuery (§4 of the paper): an abstract
// interface to individual cache sets of a (simulated) silicon CPU. Users
// name a cache set — say, set 63 of the L2 — and submit MemBlockLang
// queries; CacheQuery takes care of virtual-to-physical translation, slice
// hashing, set indexing, eviction of accessed blocks from higher cache
// levels, latency profiling, threshold calibration, repetition voting, and
// caching of query results.
//
// The backend below plays the role of the paper's Linux kernel module: it
// owns the congruent-address pools and executes access plans against the
// simulated CPU. The frontend (frontend.go) expands MBL expressions and
// memoizes query results, as the real tool does with LevelDB.
package cachequery

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/mbl"
)

// Target names one cache set of the CPU.
type Target struct {
	Level hw.Level
	Slice int
	Set   int
}

// String renders the target like the tool's virtual file paths, e.g.
// "l2_sets/63".
func (t Target) String() string {
	if t.Slice == 0 {
		return fmt.Sprintf("l%d_sets/%d", int(t.Level)+1, t.Set)
	}
	return fmt.Sprintf("l%d_sets/%d.%d", int(t.Level)+1, t.Slice, t.Set)
}

// BackendOptions tune pool sizes and measurement repetition.
type BackendOptions struct {
	// MaxBlocks is the number of distinct congruent blocks the backend
	// provisions (the usable MBL block universe for this set).
	MaxBlocks int
	// Reps is the default number of times a query is executed for
	// majority voting; queries must be reset-prefixed for this to be
	// sound. Odd counts cannot tie; an even count is accepted because the
	// frontend escalates any vote tie to 2·Reps+1 (odd) repetitions.
	Reps int
	// EvictRounds is how many passes over an eviction set are used to
	// filter a block out of a higher level.
	EvictRounds int
	// CalibrationSamples per latency class.
	CalibrationSamples int
}

// DefaultBackendOptions returns the tuning the experiments use.
func DefaultBackendOptions() BackendOptions {
	return BackendOptions{MaxBlocks: 24, Reps: 3, EvictRounds: 2, CalibrationSamples: 41}
}

// Backend executes access plans against one target cache set.
type Backend struct {
	cpu *hw.CPU
	tgt Target
	opt BackendOptions

	pool    []hw.Addr     // congruent lines, in block-universe order
	byID    []int32       // dense block id -> pool index, -1 unbound (grown on demand)
	byIDBig map[int]int32 // bindings for rare block ids past denseIDCap
	bound   int           // number of blocks bound to pool addresses so far

	l1Evict []hw.Addr // filters the pool's shared L1 set (targets >= L2)
	l2Evict []hw.Addr // filters the pool's shared L2 set (L3 targets)
	// calEvict evicts the calibration scratch block from the target level
	// but not from the next one, yielding a "nearest miss" latency sample
	// (unused for L3 targets, where clflush provides the DRAM sample).
	calEvict []hw.Addr

	threshold float64 // hit-at-target-level classification bound

	// Cost counters for the §7.2 experiments.
	queriesRun int
	loadsDone  uint64
}

// NewBackend provisions address pools and calibrates the latency threshold
// for one target set. The CPU is put into the low-noise measurement
// configuration (prefetchers off, interrupts/dvfs suppressed), as the real
// tool does (§4.3).
func NewBackend(cpu *hw.CPU, tgt Target, opt BackendOptions) (*Backend, error) {
	cfg := cpu.Config().Config(tgt.Level)
	if tgt.Slice < 0 || tgt.Slice >= cfg.Slices {
		return nil, fmt.Errorf("cachequery: slice %d out of range for %v", tgt.Slice, tgt.Level)
	}
	if tgt.Set < 0 || tgt.Set >= cfg.SetsPerSlice {
		return nil, fmt.Errorf("cachequery: set %d out of range for %v", tgt.Set, tgt.Level)
	}
	if opt.MaxBlocks <= 0 || opt.Reps <= 0 {
		return nil, fmt.Errorf("cachequery: invalid options %+v (MaxBlocks and Reps must be positive)", opt)
	}
	cpu.SetPrefetcher(false)
	cpu.SetLowNoise(true)

	b := &Backend{cpu: cpu, tgt: tgt, opt: opt}
	if err := b.provision(); err != nil {
		return nil, err
	}
	if err := b.calibrate(); err != nil {
		return nil, err
	}
	return b, nil
}

// Target returns the backend's cache set.
func (b *Backend) Target() Target { return b.tgt }

// Assoc returns the associativity of the target set (accounting for CAT
// way masking, which must be configured before the backend is built).
func (b *Backend) Assoc() int { return b.cpu.EffectiveAssoc(b.tgt.Level) }

// Threshold returns the calibrated hit/miss latency boundary in cycles.
func (b *Backend) Threshold() float64 { return b.threshold }

// matches reports whether a physical address belongs to the target set.
func (b *Backend) matches(pa hw.Addr) bool {
	slice, set := b.cpu.SetIndex(b.tgt.Level, pa)
	return slice == b.tgt.Slice && set == b.tgt.Set
}

// provision scans freshly allocated pages for congruent lines and builds the
// non-interfering eviction sets used for cache filtering.
func (b *Backend) provision() error {
	cfgL1 := b.cpu.Config().Config(hw.L1)
	wantPool := b.opt.MaxBlocks
	wantL1, wantL2 := 0, 0
	if b.tgt.Level >= hw.L2 {
		wantL1 = cfgL1.Assoc*2 + 4
	}
	if b.tgt.Level == hw.L3 {
		wantL2 = b.cpu.Config().Config(hw.L2).Assoc*2 + 4
	}

	// All pool lines share one L1 set (and one L2 set), because the L1/L2
	// set index bits are a suffix of the higher-level index bits; derive
	// them from the target set number.
	l1Set := b.tgt.Set % cfgL1.SetsPerSlice
	l2Sets := b.cpu.Config().Config(hw.L2).SetsPerSlice
	l2Set := b.tgt.Set % l2Sets

	const maxPages = 1 << 17
	for pages := 0; pages < maxPages; pages += 64 {
		base := b.cpu.AllocBuffer(64)
		for line := 0; line < 64*hw.PageSize/hw.LineSize; line++ {
			va := base + hw.Addr(line)*hw.LineSize
			pa := b.cpu.TranslateToPhys(va)
			_, l1s := b.cpu.SetIndex(hw.L1, pa)
			_, l2s := b.cpu.SetIndex(hw.L2, pa)
			switch {
			case b.matches(pa) && len(b.pool) < wantPool:
				b.pool = append(b.pool, va)
			case b.tgt.Level >= hw.L2 && l1s == l1Set && !b.matchesLevelSet(pa) && len(b.l1Evict) < wantL1:
				b.l1Evict = append(b.l1Evict, va)
			case b.tgt.Level == hw.L3 && l2s == l2Set && !b.matches(pa) && len(b.l2Evict) < wantL2:
				b.l2Evict = append(b.l2Evict, va)
			}
		}
		if len(b.pool) >= wantPool && len(b.l1Evict) >= wantL1 && len(b.l2Evict) >= wantL2 {
			return b.provisionCalibration()
		}
	}
	return fmt.Errorf("cachequery: could not provision %d congruent lines for %s", wantPool, b.tgt)
}

// provisionCalibration builds the calibration eviction set: addresses that
// conflict with the scratch block (pool[0]) at the target level while
// leaving its copy at the next level untouched, so a post-eviction load
// yields a next-level hit — the closest miss latency the threshold must
// separate. L3 targets need none: their misses are DRAM accesses.
func (b *Backend) provisionCalibration() error {
	if b.tgt.Level == hw.L3 {
		return nil
	}
	scratchPA := b.cpu.TranslateToPhys(b.pool[0])
	sL2, sL2set := b.cpu.SetIndex(hw.L2, scratchPA)
	sL3, sL3set := b.cpu.SetIndex(hw.L3, scratchPA)
	_, l1Set := b.cpu.SetIndex(hw.L1, scratchPA)
	want := b.cpu.Config().Config(b.tgt.Level).Assoc*2 + 4

	const maxPages = 1 << 17
	for pages := 0; pages < maxPages; pages += 64 {
		base := b.cpu.AllocBuffer(64)
		for line := 0; line < 64*hw.PageSize/hw.LineSize; line++ {
			va := base + hw.Addr(line)*hw.LineSize
			pa := b.cpu.TranslateToPhys(va)
			l3Slice, l3Set := b.cpu.SetIndex(hw.L3, pa)
			if l3Slice == sL3 && l3Set == sL3set {
				continue // would evict the scratch line from L3 inclusively
			}
			l2Slice, l2Set := b.cpu.SetIndex(hw.L2, pa)
			_, l1s := b.cpu.SetIndex(hw.L1, pa)
			switch b.tgt.Level {
			case hw.L1:
				// Conflict in L1, avoid the scratch L2 set.
				if l1s == l1Set && !(l2Slice == sL2 && l2Set == sL2set) {
					b.calEvict = append(b.calEvict, va)
				}
			case hw.L2:
				// Conflict in L2 (which also evicts from L1).
				if l2Slice == sL2 && l2Set == sL2set {
					b.calEvict = append(b.calEvict, va)
				}
			}
			if len(b.calEvict) >= want {
				return nil
			}
		}
	}
	return fmt.Errorf("cachequery: could not provision a calibration eviction set for %s", b.tgt)
}

// matchesLevelSet reports whether pa maps into the target's set at the
// *target level* (regardless of slice) — used to keep L1 eviction sets from
// interfering with the probed set.
func (b *Backend) matchesLevelSet(pa hw.Addr) bool {
	_, set := b.cpu.SetIndex(b.tgt.Level, pa)
	return set == b.tgt.Set
}

// load issues one timed access.
func (b *Backend) load(va hw.Addr) float64 {
	b.loadsDone++
	return b.cpu.Load(va)
}

// filter pushes the pool's blocks out of every level above the target by
// walking the non-interfering eviction sets (§4.3 "Cache Filtering").
func (b *Backend) filter() {
	if b.tgt.Level == hw.L1 {
		return
	}
	for round := 0; round < b.opt.EvictRounds; round++ {
		for _, va := range b.l2Evict {
			b.load(va)
		}
		for _, va := range b.l1Evict {
			b.load(va)
		}
	}
}

// AddressOf returns the virtual address backing an abstract block. Blocks
// are bound to pool addresses in order of first use, so any well-formed
// block name works until the pool of distinct congruent lines is exhausted.
// The binding is indexed by the block's dense universe id, not its name, so
// the per-access hot path does one slice read instead of a string-map probe.
func (b *Backend) AddressOf(block blocks.Block) (hw.Addr, error) {
	id, err := blocks.Index(block)
	if err != nil {
		return 0, fmt.Errorf("cachequery: invalid block name %q", block)
	}
	// The id space is open-ended (block "A<round>" has id round*26), so the
	// dense table is capped and rare ids beyond it bind through a map —
	// growing the slice to an arbitrary user-supplied id would allocate
	// unboundedly.
	const denseIDCap = 1 << 12
	if id < denseIDCap {
		if id >= len(b.byID) {
			grown := make([]int32, id+1)
			copy(grown, b.byID)
			for i := len(b.byID); i < len(grown); i++ {
				grown[i] = -1
			}
			b.byID = grown
		}
		if p := b.byID[id]; p >= 0 {
			return b.pool[p], nil
		}
	} else if p, ok := b.byIDBig[id]; ok {
		return b.pool[p], nil
	}
	if b.bound >= len(b.pool) {
		return 0, fmt.Errorf("cachequery: block %s exceeds the provisioned pool of %d congruent lines", block, len(b.pool))
	}
	if id < denseIDCap {
		b.byID[id] = int32(b.bound)
	} else {
		if b.byIDBig == nil {
			b.byIDBig = make(map[int]int32)
		}
		b.byIDBig[id] = int32(b.bound)
	}
	va := b.pool[b.bound]
	b.bound++
	return va, nil
}

// FlushPool clflushes every provisioned block (including the calibration
// eviction lines, which for an L2 target conflict with the probed set),
// emptying the target set without touching replacement metadata. This is
// the set-local analog of the Flush step in Flush+Refill resets.
func (b *Backend) FlushPool() {
	for _, va := range b.pool {
		b.cpu.CLFlush(va)
	}
	for _, va := range b.calEvict {
		b.cpu.CLFlush(va)
	}
}

// runOnce executes a query once and returns the raw latencies of the
// profiled accesses.
func (b *Backend) runOnce(q mbl.Query) ([]float64, error) {
	var lats []float64
	for _, op := range q {
		va, err := b.AddressOf(op.Block)
		if err != nil {
			return nil, err
		}
		if op.Tag == mbl.TagFlush {
			b.cpu.CLFlush(va)
			continue
		}
		lat := b.load(va)
		if op.Tag == mbl.TagProfile {
			lats = append(lats, lat)
		}
		b.filter()
	}
	return lats, nil
}

// ErrInconclusive is the sentinel every vote-tie failure wraps: a profiled
// access whose repetitions split evenly between hit and miss has no majority,
// and silently picking a winner would feed measurement noise to the learner
// as ground truth. Callers retry with more (odd) repetitions instead.
var ErrInconclusive = errors.New("cachequery: inconclusive measurement")

// InconclusiveError reports a vote tie on one profiled access. It wraps
// ErrInconclusive.
type InconclusiveError struct {
	Index  int // position among the query's profiled accesses
	Hits   int // repetitions classified as hits
	Reps   int // total repetitions
	Margin int // |hits - misses|; 0 for an exact tie
}

func (e *InconclusiveError) Error() string {
	return fmt.Sprintf("cachequery: inconclusive measurement at profiled access %d (%d/%d hit votes, margin %d)",
		e.Index, e.Hits, e.Reps, e.Margin)
}

// Unwrap marks the error as ErrInconclusive.
func (e *InconclusiveError) Unwrap() error { return ErrInconclusive }

// Run executes a query (the generated access plan) reps times, classifies
// every profiled access against the calibrated threshold, and majority-votes
// across repetitions. reps must be positive: callers pick the repetition
// count explicitly (the frontend passes its configured default), and an
// accidental zero would silently measure nothing. A vote tie — possible
// whenever reps is even — returns an InconclusiveError naming the tied
// access instead of silently picking a winner; callers retry with more
// (odd) reps. If flushFirst is set, every repetition starts by flushing the
// pool. Repetition is only sound for reset-prefixed queries, which is what
// the learning pipeline issues. Cancellation is honored between repetitions.
func (b *Backend) Run(ctx context.Context, q mbl.Query, reps int, flushFirst bool) ([]cache.Outcome, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("cachequery: invalid repetition count %d (must be positive)", reps)
	}
	nProf := q.ProfiledCount()
	votes := make([]int, nProf)
	for r := 0; r < reps; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if flushFirst {
			b.FlushPool()
		}
		lats, err := b.runOnce(q)
		if err != nil {
			return nil, err
		}
		if len(lats) != nProf {
			return nil, fmt.Errorf("cachequery: profiled %d accesses, expected %d", len(lats), nProf)
		}
		for i, l := range lats {
			if l <= b.threshold {
				votes[i]++
			}
		}
	}
	b.queriesRun++
	out := make([]cache.Outcome, nProf)
	for i, v := range votes {
		if v*2 == reps {
			return nil, &InconclusiveError{Index: i, Hits: v, Reps: reps, Margin: 0}
		}
		out[i] = cache.Outcome(v*2 > reps)
	}
	return out, nil
}

// DefaultReps returns the backend's configured repetition count.
func (b *Backend) DefaultReps() int { return b.opt.Reps }

// calibrate measures hit-at-target and nearest-miss latencies on a scratch
// pool block and places the classification threshold between the two
// medians. The nearest miss is a next-level hit for L1/L2 targets (produced
// by conflict-evicting the scratch line at the target level only) and a
// DRAM access for L3 targets.
func (b *Backend) calibrate() error {
	scratch := b.pool[0]
	var hits, misses []float64
	for i := 0; i < b.opt.CalibrationSamples; i++ {
		// Hit sample: install the line, filter higher levels, re-load.
		b.load(scratch)
		b.filter()
		hits = append(hits, b.load(scratch))
		// Nearest-miss sample.
		if b.tgt.Level == hw.L3 {
			b.cpu.CLFlush(scratch)
		} else {
			for round := 0; round < b.opt.EvictRounds; round++ {
				for _, va := range b.calEvict {
					b.load(va)
				}
			}
		}
		misses = append(misses, b.load(scratch))
		b.filter()
	}
	hm, mm := median(hits), median(misses)
	// Require a real gap between the classes: thresholds inside overlapping
	// distributions would classify noise, not cache behaviour.
	const minGap = 2.0
	if hm+minGap >= mm {
		return fmt.Errorf("cachequery: calibration failed: hit median %.1f and miss median %.1f are not separable", hm, mm)
	}
	b.threshold = (hm + mm) / 2
	// Leave no calibration residue in the target set: for L2 targets the
	// calibration eviction lines conflict with the probed set itself.
	b.FlushPool()
	return nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Stats reports the backend's cost counters.
func (b *Backend) Stats() (queries int, loads uint64) { return b.queriesRun, b.loadsDone }
