package cachequery

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/polca"
)

// NewReplicaFrontends builds n frontends over fresh CPU replicas sharing one
// query-result store, and provisions each one's backend for tgt on parallel
// goroutines (provisioning and calibration are themselves the first
// beneficiaries of replication). Replicas built from the same configuration
// and seed answer identically up to latency noise, which repetition voting
// absorbs exactly as it does on a single CPU.
func NewReplicaFrontends(newCPU func() *hw.CPU, opt BackendOptions, tgt Target, n int) ([]*Frontend, error) {
	if n < 1 {
		n = 1
	}
	store := NewResultStore()
	fronts := make([]*Frontend, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fronts[i] = NewFrontendWithStore(newCPU(), opt, store)
			_, errs[i] = fronts[i].Backend(tgt)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return fronts, nil
}

// DefaultQuarantineThreshold is how many consecutive transient failures a
// pool slot accumulates before the pool quarantines it.
const DefaultQuarantineThreshold = 3

// DefaultProbationCooldown is how long a quarantined slot sits out before
// probation re-admits it. Long enough that a dying slot costs at most one
// wasted probe per cooldown, short enough that a restarted remote worker
// rejoins a long learn within a couple of seconds.
const DefaultProbationCooldown = 500 * time.Millisecond

// PoolSlot is one slot of a ProberPool: the probing interface (possibly
// wrapped by a fault injector) plus its health score. fails is only touched
// by the goroutine currently holding the slot, so it needs no atomics.
type PoolSlot struct {
	p         polca.Prober
	id        int
	fails     int  // consecutive transient failures
	probation bool // re-admitted after quarantine; one strike re-quarantines
}

// Prober returns the slot's probing interface.
func (s *PoolSlot) Prober() polca.Prober { return s.p }

// ID returns the slot's index in the pool as built.
func (s *PoolSlot) ID() int { return s.id }

// poolConfig collects the PoolOption knobs shared by ProberPool and
// ParallelProber.
type poolConfig struct {
	threshold int
	cooldown  time.Duration
	wrap      func(int, polca.Prober) polca.Prober
	onReadmit func(int)
}

func defaultPoolConfig() poolConfig {
	return poolConfig{threshold: DefaultQuarantineThreshold, cooldown: DefaultProbationCooldown}
}

// PoolOption configures a ProberPool (and ParallelProber on top of it).
type PoolOption func(*poolConfig)

// WithQuarantineThreshold overrides how many consecutive transient failures
// quarantine a slot; n <= 0 restores DefaultQuarantineThreshold.
func WithQuarantineThreshold(n int) PoolOption {
	return func(c *poolConfig) {
		if n <= 0 {
			n = DefaultQuarantineThreshold
		}
		c.threshold = n
	}
}

// WithProbationCooldown overrides how long a quarantined slot sits out
// before probation re-admits it. d <= 0 disables probation entirely,
// restoring permanent quarantine: once the last live slot is quarantined
// the pool fails probes terminally.
func WithProbationCooldown(d time.Duration) PoolOption {
	return func(c *poolConfig) { c.cooldown = d }
}

// WithReplicaWrapper interposes wrap between the pool and each slot's
// prober — the hook internal/faulty uses to inject per-replica faults
// (including replica death) under the pool's quarantine logic.
func WithReplicaWrapper(wrap func(i int, p polca.Prober) polca.Prober) PoolOption {
	return func(c *poolConfig) { c.wrap = wrap }
}

// WithReadmitHook registers fn to run (on the probation timer's goroutine)
// each time a quarantined slot is re-admitted, before the slot re-enters
// rotation. The remote fleet uses it to re-ship the latest query-store
// snapshot to a worker that just came back, so a recovered worker resumes
// warm instead of re-probing memoized prefixes.
func WithReadmitHook(fn func(id int)) PoolOption {
	return func(c *poolConfig) { c.onReadmit = fn }
}

// ProberPool multiplexes reset-rooted probes over a pool of independent
// probers, making Probe safe for concurrent use. Every probe is
// reset-prefixed, which is what makes pooling sound: slots hold no
// cross-probe state, so any free slot can answer any probe. The pool is the
// shared health layer under both CPU-replica pools (ParallelProber) and
// remote worker fleets (internal/remote).
//
// The pool scores slot health: a slot that fails transiently threshold-many
// times in a row is quarantined — removed from rotation — and the probe
// that noticed is re-executed on another slot, so a dying slot shrinks the
// pool instead of failing the run. Quarantine is probation, not a death
// sentence: after a cooldown the slot is re-admitted with one strike left,
// so a slot that genuinely recovered (a restarted worker, a transient
// network partition) rejoins at the cost of one probe, while a slot that is
// still dead re-quarantines on its first failure — invisibly when other
// slots are live. Only when no slot is live and a probe's failure cannot be
// re-executed elsewhere does the error propagate (transiently, so the
// oracle's retry policy paces re-attempts against future re-admissions).
// Non-transient errors (measurement nondeterminism, protocol violations,
// cancellation) propagate immediately: they indict the run, not the slot.
type ProberPool struct {
	pool    chan *PoolSlot
	slots   []*PoolSlot
	assoc   int
	content []blocks.Block

	cfg poolConfig

	live        atomic.Int32
	quarantined atomic.Int32
	readmitted  atomic.Int32
	dead        chan struct{} // closed when the pool dies for good (probation off)
	deadOnce    sync.Once

	mu     sync.Mutex
	timers map[*PoolSlot]*time.Timer
	closed bool
}

// NewProberPool pools the given probers. All probers must agree on
// associativity; the pool's initial content is the first prober's.
func NewProberPool(probers []polca.Prober, opts ...PoolOption) (*ProberPool, error) {
	if len(probers) == 0 {
		return nil, fmt.Errorf("cachequery: prober pool needs at least one prober")
	}
	cfg := defaultPoolConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	p := &ProberPool{
		pool:    make(chan *PoolSlot, len(probers)),
		assoc:   probers[0].Assoc(),
		content: append([]blocks.Block(nil), probers[0].InitialContent()...),
		cfg:     cfg,
		dead:    make(chan struct{}),
		timers:  make(map[*PoolSlot]*time.Timer),
	}
	for i, pr := range probers {
		if pr.Assoc() != p.assoc {
			return nil, fmt.Errorf("cachequery: pool slot %d has associativity %d, slot 0 has %d", i, pr.Assoc(), p.assoc)
		}
		if cfg.wrap != nil {
			pr = cfg.wrap(i, pr)
		}
		s := &PoolSlot{p: pr, id: i}
		p.slots = append(p.slots, s)
		p.pool <- s
	}
	p.live.Store(int32(len(probers)))
	return p, nil
}

// Size returns the pool size as built (before any quarantine).
func (p *ProberPool) Size() int { return len(p.slots) }

// Live returns how many slots are in rotation right now.
func (p *ProberPool) Live() int { return int(p.live.Load()) }

// Quarantined returns how many quarantines have happened (cumulative: with
// probation a slot that keeps dying is counted once per re-quarantine).
func (p *ProberPool) Quarantined() int { return int(p.quarantined.Load()) }

// Readmitted returns how many probation re-admissions have happened.
func (p *ProberPool) Readmitted() int { return int(p.readmitted.Load()) }

// Close cancels pending probation timers. Quarantined slots are no longer
// re-admitted; live slots keep serving, and if none are live the pool dies
// for good so blocked probes fail fast. Safe to call more than once.
func (p *ProberPool) Close() {
	p.mu.Lock()
	p.closed = true
	for s, t := range p.timers {
		t.Stop()
		delete(p.timers, s)
	}
	p.mu.Unlock()
	if p.live.Load() == 0 {
		p.deadOnce.Do(func() { close(p.dead) })
	}
}

// Assoc implements polca.Prober.
func (p *ProberPool) Assoc() int { return p.assoc }

// InitialContent implements polca.Prober.
func (p *ProberPool) InitialContent() []blocks.Block {
	return append([]blocks.Block(nil), p.content...)
}

// Checkout takes a slot out of the pool, waiting until one is free (a
// quarantined slot's probation re-admission counts). It fails fast when the
// caller's context is done or the pool has died for good (probation
// disabled and every slot quarantined). When every slot is quarantined but
// probation is still pending, Checkout waits out at most ~1.5 cooldowns for
// a re-admission to land and then fails with a transient error: the retry
// policies above pace bounded re-attempts against future re-admissions, so
// a whole-fleet blip shorter than the retry budget heals invisibly while a
// fleet that stays dark fails the run loudly instead of parking it forever.
func (p *ProberPool) Checkout(ctx context.Context) (*PoolSlot, error) {
	select {
	case s := <-p.pool:
		return s, nil
	default:
	}
	var darkC <-chan time.Time
	if p.cfg.cooldown > 0 {
		// ~1.5 cooldowns gives the nearest probation timer a full chance to
		// land before the checkout gives up; the cap keeps hour-scale
		// cooldowns from turning the give-up into a park.
		wait := p.cfg.cooldown + p.cfg.cooldown/2
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
		t := time.NewTicker(wait)
		defer t.Stop()
		darkC = t.C
	}
	for {
		select {
		case s := <-p.pool:
			return s, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-p.dead:
			return nil, fmt.Errorf("cachequery: all %d pool slots quarantined", len(p.slots))
		case <-darkC:
			if p.live.Load() == 0 {
				return nil, &darkPoolErr{n: len(p.slots)}
			}
			// Slots are live, just busy — keep waiting for one to free up.
		}
	}
}

// darkPoolErr reports a pool whose every slot is quarantined while
// probation re-admissions are still pending. It is transient: retrying
// races the caller against the next re-admission rather than failing the
// run on the spot.
type darkPoolErr struct{ n int }

func (e *darkPoolErr) Error() string {
	return fmt.Sprintf("cachequery: all %d pool slots quarantined (probation pending)", e.n)
}

// Transient marks the dark pool retryable: probation may re-admit a slot.
func (e *darkPoolErr) Transient() bool { return true }

// Succeed returns a slot to the pool with a clean health score.
func (p *ProberPool) Succeed(s *PoolSlot) {
	s.fails = 0
	s.probation = false
	p.pool <- s
}

// Release returns a slot to the pool without touching its health score —
// for probes that failed for reasons that do not indict the slot
// (non-transient errors, cancellation, a lost hedge race).
func (p *ProberPool) Release(s *PoolSlot) {
	p.pool <- s
}

// Fail records one transient failure against a slot. It reports whether the
// slot was quarantined (true: the slot left rotation, re-execute the probe
// on another slot if any is live) or returned to the pool still counting
// strikes (false: propagate the error so systemic faults stay visible).
func (p *ProberPool) Fail(s *PoolSlot) bool {
	s.fails++
	if s.probation || s.fails >= p.cfg.threshold {
		p.quarantine(s)
		return true
	}
	p.pool <- s
	return false
}

// quarantine retires a slot: probation schedules its re-admission after the
// cooldown; with probation disabled the pool permanently shrinks by one and
// dies when the last slot goes.
func (p *ProberPool) quarantine(s *PoolSlot) {
	p.quarantined.Add(1)
	n := p.live.Add(-1)
	if p.cfg.cooldown <= 0 {
		if n == 0 {
			p.deadOnce.Do(func() { close(p.dead) })
		}
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		if n == 0 {
			p.deadOnce.Do(func() { close(p.dead) })
		}
		return
	}
	s.fails = 0
	s.probation = true
	p.timers[s] = time.AfterFunc(p.cfg.cooldown, func() { p.readmit(s) })
}

// readmit puts a quarantined slot back into rotation on probation.
func (p *ProberPool) readmit(s *PoolSlot) {
	p.mu.Lock()
	if _, ok := p.timers[s]; !ok || p.closed {
		p.mu.Unlock()
		return
	}
	delete(p.timers, s)
	p.mu.Unlock()
	if p.cfg.onReadmit != nil {
		p.cfg.onReadmit(s.id)
	}
	p.readmitted.Add(1)
	p.live.Add(1)
	p.pool <- s
}

// run executes fn against pool slots until it succeeds, fails terminally,
// or the transient-failure budget is spent. A slot that pushes its
// consecutive-failure score to the threshold (or fails its probation probe)
// is quarantined and the probe transparently re-executes on another slot;
// below the threshold the transient error propagates (the oracle's retry
// policy backs off and re-enters here), so a systemic fault is still
// visible upstream while a single dying slot is not.
func (p *ProberPool) run(ctx context.Context, fn func(*PoolSlot) (cache.Outcome, error)) (cache.Outcome, error) {
	for {
		s, err := p.Checkout(ctx)
		if err != nil {
			return cache.Miss, err
		}
		oc, err := fn(s)
		if err == nil {
			p.Succeed(s)
			return oc, nil
		}
		if !polca.IsTransient(err) {
			p.Release(s)
			return cache.Miss, err
		}
		if p.Fail(s) && p.live.Load() > 0 {
			continue // invisible to the caller: re-probe on another slot
		}
		return cache.Miss, err
	}
}

// Probe implements polca.Prober by checking a slot out of the pool for
// the duration of one probe. It blocks while all slots are busy.
func (p *ProberPool) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	return p.run(ctx, func(s *PoolSlot) (cache.Outcome, error) {
		return s.p.Probe(ctx, q)
	})
}

// ProbeFresh implements polca.FreshProber: the checked-out slot re-executes
// the probe, bypassing any result cache below it.
func (p *ProberPool) ProbeFresh(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	return p.run(ctx, func(s *PoolSlot) (cache.Outcome, error) {
		if fp, ok := s.p.(polca.FreshProber); ok {
			return fp.ProbeFresh(ctx, q)
		}
		return s.p.Probe(ctx, q)
	})
}

// ConcurrentProbes implements polca.ConcurrentProber.
func (p *ProberPool) ConcurrentProbes() bool { return len(p.slots) > 1 }

// ProbeBatch implements polca.ProbeBatcher: the queries fan out over the
// pool on one goroutine each, so up to Size() of them execute concurrently
// and the rest wait for a free slot. Reset-rooted probes are independent,
// so results slot into place by index regardless of completion order. The
// batched membership engine (polca.WithBatchedQueries) uses this to group
// the associativity-many eviction probes of one miss.
func (p *ProberPool) ProbeBatch(ctx context.Context, qs [][]blocks.Block) ([]cache.Outcome, error) {
	out := make([]cache.Outcome, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q []blocks.Block) {
			defer wg.Done()
			out[i], errs[i] = p.Probe(ctx, q)
		}(i, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

var (
	_ polca.ConcurrentProber = (*ProberPool)(nil)
	_ polca.FreshProber      = (*ProberPool)(nil)
	_ polca.ProbeBatcher     = (*ProberPool)(nil)
)

// ParallelProber multiplexes reset-rooted probes over a pool of independent
// CPU replicas. A simulated CPU — like the single hardware thread
// CacheQuery pins itself to — is strictly serial, so concurrency has to
// come from replication: every replica is a full (CPU, frontend, backend)
// stack built from the same configuration, and all replicas share one
// ResultStore, so a query answered anywhere is never re-executed.
// polca.Oracle detects the ConcurrentProbes marker and answers batched
// output queries on parallel goroutines.
//
// Health scoring, quarantine and probation re-admission are the embedded
// ProberPool's; ParallelProber adds the replica construction and the
// frontend counter aggregation.
type ParallelProber struct {
	*ProberPool
	probers []*Prober
}

// NewParallelProber pools one prober per replica frontend for one target set
// and reset (build the frontends once with NewReplicaFrontends and reuse
// them across reset candidates — the provisioned backends carry over).
func NewParallelProber(fronts []*Frontend, tgt Target, rst Reset, opts ...PoolOption) (*ParallelProber, error) {
	if len(fronts) == 0 {
		return nil, fmt.Errorf("cachequery: parallel prober needs at least one replica")
	}
	probers := make([]*Prober, len(fronts))
	raw := make([]polca.Prober, len(fronts))
	for i, f := range fronts {
		pr, err := NewProber(f, tgt, rst)
		if err != nil {
			return nil, err
		}
		probers[i] = pr
		raw[i] = pr
	}
	pool, err := NewProberPool(raw, opts...)
	if err != nil {
		return nil, err
	}
	return &ParallelProber{ProberPool: pool, probers: probers}, nil
}

// Replicas returns the pool size as built (before any quarantine).
func (p *ParallelProber) Replicas() int { return p.Size() }

// FrontendStats aggregates the counters of every replica's frontend
// (quarantined replicas included — their pre-quarantine work counts). Only
// call it while no probes are in flight.
func (p *ParallelProber) FrontendStats() FrontendStats {
	var total FrontendStats
	for _, r := range p.probers {
		total.Add(r.f.Stats())
	}
	return total
}
