package cachequery

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/polca"
)

// NewReplicaFrontends builds n frontends over fresh CPU replicas sharing one
// query-result store, and provisions each one's backend for tgt on parallel
// goroutines (provisioning and calibration are themselves the first
// beneficiaries of replication). Replicas built from the same configuration
// and seed answer identically up to latency noise, which repetition voting
// absorbs exactly as it does on a single CPU.
func NewReplicaFrontends(newCPU func() *hw.CPU, opt BackendOptions, tgt Target, n int) ([]*Frontend, error) {
	if n < 1 {
		n = 1
	}
	store := NewResultStore()
	fronts := make([]*Frontend, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fronts[i] = NewFrontendWithStore(newCPU(), opt, store)
			_, errs[i] = fronts[i].Backend(tgt)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return fronts, nil
}

// DefaultQuarantineThreshold is how many consecutive transient failures a
// replica accumulates before the pool quarantines it.
const DefaultQuarantineThreshold = 3

// replica is one pool slot: the probing interface (possibly wrapped by a
// fault injector) plus its health score. fails is only touched by the
// goroutine currently holding the replica, so it needs no atomics.
type replica struct {
	p     polca.Prober
	id    int
	fails int // consecutive transient failures
}

// PoolOption configures a ParallelProber.
type PoolOption func(*ParallelProber)

// WithQuarantineThreshold overrides how many consecutive transient failures
// quarantine a replica; n <= 0 restores DefaultQuarantineThreshold.
func WithQuarantineThreshold(n int) PoolOption {
	return func(p *ParallelProber) {
		if n <= 0 {
			n = DefaultQuarantineThreshold
		}
		p.threshold = n
	}
}

// WithReplicaWrapper interposes wrap between the pool and each replica's
// prober — the hook internal/faulty uses to inject per-replica faults
// (including replica death) under the pool's quarantine logic.
func WithReplicaWrapper(wrap func(i int, p polca.Prober) polca.Prober) PoolOption {
	return func(p *ParallelProber) { p.wrap = wrap }
}

// ParallelProber multiplexes reset-rooted probes over a pool of independent
// CPU replicas, making Probe safe for concurrent use. A simulated CPU — like
// the single hardware thread CacheQuery pins itself to — is strictly
// serial, so concurrency has to come from replication: every replica is a
// full (CPU, frontend, backend) stack built from the same configuration, and
// all replicas share one ResultStore, so a query answered anywhere is never
// re-executed.
//
// Every probe is reset-prefixed, which is what makes pooling sound: replicas
// hold no cross-probe state beyond the shared result cache, so any free
// replica can answer any probe. polca.Oracle detects the ConcurrentProbes
// marker and answers batched output queries on parallel goroutines.
//
// The pool scores replica health: a replica that fails transiently
// threshold-many times in a row is quarantined — removed from the pool for
// good — and the probe that noticed is re-executed on another replica, so a
// dying replica shrinks the pool instead of failing the run. Only when every
// replica is quarantined do probes fail. Non-transient errors (measurement
// nondeterminism, protocol violations, cancellation) propagate immediately:
// they indict the run, not the replica.
type ParallelProber struct {
	pool    chan *replica
	probers []*Prober
	assoc   int
	content []blocks.Block

	threshold int
	wrap      func(int, polca.Prober) polca.Prober

	live        atomic.Int32
	quarantined atomic.Int32
	dead        chan struct{} // closed when the last live replica is quarantined
	deadOnce    sync.Once
}

// NewParallelProber pools one prober per replica frontend for one target set
// and reset (build the frontends once with NewReplicaFrontends and reuse
// them across reset candidates — the provisioned backends carry over).
func NewParallelProber(fronts []*Frontend, tgt Target, rst Reset, opts ...PoolOption) (*ParallelProber, error) {
	if len(fronts) == 0 {
		return nil, fmt.Errorf("cachequery: parallel prober needs at least one replica")
	}
	probers := make([]*Prober, len(fronts))
	for i, f := range fronts {
		pr, err := NewProber(f, tgt, rst)
		if err != nil {
			return nil, err
		}
		probers[i] = pr
	}
	p := &ParallelProber{
		pool:      make(chan *replica, len(probers)),
		probers:   probers,
		assoc:     probers[0].Assoc(),
		content:   probers[0].InitialContent(),
		threshold: DefaultQuarantineThreshold,
		dead:      make(chan struct{}),
	}
	for _, opt := range opts {
		opt(p)
	}
	for i, r := range probers {
		if r.Assoc() != p.assoc {
			return nil, fmt.Errorf("cachequery: replica %d has associativity %d, replica 0 has %d", i, r.Assoc(), p.assoc)
		}
		var pb polca.Prober = r
		if p.wrap != nil {
			pb = p.wrap(i, r)
		}
		p.pool <- &replica{p: pb, id: i}
	}
	p.live.Store(int32(len(probers)))
	return p, nil
}

// Replicas returns the pool size as built (before any quarantine).
func (p *ParallelProber) Replicas() int { return len(p.probers) }

// Live returns how many replicas are still in rotation.
func (p *ParallelProber) Live() int { return int(p.live.Load()) }

// Quarantined returns how many replicas have been quarantined.
func (p *ParallelProber) Quarantined() int { return int(p.quarantined.Load()) }

// Assoc implements polca.Prober.
func (p *ParallelProber) Assoc() int { return p.assoc }

// InitialContent implements polca.Prober.
func (p *ParallelProber) InitialContent() []blocks.Block {
	return append([]blocks.Block(nil), p.content...)
}

// checkout takes a replica out of the pool, waiting until one is free. It
// fails fast when the caller's context is done or the pool has quarantined
// its last replica.
func (p *ParallelProber) checkout(ctx context.Context) (*replica, error) {
	select {
	case r := <-p.pool:
		return r, nil
	default:
	}
	select {
	case r := <-p.pool:
		return r, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.dead:
		return nil, fmt.Errorf("cachequery: all %d replicas quarantined", len(p.probers))
	}
}

// quarantine retires a replica for good: it is not returned to the pool, so
// the pool permanently shrinks by one.
func (p *ParallelProber) quarantine(r *replica) {
	p.quarantined.Add(1)
	if p.live.Add(-1) == 0 {
		p.deadOnce.Do(func() { close(p.dead) })
	}
}

// run executes fn against pool replicas until it succeeds, fails terminally,
// or the transient-failure budget is spent. A replica that pushes its
// consecutive-failure score to the threshold is quarantined and the probe
// transparently re-executes on another replica; below the threshold the
// transient error propagates (the oracle's retry policy backs off and
// re-enters here), so a systemic fault is still visible upstream while a
// single dying replica is not.
func (p *ParallelProber) run(ctx context.Context, fn func(*replica) (cache.Outcome, error)) (cache.Outcome, error) {
	for {
		r, err := p.checkout(ctx)
		if err != nil {
			return cache.Miss, err
		}
		oc, err := fn(r)
		if err == nil {
			r.fails = 0
			p.pool <- r
			return oc, nil
		}
		if !polca.IsTransient(err) {
			p.pool <- r
			return cache.Miss, err
		}
		r.fails++
		if r.fails >= p.threshold {
			p.quarantine(r)
			continue // invisible to the caller: re-probe on another replica
		}
		p.pool <- r
		return cache.Miss, err
	}
}

// Probe implements polca.Prober by checking a replica out of the pool for
// the duration of one probe. It blocks while all replicas are busy.
func (p *ParallelProber) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	return p.run(ctx, func(r *replica) (cache.Outcome, error) {
		return r.p.Probe(ctx, q)
	})
}

// ProbeFresh implements polca.FreshProber: the checked-out replica
// re-executes the probe, bypassing the shared result store's read.
func (p *ParallelProber) ProbeFresh(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	return p.run(ctx, func(r *replica) (cache.Outcome, error) {
		if fp, ok := r.p.(polca.FreshProber); ok {
			return fp.ProbeFresh(ctx, q)
		}
		return r.p.Probe(ctx, q)
	})
}

// ConcurrentProbes implements polca.ConcurrentProber.
func (p *ParallelProber) ConcurrentProbes() bool { return len(p.probers) > 1 }

// ProbeBatch implements polca.ProbeBatcher: the queries fan out over the
// replica pool on one goroutine each, so up to Replicas() of them execute
// concurrently and the rest wait for a free replica. Reset-rooted probes
// are independent, so results slot into place by index regardless of
// completion order. The batched membership engine (polca.WithBatchedQueries)
// uses this to group the associativity-many eviction probes of one miss.
func (p *ParallelProber) ProbeBatch(ctx context.Context, qs [][]blocks.Block) ([]cache.Outcome, error) {
	out := make([]cache.Outcome, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q []blocks.Block) {
			defer wg.Done()
			out[i], errs[i] = p.Probe(ctx, q)
		}(i, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FrontendStats aggregates the counters of every replica's frontend
// (quarantined replicas included — their pre-quarantine work counts). Only
// call it while no probes are in flight.
func (p *ParallelProber) FrontendStats() FrontendStats {
	var total FrontendStats
	for _, r := range p.probers {
		total.Add(r.f.Stats())
	}
	return total
}

var (
	_ polca.ConcurrentProber = (*ParallelProber)(nil)
	_ polca.FreshProber      = (*ParallelProber)(nil)
	_ polca.ProbeBatcher     = (*ParallelProber)(nil)
)
