package cachequery

import (
	"fmt"
	"sync"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/polca"
)

// NewReplicaFrontends builds n frontends over fresh CPU replicas sharing one
// query-result store, and provisions each one's backend for tgt on parallel
// goroutines (provisioning and calibration are themselves the first
// beneficiaries of replication). Replicas built from the same configuration
// and seed answer identically up to latency noise, which repetition voting
// absorbs exactly as it does on a single CPU.
func NewReplicaFrontends(newCPU func() *hw.CPU, opt BackendOptions, tgt Target, n int) ([]*Frontend, error) {
	if n < 1 {
		n = 1
	}
	store := NewResultStore()
	fronts := make([]*Frontend, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fronts[i] = NewFrontendWithStore(newCPU(), opt, store)
			_, errs[i] = fronts[i].Backend(tgt)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return fronts, nil
}

// ParallelProber multiplexes reset-rooted probes over a pool of independent
// CPU replicas, making Probe safe for concurrent use. A simulated CPU — like
// the single hardware thread CacheQuery pins itself to — is strictly
// serial, so concurrency has to come from replication: every replica is a
// full (CPU, frontend, backend) stack built from the same configuration, and
// all replicas share one ResultStore, so a query answered anywhere is never
// re-executed.
//
// Every probe is reset-prefixed, which is what makes pooling sound: replicas
// hold no cross-probe state beyond the shared result cache, so any free
// replica can answer any probe. polca.Oracle detects the ConcurrentProbes
// marker and answers batched output queries on parallel goroutines.
type ParallelProber struct {
	pool    chan *Prober
	probers []*Prober
	assoc   int
	content []blocks.Block
}

// NewParallelProber pools one prober per replica frontend for one target set
// and reset (build the frontends once with NewReplicaFrontends and reuse
// them across reset candidates — the provisioned backends carry over).
func NewParallelProber(fronts []*Frontend, tgt Target, rst Reset) (*ParallelProber, error) {
	if len(fronts) == 0 {
		return nil, fmt.Errorf("cachequery: parallel prober needs at least one replica")
	}
	probers := make([]*Prober, len(fronts))
	for i, f := range fronts {
		pr, err := NewProber(f, tgt, rst)
		if err != nil {
			return nil, err
		}
		probers[i] = pr
	}
	p := &ParallelProber{
		pool:    make(chan *Prober, len(probers)),
		probers: probers,
		assoc:   probers[0].Assoc(),
		content: probers[0].InitialContent(),
	}
	for i, r := range probers {
		if r.Assoc() != p.assoc {
			return nil, fmt.Errorf("cachequery: replica %d has associativity %d, replica 0 has %d", i, r.Assoc(), p.assoc)
		}
		p.pool <- r
	}
	return p, nil
}

// Replicas returns the pool size.
func (p *ParallelProber) Replicas() int { return len(p.probers) }

// Assoc implements polca.Prober.
func (p *ParallelProber) Assoc() int { return p.assoc }

// InitialContent implements polca.Prober.
func (p *ParallelProber) InitialContent() []blocks.Block {
	return append([]blocks.Block(nil), p.content...)
}

// Probe implements polca.Prober by checking a replica out of the pool for
// the duration of one probe. It blocks while all replicas are busy.
func (p *ParallelProber) Probe(q []blocks.Block) (cache.Outcome, error) {
	r := <-p.pool
	defer func() { p.pool <- r }()
	return r.Probe(q)
}

// ProbeFresh implements polca.FreshProber: the checked-out replica
// re-executes the probe, bypassing the shared result store's read.
func (p *ParallelProber) ProbeFresh(q []blocks.Block) (cache.Outcome, error) {
	r := <-p.pool
	defer func() { p.pool <- r }()
	return r.ProbeFresh(q)
}

// ConcurrentProbes implements polca.ConcurrentProber.
func (p *ParallelProber) ConcurrentProbes() bool { return len(p.probers) > 1 }

// ProbeBatch implements polca.ProbeBatcher: the queries fan out over the
// replica pool on one goroutine each, so up to Replicas() of them execute
// concurrently and the rest wait for a free replica. Reset-rooted probes
// are independent, so results slot into place by index regardless of
// completion order. The batched membership engine (polca.WithBatchedQueries)
// uses this to group the associativity-many eviction probes of one miss.
func (p *ParallelProber) ProbeBatch(qs [][]blocks.Block) ([]cache.Outcome, error) {
	out := make([]cache.Outcome, len(qs))
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q []blocks.Block) {
			defer wg.Done()
			r := <-p.pool
			out[i], errs[i] = r.Probe(q)
			p.pool <- r
		}(i, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FrontendStats aggregates the counters of every replica's frontend. Only
// call it while no probes are in flight.
func (p *ParallelProber) FrontendStats() FrontendStats {
	var total FrontendStats
	for _, r := range p.probers {
		total.Add(r.f.Stats())
	}
	return total
}

var (
	_ polca.ConcurrentProber = (*ParallelProber)(nil)
	_ polca.FreshProber      = (*ParallelProber)(nil)
	_ polca.ProbeBatcher     = (*ParallelProber)(nil)
)
