package cachequery

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/mbl"
)

// QueryResult is the outcome of one expanded query: the hit/miss value of
// every '?'-profiled access.
type QueryResult struct {
	Query    mbl.Query
	Outcomes []cache.Outcome
}

// Pattern renders the outcomes like the tool's traces, e.g. "Hit Miss".
func (r QueryResult) Pattern() string {
	parts := make([]string, len(r.Outcomes))
	for i, o := range r.Outcomes {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// FrontendStats counts query-cache effectiveness and backend work, the
// quantities behind the paper's §7.2 cost analysis.
type FrontendStats struct {
	Expanded  int           // queries after MBL expansion
	Executed  int           // queries actually run on the backend
	CacheHits int           // queries answered from the result cache
	Duration  time.Duration // cumulative backend execution time
}

// Frontend expands MBL expressions, routes them to per-set backends, and
// caches results — the Python frontend plus LevelDB layer of the real tool.
type Frontend struct {
	cpu      *hw.CPU
	opt      BackendOptions
	backends map[Target]*Backend
	results  map[string]string // cache key -> encoded outcomes
	useCache bool
	stats    FrontendStats
}

// NewFrontend builds a frontend over a simulated CPU with result caching
// enabled.
func NewFrontend(cpu *hw.CPU, opt BackendOptions) *Frontend {
	return &Frontend{
		cpu:      cpu,
		opt:      opt,
		backends: make(map[Target]*Backend),
		results:  make(map[string]string),
		useCache: true,
	}
}

// SetResultCache toggles the query-result cache (the LevelDB role).
func (f *Frontend) SetResultCache(on bool) { f.useCache = on }

// Stats returns a copy of the accumulated counters.
func (f *Frontend) Stats() FrontendStats { return f.stats }

// CPU exposes the underlying processor.
func (f *Frontend) CPU() *hw.CPU { return f.cpu }

// Backend returns (provisioning on demand) the backend for a target set.
func (f *Frontend) Backend(tgt Target) (*Backend, error) {
	if be, ok := f.backends[tgt]; ok {
		return be, nil
	}
	be, err := NewBackend(f.cpu, tgt, f.opt)
	if err != nil {
		return nil, err
	}
	f.backends[tgt] = be
	return be, nil
}

func cacheKey(tgt Target, q mbl.Query, flushFirst bool) string {
	k := tgt.String() + "|" + q.String()
	if flushFirst {
		k = "F|" + k
	}
	return k
}

func encodeOutcomes(ocs []cache.Outcome) string {
	var sb strings.Builder
	for _, o := range ocs {
		if o == cache.Hit {
			sb.WriteByte('H')
		} else {
			sb.WriteByte('M')
		}
	}
	return sb.String()
}

func decodeOutcomes(s string) []cache.Outcome {
	out := make([]cache.Outcome, len(s))
	for i := range s {
		out[i] = cache.Outcome(s[i] == 'H')
	}
	return out
}

// RunQuery executes one already-expanded query against a target set,
// consulting the result cache first.
func (f *Frontend) RunQuery(tgt Target, q mbl.Query, flushFirst bool) ([]cache.Outcome, error) {
	key := cacheKey(tgt, q, flushFirst)
	if f.useCache {
		if enc, ok := f.results[key]; ok {
			f.stats.CacheHits++
			return decodeOutcomes(enc), nil
		}
	}
	be, err := f.Backend(tgt)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	ocs, err := be.Run(q, 0, flushFirst)
	f.stats.Duration += time.Since(start)
	f.stats.Executed++
	if err != nil {
		return nil, err
	}
	if f.useCache {
		f.results[key] = encodeOutcomes(ocs)
	}
	return ocs, nil
}

// Query expands an MBL expression for the target's associativity and runs
// every resulting query, in expansion order. This is the tool's primary
// entry point (interactive and batch modes are thin wrappers in
// cmd/cachequery).
func (f *Frontend) Query(tgt Target, src string) ([]QueryResult, error) {
	be, err := f.Backend(tgt)
	if err != nil {
		return nil, err
	}
	queries, err := mbl.Expand(src, be.Assoc())
	if err != nil {
		return nil, err
	}
	f.stats.Expanded += len(queries)
	results := make([]QueryResult, 0, len(queries))
	for _, q := range queries {
		ocs, err := f.RunQuery(tgt, q, false)
		if err != nil {
			return nil, err
		}
		results = append(results, QueryResult{Query: q, Outcomes: ocs})
	}
	return results, nil
}

// Batch runs a list of MBL expressions against several sets of one level,
// returning rendered lines — the batch mode used for the Appendix B leader
// scans.
func (f *Frontend) Batch(level hw.Level, slices, sets []int, srcs []string) ([]string, error) {
	var lines []string
	for _, slice := range slices {
		for _, set := range sets {
			tgt := Target{Level: level, Slice: slice, Set: set}
			for _, src := range srcs {
				results, err := f.Query(tgt, src)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", tgt, err)
				}
				for _, r := range results {
					lines = append(lines, fmt.Sprintf("%s\t%s\t%s", tgt, r.Query, r.Pattern()))
				}
			}
		}
	}
	return lines, nil
}

// Targets enumerates every set of a level, optionally restricted to one
// slice (pass slice = -1 for all slices), in a deterministic order.
func (f *Frontend) Targets(level hw.Level, slice int) []Target {
	cfg := f.cpu.Config().Config(level)
	var out []Target
	for s := 0; s < cfg.Slices; s++ {
		if slice >= 0 && s != slice {
			continue
		}
		for i := 0; i < cfg.SetsPerSlice; i++ {
			out = append(out, Target{Level: level, Slice: s, Set: i})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slice != out[j].Slice {
			return out[i].Slice < out[j].Slice
		}
		return out[i].Set < out[j].Set
	})
	return out
}
