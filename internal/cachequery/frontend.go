package cachequery

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/hw"
	"repro/internal/mbl"
	"repro/internal/qstore"
)

// QueryResult is the outcome of one expanded query: the hit/miss value of
// every '?'-profiled access.
type QueryResult struct {
	Query    mbl.Query
	Outcomes []cache.Outcome
}

// Pattern renders the outcomes like the tool's traces, e.g. "Hit Miss".
func (r QueryResult) Pattern() string {
	parts := make([]string, len(r.Outcomes))
	for i, o := range r.Outcomes {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// FrontendStats counts query-cache effectiveness and backend work, the
// quantities behind the paper's §7.2 cost analysis.
type FrontendStats struct {
	Expanded     int           // queries after MBL expansion
	Executed     int           // queries actually run on the backend
	CacheHits    int           // queries answered from the result cache
	Inconclusive int           // vote ties retried with escalated repetitions
	Duration     time.Duration // cumulative backend execution time
}

// Add accumulates another frontend's counters (used to aggregate the
// replicas of a parallel prober into one report).
func (s *FrontendStats) Add(o FrontendStats) {
	s.Expanded += o.Expanded
	s.Executed += o.Executed
	s.CacheHits += o.CacheHits
	s.Inconclusive += o.Inconclusive
	s.Duration += o.Duration
}

// resultStoreStripes is the lock-stripe count of a ResultStore: replica
// pools are typically core-count wide, so a few times that many shards
// keeps collisions rare.
const resultStoreStripes = 32

// resultRouteDepth is how many leading key symbols route a result-store
// key to its shard. The first four symbols (flush flag and target
// coordinates) are near-constant within one learning run, so routing
// folds in the first operation code too.
const resultRouteDepth = 5

// ResultStore is the lock-striped query-result cache (the LevelDB role),
// an exact-match instance of the shared query store (internal/qstore).
// One store may be shared by several frontends, so a query answered on
// one CPU replica of a parallel prober is never re-executed on another —
// and replicas writing results for different queries land on different
// shards instead of serializing on one lock.
//
// Keys are integer sequences — a flush flag, target coordinates, then one
// dense (block id, tag) code per operation — so no string keys are built
// or hashed on the hot path.
type ResultStore struct {
	st *qstore.Store[int32, string]
	n  atomic.Int64 // cached results (CountSet without a full scan)
}

// NewResultStore returns an empty shared result cache.
func NewResultStore() *ResultStore {
	return &ResultStore{st: qstore.New[int32, string](qstore.Options{
		Stripes:    resultStoreStripes,
		Sync:       true,
		RouteDepth: resultRouteDepth,
	})}
}

func (rs *ResultStore) get(key []int32) (string, bool) {
	return rs.st.Get(key)
}

func (rs *ResultStore) put(key []int32, val string) {
	if rs.st.Set(key, val) {
		rs.n.Add(1)
	}
}

// Len returns the number of cached query results.
func (rs *ResultStore) Len() int { return int(rs.n.Load()) }

// Frontend expands MBL expressions, routes them to per-set backends, and
// caches results — the Python frontend plus LevelDB layer of the real tool.
// A frontend drives one CPU and is not safe for concurrent use; concurrency
// comes from pooling several frontends behind a ParallelProber, sharing one
// ResultStore.
type Frontend struct {
	cpu      *hw.CPU
	opt      BackendOptions
	backends map[Target]*Backend
	results  *ResultStore
	useCache bool
	keyBuf   []int32 // scratch for result-store keys (frontends are serial)
	stats    FrontendStats
}

// NewFrontend builds a frontend over a simulated CPU with result caching
// enabled.
func NewFrontend(cpu *hw.CPU, opt BackendOptions) *Frontend {
	return NewFrontendWithStore(cpu, opt, NewResultStore())
}

// NewFrontendWithStore builds a frontend whose query-result cache is the
// given shared store.
func NewFrontendWithStore(cpu *hw.CPU, opt BackendOptions, store *ResultStore) *Frontend {
	return &Frontend{
		cpu:      cpu,
		opt:      opt,
		backends: make(map[Target]*Backend),
		results:  store,
		useCache: true,
	}
}

// SetResultCache toggles the query-result cache (the LevelDB role).
func (f *Frontend) SetResultCache(on bool) { f.useCache = on }

// Stats returns a copy of the accumulated counters.
func (f *Frontend) Stats() FrontendStats { return f.stats }

// CPU exposes the underlying processor.
func (f *Frontend) CPU() *hw.CPU { return f.cpu }

// Backend returns (provisioning on demand) the backend for a target set.
func (f *Frontend) Backend(tgt Target) (*Backend, error) {
	if be, ok := f.backends[tgt]; ok {
		return be, nil
	}
	be, err := NewBackend(f.cpu, tgt, f.opt)
	if err != nil {
		return nil, err
	}
	f.backends[tgt] = be
	return be, nil
}

// storeKey encodes one query as the integer key sequence the ResultStore
// indexes by: a flush flag, the target coordinates, and one interned code
// per operation (dense block id fused with the tag). It fails only on a
// malformed block name, which the backend would reject anyway — the caller
// then simply bypasses the cache.
func (f *Frontend) storeKey(tgt Target, q mbl.Query, flushFirst bool) ([]int32, error) {
	k := f.keyBuf[:0]
	flush := int32(0)
	if flushFirst {
		flush = 1
	}
	k = append(k, flush, int32(tgt.Level), int32(tgt.Slice), int32(tgt.Set))
	for _, op := range q {
		id, err := blocks.Index(op.Block)
		if err != nil {
			return nil, err
		}
		var tag int32
		switch op.Tag {
		case mbl.TagProfile:
			tag = 1
		case mbl.TagFlush:
			tag = 2
		}
		// id <= blocks.MaxIndex, so the fused code cannot overflow int32
		// and distinct (id, tag) pairs never collide.
		k = append(k, int32(id)*3+tag)
	}
	f.keyBuf = k
	return k, nil
}

func encodeOutcomes(ocs []cache.Outcome) string {
	var sb strings.Builder
	for _, o := range ocs {
		if o == cache.Hit {
			sb.WriteByte('H')
		} else {
			sb.WriteByte('M')
		}
	}
	return sb.String()
}

func decodeOutcomes(s string) []cache.Outcome {
	out := make([]cache.Outcome, len(s))
	for i := range s {
		out[i] = cache.Outcome(s[i] == 'H')
	}
	return out
}

// RunQuery executes one already-expanded query against a target set,
// consulting the result cache first.
func (f *Frontend) RunQuery(ctx context.Context, tgt Target, q mbl.Query, flushFirst bool) ([]cache.Outcome, error) {
	return f.runQuery(ctx, tgt, q, flushFirst, true)
}

// RunQueryFresh executes the query unconditionally, bypassing the result
// cache read (the fresh result still lands in the cache). Polca's
// determinism audit depends on it: a cached read would replay the first
// answer and could never expose nondeterminism.
func (f *Frontend) RunQueryFresh(ctx context.Context, tgt Target, q mbl.Query, flushFirst bool) ([]cache.Outcome, error) {
	return f.runQuery(ctx, tgt, q, flushFirst, false)
}

// inconclusiveEscalations bounds how many times a vote-tied measurement is
// retried with a larger repetition count before the tie propagates.
const inconclusiveEscalations = 2

func (f *Frontend) runQuery(ctx context.Context, tgt Target, q mbl.Query, flushFirst, readCache bool) ([]cache.Outcome, error) {
	var key []int32
	if f.useCache {
		if k, err := f.storeKey(tgt, q, flushFirst); err == nil {
			key = k
		}
	}
	if key != nil && readCache {
		if enc, ok := f.results.get(key); ok {
			f.stats.CacheHits++
			return decodeOutcomes(enc), nil
		}
	}
	be, err := f.Backend(tgt)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	reps := f.opt.Reps
	ocs, err := be.Run(ctx, q, reps, flushFirst)
	// A vote tie (only possible with an even repetition count) escalates to
	// more repetitions instead of failing the query: 2k ties re-measure at
	// 2·2k+1 — odd, so the escalated run cannot tie again on the same split.
	for esc := 0; err != nil && errors.Is(err, ErrInconclusive) && esc < inconclusiveEscalations; esc++ {
		f.stats.Inconclusive++
		reps = reps*2 + 1
		ocs, err = be.Run(ctx, q, reps, flushFirst)
	}
	f.stats.Duration += time.Since(start)
	f.stats.Executed++
	if err != nil {
		return nil, err
	}
	if key != nil {
		f.results.put(key, encodeOutcomes(ocs))
	}
	return ocs, nil
}

// Query expands an MBL expression for the target's associativity and runs
// every resulting query, in expansion order. This is the tool's primary
// entry point (interactive and batch modes are thin wrappers in
// cmd/cachequery).
func (f *Frontend) Query(ctx context.Context, tgt Target, src string) ([]QueryResult, error) {
	be, err := f.Backend(tgt)
	if err != nil {
		return nil, err
	}
	queries, err := mbl.Expand(src, be.Assoc())
	if err != nil {
		return nil, err
	}
	f.stats.Expanded += len(queries)
	results := make([]QueryResult, 0, len(queries))
	for _, q := range queries {
		ocs, err := f.RunQuery(ctx, tgt, q, false)
		if err != nil {
			return nil, err
		}
		results = append(results, QueryResult{Query: q, Outcomes: ocs})
	}
	return results, nil
}

// Batch runs a list of MBL expressions against several sets of one level,
// returning rendered lines — the batch mode used for the Appendix B leader
// scans.
func (f *Frontend) Batch(ctx context.Context, level hw.Level, slices, sets []int, srcs []string) ([]string, error) {
	var lines []string
	for _, slice := range slices {
		for _, set := range sets {
			tgt := Target{Level: level, Slice: slice, Set: set}
			for _, src := range srcs {
				results, err := f.Query(ctx, tgt, src)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", tgt, err)
				}
				for _, r := range results {
					lines = append(lines, fmt.Sprintf("%s\t%s\t%s", tgt, r.Query, r.Pattern()))
				}
			}
		}
	}
	return lines, nil
}

// Targets enumerates every set of a level, optionally restricted to one
// slice (pass slice = -1 for all slices), in a deterministic order.
func (f *Frontend) Targets(level hw.Level, slice int) []Target {
	cfg := f.cpu.Config().Config(level)
	var out []Target
	for s := 0; s < cfg.Slices; s++ {
		if slice >= 0 && s != slice {
			continue
		}
		for i := 0; i < cfg.SetsPerSlice; i++ {
			out = append(out, Target{Level: level, Slice: s, Set: i})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slice != out[j].Slice {
			return out[i].Slice < out[j].Slice
		}
		return out[i].Set < out[j].Set
	})
	return out
}
