package cachequery

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/hw"
)

// noisyCPU has deliberately poor latency separation: the L1/L2 gap is only
// ~4 sigma, so single measurements misclassify regularly and majority
// voting across repetitions is load-bearing.
func noisyCPU() hw.CPUConfig {
	cfg := tinyCPU()
	cfg.L1.LatencySigma = 2.0
	cfg.L2.LatencySigma = 3.0
	cfg.L3.LatencySigma = 8.0
	cfg.MemSigma = 30
	return cfg
}

// TestRepetitionVotingSuppressesNoise runs a battery of known-answer
// queries on the noisy CPU: with 9 repetitions every answer must be
// correct, and across the battery the raw single-shot latencies must
// actually have been ambiguous (otherwise the test would prove nothing).
func TestRepetitionVotingSuppressesNoise(t *testing.T) {
	cpu := hw.NewCPU(noisyCPU(), 123)
	opt := testOptions()
	opt.Reps = 9
	opt.CalibrationSamples = 81
	f := NewFrontend(cpu, opt)
	f.SetResultCache(false)
	tgt := Target{Level: hw.L1, Set: 6}

	// Known answers on the 4-way PLRU after the fill '@': resident blocks
	// hit, a fresh block misses.
	wrong := 0
	for i := 0; i < 40; i++ {
		res, err := f.Query(context.Background(), tgt, "@ B? X? C?")
		if err != nil {
			t.Fatal(err)
		}
		want := []cache.Outcome{cache.Hit, cache.Miss, cache.Hit}
		for j, oc := range res[0].Outcomes {
			if oc != want[j] {
				wrong++
			}
		}
	}
	if wrong != 0 {
		t.Errorf("%d misclassifications with 9-way voting", wrong)
	}
}

// TestCalibrationFailsWhenClassesOverlap: when the latency distributions
// overlap completely, calibration must refuse rather than emit a garbage
// threshold.
func TestCalibrationFailsWhenClassesOverlap(t *testing.T) {
	cfg := tinyCPU()
	cfg.L1.HitLatency = 100
	cfg.L2.HitLatency = 100
	cfg.L1.LatencySigma = 0.1
	cfg.L2.LatencySigma = 0.1
	cpu := hw.NewCPU(cfg, 5)
	if _, err := NewBackend(cpu, Target{Level: hw.L1, Set: 0}, testOptions()); err == nil {
		t.Error("calibration succeeded with indistinguishable latency classes")
	}
}
