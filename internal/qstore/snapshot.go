package qstore

// Versioned binary snapshots: Save serializes every recorded (key, value)
// pair; Load verifies and replays them into a store. The format is
//
//	magic "QSNAP" | uvarint version | uvarint degree | uvarint routeDepth
//	uvarint entryCount
//	entryCount × entry
//	uint32 little-endian CRC-32 (IEEE) of all preceding bytes
//
// Entries are emitted in shard order, depth-first, and each key is
// delta-encoded against its predecessor:
//
//	entry = uvarint keep        # symbols shared with the previous key
//	      | uvarint m           # symbols appended after the shared prefix
//	      | m × uvarint symbol
//	      | value               # codec encoding, self-delimiting
//
// Depth-first emission makes the shared prefix the parent's whole key, so
// a snapshot costs O(1) symbols per node instead of O(depth). Transient
// state — epoch marks, caller-side decorations such as parked sessions —
// is not saved; values are reduced to whatever the codec encodes.
//
// Load reads the whole snapshot, checks the checksum before touching the
// store (a truncated or corrupted file is rejected atomically), and
// errors on a version or degree mismatch. Entries merge into the store's
// existing contents; loading into a store with a different stripe count
// or synchronization mode is fine, since every entry is re-routed.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
)

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

var snapMagic = []byte("QSNAP")

// ErrCorrupt is the sentinel every snapshot decoding failure wraps: bad
// magic, version mismatch, truncation, checksum, malformed entry. Warm-start
// callers match it with errors.Is to degrade to a cold run on a damaged
// snapshot file, as opposed to a missing one (fs.ErrNotExist from the
// opener) or an I/O failure.
var ErrCorrupt = errors.New("snapshot corrupt")

// ErrMissing is the sentinel for a snapshot that does not exist at all, as
// opposed to one that exists but is damaged (ErrCorrupt). It aliases
// fs.ErrNotExist so the bare error from opening the file matches it too;
// warm-start callers check the two separately because both degrade to a
// cold run but only corruption deserves a warning.
var ErrMissing = fs.ErrNotExist

// SnapshotError is the error type of every snapshot decoding failure
// (bad magic, version mismatch, truncation, checksum, malformed entry).
// It wraps ErrCorrupt.
type SnapshotError struct{ msg string }

func (e *SnapshotError) Error() string { return "qstore: " + e.msg }

// Unwrap marks every decoding failure as ErrCorrupt.
func (e *SnapshotError) Unwrap() error { return ErrCorrupt }

func snapErrf(format string, args ...any) error {
	return &SnapshotError{msg: fmt.Sprintf(format, args...)}
}

// Codec encodes and decodes one store's value type for snapshots. The
// encoding must be self-delimiting: DecodeValue reports how many bytes it
// consumed.
type Codec[V any] interface {
	// AppendValue appends the encoding of v to dst.
	AppendValue(dst []byte, v V) []byte
	// DecodeValue decodes one value from the front of src, returning it
	// and the number of bytes consumed.
	DecodeValue(src []byte) (V, int, error)
}

// BytesCodec is a Codec for []byte values: uvarint length + raw bytes.
type BytesCodec struct{}

// AppendValue implements Codec.
func (BytesCodec) AppendValue(dst []byte, v []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

// DecodeValue implements Codec.
func (BytesCodec) DecodeValue(src []byte) ([]byte, int, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 || uint64(len(src)-k) < n {
		return nil, 0, snapErrf("truncated byte value")
	}
	out := make([]byte, n)
	copy(out, src[k:])
	return out, k + int(n), nil
}

// StringCodec is a Codec for string values.
type StringCodec struct{}

// AppendValue implements Codec.
func (StringCodec) AppendValue(dst []byte, v string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	return append(dst, v...)
}

// DecodeValue implements Codec.
func (StringCodec) DecodeValue(src []byte) (string, int, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 || uint64(len(src)-k) < n {
		return "", 0, snapErrf("truncated string value")
	}
	return string(src[k : k+int(n)]), k + int(n), nil
}

// Save writes a snapshot of every recorded value to w. Shards are
// acquired one at a time, so a Sync store may be saved while other shards
// stay live; the snapshot is a consistent image of each shard at the
// moment it is visited.
func (s *Store[K, V]) Save(w io.Writer, c Codec[V]) error {
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, snapMagic...)
	buf = binary.AppendUvarint(buf, SnapshotVersion)
	buf = binary.AppendUvarint(buf, uint64(s.degree))
	buf = binary.AppendUvarint(buf, uint64(s.routeDepth))

	var (
		entries int
		body    []byte
		prev    []K // key of the previous emitted entry
		key     []K // DFS key stack
	)
	emit := func(v V) {
		keep := 0
		for keep < len(prev) && keep < len(key) && prev[keep] == key[keep] {
			keep++
		}
		body = binary.AppendUvarint(body, uint64(keep))
		body = binary.AppendUvarint(body, uint64(len(key)-keep))
		for _, a := range key[keep:] {
			body = binary.AppendUvarint(body, uint64(a))
		}
		body = c.AppendValue(body, v)
		prev = append(prev[:0], key...)
		entries++
	}
	for i := range s.shards {
		sh := s.AcquireIdx(i)
		// Iterative DFS over the shard arena, tracking the key stack.
		type frame struct {
			n    int32
			edge int // next dense edge to visit
		}
		stack := []frame{{n: 0}}
		if sh.nodes[0].set {
			emit(sh.nodes[0].val)
		}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			ch := sh.childSlice(f.n)
			if f.edge >= len(ch) {
				stack = stack[:len(stack)-1]
				if len(key) > 0 {
					key = key[:len(key)-1]
				}
				continue
			}
			e := f.edge
			f.edge++
			child := ch[e]
			if child < 0 {
				continue
			}
			var label K
			if sh.dense == nil {
				label = K(e)
			} else {
				label = sh.edges[e]
			}
			key = append(key, label)
			if sh.nodes[child].set {
				emit(sh.nodes[child].val)
			}
			stack = append(stack, frame{n: child})
		}
		key = key[:0]
		// Force a full key on the first entry of the next shard: keys in
		// different shards share no routing prefix by construction, but
		// delta coding must not assume it.
		prev = prev[:0]
		sh.Release()
	}

	buf = binary.AppendUvarint(buf, uint64(entries))
	buf = append(buf, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	buf = append(buf, crc[:]...)
	_, err := w.Write(buf)
	return err
}

// Load reads a snapshot from r and merges its entries into the store.
// The checksum is verified before any entry is applied: a truncated or
// corrupted snapshot leaves the store untouched.
func (s *Store[K, V]) Load(r io.Reader, c Codec[V]) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("qstore: reading snapshot: %w", err)
	}
	if len(data) < len(snapMagic)+4 {
		return snapErrf("snapshot truncated (%d bytes)", len(data))
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	payload := data[:len(data)-4]
	if crc32.ChecksumIEEE(payload) != sum {
		return snapErrf("snapshot checksum mismatch (truncated or corrupt)")
	}
	if string(payload[:len(snapMagic)]) != string(snapMagic) {
		return snapErrf("not a qstore snapshot (bad magic)")
	}
	p := payload[len(snapMagic):]
	version, n := binary.Uvarint(p)
	if n <= 0 {
		return snapErrf("snapshot header truncated")
	}
	p = p[n:]
	if version != SnapshotVersion {
		return snapErrf("unsupported snapshot version %d (want %d)", version, SnapshotVersion)
	}
	degree, n := binary.Uvarint(p)
	if n <= 0 {
		return snapErrf("snapshot header truncated")
	}
	p = p[n:]
	if int(degree) != s.degree {
		return snapErrf("snapshot degree %d does not match store degree %d", degree, s.degree)
	}
	if _, n = binary.Uvarint(p); n <= 0 { // routeDepth: informational
		return snapErrf("snapshot header truncated")
	}
	p = p[n:]
	entries, n := binary.Uvarint(p)
	if n <= 0 {
		return snapErrf("snapshot header truncated")
	}
	p = p[n:]
	// Every entry costs at least three bytes (two key uvarints plus a
	// value byte), so an entry count beyond the remaining payload is
	// malformed — reject it before sizing any allocation by it.
	if entries > uint64(len(p)) {
		return snapErrf("snapshot declares %d entries in %d payload bytes", entries, len(p))
	}

	// Parse everything before applying anything, so a malformed snapshot
	// leaves the store untouched.
	type entry struct {
		key []K
		val V
	}
	parsed := make([]entry, 0, entries)
	var key []K
	for i := uint64(0); i < entries; i++ {
		keep, n := binary.Uvarint(p)
		if n <= 0 {
			return snapErrf("entry %d truncated", i)
		}
		p = p[n:]
		if int(keep) > len(key) {
			return snapErrf("entry %d shares %d symbols, previous key has %d", i, keep, len(key))
		}
		key = key[:keep]
		m, n := binary.Uvarint(p)
		if n <= 0 {
			return snapErrf("entry %d truncated", i)
		}
		p = p[n:]
		for j := uint64(0); j < m; j++ {
			sym, n := binary.Uvarint(p)
			if n <= 0 {
				return snapErrf("entry %d truncated", i)
			}
			p = p[n:]
			key = append(key, K(sym))
		}
		v, used, err := c.DecodeValue(p)
		if err != nil {
			return fmt.Errorf("qstore: entry %d: %w", i, err)
		}
		p = p[used:]
		if !s.InRange(key) {
			return snapErrf("entry %d key out of range for degree %d", i, s.degree)
		}
		parsed = append(parsed, entry{key: append([]K(nil), key...), val: v})
	}
	if len(p) != 0 {
		return snapErrf("%d trailing bytes after %d entries", len(p), entries)
	}
	for _, e := range parsed {
		s.Set(e.key, e.val)
	}
	return nil
}
