package qstore

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

func TestFixedDegreePrefixStore(t *testing.T) {
	st := New[int, int](Options{Degree: 3, Stripes: 3})
	words := Enumerate(3, 4)[1:]
	for i, w := range words {
		if !st.InRange(w) {
			t.Fatalf("word %v reported out of range", w)
		}
		if fresh := st.Set(w, i); !fresh {
			t.Fatalf("word %v not fresh on first set", w)
		}
	}
	for i, w := range words {
		got, ok := st.Get(w)
		if !ok || got != i {
			t.Fatalf("word %v: got (%d, %v), want (%d, true)", w, got, ok, i)
		}
	}
	if _, ok := st.Get([]int{2, 2, 2, 2, 2}); ok {
		t.Fatal("absent word reported present")
	}
	if st.CountSet() != len(words) {
		t.Fatalf("CountSet = %d, want %d", st.CountSet(), len(words))
	}
	if st.InRange([]int{0, 3}) || st.InRange([]int{-1}) {
		t.Fatal("out-of-range symbols accepted")
	}
	// Prefix relationship: all prefixes of a word share its shard.
	w := []int{2, 1, 0, 2}
	sh := st.Acquire(w)
	defer sh.Release()
	n := int32(0)
	for _, a := range w {
		if n = sh.Child(n, a); n < 0 {
			t.Fatalf("prefix walk broke at symbol %d", a)
		}
		if !sh.Has(n) {
			t.Fatal("prefix node has no recorded value")
		}
	}
}

func TestDynamicEdgesStayCompact(t *testing.T) {
	// One legitimately huge raw label must not amplify child arrays: the
	// dense remap sizes edges by distinct labels seen, not by magnitude.
	st := New[int32, struct{}](Options{Degree: 0, Stripes: 1})
	big := int32(26_000_000)
	sh := st.Acquire(nil)
	sh.Ensure([]int32{0, big, 3, big, 7})
	if w := sh.EdgeWidth(); w != 4 {
		t.Fatalf("dense remap holds %d edges, want 4", w)
	}
	for n := 0; n < sh.Len(); n++ {
		if got := len(sh.childSlice(int32(n))); got > 4 {
			t.Fatalf("node %d has %d child slots for 4 distinct edges", n, got)
		}
	}
	sh.Release()
}

func TestEpochMarks(t *testing.T) {
	st := New[int, struct{}](Options{Degree: 2, Stripes: 2})
	words := Enumerate(2, 3)[1:]
	for _, w := range words {
		if !st.InsertMark(w) {
			t.Fatalf("first mark of %v not fresh", w)
		}
	}
	for _, w := range words {
		if st.InsertMark(w) {
			t.Fatalf("second mark of %v fresh", w)
		}
	}
	st.ResetMarks()
	for _, w := range words {
		if !st.InsertMark(w) {
			t.Fatalf("mark of %v not fresh after reset", w)
		}
	}
}

func TestRouteDeterministicAndPrefixConsistent(t *testing.T) {
	st := New[int32, string](Options{Degree: 0, Stripes: 7, RouteDepth: 4})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		key := make([]int32, 1+rng.Intn(8))
		for j := range key {
			key[j] = int32(rng.Intn(5))
		}
		if st.Route(key) != st.Route(key) {
			t.Fatal("routing not deterministic")
		}
		ext := append(append([]int32(nil), key...), 1, 2, 3, 4)
		if len(key) >= st.RouteDepth() && st.Route(key) != st.Route(ext) {
			t.Fatal("keys sharing the routing prefix routed to different shards")
		}
	}
}

func TestConcurrentStripedStore(t *testing.T) {
	st := New[int, int](Options{Degree: 5, Stripes: 5, Sync: true})
	words := Enumerate(5, 4)[1:]
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, w := range words {
				if g%2 == 0 {
					st.Set(w, i)
				} else if v, ok := st.Get(w); ok && v != i {
					t.Errorf("word %v: read %d, want %d", w, v, i)
				}
			}
		}(g)
	}
	wg.Wait()
	for i, w := range words {
		if v, ok := st.Get(w); !ok || v != i {
			t.Fatalf("word %v: got (%d, %v) after concurrent writes", w, v, ok)
		}
	}
}

func TestWordsHelpers(t *testing.T) {
	if got := Concat([]int{1, 2}, nil, []int{3}); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Concat = %v", got)
	}
	words := Enumerate(2, 2)
	if len(words) != 1+2+4 {
		t.Fatalf("Enumerate(2,2) returned %d words", len(words))
	}
	if !reflect.DeepEqual(words[0], []int{}) || !reflect.DeepEqual(words[len(words)-1], []int{1, 1}) {
		t.Fatalf("Enumerate order unexpected: %v", words)
	}
}
