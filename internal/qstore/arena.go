package qstore

// Arena-backed child storage. Nodes no longer own a heap-allocated child
// slice each; a shard keeps one flat []int32 arena per block-size class
// and every node records an offset into its class. Handles (node ids and
// child offsets) are stable across arena growth — growth appends, never
// moves — so Val/Child pointers into the node arena obey the same
// invalidation rules as before.
//
// Freed blocks (a dynamic node outgrowing its class, a Store.Reset) are
// returned to a freebits-style two-level bitmap (bits + summary, after
// bnclabs/gostore's malloc) and handed back by the next allocation, so
// repeated learn/reset cycles reuse capacity instead of re-allocating the
// trie and feeding the garbage collector.
//
// Fixed-degree stores have exactly one class (block = full fanout).
// Dynamic stores round each child array up to a power of two; a node's
// class is derivable from its child count, so the node itself only carries
// (offset, count).

import "math/bits"

// freebits is a two-level bitmap of free block indices within one class:
// bits holds one bit per block ever appended (1 = free), summary one bit
// per bits word (1 = word has any free block). Blocks enter allocated and
// are only listed when freed.
type freebits struct {
	bits    []uint64
	summary []uint64
	nblocks int32
}

// grow accounts for one freshly appended (allocated) block.
func (f *freebits) grow() {
	f.nblocks++
	if int(f.nblocks+63)>>6 > len(f.bits) {
		f.bits = append(f.bits, 0)
	}
	if (len(f.bits)+63)>>6 > len(f.summary) {
		f.summary = append(f.summary, 0)
	}
}

// put returns block i to the free set.
func (f *freebits) put(i int32) {
	w := i >> 6
	f.bits[w] |= 1 << uint(i&63)
	f.summary[w>>6] |= 1 << uint(w&63)
}

// take removes and returns the lowest free block, or -1.
func (f *freebits) take() int32 {
	for si, sw := range f.summary {
		if sw == 0 {
			continue
		}
		w := si<<6 + bits.TrailingZeros64(sw)
		b := bits.TrailingZeros64(f.bits[w])
		f.bits[w] &^= 1 << uint(b)
		if f.bits[w] == 0 {
			f.summary[si] &^= 1 << uint(w&63)
		}
		return int32(w<<6 + b)
	}
	return -1
}

// freeAll marks every appended block free (Store.Reset).
func (f *freebits) freeAll() {
	for w := range f.bits {
		n := int(f.nblocks) - w<<6
		switch {
		case n <= 0:
			f.bits[w] = 0
		case n >= 64:
			f.bits[w] = ^uint64(0)
		default:
			f.bits[w] = 1<<uint(n) - 1
		}
		if f.bits[w] != 0 {
			f.summary[w>>6] |= 1 << uint(w&63)
		}
	}
}

// classOf returns the size class of a child array holding length entries:
// class 0 for fixed-degree shards, ceil(log2(length)) otherwise. Growing a
// child count within its class capacity never changes the class, so
// (offset, length) alone locates a block.
func (sh *Shard[K, V]) classOf(length int32) int {
	if sh.st.degree != 0 {
		return 0
	}
	return bits.Len32(uint32(length - 1))
}

// blockSize returns the entry count of class c's blocks.
func (sh *Shard[K, V]) blockSize(c int) int32 {
	if sh.st.degree != 0 {
		return int32(sh.st.degree)
	}
	return 1 << uint(c)
}

// childSlice returns node n's child entries (nil when none) as a view into
// the shard arena, valid until the block is freed.
func (sh *Shard[K, V]) childSlice(n int32) []int32 {
	nd := &sh.nodes[n]
	if nd.childOff < 0 {
		return nil
	}
	c := sh.classOf(nd.childLen)
	return sh.arenas[c][nd.childOff : nd.childOff+nd.childLen]
}

// allocBlock returns the offset of a -1-initialized block of class c,
// reusing a freed block when the bitmap has one.
func (sh *Shard[K, V]) allocBlock(c int) int32 {
	for len(sh.arenas) <= c {
		sh.arenas = append(sh.arenas, nil)
		sh.free = append(sh.free, freebits{})
	}
	size := sh.blockSize(c)
	if idx := sh.free[c].take(); idx >= 0 {
		off := idx * size
		blk := sh.arenas[c][off : off+size]
		for i := range blk {
			blk[i] = -1
		}
		return off
	}
	off := int32(len(sh.arenas[c]))
	a := sh.arenas[c]
	for i := int32(0); i < size; i++ {
		a = append(a, -1)
	}
	sh.arenas[c] = a
	sh.free[c].grow()
	return off
}

// freeBlock returns the block at off of class c to the bitmap.
func (sh *Shard[K, V]) freeBlock(c int, off int32) {
	sh.free[c].put(off / sh.blockSize(c))
}

// ArenaInts returns the shard's total arena capacity in int32 entries
// (free and allocated alike) — the figure leak checks watch for a plateau.
func (sh *Shard[K, V]) ArenaInts() int {
	total := 0
	for _, a := range sh.arenas {
		total += len(a)
	}
	return total
}

// ArenaInts sums ArenaInts over all shards.
func (s *Store[K, V]) ArenaInts() int {
	total := 0
	for i := range s.shards {
		sh := s.AcquireIdx(i)
		total += sh.ArenaInts()
		sh.Release()
	}
	return total
}
