package qstore

// Shared word helpers of the query-store subsystem. Every client of the
// store manipulates the same kind of keys — integer words — so the
// concatenation and enumeration helpers the learner's engines used to
// duplicate live here, next to the store they feed.

// Concat concatenates integer words into a freshly allocated word.
func Concat(parts ...[]int) []int {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	out := make([]int, 0, n)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Enumerate returns all words over symbols 0..degree-1 of length 0..k, in
// deterministic (length-then-lexicographic) order.
func Enumerate(degree, k int) [][]int {
	words := [][]int{{}}
	level := [][]int{{}}
	for d := 0; d < k; d++ {
		var next [][]int
		for _, w := range level {
			for a := 0; a < degree; a++ {
				next = append(next, append(append([]int(nil), w...), a))
			}
		}
		words = append(words, next...)
		level = next
	}
	return words
}
