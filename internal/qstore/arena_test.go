package qstore

import (
	"bytes"
	"sync"
	"testing"
)

// --- bloom semantics ---------------------------------------------------

// The filter must never answer "absent" for a recorded key, whatever mix
// of epoch resets and mark traffic happens around the values.
func TestBloomNoFalseNegativesAcrossEpochReset(t *testing.T) {
	st := New[int, int](Options{Degree: 3, Stripes: 4, Bloom: true})
	words := Enumerate(3, 6)[1:]
	for i, w := range words {
		if i%2 == 0 {
			st.Set(w, i)
		}
	}
	check := func(stage string) {
		t.Helper()
		for i, w := range words {
			v, ok := st.Get(w)
			if i%2 == 0 {
				if !ok || v != i {
					t.Fatalf("%s: Get(%v) = (%d, %v), want (%d, true)", stage, w, v, ok, i)
				}
			} else if ok {
				t.Fatalf("%s: Get(%v) found a value for an unset key", stage, w)
			}
		}
	}
	check("initial")
	// Epoch marks are transient and must not disturb the value filter in
	// either direction: inserting marks for unset keys must not make Get
	// find values, and resetting epochs must not lose recorded ones.
	for _, w := range words {
		st.InsertMark(w)
	}
	st.ResetMarks()
	check("after marks+reset")
	st.ResetMarks()
	st.ResetMarks()
	check("after repeated reset")
}

func TestBloomRebuiltOnSnapshotLoad(t *testing.T) {
	src := New[int, string](Options{Degree: 4, Stripes: 2})
	words := Enumerate(4, 4)[1:]
	for i, w := range words {
		if i%3 == 0 {
			src.Set(w, "v")
		}
	}
	var buf bytes.Buffer
	if err := src.Save(&buf, StringCodec{}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Load into a bloom-equipped store: entries replay through Set, so the
	// filter must cover every snapshotted key with no false negatives.
	dst := New[int, string](Options{Degree: 4, Stripes: 3, Bloom: true})
	if err := dst.Load(bytes.NewReader(buf.Bytes()), StringCodec{}); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i, w := range words {
		_, ok := dst.Get(w)
		if want := i%3 == 0; ok != want {
			t.Fatalf("after load, Get(%v) = %v, want %v", w, ok, want)
		}
	}
}

func TestBloomConcurrentStripedInsert(t *testing.T) {
	// Concurrent writers on a Sync striped store: the per-shard filters are
	// maintained under the shard locks, so -race must stay quiet and no
	// recorded key may be lost.
	st := New[int, int](Options{Degree: 5, Stripes: 8, Sync: true, Bloom: true})
	words := Enumerate(5, 5)[1:]
	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(words); i += workers {
				st.Set(words[i], i)
				if _, ok := st.Get(words[i]); !ok {
					t.Errorf("Get(%v) missed a just-set key", words[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for i, w := range words {
		if v, ok := st.Get(w); !ok || v != i {
			t.Fatalf("Get(%v) = (%d, %v), want (%d, true)", w, v, ok, i)
		}
	}
}

// --- arena semantics ---------------------------------------------------

// Node handles and recorded values must survive arbitrary arena growth:
// blocks are appended or reallocated per node, never moved under a live id.
func TestArenaHandleStabilityAcrossGrowth(t *testing.T) {
	st := New[int32, int](Options{Degree: 0, Stripes: 1})
	sh := st.Acquire(nil)
	defer sh.Release()
	// Interleave: pin a handle per key, then keep growing other nodes'
	// child arrays (forcing class reallocations) and re-check every pin.
	type pin struct {
		key []int32
		n   int32
	}
	var pins []pin
	for i := int32(0); i < 40; i++ {
		key := []int32{i % 4, i, i * 7}
		n := sh.Ensure(key)
		sh.Put(n, int(i))
		pins = append(pins, pin{key: key, n: n})
		// Widen an early node's fanout step by step so its child block hops
		// through size classes 1, 2, 4, 8, ... while the pins stay live.
		sh.Ensure([]int32{0, 1000 + i})
		for _, p := range pins {
			if got := sh.Find(p.key); got != p.n {
				t.Fatalf("after growth %d, Find(%v) = node %d, want %d", i, p.key, got, p.n)
			}
			if !sh.Has(p.n) || *sh.Val(p.n) != int(p.key[1]) {
				t.Fatalf("after growth %d, node %d lost its value", i, p.n)
			}
		}
	}
}

func TestArenaFreebitsReuseAfterReset(t *testing.T) {
	st := New[int, int](Options{Degree: 4, Stripes: 2})
	words := Enumerate(4, 5)[1:]
	fill := func() {
		for i, w := range words {
			st.Set(w, i)
		}
	}
	fill()
	grown := st.ArenaInts()
	if grown == 0 {
		t.Fatal("no arena capacity after fill")
	}
	st.Reset()
	if n := st.CountSet(); n != 0 {
		t.Fatalf("%d values survive Reset", n)
	}
	if got := st.ArenaInts(); got != grown {
		t.Fatalf("Reset changed arena capacity: %d -> %d", grown, got)
	}
	// Refill: the same key population must be served entirely from freed
	// blocks, with zero new arena capacity.
	fill()
	if got := st.ArenaInts(); got != grown {
		t.Fatalf("refill after Reset grew the arena: %d -> %d", grown, got)
	}
	for i, w := range words {
		if v, ok := st.Get(w); !ok || v != i {
			t.Fatalf("after reuse, Get(%v) = (%d, %v), want (%d, true)", w, v, ok, i)
		}
	}
}

func TestArenaLengthPlateausAcrossCycles(t *testing.T) {
	// The leak check: repeated fill/reset cycles — the shape of repeated
	// learn runs against one warm store — must plateau in arena capacity
	// after the first cycle, not creep.
	st := New[int, int](Options{Degree: 3, Stripes: 4, Sync: true, Bloom: true})
	words := Enumerate(3, 7)[1:]
	var after1 int
	for cycle := 0; cycle < 6; cycle++ {
		for i, w := range words {
			st.Set(w, cycle*len(words)+i)
		}
		for _, w := range words {
			st.InsertMark(w)
		}
		if cycle == 0 {
			after1 = st.ArenaInts()
		} else if got := st.ArenaInts(); got != after1 {
			t.Fatalf("cycle %d arena capacity %d, want plateau at %d", cycle, got, after1)
		}
		st.Reset()
	}
}

func TestDynamicClassReallocationFreesOldBlocks(t *testing.T) {
	// A dynamic node growing through size classes must hand its outgrown
	// blocks back: re-growing a second node of the same shape after Reset
	// must not enlarge the arena.
	st := New[int32, struct{}](Options{Degree: 0, Stripes: 1})
	grow := func() {
		sh := st.Acquire(nil)
		for e := int32(0); e < 33; e++ { // classes 1<<0 .. 1<<6
			sh.Ensure([]int32{e})
		}
		sh.Release()
	}
	grow()
	cap1 := st.ArenaInts()
	st.Reset()
	grow()
	if got := st.ArenaInts(); got != cap1 {
		t.Fatalf("second growth cycle changed arena capacity: %d -> %d", cap1, got)
	}
}
