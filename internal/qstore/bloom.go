package qstore

// Per-shard blocked bloom filter, after RocksDB's cache-locality variant:
// a key hashes to one 64-byte line and all probe bits land inside that
// line, so a cold lookup costs one hash, one line, and at most probes bit
// tests — no trie descent, no pointer chase. The filter over-approximates
// the set of keys recorded through Store.Set; Get consults it under the
// shard lock before descending, so "definitely absent" answers return
// after a single cache-line touch.
//
// The filter tracks recorded values only. Epoch marks (InsertMark /
// ResetMarks) and shard-level decorations bypass it by design: marks are
// transient and never answered by Get. Store.Reset clears it alongside
// the nodes; snapshot Load rebuilds it for free, because entries replay
// through Store.Set.

const (
	bloomLog2Lines = 6 // 64 lines of 512 bits = 4 KiB per shard
	bloomProbes    = 6
)

type shardBloom struct {
	lineMask uint32
	data     []uint32 // lineCount * 16 words; one line = 16 words = 64 bytes
}

func newShardBloom() *shardBloom {
	lines := uint32(1) << bloomLog2Lines
	return &shardBloom{lineMask: lines - 1, data: make([]uint32, lines*16)}
}

func (b *shardBloom) clear() {
	for i := range b.data {
		b.data[i] = 0
	}
}

// add inserts hash h. Probe bits are driven by the rotated-delta schedule
// of the reference implementation, all within one 512-bit line.
func (b *shardBloom) add(h uint32) {
	base := (h & b.lineMask) * 16
	delta := h>>17 | h<<15
	for i := 0; i < bloomProbes; i++ {
		h += delta
		bit := h & 511
		b.data[base+bit>>5] |= 1 << (bit & 31)
	}
}

// mayContain reports whether h could have been added: false means
// definitely absent, true means descend the trie.
func (b *shardBloom) mayContain(h uint32) bool {
	base := (h & b.lineMask) * 16
	delta := h>>17 | h<<15
	for i := 0; i < bloomProbes; i++ {
		h += delta
		bit := h & 511
		if b.data[base+bit>>5]&(1<<(bit&31)) == 0 {
			return false
		}
	}
	return true
}

// hashKey folds a key's symbols into the 32-bit filter hash.
func hashKey[K Key](key []K) uint32 {
	h := uint64(0xcbf29ce484222325)
	for _, a := range key {
		h ^= uint64(a) + 1
		h *= 0x100000001b3
	}
	return uint32(h ^ h>>32)
}
