// Package qstore is the repository's unified query-store subsystem: one
// generic, lock-striped, shard-per-subtree prefix-trie store behind every
// memo layer of the learning stack. The learner's output-query memo and
// dedup sets, Polca's policy-output and probe memos, and CacheQuery's
// query-result cache (the LevelDB role) are all instances of the same
// Store, differing only in key type, per-node payload, and concurrency
// options.
//
// # Shard layout
//
// A Store partitions its key space into shards by the leading RouteDepth
// symbols of each key: every key whose routing prefix hashes to shard i
// lives entirely inside shard i's node arena, as a full path from that
// shard's local root (the local empty prefix). Each shard carries its own
// mutex, so concurrent operations on keys in different subtrees never
// contend — this is what lets batched oracle workers record answers in
// parallel where a single store-wide mutex would serialize them.
//
// With RouteDepth == 1 (the default) every non-empty prefix of a key
// routes to the key's own shard, so prefix walks — answer a query from
// its longest recorded prefix — are well-defined entirely within one
// shard, under one lock acquisition. Stores routed deeper (RouteDepth >
// 1) spread keys more evenly when leading symbols are near-constant (the
// CacheQuery result store's target coordinates), at the price of
// supporting exact-match access only.
//
// # Edges
//
// Edge labels are small non-negative integers. A store with a fixed
// Degree indexes child slices directly by symbol; a dynamic store
// (Degree == 0) interns raw labels per shard into dense edge ids in
// first-use order, so one legitimately huge label (a high block-universe
// index) cannot amplify every node's child array.
//
// # Epoch marks
//
// Every node carries an epoch stamp, turning any store into a reusable
// dedup set: ResetMarks empties the set in O(1), Mark/InsertMark report
// first insertion. Marks are transient — they are not snapshotted.
//
// # Values
//
// Nodes hold a value of the store's payload type V plus a "set" flag.
// Val returns a pointer into the shard's arena so callers can decorate
// nodes in place (Polca parks live simulator sessions and LRU links in
// its payload); such decorations are the caller's to maintain and are
// skipped by snapshots. Arena pointers are invalidated by the next
// Extend/Ensure on the same shard — re-read instead of holding them
// across inserts.
package qstore

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Key is the symbol type of a store's keys: words over small non-negative
// integers (input symbols, dense block ids, interned codes).
type Key interface{ ~int | ~int32 | ~int64 }

// Options configures a Store.
type Options struct {
	// Degree fixes the edge fanout: symbols are 0..Degree-1 and child
	// slices are indexed directly. 0 selects dynamic edges, interned
	// per shard into dense ids in first-use order.
	Degree int
	// Stripes is the number of lock-striped shards. <= 1 collapses the
	// store to a single shard (one lock — the pre-striping behaviour).
	Stripes int
	// Sync makes Acquire lock the shard. Leave false for stores owned
	// by a single goroutine (the serial learner's memo): operations
	// then cost no atomics beyond the epoch read.
	Sync bool
	// RouteDepth is how many leading symbols route a key to its shard
	// (default 1). Prefix walks require 1; exact-match stores may route
	// deeper to spread keys whose leading symbols are near-constant.
	RouteDepth int
	// Bloom attaches a per-shard blocked bloom filter consulted by Get
	// before trie descent, so cold lookups cost one hash probe. The
	// filter tracks keys recorded through Store.Set (snapshot Load
	// included); stores whose values are written through shard-level
	// Put/SetHas bypass it and must leave Bloom off, or Get would
	// miss their keys.
	Bloom bool
}

// node is one key prefix in a shard's arena. Children live in the shard's
// flat child arena (see arena.go): childOff is the block offset in the
// node's size class, childLen the number of valid entries, and
// childOff < 0 means no children yet.
type node[V any] struct {
	childOff int32
	childLen int32
	mark     uint32 // epoch stamp (set membership)
	set      bool   // val has been recorded
	val      V
}

// Shard is one lock-striped subtree of a Store. Node ids are local to the
// shard; node 0 is the shard's root, standing for the empty prefix. All
// methods require the shard to be held (Acquire on a Sync store; by the
// owning goroutine otherwise).
type Shard[K Key, V any] struct {
	mu     sync.Mutex
	st     *Store[K, V]
	idx    int
	dense  map[K]int32 // raw edge label -> dense id (dynamic stores only)
	edges  []K         // dense id -> raw edge label (dynamic stores only)
	nodes  []node[V]
	arenas [][]int32  // child blocks, one flat arena per size class
	free   []freebits // freed blocks per class, for reuse
	bloom  *shardBloom
}

// Store is a sharded prefix-trie store. See the package comment for the
// layout; New for construction.
type Store[K Key, V any] struct {
	degree     int
	routeDepth int
	sync       bool
	epoch      atomic.Uint32
	shards     []Shard[K, V]
}

// New builds an empty store.
func New[K Key, V any](opt Options) *Store[K, V] {
	if opt.Stripes < 1 {
		opt.Stripes = 1
	}
	if opt.RouteDepth < 1 {
		opt.RouteDepth = 1
	}
	if opt.Degree < 0 {
		panic(fmt.Sprintf("qstore: negative degree %d", opt.Degree))
	}
	s := &Store[K, V]{
		degree:     opt.Degree,
		routeDepth: opt.RouteDepth,
		sync:       opt.Sync,
		shards:     make([]Shard[K, V], opt.Stripes),
	}
	s.epoch.Store(1)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.st = s
		sh.idx = i
		sh.nodes = []node[V]{{childOff: -1}}
		if opt.Degree == 0 {
			sh.dense = make(map[K]int32)
		}
		if opt.Bloom {
			sh.bloom = newShardBloom()
		}
	}
	return s
}

// Degree returns the fixed edge fanout (0 for dynamic stores).
func (s *Store[K, V]) Degree() int { return s.degree }

// Stripes returns the number of shards.
func (s *Store[K, V]) Stripes() int { return len(s.shards) }

// RouteDepth returns the number of leading symbols that route a key.
func (s *Store[K, V]) RouteDepth() int { return s.routeDepth }

// InRange reports whether every symbol of key is a valid edge label of a
// fixed-degree store. Dynamic stores accept any label.
func (s *Store[K, V]) InRange(key []K) bool {
	if s.degree == 0 {
		return true
	}
	for _, a := range key {
		if int64(a) < 0 || int64(a) >= int64(s.degree) {
			return false
		}
	}
	return true
}

// route returns the shard index of key: a mix of its leading
// min(RouteDepth, len) symbols. The empty key routes to shard 0.
func (s *Store[K, V]) route(key []K) int {
	n := len(s.shards)
	if n == 1 || len(key) == 0 {
		return 0
	}
	if s.routeDepth == 1 {
		return int(uint64(key[0]) % uint64(n))
	}
	d := s.routeDepth
	if d > len(key) {
		d = len(key)
	}
	h := uint64(0)
	for _, a := range key[:d] {
		h = h*0x9E3779B97F4A7C15 + uint64(a) + 1
	}
	return int(h % uint64(n))
}

// Route returns the shard index of key without acquiring it.
func (s *Store[K, V]) Route(key []K) int { return s.route(key) }

// Acquire returns the shard owning key, locked when the store is Sync.
// Every key sharing key's routing prefix — for RouteDepth 1, every key
// with the same first symbol, including all of key's non-empty prefixes —
// lives in the returned shard. Callers must Release.
func (s *Store[K, V]) Acquire(key []K) *Shard[K, V] {
	return s.AcquireIdx(s.route(key))
}

// AcquireIdx acquires shard i directly (iteration, snapshots, stats).
func (s *Store[K, V]) AcquireIdx(i int) *Shard[K, V] {
	sh := &s.shards[i]
	if s.sync {
		sh.mu.Lock()
	}
	return sh
}

// Release unlocks the shard on a Sync store (no-op otherwise).
func (sh *Shard[K, V]) Release() {
	if sh.st.sync {
		sh.mu.Unlock()
	}
}

// Index returns the shard's index, e.g. for caller-side per-shard
// decorations (Polca's parked-session LRU lists).
func (sh *Shard[K, V]) Index() int { return sh.idx }

// Child returns the child of n along edge a, or -1 when absent.
func (sh *Shard[K, V]) Child(n int32, a K) int32 {
	var e int32
	if sh.dense == nil {
		if int64(a) < 0 || int64(a) >= int64(sh.st.degree) {
			return -1
		}
		e = int32(a)
	} else {
		var ok bool
		if e, ok = sh.dense[a]; !ok {
			return -1
		}
	}
	nd := &sh.nodes[n]
	if nd.childOff < 0 || e >= nd.childLen {
		return -1
	}
	return sh.arenas[sh.classOf(nd.childLen)][nd.childOff+e]
}

// Extend returns the child of n along edge a, creating it if absent.
func (sh *Shard[K, V]) Extend(n int32, a K) int32 {
	var e int32
	if sh.dense == nil {
		if int64(a) < 0 || int64(a) >= int64(sh.st.degree) {
			panic(fmt.Sprintf("qstore: edge %d out of range for degree %d", int64(a), sh.st.degree))
		}
		e = int32(a)
	} else {
		var ok bool
		if e, ok = sh.dense[a]; !ok {
			e = int32(len(sh.edges))
			sh.dense[a] = e
			sh.edges = append(sh.edges, a)
		}
	}
	// Fixed-degree stores allocate the full fanout on first use; dynamic
	// stores grow to the power-of-two class covering the edges seen, and
	// blocks outgrown by reallocation return to the freebits bitmap.
	want := e + 1
	if sh.dense == nil {
		want = int32(sh.st.degree)
	}
	if nd := &sh.nodes[n]; nd.childOff < 0 {
		nd.childOff = sh.allocBlock(sh.classOf(want))
		nd.childLen = want
	} else if e >= nd.childLen {
		oldClass := sh.classOf(nd.childLen)
		newClass := sh.classOf(want)
		if newClass != oldClass {
			off := sh.allocBlock(newClass)
			nd = &sh.nodes[n] // arena append does not move nodes, but re-read for clarity
			copy(sh.arenas[newClass][off:off+nd.childLen], sh.arenas[oldClass][nd.childOff:nd.childOff+nd.childLen])
			sh.freeBlock(oldClass, nd.childOff)
			nd.childOff = off
		}
		// Entries between the old and new length are -1 already: blocks
		// are -1-initialized at allocation and never shrink.
		nd.childLen = want
	}
	nd := &sh.nodes[n]
	slot := nd.childOff + e
	class := sh.classOf(nd.childLen)
	if c := sh.arenas[class][slot]; c != -1 {
		return c
	}
	id := int32(len(sh.nodes))
	sh.nodes = append(sh.nodes, node[V]{childOff: -1})
	sh.arenas[class][slot] = id
	return id
}

// Find walks key from the shard's root, returning its node or -1.
func (sh *Shard[K, V]) Find(key []K) int32 {
	n := int32(0)
	for _, a := range key {
		if n = sh.Child(n, a); n < 0 {
			return -1
		}
	}
	return n
}

// Ensure walks key from the shard's root, creating the path as needed.
func (sh *Shard[K, V]) Ensure(key []K) int32 {
	n := int32(0)
	for _, a := range key {
		n = sh.Extend(n, a)
	}
	return n
}

// Has reports whether node n holds a recorded value.
func (sh *Shard[K, V]) Has(n int32) bool { return sh.nodes[n].set }

// Val returns a pointer to n's value in the arena, whether or not it is
// recorded — callers decorate values in place. The pointer is invalidated
// by the next Extend/Ensure on this shard.
func (sh *Shard[K, V]) Val(n int32) *V { return &sh.nodes[n].val }

// Put records v at n, reporting whether the node was previously unset.
func (sh *Shard[K, V]) Put(n int32, v V) bool {
	fresh := !sh.nodes[n].set
	sh.nodes[n].val = v
	sh.nodes[n].set = true
	return fresh
}

// SetHas marks n's value as recorded after in-place mutation through Val.
func (sh *Shard[K, V]) SetHas(n int32) { sh.nodes[n].set = true }

// Mark adds n to the current epoch's set, reporting true on first insert.
func (sh *Shard[K, V]) Mark(n int32) bool {
	ep := sh.st.epoch.Load()
	if sh.nodes[n].mark == ep {
		return false
	}
	sh.nodes[n].mark = ep
	return true
}

// Len returns the shard's node count (including its root).
func (sh *Shard[K, V]) Len() int { return len(sh.nodes) }

// EdgeWidth returns the number of distinct dense edges the shard has
// interned (dynamic stores; the fixed degree otherwise).
func (sh *Shard[K, V]) EdgeWidth() int {
	if sh.dense == nil {
		return sh.st.degree
	}
	return len(sh.edges)
}

// ResetMarks starts a new epoch, emptying every shard's mark set in O(1).
// Callers must not reset concurrently with marking. Recorded values — and
// any bloom filter tracking them — are untouched.
func (s *Store[K, V]) ResetMarks() { s.epoch.Add(1) }

// Reset empties the store — values, marks, interned edges, bloom filters —
// while retaining capacity: every child block returns to its shard's
// freebits bitmap and the node arrays keep their backing arrays, so the
// next fill cycle reuses what this one allocated. Truncated node slots are
// zeroed so caller-side decorations (parked sessions) are released to the
// garbage collector. Callers must not reset concurrently with any other
// operation.
func (s *Store[K, V]) Reset() {
	s.epoch.Add(1)
	for i := range s.shards {
		sh := s.AcquireIdx(i)
		for c := range sh.free {
			sh.free[c].freeAll()
		}
		for j := range sh.nodes {
			sh.nodes[j] = node[V]{childOff: -1}
		}
		sh.nodes = sh.nodes[:1]
		if sh.dense != nil {
			clear(sh.dense)
			sh.edges = sh.edges[:0]
		}
		if sh.bloom != nil {
			sh.bloom.clear()
		}
		sh.Release()
	}
}

// Get returns the recorded value at key, acquiring the shard itself. On a
// bloom-equipped store, a definitely-absent key returns after one hash
// probe of the shard's filter, with no trie descent.
func (s *Store[K, V]) Get(key []K) (V, bool) {
	sh := s.Acquire(key)
	defer sh.Release()
	if sh.bloom != nil && !sh.bloom.mayContain(hashKey(key)) {
		var zero V
		return zero, false
	}
	n := sh.Find(key)
	if n < 0 || !sh.nodes[n].set {
		var zero V
		return zero, false
	}
	return sh.nodes[n].val, true
}

// Set records v at key, reporting whether the key was previously unset.
func (s *Store[K, V]) Set(key []K, v V) bool {
	sh := s.Acquire(key)
	defer sh.Release()
	if sh.bloom != nil {
		sh.bloom.add(hashKey(key))
	}
	return sh.Put(sh.Ensure(key), v)
}

// InsertMark adds key to the current epoch's set, reporting true on first
// insertion (the streaming-dedup primitive).
func (s *Store[K, V]) InsertMark(key []K) bool {
	sh := s.Acquire(key)
	defer sh.Release()
	return sh.Mark(sh.Ensure(key))
}

// CountSet returns the number of recorded values across all shards.
func (s *Store[K, V]) CountSet() int {
	total := 0
	for i := range s.shards {
		sh := s.AcquireIdx(i)
		for n := range sh.nodes {
			if sh.nodes[n].set {
				total++
			}
		}
		sh.Release()
	}
	return total
}

// NodeCount returns the total node count across all shards (roots
// included) — a capacity/diagnostic figure, not a value count.
func (s *Store[K, V]) NodeCount() int {
	total := 0
	for i := range s.shards {
		sh := s.AcquireIdx(i)
		total += len(sh.nodes)
		sh.Release()
	}
	return total
}
