package qstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"
)

// randomStore fills a store with pseudo-random words for round-trip tests.
func randomStore(opt Options, seed int64, n int) (*Store[int, string], map[string]string) {
	st := New[int, string](opt)
	rng := rand.New(rand.NewSource(seed))
	want := make(map[string]string)
	degree := opt.Degree
	if degree == 0 {
		degree = 9
	}
	for i := 0; i < n; i++ {
		w := make([]int, 1+rng.Intn(10))
		for j := range w {
			w[j] = rng.Intn(degree)
		}
		v := string(rune('a' + rng.Intn(26)))
		st.Set(w, v)
		key := make([]byte, len(w))
		for j, a := range w {
			key[j] = byte('0' + a)
		}
		want[string(key)] = v
	}
	return st, want
}

func checkContents(t *testing.T, st *Store[int, string], want map[string]string) {
	t.Helper()
	for key, v := range want {
		w := make([]int, len(key))
		for j := range key {
			w[j] = int(key[j] - '0')
		}
		got, ok := st.Get(w)
		if !ok || got != v {
			t.Fatalf("key %q: got (%q, %v), want (%q, true)", key, got, ok, v)
		}
	}
	if st.CountSet() != len(want) {
		t.Fatalf("CountSet = %d, want %d", st.CountSet(), len(want))
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, opt := range []Options{
		{Degree: 9, Stripes: 4, Sync: true},
		{Degree: 0, Stripes: 1},
		{Degree: 0, Stripes: 6, RouteDepth: 3, Sync: true},
	} {
		st, want := randomStore(opt, 42, 500)
		var buf bytes.Buffer
		if err := st.Save(&buf, StringCodec{}); err != nil {
			t.Fatal(err)
		}
		// Load into a differently-striped store: entries re-route.
		opt2 := opt
		opt2.Stripes = opt.Stripes + 3
		fresh := New[int, string](opt2)
		if err := fresh.Load(bytes.NewReader(buf.Bytes()), StringCodec{}); err != nil {
			t.Fatal(err)
		}
		checkContents(t, fresh, want)

		// A second save of the loaded store must round-trip identically.
		var buf2 bytes.Buffer
		if err := fresh.Save(&buf2, StringCodec{}); err != nil {
			t.Fatal(err)
		}
		again := New[int, string](opt)
		if err := again.Load(bytes.NewReader(buf2.Bytes()), StringCodec{}); err != nil {
			t.Fatal(err)
		}
		checkContents(t, again, want)
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	st, _ := randomStore(Options{Degree: 5, Stripes: 2}, 3, 200)
	var buf bytes.Buffer
	if err := st.Save(&buf, StringCodec{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, len(data) / 2, len(data) - 1} {
		fresh := New[int, string](Options{Degree: 5})
		err := fresh.Load(bytes.NewReader(data[:cut]), StringCodec{})
		var se *SnapshotError
		if !errors.As(err, &se) {
			t.Fatalf("truncation at %d/%d not rejected with a SnapshotError: %v", cut, len(data), err)
		}
		if fresh.CountSet() != 0 {
			t.Fatalf("truncated load at %d left %d entries behind", cut, fresh.CountSet())
		}
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	st, _ := randomStore(Options{Degree: 5, Stripes: 2}, 4, 200)
	var buf bytes.Buffer
	if err := st.Save(&buf, StringCodec{}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, flip := range []int{1, len(data) / 3, len(data) - 6} {
		corrupt := append([]byte(nil), data...)
		corrupt[flip] ^= 0x40
		fresh := New[int, string](Options{Degree: 5})
		err := fresh.Load(bytes.NewReader(corrupt), StringCodec{})
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("bit flip at %d not caught by the checksum: %v", flip, err)
		}
		if fresh.CountSet() != 0 {
			t.Fatal("corrupt load mutated the store")
		}
	}
}

// rewriteHeaderField re-encodes one uvarint header field (index after the
// magic) and fixes up the trailing checksum, simulating a snapshot written
// by a different format generation.
func rewriteHeaderField(t *testing.T, data []byte, field int, value uint64) []byte {
	t.Helper()
	out := append([]byte(nil), data[:len(snapMagic)]...)
	p := data[len(snapMagic) : len(data)-4]
	for i := 0; i <= field; i++ {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			t.Fatal("header parse failed")
		}
		if i == field {
			out = binary.AppendUvarint(out, value)
		} else {
			out = binary.AppendUvarint(out, v)
		}
		p = p[n:]
	}
	out = append(out, p...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out))
	return append(out, crc[:]...)
}

func TestSnapshotRejectsVersionMismatch(t *testing.T) {
	st, _ := randomStore(Options{Degree: 5}, 5, 50)
	var buf bytes.Buffer
	if err := st.Save(&buf, StringCodec{}); err != nil {
		t.Fatal(err)
	}
	futuristic := rewriteHeaderField(t, buf.Bytes(), 0, SnapshotVersion+1)
	fresh := New[int, string](Options{Degree: 5})
	err := fresh.Load(bytes.NewReader(futuristic), StringCodec{})
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not rejected: %v", err)
	}
}

func TestSnapshotRejectsImplausibleEntryCount(t *testing.T) {
	// A huge declared entry count with a fixed-up checksum must be
	// rejected with an error, not panic sizing an allocation by it.
	st, _ := randomStore(Options{Degree: 5}, 9, 20)
	var buf bytes.Buffer
	if err := st.Save(&buf, StringCodec{}); err != nil {
		t.Fatal(err)
	}
	huge := rewriteHeaderField(t, buf.Bytes(), 3, 1<<61)
	fresh := New[int, string](Options{Degree: 5})
	err := fresh.Load(bytes.NewReader(huge), StringCodec{})
	var se *SnapshotError
	if !errors.As(err, &se) {
		t.Fatalf("implausible entry count not rejected with a SnapshotError: %v", err)
	}
	if fresh.CountSet() != 0 {
		t.Fatal("rejected load mutated the store")
	}
}

func TestSnapshotRejectsDegreeMismatch(t *testing.T) {
	st, _ := randomStore(Options{Degree: 5}, 6, 50)
	var buf bytes.Buffer
	if err := st.Save(&buf, StringCodec{}); err != nil {
		t.Fatal(err)
	}
	fresh := New[int, string](Options{Degree: 7})
	err := fresh.Load(bytes.NewReader(buf.Bytes()), StringCodec{})
	if err == nil || !strings.Contains(err.Error(), "degree") {
		t.Fatalf("degree mismatch not rejected: %v", err)
	}
}

func TestSnapshotRejectsBadMagic(t *testing.T) {
	payload := []byte("NOTASNAPSHOT")
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	data := append(payload, crc[:]...)
	fresh := New[int, string](Options{Degree: 5})
	err := fresh.Load(bytes.NewReader(data), StringCodec{})
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not rejected: %v", err)
	}
}
