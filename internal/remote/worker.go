package remote

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/polca"
	"repro/internal/policy"
	"repro/internal/qstore"
)

// memoMagic brands worker probe-memo snapshots ahead of the qstore payload,
// mirroring the oracle snapshot header (polca "POLCAQS") with its own magic
// so the two snapshot kinds can never be confused for one another.
const memoMagic = "POLCARM"

// memoVersion is the worker-level snapshot header version.
const memoVersion = 1

// WorkerConfig configures a probe worker.
type WorkerConfig struct {
	// Interpreted forces the interpreted simulator path (the cmd-level
	// -compiled=false toggle); compiled kernel otherwise.
	Interpreted bool
	// ProbeCost sleeps this long per executed (non-memoized) probe,
	// simulating the measurement latency of a hardware backend. The
	// fan-out benchmarks use it: distribution pays off exactly when
	// probes cost wall-clock time, not CPU.
	ProbeCost time.Duration
	// Logf receives one line per notable event (engine creation, snapshot
	// load/save); nil disables logging.
	Logf func(format string, args ...any)
}

// Worker answers probe batches for simulator scopes over HTTP. Engines are
// created lazily per scope; each holds the compiled (or interpreted)
// simulator prober plus a lock-striped probe memo keyed by the probe word's
// dense block ids, so repeated words — across requests, across learns, and
// across snapshot-shipped restarts — execute the simulator once.
type Worker struct {
	cfg WorkerConfig

	mu      sync.Mutex
	engines map[string]*engine

	// costMu serializes ProbeCost payments: a worker emulates ONE pinned
	// measurement core, so concurrent requests must queue for its latency
	// rather than overlap their sleeps — otherwise a single worker would
	// scale with client concurrency and fan-out benchmarks would lie.
	costMu sync.Mutex

	probes   atomic.Int64
	executed atomic.Int64
	memoHits atomic.Int64
}

// engine is one scope's probing stack on a worker.
type engine struct {
	scope  string
	prober *polca.SimProber
	memo   *qstore.Store[int32, cache.Outcome]
}

// NewWorker builds a probe worker.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg, engines: make(map[string]*engine)}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// engineFor returns (creating on first use) the engine for a scope.
func (w *Worker) engineFor(scope string) (*engine, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if e, ok := w.engines[scope]; ok {
		return e, nil
	}
	name, assoc, err := ParseSimScope(scope)
	if err != nil {
		return nil, err
	}
	pol, err := policy.New(name, assoc)
	if err != nil {
		return nil, err
	}
	var pr *polca.SimProber
	if w.cfg.Interpreted {
		pr = polca.NewInterpretedSimProber(pol)
	} else {
		pr = polca.NewSimProber(pol)
	}
	e := &engine{
		scope:  scope,
		prober: pr,
		memo:   qstore.New[int32, cache.Outcome](qstore.Options{Stripes: 8, Sync: true}),
	}
	w.engines[scope] = e
	w.logf("polcaworker: engine %s (compiled=%v)", scope, pr.Compiled())
	return e, nil
}

// memoKey converts a probe word into the memo's dense-id key.
func memoKey(q []blocks.Block) ([]int32, error) {
	key := make([]int32, len(q))
	for i, b := range q {
		id, err := blocks.Index(b)
		if err != nil {
			return nil, err
		}
		key[i] = int32(id)
	}
	return key, nil
}

// probe answers one reset-rooted query, from the memo unless fresh, and
// records the outcome. Execution runs on an independent session, so
// concurrent requests never contend on simulator state; the configured
// probe cost is paid per execution, serially, the way a pinned measurement
// core would pay it.
func (w *Worker) probe(ctx context.Context, e *engine, q []blocks.Block, fresh bool) (cache.Outcome, error) {
	w.probes.Add(1)
	key, err := memoKey(q)
	if err != nil {
		return cache.Miss, err
	}
	if !fresh {
		if oc, ok := e.memo.Get(key); ok {
			w.memoHits.Add(1)
			return oc, nil
		}
	}
	if err := w.payProbeCost(ctx); err != nil {
		return cache.Miss, err
	}
	sess, err := e.prober.NewSession()
	if err != nil {
		return cache.Miss, err
	}
	var last cache.Outcome
	for _, b := range q {
		if last, err = sess.Access(b); err != nil {
			return cache.Miss, err
		}
	}
	w.executed.Add(1)
	e.memo.Set(key, last)
	return last, nil
}

// payProbeCost sleeps the configured per-execution cost under costMu,
// honoring ctx while waiting for the timer (not for the lock — a pinned
// measurement core cannot abandon the probe it is running).
func (w *Worker) payProbeCost(ctx context.Context) error {
	if w.cfg.ProbeCost <= 0 {
		return ctx.Err()
	}
	w.costMu.Lock()
	defer w.costMu.Unlock()
	t := time.NewTimer(w.cfg.ProbeCost)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// WorkerTotals are a worker's lifetime probe counters, as served on
// /v1/status; cmd/polcaworker prints them on drain.
type WorkerTotals struct {
	Probes, Executed, MemoHits int64
}

// Totals reports the worker's lifetime counters.
func (w *Worker) Totals() WorkerTotals {
	return WorkerTotals{
		Probes:   w.probes.Load(),
		Executed: w.executed.Load(),
		MemoHits: w.memoHits.Load(),
	}
}

// Handler returns the worker's HTTP handler.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(rw, "ok")
	})
	mux.HandleFunc("/v1/status", w.handleStatus)
	mux.HandleFunc("/v1/probe", w.handleProbe)
	mux.HandleFunc("/v1/snapshot", w.handleSnapshot)
	return mux
}

func (w *Worker) handleStatus(rw http.ResponseWriter, r *http.Request) {
	st := workerStatus{
		Scopes:   make(map[string]scopeStatus),
		Probes:   w.probes.Load(),
		Executed: w.executed.Load(),
		MemoHits: w.memoHits.Load(),
	}
	w.mu.Lock()
	for scope, e := range w.engines {
		st.Scopes[scope] = scopeStatus{
			Assoc:       e.prober.Assoc(),
			MemoEntries: e.memo.CountSet(),
			Compiled:    e.prober.Compiled(),
		}
	}
	w.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(st) //nolint:errcheck // client hangups only
}

func (w *Worker) handleProbe(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req probeRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&req); err != nil {
		http.Error(rw, "malformed probe request: "+err.Error(), http.StatusBadRequest)
		return
	}
	e, err := w.engineFor(req.Scope)
	if err != nil {
		http.Error(rw, err.Error(), http.StatusBadRequest)
		return
	}
	ocs := make([]cache.Outcome, len(req.Queries))
	for i, q := range req.Queries {
		oc, err := w.probe(r.Context(), e, q, req.Fresh)
		if err != nil {
			// A canceled request is the client hedging or unwinding — any
			// status serves; malformed blocks are the client's bug.
			http.Error(rw, fmt.Sprintf("query %d: %v", i, err), http.StatusBadRequest)
			return
		}
		ocs[i] = oc
	}
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(probeResponse{Outcomes: encodeOutcomes(ocs)}) //nolint:errcheck
}

// memoCodec snapshots the probe memo's outcome values.
type memoCodec struct{}

// AppendValue implements qstore.Codec.
func (memoCodec) AppendValue(dst []byte, v cache.Outcome) []byte {
	if v == cache.Hit {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// DecodeValue implements qstore.Codec.
func (memoCodec) DecodeValue(src []byte) (cache.Outcome, int, error) {
	if len(src) == 0 {
		return cache.Miss, 0, fmt.Errorf("truncated outcome value")
	}
	switch src[0] {
	case 0:
		return cache.Miss, 1, nil
	case 1:
		return cache.Hit, 1, nil
	}
	return cache.Miss, 0, fmt.Errorf("malformed outcome value %d", src[0])
}

// corruptf wraps a memo-snapshot header failure as qstore.ErrCorrupt, the
// same sentinel the qstore payload reports, so one errors.Is covers both.
func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, qstore.ErrCorrupt)...)
}

// WriteMemoSnapshot writes one scope's probe memo (header + qstore payload).
func (w *Worker) WriteMemoSnapshot(dst io.Writer, scope string) error {
	e, err := w.engineFor(scope)
	if err != nil {
		return err
	}
	var hdr []byte
	hdr = append(hdr, memoMagic...)
	hdr = binary.AppendUvarint(hdr, memoVersion)
	hdr = binary.AppendUvarint(hdr, uint64(len(scope)))
	hdr = append(hdr, scope...)
	if _, err := dst.Write(hdr); err != nil {
		return fmt.Errorf("remote: writing memo snapshot header: %w", err)
	}
	return e.memo.Save(dst, memoCodec{})
}

// LoadMemoSnapshot merges a probe-memo snapshot into one scope's memo. The
// qstore layer verifies the CRC before touching the store, so a truncated
// or corrupt body leaves the worker exactly as warm as it was.
func (w *Worker) LoadMemoSnapshot(src io.Reader, scope string) error {
	e, err := w.engineFor(scope)
	if err != nil {
		return err
	}
	br := bufio.NewReader(src)
	magic := make([]byte, len(memoMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return corruptf("remote: reading memo snapshot header: %v", err)
	}
	if string(magic) != memoMagic {
		return corruptf("remote: not a probe-memo snapshot (bad magic %q)", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return corruptf("remote: reading memo snapshot header: %v", err)
	}
	if version != memoVersion {
		return corruptf("remote: unsupported memo snapshot version %d (want %d)", version, memoVersion)
	}
	scopeLen, err := binary.ReadUvarint(br)
	if err != nil {
		return corruptf("remote: reading memo snapshot header: %v", err)
	}
	const maxScope = 1 << 16
	if scopeLen > maxScope {
		return corruptf("remote: implausible memo snapshot scope length %d", scopeLen)
	}
	got := make([]byte, scopeLen)
	if _, err := io.ReadFull(br, got); err != nil {
		return corruptf("remote: reading memo snapshot header: %v", err)
	}
	if string(got) != scope {
		return fmt.Errorf("%w: snapshot recorded for %q, this engine is %q", polca.ErrSnapshotScope, got, scope)
	}
	return e.memo.Load(br, memoCodec{})
}

func (w *Worker) handleSnapshot(rw http.ResponseWriter, r *http.Request) {
	scope := r.URL.Query().Get("scope")
	if scope == "" {
		http.Error(rw, "missing scope parameter", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		e, err := w.engineFor(scope)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if e.memo.CountSet() == 0 {
			http.Error(rw, "no memo recorded for "+scope, http.StatusNotFound)
			return
		}
		rw.Header().Set("Content-Type", "application/octet-stream")
		if err := w.WriteMemoSnapshot(rw, scope); err != nil {
			w.logf("polcaworker: snapshot save %s: %v", scope, err)
		}
	case http.MethodPut:
		err := w.LoadMemoSnapshot(io.LimitReader(r.Body, 256<<20), scope)
		switch {
		case err == nil:
			rw.WriteHeader(http.StatusNoContent)
			w.logf("polcaworker: snapshot loaded for %s", scope)
		case errors.Is(err, polca.ErrSnapshotScope):
			http.Error(rw, err.Error(), http.StatusConflict)
		case errors.Is(err, qstore.ErrCorrupt):
			// The memo is untouched: the worker stays exactly as warm as
			// it was, and the shipper treats this worker as cold.
			http.Error(rw, err.Error(), http.StatusUnprocessableEntity)
			w.logf("polcaworker: rejected damaged snapshot for %s: %v", scope, err)
		default:
			http.Error(rw, err.Error(), http.StatusBadRequest)
		}
	default:
		http.Error(rw, "GET or PUT only", http.StatusMethodNotAllowed)
	}
}
