package remote

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/polca"
	"repro/internal/policy"
)

func TestParseSimScope(t *testing.T) {
	cases := []struct {
		scope  string
		name   string
		assoc  int
		wantOK bool
	}{
		{"sim:LRU-4", "LRU", 4, true},
		{"sim:SRRIP-FP-8", "SRRIP-FP", 8, true},
		{"sim:New1-4", "New1", 4, true},
		{"hw:skylake/L2", "", 0, false},
		{"sim:LRU", "", 0, false},
		{"sim:LRU-0", "", 0, false},
		{"sim:-4", "", 0, false},
	}
	for _, c := range cases {
		name, assoc, err := ParseSimScope(c.scope)
		if c.wantOK != (err == nil) {
			t.Errorf("ParseSimScope(%q) error = %v, want ok=%v", c.scope, err, c.wantOK)
			continue
		}
		if c.wantOK && (name != c.name || assoc != c.assoc) {
			t.Errorf("ParseSimScope(%q) = (%q, %d), want (%q, %d)", c.scope, name, assoc, c.name, c.assoc)
		}
	}
}

func TestOutcomeWire(t *testing.T) {
	ocs := []cache.Outcome{cache.Hit, cache.Miss, cache.Miss, cache.Hit}
	s := encodeOutcomes(ocs)
	if s != "HMMH" {
		t.Fatalf("encoded %q", s)
	}
	back, err := decodeOutcomes(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ocs {
		if back[i] != ocs[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
	if _, err := decodeOutcomes("HM", 3); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := decodeOutcomes("HX", 2); err == nil {
		t.Error("malformed outcome accepted")
	}
}

// startWorker boots a worker over httptest and returns its base URL.
func startWorker(t *testing.T, cfg WorkerConfig) (*Worker, *httptest.Server) {
	t.Helper()
	w := NewWorker(cfg)
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)
	return w, srv
}

// probeWords is a deterministic mixed bag of reset-rooted queries.
func probeWords(n, assoc int) [][]blocks.Block {
	words := make([][]blocks.Block, n)
	for i := range words {
		var q []blocks.Block
		for j := 0; j <= i%7; j++ {
			q = append(q, blocks.Name((i*3+j*5)%(assoc*2+3)))
		}
		words[i] = q
	}
	return words
}

// TestWorkerProbesMatchLocalSimulator: a worker answers exactly what the
// local compiled simulator answers, memo on or off.
func TestWorkerProbesMatchLocalSimulator(t *testing.T) {
	_, srv := startWorker(t, WorkerConfig{})
	rp, err := NewRemoteProber(srv.URL, "sim:LRU-4", nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.New("LRU", 4)
	if err != nil {
		t.Fatal(err)
	}
	local := polca.NewSimProber(pol)
	words := probeWords(60, 4)
	for round := 0; round < 2; round++ { // round 2 replays from the worker memo
		got, err := rp.ProbeBatch(context.Background(), words)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range words {
			want, err := local.Probe(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("round %d query %d (%v): worker says %v, local says %v", round, i, q, got[i], want)
			}
		}
	}
}

// TestWorkerMemoAndFresh: the second identical batch answers from the memo
// (no new executions); fresh probes bypass it.
func TestWorkerMemoAndFresh(t *testing.T) {
	w, srv := startWorker(t, WorkerConfig{})
	rp, err := NewRemoteProber(srv.URL, "sim:FIFO-4", nil)
	if err != nil {
		t.Fatal(err)
	}
	words := probeWords(20, 4)
	if _, err := rp.ProbeBatch(context.Background(), words); err != nil {
		t.Fatal(err)
	}
	execAfterFirst := w.executed.Load()
	if execAfterFirst == 0 {
		t.Fatal("no executions recorded")
	}
	if _, err := rp.ProbeBatch(context.Background(), words); err != nil {
		t.Fatal(err)
	}
	if got := w.executed.Load(); got != execAfterFirst {
		t.Errorf("memoized batch re-executed: %d -> %d executions", execAfterFirst, got)
	}
	if w.memoHits.Load() == 0 {
		t.Error("no memo hits recorded")
	}
	if _, err := rp.ProbeFresh(context.Background(), words[0]); err != nil {
		t.Fatal(err)
	}
	if got := w.executed.Load(); got != execAfterFirst+1 {
		t.Errorf("fresh probe did not re-execute: %d -> %d executions", execAfterFirst, got)
	}
}

// TestWorkerRejectsBadScopes: malformed scopes and block names are 4xx
// (non-transient) — client bugs, not worker health.
func TestWorkerRejectsBadScopes(t *testing.T) {
	_, srv := startWorker(t, WorkerConfig{})
	for _, scope := range []string{"sim:NoSuchPolicy-4", "hw:skylake", "sim:LRU--1"} {
		rp := &RemoteProber{base: srv.URL, hc: srv.Client(), scope: scope, assoc: 4}
		_, err := rp.Probe(context.Background(), []blocks.Block{"A"})
		if err == nil {
			t.Errorf("scope %q accepted", scope)
			continue
		}
		if polca.IsTransient(err) {
			t.Errorf("scope %q rejected transiently: %v", scope, err)
		}
	}
}

// TestFleetMatchesLocalAndPreservesOrder: a fleet over three workers
// answers a large batch exactly like the local simulator, in submission
// order, spreading traffic over every worker.
func TestFleetMatchesLocalAndPreservesOrder(t *testing.T) {
	var urls []string
	for i := 0; i < 3; i++ {
		_, srv := startWorker(t, WorkerConfig{})
		urls = append(urls, srv.URL)
	}
	f, err := NewFleet(urls, "sim:PLRU-4", FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if err := f.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	pol, err := policy.New("PLRU", 4)
	if err != nil {
		t.Fatal(err)
	}
	local := polca.NewSimProber(pol)
	words := probeWords(200, 4)
	got, err := f.ProbeBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(words) {
		t.Fatalf("%d outcomes for %d queries", len(got), len(words))
	}
	for i, q := range words {
		want, err := local.Probe(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("query %d (%v): fleet says %v, local says %v", i, q, got[i], want)
		}
	}
	st := f.Stats()
	for _, ws := range st.Workers {
		if ws.Probes == 0 {
			t.Errorf("worker %s answered no probes; fan-out did not spread", ws.Addr)
		}
	}
	if f.FleetWidth() != 3*2 {
		t.Errorf("FleetWidth = %d, want 6 (3 workers x 2 slots)", f.FleetWidth())
	}
}

// TestFleetSurvivesDeadWorker: one of three workers goes dark mid-run; the
// fleet quarantines it and the batch answers stay correct and complete.
func TestFleetSurvivesDeadWorker(t *testing.T) {
	var urls []string
	var servers []*httptest.Server
	for i := 0; i < 3; i++ {
		_, srv := startWorker(t, WorkerConfig{})
		urls = append(urls, srv.URL)
		servers = append(servers, srv)
	}
	f, err := NewFleet(urls, "sim:LRU-4", FleetOptions{
		Cooldown: time.Hour, // keep the dead worker out for the whole test
		Retry:    &polca.RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	words := probeWords(50, 4)
	want, err := f.ProbeBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	servers[1].Close() // worker dies for good
	for round := 0; round < 4; round++ {
		got, err := f.ProbeBatch(context.Background(), words)
		if err != nil {
			t.Fatalf("round %d after worker death: %v", round, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d query %d changed answer after worker death", round, i)
			}
		}
	}
	if f.Stats().Quarantined == 0 {
		t.Error("dead worker never quarantined")
	}
}

// TestFleetHedgesStragglers: a worker that stalls forever is out-raced by
// the hedge re-dispatch; the batch completes fast and the hedge counter
// records the re-dispatch.
func TestFleetHedgesStragglers(t *testing.T) {
	_, fast := startWorker(t, WorkerConfig{})
	var stalled atomic.Bool
	release := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/probe") {
			stalled.Store(true)
			select { // straggle until the client gives up or the test ends
			case <-r.Context().Done():
			case <-release:
			}
			return
		}
		rw.WriteHeader(http.StatusNotFound)
	}))
	t.Cleanup(stall.Close)
	t.Cleanup(func() { close(release) }) // LIFO: unblock handlers before Close waits on them

	f, err := NewFleet([]string{stall.URL, fast.URL}, "sim:LRU-4", FleetOptions{
		Slots:      1,
		HedgeAfter: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	// Sub-batches land on both workers; the straggler's chunk must be
	// hedged onto the fast worker and the whole batch still answers.
	done := make(chan error, 1)
	var got []cache.Outcome
	go func() {
		var err error
		got, err = f.ProbeBatch(context.Background(), probeWords(8, 4))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("hedging never rescued the stalled sub-batch")
	}
	if len(got) != 8 {
		t.Fatalf("%d outcomes for 8 queries", len(got))
	}
	if !stalled.Load() {
		t.Skip("straggler never saw traffic; nothing to hedge") // chunking sent all work to the fast worker
	}
	if f.Stats().Hedges == 0 {
		t.Error("straggler rescued without a recorded hedge")
	}
}

// TestSnapshotShippingWarmsColdWorker: worker A builds a probe memo; after
// SyncSnapshots worker B answers the same words without executing its
// simulator once.
func TestSnapshotShippingWarmsColdWorker(t *testing.T) {
	wa, srvA := startWorker(t, WorkerConfig{})
	wb, srvB := startWorker(t, WorkerConfig{})
	f, err := NewFleet([]string{srvA.URL, srvB.URL}, "sim:LRU-4", FleetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	words := probeWords(40, 4)
	// Warm worker A only, through its own client.
	ra, err := NewRemoteProber(srvA.URL, "sim:LRU-4", nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ra.ProbeBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	if wa.executed.Load() == 0 {
		t.Fatal("worker A executed nothing")
	}

	if warmed := f.SyncSnapshots(context.Background()); warmed != 1 {
		t.Fatalf("SyncSnapshots warmed %d workers, want 1", warmed)
	}
	rb, err := NewRemoteProber(srvB.URL, "sim:LRU-4", nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rb.ProbeBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: shipped memo answers %v, original %v", i, got[i], want[i])
		}
	}
	if wb.executed.Load() != 0 {
		t.Errorf("worker B executed %d probes despite the shipped memo", wb.executed.Load())
	}
}

// TestSnapshotCorruptionDegradesToCold: a truncated or tampered snapshot
// over HTTP is rejected with the qstore.ErrCorrupt semantics — the worker
// stays exactly as warm as it was and keeps serving probes; a missing
// snapshot (cold worker) is ErrMissing semantics: a clean 404, not an
// error. The learn never fails over either.
func TestSnapshotCorruptionDegradesToCold(t *testing.T) {
	_, srvA := startWorker(t, WorkerConfig{})
	ra, err := NewRemoteProber(srvA.URL, "sim:LRU-4", nil)
	if err != nil {
		t.Fatal(err)
	}

	// ErrMissing: a cold worker has no snapshot; fetch reports (nil, nil).
	if data, err := ra.fetchSnapshot(context.Background()); err != nil || data != nil {
		t.Fatalf("cold fetch = (%d bytes, %v), want (nil, nil)", len(data), err)
	}

	// Warm the worker, snapshot it, and damage the payload.
	words := probeWords(30, 4)
	if _, err := ra.ProbeBatch(context.Background(), words); err != nil {
		t.Fatal(err)
	}
	good, err := ra.fetchSnapshot(context.Background())
	if err != nil || good == nil {
		t.Fatalf("warm fetch = (%v, %v)", good, err)
	}

	_, srvB := startWorker(t, WorkerConfig{})
	rb, err := NewRemoteProber(srvB.URL, "sim:LRU-4", nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string][]byte{
		"truncated":  good[:len(good)/2],
		"bit-flip":   append(append([]byte{}, good[:len(good)-3]...), good[len(good)-3]^0x40, good[len(good)-2], good[len(good)-1]),
		"bad magic":  append([]byte("NOTASNAP"), good...),
		"wrong kind": {0x50, 0x4f, 0x4c, 0x43, 0x41, 0x51, 0x53, 0x01}, // "POLCAQS" oracle header
	} {
		err := rb.shipSnapshot(context.Background(), bad)
		if err == nil {
			t.Fatalf("%s snapshot accepted", name)
		}
		if !strings.Contains(err.Error(), "422") {
			t.Errorf("%s snapshot rejected with %v, want 422 (corrupt)", name, err)
		}
	}
	// Scope mismatch is a caller bug, not damage: 409, not 422.
	rb2 := &RemoteProber{base: srvB.URL, hc: srvB.Client(), scope: "sim:FIFO-4", assoc: 4}
	if err := rb2.shipSnapshot(context.Background(), good); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("scope-mismatched snapshot: %v, want 409", err)
	}

	// The worker is still cold (damage never touched the memo) and serves.
	got, err := rb.ProbeBatch(context.Background(), words)
	if err != nil {
		t.Fatalf("worker stopped serving after rejected snapshots: %v", err)
	}
	want, err := ra.ProbeBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d diverged after rejected snapshots", i)
		}
	}
	// And the good snapshot still loads after all the rejects.
	if err := rb.shipSnapshot(context.Background(), good); err != nil {
		t.Fatalf("good snapshot rejected after damage attempts: %v", err)
	}
}

// TestWorkerSnapshotRoundTrip: the worker-level save/load path preserves
// the memo bit-for-bit through the binary format.
func TestWorkerSnapshotRoundTrip(t *testing.T) {
	w := NewWorker(WorkerConfig{})
	e, err := w.engineFor("sim:LRU-4")
	if err != nil {
		t.Fatal(err)
	}
	words := probeWords(25, 4)
	for _, q := range words {
		if _, err := w.probe(context.Background(), e, q, false); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := w.WriteMemoSnapshot(&buf, "sim:LRU-4"); err != nil {
		t.Fatal(err)
	}
	w2 := NewWorker(WorkerConfig{})
	if err := w2.LoadMemoSnapshot(bytes.NewReader(buf.Bytes()), "sim:LRU-4"); err != nil {
		t.Fatal(err)
	}
	e2, err := w2.engineFor("sim:LRU-4")
	if err != nil {
		t.Fatal(err)
	}
	if a, b := e.memo.CountSet(), e2.memo.CountSet(); a != b {
		t.Fatalf("round trip lost entries: %d -> %d", a, b)
	}
	// Wrong-scope load is ErrSnapshotScope, not corruption.
	w3 := NewWorker(WorkerConfig{})
	if err := w3.LoadMemoSnapshot(bytes.NewReader(buf.Bytes()), "sim:FIFO-4"); !errors.Is(err, polca.ErrSnapshotScope) {
		t.Fatalf("wrong-scope load: %v, want ErrSnapshotScope", err)
	}
}

// TestFleetProbationRewarmsRestartedWorker: a worker dies, is quarantined,
// and "restarts" (a fresh cold worker on the same address); probation
// re-admits it and the re-admission hook ships the richest memo over, so
// the restarted worker serves warm.
func TestFleetProbationRewarmsRestartedWorker(t *testing.T) {
	_, srvA := startWorker(t, WorkerConfig{})

	// Worker B is a proxy we can point at a live backend, kill, and revive.
	wbFirst, backB := startWorker(t, WorkerConfig{})
	var down atomic.Bool
	var target atomic.Value
	target.Store(backB.URL)
	proxy := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(rw, "worker down", http.StatusBadGateway)
			return
		}
		// Forward verbatim to the current backend.
		url := target.Load().(string) + r.URL.Path
		if r.URL.RawQuery != "" {
			url += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		rw.WriteHeader(resp.StatusCode)
		buf := new(bytes.Buffer)
		buf.ReadFrom(resp.Body) //nolint:errcheck
		rw.Write(buf.Bytes())   //nolint:errcheck
	}))
	t.Cleanup(proxy.Close)
	_ = wbFirst

	// The probation cooldown is long enough that the worker "restarts"
	// while still quarantined — the first re-admission after the restart
	// runs the re-warm hook against the live replacement, so the slot
	// re-enters rotation already warm (no cold window).
	f, err := NewFleet([]string{srvA.URL, proxy.URL}, "sim:LRU-4", FleetOptions{
		Slots:    1,
		Cooldown: 300 * time.Millisecond,
		Retry:    &polca.RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)

	// Warm worker A with every word the test will ever probe, so the
	// shipped memo is complete and the restarted worker need not execute.
	words := probeWords(40, 4)
	ra, err := NewRemoteProber(srvA.URL, "sim:LRU-4", nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ra.ProbeBatch(context.Background(), words)
	if err != nil {
		t.Fatal(err)
	}

	// Kill B; drive traffic until it is quarantined. The fleet keeps
	// answering (worker A re-executes B's failed sub-batches).
	down.Store(true)
	for i := 0; f.Stats().Quarantined == 0; i++ {
		if i > 500 {
			t.Fatal("dead worker never quarantined")
		}
		if _, err := f.ProbeBatch(context.Background(), words[:4]); err != nil {
			t.Fatalf("fleet failed while worker down: %v", err)
		}
	}

	// "Restart" B as a fresh cold worker while it is still in quarantine.
	wbSecond, backB2 := startWorker(t, WorkerConfig{})
	target.Store(backB2.URL)
	down.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for f.Stats().Readmitted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("restarted worker never re-admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The re-admission hook shipped worker A's memo: B answers its share
	// of the full word set without executing its simulator once.
	deadline = time.Now().Add(10 * time.Second)
	for wbSecond.probes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("re-admitted worker never served traffic")
		}
		got, err := f.ProbeBatch(context.Background(), words)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d changed answer across the restart", i)
			}
		}
	}
	if wbSecond.executed.Load() != 0 {
		t.Errorf("restarted worker executed %d probes; the shipped memo should have answered all %d",
			wbSecond.executed.Load(), wbSecond.probes.Load())
	}
	if f.Stats().Shipped == 0 {
		t.Error("no snapshot recorded as shipped")
	}
}

// TestFleetTotalLossFailsFast: when every worker in the fleet is gone, a
// probe batch must come back with a transient error within bounded time —
// never park forever waiting on probation. (The regression: Checkout used
// to block on the empty pool with no deadline, so the bounded retry and
// hedge layers above it never got to fail and a learn against a dead fleet
// hung instead of aborting.)
func TestFleetTotalLossFailsFast(t *testing.T) {
	_, srv := startWorker(t, WorkerConfig{})
	f, err := NewFleet([]string{srv.URL}, "sim:LRU-4", FleetOptions{
		Cooldown:   20 * time.Millisecond,
		HedgeAfter: 50 * time.Millisecond,
		Retry:      &polca.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	words := probeWords(8, 4)
	if _, err := f.ProbeBatch(context.Background(), words); err != nil {
		t.Fatalf("healthy fleet failed: %v", err)
	}

	srv.Close() // the whole fleet dies

	for round := 0; round < 3; round++ {
		done := make(chan error, 1)
		go func() {
			_, err := f.ProbeBatch(context.Background(), words)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("round %d: batch succeeded against a dead fleet", round)
			}
			if !polca.IsTransient(err) {
				t.Fatalf("round %d: total fleet loss surfaced non-transiently: %v", round, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: total fleet loss parked ProbeBatch (learner-hang regression)", round)
		}
	}
	if f.Stats().Quarantined == 0 {
		t.Error("dead fleet never quarantined")
	}
}
