// Package remote distributes the oracle's membership probes over a fleet
// of worker processes, scaling the paper's wall-clock bottleneck — tens of
// thousands of independent cache probes per learned policy — past one box.
//
// A worker (cmd/polcaworker) is a thin stdlib net/http server wrapping the
// same compiled simulator stack the local pipelines run: it answers probe
// batches for "sim:<policy>-<assoc>" scopes, memoizes probe results per
// scope in a qstore prefix trie, and serves/accepts CRC'd snapshots of
// that memo so a new or recovered worker skips re-probing memoized
// prefixes. The client side (Fleet) implements polca.Prober and
// polca.ProbeBatcher over the fleet: ProbeBatch splits a batch into
// contiguous sub-batches, fans them over the workers through the shared
// health-scored pool (cachequery.ProberPool — quarantine, probation
// re-admission), hedges straggler sub-batches onto a second worker, and
// retries transient failures under the oracle's seeded-backoff policy.
//
// Determinism is preserved end to end: probes are reset-rooted and
// independent, every sub-batch's answers are merged back in submission
// order, and a hedged duplicate probe returns the same outcome as the
// original, so learner trajectories and model JSON are bit-identical to a
// single-box run no matter how the fleet schedules, fails, or recovers.
//
// # Wire format
//
// Endpoints (all JSON unless noted):
//
//	GET  /healthz              -> 200 "ok"
//	GET  /v1/status            -> workerStatus (scopes, probe counters)
//	POST /v1/probe             -> probeRequest -> probeResponse
//	GET  /v1/snapshot?scope=S  -> binary probe-memo snapshot, 404 if none
//	PUT  /v1/snapshot?scope=S  -> 204; 400/409/422 reject bad snapshots
//
// A probe request carries the scope, a fresh flag (bypass the worker
// memo — the oracle's determinism audit depends on it), and the queries
// as block-name arrays. Outcomes come back as one character per query,
// 'H' or 'M', in request order. The snapshot payload is the qstore
// delta-encoded CRC-32 format behind an oracle-style header (magic,
// version, scope), so a truncated or tampered body fails loudly as
// qstore.ErrCorrupt on the worker and the fleet degrades that worker to
// cold instead of failing the learn.
package remote

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cache"
)

// probeRequest is the body of POST /v1/probe.
type probeRequest struct {
	// Scope names the system under probe, e.g. "sim:LRU-4".
	Scope string `json:"scope"`
	// Fresh bypasses the worker's probe memo: every query re-executes
	// the simulator even when a memoized outcome exists.
	Fresh bool `json:"fresh,omitempty"`
	// Queries are reset-rooted probe words, one block-name array each.
	Queries [][]string `json:"queries"`
}

// probeResponse is the body answering POST /v1/probe.
type probeResponse struct {
	// Outcomes has one character per query, in request order: 'H' or 'M'.
	Outcomes string `json:"outcomes"`
}

// workerStatus is the body of GET /v1/status.
type workerStatus struct {
	Scopes   map[string]scopeStatus `json:"scopes"`
	Probes   int64                  `json:"probes"`    // queries answered (memo hits included)
	Executed int64                  `json:"executed"`  // simulator executions
	MemoHits int64                  `json:"memo_hits"` // queries answered from the probe memo
}

// scopeStatus describes one scope's engine.
type scopeStatus struct {
	Assoc       int  `json:"assoc"`
	MemoEntries int  `json:"memo_entries"`
	Compiled    bool `json:"compiled"`
}

// encodeOutcomes renders outcomes as the wire's per-query character string.
func encodeOutcomes(ocs []cache.Outcome) string {
	b := make([]byte, len(ocs))
	for i, oc := range ocs {
		if oc == cache.Hit {
			b[i] = 'H'
		} else {
			b[i] = 'M'
		}
	}
	return string(b)
}

// decodeOutcomes parses the wire's outcome string, expecting exactly n.
func decodeOutcomes(s string, n int) ([]cache.Outcome, error) {
	if len(s) != n {
		return nil, fmt.Errorf("remote: %d outcomes for %d queries", len(s), n)
	}
	out := make([]cache.Outcome, n)
	for i := 0; i < n; i++ {
		switch s[i] {
		case 'H':
			out[i] = cache.Hit
		case 'M':
			out[i] = cache.Miss
		default:
			return nil, fmt.Errorf("remote: malformed outcome %q", s[i])
		}
	}
	return out, nil
}

// ParseSimScope splits a simulator scope string ("sim:<policy>-<assoc>",
// the core.SimSnapshotScope format) into policy name and associativity.
// Policy names may themselves contain dashes (SRRIP-FP), so the split is
// at the last dash.
func ParseSimScope(scope string) (policyName string, assoc int, err error) {
	body, ok := strings.CutPrefix(scope, "sim:")
	if !ok {
		return "", 0, fmt.Errorf("remote: scope %q is not a simulator scope (want sim:<policy>-<assoc>)", scope)
	}
	i := strings.LastIndexByte(body, '-')
	if i <= 0 {
		return "", 0, fmt.Errorf("remote: malformed simulator scope %q", scope)
	}
	assoc, err = strconv.Atoi(body[i+1:])
	if err != nil || assoc < 1 {
		return "", 0, fmt.Errorf("remote: malformed associativity in scope %q", scope)
	}
	return body[:i], assoc, nil
}

// transientErr marks fleet-side failures the retry policy may absorb:
// connection failures, timeouts, 5xx answers, truncated bodies. The wrapped
// cause is preserved for diagnostics.
type transientErr struct{ err error }

func (e *transientErr) Error() string   { return e.err.Error() }
func (e *transientErr) Unwrap() error   { return e.err }
func (e *transientErr) Transient() bool { return true }

// transient wraps err as transient (nil stays nil).
func transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}
