package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/cachequery"
	"repro/internal/polca"
)

// RemoteProber is the client of one probe worker: it implements
// polca.Prober (plus the fresh and batch extensions) by POSTing probe
// requests to the worker's /v1/probe endpoint. It is stateless beyond its
// counters — probes are reset-rooted, so any worker can answer any probe —
// and safe for concurrent use. Fleets pool several of them behind the
// shared health-scored cachequery.ProberPool; a single RemoteProber is
// also a fine serial prober for one remote box.
type RemoteProber struct {
	base  string // http://host:port
	hc    *http.Client
	scope string
	assoc int

	probes  atomic.Int64 // queries answered
	batches atomic.Int64 // requests issued
	fails   atomic.Int64 // requests failed
}

// normalizeAddr accepts "host:port" or a full http(s) URL.
func normalizeAddr(addr string) string {
	if strings.HasPrefix(addr, "http://") || strings.HasPrefix(addr, "https://") {
		return strings.TrimRight(addr, "/")
	}
	return "http://" + addr
}

// NewRemoteProber builds the client prober for one worker and one scope
// ("sim:<policy>-<assoc>"). The scope determines associativity and initial
// content locally — the worker is not contacted until the first probe.
func NewRemoteProber(addr, scope string, hc *http.Client) (*RemoteProber, error) {
	_, assoc, err := ParseSimScope(scope)
	if err != nil {
		return nil, err
	}
	if hc == nil {
		hc = &http.Client{Timeout: 2 * time.Minute}
	}
	return &RemoteProber{base: normalizeAddr(addr), hc: hc, scope: scope, assoc: assoc}, nil
}

// Addr returns the worker's base URL.
func (p *RemoteProber) Addr() string { return p.base }

// Assoc implements polca.Prober.
func (p *RemoteProber) Assoc() int { return p.assoc }

// InitialContent implements polca.Prober: the simulator reset fills lines
// 0..n-1 with the first n blocks, on the worker exactly as locally.
func (p *RemoteProber) InitialContent() []blocks.Block { return blocks.Ordered(p.assoc) }

// post ships one probe request and decodes the outcomes. Connection
// failures, timeouts, 5xx answers and truncated bodies come back transient
// (another worker may answer); 4xx answers are protocol-level bugs and
// propagate as they are.
func (p *RemoteProber) post(ctx context.Context, qs [][]blocks.Block, fresh bool) ([]cache.Outcome, error) {
	p.batches.Add(1)
	body, err := json.Marshal(probeRequest{Scope: p.scope, Fresh: fresh, Queries: qs})
	if err != nil {
		return nil, fmt.Errorf("remote: encoding probe request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+"/v1/probe", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.hc.Do(req)
	if err != nil {
		p.fails.Add(1)
		if ctx.Err() != nil {
			return nil, ctx.Err() // cancellation is the caller's, not the worker's
		}
		return nil, transient(fmt.Errorf("remote: %s: %w", p.base, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		p.fails.Add(1)
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		err := fmt.Errorf("remote: %s answered %s: %s", p.base, resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode >= 500 {
			return nil, transient(err)
		}
		return nil, err
	}
	var pr probeResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		p.fails.Add(1)
		return nil, transient(fmt.Errorf("remote: %s: decoding probe response: %w", p.base, err))
	}
	out, err := decodeOutcomes(pr.Outcomes, len(qs))
	if err != nil {
		p.fails.Add(1)
		return nil, transient(err)
	}
	p.probes.Add(int64(len(qs)))
	return out, nil
}

// Probe implements polca.Prober.
func (p *RemoteProber) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	out, err := p.post(ctx, [][]blocks.Block{q}, false)
	if err != nil {
		return cache.Miss, err
	}
	return out[0], nil
}

// ProbeFresh implements polca.FreshProber: the worker bypasses its probe
// memo, so the oracle's determinism audit re-measures for real.
func (p *RemoteProber) ProbeFresh(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	out, err := p.post(ctx, [][]blocks.Block{q}, true)
	if err != nil {
		return cache.Miss, err
	}
	return out[0], nil
}

// ProbeBatch implements polca.ProbeBatcher: one request, results in
// submission order.
func (p *RemoteProber) ProbeBatch(ctx context.Context, qs [][]blocks.Block) ([]cache.Outcome, error) {
	return p.post(ctx, qs, false)
}

// Healthz checks the worker's health endpoint.
func (p *RemoteProber) Healthz(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return transient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return transient(fmt.Errorf("remote: %s /healthz answered %s", p.base, resp.Status))
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // keep-alive drain
	return nil
}

// fetchSnapshot GETs the worker's probe-memo snapshot, or (nil, nil) when
// the worker has none recorded (cold).
func (p *RemoteProber) fetchSnapshot(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		p.base+"/v1/snapshot?scope="+url.QueryEscape(p.scope), nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return nil, transient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, transient(fmt.Errorf("remote: %s snapshot GET answered %s", p.base, resp.Status))
	}
	return io.ReadAll(io.LimitReader(resp.Body, 256<<20))
}

// shipSnapshot PUTs a probe-memo snapshot to the worker. A worker that
// rejects the payload (corrupt, wrong scope) reports the rejection; the
// worker stays cold and keeps serving.
func (p *RemoteProber) shipSnapshot(ctx context.Context, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		p.base+"/v1/snapshot?scope="+url.QueryEscape(p.scope), bytes.NewReader(data))
	if err != nil {
		return err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return transient(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("remote: %s snapshot PUT answered %s: %s", p.base, resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

var (
	_ polca.FreshProber  = (*RemoteProber)(nil)
	_ polca.ProbeBatcher = (*RemoteProber)(nil)
)

// FleetOptions configures a worker fleet.
type FleetOptions struct {
	// Slots is the number of sub-batches in flight per worker (default 2:
	// one executing, one queued behind it keeps a worker busy across the
	// client's round trip).
	Slots int
	// HedgeAfter re-dispatches a sub-batch that has not answered within
	// this duration onto a second worker, first answer wins — probes are
	// deterministic, so the duplicate is pure latency insurance against
	// stragglers. 0 selects the default (2s); negative disables hedging.
	HedgeAfter time.Duration
	// Retry overrides the fleet's transient-failure retry policy around
	// each sub-batch (polca.DefaultRetryPolicy otherwise). This is the
	// batch-level safety net; the oracle's own per-probe retry still
	// applies above the fleet on the serial probe path.
	Retry *polca.RetryPolicy
	// QuarantineThreshold and Cooldown tune the shared pool health layer;
	// zero values keep cachequery's defaults (3 strikes, 500ms probation).
	QuarantineThreshold int
	Cooldown            time.Duration
	// Timeout bounds each HTTP request (default 2m — generous, because a
	// large sub-batch on a probe-cost worker legitimately takes a while).
	Timeout time.Duration
	// Logf receives resilience events (quarantines survived, snapshot
	// shipping outcomes); nil disables logging.
	Logf func(format string, args ...any)
}

// FleetStats is a point-in-time snapshot of the fleet's resilience and
// distribution counters.
type FleetStats struct {
	Hedges      int64         // sub-batches re-dispatched onto a second worker
	Retries     int64         // transient sub-batch failures absorbed by backoff
	Quarantined int           // pool quarantines (cumulative, probation included)
	Readmitted  int           // probation re-admissions
	Shipped     int           // snapshots shipped to workers
	Workers     []WorkerStats // per-worker breakdown, fleet order
}

// WorkerStats is one worker's share of the fleet's traffic.
type WorkerStats struct {
	Addr     string `json:"addr"`
	Probes   int64  `json:"probes"`   // queries this worker answered
	Requests int64  `json:"requests"` // HTTP probe requests issued to it
	Failures int64  `json:"failures"` // requests that failed
}

// Fleet fans probes over a set of remote workers. It implements
// polca.Prober, polca.FreshProber, polca.ConcurrentProber,
// polca.ProbeBatcher and polca.FleetWidther:
//
//   - ProbeBatch splits the batch into contiguous sub-batches (one per
//     live pool slot), dispatches them concurrently, and merges answers
//     back in submission order — the ordering invariant that keeps
//     learner trajectories bit-identical to single-box runs.
//   - Worker health runs on the shared cachequery.ProberPool: a worker
//     that keeps failing is quarantined and its sub-batch transparently
//     re-executes elsewhere; probation re-admits it after a cooldown, and
//     the re-admission hook re-ships the latest memo snapshot so a
//     restarted worker comes back warm.
//   - A sub-batch that stalls past HedgeAfter is hedged onto a second
//     worker; whichever answers first wins (answers are deterministic, so
//     the race has one outcome).
//   - Transient failures retry under seeded exponential backoff.
//
// FleetWidth reports live slots (workers × per-worker slots), which the
// oracle surfaces through BatchHint so the learner's chunk width scales
// with the fleet instead of the lockstep constant.
type Fleet struct {
	scope   string
	assoc   int
	workers []*RemoteProber
	pool    *cachequery.ProberPool
	slots   int
	hedge   time.Duration
	retry   polca.RetryPolicy
	logf    func(string, ...any)

	hedges  atomic.Int64
	retries atomic.Int64
	shipped atomic.Int64
}

// NewFleet builds the fleet client for the given worker addresses and
// scope. Workers are not contacted; pair with Ping for a fail-fast boot.
func NewFleet(addrs []string, scope string, opt FleetOptions) (*Fleet, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("remote: fleet needs at least one worker address")
	}
	if opt.Slots <= 0 {
		opt.Slots = 2
	}
	if opt.HedgeAfter == 0 {
		opt.HedgeAfter = 2 * time.Second
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 2 * time.Minute
	}
	retry := polca.DefaultRetryPolicy
	if opt.Retry != nil {
		retry = *opt.Retry
	}
	hc := &http.Client{Timeout: opt.Timeout}
	f := &Fleet{
		scope: scope,
		slots: opt.Slots,
		hedge: opt.HedgeAfter,
		retry: retry,
		logf:  opt.Logf,
	}
	if f.logf == nil {
		f.logf = func(string, ...any) {}
	}
	for _, addr := range addrs {
		w, err := NewRemoteProber(addr, scope, hc)
		if err != nil {
			return nil, err
		}
		f.workers = append(f.workers, w)
	}
	f.assoc = f.workers[0].assoc

	// One pool slot per (worker, slot): slot id s serves worker s % len.
	raw := make([]polca.Prober, len(addrs)*opt.Slots)
	for i := range raw {
		raw[i] = f.workers[i%len(f.workers)]
	}
	poolOpts := []cachequery.PoolOption{
		cachequery.WithReadmitHook(func(id int) { f.rewarm(id % len(f.workers)) }),
	}
	if opt.QuarantineThreshold > 0 {
		poolOpts = append(poolOpts, cachequery.WithQuarantineThreshold(opt.QuarantineThreshold))
	}
	if opt.Cooldown != 0 {
		poolOpts = append(poolOpts, cachequery.WithProbationCooldown(opt.Cooldown))
	}
	pool, err := cachequery.NewProberPool(raw, poolOpts...)
	if err != nil {
		return nil, err
	}
	f.pool = pool
	return f, nil
}

// Ping verifies every worker answers its health endpoint.
func (f *Fleet) Ping(ctx context.Context) error {
	for _, w := range f.workers {
		if err := w.Healthz(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Close stops the pool's probation timers.
func (f *Fleet) Close() { f.pool.Close() }

// Scope returns the fleet's probe scope.
func (f *Fleet) Scope() string { return f.scope }

// Workers returns the fleet size as configured.
func (f *Fleet) Workers() int { return len(f.workers) }

// Stats snapshots the fleet's resilience and distribution counters.
func (f *Fleet) Stats() FleetStats {
	st := FleetStats{
		Hedges:      f.hedges.Load(),
		Retries:     f.retries.Load(),
		Quarantined: f.pool.Quarantined(),
		Readmitted:  f.pool.Readmitted(),
		Shipped:     int(f.shipped.Load()),
	}
	for _, w := range f.workers {
		st.Workers = append(st.Workers, WorkerStats{
			Addr:     w.base,
			Probes:   w.probes.Load(),
			Requests: w.batches.Load(),
			Failures: w.fails.Load(),
		})
	}
	return st
}

// Assoc implements polca.Prober.
func (f *Fleet) Assoc() int { return f.assoc }

// InitialContent implements polca.Prober.
func (f *Fleet) InitialContent() []blocks.Block { return blocks.Ordered(f.assoc) }

// ConcurrentProbes implements polca.ConcurrentProber.
func (f *Fleet) ConcurrentProbes() bool { return true }

// FleetWidth implements polca.FleetWidther: the live pool width (workers ×
// per-worker slots, minus quarantined slots) the learner's batch hint
// scales to.
func (f *Fleet) FleetWidth() int {
	if n := f.pool.Live(); n > 0 {
		return n
	}
	return 1
}

// Probe implements polca.Prober.
func (f *Fleet) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	out, err := f.do(ctx, [][]blocks.Block{q}, false)
	if err != nil {
		return cache.Miss, err
	}
	return out[0], nil
}

// ProbeFresh implements polca.FreshProber.
func (f *Fleet) ProbeFresh(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	out, err := f.do(ctx, [][]blocks.Block{q}, true)
	if err != nil {
		return cache.Miss, err
	}
	return out[0], nil
}

// ProbeBatch implements polca.ProbeBatcher: contiguous sub-batches, one
// per live slot, dispatched concurrently; answers merge by index, so the
// result order is the submission order regardless of which worker answered
// what and in which order the sub-batches landed.
func (f *Fleet) ProbeBatch(ctx context.Context, qs [][]blocks.Block) ([]cache.Outcome, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	width := f.pool.Live()
	if width < 1 {
		width = 1
	}
	if width > len(qs) {
		width = len(qs)
	}
	out := make([]cache.Outcome, len(qs))
	errs := make([]error, width)
	var wg sync.WaitGroup
	for c := 0; c < width; c++ {
		lo, hi := chunkBounds(len(qs), width, c)
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			res, err := f.do(ctx, qs[lo:hi], false)
			if err != nil {
				errs[c] = err
				return
			}
			copy(out[lo:hi], res)
		}(c, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// chunkBounds splits n items into width contiguous chunks, the first n%width
// chunks one longer — the deterministic split ProbeBatch fans out.
func chunkBounds(n, width, c int) (lo, hi int) {
	base, rem := n/width, n%width
	lo = c*base + min(c, rem)
	hi = lo + base
	if c < rem {
		hi++
	}
	return lo, hi
}

// do answers one sub-batch: hedged dispatch with transparent quarantine
// re-execution, wrapped in the fleet's seeded-backoff retry for transient
// failures that survive the pool (systemic faults, a fully-dark fleet
// waiting out probation).
func (f *Fleet) do(ctx context.Context, qs [][]blocks.Block, fresh bool) ([]cache.Outcome, error) {
	var out []cache.Outcome
	_, err := f.retry.Do(ctx, &f.retries, func() (cache.Outcome, error) {
		res, err := f.doOnce(ctx, qs, fresh)
		if err != nil {
			return cache.Miss, err
		}
		out = res
		return cache.Miss, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// doOnce runs one hedged dispatch: a primary attempt, and past the hedge
// deadline a duplicate on another worker; the first answer wins. Probes
// are deterministic, so both attempts agree and the loser is simply
// canceled.
func (f *Fleet) doOnce(ctx context.Context, qs [][]blocks.Block, fresh bool) ([]cache.Outcome, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		out []cache.Outcome
		err error
	}
	ch := make(chan result, 2)
	launch := func() {
		out, err := f.attempt(actx, qs, fresh)
		ch <- result{out, err}
	}
	go launch()
	inflight := 1
	var hedgeC <-chan time.Time
	if f.hedge > 0 {
		t := time.NewTimer(f.hedge)
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for {
		select {
		case r := <-ch:
			inflight--
			if r.err == nil {
				return r.out, nil
			}
			// Prefer reporting the real failure over the cancellation the
			// winner inflicted on the loser.
			if firstErr == nil || ctx.Err() == nil && polca.IsTransient(r.err) {
				firstErr = r.err
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			f.hedges.Add(1)
			inflight++
			go launch()
		}
	}
}

// attempt executes the sub-batch on one checked-out slot, mirroring the
// pool's quarantine-and-continue semantics: a slot that crosses its strike
// threshold is quarantined and the sub-batch transparently re-executes on
// another slot; below the threshold the transient error propagates to the
// retry layer.
func (f *Fleet) attempt(ctx context.Context, qs [][]blocks.Block, fresh bool) ([]cache.Outcome, error) {
	for {
		s, err := f.pool.Checkout(ctx)
		if err != nil {
			return nil, err
		}
		w := s.Prober().(*RemoteProber)
		out, err := w.post(ctx, qs, fresh)
		if err == nil {
			f.pool.Succeed(s)
			return out, nil
		}
		if ctx.Err() != nil {
			// Canceled mid-flight (lost hedge race, caller unwinding): the
			// slot is not to blame.
			f.pool.Release(s)
			return nil, err
		}
		if !polca.IsTransient(err) {
			f.pool.Release(s)
			return nil, err
		}
		if f.pool.Fail(s) {
			f.logf("remote: worker %s quarantined (slot %d)", w.base, s.ID())
			if f.pool.Live() > 0 {
				continue
			}
		}
		return nil, err
	}
}

// SyncSnapshots levels the fleet's probe memos: every worker's snapshot is
// fetched, the richest one wins, and it is shipped to every other worker.
// Workers that reject the payload (damaged in transit, scope mix-up) stay
// cold and keep serving — warmth is an optimization, never a correctness
// requirement. Returns how many workers were warmed.
func (f *Fleet) SyncSnapshots(ctx context.Context) int {
	snaps := make([][]byte, len(f.workers))
	var wg sync.WaitGroup
	for i, w := range f.workers {
		wg.Add(1)
		go func(i int, w *RemoteProber) {
			defer wg.Done()
			data, err := w.fetchSnapshot(ctx)
			if err != nil {
				f.logf("remote: snapshot fetch from %s: %v", w.base, err)
				return
			}
			snaps[i] = data
		}(i, w)
	}
	wg.Wait()
	best := -1
	for i, s := range snaps {
		if s != nil && (best < 0 || len(s) > len(snaps[best])) {
			best = i
		}
	}
	if best < 0 {
		return 0 // whole fleet cold: nothing to level
	}
	warmed := 0
	for i, w := range f.workers {
		if i == best || len(snaps[i]) == len(snaps[best]) {
			continue
		}
		if err := w.shipSnapshot(ctx, snaps[best]); err != nil {
			f.logf("remote: snapshot ship to %s: %v (worker stays cold)", w.base, err)
			continue
		}
		warmed++
		f.shipped.Add(1)
	}
	return warmed
}

// rewarm re-ships the richest live snapshot to a worker that probation
// just re-admitted, so a restarted worker resumes warm. Best-effort, on
// the probation timer's goroutine, before the slot re-enters rotation.
func (f *Fleet) rewarm(worker int) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var best []byte
	for i, w := range f.workers {
		if i == worker {
			continue
		}
		data, err := w.fetchSnapshot(ctx)
		if err == nil && len(data) > len(best) {
			best = data
		}
	}
	if best == nil {
		return
	}
	if err := f.workers[worker].shipSnapshot(ctx, best); err != nil {
		f.logf("remote: re-warm of %s: %v (worker resumes cold)", f.workers[worker].base, err)
		return
	}
	f.shipped.Add(1)
	f.logf("remote: re-warmed %s after probation re-admission", f.workers[worker].base)
}

var (
	_ polca.FreshProber      = (*Fleet)(nil)
	_ polca.ConcurrentProber = (*Fleet)(nil)
	_ polca.ProbeBatcher     = (*Fleet)(nil)
)
