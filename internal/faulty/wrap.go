package faulty

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/learn"
	"repro/internal/polca"
)

// FaultyProber interposes an Injector on a polca.Prober. It deliberately
// does NOT forward the ForkingProber extension: fault injection targets the
// reset-rooted probe path (the one hardware uses and the one retry, voting,
// and quarantine defend), and hiding NewSession forces the oracle onto it.
// FreshProber and TraceProber are forwarded when the inner prober has them,
// with the same fault roll applied.
type FaultyProber struct {
	inner polca.Prober
	inj   *Injector
}

// WrapProber interposes inj on p. A nil injector or an empty plan returns a
// wrapper that still hides ForkingProber (so clean and faulty runs take the
// same oracle path) but never faults.
func WrapProber(p polca.Prober, inj *Injector) *FaultyProber {
	return &FaultyProber{inner: p, inj: inj}
}

// Assoc implements polca.Prober.
func (fp *FaultyProber) Assoc() int { return fp.inner.Assoc() }

// InitialContent implements polca.Prober.
func (fp *FaultyProber) InitialContent() []blocks.Block { return fp.inner.InitialContent() }

// apply rolls the plan for one execution of q and stalls or fails as told.
// It returns (flip, err); on err the inner probe must not run.
func (fp *FaultyProber) apply(ctx context.Context, q []blocks.Block) (bool, error) {
	if fp.inj == nil || fp.inj.plan.Empty() {
		return false, nil
	}
	d := fp.inj.decide(hashBlocks(q))
	if d.stall > 0 {
		t := time.NewTimer(d.stall)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return false, ctx.Err()
		}
	}
	return d.flip, d.err
}

// Probe implements polca.Prober.
func (fp *FaultyProber) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	flip, err := fp.apply(ctx, q)
	if err != nil {
		return cache.Miss, err
	}
	oc, err := fp.inner.Probe(ctx, q)
	if err == nil && flip {
		oc = !oc
	}
	return oc, err
}

// ProbeFresh implements polca.FreshProber, falling back to Probe when the
// inner prober lacks the extension.
func (fp *FaultyProber) ProbeFresh(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	flip, err := fp.apply(ctx, q)
	if err != nil {
		return cache.Miss, err
	}
	var oc cache.Outcome
	if f, ok := fp.inner.(polca.FreshProber); ok {
		oc, err = f.ProbeFresh(ctx, q)
	} else {
		oc, err = fp.inner.Probe(ctx, q)
	}
	if err == nil && flip {
		oc = !oc
	}
	return oc, err
}

// ProbeTrace implements polca.TraceProber when the inner prober does; a flip
// fault inverts the final outcome of the trace (the one Probe would return).
func (fp *FaultyProber) ProbeTrace(ctx context.Context, q []blocks.Block) ([]cache.Outcome, error) {
	tp, ok := fp.inner.(polca.TraceProber)
	if !ok {
		oc, err := fp.Probe(ctx, q)
		if err != nil {
			return nil, err
		}
		return []cache.Outcome{oc}, nil
	}
	flip, err := fp.apply(ctx, q)
	if err != nil {
		return nil, err
	}
	tr, err := tp.ProbeTrace(ctx, q)
	if err == nil && flip && len(tr) > 0 {
		tr[len(tr)-1] = !tr[len(tr)-1]
	}
	return tr, err
}

var (
	_ polca.Prober      = (*FaultyProber)(nil)
	_ polca.FreshProber = (*FaultyProber)(nil)
	_ polca.TraceProber = (*FaultyProber)(nil)
)

// DeadReplicaErr is the permanent fault a dead replica answers with. It is
// transient — from the pool's point of view the replica might recover — but
// a dead replica fails every probe, so its consecutive-failure score crosses
// the quarantine threshold almost immediately.
type DeadReplicaErr struct{ Replica int }

func (e *DeadReplicaErr) Error() string {
	return "faulty: replica " + itoa(e.Replica) + " is dead"
}

// Transient marks replica death retryable (on another replica).
func (e *DeadReplicaErr) Transient() bool { return true }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// ReplicaWrapper returns a cachequery.WithReplicaWrapper-compatible hook
// implementing the plan's die=replica@count clause: replica DieReplica
// answers DieAfter probes normally, then fails every subsequent probe with
// a transient DeadReplicaErr until the pool quarantines it. Other replicas
// pass through untouched (the pool-level wrapper composes with per-probe
// injection configured elsewhere). Returns nil when the plan kills nobody,
// so callers can pass the result straight to the pool option.
func ReplicaWrapper(plan Plan) func(i int, p polca.Prober) polca.Prober {
	if plan.DieReplica < 0 {
		return nil
	}
	return func(i int, p polca.Prober) polca.Prober {
		if i != plan.DieReplica {
			return p
		}
		return &dyingProber{inner: p, budget: plan.DieAfter, id: i}
	}
}

// dyingProber counts answers and dies when the budget is spent.
type dyingProber struct {
	inner  polca.Prober
	id     int
	budget int64
	served atomic.Int64
}

func (d *dyingProber) Assoc() int                     { return d.inner.Assoc() }
func (d *dyingProber) InitialContent() []blocks.Block { return d.inner.InitialContent() }

func (d *dyingProber) alive() bool {
	return d.served.Add(1) <= d.budget
}

func (d *dyingProber) Probe(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	if !d.alive() {
		return cache.Miss, &DeadReplicaErr{Replica: d.id}
	}
	return d.inner.Probe(ctx, q)
}

func (d *dyingProber) ProbeFresh(ctx context.Context, q []blocks.Block) (cache.Outcome, error) {
	if !d.alive() {
		return cache.Miss, &DeadReplicaErr{Replica: d.id}
	}
	if f, ok := d.inner.(polca.FreshProber); ok {
		return f.ProbeFresh(ctx, q)
	}
	return d.inner.Probe(ctx, q)
}

// FaultyTeacher interposes an Injector on a learn.Teacher at the
// policy-query level, for exercising the learner's error paths without a
// full oracle stack underneath.
type FaultyTeacher struct {
	inner learn.Teacher
	inj   *Injector
}

// WrapTeacher interposes inj on t.
func WrapTeacher(t learn.Teacher, inj *Injector) *FaultyTeacher {
	return &FaultyTeacher{inner: t, inj: inj}
}

// NumInputs implements learn.Teacher.
func (ft *FaultyTeacher) NumInputs() int { return ft.inner.NumInputs() }

// OutputQuery implements learn.Teacher. Policy-level outputs are not
// booleans, so a flip fault perturbs the final symbol by +1 instead of
// inverting it.
func (ft *FaultyTeacher) OutputQuery(ctx context.Context, word []int) ([]int, error) {
	var d decision
	if ft.inj != nil && !ft.inj.plan.Empty() {
		d = ft.inj.decide(hashWord(word))
	}
	if d.stall > 0 {
		t := time.NewTimer(d.stall)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	out, err := ft.inner.OutputQuery(ctx, word)
	if err == nil && d.flip && len(out) > 0 {
		out = append([]int(nil), out...)
		out[len(out)-1]++
	}
	return out, err
}

var _ learn.Teacher = (*FaultyTeacher)(nil)
