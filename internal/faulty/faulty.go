// Package faulty injects deterministic, seeded faults into the learning
// pipeline's probing interfaces — the chaos-testing half of the resilience
// layer. A Plan describes the fault mix (transient errors, latency stalls,
// wrong-answer flips, replica death, a simulated crash); an Injector rolls
// the dice; wrappers interpose the injector on polca.Prober and
// learn.Teacher values without the wrapped code knowing.
//
// Determinism is the point: the decision for a probe is a hash of the plan
// seed, the probe's content, and that probe's per-content attempt ordinal —
// not wall-clock or a shared RNG stream — so the N-th execution of a given
// probe faults identically in every run regardless of goroutine
// interleaving, and a faulty soak run is exactly reproducible from its
// seed. A transient fault on attempt k does not recur on attempt k+1 unless
// the hash says so, which is what lets retry policies make progress.
package faulty

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blocks"
)

// Err is an injected transient fault. It implements the Transient marker
// polca.IsTransient looks for, so retry policies absorb it.
type Err struct {
	Kind string // "transient", "stall+err", "replica-death"
	Seq  int64  // injector-wide probe ordinal that faulted
}

func (e *Err) Error() string {
	return fmt.Sprintf("faulty: injected %s fault (probe %d)", e.Kind, e.Seq)
}

// Transient marks the fault retryable.
func (e *Err) Transient() bool { return true }

// ErrCrash is returned (permanently) once a plan's CrashAfter budget is
// exhausted: the injector simulates the process dying mid-learn. It is NOT
// transient — a crash must abort the run, which is what the checkpoint
// -resume pipeline recovers from.
var ErrCrash = errors.New("faulty: injected crash")

// Plan is one reproducible fault mix.
type Plan struct {
	Seed       int64         // hash seed; runs with equal seeds fault identically
	ErrRate    float64       // transient error probability per probe execution
	StallRate  float64       // latency stall probability per probe execution
	StallFor   time.Duration // stall length (default 2ms)
	FlipRate   float64       // wrong-answer probability per probe execution
	DieReplica int           // replica index that dies (-1: none)
	DieAfter   int64         // probes that replica answers before dying
	CrashAfter int64         // total executions before a simulated crash (0: never)
}

// DefaultPlan is an empty plan (no faults) with seed 1.
func DefaultPlan() Plan { return Plan{Seed: 1, StallFor: 2 * time.Millisecond, DieReplica: -1} }

// ParsePlan parses a -faults spec: comma-separated key=value fields.
//
//	seed=42            hash seed
//	err=0.05           transient-error rate
//	stall=0.01:5ms     stall rate and duration
//	flip=0.001         wrong-answer rate
//	die=1@500          replica 1 dies after 500 probes
//	crash=2000         simulated crash after 2000 executions
//
// An empty spec is the empty plan.
func ParsePlan(spec string) (Plan, error) {
	p := DefaultPlan()
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("faulty: malformed field %q (want key=value)", field)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "err":
			p.ErrRate, err = parseRate(v)
		case "flip":
			p.FlipRate, err = parseRate(v)
		case "stall":
			rate, dur, cut := strings.Cut(v, ":")
			p.StallRate, err = parseRate(rate)
			if err == nil && cut {
				p.StallFor, err = time.ParseDuration(dur)
			}
		case "die":
			rep, after, cut := strings.Cut(v, "@")
			if !cut {
				return p, fmt.Errorf("faulty: malformed die spec %q (want replica@count)", v)
			}
			var r, a int64
			if r, err = strconv.ParseInt(rep, 10, 32); err == nil {
				a, err = strconv.ParseInt(after, 10, 64)
			}
			p.DieReplica, p.DieAfter = int(r), a
		case "crash":
			p.CrashAfter, err = strconv.ParseInt(v, 10, 64)
		default:
			return p, fmt.Errorf("faulty: unknown field %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("faulty: bad value for %s: %v", k, err)
		}
	}
	return p, nil
}

func parseRate(s string) (float64, error) {
	r, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v out of [0,1]", r)
	}
	return r, nil
}

// String renders the plan back into spec form.
func (p Plan) String() string {
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	if p.ErrRate > 0 {
		parts = append(parts, fmt.Sprintf("err=%g", p.ErrRate))
	}
	if p.StallRate > 0 {
		parts = append(parts, fmt.Sprintf("stall=%g:%s", p.StallRate, p.StallFor))
	}
	if p.FlipRate > 0 {
		parts = append(parts, fmt.Sprintf("flip=%g", p.FlipRate))
	}
	if p.DieReplica >= 0 {
		parts = append(parts, fmt.Sprintf("die=%d@%d", p.DieReplica, p.DieAfter))
	}
	if p.CrashAfter > 0 {
		parts = append(parts, fmt.Sprintf("crash=%d", p.CrashAfter))
	}
	return strings.Join(parts, ",")
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return p.ErrRate == 0 && p.StallRate == 0 && p.FlipRate == 0 && p.DieReplica < 0 && p.CrashAfter == 0
}

// attemptShards stripes the per-content attempt counters.
const attemptShards = 64

// Injector rolls fault decisions for one plan. One injector may back any
// number of wrappers; its counters are shared so a plan-wide budget (e.g.
// CrashAfter) spans all of them. Injectors are safe for concurrent use.
type Injector struct {
	plan  Plan
	total atomic.Int64 // executions across all wrapped interfaces

	mu       [attemptShards]sync.Mutex
	attempts [attemptShards]map[uint64]int64 // per-content execution ordinals
}

// NewInjector builds an injector for the plan.
func NewInjector(plan Plan) *Injector {
	inj := &Injector{plan: plan}
	for i := range inj.attempts {
		inj.attempts[i] = make(map[uint64]int64)
	}
	return inj
}

// Plan returns the injector's plan.
func (inj *Injector) Plan() Plan { return inj.plan }

// Executions returns the total number of decisions taken so far.
func (inj *Injector) Executions() int64 { return inj.total.Load() }

// nextAttempt returns the 0-based ordinal of this execution among all
// executions of the same content hash.
func (inj *Injector) nextAttempt(content uint64) int64 {
	sh := content % attemptShards
	inj.mu[sh].Lock()
	n := inj.attempts[sh][content]
	inj.attempts[sh][content] = n + 1
	inj.mu[sh].Unlock()
	return n
}

// roll produces a uniform-ish value in [0,1) from the plan seed, a content
// hash, a per-content attempt ordinal, and a per-decision salt (so the
// error, stall, and flip decisions of one execution are independent).
func (inj *Injector) roll(content uint64, attempt int64, salt uint64) float64 {
	x := uint64(inj.plan.Seed)*0x9E3779B97F4A7C15 ^ content ^ uint64(attempt)*0xBF58476D1CE4E5B9 ^ salt*0x94D049BB133111EB
	// splitmix64 finalizer
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// hashBlocks hashes a probe's content.
func hashBlocks(q []blocks.Block) uint64 {
	h := fnv.New64a()
	for _, b := range q {
		h.Write([]byte(b))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// hashWord hashes a policy-level query word.
func hashWord(w []int) uint64 {
	h := fnv.New64a()
	var buf [10]byte
	for _, a := range w {
		n := 0
		for v := uint(a)<<1 ^ uint(int(a)>>63); ; n++ {
			buf[n] = byte(v & 0x7f)
			if v >>= 7; v == 0 {
				break
			}
			buf[n] |= 0x80
		}
		h.Write(buf[:n+1])
	}
	return h.Sum64()
}

// decision is the outcome of one roll of the plan against one execution.
type decision struct {
	err   error
	stall time.Duration
	flip  bool
}

// decide rolls the plan for one execution of content.
func (inj *Injector) decide(content uint64) decision {
	seq := inj.total.Add(1)
	if inj.plan.CrashAfter > 0 && seq > inj.plan.CrashAfter {
		return decision{err: ErrCrash}
	}
	attempt := inj.nextAttempt(content)
	var d decision
	if inj.plan.StallRate > 0 && inj.roll(content, attempt, 2) < inj.plan.StallRate {
		d.stall = inj.plan.StallFor
	}
	if inj.plan.ErrRate > 0 && inj.roll(content, attempt, 1) < inj.plan.ErrRate {
		d.err = &Err{Kind: "transient", Seq: seq}
		return d
	}
	if inj.plan.FlipRate > 0 && inj.roll(content, attempt, 3) < inj.plan.FlipRate {
		d.flip = true
	}
	return d
}
