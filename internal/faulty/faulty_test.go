package faulty

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/blocks"
	"repro/internal/polca"
	"repro/internal/policy"
)

func TestParsePlanRoundTrip(t *testing.T) {
	specs := []string{
		"seed=42,err=0.05,stall=0.01:5ms,flip=0.001,die=1@500,crash=2000",
		"seed=7,err=0.1",
		"seed=1,flip=0.25",
		"seed=3,die=0@10",
		"seed=1",
	}
	for _, spec := range specs {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("ParsePlan(%q).String() = %q", spec, got)
		}
		back, err := ParsePlan(p.String())
		if err != nil || back != p {
			t.Errorf("round trip of %q changed the plan: %+v vs %+v (%v)", spec, back, p, err)
		}
	}
}

func TestParsePlanDefaultsAndEmpty(t *testing.T) {
	p, err := ParsePlan("")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Errorf("empty spec not empty: %+v", p)
	}
	if p.DieReplica != -1 || p.StallFor != 2*time.Millisecond || p.Seed != 1 {
		t.Errorf("defaults wrong: %+v", p)
	}
	if q, err := ParsePlan("err=0.05"); err != nil || q.Empty() {
		t.Errorf("err=0.05 plan: %+v, %v", q, err)
	}
}

func TestParsePlanRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"err=1.5",         // rate out of [0,1]
		"flip=-0.1",       // negative rate
		"err",             // no value
		"die=1",           // missing @count
		"stall=0.5:bogus", // bad duration
		"unknown=1",       // unknown key
		"seed=abc",        // non-integer seed
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) accepted", spec)
		}
	}
}

// TestInjectorDeterminism: two injectors with the same plan make identical
// decisions for the same content/attempt pairs, even when one of them is
// driven from many goroutines in arbitrary interleavings.
func TestInjectorDeterminism(t *testing.T) {
	plan := Plan{Seed: 42, ErrRate: 0.2, FlipRate: 0.1, StallRate: 0.05, StallFor: time.Microsecond, DieReplica: -1}
	contents := []uint64{1, 2, 3, 0xDEADBEEF, 1 << 40}
	const attempts = 50

	type key struct {
		content uint64
		attempt int
	}
	record := func(inj *Injector, parallel bool) map[key]decision {
		out := make(map[key]decision)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for _, c := range contents {
			c := c
			run := func() {
				defer wg.Done()
				for a := 0; a < attempts; a++ {
					d := inj.decide(c)
					mu.Lock()
					out[key{c, a}] = decision{err: d.err, stall: d.stall, flip: d.flip}
					mu.Unlock()
				}
			}
			wg.Add(1)
			if parallel {
				go run()
			} else {
				run()
			}
		}
		wg.Wait()
		return out
	}

	serial := record(NewInjector(plan), false)
	concurrent := record(NewInjector(plan), true)
	var faults int
	for k, a := range serial {
		b := concurrent[k]
		if (a.err == nil) != (b.err == nil) || a.flip != b.flip || a.stall != b.stall {
			t.Fatalf("decision for %+v differs across interleavings: %+v vs %+v", k, a, b)
		}
		if a.err != nil || a.flip || a.stall > 0 {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("plan with 20% error rate injected nothing over 250 decisions")
	}

	// A different seed must produce a different fault pattern.
	other := record(NewInjector(Plan{Seed: 43, ErrRate: 0.2, FlipRate: 0.1, DieReplica: -1}), false)
	same := true
	for k, a := range serial {
		b := other[k]
		if (a.err == nil) != (b.err == nil) || a.flip != b.flip {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical fault patterns")
	}
}

// TestInjectorRetriesProgress: a fault on attempt k must not imply a fault on
// attempt k+1 of the same content — otherwise retry policies could never make
// progress past an unlucky probe.
func TestInjectorRetriesProgress(t *testing.T) {
	inj := NewInjector(Plan{Seed: 9, ErrRate: 0.3, DieReplica: -1})
	const content = 12345
	consecutive, worst := 0, 0
	for a := 0; a < 200; a++ {
		if d := inj.decide(content); d.err != nil {
			consecutive++
			if consecutive > worst {
				worst = consecutive
			}
		} else {
			consecutive = 0
		}
	}
	// P(8 consecutive faults at rate 0.3) ≈ 6.6e-5 per window; with a fixed
	// seed this is a deterministic regression check, not a flaky bound.
	if worst >= 8 {
		t.Errorf("%d consecutive faults on one content; retries cannot progress", worst)
	}
}

func TestInjectorCrashAfter(t *testing.T) {
	inj := NewInjector(Plan{Seed: 1, CrashAfter: 5, DieReplica: -1})
	for i := 0; i < 5; i++ {
		if d := inj.decide(uint64(i)); errors.Is(d.err, ErrCrash) {
			t.Fatalf("crashed at execution %d, budget 5", i+1)
		}
	}
	d := inj.decide(99)
	if !errors.Is(d.err, ErrCrash) {
		t.Fatal("execution 6 did not crash")
	}
	// The crash is permanent and is NOT transient: retries must not absorb it.
	if polca.IsTransient(d.err) {
		t.Error("ErrCrash is transient; retry would mask the crash")
	}
	if d = inj.decide(99); !errors.Is(d.err, ErrCrash) {
		t.Error("crash did not persist")
	}
}

func TestInjectedErrIsTransient(t *testing.T) {
	e := &Err{Kind: "transient", Seq: 7}
	if !polca.IsTransient(e) {
		t.Error("injected fault not transient")
	}
	if !polca.IsTransient(&DeadReplicaErr{Replica: 1}) {
		t.Error("dead-replica fault not transient")
	}
}

// TestFaultyProberHidesForking: the wrapper must force the oracle onto the
// reset-rooted probe path even when the inner prober supports sessions.
func TestFaultyProberHidesForking(t *testing.T) {
	inner := polca.NewSimProber(policy.MustNew("LRU", 4))
	if _, ok := interface{}(inner).(polca.ForkingProber); !ok {
		t.Skip("SimProber no longer forks; nothing to hide")
	}
	wrapped := WrapProber(inner, NewInjector(DefaultPlan()))
	if _, ok := interface{}(wrapped).(polca.ForkingProber); ok {
		t.Fatal("FaultyProber leaks the ForkingProber extension")
	}
}

// TestFaultyProberFaultFreePassThrough: an empty plan never perturbs answers.
func TestFaultyProberFaultFreePassThrough(t *testing.T) {
	clean := polca.NewSimProber(policy.MustNew("LRU", 2))
	wrapped := WrapProber(polca.NewSimProber(policy.MustNew("LRU", 2)), NewInjector(DefaultPlan()))
	q := []blocks.Block{"A", "B", "C", "A"}
	want, err1 := clean.Probe(context.Background(), q)
	got, err2 := wrapped.Probe(context.Background(), q)
	if err1 != nil || err2 != nil || got != want {
		t.Fatalf("empty plan changed the answer: %v/%v vs %v/%v", got, err2, want, err1)
	}
}

// TestFaultyProberInjectsAndFlips: at err=1 every probe fails; at flip=1 every
// answer is inverted.
func TestFaultyProberInjectsAndFlips(t *testing.T) {
	q := []blocks.Block{"A", "B", "C", "B"}
	always := WrapProber(polca.NewSimProber(policy.MustNew("LRU", 2)),
		NewInjector(Plan{Seed: 1, ErrRate: 1, DieReplica: -1}))
	if _, err := always.Probe(context.Background(), q); !polca.IsTransient(err) {
		t.Fatalf("err=1 plan produced %v, want transient fault", err)
	}

	clean := polca.NewSimProber(policy.MustNew("LRU", 2))
	want, _ := clean.Probe(context.Background(), q)
	flipper := WrapProber(polca.NewSimProber(policy.MustNew("LRU", 2)),
		NewInjector(Plan{Seed: 1, FlipRate: 1, DieReplica: -1}))
	got, err := flipper.Probe(context.Background(), q)
	if err != nil || got != !want {
		t.Fatalf("flip=1 plan answered %v (err %v), want %v", got, err, !want)
	}
}

// TestFaultyProberStallHonorsContext: a canceled context interrupts an
// injected stall instead of sleeping through it.
func TestFaultyProberStallHonorsContext(t *testing.T) {
	stalling := WrapProber(polca.NewSimProber(policy.MustNew("LRU", 2)),
		NewInjector(Plan{Seed: 1, StallRate: 1, StallFor: time.Hour, DieReplica: -1}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := stalling.Probe(ctx, []blocks.Block{"A"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("stall under canceled context returned %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("cancellation did not interrupt the stall")
	}
}

func TestDyingReplica(t *testing.T) {
	wrap := ReplicaWrapper(Plan{Seed: 1, DieReplica: 1, DieAfter: 3})
	if wrap == nil {
		t.Fatal("ReplicaWrapper returned nil for a killing plan")
	}
	if ReplicaWrapper(DefaultPlan()) != nil {
		t.Error("ReplicaWrapper not nil for a plan that kills nobody")
	}

	// Replica 0 is untouched.
	p0 := wrap(0, polca.NewSimProber(policy.MustNew("LRU", 2)))
	for i := 0; i < 10; i++ {
		if _, err := p0.Probe(context.Background(), []blocks.Block{"A"}); err != nil {
			t.Fatalf("surviving replica failed: %v", err)
		}
	}

	// Replica 1 answers DieAfter probes, then fails forever with a transient
	// (thus quarantinable) error.
	p1 := wrap(1, polca.NewSimProber(policy.MustNew("LRU", 2)))
	for i := 0; i < 3; i++ {
		if _, err := p1.Probe(context.Background(), []blocks.Block{"A"}); err != nil {
			t.Fatalf("probe %d before death failed: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		_, err := p1.Probe(context.Background(), []blocks.Block{"A"})
		var dead *DeadReplicaErr
		if !errors.As(err, &dead) || dead.Replica != 1 {
			t.Fatalf("dead replica answered: %v", err)
		}
		if !polca.IsTransient(err) {
			t.Fatal("replica death not transient; pool cannot retry elsewhere")
		}
	}
}
