// Package fingerprint implements the nanoBench-style replacement-policy
// identification the paper discusses as concurrent work ([3,4], §10):
// instead of learning an automaton, it runs random access sequences against
// the cache under test and compares the observed hit/miss traces with a
// pool of software-simulated policies, eliminating every candidate that
// disagrees.
//
// Compared with the learning pipeline the approach is fast and simple, but
// it gives no correctness guarantee (an unmodeled policy can accidentally
// agree on all sampled traces), and it can only ever identify policies that
// are already in the pool — exactly the trade-off the paper describes. The
// reproduction uses it to cross-validate the learning results.
package fingerprint

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/polca"
	"repro/internal/policy"
)

// Options tune the fingerprinting campaign.
type Options struct {
	// Trials is the number of random sequences (default 64).
	Trials int
	// Length is the length of each sequence (default 4*assoc).
	Length int
	// Universe is the number of distinct blocks drawn from (default
	// assoc+2, enough to force evictions without churning uselessly).
	Universe int
	// Seed drives the sequence generator.
	Seed int64
}

func (o *Options) defaults(assoc int) {
	if o.Trials <= 0 {
		o.Trials = 64
	}
	if o.Length <= 0 {
		o.Length = 4 * assoc
	}
	if o.Universe <= 0 {
		o.Universe = assoc + 2
	}
}

// Result is the outcome of an identification campaign.
type Result struct {
	// Matches lists the pool policies consistent with every observed
	// trace, in pool order.
	Matches []string
	// Traces is the number of sequences executed.
	Traces int
	// Eliminated maps each rejected policy to the 1-based trial that
	// eliminated it.
	Eliminated map[string]int
}

// Identify runs random sequences against the cache behind pr and eliminates
// pool policies whose simulated traces disagree. The pool entries are
// policy registry names; entries that cannot be instantiated at the
// prober's associativity are skipped.
//
// The prober's reset must park the cache in the pool policies' initial
// state up to block naming — the standard Flush+Refill contract. For
// policies with other reset behaviour the caller should compare against
// machines instead (see internal/experiments' identifyPolicy).
func Identify(ctx context.Context, pr polca.TraceProber, pool []string, opt Options) (*Result, error) {
	assoc := pr.Assoc()
	opt.defaults(assoc)
	rng := rand.New(rand.NewSource(opt.Seed))

	type candidate struct {
		name string
		set  *cache.Set
	}
	var cands []candidate
	for _, name := range pool {
		pol, err := policy.New(name, assoc)
		if err != nil {
			continue
		}
		cands = append(cands, candidate{name: pol.Name(), set: cache.NewSet(pol)})
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("fingerprint: empty candidate pool at associativity %d", assoc)
	}

	res := &Result{Eliminated: make(map[string]int)}
	universe := blocks.Ordered(opt.Universe)
	alive := cands
	for trial := 1; trial <= opt.Trials && len(alive) > 1; trial++ {
		res.Traces++
		seq := make([]blocks.Block, opt.Length)
		for i := range seq {
			seq[i] = universe[rng.Intn(len(universe))]
		}
		observed, err := pr.ProbeTrace(ctx, seq)
		if err != nil {
			return nil, err
		}
		var next []candidate
		for _, c := range alive {
			c.set.Reset()
			agreed := true
			for i, b := range seq {
				oc, _ := c.set.Access(b)
				if oc != observed[i] {
					agreed = false
					break
				}
			}
			if agreed {
				next = append(next, c)
			} else {
				res.Eliminated[c.name] = trial
			}
		}
		alive = next
	}
	for _, c := range alive {
		res.Matches = append(res.Matches, c.name)
	}
	return res, nil
}

// DefaultPool returns the full policy zoo as the candidate pool.
func DefaultPool() []string { return policy.Names() }
