package fingerprint

import (
	"context"
	"testing"

	"repro/internal/polca"
	"repro/internal/policy"
)

func TestIdentifySimulatedPolicies(t *testing.T) {
	// Every zoo policy must be identified uniquely against the full pool
	// when observed through a simulated cache.
	for _, name := range []string{"FIFO", "LRU", "PLRU", "MRU", "LIP", "SRRIP-HP", "SRRIP-FP", "New1", "New2"} {
		pr := polca.NewSimProber(policy.MustNew(name, 4))
		res, err := Identify(context.Background(), pr, DefaultPool(), Options{Seed: 42})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Matches) != 1 || res.Matches[0] != name {
			t.Errorf("%s identified as %v", name, res.Matches)
		}
	}
}

func TestIdentifyReportsEliminations(t *testing.T) {
	pr := polca.NewSimProber(policy.MustNew("LRU", 4))
	res, err := Identify(context.Background(), pr, []string{"LRU", "FIFO"}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Eliminated["FIFO"] == 0 {
		t.Error("FIFO elimination trial not recorded")
	}
	if res.Traces == 0 {
		t.Error("no traces recorded")
	}
}

func TestIdentifyAmbiguousPool(t *testing.T) {
	// BIP with its default 1/32 throttle behaves like LIP on short traces:
	// with few, short trials both candidates survive — the "no guarantees"
	// failure mode of fingerprinting.
	pr := polca.NewSimProber(policy.MustNew("LIP", 4))
	res, err := Identify(context.Background(), pr, []string{"LIP", "BIP"}, Options{Seed: 3, Trials: 2, Length: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) < 2 {
		t.Errorf("expected an ambiguous result on short traces, got %v", res.Matches)
	}
}

func TestIdentifyRejectsEmptyPool(t *testing.T) {
	pr := polca.NewSimProber(policy.MustNew("LRU", 4))
	if _, err := Identify(context.Background(), pr, []string{"PLRU"}, Options{}); err != nil {
		t.Fatalf("PLRU instantiates at assoc 4: %v", err)
	}
	pr3 := polca.NewSimProber(policy.MustNew("LRU", 3))
	if _, err := Identify(context.Background(), pr3, []string{"PLRU"}, Options{}); err == nil {
		t.Error("pool with no instantiable candidates accepted")
	}
}
