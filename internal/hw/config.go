// Package hw simulates the silicon CPUs of the paper's hardware case study
// (§7): a multi-level, sliced, physically-indexed cache hierarchy with
// realistic obstacles — virtual-to-physical translation, complex-addressed
// L3 slices, inclusive back-invalidation, latency noise, a stream
// prefetcher, way-partitioning (Intel CAT), and the adaptive leader/follower
// set dueling of Appendix B.
//
// This package is the substitution mandated by the reproduction plan
// (DESIGN.md): a Go process cannot take cycle-accurate measurements of its
// own host caches, so CacheQuery's backend drives this model through the
// same abstract operations a kernel module would use on silicon — loads,
// clflush/wbinvd, rdtsc-style latency readings, and page-table walks.
package hw

import "fmt"

// LineSize is the cache line (and memory block) size in bytes.
const LineSize = 64

// PageSize is the virtual memory page size in bytes.
const PageSize = 4096

// Level identifies a cache level.
type Level int

// Cache levels.
const (
	L1 Level = iota
	L2
	L3
)

// String implements fmt.Stringer.
func (l Level) String() string { return [...]string{"L1", "L2", "L3"}[l] }

// ParseLevel parses "L1", "L2" or "L3" (case-insensitive digits allowed).
func ParseLevel(s string) (Level, error) {
	switch s {
	case "L1", "l1", "1":
		return L1, nil
	case "L2", "l2", "2":
		return L2, nil
	case "L3", "l3", "3":
		return L3, nil
	}
	return 0, fmt.Errorf("hw: unknown cache level %q", s)
}

// LeaderKind classifies a cache set's role in an adaptive last-level cache.
type LeaderKind int

// Adaptive set roles (Appendix B).
const (
	// Follower sets switch policies dynamically according to the PSEL
	// set-dueling counter.
	Follower LeaderKind = iota
	// LeaderThrashable sets run the fixed thrash-susceptible policy
	// (New2 on Skylake/Kaby Lake).
	LeaderThrashable
	// LeaderResistant sets run the fixed thrash-resistant policy.
	LeaderResistant
)

// LevelConfig describes one cache level of a CPU model (Table 3).
type LevelConfig struct {
	Assoc        int
	Slices       int
	SetsPerSlice int
	// Policy names the replacement policy of every set of the level.
	// Ignored for an adaptive L3 (see CPUConfig.L3Adaptive), where the
	// leader rule decides per set.
	Policy string
	// HitLatency is the mean load-to-use latency in cycles for a hit at
	// this level.
	HitLatency float64
	// LatencySigma is the standard deviation of the latency noise.
	LatencySigma float64
}

// CPUConfig is a full processor model.
type CPUConfig struct {
	Name string // e.g. "i7-6500 (Skylake)"
	Arch string // microarchitecture name
	L1   LevelConfig
	L2   LevelConfig
	L3   LevelConfig
	// MemLatency/MemSigma model a DRAM access.
	MemLatency float64
	MemSigma   float64
	// L3Adaptive enables leader/follower set dueling on the L3.
	L3Adaptive bool
	// LeaderRule classifies L3 sets when L3Adaptive is set.
	LeaderRule func(slice, set int) LeaderKind
	// ThrashablePolicy and ResistantPolicy name the two dueling policies.
	ThrashablePolicy string
	ResistantPolicy  string
	// ResistantNondet makes the thrash-resistant leader policy use a
	// randomized insertion throttle, reproducing the nondeterministic
	// leader group observed on Haswell.
	ResistantNondet bool
	// SupportsCAT enables Intel Cache Allocation Technology way masking on
	// the L3 (absent on Haswell).
	SupportsCAT bool
}

// skylakeLeaderRule implements the Appendix B set-selection formulas for
// Skylake and Kaby Lake: sets with ((set>>5 & 0x1f) ^ (set & 0x1f)) == 0 and
// bit 1 clear are thrash-susceptible leaders; the complementary group (XOR
// pattern 0x1f with bit 1 set) are the second leader group. The rule applies
// in every slice.
func skylakeLeaderRule(_, set int) LeaderKind {
	x := ((set & 0x3e0) >> 5) ^ (set & 0x1f)
	switch {
	case x == 0x00 && set&0x2 == 0x0:
		return LeaderThrashable
	case x == 0x1f && set&0x2 == 0x2:
		return LeaderResistant
	default:
		return Follower
	}
}

// haswellLeaderRule implements the Haswell observation: leader ranges live
// only in slice 0, selected by comparing index bits 6..10 with fixed
// constants — sets 512-575 are thrash-susceptible, sets 768-831 thrash
// resistant.
func haswellLeaderRule(slice, set int) LeaderKind {
	if slice != 0 {
		return Follower
	}
	switch (set & 0x7c0) >> 6 {
	case 0x8:
		return LeaderThrashable
	case 0xc:
		return LeaderResistant
	default:
		return Follower
	}
}

// Haswell returns the i7-4790 model of Table 3.
func Haswell() CPUConfig {
	return CPUConfig{
		Name:             "i7-4790 (Haswell)",
		Arch:             "Haswell",
		L1:               LevelConfig{Assoc: 8, Slices: 1, SetsPerSlice: 64, Policy: "PLRU", HitLatency: 4, LatencySigma: 0.5},
		L2:               LevelConfig{Assoc: 8, Slices: 1, SetsPerSlice: 512, Policy: "PLRU", HitLatency: 12, LatencySigma: 1},
		L3:               LevelConfig{Assoc: 16, Slices: 4, SetsPerSlice: 2048, HitLatency: 42, LatencySigma: 3},
		MemLatency:       200,
		MemSigma:         15,
		L3Adaptive:       true,
		LeaderRule:       haswellLeaderRule,
		ThrashablePolicy: "New2",
		ResistantPolicy:  "BRRIP",
		ResistantNondet:  true,
		SupportsCAT:      false,
	}
}

// Skylake returns the i5-6500 model of Table 3.
func Skylake() CPUConfig {
	return CPUConfig{
		Name:             "i5-6500 (Skylake)",
		Arch:             "Skylake",
		L1:               LevelConfig{Assoc: 8, Slices: 1, SetsPerSlice: 64, Policy: "PLRU", HitLatency: 4, LatencySigma: 0.5},
		L2:               LevelConfig{Assoc: 4, Slices: 1, SetsPerSlice: 1024, Policy: "New1", HitLatency: 12, LatencySigma: 1},
		L3:               LevelConfig{Assoc: 12, Slices: 8, SetsPerSlice: 1024, HitLatency: 40, LatencySigma: 3},
		MemLatency:       190,
		MemSigma:         15,
		L3Adaptive:       true,
		LeaderRule:       skylakeLeaderRule,
		ThrashablePolicy: "New2",
		ResistantPolicy:  "BRRIP",
		SupportsCAT:      true,
	}
}

// KabyLake returns the i7-8550U model of Table 3.
func KabyLake() CPUConfig {
	return CPUConfig{
		Name:             "i7-8550U (Kaby Lake)",
		Arch:             "Kaby Lake",
		L1:               LevelConfig{Assoc: 8, Slices: 1, SetsPerSlice: 64, Policy: "PLRU", HitLatency: 4, LatencySigma: 0.5},
		L2:               LevelConfig{Assoc: 4, Slices: 1, SetsPerSlice: 1024, Policy: "New1", HitLatency: 12, LatencySigma: 1},
		L3:               LevelConfig{Assoc: 16, Slices: 8, SetsPerSlice: 1024, HitLatency: 44, LatencySigma: 3},
		MemLatency:       210,
		MemSigma:         15,
		L3Adaptive:       true,
		LeaderRule:       skylakeLeaderRule,
		ThrashablePolicy: "New2",
		ResistantPolicy:  "BRRIP",
		SupportsCAT:      true,
	}
}

// Models returns the three evaluated CPU models in the paper's order.
func Models() []CPUConfig {
	return []CPUConfig{Haswell(), Skylake(), KabyLake()}
}

// Config retrieves the level configuration for a Level.
func (c CPUConfig) Config(l Level) LevelConfig {
	switch l {
	case L1:
		return c.L1
	case L2:
		return c.L2
	default:
		return c.L3
	}
}
