package hw

import (
	"testing"

	"repro/internal/policy"
)

// TestDuelPolicyFollowsPSEL: a follower set's victim choice must track the
// set-dueling counter.
func TestDuelPolicyFollowsPSEL(t *testing.T) {
	cpu := NewCPU(Skylake(), 3)
	mk := func() *duelPolicy {
		return &duelPolicy{
			cpu: cpu,
			a:   policy.MustNew("New2", 4),
			b:   mustBRRIP(t, 4),
		}
	}
	// Drive both copies into a state where the two policies disagree on
	// the victim, then flip PSEL.
	low, high := mk(), mk()
	prep := func(p *duelPolicy) {
		for i := 0; i < 4; i++ {
			p.OnMiss()
		}
		p.OnHit(1)
		p.OnHit(2)
	}
	prep(low)
	prep(high)
	cpu.psel = 0
	va := low.OnMiss()
	cpu.psel = pselMax
	vb := high.OnMiss()
	if va == vb {
		t.Skip("policies agree on this state; adjust the preparation if this starts happening")
	}
}

func mustBRRIP(t *testing.T, assoc int) policy.Policy {
	t.Helper()
	p, err := policy.NewBRRIP(assoc, policy.DefaultBRRIPEpsilon)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDuelPolicyCloneSharesPSELButNotMetadata: clones must share the global
// counter while keeping independent per-set metadata.
func TestDuelPolicyCloneSharesPSELButNotMetadata(t *testing.T) {
	cpu := NewCPU(Skylake(), 3)
	p := &duelPolicy{cpu: cpu, a: policy.MustNew("New2", 4), b: mustBRRIP(t, 4)}
	c := p.Clone().(*duelPolicy)
	if c.cpu != p.cpu {
		t.Error("clone does not share the CPU (and its PSEL)")
	}
	c.OnMiss()
	if c.StateKey() == p.StateKey() {
		t.Error("clone metadata tracks the original")
	}
}

// TestNondetThrottleDiverges: the Haswell-style randomized BRRIP must
// produce different eviction streams across replays — that is its purpose.
func TestNondetThrottleDiverges(t *testing.T) {
	cpu := NewCPU(Haswell(), 3)
	p := newNondetThrottle(cpu, 4)
	run := func() []int {
		p.Reset()
		var out []int
		for i := 0; i < 64; i++ {
			out = append(out, p.OnMiss())
			if i%5 == 0 {
				p.OnHit(i % 4)
			}
		}
		return out
	}
	a, b := run(), run()
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("randomized throttle replayed identically")
	}
}

// TestLeaderPolicyAssignment: the three set roles get the right policy
// type on an adaptive L3.
func TestLeaderPolicyAssignment(t *testing.T) {
	cpu := NewCPU(Skylake(), 3)
	cases := []struct {
		set  int
		want string
	}{
		{0, "New2"},     // thrashable leader (XOR formula, bit 1 clear)
		{62, "BRRIP"},   // resistant leader
		{5, "Adaptive"}, // follower
	}
	for _, c := range cases {
		pol := cpu.newPolicyFor(L3, 0, c.set, 12)
		name := pol.Name()
		if len(name) < len(c.want) || name[:len(c.want)] != c.want {
			t.Errorf("set %d: policy %q, want prefix %q", c.set, name, c.want)
		}
	}
	// Non-adaptive levels always get the configured policy.
	if pol := cpu.newPolicyFor(L2, 0, 5, 4); pol.Name() != "New1" {
		t.Errorf("L2 policy %q", pol.Name())
	}
}

// TestHaswellResistantLeaderIsNondeterministic: the configuration flag
// materializes the randomized throttle on Haswell but plain BRRIP on
// Skylake.
func TestHaswellResistantLeaderIsNondeterministic(t *testing.T) {
	h := NewCPU(Haswell(), 3)
	if _, ok := h.newResistantPolicy(16).(*nondetThrottle); !ok {
		t.Error("Haswell resistant leader is deterministic")
	}
	s := NewCPU(Skylake(), 3)
	if _, ok := s.newResistantPolicy(12).(*policy.BRRIP); !ok {
		t.Error("Skylake resistant leader is not plain BRRIP")
	}
}
