package hw

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strconv"
	"sync"

	"repro/internal/blocks"
	"repro/internal/cache"
	"repro/internal/policy"
)

// Addr is a virtual or physical byte address.
type Addr uint64

// physBits is the size of the simulated physical address space (16 GiB),
// enough to exercise the high bits of the slice hash.
const physBits = 34

// sliceHashMasks are the XOR-reduction masks of the complex slice-addressing
// function reverse-engineered by Maurice et al. [27]; slice bit i is the
// parity of the physical address masked with masks[i].
var sliceHashMasks = [3]uint64{0x1b5f575440, 0x2eb5faa880, 0x3cccc93100}

// CPU is one simulated processor. It is not safe for concurrent use, like
// the single hardware thread CacheQuery pins itself to.
type CPU struct {
	cfg CPUConfig
	rng *rand.Rand

	pages    map[uint64]uint64 // virtual page -> physical page
	usedPhys map[uint64]bool
	nextVirt Addr               // bump allocator for AllocBuffer
	lines    map[Addr]*lineInfo // per-line memo: name, set mapping per level

	levels [3]*cacheLevel
	psel   int // set-dueling counter, 0..pselMax

	prefetchOn bool
	lowNoise   bool
	lastLine   Addr
	streak     int

	interpreted bool // drive set policies through the interface, not the kernel

	tsc       uint64
	loadCount uint64
}

// hwCompileStates bounds the policy kernel inside the simulated CPUs: big
// enough for every per-set policy the configured models install (PLRU-8 has
// 128 control states, New1-4 160, CAT-reduced BRRIP-4 8,192), small enough
// that probing an uncompilable giant (New2 at the full 12/16-way L3) fails
// in milliseconds and is cached as such.
const hwCompileStates = 1 << 14

// compiledPolicies caches compiled transition tables process-wide, keyed by
// policy name and associativity. Tables are immutable, so thousands of sets
// across every CPU replica share one table and each set carries only its
// int32 control state; a nil entry records that the policy exceeds the
// bound and stays interpreted. Each key maps to a single-flight slot:
// replica CPUs built on parallel goroutines used to race on the compile and
// throw away the losers, which for a 16K-state bound is real work — now the
// first goroutine compiles and the rest wait on its result.
var compiledPolicies sync.Map // "name/assoc" -> *compileSlot

type compileSlot struct {
	once sync.Once
	tab  *policy.Table // nil: the policy exceeds the bound, stays interpreted
}

func compiledPolicy(name string, assoc int) *policy.Table {
	key := name + "/" + strconv.Itoa(assoc)
	v, _ := compiledPolicies.LoadOrStore(key, &compileSlot{})
	slot := v.(*compileSlot)
	slot.once.Do(func() {
		t, err := policy.CompileBound(policy.MustNew(name, assoc), hwCompileStates)
		if err != nil {
			t = nil
		}
		slot.tab = t
	})
	return slot.tab
}

// newPolicy instantiates one set's policy: a fresh view of the shared
// compiled table when the kernel applies, the interpreted policy otherwise.
func (c *CPU) newPolicy(name string, assoc int) policy.Policy {
	if !c.interpreted {
		if t := compiledPolicy(name, assoc); t != nil {
			return t.At(t.InitState())
		}
	}
	return policy.MustNew(name, assoc)
}

// SetInterpreted switches the CPU's replacement policies between the
// compiled kernel (default) and the interpreted Policy interface, dropping
// every materialized set so the change applies uniformly. Observable cache
// behaviour is bit-identical either way; the toggle exists for the
// -compiled=false ablations.
//
// Call it on a fresh CPU, before any traffic (NewCPUSim does): toggling
// mid-run would empty the caches like a wbinvd while TSC/PSEL keep
// running — a state matching neither a pure-compiled nor a
// pure-interpreted run — so it panics once traffic has flowed.
func (c *CPU) SetInterpreted(on bool) {
	if c.loadCount != 0 || c.tsc != 0 {
		panic("hw: SetInterpreted must be called on a fresh CPU, before any traffic")
	}
	c.interpreted = on
	for _, lv := range c.levels {
		lv.sets = make(map[uint32]*cache.Set)
	}
}

const (
	pselMax  = 1023
	pselInit = 512
)

// cacheLevel is one level of the hierarchy with lazily materialized sets.
type cacheLevel struct {
	lvl      Level
	cfg      LevelConfig
	sets     map[uint32]*cache.Set // key: slice<<20 | set
	catAssoc int                   // 0 = CAT off (full associativity)
}

// NewCPU builds a simulated processor. The seed fixes the page-frame
// assignment, latency noise and the randomized components of the adaptive
// L3, making whole experiments reproducible.
func NewCPU(cfg CPUConfig, seed int64) *CPU {
	c := &CPU{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		pages:    make(map[uint64]uint64),
		usedPhys: make(map[uint64]bool),
		nextVirt: PageSize, // keep the zero page unmapped
		lines:    make(map[Addr]*lineInfo),
		psel:     pselInit,
	}
	for _, l := range []Level{L1, L2, L3} {
		c.levels[l] = &cacheLevel{lvl: l, cfg: cfg.Config(l), sets: make(map[uint32]*cache.Set)}
	}
	return c
}

// NewCPUSim is NewCPU with an explicit policy representation: interpreted
// skips the compiled kernel. It is the constructor the -compiled toggles
// use, so every CPU (primary and replicas alike) is configured identically
// before any traffic.
func NewCPUSim(cfg CPUConfig, seed int64, interpreted bool) *CPU {
	c := NewCPU(cfg, seed)
	if interpreted {
		c.SetInterpreted(true)
	}
	return c
}

// Config returns the processor model.
func (c *CPU) Config() CPUConfig { return c.cfg }

// AllocBuffer reserves n contiguous virtual pages and returns the base
// address. Physical frames are assigned on first touch.
func (c *CPU) AllocBuffer(n int) Addr {
	base := c.nextVirt
	c.nextVirt += Addr(n) * PageSize
	return base
}

// TranslateToPhys walks the simulated page table, allocating a frame on
// first touch — the privileged API a kernel-module backend relies on.
func (c *CPU) TranslateToPhys(va Addr) Addr {
	vpage := uint64(va) / PageSize
	ppage, ok := c.pages[vpage]
	if !ok {
		// Deterministic pseudo-random frame assignment with collision
		// probing, seeded by the CPU's RNG state at first touch.
		ppage = c.rng.Uint64() & (1<<(physBits-12) - 1)
		for c.usedPhys[ppage] {
			ppage = (ppage + 1) & (1<<(physBits-12) - 1)
		}
		c.usedPhys[ppage] = true
		c.pages[vpage] = ppage
	}
	return Addr(ppage*PageSize + uint64(va)%PageSize)
}

// SetIndex returns the (slice, set) pair a physical address maps to at a
// level. This mapping knowledge is what CacheQuery is parametric on (§4.3).
func (c *CPU) SetIndex(l Level, pa Addr) (slice, set int) {
	cfg := c.cfg.Config(l)
	set = int(uint64(pa) / LineSize % uint64(cfg.SetsPerSlice))
	if cfg.Slices == 1 {
		return 0, set
	}
	k := bits.TrailingZeros(uint(cfg.Slices))
	for i := 0; i < k; i++ {
		if bits.OnesCount64(uint64(pa)&sliceHashMasks[i])%2 == 1 {
			slice |= 1 << i
		}
	}
	return slice, set
}

// blockName is the cache-internal name of the line containing pa.
func blockName(pa Addr) blocks.Block {
	return "H" + strconv.FormatUint(uint64(pa)/LineSize, 16)
}

// lineInfo caches everything the load path needs per cache line: the block
// name and the (slice, set) mapping at every level. Computing the slice
// hash and formatting block names dominated the simulator's profile before
// this memo.
type lineInfo struct {
	name blocks.Block
	key  [3]uint32 // slice<<20 | set, per level
}

func (c *CPU) lineInfo(pa Addr) *lineInfo {
	line := pa &^ (LineSize - 1)
	if li, ok := c.lines[line]; ok {
		return li
	}
	li := &lineInfo{name: blockName(line)}
	for _, l := range []Level{L1, L2, L3} {
		slice, set := c.SetIndex(l, line)
		li.key[l] = uint32(slice)<<20 | uint32(set)
	}
	c.lines[line] = li
	return li
}

// lineName returns the memoized block name of pa's line.
func (c *CPU) lineName(pa Addr) blocks.Block { return c.lineInfo(pa).name }

// effectiveAssoc returns the associativity visible at a level, accounting
// for CAT way masking.
func (lv *cacheLevel) effectiveAssoc() int {
	if lv.catAssoc > 0 {
		return lv.catAssoc
	}
	return lv.cfg.Assoc
}

// setFor materializes the cache set a physical address maps to.
func (c *CPU) setFor(l Level, pa Addr) *cache.Set {
	return c.setForKey(l, c.lineInfo(pa).key[l])
}

func (c *CPU) setForKey(l Level, key uint32) *cache.Set {
	lv := c.levels[l]
	if s, ok := lv.sets[key]; ok {
		return s
	}
	slice, set := int(key>>20), int(key&(1<<20-1))
	s := cache.NewEmptySet(c.newPolicyFor(l, slice, set, lv.effectiveAssoc()))
	lv.sets[key] = s
	return s
}

// newPolicyFor instantiates the replacement policy of one set. The adaptive
// wrappers (dueling followers, the randomized throttle) stay interpreted —
// they are deliberately not deterministic Mealy machines — but their inner
// dueling policies run on the kernel.
func (c *CPU) newPolicyFor(l Level, slice, set, assoc int) policy.Policy {
	cfg := c.cfg.Config(l)
	if l != L3 || !c.cfg.L3Adaptive {
		return c.newPolicy(cfg.Policy, assoc)
	}
	switch c.cfg.LeaderRule(slice, set) {
	case LeaderThrashable:
		return c.newPolicy(c.cfg.ThrashablePolicy, assoc)
	case LeaderResistant:
		return c.newResistantPolicy(assoc)
	default:
		return &duelPolicy{
			cpu: c,
			a:   c.newPolicy(c.cfg.ThrashablePolicy, assoc),
			b:   c.newResistantPolicy(assoc),
		}
	}
}

func (c *CPU) newResistantPolicy(assoc int) policy.Policy {
	if c.cfg.ResistantNondet {
		return newNondetThrottle(c, assoc)
	}
	return c.newPolicy("BRRIP", assoc)
}

// LeaderKindOf classifies an L3 set, mirroring the configuration rule.
func (c *CPU) LeaderKindOf(slice, set int) LeaderKind {
	if !c.cfg.L3Adaptive {
		return Follower
	}
	return c.cfg.LeaderRule(slice, set)
}

// accessSet performs one access at a level and returns the outcome plus the
// name of any evicted block.
func accessSet(s *cache.Set, b blocks.Block) (cache.Outcome, blocks.Block) {
	oc, _, evicted := s.AccessEvicted(b)
	return oc, evicted
}

// Load performs one memory load and returns the measured latency in cycles,
// as an rdtsc-based profiler would observe it.
func (c *CPU) Load(va Addr) float64 {
	pa := c.TranslateToPhys(va)
	li := c.lineInfo(pa)
	b := li.name
	c.loadCount++

	var base float64
	if oc, _ := accessSet(c.setForKey(L1, li.key[L1]), b); oc == cache.Hit {
		base = c.cfg.L1.HitLatency + c.noise(c.cfg.L1.LatencySigma)
	} else if oc, _ := accessSet(c.setForKey(L2, li.key[L2]), b); oc == cache.Hit {
		base = c.cfg.L2.HitLatency + c.noise(c.cfg.L2.LatencySigma)
	} else if oc, ev := c.accessL3(li, b); oc == cache.Hit {
		base = c.cfg.L3.HitLatency + c.noise(c.cfg.L3.LatencySigma)
		_ = ev
	} else {
		base = c.cfg.MemLatency + c.noise(c.cfg.MemSigma)
	}
	if base < 1 {
		base = 1
	}
	c.tsc += uint64(base)
	if c.prefetchOn {
		c.maybePrefetch(pa)
	}
	return base
}

// accessL3 accesses the (possibly adaptive) L3, maintaining the set-dueling
// counter and the inclusive-hierarchy back-invalidation.
func (c *CPU) accessL3(li *lineInfo, b blocks.Block) (cache.Outcome, blocks.Block) {
	slice, set := int(li.key[L3]>>20), int(li.key[L3]&(1<<20-1))
	s := c.setForKey(L3, li.key[L3])
	oc, evicted := accessSet(s, b)
	if oc == cache.Miss && c.cfg.L3Adaptive {
		// Misses in leader sets steer PSEL towards the other policy.
		switch c.cfg.LeaderRule(slice, set) {
		case LeaderThrashable:
			if c.psel < pselMax {
				c.psel++
			}
		case LeaderResistant:
			if c.psel > 0 {
				c.psel--
			}
		}
	}
	if evicted != "" {
		// Inclusive LLC: evicting a line invalidates it in L1 and L2.
		c.invalidateAbove(evicted)
	}
	return oc, evicted
}

// invalidateAbove removes a block from L1 and L2 (back-invalidation).
func (c *CPU) invalidateAbove(b blocks.Block) {
	pa, err := strconv.ParseUint(string(b[1:]), 16, 64)
	if err != nil {
		return
	}
	line := Addr(pa * LineSize)
	c.setFor(L1, line).FlushBlock(b)
	c.setFor(L2, line).FlushBlock(b)
}

// noise draws latency noise: Gaussian jitter plus rare large outliers
// standing in for interrupts and SMM excursions. CacheQuery's low-noise
// environment setup (§4.3) suppresses most outliers.
func (c *CPU) noise(sigma float64) float64 {
	n := c.rng.NormFloat64() * sigma
	outlierP := 1.0 / 200
	if c.lowNoise {
		outlierP = 1.0 / 20000
	} else {
		n *= 3
	}
	if c.rng.Float64() < outlierP {
		n += 150 + c.rng.Float64()*300
	}
	return n
}

// maybePrefetch implements a stream prefetcher: after two consecutive
// +1-line strides it pulls the next line into L2 (and L3 on the way).
func (c *CPU) maybePrefetch(pa Addr) {
	line := pa / LineSize
	if line == c.lastLine+1 {
		c.streak++
	} else if line != c.lastLine {
		c.streak = 0
	}
	c.lastLine = line
	if c.streak >= 2 {
		next := (line + 1) * LineSize
		li := c.lineInfo(next)
		if oc, _ := c.accessL3(li, li.name); oc == cache.Miss || oc == cache.Hit {
			accessSet(c.setForKey(L2, li.key[L2]), li.name)
		}
	}
}

// CLFlush invalidates the line containing va throughout the hierarchy.
func (c *CPU) CLFlush(va Addr) {
	pa := c.TranslateToPhys(va)
	b := c.lineName(pa)
	for _, l := range []Level{L1, L2, L3} {
		c.setFor(l, pa).FlushBlock(b)
	}
	c.tsc += 120
}

// WBInvd invalidates every cache line on the processor. As on silicon, the
// replacement metadata is not reset — only the data is gone.
func (c *CPU) WBInvd() {
	for _, lv := range c.levels {
		for _, s := range lv.sets {
			s.Flush()
		}
	}
	c.tsc += 20000
}

// SetPrefetcher enables or disables the hardware prefetcher (the MSR pokes
// of §4.3).
func (c *CPU) SetPrefetcher(on bool) { c.prefetchOn = on; c.streak = 0 }

// SetLowNoise models disabling hyper-threading, frequency scaling, other
// cores and interrupts around measurements.
func (c *CPU) SetLowNoise(on bool) { c.lowNoise = on }

// SetCATWays restricts the L3 fill mask to the given number of ways
// (virtually reducing associativity, §7.1). It drops all materialized L3
// sets, like reprogramming the class-of-service masks after a wbinvd.
// Passing 0 restores full associativity.
func (c *CPU) SetCATWays(ways int) error {
	if !c.cfg.SupportsCAT && ways != 0 {
		return fmt.Errorf("hw: %s does not support CAT", c.cfg.Name)
	}
	if ways < 0 || ways > c.cfg.L3.Assoc {
		return fmt.Errorf("hw: CAT ways %d out of range 0..%d", ways, c.cfg.L3.Assoc)
	}
	c.levels[L3].catAssoc = ways
	c.levels[L3].sets = make(map[uint32]*cache.Set)
	return nil
}

// EffectiveAssoc returns the associativity visible at a level, accounting
// for CAT way masking on the L3.
func (c *CPU) EffectiveAssoc(l Level) int { return c.levels[l].effectiveAssoc() }

// RDTSC returns the timestamp counter.
func (c *CPU) RDTSC() uint64 { return c.tsc }

// LoadCount returns the number of loads issued (a performance-counter
// stand-in used by the cost experiments).
func (c *CPU) LoadCount() uint64 { return c.loadCount }

// PSEL exposes the set-dueling counter for the Appendix B experiments.
func (c *CPU) PSEL() int { return c.psel }

// ResidentLevel reports the lowest level holding va's line, or -1 when
// uncached — a white-box hook for tests only.
func (c *CPU) ResidentLevel(va Addr) int {
	pa := c.TranslateToPhys(va)
	b := c.lineName(pa)
	for _, l := range []Level{L1, L2, L3} {
		if c.setFor(l, pa).Lookup(b) >= 0 {
			return int(l)
		}
	}
	return -1
}
