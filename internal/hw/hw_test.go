package hw

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/policy"
)

func skylake(t *testing.T) *CPU {
	t.Helper()
	c := NewCPU(Skylake(), 1)
	c.SetLowNoise(true)
	return c
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"L1": L1, "l2": L2, "3": L3} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("L4"); err == nil {
		t.Error("ParseLevel(L4) succeeded")
	}
}

func TestTranslationIsStableAndInjective(t *testing.T) {
	c := skylake(t)
	base := c.AllocBuffer(64)
	seen := make(map[Addr]bool)
	for i := 0; i < 64; i++ {
		va := base + Addr(i)*PageSize
		pa := c.TranslateToPhys(va)
		if pa2 := c.TranslateToPhys(va); pa2 != pa {
			t.Fatalf("translation of %#x changed: %#x vs %#x", va, pa, pa2)
		}
		page := pa &^ (PageSize - 1)
		if seen[page] {
			t.Fatalf("physical page %#x assigned twice", page)
		}
		seen[page] = true
		if pa%PageSize != va%PageSize {
			t.Fatalf("page offset not preserved: va %#x -> pa %#x", va, pa)
		}
	}
}

func TestSetIndexProperties(t *testing.T) {
	c := skylake(t)
	cfg := c.Config()
	// Two addresses one line apart land in adjacent L1 sets modulo the
	// set count; same line offset within a page shares the L1 set.
	pa := Addr(0x12340)
	s0, i0 := c.SetIndex(L1, pa)
	s1, i1 := c.SetIndex(L1, pa+LineSize)
	if s0 != 0 || s1 != 0 {
		t.Errorf("L1 has one slice, got slices %d/%d", s0, s1)
	}
	if (i0+1)%cfg.L1.SetsPerSlice != i1 {
		t.Errorf("adjacent lines in L1 sets %d and %d", i0, i1)
	}
	// The L3 slice is within range and depends only on the physical
	// address.
	for _, p := range []Addr{0, 0x40, 0x123456780, 0x3ffffffc0} {
		slice, set := c.SetIndex(L3, p)
		if slice < 0 || slice >= cfg.L3.Slices {
			t.Errorf("slice %d out of range for %#x", slice, p)
		}
		if set < 0 || set >= cfg.L3.SetsPerSlice {
			t.Errorf("set %d out of range for %#x", set, p)
		}
	}
}

func TestLoadLatencyClasses(t *testing.T) {
	c := skylake(t)
	va := c.AllocBuffer(1)
	cold := c.Load(va)
	warm := c.Load(va)
	if cold < 100 {
		t.Errorf("cold load took %.1f cycles, expected a DRAM-class latency", cold)
	}
	if warm > 20 {
		t.Errorf("warm load took %.1f cycles, expected an L1 hit", warm)
	}
	if got := c.ResidentLevel(va); got != 0 {
		t.Errorf("line resident at level %d, want L1", got)
	}
}

func TestCLFlushEvictsEverywhere(t *testing.T) {
	c := skylake(t)
	va := c.AllocBuffer(1)
	c.Load(va)
	c.CLFlush(va)
	if got := c.ResidentLevel(va); got != -1 {
		t.Errorf("line still resident at level %d after clflush", got)
	}
	if lat := c.Load(va); lat < 100 {
		t.Errorf("load after clflush took %.1f cycles, expected DRAM", lat)
	}
}

func TestWBInvdFlushesButKeepsTranslations(t *testing.T) {
	c := skylake(t)
	va := c.AllocBuffer(1)
	pa := c.TranslateToPhys(va)
	c.Load(va)
	c.WBInvd()
	if got := c.ResidentLevel(va); got != -1 {
		t.Errorf("resident level %d after wbinvd", got)
	}
	if c.TranslateToPhys(va) != pa {
		t.Error("wbinvd changed the page mapping")
	}
}

// congruentL3 returns n virtual addresses mapping to the same L3 slice/set.
func congruentL3(c *CPU, n int) []Addr {
	base := c.AllocBuffer(4096)
	ref := c.TranslateToPhys(base)
	slice, set := c.SetIndex(L3, ref)
	out := []Addr{base}
	for off := Addr(1); len(out) < n; off++ {
		va := base + off*LineSize
		s, i := c.SetIndex(L3, c.TranslateToPhys(va))
		if s == slice && i == set {
			out = append(out, va)
		}
	}
	return out
}

func TestInclusiveBackInvalidation(t *testing.T) {
	c := skylake(t)
	// Fill one L3 set beyond capacity; the evicted victims must vanish
	// from L1/L2 as well.
	addrs := congruentL3(c, c.Config().L3.Assoc+4)
	for _, va := range addrs {
		c.Load(va)
	}
	evicted := 0
	for _, va := range addrs {
		lvl := c.ResidentLevel(va)
		if lvl == -1 {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("overfilling an L3 set evicted nothing")
	}
	// No evicted line may survive in a higher level: ResidentLevel
	// returning -1 already proves that, so just double-check one present
	// line is still coherent.
	if c.ResidentLevel(addrs[len(addrs)-1]) == -1 {
		t.Error("most recently loaded line was evicted")
	}
}

func TestCATRestrictsAssociativity(t *testing.T) {
	c := skylake(t)
	if err := c.SetCATWays(4); err != nil {
		t.Fatal(err)
	}
	addrs := congruentL3(c, 5)
	for _, va := range addrs {
		c.Load(va)
	}
	// With 4 ways, loading 5 congruent lines must have evicted one.
	resident := 0
	for _, va := range addrs {
		if c.ResidentLevel(va) != -1 {
			resident++
		}
	}
	if resident > 4 {
		t.Errorf("%d of 5 congruent lines resident under a 4-way mask", resident)
	}

	h := NewCPU(Haswell(), 1)
	if err := h.SetCATWays(4); err == nil {
		t.Error("Haswell accepted CAT configuration")
	}
	if err := c.SetCATWays(99); err == nil {
		t.Error("out-of-range way count accepted")
	}
}

func TestPrefetcherPullsNextLine(t *testing.T) {
	c := skylake(t)
	c.SetPrefetcher(true)
	base := c.AllocBuffer(1)
	for i := 0; i < 3; i++ {
		c.Load(base + Addr(i)*LineSize)
	}
	if got := c.ResidentLevel(base + 3*LineSize); got == -1 {
		t.Error("stream prefetcher did not pull the next line")
	}
	c.SetPrefetcher(false)
	base2 := c.AllocBuffer(1)
	for i := 0; i < 3; i++ {
		c.Load(base2 + Addr(i)*LineSize)
	}
	if got := c.ResidentLevel(base2 + 3*LineSize); got != -1 {
		t.Error("disabled prefetcher still prefetched")
	}
}

func TestSkylakeLeaderRuleMatchesAppendixB(t *testing.T) {
	// Set 0 satisfies the thrash-susceptible formula; the paper's Table 4
	// lists 0, 33, 132, 165, ... as analyzed leader sets.
	for _, set := range []int{0, 33, 132, 165, 264, 297, 396, 429, 528, 561, 660, 693, 792, 825, 924, 957} {
		if got := skylakeLeaderRule(0, set); got != LeaderThrashable {
			t.Errorf("set %d classified %v, want LeaderThrashable", set, got)
		}
	}
	// Count the groups over one slice of 1024 sets.
	counts := map[LeaderKind]int{}
	for set := 0; set < 1024; set++ {
		counts[skylakeLeaderRule(0, set)]++
	}
	if counts[LeaderThrashable] != 16 || counts[LeaderResistant] != 16 {
		t.Errorf("leader group sizes %v, want 16/16", counts)
	}
}

func TestHaswellLeaderRuleRanges(t *testing.T) {
	for set := 0; set < 2048; set++ {
		want := Follower
		if set >= 512 && set < 576 {
			want = LeaderThrashable
		}
		if set >= 768 && set < 832 {
			want = LeaderResistant
		}
		if got := haswellLeaderRule(0, set); got != want {
			t.Fatalf("slice 0 set %d: %v, want %v", set, got, want)
		}
		if got := haswellLeaderRule(1, set); got != Follower {
			t.Fatalf("slice 1 set %d: %v, want Follower", set, got)
		}
	}
}

func TestPSELRespondsToLeaderTraffic(t *testing.T) {
	c := skylake(t)
	before := c.PSEL()
	// Thrash a thrash-susceptible leader set: misses there push PSEL up.
	addrs := congruentLeader(c, LeaderThrashable, c.Config().L3.Assoc*2)
	for pass := 0; pass < 4; pass++ {
		for _, va := range addrs {
			c.Load(va)
		}
	}
	if c.PSEL() <= before {
		t.Errorf("PSEL %d -> %d after thrashing a leader set", before, c.PSEL())
	}
}

// congruentLeader finds n addresses in some L3 set of the given leader kind.
func congruentLeader(c *CPU, kind LeaderKind, n int) []Addr {
	base := c.AllocBuffer(16384)
	var ref Addr
	var slice, set int
	found := false
	for off := Addr(0); !found; off++ {
		va := base + off*LineSize
		pa := c.TranslateToPhys(va)
		s, i := c.SetIndex(L3, pa)
		if c.LeaderKindOf(s, i) == kind {
			ref, slice, set, found = va, s, i, true
		}
	}
	out := []Addr{ref}
	for off := Addr(1); len(out) < n; off++ {
		va := ref + off*LineSize
		s, i := c.SetIndex(L3, c.TranslateToPhys(va))
		if s == slice && i == set {
			out = append(out, va)
		}
	}
	return out
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		c := NewCPU(KabyLake(), 42)
		c.SetLowNoise(true)
		base := c.AllocBuffer(8)
		var lats []float64
		for i := 0; i < 50; i++ {
			lats = append(lats, c.Load(base+Addr(i%8)*PageSize))
		}
		return lats
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at load %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestModelsMatchTableThree(t *testing.T) {
	m := Models()
	if len(m) != 3 {
		t.Fatalf("%d models", len(m))
	}
	checks := []struct {
		idx                 int
		lvl                 Level
		assoc, slices, sets int
	}{
		{0, L1, 8, 1, 64}, {0, L2, 8, 1, 512}, {0, L3, 16, 4, 2048},
		{1, L1, 8, 1, 64}, {1, L2, 4, 1, 1024}, {1, L3, 12, 8, 1024},
		{2, L1, 8, 1, 64}, {2, L2, 4, 1, 1024}, {2, L3, 16, 8, 1024},
	}
	for _, c := range checks {
		cfg := m[c.idx].Config(c.lvl)
		if cfg.Assoc != c.assoc || cfg.Slices != c.slices || cfg.SetsPerSlice != c.sets {
			t.Errorf("%s %v: assoc/slices/sets = %d/%d/%d, want %d/%d/%d",
				m[c.idx].Name, c.lvl, cfg.Assoc, cfg.Slices, cfg.SetsPerSlice, c.assoc, c.slices, c.sets)
		}
	}
	if m[0].SupportsCAT || !m[1].SupportsCAT || !m[2].SupportsCAT {
		t.Error("CAT support flags wrong")
	}
}

func TestFollowerSetsShareDuelState(t *testing.T) {
	c := skylake(t)
	addrs := congruentLeader(c, Follower, 2)
	pa := c.TranslateToPhys(addrs[0])
	s := c.setFor(L3, pa)
	if _, ok := s.Policy().(*duelPolicy); !ok {
		t.Errorf("follower set runs %T, want duelPolicy", s.Policy())
	}
	// Leader sets run fixed policies.
	la := congruentLeader(c, LeaderThrashable, 1)
	lp := c.setFor(L3, c.TranslateToPhys(la[0])).Policy()
	if lp.Name() != "New2" {
		t.Errorf("thrashable leader runs %s, want New2", lp.Name())
	}
}

func TestCacheOutcomeSanity(t *testing.T) {
	// Guard the blockName/parse pair used by back-invalidation.
	c := skylake(t)
	va := c.AllocBuffer(1)
	pa := c.TranslateToPhys(va)
	b := blockName(pa)
	c.Load(va)
	if c.setFor(L1, pa).Lookup(b) < 0 {
		t.Error("loaded block not found in its L1 set")
	}
	c.invalidateAbove(b)
	if c.setFor(L1, pa).Lookup(b) >= 0 {
		t.Error("invalidateAbove left the block in L1")
	}
	if c.setFor(L3, pa).Lookup(b) < 0 {
		t.Error("invalidateAbove touched the L3 copy")
	}
	_ = cache.Hit // keep the import honest in case assertions above change
}

// TestCompiledCPUMatchesInterpreted drives two identically-seeded CPUs —
// one on the compiled policy kernel (the default), one forced interpreted —
// through the same load/flush mix and asserts bit-identical observable
// behaviour: latencies, timestamp counter, PSEL and residency. The kernel
// shares one transition table across all materialized sets; it must never
// change what the simulated silicon does.
func TestCompiledCPUMatchesInterpreted(t *testing.T) {
	kc := NewCPU(Skylake(), 42)
	ic := NewCPU(Skylake(), 42)
	ic.SetInterpreted(true)
	kc.SetLowNoise(true)
	ic.SetLowNoise(true)
	base := kc.AllocBuffer(512)
	if ic.AllocBuffer(512) != base {
		t.Fatal("allocators diverged")
	}
	for i := 0; i < 4000; i++ {
		va := base + Addr((i*37)%(512*int(PageSize)/int(LineSize)))*LineSize
		if i%97 == 0 {
			kc.CLFlush(va)
			ic.CLFlush(va)
			continue
		}
		kl := kc.Load(va)
		il := ic.Load(va)
		if kl != il {
			t.Fatalf("load %d: compiled latency %v, interpreted %v", i, kl, il)
		}
		if kc.ResidentLevel(va) != ic.ResidentLevel(va) {
			t.Fatalf("load %d: residency diverged", i)
		}
	}
	if kc.RDTSC() != ic.RDTSC() || kc.PSEL() != ic.PSEL() {
		t.Fatalf("tsc/psel diverged: %d/%d vs %d/%d", kc.RDTSC(), kc.PSEL(), ic.RDTSC(), ic.PSEL())
	}
}

// TestKernelTableIsShared: two sets of the same level run on the same
// compiled table instance (the process-wide cache), not per-set copies.
func TestKernelTableIsShared(t *testing.T) {
	c := skylake(t)
	s1 := c.setForKey(L1, 0)
	s2 := c.setForKey(L1, 1)
	p1, ok1 := s1.Policy().(*policy.Table)
	p2, ok2 := s2.Policy().(*policy.Table)
	if !ok1 || !ok2 {
		t.Fatal("L1 PLRU sets are not on the compiled kernel")
	}
	if p1.NumStates() != p2.NumStates() || p1.Name() != p2.Name() {
		t.Fatal("set views disagree about the compiled table")
	}
	if compiledPolicy("PLRU", 8) != compiledPolicy("PLRU", 8) {
		t.Fatal("process-wide table cache returned distinct tables")
	}
	if compiledPolicy("New2", 16) != nil {
		t.Fatal("New2-16 compiled despite exceeding the hw state bound")
	}
}

// TestSetInterpretedRejectsMidRunToggle: the representation toggle is a
// construction-time choice; flipping it after traffic would leave a hybrid
// state (empty caches, advanced TSC/PSEL), so it must fail loudly.
func TestSetInterpretedRejectsMidRunToggle(t *testing.T) {
	c := skylake(t)
	c.Load(c.AllocBuffer(1))
	defer func() {
		if recover() == nil {
			t.Fatal("SetInterpreted after traffic did not panic")
		}
	}()
	c.SetInterpreted(true)
}
