package hw

import (
	"fmt"

	"repro/internal/policy"
)

// This file contains the policy wrappers that make the simulated L3 behave
// like the adaptive last-level caches of Appendix B: follower sets duel
// between a thrash-susceptible and a thrash-resistant policy under a global
// PSEL counter, and (on Haswell) the resistant leader group uses a
// randomized insertion throttle. Both wrappers are deliberately *not*
// deterministic Mealy machines from the perspective of a single set — that
// is exactly the behaviour that prevented the paper from learning those
// sets, and Polca flags it as nondeterminism.

// duelPolicy is the follower-set policy: it maintains the metadata of both
// dueling policies and takes the eviction decision of whichever the PSEL
// counter currently favours. The cross-set PSEL state makes single-set
// behaviour observationally nondeterministic.
type duelPolicy struct {
	cpu *CPU
	a   policy.Policy // thrash-susceptible (PSEL low half)
	b   policy.Policy // thrash-resistant (PSEL high half)
}

// Name implements policy.Policy.
func (p *duelPolicy) Name() string { return "Adaptive(" + p.a.Name() + "/" + p.b.Name() + ")" }

// Assoc implements policy.Policy.
func (p *duelPolicy) Assoc() int { return p.a.Assoc() }

// OnHit implements policy.Policy.
func (p *duelPolicy) OnHit(line int) {
	p.a.OnHit(line)
	p.b.OnHit(line)
}

// OnMiss implements policy.Policy. Both metadata arrays observe the miss;
// the victim comes from the currently winning policy.
func (p *duelPolicy) OnMiss() int {
	va := p.a.OnMiss()
	vb := p.b.OnMiss()
	if p.cpu.psel < pselInit {
		return va
	}
	return vb
}

// Reset implements policy.Policy. PSEL deliberately survives: it is global
// machine state, not per-set state.
func (p *duelPolicy) Reset() {
	p.a.Reset()
	p.b.Reset()
}

// StateKey implements policy.Policy.
func (p *duelPolicy) StateKey() string {
	return fmt.Sprintf("duel[%s|%s|psel=%d]", p.a.StateKey(), p.b.StateKey(), p.cpu.psel)
}

// Clone implements policy.Policy. The clone shares the CPU (and therefore
// the live PSEL counter).
func (p *duelPolicy) Clone() policy.Policy {
	return &duelPolicy{cpu: p.cpu, a: p.a.Clone(), b: p.b.Clone()}
}

// nondetThrottle is BRRIP with the original *randomized* bimodal throttle:
// each insertion independently draws whether to use the long (RRPV 2) or
// distant (RRPV 3) re-reference interval. It reproduces Haswell's "thrash
// resistant (that seems to be not deterministic)" leader group.
type nondetThrottle struct {
	cpu  *CPU
	n    int
	rrpv []int
}

func newNondetThrottle(cpu *CPU, assoc int) *nondetThrottle {
	p := &nondetThrottle{cpu: cpu, n: assoc, rrpv: make([]int, assoc)}
	p.Reset()
	return p
}

// Name implements policy.Policy.
func (p *nondetThrottle) Name() string { return "BRRIP-rand" }

// Assoc implements policy.Policy.
func (p *nondetThrottle) Assoc() int { return p.n }

// OnHit implements policy.Policy.
func (p *nondetThrottle) OnHit(line int) { p.rrpv[line] = 0 }

// OnMiss implements policy.Policy.
func (p *nondetThrottle) OnMiss() int {
	for {
		for i, a := range p.rrpv {
			if a == policy.MaxRRPV {
				if p.cpu.rng.Intn(policy.DefaultBRRIPEpsilon) == 0 {
					p.rrpv[i] = policy.MaxRRPV - 1
				} else {
					p.rrpv[i] = policy.MaxRRPV
				}
				return i
			}
		}
		for i := range p.rrpv {
			p.rrpv[i]++
		}
	}
}

// Reset implements policy.Policy. The RNG stream is shared with the CPU and
// deliberately not rewound, so replayed prefixes diverge.
func (p *nondetThrottle) Reset() {
	for i := range p.rrpv {
		p.rrpv[i] = policy.MaxRRPV
	}
}

// StateKey implements policy.Policy.
func (p *nondetThrottle) StateKey() string { return fmt.Sprintf("nd:%v", p.rrpv) }

// Clone implements policy.Policy.
func (p *nondetThrottle) Clone() policy.Policy {
	c := &nondetThrottle{cpu: p.cpu, n: p.n, rrpv: make([]int, p.n)}
	copy(c.rrpv, p.rrpv)
	return c
}
