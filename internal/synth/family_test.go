package synth

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mealy"
)

// testFamily memoizes one zoo generation for the whole test binary —
// regeneration costs about a second (it compiles every candidate draw),
// and several tests walk the member list.
var testFamily = func() func(t *testing.T) []FamilyMember {
	var once sync.Once
	var members []FamilyMember
	return func(t *testing.T) []FamilyMember {
		t.Helper()
		once.Do(func() { members = Family(FamilySeed) })
		return members
	}
}()

// TestFamilyDeterministic regenerates the zoo twice and requires identical
// member lists — the property the committed artifacts and the nightly
// regeneration diff depend on.
func TestFamilyDeterministic(t *testing.T) {
	a, b := testFamily(t), Family(FamilySeed)
	if len(a) != len(b) {
		t.Fatalf("two generations differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Assoc != b[i].Assoc || a[i].Kind != b[i].Kind || a[i].States != b[i].States {
			t.Errorf("member %d differs across generations: %+v vs %+v", i, a[i], b[i])
		}
		if !reflect.DeepEqual(a[i].Program, b[i].Program) {
			t.Errorf("member %s regenerated a different program", a[i].Name)
		}
	}
}

// TestFamilyShape pins the zoo's coverage: unique names, every kind
// present, rule members spanning associativities 4 through 16, and every
// member's compiled state space inside [zooMinStates, ZooStateCap].
func TestFamilyShape(t *testing.T) {
	members := testFamily(t)
	if len(members) < 48 {
		t.Fatalf("zoo has %d members, want >= 48 (models/ must hold >= 60 artifacts with the registry set)", len(members))
	}
	names := map[string]bool{}
	kinds := map[string]int{}
	ruleAssocs := map[int]bool{}
	for _, m := range members {
		if names[m.Name] {
			t.Errorf("duplicate member name %s", m.Name)
		}
		names[m.Name] = true
		kinds[m.Kind]++
		if m.Kind == "rule" {
			ruleAssocs[m.Assoc] = true
			if m.Program == nil {
				t.Errorf("%s: rule member without its generating program", m.Name)
			}
		}
		if m.States < zooMinStates || m.States > ZooStateCap {
			t.Errorf("%s: %d states, want within [%d, %d]", m.Name, m.States, zooMinStates, ZooStateCap)
		}
	}
	for _, k := range []string{"rule", "perm", "duel"} {
		if kinds[k] == 0 {
			t.Errorf("zoo has no %s members", k)
		}
	}
	for _, a := range []int{4, 8, 12, 16} {
		if !ruleAssocs[a] {
			t.Errorf("no rule member at associativity %d", a)
		}
	}
}

// TestZooArtifacts verifies the committed zoo model files in models/ stay
// trace-equivalent to the policies Family regenerates — the zoo twin of
// mealy.TestModelArtifacts. Under -short (the race-enabled CI leg) members
// beyond 256 states are skipped; the nightly full run covers all of them.
func TestZooArtifacts(t *testing.T) {
	for _, m := range testFamily(t) {
		if testing.Short() && m.States > 256 {
			continue
		}
		path := filepath.Join("..", "..", "models", fmt.Sprintf("%s-%d.json", m.Name, m.Assoc))
		fh, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with go run repro/cmd/genmodels)", path, err)
		}
		art, err := mealy.Load(fh)
		fh.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		truth, err := mealy.FromPolicy(m.New(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if eq, ce := art.Equivalent(truth); !eq {
			t.Errorf("%s: stale artifact, ce=%v", path, ce)
		}
		if art.NumStates != m.States {
			t.Errorf("%s: artifact has %d states, Family reports %d", path, art.NumStates, m.States)
		}
	}
}

// TestFamilyRuleMembersSynthesize closes the in-grammar loop for the small
// assoc-4 rule members: the parallel CEGIS search must find a rule program
// whose compiled machine is exactly the member's. (cmd/genmodels -zoo runs
// the same check over every assoc-4 rule member, nightly.)
func TestFamilyRuleMembersSynthesize(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second synthesis sweep; cmd/genmodels -zoo covers it nightly")
	}
	checked := 0
	for _, m := range testFamily(t) {
		if m.Kind != "rule" || m.Assoc != 4 || m.States > 32 {
			continue
		}
		truth, err := mealy.FromPolicy(m.New(), 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Synthesize(truth, Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s (in-grammar by construction): %v", m.Name, err)
		}
		compiled, err := mealy.FromPolicy(NewRulePolicy(res.Program), 0)
		if err != nil {
			t.Fatal(err)
		}
		if eq, ce := compiled.Equivalent(truth); !eq {
			t.Errorf("%s: synthesized program diverges, ce=%v", m.Name, ce)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no small assoc-4 rule members to check — zoo shape changed?")
	}
}
