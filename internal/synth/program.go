// Package synth synthesizes human-readable explanations of learned
// replacement policies (§5 of the paper): rule-based programs built from
// promotion, eviction, insertion, and normalization rules, the vocabulary
// cache designers use [21].
//
// The paper encodes a program template with holes in Sketch and asks a
// SyGuS solver for an instantiation satisfying the learned automaton's
// transition constraints φP. This reproduction searches the same rule
// grammar by enumerative counterexample-guided synthesis (CEGIS): candidate
// programs are executable policies, rejected quickly on accumulated witness
// traces and accepted only after an exact product-equivalence check against
// the learned machine — which yields the same guarantee as the paper's
// constraint encoding: a returned program behaves exactly like the learned
// policy.
//
// As in the paper, control states are per-line ages in 0..3; tree-structured
// global-state policies such as PLRU are outside the grammar and correctly
// fail to synthesize.
package synth

import (
	"fmt"
	"strings"

	"repro/internal/policy"
)

// MaxAge is the largest age value (2-bit ages, as in the paper's
// experiments: natural-number size bound 4).
const MaxAge = 3

// SelfKind enumerates how a rule updates the age of the accessed or
// inserted line.
type SelfKind int

// Self-update kinds.
const (
	SelfKeep SelfKind = iota // leave the age unchanged
	SelfSet                  // age := C1
	SelfDecr                 // age := max(age-1, 0)
	SelfIfEq                 // if age == C1 { age := C2 } else { age := C3 }
)

// SelfUpdate is the self-update component of promotion/insertion rules.
type SelfUpdate struct {
	Kind       SelfKind
	C1, C2, C3 int
}

func (u SelfUpdate) apply(age int) int {
	switch u.Kind {
	case SelfKeep:
		return age
	case SelfSet:
		return u.C1
	case SelfDecr:
		if age > 0 {
			return age - 1
		}
		return 0
	default: // SelfIfEq
		if age == u.C1 {
			return u.C2
		}
		return u.C3
	}
}

func (u SelfUpdate) String() string {
	switch u.Kind {
	case SelfKeep:
		return "keep the line's age"
	case SelfSet:
		return fmt.Sprintf("set the line's age to %d", u.C1)
	case SelfDecr:
		return "decrement the line's age (saturating at 0)"
	default:
		return fmt.Sprintf("if the line's age is %d set it to %d, otherwise set it to %d", u.C1, u.C2, u.C3)
	}
}

// OthersKind enumerates how a rule updates the ages of the remaining lines.
type OthersKind int

// Others-update kinds.
const (
	OthersKeep     OthersKind = iota // leave other lines unchanged
	OthersIncrAll                    // increment every other line
	OthersIncrLess                   // increment other lines younger than the
	// accessed/evicted line's previous age
)

func (k OthersKind) apply(ages []int, self, oldSelfAge int) {
	switch k {
	case OthersKeep:
	case OthersIncrAll:
		for i := range ages {
			if i != self && ages[i] < MaxAge {
				ages[i]++
			}
		}
	case OthersIncrLess:
		for i := range ages {
			if i != self && ages[i] < oldSelfAge && ages[i] < MaxAge {
				ages[i]++
			}
		}
	}
}

func (k OthersKind) String() string {
	switch k {
	case OthersKeep:
		return "leave the other lines unchanged"
	case OthersIncrAll:
		return "increase the age of every other line by 1"
	default:
		return "increase the age of every other line that was younger than it by 1"
	}
}

// EvictKind enumerates victim-selection rules.
type EvictKind int

// Eviction kinds.
const (
	EvictFirstEq EvictKind = iota // leftmost line with age == C
	EvictMaxLeft                  // leftmost line with maximal age
	EvictMinLeft                  // leftmost line with minimal age
)

// EvictRule selects the victim line.
type EvictRule struct {
	Kind EvictKind
	C    int
}

func (r EvictRule) choose(ages []int) int {
	switch r.Kind {
	case EvictFirstEq:
		for i, a := range ages {
			if a == r.C {
				return i
			}
		}
		// No line matches: fall back to the oldest line so the candidate
		// is still a total policy (it will be rejected by the traces).
		return argMax(ages)
	case EvictMaxLeft:
		return argMax(ages)
	default:
		return argMin(ages)
	}
}

func argMax(ages []int) int {
	m := maxOf(ages)
	for i, a := range ages {
		if a == m {
			return i
		}
	}
	return 0
}

func maxOf(ages []int) int {
	m := ages[0]
	for _, a := range ages {
		if a > m {
			m = a
		}
	}
	return m
}

func argMin(ages []int) int {
	m := ages[0]
	for _, a := range ages {
		if a < m {
			m = a
		}
	}
	for i, a := range ages {
		if a == m {
			return i
		}
	}
	return 0
}

func (r EvictRule) String() string {
	switch r.Kind {
	case EvictFirstEq:
		return fmt.Sprintf("select the first line, from the left, whose age is %d", r.C)
	case EvictMaxLeft:
		return "select the first line, from the left, with the largest age"
	default:
		return "select the first line, from the left, with the smallest age"
	}
}

// NormKind enumerates normalization rules.
type NormKind int

// Normalization kinds.
const (
	NormIdentity    NormKind = iota // no normalization
	NormAgeUntil                    // while no line has age C: increment ages
	NormResetUnless                 // if no line has age C: set ages to C
)

// NormRule is the normalization component, with flags selecting where in
// the hit/miss handlers it runs (the paper's template normalizes after a
// hit, before the eviction, and after the insertion).
type NormRule struct {
	Kind          NormKind
	C             int
	ExceptTouched bool // skip the just accessed/evicted line
	AfterHit      bool
	BeforeEvict   bool
	AfterMiss     bool
}

// apply normalizes ages; touched is the just accessed/evicted line, or -1
// in the pre-eviction position where no line is distinguished.
func (r NormRule) apply(ages []int, touched int) {
	if r.Kind == NormIdentity {
		return
	}
	except := -1
	if r.ExceptTouched {
		except = touched
	}
	has := func() bool {
		for _, a := range ages {
			if a == r.C {
				return true
			}
		}
		return false
	}
	switch r.Kind {
	case NormAgeUntil:
		for iter := 0; iter <= MaxAge && !has(); iter++ {
			for i := range ages {
				if i != except && ages[i] < MaxAge {
					ages[i]++
				}
			}
		}
	case NormResetUnless:
		if !has() {
			for i := range ages {
				if i != except {
					ages[i] = r.C
				}
			}
		}
	}
}

func (r NormRule) String() string {
	if r.Kind == NormIdentity {
		return "none"
	}
	except := ""
	if r.ExceptTouched {
		except = " except the just accessed/evicted line"
	}
	var rule string
	switch r.Kind {
	case NormAgeUntil:
		rule = fmt.Sprintf("while there is no line with age %d, increase the age of all lines%s by 1", r.C, except)
	default:
		rule = fmt.Sprintf("if there is no line with age %d, set the age of all lines%s to %d", r.C, except, r.C)
	}
	var when []string
	if r.AfterHit {
		when = append(when, "after a hit")
	}
	if r.BeforeEvict {
		when = append(when, "before an eviction")
	}
	if r.AfterMiss {
		when = append(when, "after an insertion")
	}
	if len(when) == 0 {
		return "none"
	}
	return rule + " (" + strings.Join(when, ", ") + ")"
}

// PromoteRule updates the control state on a hit.
type PromoteRule struct {
	Self   SelfUpdate
	Others OthersKind
}

// InsertRule updates the control state of the just evicted line.
type InsertRule struct {
	Self   SelfUpdate
	Others OthersKind
}

// Program is a complete rule-based policy explanation.
type Program struct {
	Assoc     int
	Init      []int
	Promote   PromoteRule
	Evict     EvictRule
	Insert    InsertRule
	Normalize NormRule
}

// Hit executes the template's hit handler on ages in place.
func (p *Program) Hit(ages []int, line int) {
	old := ages[line]
	ages[line] = p.Promote.Self.apply(old)
	p.Promote.Others.apply(ages, line, old)
	if p.Normalize.AfterHit {
		p.Normalize.apply(ages, line)
	}
}

// Miss executes the template's miss handler on ages in place and returns
// the victim line.
func (p *Program) Miss(ages []int) int {
	if p.Normalize.BeforeEvict {
		p.Normalize.apply(ages, -1)
	}
	idx := p.Evict.choose(ages)
	old := ages[idx]
	ages[idx] = p.Insert.Self.apply(old)
	p.Insert.Others.apply(ages, idx, old)
	if p.Normalize.AfterMiss {
		p.Normalize.apply(ages, idx)
	}
	return idx
}

// String renders the program in the bullet style of §8.
func (p *Program) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Initial control state: %v\n", p.Init)
	fmt.Fprintf(&sb, "Promote:   %s; %s.\n", p.Promote.Self, p.Promote.Others)
	fmt.Fprintf(&sb, "Evict:     %s.\n", p.Evict)
	fmt.Fprintf(&sb, "Insert:    %s; %s.\n", p.Insert.Self, p.Insert.Others)
	fmt.Fprintf(&sb, "Normalize: %s.\n", p.Normalize)
	return sb.String()
}

// RulePolicy makes a Program executable as a policy.Policy, which is how
// candidates are checked against learned machines (and how synthesized
// explanations can be replayed in the simulator).
type RulePolicy struct {
	prog *Program
	ages []int
}

// NewRulePolicy wraps prog as an executable policy.
func NewRulePolicy(prog *Program) *RulePolicy {
	p := &RulePolicy{prog: prog, ages: make([]int, prog.Assoc)}
	p.Reset()
	return p
}

// Name implements policy.Policy.
func (p *RulePolicy) Name() string { return "Synthesized" }

// Assoc implements policy.Policy.
func (p *RulePolicy) Assoc() int { return p.prog.Assoc }

// OnHit implements policy.Policy.
func (p *RulePolicy) OnHit(line int) { p.prog.Hit(p.ages, line) }

// OnMiss implements policy.Policy.
func (p *RulePolicy) OnMiss() int { return p.prog.Miss(p.ages) }

// Reset implements policy.Policy.
func (p *RulePolicy) Reset() { copy(p.ages, p.prog.Init) }

// StateKey implements policy.Policy.
func (p *RulePolicy) StateKey() string { return fmt.Sprint(p.ages) }

// Clone implements policy.Policy.
func (p *RulePolicy) Clone() policy.Policy {
	c := &RulePolicy{prog: p.prog, ages: make([]int, len(p.ages))}
	copy(c.ages, p.ages)
	return c
}

var _ policy.Policy = (*RulePolicy)(nil)
