package synth

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mealy"
	"repro/internal/policy"
)

// legs are the search configurations every determinism test compares: the
// batched kernel at three worker counts plus the legacy interpreted walk.
// The synthesized program and the Candidates count must be identical on
// all of them.
var legs = []struct {
	name string
	opt  Options
}{
	{"batched-x1", Options{Seed: 1, Parallelism: 1}},
	{"batched-x4", Options{Seed: 1, Parallelism: 4}},
	{"batched-x16", Options{Seed: 1, Parallelism: 16}},
	{"interpreted-x4", Options{Seed: 1, Parallelism: 4, Interpreted: true}},
}

// TestSynthesisDeterministicAcrossParallelism synthesizes every registered
// policy at associativity 4 on each leg and requires bit-identical
// programs and candidate counts: the parallel search must return the
// first match in enumeration order no matter how the workers interleave.
// PLRU has no program; its failure must also be identical on every leg.
// Under -short (the race-enabled CI leg) the sweep shrinks to one
// Simple-template policy, one Extended one and the inexplicable one.
func TestSynthesisDeterministicAcrossParallelism(t *testing.T) {
	names := policy.Names()
	if testing.Short() {
		names = []string{"LRU", "SRRIP-FP", "PLRU"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := mealy.FromPolicy(policy.MustNew(name, 4), 0)
			if err != nil {
				t.Fatal(err)
			}
			var ref *Result
			var refErr error
			for i, leg := range legs {
				opt := leg.opt
				res, err := Synthesize(m, opt)
				if i == 0 {
					ref, refErr = res, err
					continue
				}
				if (err == nil) != (refErr == nil) {
					t.Fatalf("%s: err = %v, %s got %v", leg.name, err, legs[0].name, refErr)
				}
				if err != nil {
					if !errors.Is(err, ErrNoProgram) || !errors.Is(refErr, ErrNoProgram) {
						t.Fatalf("%s: err = %v, want ErrNoProgram like %v", leg.name, err, refErr)
					}
					if res.Candidates != ref.Candidates {
						t.Errorf("%s exhausted after %d candidates, %s after %d",
							leg.name, res.Candidates, legs[0].name, ref.Candidates)
					}
					continue
				}
				if !reflect.DeepEqual(res.Program, ref.Program) {
					t.Errorf("%s synthesized a different program:\n%s\nvs %s:\n%s",
						leg.name, res.Program, legs[0].name, ref.Program)
				}
				if res.Candidates != ref.Candidates {
					t.Errorf("%s examined %d candidates, %s %d — the count must be parallelism-invariant",
						leg.name, res.Candidates, legs[0].name, ref.Candidates)
				}
			}
		})
	}
}

// TestSynthesisDeterministicAssoc8 repeats the cross-parallelism check at
// associativity 8. Most registry policies are outside the 2-bit-age
// grammar there (LRU-8 and FIFO-8 need 8 recency positions), so the
// sweep covers the three regimes the grammar admits: MRU-8 (registered,
// in-grammar) must synthesize identically on every leg; a small
// in-grammar zoo rule member must synthesize identically on the batched
// legs (millions of candidates — the interpreted walk is out of test
// budget); and LRU-8 under a 1000-candidate budget must fail with the
// same exhaustion error on every leg.
func TestSynthesisDeterministicAssoc8(t *testing.T) {
	if testing.Short() {
		t.Skip("assoc-8 synthesis is seconds-long; skipped under -short")
	}
	// MRU-8 is the registered in-grammar representative. Its Extended
	// stage 1 sweeps 19M seed lanes (~15s batched, minutes interpreted),
	// so only two batched legs are affordable here.
	mru, err := mealy.FromPolicy(policy.MustNew("MRU", 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	var mruRef *Result
	for i, par := range []int{1, 4} {
		res, err := Synthesize(mru, Options{Seed: 1, Parallelism: par})
		if err != nil {
			t.Fatalf("x%d: MRU-8: %v", par, err)
		}
		if i == 0 {
			mruRef = res
			continue
		}
		if !reflect.DeepEqual(res.Program, mruRef.Program) || res.Candidates != mruRef.Candidates {
			t.Errorf("x%d: MRU-8 program or candidate count differs from x1", par)
		}
	}

	var truth *mealy.Machine
	for _, m := range testFamily(t) {
		if m.Kind == "rule" && m.Assoc == 8 && m.States <= 30 {
			truth, err = mealy.FromPolicy(m.New(), 0)
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if truth == nil {
		t.Fatal("no small assoc-8 rule member in the zoo")
	}
	var ref *Result
	for i, par := range []int{1, 4, 16} {
		res, err := Synthesize(truth, Options{Seed: 1, Parallelism: par})
		if err != nil {
			t.Fatalf("x%d: %v", par, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Program, ref.Program) || res.Candidates != ref.Candidates {
			t.Errorf("x%d: program or candidate count differs from x1 at assoc 8", par)
		}
	}

	// LRU-8 is out of grammar (8 recency positions don't fit 2-bit ages):
	// a 1000-candidate budget must exhaust identically on every leg. The
	// Simple template keeps the stage-1 sweep affordable on the
	// interpreted leg too.
	lru, err := mealy.FromPolicy(policy.MustNew("LRU", 8), 0)
	if err != nil {
		t.Fatal(err)
	}
	var refErr error
	for i, leg := range legs {
		opt := leg.opt
		opt.Template = TemplateSimple
		opt.MaxCandidates = 1000
		_, err := Synthesize(lru, opt)
		if err == nil {
			t.Fatalf("%s: budget of 1000 not enforced at assoc 8", leg.name)
		}
		if i == 0 {
			refErr = err
			continue
		}
		if err.Error() != refErr.Error() {
			t.Errorf("%s: budget error %q differs from %s's %q", leg.name, err, legs[0].name, refErr)
		}
	}
}

// TestCandidateBudgetIsGlobal pins the budget semantics under parallel
// search: Candidates reports the enumeration prefix the serial search
// would examine, so a budget of exactly that many candidates succeeds and
// one less fails — at every parallelism, with the same error text.
func TestCandidateBudgetIsGlobal(t *testing.T) {
	m, err := mealy.FromPolicy(policy.MustNew("SRRIP-FP", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Synthesize(m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, leg := range legs {
		exact := leg.opt
		exact.MaxCandidates = ref.Candidates
		res, err := Synthesize(m, exact)
		if err != nil {
			t.Fatalf("%s: budget of exactly Candidates (%d) failed: %v", leg.name, ref.Candidates, err)
		}
		if !reflect.DeepEqual(res.Program, ref.Program) {
			t.Errorf("%s: budget-capped search returned a different program", leg.name)
		}

		starved := leg.opt
		starved.MaxCandidates = ref.Candidates - 1
		_, err = Synthesize(m, starved)
		want := fmt.Sprintf("synth: candidate budget of %d exhausted", ref.Candidates-1)
		if err == nil || err.Error() != want {
			t.Errorf("%s: starved budget err = %v, want %q", leg.name, err, want)
		}
	}
}

// TestWitnessPoolConcurrentPublish hammers the shared witness pool from
// many goroutines under -race: duplicate words must be deduplicated to a
// single pool entry, and snapshots must be prefix-stable (an index handed
// out once always refers to the same witness).
func TestWitnessPoolConcurrentPublish(t *testing.T) {
	const goroutines = 16
	const words = 64
	p := newWitnessPool(5)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < words; i++ {
				w := witness{
					word: []int{i % 5, (i + g) % 5, i % 3},
					want: []int{i % 4, (i + g) % 4, i % 4},
				}
				p.publish(w)
				// Snapshots taken mid-publication must stay prefix-stable.
				snap := p.snapshot()
				if len(snap) > 0 {
					_ = snap[len(snap)-1]
				}
			}
		}(g)
	}
	wg.Wait()
	snap := p.snapshot()
	seen := map[string]int{}
	for i, w := range snap {
		k := fmt.Sprint(w.word, w.want)
		if prev, dup := seen[k]; dup {
			t.Fatalf("witness %v published twice (indices %d and %d)", w.word, prev, i)
		}
		seen[k] = i
	}
	if p.size() != len(snap) {
		t.Errorf("size() = %d, snapshot has %d", p.size(), len(snap))
	}
}

// TestPLRUNoProgramParallel requires the parallel search to exhaust the
// grammar promptly for PLRU (the paper's inexplicable policy) and report
// the same examined-candidate count as the serial walk.
func TestPLRUNoProgramParallel(t *testing.T) {
	m, err := mealy.FromPolicy(policy.MustNew("PLRU", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	serial, err1 := Synthesize(m, Options{Seed: 1, Parallelism: 1})
	wide, err16 := Synthesize(m, Options{Seed: 1, Parallelism: 16})
	if !errors.Is(err1, ErrNoProgram) || !errors.Is(err16, ErrNoProgram) {
		t.Fatalf("errs = %v / %v, want ErrNoProgram", err1, err16)
	}
	if serial == nil || wide == nil {
		t.Fatal("ErrNoProgram must still report the search statistics")
	}
	if serial.Candidates != wide.Candidates {
		t.Errorf("exhaustion examined %d candidates serially, %d at x16", serial.Candidates, wide.Candidates)
	}
	if err1.Error() != err16.Error() {
		t.Errorf("exhaustion error differs: %q vs %q", err1, err16)
	}
}
