package synth

import (
	"sync"
	"sync/atomic"

	"repro/internal/qstore"
)

// witnessPool is the shared CEGIS evidence set of a parallel search: the
// seeded witness traces plus every counterexample any worker's product
// check has discovered. Publication is deduplicated through a lock-striped,
// epoch-marked qstore trie (InsertMark reports first insertion), so two
// workers refuting different candidates with the same counterexample cost
// one pool entry. Readers take immutable copy-on-write snapshots: a worker
// refreshes its view once per skeleton chunk and prunes on the freshest
// evidence without ever blocking publishers.
//
// The pool only ever grows, and witness filtering is sound (every witness
// is an output of the target machine, so a trace-equivalent candidate
// survives any witness set). That is what keeps the parallel search
// deterministic: pool contents at a given moment vary with scheduling, but
// which candidates *verify* does not.
type witnessPool struct {
	dedup *qstore.Store[int, int32]
	mu    sync.Mutex
	list  atomic.Pointer[[]witness]
}

// newWitnessPool builds a pool for witness words over numInputs symbols.
func newWitnessPool(numInputs int) *witnessPool {
	p := &witnessPool{dedup: qstore.New[int, int32](qstore.Options{
		Degree:  numInputs,
		Stripes: 8,
		Sync:    true,
	})}
	empty := []witness{}
	p.list.Store(&empty)
	return p
}

// publish adds w to the pool unless an identical word is already present,
// reporting whether the pool grew.
func (p *witnessPool) publish(w witness) bool {
	if !p.dedup.InsertMark(w.word) {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	old := *p.list.Load()
	next := make([]witness, len(old)+1)
	copy(next, old)
	next[len(old)] = w
	p.list.Store(&next)
	return true
}

// snapshot returns an immutable view of the current witness set.
func (p *witnessPool) snapshot() []witness { return *p.list.Load() }

// size returns the current witness count.
func (p *witnessPool) size() int { return len(*p.list.Load()) }
