package synth

import (
	"fmt"

	"repro/internal/permpol"
	"repro/internal/policy"
)

// This file generates the randomized policy zoo: families of synthetic
// replacement policies that stress the learning and synthesis pipelines
// beyond the hand-written registry. Three kinds are drawn from a seeded
// deterministic stream:
//
//   - RuleZ: random rule programs from the synthesis grammar itself
//     (promote/evict/insert/normalize over 2-bit ages) — every assoc-4
//     member is in-grammar by construction, so synthesis must succeed on
//     it, which makes the zoo a self-checking corpus for the CEGIS search.
//   - PermZ: random permutation policies over internal/permpol (tie-break
//     variants in the LRU/FIFO family tree).
//   - DuelZ: deterministic set-local DIP-style duels (policy.NewDuel) of
//     accepted RuleZ members.
//
// Every member is gated by policy.CompileBound to at most ZooStateCap
// control states, so the committed model artifacts stay small and the CI
// freshness regeneration stays fast. Generation is deterministic: the same
// seed reproduces the same member list (and therefore byte-identical
// artifacts) on every platform — the generator uses its own splitmix64
// stream rather than math/rand so no Go release can ever reshuffle the
// committed zoo.

// FamilySeed is the fixed seed behind the committed zoo artifacts in
// models/. Changing it regenerates a different zoo, so it moves only when
// the artifacts are regenerated and recommitted together.
const FamilySeed = 20260808

// ZooStateCap bounds the compiled state space of every zoo member.
const ZooStateCap = 1024

// zooMinStates rejects degenerate draws (constant-victim policies and
// other near-trivial machines).
const zooMinStates = 4

// FamilyMember is one generated zoo policy.
type FamilyMember struct {
	Name   string // artifact base name, e.g. "RuleZ03"
	Assoc  int
	Kind   string // "rule", "perm", or "duel"
	States int    // compiled control-state count (<= ZooStateCap)
	// Heavy marks members whose learning cross-check is out of routine
	// budget (the zoo analog of the registry's assoc-8 giants): hundreds
	// of control states, or a wide input alphabet where the conformance
	// suite grows by |inputs|^depth whenever the depth-1 suite misses.
	// cmd/genmodels verifies them by extraction only unless -verify-heavy.
	Heavy bool
	// New constructs a fresh instance of the member's policy.
	New func() policy.Policy
	// Program is the generating rule program of RuleZ members (nil for
	// the other kinds): the ground truth their synthesized explanations
	// are checked against.
	Program *Program
}

// familyTargets lists how many members of each kind to accept per
// associativity. Rule members span every associativity the zoo publishes;
// permutation orbits exceed ZooStateCap beyond assoc 6 (7! = 5040), so
// PermZ stops there.
var familyTargets = []struct {
	kind   string
	assoc  int
	target int
}{
	{"rule", 4, 12}, {"rule", 8, 10}, {"rule", 12, 8}, {"rule", 16, 8},
	{"perm", 4, 6}, {"perm", 6, 4},
	{"duel", 4, 4}, {"duel", 8, 2}, {"duel", 12, 2}, {"duel", 16, 2},
}

// Family generates the zoo for a seed: the deterministic member list
// behind models/ (with seed == FamilySeed), consumed by cmd/genmodels
// (which writes the artifacts) and TestZooArtifacts (which verifies them)
// so the two can never drift.
func Family(seed uint64) []FamilyMember {
	var members []FamilyMember
	rules := map[int][]FamilyMember{} // accepted rule members per assoc, for duels
	counters := map[string]int{}
	for _, t := range familyTargets {
		rng := &zooRand{state: seed ^ uint64(t.assoc)<<32 ^ hashString(t.kind)}
		var batch []FamilyMember
		switch t.kind {
		case "rule":
			batch = drawRules(rng, t.assoc, t.target, counters)
			rules[t.assoc] = batch
		case "perm":
			batch = drawPerms(rng, t.assoc, t.target, counters)
		case "duel":
			_ = rng // duels reuse accepted rule members; no fresh draws
			batch = drawDuels(t.assoc, t.target, counters, rules[t.assoc])
		}
		members = append(members, batch...)
	}
	for i := range members {
		members[i].Heavy = zooHeavy(members[i].Assoc, members[i].States)
	}
	return members
}

// zooHeavy decides whether a member's learning cross-check is out of
// routine budget: large state spaces are expensive everywhere, and at wide
// alphabets (assoc >= 12 means 13+ inputs) even mid-sized machines blow up
// the conformance suite when depth escalation kicks in.
func zooHeavy(assoc, states int) bool {
	return states > 256 || (assoc >= 12 && states > 64)
}

// gate compiles a candidate policy and accepts it when its state space
// lands in [zooMinStates, ZooStateCap].
func gate(fresh func() policy.Policy) (states int, ok bool) {
	tbl, err := policy.CompileBound(fresh(), ZooStateCap)
	if err != nil || tbl.NumStates() < zooMinStates {
		return 0, false
	}
	return tbl.NumStates(), true
}

const drawAttempts = 2000

func drawRules(rng *zooRand, assoc, target int, counters map[string]int) []FamilyMember {
	var out []FamilyMember
	for attempt := 0; attempt < drawAttempts && len(out) < target; attempt++ {
		prog := randProgram(rng, assoc)
		states, ok := gate(func() policy.Policy { return NewRulePolicy(prog) })
		if !ok {
			continue
		}
		name := fmt.Sprintf("RuleZ%02d", counters["rule"])
		counters["rule"]++
		out = append(out, FamilyMember{
			Name: name, Assoc: assoc, Kind: "rule", States: states,
			New:     func() policy.Policy { return NewRulePolicy(prog) },
			Program: prog,
		})
	}
	return out
}

func drawPerms(rng *zooRand, assoc, target int, counters map[string]int) []FamilyMember {
	var out []FamilyMember
	for attempt := 0; attempt < drawAttempts && len(out) < target; attempt++ {
		model := randPermModel(rng, assoc)
		states, ok := gate(model.Policy)
		if !ok {
			continue
		}
		name := fmt.Sprintf("PermZ%02d", counters["perm"])
		counters["perm"]++
		out = append(out, FamilyMember{
			Name: name, Assoc: assoc, Kind: "perm", States: states,
			New: model.Policy,
		})
	}
	return out
}

// drawDuels pairs up accepted rule members of the same associativity in a
// deterministic order and keeps the duels whose product state space stays
// under the cap.
func drawDuels(assoc, target int, counters map[string]int, rules []FamilyMember) []FamilyMember {
	var out []FamilyMember
	pair := 0
	for i := 0; i < len(rules) && len(out) < target; i++ {
		for j := i + 1; j < len(rules) && len(out) < target; j++ {
			bits := 1 + pair%2
			pair++
			a, b := rules[i], rules[j]
			fresh := func() policy.Policy {
				d, err := policy.NewDuel(a.New(), b.New(), bits)
				if err != nil {
					panic(err) // unreachable: same assoc, bits >= 1
				}
				return d
			}
			states, ok := gate(fresh)
			if !ok {
				continue
			}
			name := fmt.Sprintf("DuelZ%02d", counters["duel"])
			counters["duel"]++
			out = append(out, FamilyMember{
				Name: name, Assoc: assoc, Kind: "duel", States: states,
				New: fresh,
			})
		}
	}
	return out
}

func randProgram(rng *zooRand, assoc int) *Program {
	init := make([]int, assoc)
	for i := range init {
		init[i] = rng.intn(MaxAge + 1)
	}
	proSelf := randSelf(rng, true)
	proOthers := OthersKind(rng.intn(3))
	evict := randEvict(rng)
	insSelf := randSelf(rng, false)
	insOthers := OthersKind(rng.intn(3))
	norm := randNorm(rng)
	return &Program{
		Assoc:     assoc,
		Init:      init,
		Promote:   PromoteRule{Self: proSelf, Others: proOthers},
		Evict:     evict,
		Insert:    InsertRule{Self: insSelf, Others: insOthers},
		Normalize: norm,
	}
}

func randSelf(rng *zooRand, allowIfEq bool) SelfUpdate {
	kinds := 3
	if allowIfEq {
		kinds = 4
	}
	switch rng.intn(kinds) {
	case 0:
		return SelfUpdate{Kind: SelfKeep}
	case 1:
		return SelfUpdate{Kind: SelfDecr}
	case 2:
		c1 := rng.intn(MaxAge + 1)
		return SelfUpdate{Kind: SelfSet, C1: c1}
	default:
		c1 := rng.intn(MaxAge + 1)
		c2 := rng.intn(MaxAge + 1)
		c3 := (c2 + 1 + rng.intn(MaxAge)) % (MaxAge + 1) // c3 != c2
		return SelfUpdate{Kind: SelfIfEq, C1: c1, C2: c2, C3: c3}
	}
}

func randEvict(rng *zooRand) EvictRule {
	switch rng.intn(3) {
	case 0:
		return EvictRule{Kind: EvictMaxLeft}
	case 1:
		return EvictRule{Kind: EvictMinLeft}
	default:
		c := rng.intn(MaxAge + 1)
		return EvictRule{Kind: EvictFirstEq, C: c}
	}
}

func randNorm(rng *zooRand) NormRule {
	if rng.intn(2) == 0 {
		return NormRule{Kind: NormIdentity}
	}
	kind := NormAgeUntil
	if rng.intn(2) == 1 {
		kind = NormResetUnless
	}
	c := rng.intn(MaxAge + 1)
	except := rng.intn(2) == 1
	flags := 1 + rng.intn(7)
	return NormRule{
		Kind:          kind,
		C:             c,
		ExceptTouched: except,
		AfterHit:      flags&1 != 0,
		BeforeEvict:   flags&2 != 0,
		AfterMiss:     flags&4 != 0,
	}
}

func randPermModel(rng *zooRand, n int) *permpol.Model {
	m := &permpol.Model{
		N:        n,
		HitPerm:  make([][]int, n),
		MissPerm: rng.perm(n),
		InitPos:  rng.perm(n),
	}
	for p := range m.HitPerm {
		m.HitPerm[p] = rng.perm(n)
	}
	return m
}

// zooRand is a splitmix64 stream: tiny, fast, and — unlike math/rand —
// guaranteed stable across Go releases, which the committed artifacts
// depend on.
type zooRand struct{ state uint64 }

func (r *zooRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *zooRand) intn(n int) int { return int(r.next() % uint64(n)) }

// perm is a Fisher-Yates shuffle of 0..n-1 on the splitmix stream.
func (r *zooRand) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
