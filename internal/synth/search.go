package synth

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mealy"
	"repro/internal/policy"
)

// Template selects the synthesis search space, mirroring Table 5: the
// Simple template fixes normalization to the identity; the Extended
// template searches the full rule grammar.
type Template int

// Templates.
const (
	// TemplateAuto tries Simple first and falls back to Extended, which is
	// the procedure of §8.1.
	TemplateAuto Template = iota
	TemplateSimple
	TemplateExtended
)

// String implements fmt.Stringer.
func (t Template) String() string {
	return [...]string{"Auto", "Simple", "Extended"}[t]
}

// ErrNoProgram is returned when the search space is exhausted: the machine
// has no explanation in the rule grammar. PLRU lands here, as in the paper
// (its tree-shaped global state is not expressible with per-line ages).
var ErrNoProgram = errors.New("synth: no program in the template explains the machine")

// Options configure the synthesis search.
type Options struct {
	Template Template
	// Seed drives the random witness traces of the CEGIS prefilter.
	Seed int64
	// SeedWitnesses is the number of random witness traces the CEGIS
	// prefilter starts with; -1 disables seeding entirely so that every
	// surviving candidate must be rejected by a full product check (the
	// ablation benchmarks use this). 0 means the default of 40.
	SeedWitnesses int
	// MaxCandidates aborts the search early (0 = exhaustive). The budget
	// counts globally examined stage-2 candidates in enumeration order —
	// under parallel search the workers share one cap on the enumeration
	// prefix, so success or budget exhaustion is identical at any
	// Parallelism.
	MaxCandidates int
	// Parallelism is the number of search workers sharing the candidate
	// space (0 = GOMAXPROCS). Workers claim contiguous enumeration-order
	// chunks and the lowest-indexed verified candidate wins, so the
	// synthesized program is byte-identical at any setting.
	Parallelism int
	// Interpreted replaces the batched SoA witness kernel with the legacy
	// per-candidate interpreted walk (one Program execution per candidate
	// per witness). The ablation benchmarks use this; results are
	// identical either way.
	Interpreted bool
}

// Result is a successful synthesis outcome.
type Result struct {
	Program  *Program
	Template Template // the template that produced the program
	// Candidates is the enumeration-order prefix examined: the winning
	// candidate's global index + 1 on success (prior templates included),
	// the whole space on exhaustion. It is identical at any Parallelism.
	Candidates int
	// Witnesses is the size of the shared witness pool when the search
	// stopped: seed traces plus published counterexamples.
	Witnesses int
	// Pruned counts stage-2 candidates rejected by the witness prefilter
	// before any product check. Unlike Candidates it may vary with
	// Parallelism (workers racing the winner prune a few extra lanes).
	Pruned   int64
	Duration time.Duration
}

// Synthesize searches the rule grammar for a program that is exactly
// trace-equivalent to the policy machine m (inputs Ln(0..n-1), Evct).
//
// The search is a parallel CEGIS pipeline: stage 1 shards the
// (evict × insert × normalize × init) skeleton grammar over
// Options.Parallelism workers that filter init lanes through an
// eviction-only witness on the batched SoA kernel; stage 2 shards the
// surviving skeletons, filters promotion lanes through the shared witness
// pool, and product-checks the survivors, publishing counterexamples back
// to the pool. Selection is first-match-in-enumeration-order (the lowest
// verified global index wins), which makes the synthesized program —
// and Result.Candidates — byte-identical at any parallelism: witness
// filtering is sound, so the set of candidates that verify does not depend
// on when counterexamples were discovered.
func Synthesize(m *mealy.Machine, opt Options) (*Result, error) {
	n := m.NumInputs - 1
	if n < 2 {
		return nil, fmt.Errorf("synth: machine with %d inputs is not a policy of associativity >= 2", m.NumInputs)
	}
	start := time.Now()
	s := newSearcher(m, n, opt)

	templates := []Template{TemplateSimple, TemplateExtended}
	switch opt.Template {
	case TemplateSimple:
		templates = []Template{TemplateSimple}
	case TemplateExtended:
		templates = []Template{TemplateExtended}
	}
	consumed := 0 // stage-2 candidates consumed by earlier templates
	for _, tpl := range templates {
		budget := 0
		if opt.MaxCandidates > 0 {
			budget = opt.MaxCandidates - consumed
			if budget <= 0 {
				return nil, fmt.Errorf("synth: candidate budget of %d exhausted", opt.MaxCandidates)
			}
		}
		prog, examined, total := s.searchTemplate(tpl, budget)
		if prog != nil {
			return &Result{
				Program:    prog,
				Template:   tpl,
				Candidates: consumed + examined,
				Witnesses:  s.pool.size(),
				Pruned:     s.pruned.Load(),
				Duration:   time.Since(start),
			}, nil
		}
		if budget > 0 && total > budget {
			return nil, fmt.Errorf("synth: candidate budget of %d exhausted", opt.MaxCandidates)
		}
		consumed += total
	}
	// Exhausted: return the search statistics alongside the error so
	// harnesses can report the cost of proving inexplainability (the
	// paper's PLRU row).
	return &Result{
			Candidates: consumed,
			Witnesses:  s.pool.size(),
			Pruned:     s.pruned.Load(),
			Duration:   time.Since(start),
		},
		fmt.Errorf("%w (%d candidates examined)", ErrNoProgram, consumed)
}

// witness is one input word with the machine's expected outputs.
type witness struct {
	word []int
	want []int
}

type searcher struct {
	m        *mealy.Machine
	n        int
	opt      Options
	workers  int
	missOnly witness // Evct^k — the stage-1 filter
	pool     *witnessPool
	pruned   atomic.Int64
}

func newSearcher(m *mealy.Machine, n int, opt Options) *searcher {
	workers := opt.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &searcher{m: m, n: n, opt: opt, workers: workers, pool: newWitnessPool(m.NumInputs)}
	// Stage-1 witness: a long eviction-only word, which constrains the
	// evict/insert/normalize rules and the initial state independently of
	// the promotion rule.
	evct := policy.EvctInput(n)
	word := make([]int, 4*n+4)
	for i := range word {
		word[i] = evct
	}
	s.missOnly = witness{word: word, want: m.Run(word)}

	// Seed witnesses: deterministic structured words plus random ones.
	// SeedWitnesses < 0 starts the pool empty (pure CEGIS: every witness
	// must be discovered as a counterexample).
	if opt.SeedWitnesses < 0 {
		return s
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	add := func(w []int) {
		s.pool.publish(witness{word: w, want: m.Run(w)})
	}
	for line := 0; line < n; line++ {
		add([]int{line, evct, line, evct, evct, line, evct})
	}
	seeds := opt.SeedWitnesses
	if seeds == 0 {
		seeds = 40
	}
	for i := 0; i < seeds; i++ {
		w := make([]int, 2*n+rng.Intn(3*n))
		for j := range w {
			w[j] = rng.Intn(n + 1)
		}
		add(w)
	}
	return s
}

// matches runs the candidate program on a witness (the interpreted walk;
// the batched kernel in kernel.go is the default).
func matches(prog *Program, w witness) bool {
	ages := append([]int(nil), prog.Init...)
	for i, in := range w.word {
		if in < prog.Assoc {
			prog.Hit(ages, in)
			if w.want[i] != policy.Bottom {
				return false
			}
			continue
		}
		if prog.Miss(ages) != w.want[i] {
			return false
		}
	}
	return true
}

// grammar is the enumerated rule space of one template, with every
// dimension in its canonical enumeration order. The global candidate
// numbering — stage-1 skeletons ordered (evict, insertSelf, insertOthers,
// norm, init), stage-2 candidates (skeleton, promoteSelf, promoteOthers) —
// is the contract that keeps parallel search deterministic.
type grammar struct {
	n        int
	selves   []SelfUpdate // promotion self-updates
	inSelves []SelfUpdate // insertion self-updates (no SelfIfEq)
	others   []OthersKind
	evicts   []EvictRule
	norms    []NormRule
	inits    [][]int
	initFlat []uint8 // inits flattened for the SoA kernel's lane loads
	// Miss-path norm classes: on the eviction-only stage-1 witness the
	// AfterHit flag never fires, so norms differing only in it behave
	// identically. classes holds one representative per distinct
	// (kind, C, except, BeforeEvict, AfterMiss) behavior (113 extended
	// norms collapse to 49) and classOf maps each norm to its class.
	classes []NormRule
	classOf []int32
}

// missClassKey canonicalizes a norm rule to its stage-1 behavior class:
// the AfterHit flag is dropped, and rules that never fire on a miss
// collapse to the identity.
func missClassKey(nr NormRule) NormRule {
	if nr.Kind == NormIdentity || (!nr.BeforeEvict && !nr.AfterMiss) {
		return NormRule{}
	}
	return NormRule{Kind: nr.Kind, C: nr.C, ExceptTouched: nr.ExceptTouched,
		BeforeEvict: nr.BeforeEvict, AfterMiss: nr.AfterMiss}
}

func newGrammar(tpl Template, n int) *grammar {
	selves := enumerateSelf()
	var inSelves []SelfUpdate
	for _, u := range selves {
		if u.Kind != SelfIfEq {
			// Insertion with a conditional self-update is outside the
			// paper's insertion grammar.
			inSelves = append(inSelves, u)
		}
	}
	g := &grammar{
		n:        n,
		selves:   selves,
		inSelves: inSelves,
		others:   othersKinds,
		evicts:   enumerateEvict(),
		norms:    enumerateNorm(tpl),
		inits:    enumerateInits(n),
	}
	g.initFlat = make([]uint8, len(g.inits)*n)
	for i, init := range g.inits {
		for j, a := range init {
			g.initFlat[i*n+j] = uint8(a)
		}
	}
	g.classOf = make([]int32, len(g.norms))
	seen := make(map[NormRule]int32)
	for i, nr := range g.norms {
		key := missClassKey(nr)
		cls, ok := seen[key]
		if !ok {
			cls = int32(len(g.classes))
			g.classes = append(g.classes, key)
			seen[key] = cls
		}
		g.classOf[i] = cls
	}
	return g
}

// comboRules decodes a stage-1 rule-combo index into its rules, inverting
// the (evict, insertSelf, insertOthers, norm) enumeration order.
func (g *grammar) comboRules(c int) (EvictRule, InsertRule, NormRule) {
	nr := g.norms[c%len(g.norms)]
	c /= len(g.norms)
	io := g.others[c%len(g.others)]
	c /= len(g.others)
	is := g.inSelves[c%len(g.inSelves)]
	c /= len(g.inSelves)
	return g.evicts[c], InsertRule{Self: is, Others: io}, nr
}

// skeleton is one stage-1 survivor: a rule combo plus an init vector, both
// as indices into the grammar.
type skeleton struct{ combo, init int32 }

// searchTemplate runs the two-stage parallel enumeration for one template.
// It returns the winning program with its examined-prefix length, or
// (nil, 0, total) where total is the template's stage-2 candidate count.
// budget > 0 caps the examined stage-2 prefix.
func (s *searcher) searchTemplate(tpl Template, budget int) (*Program, int, int) {
	g := newGrammar(tpl, s.n)
	skeletons := s.stage1(g)
	perSk := len(g.selves) * len(g.others)
	total := len(skeletons) * perSk
	limit := total
	if budget > 0 && budget < total {
		limit = budget
	}
	if limit == 0 {
		return nil, 0, total
	}
	prog, idx := s.stage2(g, skeletons, limit, perSk)
	if prog != nil {
		return prog, idx + 1, total
	}
	return nil, 0, total
}

// parallelFor runs fn over [0, units) with the searcher's workers claiming
// indices from a shared atomic cursor.
func (s *searcher) parallelFor(units int, fn func(worker, unit int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				u := int(next.Add(1) - 1)
				if u >= units {
					return
				}
				fn(worker, u)
			}
		}(w)
	}
	wg.Wait()
}

// stage1 filters the skeleton grammar through the eviction-only witness.
// The batched path factors the space: phase A computes the symbol-0
// surviving seed lanes once per (evict, norm-class) pair — the first victim
// is independent of the insert rule — and phase B continues each seed set
// under every (insertSelf, insertOthers, class) triple. Both phases shard
// over the workers through an atomic cursor, and results land in
// per-unit slots, so the flattened skeleton list is in enumeration order
// regardless of which worker processed which unit. The interpreted path
// walks every (combo, init) candidate through matches() instead.
func (s *searcher) stage1(g *grammar) []skeleton {
	nEv, nIS, nIO := len(g.evicts), len(g.inSelves), len(g.others)
	nNorm, nCls := len(g.norms), len(g.classes)
	nCombos := nEv * nIS * nIO * nNorm

	var sks []skeleton
	if s.opt.Interpreted {
		surv := make([][]int32, nCombos)
		s.parallelFor(nCombos, func(_, c int) {
			ev, ins, nr := g.comboRules(c)
			probe := &Program{Assoc: s.n, Evict: ev, Insert: ins, Normalize: nr}
			var out []int32
			for i, init := range g.inits {
				probe.Init = init
				if matches(probe, s.missOnly) {
					out = append(out, int32(i))
				}
			}
			surv[c] = out
		})
		for c, list := range surv {
			for _, init := range list {
				sks = append(sks, skeleton{combo: int32(c), init: init})
			}
		}
		return sks
	}

	seeds := make([]seedLanes, nEv*nCls)
	s.parallelFor(nEv*nCls, func(_, u int) {
		seeds[u] = stage1Seeds(g, g.evicts[u/nCls], g.classes[u%nCls], s.missOnly.want[0])
	})

	blocks := make([]*laneBlock, s.workers)
	for i := range blocks {
		blocks[i] = &laneBlock{}
	}
	cont := make([][]int32, nEv*nIS*nIO*nCls)
	s.parallelFor(len(cont), func(worker, u int) {
		cls := u % nCls
		rest := u / nCls
		io := rest % nIO
		rest /= nIO
		is := rest % nIS
		ev := rest / nIS
		ins := InsertRule{Self: g.inSelves[is], Others: g.others[io]}
		cont[u] = stage1Continue(blocks[worker], g, seeds[ev*nCls+cls],
			g.evicts[ev], ins, g.classes[cls], s.missOnly)
	})

	for c := 0; c < nCombos; c++ {
		nr := c % nNorm
		rest := c / nNorm
		u := rest*nCls + int(g.classOf[nr])
		for _, init := range cont[u] {
			sks = append(sks, skeleton{combo: int32(c), init: init})
		}
	}
	return sks
}

// stage2 shards the surviving skeletons over the workers. Each claimed
// skeleton is one SoA block: its promotion lanes are filtered through a
// fresh snapshot of the shared witness pool, and the survivors are
// product-checked in ascending order. The lowest verified global index
// wins; workers skip any candidate at or above the current best, and
// failed checks publish their counterexample to the pool.
func (s *searcher) stage2(g *grammar, skeletons []skeleton, limit, perSk int) (*Program, int) {
	numSk := (limit + perSk - 1) / perSk
	no := len(g.others)
	var nextSk atomic.Int64
	var bestIdx atomic.Int64
	bestIdx.Store(int64(limit))
	var mu sync.Mutex
	var bestProg *Program
	record := func(prog *Program, idx int) {
		mu.Lock()
		if int64(idx) < bestIdx.Load() {
			bestIdx.Store(int64(idx))
			bestProg = prog
		}
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bk := &laneBlock{}
			// Adaptive witness ordering: most-rejecting witnesses first
			// (stage2Batch accumulates kill counts). Survivor sets are
			// order-independent, so this only shortens the walk.
			var order []int32
			var kills []int64
			for {
				k := int(nextSk.Add(1) - 1)
				if k >= numSk {
					return
				}
				base := k * perSk
				if int64(base) >= bestIdx.Load() {
					continue // a lower-indexed candidate already verified
				}
				sk := skeletons[k]
				ev, ins, nr := g.comboRules(int(sk.combo))
				init := g.inits[sk.init]
				lanes := min(perSk, limit-base)
				traces := s.pool.snapshot()
				if !s.opt.Interpreted {
					// Pool snapshots are prefix-stable (publication only
					// appends), so witness indices and their kill counts
					// survive pool growth.
					for i := len(order); i < len(traces); i++ {
						order = append(order, int32(i))
						kills = append(kills, 0)
					}
					sort.SliceStable(order, func(a, b int) bool {
						return kills[order[a]] > kills[order[b]]
					})
				}
				if s.opt.Interpreted {
					probe := &Program{Assoc: s.n, Init: init, Evict: ev, Insert: ins, Normalize: nr}
					for pl := 0; pl < lanes; pl++ {
						idx := base + pl
						if int64(idx) >= bestIdx.Load() {
							break
						}
						probe.Promote = PromoteRule{Self: g.selves[pl/no], Others: g.others[pl%no]}
						ok := true
						for _, w := range traces {
							if !matches(probe, w) {
								ok = false
								break
							}
						}
						if !ok {
							s.pruned.Add(1)
							continue
						}
						prog := *probe
						if s.verify(&prog) {
							record(&prog, idx)
						}
					}
					continue
				}
				initRow := g.initFlat[int(sk.init)*g.n : (int(sk.init)+1)*g.n]
				survivors := stage2Batch(bk, g, initRow, ev, ins, nr, lanes, traces, order, kills)
				s.pruned.Add(int64(lanes - len(survivors)))
				for _, pl := range survivors {
					idx := base + int(pl)
					if int64(idx) >= bestIdx.Load() {
						break
					}
					prog := &Program{
						Assoc:     s.n,
						Init:      init,
						Promote:   PromoteRule{Self: g.selves[int(pl)/no], Others: g.others[int(pl)%no]},
						Evict:     ev,
						Insert:    ins,
						Normalize: nr,
					}
					if s.verify(prog) {
						record(prog, idx)
					}
				}
			}
		}()
	}
	wg.Wait()
	if bestProg != nil {
		return bestProg, int(bestIdx.Load())
	}
	return nil, 0
}

// verify performs the exact product-equivalence check; on failure the
// counterexample is published to the shared witness pool.
func (s *searcher) verify(prog *Program) bool {
	cand, err := mealy.FromPolicyState(NewRulePolicy(prog), 4*s.m.NumStates+64)
	if err != nil {
		return false // candidate has a larger state space than the target
	}
	eq, ce := s.m.Equivalent(cand)
	if eq {
		return true
	}
	s.pool.publish(witness{word: ce, want: s.m.Run(ce)})
	return false
}

// enumerateSelf lists the self-update grammar.
func enumerateSelf() []SelfUpdate {
	out := []SelfUpdate{{Kind: SelfKeep}, {Kind: SelfDecr}}
	for c := 0; c <= MaxAge; c++ {
		out = append(out, SelfUpdate{Kind: SelfSet, C1: c})
	}
	for c1 := 0; c1 <= MaxAge; c1++ {
		for c2 := 0; c2 <= MaxAge; c2++ {
			for c3 := 0; c3 <= MaxAge; c3++ {
				if c2 == c3 {
					continue // degenerate: equals SelfSet
				}
				out = append(out, SelfUpdate{Kind: SelfIfEq, C1: c1, C2: c2, C3: c3})
			}
		}
	}
	return out
}

var othersKinds = []OthersKind{OthersKeep, OthersIncrAll, OthersIncrLess}

func enumerateEvict() []EvictRule {
	out := []EvictRule{{Kind: EvictMaxLeft}, {Kind: EvictMinLeft}}
	for c := 0; c <= MaxAge; c++ {
		out = append(out, EvictRule{Kind: EvictFirstEq, C: c})
	}
	return out
}

func enumerateNorm(tpl Template) []NormRule {
	out := []NormRule{{Kind: NormIdentity}}
	if tpl == TemplateSimple {
		return out
	}
	for _, kind := range []NormKind{NormAgeUntil, NormResetUnless} {
		for c := 0; c <= MaxAge; c++ {
			for _, except := range []bool{false, true} {
				for flags := 1; flags < 8; flags++ {
					out = append(out, NormRule{
						Kind:          kind,
						C:             c,
						ExceptTouched: except,
						AfterHit:      flags&1 != 0,
						BeforeEvict:   flags&2 != 0,
						AfterMiss:     flags&4 != 0,
					})
				}
			}
		}
	}
	return out
}

// enumerateInits lists every age vector of length n.
func enumerateInits(n int) [][]int {
	var out [][]int
	cur := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for a := 0; a <= MaxAge; a++ {
			cur[i] = a
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
