package synth

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/mealy"
	"repro/internal/policy"
)

// Template selects the synthesis search space, mirroring Table 5: the
// Simple template fixes normalization to the identity; the Extended
// template searches the full rule grammar.
type Template int

// Templates.
const (
	// TemplateAuto tries Simple first and falls back to Extended, which is
	// the procedure of §8.1.
	TemplateAuto Template = iota
	TemplateSimple
	TemplateExtended
)

// String implements fmt.Stringer.
func (t Template) String() string {
	return [...]string{"Auto", "Simple", "Extended"}[t]
}

// ErrNoProgram is returned when the search space is exhausted: the machine
// has no explanation in the rule grammar. PLRU lands here, as in the paper
// (its tree-shaped global state is not expressible with per-line ages).
var ErrNoProgram = errors.New("synth: no program in the template explains the machine")

// Options configure the synthesis search.
type Options struct {
	Template Template
	// Seed drives the random witness traces of the CEGIS prefilter.
	Seed int64
	// SeedWitnesses is the number of random witness traces the CEGIS
	// prefilter starts with; -1 disables seeding entirely so that every
	// surviving candidate must be rejected by a full product check (the
	// ablation benchmarks use this). 0 means the default of 40.
	SeedWitnesses int
	// MaxCandidates aborts the search early (0 = exhaustive).
	MaxCandidates int
}

// Result is a successful synthesis outcome.
type Result struct {
	Program    *Program
	Template   Template // the template that produced the program
	Candidates int      // candidates examined across both passes
	Duration   time.Duration
}

// Synthesize searches the rule grammar for a program that is exactly
// trace-equivalent to the policy machine m (inputs Ln(0..n-1), Evct).
func Synthesize(m *mealy.Machine, opt Options) (*Result, error) {
	n := m.NumInputs - 1
	if n < 2 {
		return nil, fmt.Errorf("synth: machine with %d inputs is not a policy of associativity >= 2", m.NumInputs)
	}
	start := time.Now()
	s := newSearcher(m, n, opt)

	templates := []Template{TemplateSimple, TemplateExtended}
	switch opt.Template {
	case TemplateSimple:
		templates = []Template{TemplateSimple}
	case TemplateExtended:
		templates = []Template{TemplateExtended}
	}
	for _, tpl := range templates {
		prog, err := s.search(tpl)
		if err != nil {
			return nil, err
		}
		if prog != nil {
			return &Result{
				Program:    prog,
				Template:   tpl,
				Candidates: s.candidates,
				Duration:   time.Since(start),
			}, nil
		}
	}
	// Exhausted: return the search statistics alongside the error so
	// harnesses can report the cost of proving inexplainability (the
	// paper's PLRU row).
	return &Result{Candidates: s.candidates, Duration: time.Since(start)},
		fmt.Errorf("%w (%d candidates examined)", ErrNoProgram, s.candidates)
}

// witness is one input word with the machine's expected outputs.
type witness struct {
	word []int
	want []int
}

type searcher struct {
	m          *mealy.Machine
	n          int
	opt        Options
	missOnly   witness   // Evct^k — the stage-1 filter
	traces     []witness // CEGIS witness set (grows with counterexamples)
	candidates int
}

func newSearcher(m *mealy.Machine, n int, opt Options) *searcher {
	s := &searcher{m: m, n: n, opt: opt}
	// Stage-1 witness: a long eviction-only word, which constrains the
	// evict/insert/normalize rules and the initial state independently of
	// the promotion rule.
	evct := policy.EvctInput(n)
	word := make([]int, 4*n+4)
	for i := range word {
		word[i] = evct
	}
	s.missOnly = witness{word: word, want: m.Run(word)}

	// Seed witnesses: deterministic structured words plus random ones.
	rng := rand.New(rand.NewSource(opt.Seed))
	add := func(w []int) {
		s.traces = append(s.traces, witness{word: w, want: m.Run(w)})
	}
	for line := 0; line < n; line++ {
		w := []int{line, evct, line, evct, evct, line, evct}
		add(w)
	}
	seeds := opt.SeedWitnesses
	switch {
	case seeds < 0:
		s.traces = nil // pure CEGIS: learn witnesses from counterexamples only
		seeds = 0
	case seeds == 0:
		seeds = 40
	}
	for i := 0; i < seeds; i++ {
		w := make([]int, 2*n+rng.Intn(3*n))
		for j := range w {
			w[j] = rng.Intn(n + 1)
		}
		add(w)
	}
	return s
}

// matches runs the candidate program on a witness.
func matches(prog *Program, w witness) bool {
	ages := append([]int(nil), prog.Init...)
	for i, in := range w.word {
		if in < prog.Assoc {
			prog.Hit(ages, in)
			if w.want[i] != policy.Bottom {
				return false
			}
			continue
		}
		if prog.Miss(ages) != w.want[i] {
			return false
		}
	}
	return true
}

// verify performs the exact product-equivalence check; on failure the
// counterexample joins the witness set.
func (s *searcher) verify(prog *Program) bool {
	cand, err := mealy.FromPolicyState(NewRulePolicy(prog), 4*s.m.NumStates+64)
	if err != nil {
		return false // candidate has a larger state space than the target
	}
	eq, ce := s.m.Equivalent(cand)
	if eq {
		return true
	}
	s.traces = append(s.traces, witness{word: ce, want: s.m.Run(ce)})
	return false
}

// enumerateSelf lists the self-update grammar.
func enumerateSelf() []SelfUpdate {
	out := []SelfUpdate{{Kind: SelfKeep}, {Kind: SelfDecr}}
	for c := 0; c <= MaxAge; c++ {
		out = append(out, SelfUpdate{Kind: SelfSet, C1: c})
	}
	for c1 := 0; c1 <= MaxAge; c1++ {
		for c2 := 0; c2 <= MaxAge; c2++ {
			for c3 := 0; c3 <= MaxAge; c3++ {
				if c2 == c3 {
					continue // degenerate: equals SelfSet
				}
				out = append(out, SelfUpdate{Kind: SelfIfEq, C1: c1, C2: c2, C3: c3})
			}
		}
	}
	return out
}

var othersKinds = []OthersKind{OthersKeep, OthersIncrAll, OthersIncrLess}

func enumerateEvict() []EvictRule {
	out := []EvictRule{{Kind: EvictMaxLeft}, {Kind: EvictMinLeft}}
	for c := 0; c <= MaxAge; c++ {
		out = append(out, EvictRule{Kind: EvictFirstEq, C: c})
	}
	return out
}

func enumerateNorm(tpl Template) []NormRule {
	out := []NormRule{{Kind: NormIdentity}}
	if tpl == TemplateSimple {
		return out
	}
	for _, kind := range []NormKind{NormAgeUntil, NormResetUnless} {
		for c := 0; c <= MaxAge; c++ {
			for _, except := range []bool{false, true} {
				for flags := 1; flags < 8; flags++ {
					out = append(out, NormRule{
						Kind:          kind,
						C:             c,
						ExceptTouched: except,
						AfterHit:      flags&1 != 0,
						BeforeEvict:   flags&2 != 0,
						AfterMiss:     flags&4 != 0,
					})
				}
			}
		}
	}
	return out
}

// enumerateInits lists every age vector of length n.
func enumerateInits(n int) [][]int {
	var out [][]int
	cur := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for a := 0; a <= MaxAge; a++ {
			cur[i] = a
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// missSkeleton is a promotion-independent candidate prefix: everything the
// eviction-only witness can constrain.
type missSkeleton struct {
	init   []int
	evict  EvictRule
	insert InsertRule
	norm   NormRule
}

// search runs the two-stage enumeration for one template.
func (s *searcher) search(tpl Template) (*Program, error) {
	selves := enumerateSelf()
	evicts := enumerateEvict()
	norms := enumerateNorm(tpl)
	inits := enumerateInits(s.n)

	// Stage 1: find all (init, evict, insert, normalize) skeletons
	// consistent with the eviction-only witness. The promotion rule plays
	// no role on a hit-free word.
	var skeletons []missSkeleton
	probe := &Program{Assoc: s.n}
	for _, ev := range evicts {
		for _, insSelf := range selves {
			if insSelf.Kind == SelfIfEq {
				continue // insertion with a conditional self-update is
				// outside the paper's insertion grammar
			}
			for _, insOthers := range othersKinds {
				for _, nr := range norms {
					for _, init := range inits {
						probe.Init = init
						probe.Evict = ev
						probe.Insert = InsertRule{Self: insSelf, Others: insOthers}
						probe.Normalize = nr
						if matches(probe, s.missOnly) {
							skeletons = append(skeletons, missSkeleton{
								init: init, evict: ev,
								insert: probe.Insert, norm: nr,
							})
						}
					}
				}
			}
		}
	}

	// Stage 2: extend surviving skeletons with promotion rules, prefilter
	// on the witness set, and verify exactly.
	for _, sk := range skeletons {
		for _, proSelf := range selves {
			for _, proOthers := range othersKinds {
				s.candidates++
				if s.opt.MaxCandidates > 0 && s.candidates > s.opt.MaxCandidates {
					return nil, fmt.Errorf("synth: candidate budget of %d exhausted", s.opt.MaxCandidates)
				}
				prog := &Program{
					Assoc:     s.n,
					Init:      sk.init,
					Promote:   PromoteRule{Self: proSelf, Others: proOthers},
					Evict:     sk.evict,
					Insert:    sk.insert,
					Normalize: sk.norm,
				}
				ok := true
				for _, w := range s.traces {
					if !matches(prog, w) {
						ok = false
						break
					}
				}
				if ok && s.verify(prog) {
					return prog, nil
				}
			}
		}
	}
	return nil, nil
}
