package synth

import "repro/internal/policy"

// This file is the batched evaluation kernel of the parallel CEGIS search:
// a policy.Batch-style structure-of-arrays stepper that runs *blocks of
// candidate programs* in lockstep through a shared witness trace, replacing
// the per-candidate interpreted matches walk. Ages live in one flat []uint8
// matrix (lane l occupies ages[l*n:(l+1)*n]), surviving lanes are kept in a
// compacted index list, and the hot loop allocates nothing — the same
// recipe that made policy.Batch 6-7x faster than stepping compiled tables
// one session at a time.
//
// Stage 1 batches over initial age vectors (the rules are shared by the
// whole block); stage 2 batches over promotion rules (the skeleton is
// shared). Both are exact ports of Program.Hit/Program.Miss on uint8 lanes:
// a lane survives a witness iff matches() accepts the equivalent Program.

// laneBlock is the reusable per-worker SoA scratch: candidate ages plus the
// compacted list of still-alive lane indices.
type laneBlock struct {
	ages []uint8
	live []int32
}

func (bk *laneBlock) reset(lanes, n int) {
	need := lanes * n
	if cap(bk.ages) < need {
		bk.ages = make([]uint8, need)
	} else {
		bk.ages = bk.ages[:need]
	}
	if cap(bk.live) < lanes {
		bk.live = make([]int32, lanes)
	} else {
		bk.live = bk.live[:lanes]
	}
	for l := range bk.live {
		bk.live[l] = int32(l)
	}
}

// seedLanes is the shared symbol-0 state of a stage-1 (evict, norm-class)
// pair: the init vectors whose first victim matches the eviction-only
// witness, with their ages as of the first victim check (after the
// BeforeEvict normalization, before the insertion). The first victim does
// not depend on the insert rule, so this work is computed once per
// (evict, class) and forked across all 18 insert rules.
type seedLanes struct {
	inits []int32
	ages  []uint8 // len(inits) * n
}

// stage1Seeds filters the full init list down to the lanes whose symbol-0
// victim under (ev, cls) equals the eviction-only witness's first output.
func stage1Seeds(g *grammar, ev EvictRule, cls NormRule, want0 int) seedLanes {
	n := g.n
	var out seedLanes
	row := make([]uint8, n)
	for i := range g.inits {
		copy(row, g.initFlat[i*n:(i+1)*n])
		if cls.BeforeEvict {
			normU8(cls, row, -1)
		}
		if chooseU8(ev, row) != want0 {
			continue
		}
		out.inits = append(out.inits, int32(i))
		out.ages = append(out.ages, row...)
	}
	return out
}

// stage1Continue resumes the seed lanes of one (evict, norm-class) pair
// under a concrete insert rule: it finishes symbol 0 (insertion plus
// AfterMiss normalization) and steps the remaining eviction-only symbols,
// returning the surviving init indices in ascending order.
func stage1Continue(bk *laneBlock, g *grammar, seeds seedLanes, ev EvictRule, ins InsertRule, cls NormRule, w witness) []int32 {
	n := g.n
	lanes := len(seeds.inits)
	if lanes == 0 {
		return nil
	}
	bk.reset(lanes, n)
	copy(bk.ages, seeds.ages)
	live := bk.live
	v0 := w.want[0]
	for _, l := range live {
		row := bk.ages[int(l)*n : int(l)*n+n]
		old := row[v0]
		row[v0] = selfU8(ins.Self, old)
		othersU8(ins.Others, row, v0, old)
		if cls.AfterMiss {
			normU8(cls, row, v0)
		}
	}
	for i := 1; i < len(w.word); i++ { // every symbol is Evct
		want := w.want[i]
		k := 0
		for _, l := range live {
			row := bk.ages[int(l)*n : int(l)*n+n]
			if cls.BeforeEvict {
				normU8(cls, row, -1)
			}
			v := chooseU8(ev, row)
			if v != want {
				continue // lane dies: wrong victim
			}
			old := row[v]
			row[v] = selfU8(ins.Self, old)
			othersU8(ins.Others, row, v, old)
			if cls.AfterMiss {
				normU8(cls, row, v)
			}
			live[k] = l
			k++
		}
		live = live[:k]
		if k == 0 {
			return nil
		}
	}
	out := make([]int32, len(live))
	for j, l := range live {
		out[j] = seeds.inits[l]
	}
	return out
}

// stage2Batch steps promotion lanes [0, lanes) of one skeleton through
// every witness in traces and returns the surviving lane indices in
// ascending order. Lane pl encodes the promotion rule
// (selves[pl/len(others)], others[pl%len(others)]), matching the serial
// enumeration order.
//
// order gives the traversal order over traces and kills accumulates how
// many lanes each witness rejected — the caller keeps both per worker and
// re-sorts order by kill count between blocks, so the most discriminating
// witnesses run first. Filtering is a conjunction over the witness set, so
// the surviving lanes are identical in any order; only the walk length
// changes.
func stage2Batch(bk *laneBlock, g *grammar, initRow []uint8, ev EvictRule, ins InsertRule, nr NormRule, lanes int, traces []witness, order []int32, kills []int64) []int32 {
	n := g.n
	no := len(g.others)
	bk.reset(lanes, n)
	live := bk.live
	for _, oi := range order {
		w := traces[oi]
		before := len(live)
		// Candidate ages restart at the skeleton's init for every witness.
		for _, l := range live {
			copy(bk.ages[int(l)*n:int(l)*n+n], initRow)
		}
		for i, in := range w.word {
			if in < n { // hit: the promotion rule differs per lane
				if w.want[i] != policy.Bottom {
					kills[oi] += int64(before)
					return nil // no candidate can match this witness
				}
				for _, l := range live {
					row := bk.ages[int(l)*n : int(l)*n+n]
					old := row[in]
					pl := int(l)
					row[in] = selfU8(g.selves[pl/no], old)
					othersU8(g.others[pl%no], row, in, old)
					if nr.AfterHit {
						normU8(nr, row, in)
					}
				}
				continue
			}
			// Miss: the skeleton rules are shared by every lane.
			want := w.want[i]
			k := 0
			for _, l := range live {
				row := bk.ages[int(l)*n : int(l)*n+n]
				if nr.BeforeEvict {
					normU8(nr, row, -1)
				}
				v := chooseU8(ev, row)
				if v != want {
					continue
				}
				old := row[v]
				row[v] = selfU8(ins.Self, old)
				othersU8(ins.Others, row, v, old)
				if nr.AfterMiss {
					normU8(nr, row, v)
				}
				live[k] = l
				k++
			}
			live = live[:k]
			if k == 0 {
				kills[oi] += int64(before)
				return nil
			}
		}
		kills[oi] += int64(before - len(live))
	}
	return live
}

// The uint8 rule ports below mirror SelfUpdate.apply, OthersKind.apply,
// EvictRule.choose and NormRule.apply exactly (including the FirstEq
// fallback to the oldest line and the bounded NormAgeUntil iteration), so
// batched and interpreted filtering accept identical candidate sets.

func selfU8(u SelfUpdate, age uint8) uint8 {
	switch u.Kind {
	case SelfKeep:
		return age
	case SelfSet:
		return uint8(u.C1)
	case SelfDecr:
		if age > 0 {
			return age - 1
		}
		return 0
	default: // SelfIfEq
		if age == uint8(u.C1) {
			return uint8(u.C2)
		}
		return uint8(u.C3)
	}
}

func othersU8(k OthersKind, ages []uint8, self int, old uint8) {
	switch k {
	case OthersKeep:
	case OthersIncrAll:
		for i := range ages {
			if i != self && ages[i] < MaxAge {
				ages[i]++
			}
		}
	case OthersIncrLess:
		for i := range ages {
			if i != self && ages[i] < old && ages[i] < MaxAge {
				ages[i]++
			}
		}
	}
}

func chooseU8(r EvictRule, ages []uint8) int {
	switch r.Kind {
	case EvictFirstEq:
		c := uint8(r.C)
		for i, a := range ages {
			if a == c {
				return i
			}
		}
		return argMaxU8(ages)
	case EvictMaxLeft:
		return argMaxU8(ages)
	default:
		return argMinU8(ages)
	}
}

func argMaxU8(ages []uint8) int {
	idx, m := 0, ages[0]
	for i, a := range ages {
		if a > m {
			idx, m = i, a
		}
	}
	return idx
}

func argMinU8(ages []uint8) int {
	idx, m := 0, ages[0]
	for i, a := range ages {
		if a < m {
			idx, m = i, a
		}
	}
	return idx
}

func hasU8(ages []uint8, c uint8) bool {
	for _, a := range ages {
		if a == c {
			return true
		}
	}
	return false
}

func normU8(r NormRule, ages []uint8, touched int) {
	if r.Kind == NormIdentity {
		return
	}
	except := -1
	if r.ExceptTouched {
		except = touched
	}
	c := uint8(r.C)
	switch r.Kind {
	case NormAgeUntil:
		for iter := 0; iter <= MaxAge && !hasU8(ages, c); iter++ {
			for i := range ages {
				if i != except && ages[i] < MaxAge {
					ages[i]++
				}
			}
		}
	case NormResetUnless:
		if !hasU8(ages, c) {
			for i := range ages {
				if i != except {
					ages[i] = c
				}
			}
		}
	}
}
