package synth

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/mealy"
	"repro/internal/polca"
	"repro/internal/policy"
)

// TestTableFiveTemplates reproduces Table 5's shape at associativity 4:
// FIFO, LRU and LIP need only the Simple template; MRU, SRRIP-HP, SRRIP-FP,
// New1 and New2 need the Extended one; PLRU cannot be explained at all.
func TestTableFiveTemplates(t *testing.T) {
	cases := []struct {
		name     string
		template Template
	}{
		{"FIFO", TemplateSimple},
		{"LRU", TemplateSimple},
		{"LIP", TemplateSimple},
		{"MRU", TemplateExtended},
		{"SRRIP-HP", TemplateExtended},
		{"SRRIP-FP", TemplateExtended},
		{"New1", TemplateExtended},
		{"New2", TemplateExtended},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			m, err := mealy.FromPolicy(policy.MustNew(c.name, 4), 0)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Synthesize(m, Options{Seed: 1})
			if err != nil {
				t.Fatalf("Synthesize: %v", err)
			}
			if res.Template != c.template {
				t.Errorf("synthesized with %v template, paper used %v", res.Template, c.template)
			}
			// The returned program must be *exactly* trace-equivalent.
			cand, err := mealy.FromPolicyState(NewRulePolicy(res.Program), 0)
			if err != nil {
				t.Fatal(err)
			}
			if eq, ce := m.Equivalent(cand); !eq {
				t.Errorf("synthesized program diverges, ce=%v", ce)
			}
		})
	}
}

func TestPLRUIsNotExplainable(t *testing.T) {
	m, _ := mealy.FromPolicy(policy.MustNew("PLRU", 4), 0)
	_, err := Synthesize(m, Options{Seed: 1})
	if !errors.Is(err, ErrNoProgram) {
		t.Errorf("err = %v, want ErrNoProgram", err)
	}
}

func TestSimpleTemplateOnlyFailsForExtendedPolicies(t *testing.T) {
	m, _ := mealy.FromPolicy(policy.MustNew("New2", 4), 0)
	if _, err := Synthesize(m, Options{Template: TemplateSimple, Seed: 1}); !errors.Is(err, ErrNoProgram) {
		t.Errorf("New2 synthesized with the Simple template: %v", err)
	}
}

func TestCandidateBudget(t *testing.T) {
	m, _ := mealy.FromPolicy(policy.MustNew("New2", 4), 0)
	if _, err := Synthesize(m, Options{Seed: 1, MaxCandidates: 10}); err == nil {
		t.Error("candidate budget not enforced")
	}
}

func TestSynthesizedNew1MatchesPaperRules(t *testing.T) {
	m, _ := mealy.FromPolicy(policy.MustNew("New1", 4), 0)
	res, err := Synthesize(m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Program
	// The exact clauses may differ from §8 in equivalent ways, but the
	// load-bearing ones are stable: insertion at age 1 and the
	// age-all-except-touched normalization after hits and insertions.
	if p.Insert.Self.Kind != SelfSet || p.Insert.Self.C1 != 1 {
		t.Errorf("insert rule %v, want set-to-1", p.Insert.Self)
	}
	if p.Normalize.Kind != NormAgeUntil || !p.Normalize.ExceptTouched {
		t.Errorf("normalize rule %+v, want age-until excluding the touched line", p.Normalize)
	}
	if !p.Normalize.AfterHit || !p.Normalize.AfterMiss {
		t.Errorf("normalize applies %+v, want after hit and after miss", p.Normalize)
	}
}

func TestSynthesizedNew2MatchesPaperRules(t *testing.T) {
	m, _ := mealy.FromPolicy(policy.MustNew("New2", 4), 0)
	res, err := Synthesize(m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Program
	// §8: promote 1->0 / otherwise->1; insert at 1; age-all normalization
	// after hit and miss; initial state all-distant.
	if p.Promote.Self.Kind != SelfIfEq || p.Promote.Self.C1 != 1 || p.Promote.Self.C2 != 0 || p.Promote.Self.C3 != 1 {
		t.Errorf("promote rule %v, want if-age-1-then-0-else-1", p.Promote.Self)
	}
	if p.Normalize.Kind != NormAgeUntil || p.Normalize.ExceptTouched {
		t.Errorf("normalize rule %+v, want age-until over all lines", p.Normalize)
	}
	for _, a := range p.Init {
		if a != MaxAge {
			t.Errorf("initial state %v, want all %d", p.Init, MaxAge)
		}
	}
}

// TestRulePolicyRoundTrip: a synthesized program, run as a policy inside a
// simulated cache behind Polca, reproduces the original machine.
func TestRulePolicyRoundTrip(t *testing.T) {
	m, _ := mealy.FromPolicy(policy.MustNew("LRU", 4), 0)
	res, err := Synthesize(m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	oracle := polca.NewOracle(polca.NewSimProber(NewRulePolicy(res.Program)))
	word := []int{4, 0, 4, 2, 4, 4, 1, 4}
	got, err := oracle.OutputQuery(context.Background(), word)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Run(word)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round trip diverged: %v vs %v", got, want)
		}
	}
}

func TestProgramString(t *testing.T) {
	m, _ := mealy.FromPolicy(policy.MustNew("FIFO", 4), 0)
	res, err := Synthesize(m, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Program.String()
	for _, want := range []string{"Initial control state", "Promote", "Evict", "Insert", "Normalize"} {
		if !strings.Contains(s, want) {
			t.Errorf("program rendering missing %q:\n%s", want, s)
		}
	}
}

func TestSynthesizeRejectsTinyAlphabets(t *testing.T) {
	m := mealy.New(1, 2) // associativity 1
	if _, err := Synthesize(m, Options{}); err == nil {
		t.Error("associativity-1 machine accepted")
	}
}

func TestSelfUpdateSemantics(t *testing.T) {
	if got := (SelfUpdate{Kind: SelfDecr}).apply(0); got != 0 {
		t.Errorf("decr at 0 = %d", got)
	}
	if got := (SelfUpdate{Kind: SelfSet, C1: 2}).apply(0); got != 2 {
		t.Errorf("set = %d", got)
	}
	u := SelfUpdate{Kind: SelfIfEq, C1: 1, C2: 0, C3: 1}
	if u.apply(1) != 0 || u.apply(3) != 1 {
		t.Error("if-eq semantics wrong")
	}
}

func TestEvictRuleFallback(t *testing.T) {
	// FirstEq with no matching line falls back to the oldest line, so
	// candidate programs stay total.
	r := EvictRule{Kind: EvictFirstEq, C: 3}
	if got := r.choose([]int{1, 2, 2, 0}); got != 1 {
		t.Errorf("fallback chose %d, want 1 (leftmost max)", got)
	}
}

func TestNormalizeTerminatesOnPathologicalRules(t *testing.T) {
	// A normalization whose condition can never be met (all lines capped
	// below C... impossible for C<=MaxAge after increments, but the
	// except-touched variant can starve with n=1-style corner cases) must
	// terminate via the iteration guard.
	ages := []int{3, 3}
	r := NormRule{Kind: NormAgeUntil, C: 0, AfterHit: true}
	r.apply(ages, -1) // ages saturated at 3, condition "some age == 0" unreachable
	if ages[0] != 3 || ages[1] != 3 {
		t.Errorf("ages %v", ages)
	}
}
