package cache

import (
	"testing"

	"repro/internal/blocks"
	"repro/internal/policy"
)

func TestFlushRefillResetsPLRU(t *testing.T) {
	// F+R is the reset the paper uses on Skylake/Kaby Lake L1 (Table 4):
	// filling a flushed set touches every tree node deterministically.
	r, err := VerifyReset(policy.MustNew("PLRU", 8), blocks.Ordered(8), true, 0)
	if err != nil {
		t.Fatalf("F+R does not reset PLRU-8: %v", err)
	}
	if r.Name() != "F+R" {
		t.Errorf("reset name %q, want F+R", r.Name())
	}
	for i, b := range r.Content {
		if b != blocks.Name(i) {
			t.Errorf("post-reset line %d holds %s", i, b)
		}
	}
}

func TestFlushRefillDoesNotResetNew1(t *testing.T) {
	// §7.1: F+R is not a universal reset; on the Skylake L2 (New1) the
	// authors needed the dedicated sequence D C B A @. Flushing keeps the
	// replacement metadata, so refilling from different control states
	// diverges.
	if _, err := VerifyReset(policy.MustNew("New1", 4), blocks.Ordered(4), true, 0); err == nil {
		t.Fatal("F+R unexpectedly resets New1")
	}
}

func TestFIFOHasNoResetSequence(t *testing.T) {
	// FIFO is a permutation automaton: every access sequence advances the
	// round-robin pointer uniformly, so no synchronizing word exists.
	if _, err := FindResetSequence(policy.MustNew("FIFO", 2), 0); err == nil {
		t.Fatal("found a reset sequence for FIFO, which cannot exist")
	}
}

func TestFindResetSequenceForLearnedPolicies(t *testing.T) {
	// Every policy the hardware case study learns must have a findable
	// reset sequence.
	for _, tc := range []struct {
		name  string
		assoc int
	}{
		{"PLRU", 8}, {"New1", 4}, {"New2", 4}, {"LRU", 4}, {"MRU", 4}, {"SRRIP-HP", 4},
	} {
		r, err := FindResetSequence(policy.MustNew(tc.name, tc.assoc), 0)
		if err != nil {
			t.Errorf("%s/%d: %v", tc.name, tc.assoc, err)
			continue
		}
		// Re-verify independently.
		if _, err := VerifyReset(policy.MustNew(tc.name, tc.assoc), r.Sequence, r.FlushFirst, 0); err != nil {
			t.Errorf("%s/%d: returned sequence fails verification: %v", tc.name, tc.assoc, err)
		}
		if len(r.Content) != tc.assoc {
			t.Errorf("%s/%d: reset content has %d lines", tc.name, tc.assoc, len(r.Content))
		}
	}
}

func TestVerifyResetRejectsShortSequences(t *testing.T) {
	// A sequence that does not even fill the set leaves invalid lines.
	if _, err := VerifyReset(policy.MustNew("LRU", 4), []blocks.Block{"A", "B"}, true, 0); err == nil {
		t.Fatal("two accesses cannot reset a 4-way set")
	}
}

func TestVerifyResetStateBudget(t *testing.T) {
	if _, err := VerifyReset(policy.MustNew("LRU", 6), blocks.Ordered(6), true, 10); err == nil {
		t.Fatal("state budget not enforced")
	}
}

func TestResetNameRendering(t *testing.T) {
	r := ResetResult{
		Sequence:   []blocks.Block{"D", "C", "B", "A", "A", "B", "C", "D"},
		FlushFirst: false,
		Content:    blocks.Ordered(4),
	}
	if got := r.Name(); got != "D C B A A B C D" {
		t.Errorf("Name() = %q", got)
	}
	r2 := ResetResult{Sequence: blocks.Ordered(4), FlushFirst: true, Content: blocks.Ordered(4)}
	if got := r2.Name(); got != "F+R" {
		t.Errorf("Name() = %q, want F+R", got)
	}
}
